// fedshell: a small federated-query shell over the full text toolchain —
// schema-definition files, assertion files, data files and the query
// language.
//
//   ./build/examples/fedshell --schema s1.schema --schema s2.schema
//       --data S1=s1.data --data S2=s2.data --assertions corr.assert
//       --query '?- S2.uncle(niece_nephew: "ssn-ann", Ussn#: who)'
//
// Run without arguments to use the built-in genealogy demo; without
// --query, queries are read from stdin (one per line; empty line or
// EOF quits).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "federation/explain.h"
#include "federation/query_parser.h"
#include "integrate/consistency.h"
#include "model/instance_parser.h"
#include "model/schema_parser.h"

namespace {

void Die(const ooint::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(ooint::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) Die(ooint::Status::NotFound("cannot open " + path));
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- Built-in demo inputs (the paper's genealogy example) -------------

constexpr const char* kDemoSchema1 = R"(
schema S1 {
  class parent {
    Pssn#: string;
    name: string;
    children: {string};
  }
  class brother {
    Bssn#: string;
    name: string;
    brothers: {string};
  }
}
)";

constexpr const char* kDemoSchema2 = R"(
schema S2 {
  class uncle {
    Ussn#: string;
    name: string;
    niece_nephew: {string};
  }
}
)";

constexpr const char* kDemoData1 = R"(
insert parent {
  Pssn#: "ssn-john"; name: "John";
  children: {"ssn-ann", "ssn-bob"};
}
insert brother {
  Bssn#: "ssn-sam"; name: "Sam";
  brothers: {"ssn-john"};
}
)";

constexpr const char* kDemoAssertions = R"(
assert S1(parent, brother) -> S2.uncle {
  value(S1): S1.parent.Pssn# in S1.brother.brothers;
  attr: S1.brother.Bssn# == S2.uncle.Ussn#;
  attr: S1.brother.name == S2.uncle.name;
  attr: S1.parent.children >= S2.uncle.niece_nephew;
}
)";

constexpr const char* kDemoQuery =
    R"(?- S2.uncle(niece_nephew: "ssn-ann", Ussn#: who, name: name))";

struct Options {
  std::vector<std::string> schema_files;
  std::vector<std::pair<std::string, std::string>> data_files;  // schema=path
  std::string assertion_file;
  std::vector<std::string> queries;
  bool demo = false;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) Die(ooint::Status::InvalidArgument(arg + " needs a value"));
      return argv[i];
    };
    if (arg == "--schema") {
      options.schema_files.push_back(next());
    } else if (arg == "--data") {
      const std::string value = next();
      const size_t eq = value.find('=');
      if (eq == std::string::npos) {
        Die(ooint::Status::InvalidArgument("--data expects SCHEMA=path"));
      }
      options.data_files.emplace_back(value.substr(0, eq),
                                      value.substr(eq + 1));
    } else if (arg == "--assertions") {
      options.assertion_file = next();
    } else if (arg == "--query") {
      options.queries.push_back(next());
    } else if (arg == "--help") {
      std::printf(
          "usage: fedshell --schema FILE... --assertions FILE "
          "[--data SCHEMA=FILE...] [--query TEXT...]\n"
          "Run without arguments for the built-in genealogy demo.\n");
      std::exit(0);
    } else {
      Die(ooint::Status::InvalidArgument("unknown flag " + arg));
    }
  }
  options.demo = options.schema_files.empty();
  return options;
}

void PrintAnswers(const std::vector<ooint::Bindings>& answers) {
  if (answers.empty()) {
    std::printf("  (no answers)\n");
    return;
  }
  for (const ooint::Bindings& row : answers) {
    std::string line = "  ";
    for (const auto& [var, value] : row) {
      line += var + " = " + value.ToString() + "  ";
    }
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options = ParseArgs(argc, argv);

  // 1. Schemas.
  std::vector<std::string> schema_texts;
  std::string assertion_text;
  std::vector<std::pair<std::string, std::string>> data_texts;
  if (options.demo) {
    std::printf("(no --schema given: running the built-in genealogy demo)\n");
    schema_texts = {kDemoSchema1, kDemoSchema2};
    assertion_text = kDemoAssertions;
    data_texts = {{"S1", kDemoData1}};
    options.queries.push_back(kDemoQuery);
  } else {
    for (const std::string& path : options.schema_files) {
      schema_texts.push_back(ReadFile(path));
    }
    if (options.assertion_file.empty()) {
      Die(ooint::Status::InvalidArgument("--assertions is required"));
    }
    assertion_text = ReadFile(options.assertion_file);
    for (const auto& [schema, path] : options.data_files) {
      data_texts.emplace_back(schema, ReadFile(path));
    }
  }

  ooint::Fsm fsm;
  std::vector<ooint::Schema> parsed;
  for (const std::string& text : schema_texts) {
    parsed.push_back(Unwrap(ooint::SchemaParser::Parse(text)));
  }
  for (ooint::Schema& schema : parsed) {
    const std::string name = schema.name();
    auto agent = Unwrap(ooint::FsmAgent::Create(
        "agent-" + name, "ooint", name + "-db", std::move(schema)));
    if (auto s = fsm.RegisterAgent(std::move(agent)); !s.ok()) Die(s);
  }

  // 2. Data.
  for (const auto& [schema, text] : data_texts) {
    ooint::FsmAgent* agent = fsm.FindAgent(schema);
    if (agent == nullptr) {
      Die(ooint::Status::NotFound("--data references unknown schema " +
                                  schema));
    }
    const size_t n = Unwrap(ooint::InstanceParser::Load(text, &agent->store()));
    std::printf("loaded %zu object(s) into %s\n", n, schema.c_str());
  }

  // 3. Assertions + consistency report.
  if (auto s = fsm.DeclareAssertions(assertion_text); !s.ok()) Die(s);
  const auto findings = Unwrap(fsm.CheckAllConsistency());
  for (const ooint::ConsistencyFinding& finding : findings) {
    std::printf("consistency: %s\n", finding.ToString().c_str());
  }
  if (ooint::HasErrors(findings)) {
    Die(ooint::Status::FailedPrecondition(
        "assertion set is inconsistent; refusing to integrate"));
  }

  // 4. Integrate and report.
  ooint::FsmClient client(&fsm);
  if (auto s = client.Connect(); !s.ok()) Die(s);
  std::printf("\n== global schema ==\n%s\n",
              client.global().schema.ToString().c_str());
  std::printf("== stats ==\n%s\n\n",
              client.global().total_stats.ToString().c_str());

  // 5. Queries: from --query flags, then interactively.
  for (const std::string& query : options.queries) {
    std::printf("%s\n", query.c_str());
    // Show the decomposition first: which agents and rules the query
    // touches.
    if (ooint::Result<ooint::ParsedQuery> parsed = ooint::ParseQuery(query);
        parsed.ok()) {
      if (ooint::Result<std::string> global_name = client.GlobalNameOf(
              parsed.value().schema, parsed.value().class_name);
          global_name.ok()) {
        const ooint::QueryPlan plan = Unwrap(
            ooint::ExplainQuery(client.global(), global_name.value()));
        std::printf("%s\n", plan.ToString().c_str());
      }
    }
    ooint::Result<std::vector<ooint::Bindings>> answers =
        ooint::RunTextQuery(client, query);
    if (!answers.ok()) {
      std::printf("  error: %s\n", answers.status().ToString().c_str());
      continue;
    }
    PrintAnswers(answers.value());
  }
  if (options.queries.empty()) {
    std::printf("enter queries, e.g. "
                "?- S2.uncle(niece_nephew: \"ssn-ann\", Ussn#: who)\n");
    std::string line;
    while (std::printf("> ") && std::getline(std::cin, line)) {
      if (line.empty()) break;
      ooint::Result<std::vector<ooint::Bindings>> answers =
          ooint::RunTextQuery(client, line);
      if (!answers.ok()) {
        std::printf("  error: %s\n", answers.status().ToString().c_str());
        continue;
      }
      PrintAnswers(answers.value());
    }
  }
  return 0;
}
