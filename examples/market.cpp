// Market: schematic discrepancies (Example 5 / Fig. 10) and qualified
// attribute inclusions (the stock example of Section 4.1).
//
// S2 stores one column per car (car-name_i holding its price); S1
// stores one row per (car, month). The decomposed derivation assertions
// of Fig. 10 generate one rule per column, each guarded by the
// predicate car-name = "car-name_i"; evaluating them pivots the
// column-oriented data into row-oriented integrated facts.
//
//   ./build/examples/market

#include <cstdio>
#include <cstdlib>

#include "assertions/parser.h"
#include "federation/fsm_client.h"
#include "workload/fixtures.h"

namespace {

void Die(const ooint::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(ooint::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

void RunCarPivot() {
  using ooint::Value;
  std::printf("=== Example 5 / Fig. 10: the car-price pivot ===\n");
  ooint::Fixture fixture = Unwrap(ooint::MakeCarFixture(3));

  std::unique_ptr<ooint::FsmAgent> rows = Unwrap(ooint::FsmAgent::Create(
      "FSM-agent1", "informix", "CarRowsDB", fixture.s1));
  std::unique_ptr<ooint::FsmAgent> columns = Unwrap(ooint::FsmAgent::Create(
      "FSM-agent2", "oracle", "CarColumnsDB", fixture.s2));

  // Column-oriented monthly snapshots in S2.
  for (const char* month : {"January", "February"}) {
    ooint::Object* snapshot = Unwrap(columns->store().NewObject("car2"));
    const int base = month[0];  // deterministic toy prices
    snapshot->Set("time", Value::String(month))
        .Set("car-name_1", Value::Integer(20000 + base))
        .Set("car-name_2", Value::Integer(30000 + base))
        .Set("car-name_3", Value::Integer(40000 + base));
  }

  ooint::Fsm fsm;
  if (auto s = fsm.RegisterAgent(std::move(rows)); !s.ok()) Die(s);
  if (auto s = fsm.RegisterAgent(std::move(columns)); !s.ok()) Die(s);
  if (auto s = fsm.DeclareAssertions(fixture.assertion_text); !s.ok()) Die(s);

  ooint::FsmClient client(&fsm);
  if (auto s = client.Connect(); !s.ok()) Die(s);

  for (const ooint::Rule& rule : client.global().rules) {
    std::printf("rule: %s\n", rule.ToString().c_str());
  }

  const std::string car_class = Unwrap(client.GlobalNameOf("S1", "car1"));
  std::printf("\npivoted rows of %s:\n", car_class.c_str());
  for (const ooint::Fact* fact : Unwrap(client.Extent(car_class))) {
    std::printf("  time=%-10s car=%-12s price=%s\n",
                fact->attrs.at("time").ToString().c_str(),
                fact->attrs.at("car-name").ToString().c_str(),
                fact->attrs.at("price").ToString().c_str());
  }

  // ?- car1(time=January, car-name_2's price).
  ooint::Query january(car_class);
  january.Where("time", Value::String("January"))
      .Where("car-name", Value::String("car-name_2"))
      .Select("price", "price");
  std::printf("\n?- price of car-name_2 in January\n");
  for (const ooint::Bindings& row : Unwrap(client.Run(january))) {
    std::printf("  price = %s\n", row.at("price").ToString().c_str());
  }
}

void RunStockColumns() {
  using ooint::Value;
  std::printf("\n=== Section 4.1: the stock `with` qualifiers ===\n");
  ooint::Fixture fixture = Unwrap(ooint::MakeStockFixture());

  std::unique_ptr<ooint::FsmAgent> monthly = Unwrap(ooint::FsmAgent::Create(
      "FSM-agent1", "db2", "QuarterDB", fixture.s1));
  std::unique_ptr<ooint::FsmAgent> ticks = Unwrap(ooint::FsmAgent::Create(
      "FSM-agent2", "informix", "TickDB", fixture.s2));

  // Row-per-month quotes in S2.
  struct Quote {
    const char* month;
    const char* name;
    int price;
  };
  for (const Quote& q : {Quote{"March", "ACME", 120}, Quote{"April", "ACME", 140},
                         Quote{"March", "Globex", 80},
                         Quote{"May", "ACME", 150}}) {
    ooint::Object* quote = Unwrap(ticks->store().NewObject("stock"));
    quote->Set("time", Value::String(q.month))
        .Set("stock-name", Value::String(q.name))
        .Set("price", Value::Integer(q.price));
  }

  ooint::Fsm fsm;
  if (auto s = fsm.RegisterAgent(std::move(monthly)); !s.ok()) Die(s);
  if (auto s = fsm.RegisterAgent(std::move(ticks)); !s.ok()) Die(s);
  if (auto s = fsm.DeclareAssertions(fixture.assertion_text); !s.ok()) Die(s);

  ooint::FsmClient client(&fsm);
  if (auto s = client.Connect(); !s.ok()) Die(s);

  const std::string quarters =
      Unwrap(client.GlobalNameOf("S1", "stock-in-March-April"));
  std::printf("derived March/April views (May quotes excluded by the "
              "`with` predicates):\n");
  for (const ooint::Fact* fact : Unwrap(client.Extent(quarters))) {
    std::printf("  %s\n", fact->ToString().c_str());
  }
}

}  // namespace

int main() {
  RunCarPivot();
  RunStockColumns();
  return 0;
}
