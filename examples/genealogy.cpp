// Genealogy: the paper's running example (Examples 3 and 9, Appendix B).
//
// Two component databases — a family database (parents, brothers) and a
// relatives database (uncles) — are federated. The derivation assertion
// S1(parent, brother) → S2.uncle generates an inference rule, and the
// introduction's motivating query "who is the uncle of X?" is answered
// across both databases even though no uncle tuple mentioning X is
// stored anywhere.
//
//   ./build/examples/genealogy

#include <cstdio>
#include <cstdlib>

#include "federation/fsm_client.h"
#include "workload/fixtures.h"

namespace {

void Die(const ooint::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(ooint::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using ooint::Value;

  ooint::Fixture fixture = Unwrap(ooint::MakeGenealogyFixture());

  // The FSM-agents wrap the two component databases (Section 3).
  std::unique_ptr<ooint::FsmAgent> family = Unwrap(ooint::FsmAgent::Create(
      "FSM-agent1", "informix", "FamilyDB", fixture.s1));
  std::unique_ptr<ooint::FsmAgent> relatives = Unwrap(
      ooint::FsmAgent::Create("FSM-agent2", "oracle", "RelativesDB",
                              fixture.s2));

  // FamilyDB content: John is the parent of Ann and Bob; Sam is John's
  // brother. RelativesDB knows one unrelated uncle directly.
  {
    ooint::Object* john = Unwrap(family->store().NewObject("parent"));
    john->Set("Pssn#", Value::String("ssn-john"))
        .Set("name", Value::String("John"))
        .Set("children", Value::Set({Value::String("ssn-ann"),
                                     Value::String("ssn-bob")}));
    ooint::Object* sam = Unwrap(family->store().NewObject("brother"));
    sam->Set("Bssn#", Value::String("ssn-sam"))
        .Set("name", Value::String("Sam"))
        .Set("brothers", Value::Set({Value::String("ssn-john")}));
    ooint::Object* direct = Unwrap(relatives->store().NewObject("uncle"));
    direct->Set("Ussn#", Value::String("ssn-pete"))
        .Set("name", Value::String("Pete"))
        .Set("niece_nephew", Value::Set({Value::String("ssn-carl")}));
  }

  // Federate: register the agents, declare the derivation assertion,
  // build the global schema.
  ooint::Fsm fsm;
  if (auto s = fsm.RegisterAgent(std::move(family)); !s.ok()) Die(s);
  if (auto s = fsm.RegisterAgent(std::move(relatives)); !s.ok()) Die(s);
  if (auto s = fsm.DeclareAssertions(fixture.assertion_text); !s.ok()) Die(s);

  ooint::FsmClient client(&fsm);
  if (auto s = client.Connect(); !s.ok()) Die(s);

  const std::string uncle_class =
      Unwrap(client.GlobalNameOf("S2", "uncle"));
  std::printf("global uncle concept: %s\n", uncle_class.c_str());
  for (const ooint::Rule& rule : client.global().rules) {
    std::printf("generated rule: %s\n", rule.ToString().c_str());
  }

  // ?-uncle(ssn-ann, who): derivable only by combining FamilyDB facts.
  ooint::Query who_is_anns_uncle(uncle_class);
  who_is_anns_uncle.Where("niece_nephew", Value::String("ssn-ann"))
      .Select("Ussn#", "who")
      .Select("name", "name");
  std::printf("\n?- uncle(ssn-ann, who)\n");
  for (const ooint::Bindings& row : Unwrap(client.Run(who_is_anns_uncle))) {
    std::printf("  who = %s, name = %s\n",
                row.at("who").ToString().c_str(),
                row.at("name").ToString().c_str());
  }

  // The stored uncle remains visible through the same concept.
  ooint::Query who_is_carls_uncle(uncle_class);
  who_is_carls_uncle.Where("niece_nephew", Value::String("ssn-carl"))
      .Select("name", "name");
  std::printf("\n?- uncle(ssn-carl, who)\n");
  for (const ooint::Bindings& row : Unwrap(client.Run(who_is_carls_uncle))) {
    std::printf("  name = %s (stored locally in RelativesDB)\n",
                row.at("name").ToString().c_str());
  }

  // Autonomy check: the federated query wrote nothing into S2.
  std::printf("\nRelativesDB still stores %zu object(s) — autonomy "
              "preserved.\n",
              fsm.FindAgent("S2")->store().size());
  return 0;
}
