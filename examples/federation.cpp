// Federation: the full three-layer FSM architecture (Fig. 1) over three
// component databases, one of them relational (transformed on arrival,
// Section 3), integrated with both multi-schema strategies of Fig. 2.
//
//   ./build/examples/federation

#include <cstdio>
#include <cstdlib>

#include "federation/fsm_client.h"
#include "transform/rel_to_oo.h"

namespace {

void Die(const ooint::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(ooint::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

// HR: an object-oriented employee database.
ooint::Schema MakeHrSchema() {
  ooint::Schema s("HR");
  ooint::ClassDef staff("staff");
  staff.AddAttribute("ssn", ooint::ValueKind::kString)
      .AddAttribute("name", ooint::ValueKind::kString)
      .AddAttribute("salary", ooint::ValueKind::kInteger);
  if (auto r = s.AddClass(std::move(staff)); !r.ok()) Die(r.status());
  ooint::ClassDef manager("manager");
  manager.AddAttribute("ssn", ooint::ValueKind::kString)
      .AddAttribute("bonus", ooint::ValueKind::kInteger);
  if (auto r = s.AddClass(std::move(manager)); !r.ok()) Die(r.status());
  if (auto st = s.AddIsA("manager", "staff"); !st.ok()) Die(st);
  if (auto st = s.Finalize(); !st.ok()) Die(st);
  return s;
}

// Payroll: a *relational* database, transformed into OO on arrival.
ooint::RelationalSchema MakePayrollRelational() {
  ooint::RelationalSchema db("Payroll");
  if (auto s = db.AddRelation(
          {"department",
           {{"did", ooint::ValueKind::kInteger, true, "", ""},
            {"dname", ooint::ValueKind::kString, false, "", ""}}});
      !s.ok()) {
    Die(s);
  }
  if (auto s = db.AddRelation(
          {"employee",
           {{"ssn", ooint::ValueKind::kString, true, "", ""},
            {"full_name", ooint::ValueKind::kString, false, "", ""},
            {"dept", ooint::ValueKind::kInteger, false, "department",
             "did"}}});
      !s.ok()) {
    Die(s);
  }
  return db;
}

// Projects: another object database.
ooint::Schema MakeProjectsSchema() {
  ooint::Schema s("Projects");
  ooint::ClassDef worker("worker");
  worker.AddAttribute("ssn", ooint::ValueKind::kString)
      .AddAttribute("project", ooint::ValueKind::kString);
  if (auto r = s.AddClass(std::move(worker)); !r.ok()) Die(r.status());
  if (auto st = s.Finalize(); !st.ok()) Die(st);
  return s;
}

const char* kAssertions = R"(
# All three databases describe the same workforce.
assert HR.staff == Payroll.employee {
  attr: HR.staff.ssn == Payroll.employee.ssn;
  attr: HR.staff.name == Payroll.employee.full_name;
}
assert HR.staff == Projects.worker {
  attr: HR.staff.ssn == Projects.worker.ssn;
}
assert Payroll.employee == Projects.worker {
  attr: Payroll.employee.ssn == Projects.worker.ssn;
}
)";

void Populate(ooint::Fsm* fsm) {
  using ooint::Value;
  ooint::InstanceStore& hr = fsm->FindAgent("HR")->store();
  ooint::Object* ann = Unwrap(hr.NewObject("staff"));
  ann->Set("ssn", Value::String("s1"))
      .Set("name", Value::String("Ann"))
      .Set("salary", Value::Integer(5000));
  ooint::Object* bob = Unwrap(hr.NewObject("manager"));
  bob->Set("ssn", Value::String("s2")).Set("bonus", Value::Integer(900));

  ooint::InstanceStore& payroll = fsm->FindAgent("Payroll")->store();
  ooint::Object* dept = Unwrap(payroll.NewObject("department"));
  dept->Set("did", Value::Integer(7)).Set("dname", Value::String("R&D"));
  ooint::Object* emp = Unwrap(payroll.NewObject("employee"));
  emp->Set("ssn", Value::String("s1"))
      .Set("full_name", Value::String("Ann B."));
  emp->AddAggTarget("dept", dept->oid());

  ooint::InstanceStore& projects = fsm->FindAgent("Projects")->store();
  ooint::Object* worker = Unwrap(projects.NewObject("worker"));
  worker->Set("ssn", Value::String("s1"))
      .Set("project", Value::String("federation"));
}

void Report(ooint::FsmClient* client, const char* label) {
  const ooint::GlobalSchema& global = client->global();
  std::printf("--- %s: %zu round(s), %zu global classes ---\n", label,
              global.rounds, global.schema.NumClasses());
  std::printf("%s\n", global.schema.ToString().c_str());
  std::printf("stats: %s\n\n", global.total_stats.ToString().c_str());
}

}  // namespace

int main() {
  ooint::Fsm fsm;
  if (auto s = fsm.RegisterAgent(Unwrap(ooint::FsmAgent::Create(
          "agent-hr", "ontos", "HRDB", MakeHrSchema())));
      !s.ok()) {
    Die(s);
  }
  // The relational payroll database is transformed on arrival (ref [6]):
  // relations → classes, the dept foreign key → an aggregation function.
  if (auto s = fsm.RegisterAgent(Unwrap(ooint::FsmAgent::FromRelational(
          "agent-payroll", "informix", MakePayrollRelational())));
      !s.ok()) {
    Die(s);
  }
  if (auto s = fsm.RegisterAgent(Unwrap(ooint::FsmAgent::Create(
          "agent-projects", "oracle", "ProjectsDB", MakeProjectsSchema())));
      !s.ok()) {
    Die(s);
  }
  std::printf("transformed Payroll schema:\n%s\n",
              fsm.FindAgent("Payroll")->schema().ToString().c_str());

  if (auto s = fsm.DeclareAssertions(kAssertions); !s.ok()) Die(s);
  Populate(&fsm);

  // Strategy (a): accumulation, one schema at a time (Fig. 2(a)).
  ooint::FsmClient accumulation(&fsm);
  if (auto s = accumulation.Connect(ooint::Fsm::Strategy::kAccumulation);
      !s.ok()) {
    Die(s);
  }
  Report(&accumulation, "accumulation strategy");

  // Strategy (b): balanced pairing (Fig. 2(b)).
  ooint::FsmClient balanced(&fsm);
  if (auto s = balanced.Connect(ooint::Fsm::Strategy::kBalanced); !s.ok()) {
    Die(s);
  }
  Report(&balanced, "balanced strategy");

  // Query the global workforce concept: attributes from all three
  // databases are visible on the shared entity.
  const std::string staff =
      Unwrap(accumulation.GlobalNameOf("HR", "staff"));
  std::printf("extent of %s:\n", staff.c_str());
  for (const ooint::Fact* fact : Unwrap(accumulation.Extent(staff))) {
    std::printf("  %s\n", fact->ToString().c_str());
  }
  return 0;
}
