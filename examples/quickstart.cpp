// Quickstart: integrate the paper's two university schemas (Fig. 18 /
// Appendix A) and print the resulting global schema.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "assertions/parser.h"
#include "integrate/integrator.h"
#include "integrate/naive_integrator.h"
#include "workload/fixtures.h"

namespace {

void Die(const ooint::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(ooint::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  // 1. The two local object-oriented schemas (normally exported by
  //    FSM-agents after schema transformation).
  ooint::Fixture fixture = Unwrap(ooint::MakeUniversityFixture());
  std::printf("== local schema S1 ==\n%s\n", fixture.s1.ToString().c_str());
  std::printf("== local schema S2 ==\n%s\n", fixture.s2.ToString().c_str());

  // 2. The correspondence assertions, written in the textual assertion
  //    language (person ≡ human, lecturer ⊆ employee/faculty,
  //    student ∩ faculty).
  std::printf("== correspondence assertions ==\n%s\n",
              fixture.assertion_text.c_str());
  ooint::AssertionSet assertions =
      Unwrap(ooint::AssertionParser::Parse(fixture.assertion_text));
  ooint::Status valid = assertions.Validate(fixture.s1, fixture.s2);
  if (!valid.ok()) Die(valid);

  // 3. Integrate with the paper's optimized algorithm
  //    (schema_integration + path_labelling).
  ooint::IntegrationOutcome outcome = Unwrap(
      ooint::Integrator::Integrate(fixture.s1, fixture.s2, assertions));
  std::printf("== integrated schema ==\n%s\n",
              outcome.schema.ToString().c_str());
  std::printf("== integration stats (optimized) ==\n%s\n\n",
              outcome.stats.ToString().c_str());

  // 4. Compare against the naive baseline: same semantics, more work.
  ooint::IntegrationOutcome naive = Unwrap(
      ooint::NaiveIntegrator::Integrate(fixture.s1, fixture.s2, assertions));
  std::printf("== integration stats (naive baseline) ==\n%s\n",
              naive.stats.ToString().c_str());
  std::printf(
      "\npairs checked: naive=%zu optimized=%zu (the Section 6 claim)\n",
      naive.stats.pairs_checked, outcome.stats.pairs_checked);
  std::printf("is-a closures equal: %s\n",
              naive.schema.IsAClosure() == outcome.schema.IsAClosure()
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
