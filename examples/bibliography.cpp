// Bibliography: the Book/Author path-correspondence problem
// (Examples 1, 4 and 11; Fig. 6).
//
// S1 stores books with a nested structured author attribute; S2 models
// the same world from the author's perspective with a nested book
// attribute. The path equivalence S1(Book·author) ≡ S2(Author·book) is
// declared as two derivation assertions, which the rule generator turns
// into inference rules over nested O-terms; querying the integrated
// Author concept then yields author views derived from stored books.
//
//   ./build/examples/bibliography

#include <cstdio>
#include <cstdlib>

#include "assertions/parser.h"
#include "federation/fsm_client.h"
#include "rules/rule_generator.h"
#include "workload/fixtures.h"

namespace {

void Die(const ooint::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(ooint::Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  using ooint::Value;

  ooint::Fixture fixture = Unwrap(ooint::MakeBibliographyFixture());

  // Show the generated rules first (Example 11's shapes).
  {
    ooint::AssertionSet assertions =
        Unwrap(ooint::AssertionParser::Parse(fixture.assertion_text));
    ooint::RuleGenerator generator;
    for (const ooint::Assertion* derivation : assertions.AllDerivations()) {
      for (const ooint::Rule& rule :
           Unwrap(generator.Generate(*derivation))) {
        std::printf("rule: %s\n", rule.ToString().c_str());
      }
    }
  }

  // Federate one library database holding books only.
  std::unique_ptr<ooint::FsmAgent> library = Unwrap(ooint::FsmAgent::Create(
      "FSM-agent1", "ontos", "LibraryDB", fixture.s1));
  std::unique_ptr<ooint::FsmAgent> authors = Unwrap(ooint::FsmAgent::Create(
      "FSM-agent2", "ontos", "AuthorsDB", fixture.s2));

  {
    ooint::InstanceStore& store = library->store();
    ooint::Object* tanenbaum = Unwrap(store.NewObject("person_info"));
    tanenbaum->Set("name", Value::String("Tanenbaum"))
        .Set("birthday", Value::OfDate({1944, 3, 16}));
    ooint::Object* book = Unwrap(store.NewObject("Book"));
    book->Set("ISBN", Value::String("0-13-092971-5"))
        .Set("title", Value::String("Modern Operating Systems"))
        .Set("author", Value::OfOid(tanenbaum->oid()));
  }

  ooint::Fsm fsm;
  if (auto s = fsm.RegisterAgent(std::move(library)); !s.ok()) Die(s);
  if (auto s = fsm.RegisterAgent(std::move(authors)); !s.ok()) Die(s);
  if (auto s = fsm.DeclareAssertions(fixture.assertion_text); !s.ok()) Die(s);

  ooint::FsmClient client(&fsm);
  if (auto s = client.Connect(); !s.ok()) Die(s);

  // Every stored book induces a derived Author view (nested attributes
  // flatten to dotted names: "book.ISBN", "book.title").
  const std::string author_class =
      Unwrap(client.GlobalNameOf("S2", "Author"));
  std::printf("\nderived extent of %s:\n", author_class.c_str());
  for (const ooint::Fact* fact : Unwrap(client.Extent(author_class))) {
    std::printf("  %s\n", fact->ToString().c_str());
  }

  // Query: which author view corresponds to ISBN 0-13-092971-5?
  ooint::Query by_isbn(author_class);
  by_isbn.Where("book.ISBN", Value::String("0-13-092971-5"))
      .Select("book.title", "title");
  std::printf("\n?- Author(book.ISBN = 0-13-092971-5)\n");
  for (const ooint::Bindings& row : Unwrap(client.Run(by_isbn))) {
    std::printf("  title = %s\n", row.at("title").ToString().c_str());
  }
  return 0;
}
