#include "workload/fixtures.h"

#include "common/string_util.h"

namespace ooint {

namespace {

Status FinalizeBoth(Fixture* fixture) {
  OOINT_RETURN_IF_ERROR(fixture->s1.Finalize());
  OOINT_RETURN_IF_ERROR(fixture->s2.Finalize());
  return Status::OK();
}

}  // namespace

Result<Fixture> MakeUniversityFixture() {
  Fixture f;
  // S1.
  {
    ClassDef person("person");
    person.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("full_name", ValueKind::kString)
        .AddSetAttribute("interests", ValueKind::kString)
        .AddAttribute("city", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(person)).status());
    ClassDef student("student");
    student.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("name", ValueKind::kString)
        .AddAttribute("study_support", ValueKind::kInteger);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(student)).status());
    ClassDef lecturer("lecturer");
    lecturer.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("course", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(lecturer)).status());
    ClassDef ta("teaching_assistant");
    ta.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("hours", ValueKind::kInteger);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(ta)).status());
    OOINT_RETURN_IF_ERROR(f.s1.AddIsA("student", "person"));
    OOINT_RETURN_IF_ERROR(f.s1.AddIsA("lecturer", "person"));
    OOINT_RETURN_IF_ERROR(f.s1.AddIsA("teaching_assistant", "lecturer"));
  }
  // S2.
  {
    ClassDef human("human");
    human.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("name", ValueKind::kString)
        .AddSetAttribute("hobby", ValueKind::kString)
        .AddAttribute("street-number", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(human)).status());
    ClassDef employee("employee");
    employee.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("salary", ValueKind::kInteger);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(employee)).status());
    ClassDef faculty("faculty");
    faculty.AddAttribute("fssn#", ValueKind::kString)
        .AddAttribute("name", ValueKind::kString)
        .AddAttribute("income", ValueKind::kInteger);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(faculty)).status());
    ClassDef professor("professor");
    professor.AddAttribute("fssn#", ValueKind::kString)
        .AddAttribute("chair", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(professor)).status());
    OOINT_RETURN_IF_ERROR(f.s2.AddIsA("employee", "human"));
    OOINT_RETURN_IF_ERROR(f.s2.AddIsA("faculty", "employee"));
    OOINT_RETURN_IF_ERROR(f.s2.AddIsA("professor", "faculty"));
  }
  f.assertion_text = R"(
# Fig. 4(a): person and human are the same concept.
assert S1.person == S2.human {
  attr: S1.person.ssn# == S2.human.ssn#;
  attr: S1.person.full_name == S2.human.name;
  attr: S1.person.interests >= S2.human.hobby;
  attr: S1.person.city alpha(address) S2.human.street-number;
}
# Appendix A: lecturers are employees, more precisely faculty members.
assert S1.lecturer <= S2.employee;
assert S1.lecturer <= S2.faculty;
# Fig. 4(c): some students are faculty members (working students).
assert S1.student ~ S2.faculty {
  attr: S1.student.ssn# == S2.faculty.fssn#;
  attr: S1.student.name == S2.faculty.name;
  attr: S1.student.study_support ~ S2.faculty.income;
}
)";
  OOINT_RETURN_IF_ERROR(FinalizeBoth(&f));
  return f;
}

Result<Fixture> MakeGenealogyFixture() {
  Fixture f;
  {
    ClassDef parent("parent");
    parent.AddAttribute("Pssn#", ValueKind::kString)
        .AddAttribute("name", ValueKind::kString)
        .AddSetAttribute("children", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(parent)).status());
    ClassDef brother("brother");
    brother.AddAttribute("Bssn#", ValueKind::kString)
        .AddAttribute("name", ValueKind::kString)
        .AddSetAttribute("brothers", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(brother)).status());
  }
  {
    ClassDef uncle("uncle");
    uncle.AddAttribute("Ussn#", ValueKind::kString)
        .AddAttribute("name", ValueKind::kString)
        .AddSetAttribute("niece_nephew", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(uncle)).status());
  }
  f.assertion_text = R"(
# Example 3: an uncle is a brother of a parent.
assert S1(parent, brother) -> S2.uncle {
  value(S1): S1.parent.Pssn# in S1.brother.brothers;
  attr: S1.brother.Bssn# == S2.uncle.Ussn#;
  attr: S1.brother.name == S2.uncle.name;
  attr: S1.parent.children >= S2.uncle.niece_nephew;
}
)";
  OOINT_RETURN_IF_ERROR(FinalizeBoth(&f));
  return f;
}

Status PopulateGenealogy(InstanceStore* s1_store, InstanceStore* s2_store,
                         size_t num_families, bool materialize_uncles) {
  for (size_t family = 0; family < num_families; ++family) {
    const std::string parent_ssn = StrCat("P", family);
    const std::string uncle_ssn = StrCat("U", family);
    const std::string child_a = StrCat("C", family, "a");
    const std::string child_b = StrCat("C", family, "b");
    {
      Result<Object*> parent = s1_store->NewObject("parent");
      if (!parent.ok()) return parent.status();
      parent.value()
          ->Set("Pssn#", Value::String(parent_ssn))
          .Set("name", Value::String(StrCat("parent_", family)))
          .Set("children", Value::Set({Value::String(child_a),
                                       Value::String(child_b)}));
    }
    {
      // The uncle, recorded in S1 as a brother whose `brothers` set
      // contains the parent.
      Result<Object*> brother = s1_store->NewObject("brother");
      if (!brother.ok()) return brother.status();
      brother.value()
          ->Set("Bssn#", Value::String(uncle_ssn))
          .Set("name", Value::String(StrCat("uncle_", family)))
          .Set("brothers", Value::Set({Value::String(parent_ssn)}));
    }
    if (materialize_uncles) {
      Result<Object*> uncle = s2_store->NewObject("uncle");
      if (!uncle.ok()) return uncle.status();
      uncle.value()
          ->Set("Ussn#", Value::String(uncle_ssn))
          .Set("name", Value::String(StrCat("uncle_", family)))
          .Set("niece_nephew", Value::Set({Value::String(child_a),
                                           Value::String(child_b)}));
    }
  }
  return Status::OK();
}

Result<Fixture> MakeBibliographyFixture() {
  Fixture f;
  {
    ClassDef person_info("person_info");
    person_info.AddAttribute("name", ValueKind::kString)
        .AddAttribute("birthday", ValueKind::kDate);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(person_info)).status());
    ClassDef book("Book");
    book.AddAttribute("ISBN", ValueKind::kString)
        .AddAttribute("title", ValueKind::kString)
        .AddClassAttribute("author", "person_info");
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(book)).status());
  }
  {
    ClassDef book_info("book_info");
    book_info.AddAttribute("ISBN", ValueKind::kString)
        .AddAttribute("title", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(book_info)).status());
    ClassDef author("Author");
    author.AddAttribute("name", ValueKind::kString)
        .AddAttribute("birthday", ValueKind::kDate)
        .AddClassAttribute("book", "book_info");
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(author)).status());
  }
  f.assertion_text = R"(
# Fig. 6(b): every Book yields an Author-side view of itself.
assert S1.Book -> S2.Author {
  attr: S1.Book.ISBN == S2.Author.book.ISBN;
  attr: S1.Book.title == S2.Author.book.title;
}
# Fig. 6(c): every Author yields a Book-side view.
assert S2.Author -> S1.Book {
  attr: S2.Author.name == S1.Book.author.name;
  attr: S2.Author.birthday == S1.Book.author.birthday;
}
)";
  OOINT_RETURN_IF_ERROR(FinalizeBoth(&f));
  return f;
}

Status PopulateBibliography(InstanceStore* s1_store, size_t num_books) {
  for (size_t i = 0; i < num_books; ++i) {
    Result<Object*> info = s1_store->NewObject("person_info");
    if (!info.ok()) return info.status();
    info.value()
        ->Set("name", Value::String(StrCat("author_", i)))
        .Set("birthday",
             Value::OfDate({1950 + static_cast<int>(i % 50), 1, 1}));
    const Oid info_oid = info.value()->oid();
    Result<Object*> book = s1_store->NewObject("Book");
    if (!book.ok()) return book.status();
    book.value()
        ->Set("ISBN", Value::String(StrCat("isbn-", i)))
        .Set("title", Value::String(StrCat("title_", i)))
        .Set("author", Value::OfOid(info_oid));
  }
  return Status::OK();
}

Result<Fixture> MakeCarFixture(size_t num_cars) {
  Fixture f;
  {
    ClassDef car1("car1");
    car1.AddAttribute("time", ValueKind::kString)
        .AddAttribute("car-name", ValueKind::kString)
        .AddAttribute("price", ValueKind::kInteger);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(car1)).status());
  }
  {
    ClassDef car2("car2");
    car2.AddAttribute("time", ValueKind::kString);
    for (size_t i = 1; i <= num_cars; ++i) {
      car2.AddAttribute(StrCat("car-name_", i), ValueKind::kInteger);
    }
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(car2)).status());
  }
  // Fig. 10: one decomposed derivation assertion per car attribute —
  // "car2's column car-name_i holds car1's price where car-name equals
  // the constant car-name_i".
  std::string text;
  for (size_t i = 1; i <= num_cars; ++i) {
    text += StrCat(
        "assert S2.car2 -> S1.car1 {\n",
        "  attr: S2.car2.time == S1.car1.time;\n",
        "  attr: S2.car2.car-name_", i, " <= S1.car1.price with ",
        "S1.car1.car-name == \"car-name_", i, "\";\n", "}\n");
  }
  f.assertion_text = std::move(text);
  OOINT_RETURN_IF_ERROR(FinalizeBoth(&f));
  return f;
}

Result<Fixture> MakeStockFixture() {
  Fixture f;
  {
    ClassDef stock_ma("stock-in-March-April");
    stock_ma.AddAttribute("stock-name", ValueKind::kString)
        .AddAttribute("price-in-March", ValueKind::kInteger)
        .AddAttribute("price-in-April", ValueKind::kInteger);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(stock_ma)).status());
  }
  {
    ClassDef stock("stock");
    stock.AddAttribute("time", ValueKind::kString)
        .AddAttribute("stock-name", ValueKind::kString)
        .AddAttribute("price", ValueKind::kInteger);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(stock)).status());
  }
  f.assertion_text = R"(
# Section 4.1: monthly price columns are inclusions of the generic price
# attribute, qualified by the month.
assert S2.stock -> S1.stock-in-March-April {
  attr: S1.stock-in-March-April.stock-name == S2.stock.stock-name;
  attr: S1.stock-in-March-April.price-in-March <= S2.stock.price with S2.stock.time == "March";
  attr: S1.stock-in-March-April.price-in-April <= S2.stock.price with S2.stock.time == "April";
}
)";
  OOINT_RETURN_IF_ERROR(FinalizeBoth(&f));
  return f;
}

Result<Fixture> MakeEmplDeptFixture() {
  Fixture f;
  {
    ClassDef empl("Empl");
    empl.AddAttribute("e_name", ValueKind::kString)
        .AddAggregation("work_in", "Dept", Cardinality::ManyToOne());
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(empl)).status());
    ClassDef dept("Dept");
    dept.AddAttribute("d_name", ValueKind::kString)
        .AddAggregation("manager", "Empl", Cardinality::ManyToOne());
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(dept)).status());
  }
  OOINT_RETURN_IF_ERROR(
      f.s2.AddClass(ClassDef("placeholder")).status());
  OOINT_RETURN_IF_ERROR(FinalizeBoth(&f));
  return f;
}

Result<Fixture> MakeShowcaseFixture() {
  Fixture f;
  {
    ClassDef person("person");
    person.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("full_name", ValueKind::kString)
        .AddSetAttribute("interests", ValueKind::kString)
        .AddAttribute("city", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(person)).status());
    ClassDef book("book");
    book.AddAttribute("ISBN", ValueKind::kString)
        .AddAttribute("title", ValueKind::kString)
        .AddAttribute("auther", ValueKind::kString)
        .AddAggregation("published_by", "publisher",
                        Cardinality::ManyToOne());
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(book)).status());
    ClassDef publisher("publisher");
    publisher.AddAttribute("pname", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(publisher)).status());
    ClassDef man("man");
    man.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("name", ValueKind::kString)
        .AddAttribute("occupation", ValueKind::kString)
        .AddAggregation("spouse", "person", Cardinality::OneToOne());
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(man)).status());
    ClassDef restaurant1("restaurant-1");
    restaurant1.AddAttribute("rname", ValueKind::kString)
        .AddAttribute("category", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s1.AddClass(std::move(restaurant1)).status());
    OOINT_RETURN_IF_ERROR(f.s1.AddIsA("man", "person"));
  }
  {
    ClassDef human("human");
    human.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("name", ValueKind::kString)
        .AddSetAttribute("hobby", ValueKind::kString)
        .AddAttribute("street-number", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(human)).status());
    ClassDef publication("publication");
    publication.AddAttribute("ISBN", ValueKind::kString)
        .AddAttribute("title", ValueKind::kString)
        .AddAttribute("contributors", ValueKind::kString)
        .AddAggregation("published_by", "press", Cardinality::ManyToOne());
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(publication)).status());
    ClassDef press("press");
    press.AddAttribute("pname", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(press)).status());
    ClassDef woman("woman");
    woman.AddAttribute("ssn#", ValueKind::kString)
        .AddAttribute("name", ValueKind::kString)
        .AddAttribute("occupation", ValueKind::kString)
        .AddAggregation("spouse", "human", Cardinality::OneToOne());
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(woman)).status());
    ClassDef restaurant2("restaurant-2");
    restaurant2.AddAttribute("rname", ValueKind::kString)
        .AddAttribute("cuisine", ValueKind::kString);
    OOINT_RETURN_IF_ERROR(f.s2.AddClass(std::move(restaurant2)).status());
    OOINT_RETURN_IF_ERROR(f.s2.AddIsA("woman", "human"));
  }
  f.assertion_text = R"(
assert S1.person == S2.human {
  attr: S1.person.ssn# == S2.human.ssn#;
  attr: S1.person.full_name == S2.human.name;
  attr: S1.person.interests >= S2.human.hobby;
  attr: S1.person.city alpha(address) S2.human.street-number;
}
assert S1.book <= S2.publication {
  attr: S1.book.ISBN == S2.publication.ISBN;
  attr: S1.book.title == S2.publication.title;
  attr: S1.book.auther <= S2.publication.contributors;
  agg: S1.book.published_by == S2.publication.published_by;
}
assert S1.publisher == S2.press {
  attr: S1.publisher.pname == S2.press.pname;
}
assert S1.man ! S2.woman {
  attr: S1.man.ssn# == S2.woman.ssn#;
  attr: S1.man.name == S2.woman.name;
  attr: S1.man.occupation == S2.woman.occupation;
  agg: S1.man.spouse rev S2.woman.spouse;
}
assert S1.restaurant-1 == S2.restaurant-2 {
  attr: S1.restaurant-1.rname == S2.restaurant-2.rname;
  attr: S2.restaurant-2.cuisine beta S1.restaurant-1.category;
}
)";
  OOINT_RETURN_IF_ERROR(FinalizeBoth(&f));
  return f;
}

}  // namespace ooint
