#ifndef OOINT_WORKLOAD_DELTA_H_
#define OOINT_WORKLOAD_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/schema.h"
#include "workload/populator.h"

namespace ooint {

/// One live-update operation against a federation's agent stores, in a
/// store-independent form (DESIGN.md §4j). Interpretation is fully
/// deterministic — a delete selects its victim by `pick` modulo the
/// class's current extent size, an op referencing a class the (possibly
/// shrunk) schema no longer declares is a no-op — which is what lets
/// the conformance shrinker drop and merge trace pieces without ever
/// invalidating the trace.
struct DeltaOp {
  enum class Kind {
    /// Inserts `object` into side `side`'s store and feeds it.
    kInsert,
    /// Removes the `pick % extent-size`-th live object of `class_name`
    /// (skipped when the extent is empty) and feeds the pre-removal
    /// copy.
    kDelete,
    /// Feeds a deletion of `object` *without* it ever being part of
    /// the maintained base state — the delete-never-inserted edge case
    /// (a no-op for the maintenance engine, not an error).
    kPhantomDelete,
  };

  Kind kind = Kind::kInsert;
  /// Which agent store the op targets: 1 or 2.
  int side = 1;
  /// kInsert / kPhantomDelete: the object, scalar attributes only.
  ObjectSpec object;
  /// kDelete: victim class and selector.
  std::string class_name;
  std::uint64_t pick = 0;

  std::string ToString() const;
};

/// One batch of operations applied (and fed to FsmClient::ApplyDelta)
/// atomically, followed by a conformance checkpoint.
struct DeltaBatch {
  std::vector<DeltaOp> ops;
};

/// A seeded interleaving of inserts / deletes across both agent
/// stores: the workload of oracle family 10 (delta-vs-rebuild).
struct DeltaTrace {
  std::vector<DeltaBatch> batches;

  size_t OpCount() const;
  bool empty() const { return batches.empty(); }
};

/// Knobs of the trace generator.
struct DeltaTraceGenOptions {
  /// Batches per trace (min..max, seed-drawn).
  size_t min_batches = 2;
  size_t max_batches = 4;
  /// Operations per batch (1..max, seed-drawn).
  size_t max_ops_per_batch = 4;
  /// Attribute values are drawn from the same-sized pool as the
  /// instance generator's, so inserted objects join with the existing
  /// population.
  size_t value_pool = 8;
  std::uint64_t seed = 99;
};

/// Builds a deterministic random delta trace against the (finalized)
/// schema pair: each op draws a side, a kind (inserts dominate, with a
/// steady stream of deletes and an occasional phantom delete), and —
/// for inserts — a fresh scalar-only object of a seed-drawn class.
Result<DeltaTrace> GenerateDeltaTrace(const Schema& s1, const Schema& s2,
                                      const DeltaTraceGenOptions& options);

/// Renders the trace batch by batch (the repro format RenderCase
/// embeds).
std::string DeltaTraceToText(const DeltaTrace& trace);

}  // namespace ooint

#endif  // OOINT_WORKLOAD_DELTA_H_
