#include "workload/populator.h"

#include <cstdio>
#include <set>

#include "common/string_util.h"

namespace ooint {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t Draw(std::uint64_t seed, std::uint64_t index) {
  return SplitMix64(seed ^ (index * 0x2545f4914f6cdd1dULL));
}

/// One pool value of the requested kind. Pools are schema-independent,
/// so keys generated for two different stores collide and cross-schema
/// joins (derivation rules matching on key equality) find partners.
Value PoolValue(ValueKind kind, std::uint64_t draw, size_t pool) {
  const std::uint64_t d = draw % (pool == 0 ? 1 : pool);
  switch (kind) {
    case ValueKind::kString:
      return Value::String(StrCat("k", d));
    case ValueKind::kInteger:
      return Value::Integer(static_cast<std::int64_t>(d));
    case ValueKind::kReal:
      return Value::Real(static_cast<double>(d) + 0.5);
    case ValueKind::kBoolean:
      return Value::Boolean(d % 2 == 0);
    case ValueKind::kCharacter:
      return Value::Character(static_cast<char>('a' + (d % 26)));
    case ValueKind::kDate:
      return Value::OfDate({2000 + static_cast<int>(d % 30),
                            1 + static_cast<int>(draw % 12),
                            1 + static_cast<int>((draw >> 8) % 28)});
    default:
      return Value::Null();
  }
}

}  // namespace

Result<StoreSpec> GenerateInstances(const Schema& schema,
                                    const PopulateOptions& options) {
  if (!schema.finalized()) {
    return Status::FailedPrecondition("schema must be finalized");
  }
  const size_t n = schema.NumClasses();
  // Objects per class: one each (coverage) while the budget lasts, the
  // remainder spread by seeded draws.
  std::vector<size_t> counts(n, 0);
  for (size_t c = 0; c < n && c < options.num_objects; ++c) counts[c] = 1;
  for (size_t extra = n; extra < options.num_objects; ++extra) {
    counts[Draw(options.seed, extra) % n] += 1;
  }

  StoreSpec spec;
  spec.objects.reserve(options.num_objects);
  // Objects in class-index order: generated schemas aggregate towards
  // lower-indexed classes (ref_parent), so targets always precede their
  // sources, which is what ApplySpec requires.
  std::vector<std::vector<size_t>> extent(n);  // class -> object indexes
  for (size_t c = 0; c < n; ++c) {
    const ClassDef& class_def = schema.class_def(static_cast<ClassId>(c));
    for (size_t k = 0; k < counts[c]; ++k) {
      const size_t index = spec.objects.size();
      ObjectSpec object;
      object.class_name = class_def.name();
      size_t attr_index = 0;
      for (const Attribute& attr : class_def.attributes()) {
        const std::uint64_t d =
            Draw(options.seed, 0x10001ULL + index * 131ULL + attr_index);
        ++attr_index;
        if (attr.type.is_class()) continue;  // class-typed: left unset
        if (attr.multi_valued) {
          std::vector<Value> elements;
          const size_t count = d % 3;  // 0..2 elements
          for (size_t e = 0; e < count; ++e) {
            elements.push_back(PoolValue(attr.type.scalar,
                                         Draw(options.seed, d + e + 1),
                                         options.value_pool));
          }
          object.attrs[attr.name] = Value::Set(std::move(elements));
        } else {
          object.attrs[attr.name] =
              PoolValue(attr.type.scalar, d, options.value_pool);
        }
      }
      extent[c].push_back(index);
      spec.objects.push_back(std::move(object));
    }
  }

  // Aggregation targets, respecting the cardinality constraints.
  for (size_t c = 0; c < n; ++c) {
    const ClassDef& class_def = schema.class_def(static_cast<ClassId>(c));
    for (const AggregationFunction& fn : class_def.aggregations()) {
      const ClassId range = schema.FindClass(fn.range_class);
      if (range == kInvalidClassId) continue;
      // Collect candidate targets that precede every source of class c
      // (sources of class c start after all of range's objects only
      // when range < c; otherwise restrict per source below).
      const std::vector<size_t>& targets = extent[static_cast<size_t>(range)];
      // Domain-side `1`: each target serves at most one source.
      const bool injective = fn.cardinality.domain() == Cardinality::Mult::kOne;
      const bool single = fn.cardinality.range() == Cardinality::Mult::kOne;
      size_t next_unused = 0;
      for (size_t source_pos = 0; source_pos < extent[c].size();
           ++source_pos) {
        const size_t source = extent[c][source_pos];
        const std::uint64_t d =
            Draw(options.seed, 0x20002ULL + source * 977ULL);
        const size_t want = single ? 1 : 1 + d % 3;
        std::set<size_t> chosen;
        for (size_t t = 0; t < want; ++t) {
          size_t target;
          if (injective) {
            // Skip forward to the next unused target.
            while (next_unused < targets.size() &&
                   targets[next_unused] >= source) {
              ++next_unused;
            }
            if (next_unused >= targets.size()) break;  // range exhausted
            target = targets[next_unused++];
          } else {
            if (targets.empty()) break;
            target = targets[(d >> (8 * t)) % targets.size()];
            if (target >= source) continue;  // keep targets-before-sources
          }
          chosen.insert(target);
        }
        if (chosen.empty() && fn.cardinality.mandatory()) {
          return Status::InvalidArgument(
              StrCat("mandatory aggregation ", class_def.name(), ".",
                     fn.name, " cannot be satisfied: range extent of ",
                     fn.range_class, " exhausted"));
        }
        if (!chosen.empty()) {
          spec.objects[source].agg_targets[fn.name] =
              std::vector<size_t>(chosen.begin(), chosen.end());
        }
      }
    }
  }
  return spec;
}

Result<std::vector<Oid>> ApplySpec(const StoreSpec& spec,
                                   InstanceStore* store) {
  std::vector<Oid> oids;
  oids.reserve(spec.objects.size());
  for (size_t i = 0; i < spec.objects.size(); ++i) {
    const ObjectSpec& object_spec = spec.objects[i];
    for (const auto& [fn, targets] : object_spec.agg_targets) {
      for (size_t target : targets) {
        if (target >= i) {
          return Status::InvalidArgument(
              StrCat("object ", i, " aggregation ", fn,
                     " references object ", target,
                     " which does not precede it"));
        }
      }
    }
    Result<Object*> created = store->NewObject(object_spec.class_name);
    OOINT_RETURN_IF_ERROR(created.status());
    Object* object = created.value();
    for (const auto& [name, value] : object_spec.attrs) {
      object->Set(name, value);
    }
    for (const auto& [fn, targets] : object_spec.agg_targets) {
      for (size_t target : targets) {
        object->AddAggTarget(fn, oids[target]);
      }
    }
    oids.push_back(object->oid());
  }
  return oids;
}

namespace {

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Renders one value in the data-definition language (the syntax
/// InstanceParser::Load accepts).
std::string RenderValue(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kString:
      return EscapeString(value.AsString());
    case ValueKind::kInteger:
      return std::to_string(value.AsInteger());
    case ValueKind::kReal: {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.6f", value.AsReal());
      return buffer;
    }
    case ValueKind::kBoolean:
      return value.AsBoolean() ? "true" : "false";
    case ValueKind::kCharacter:
      return EscapeString(std::string(1, value.AsCharacter()));
    case ValueKind::kDate: {
      const Date& d = value.AsDate();
      return StrCat("date(", d.year, ", ", d.month, ", ", d.day, ")");
    }
    case ValueKind::kSet: {
      std::string out = "{";
      bool first = true;
      for (const Value& element : value.AsSet()) {
        if (!first) out += ", ";
        first = false;
        out += RenderValue(element);
      }
      return out + "}";
    }
    default:
      return "";  // Null / OID attribute values are skipped by the caller
  }
}

}  // namespace

std::string StoreSpecToText(const StoreSpec& spec) {
  std::string out;
  for (size_t i = 0; i < spec.objects.size(); ++i) {
    const ObjectSpec& object = spec.objects[i];
    out += StrCat("insert ", object.class_name, " as o", i, " {\n");
    for (const auto& [name, value] : object.attrs) {
      if (value.is_null() || value.kind() == ValueKind::kOid) continue;
      out += StrCat("  ", name, ": ", RenderValue(value), ";\n");
    }
    for (const auto& [fn, targets] : object.agg_targets) {
      if (targets.empty()) continue;
      if (targets.size() == 1) {
        out += StrCat("  ", fn, ": ref(o", targets.front(), ");\n");
      } else {
        out += StrCat("  ", fn, ": {");
        for (size_t t = 0; t < targets.size(); ++t) {
          if (t > 0) out += ", ";
          out += StrCat("ref(o", targets[t], ")");
        }
        out += "};\n";
      }
    }
    out += "}\n";
  }
  return out;
}

}  // namespace ooint
