#include "workload/delta.h"

#include "common/string_util.h"

namespace ooint {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t Draw(std::uint64_t seed, std::uint64_t index) {
  return SplitMix64(seed ^ (index * 0x2545f4914f6cdd1dULL));
}

/// Same pool scheme as the instance generator's, so delta-inserted
/// keys collide with the population and rule joins find partners.
Value PoolValue(ValueKind kind, std::uint64_t draw, size_t pool) {
  const std::uint64_t d = draw % (pool == 0 ? 1 : pool);
  switch (kind) {
    case ValueKind::kString:
      return Value::String(StrCat("k", d));
    case ValueKind::kInteger:
      return Value::Integer(static_cast<std::int64_t>(d));
    case ValueKind::kReal:
      return Value::Real(static_cast<double>(d) + 0.5);
    case ValueKind::kBoolean:
      return Value::Boolean(d % 2 == 0);
    case ValueKind::kCharacter:
      return Value::Character(static_cast<char>('a' + (d % 26)));
    case ValueKind::kDate:
      return Value::OfDate({2000 + static_cast<int>(d % 30),
                            1 + static_cast<int>(draw % 12),
                            1 + static_cast<int>((draw >> 8) % 28)});
    default:
      return Value::Null();
  }
}

/// A fresh scalar-only object of class `id`: every non-class-typed
/// attribute gets a pool value (multi-valued ones a 0..2 element set).
/// Aggregations are deliberately left unset — delta objects stand
/// alone, they never reference StoreSpec indexes.
ObjectSpec MakeObject(const Schema& schema, ClassId id, std::uint64_t seed,
                      std::uint64_t salt, size_t pool) {
  const ClassDef& class_def = schema.class_def(id);
  ObjectSpec object;
  object.class_name = class_def.name();
  size_t attr_index = 0;
  for (const Attribute& attr : class_def.attributes()) {
    const std::uint64_t d = Draw(seed, salt * 131ULL + attr_index);
    ++attr_index;
    if (attr.type.is_class()) continue;
    if (attr.multi_valued) {
      std::vector<Value> elements;
      const size_t count = d % 3;
      for (size_t e = 0; e < count; ++e) {
        elements.push_back(
            PoolValue(attr.type.scalar, Draw(seed, d + e + 1), pool));
      }
      object.attrs[attr.name] = Value::Set(std::move(elements));
    } else {
      object.attrs[attr.name] = PoolValue(attr.type.scalar, d, pool);
    }
  }
  return object;
}

}  // namespace

std::string DeltaOp::ToString() const {
  switch (kind) {
    case Kind::kDelete:
      return StrCat("delete from S", side, " class ", class_name, " pick ",
                    pick);
    case Kind::kPhantomDelete:
    case Kind::kInsert: {
      std::string out =
          StrCat(kind == Kind::kInsert ? "insert" : "phantom-delete",
                 " into S", side, " ", object.class_name, " {");
      for (const auto& [name, value] : object.attrs) {
        out += StrCat(" ", name, ": ", value.ToString(), ";");
      }
      out += " }";
      return out;
    }
  }
  return "?";
}

size_t DeltaTrace::OpCount() const {
  size_t count = 0;
  for (const DeltaBatch& batch : batches) count += batch.ops.size();
  return count;
}

Result<DeltaTrace> GenerateDeltaTrace(const Schema& s1, const Schema& s2,
                                      const DeltaTraceGenOptions& options) {
  if (!s1.finalized() || !s2.finalized()) {
    return Status::FailedPrecondition("schemas must be finalized");
  }
  if (options.min_batches > options.max_batches ||
      options.max_ops_per_batch == 0) {
    return Status::InvalidArgument("inconsistent delta trace bounds");
  }
  DeltaTrace trace;
  const size_t num_batches =
      options.min_batches +
      Draw(options.seed, 0) %
          (options.max_batches - options.min_batches + 1);
  std::uint64_t op_salt = 1;
  for (size_t b = 0; b < num_batches; ++b) {
    DeltaBatch batch;
    const size_t num_ops =
        1 + Draw(options.seed, 0x100 + b) % options.max_ops_per_batch;
    for (size_t o = 0; o < num_ops; ++o, ++op_salt) {
      DeltaOp op;
      op.side = (Draw(options.seed, 0x200 + op_salt) % 2 == 0) ? 1 : 2;
      const Schema& schema = (op.side == 1) ? s1 : s2;
      const ClassId id = static_cast<ClassId>(
          Draw(options.seed, 0x300 + op_salt) % schema.NumClasses());
      // Inserts dominate (~55%) with a steady delete stream (~35%) and
      // the occasional phantom delete (~10%).
      const std::uint64_t roll = Draw(options.seed, 0x400 + op_salt) % 20;
      if (roll < 11) {
        op.kind = DeltaOp::Kind::kInsert;
        op.object = MakeObject(schema, id, options.seed, op_salt,
                               options.value_pool);
      } else if (roll < 18) {
        op.kind = DeltaOp::Kind::kDelete;
        op.class_name = schema.class_def(id).name();
        op.pick = Draw(options.seed, 0x500 + op_salt);
      } else {
        op.kind = DeltaOp::Kind::kPhantomDelete;
        op.object = MakeObject(schema, id, options.seed,
                               0x8000ULL + op_salt, options.value_pool);
      }
      batch.ops.push_back(std::move(op));
    }
    trace.batches.push_back(std::move(batch));
  }
  return trace;
}

std::string DeltaTraceToText(const DeltaTrace& trace) {
  std::string out = StrCat("# delta trace: ", trace.batches.size(),
                           " batches, ", trace.OpCount(), " ops\n");
  for (size_t b = 0; b < trace.batches.size(); ++b) {
    out += StrCat("batch ", b, " {\n");
    for (const DeltaOp& op : trace.batches[b].ops) {
      out += StrCat("  ", op.ToString(), "\n");
    }
    out += "}\n";
  }
  return out;
}

}  // namespace ooint
