#ifndef OOINT_WORKLOAD_GENERATOR_H_
#define OOINT_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>

#include "assertions/assertion_set.h"
#include "common/result.h"
#include "model/schema.h"

namespace ooint {

/// Shape of a generated is-a graph.
enum class IsAShape {
  /// The Section 6.3 analysis setting: a complete `degree`-ary tree
  /// truncated at `num_classes` nodes.
  kCompleteTree,
  /// A seeded random DAG: each class draws 0..`max_parents` parents
  /// among the lower-indexed classes (so the graph is acyclic by
  /// construction), including multiple-inheritance diamonds and
  /// forests with several roots.
  kRandomDag,
};

/// Parameters of the synthetic schema generator.
struct SchemaGenOptions {
  std::string name = "S1";
  /// Total class count n.
  size_t num_classes = 15;
  IsAShape shape = IsAShape::kCompleteTree;
  /// kCompleteTree: fan-out d of the is-a tree.
  size_t degree = 2;
  /// kRandomDag: maximum is-a parents per class (multiple inheritance
  /// when > 1).
  size_t max_parents = 2;
  /// kRandomDag: probability that a class beyond the first is an extra
  /// root (no parents).
  double root_probability = 0.1;
  /// kRandomDag: probability of each parent slot beyond the first being
  /// filled.
  double extra_parent_probability = 0.25;
  /// Scalar attributes per class (a key attribute "key" is always
  /// added).
  size_t attrs_per_class = 3;
  /// When set, every non-root class also carries an aggregation
  /// function "ref_parent" to its (first) parent class, with a
  /// cardinality that alternates between [m:1] and [1:1] by index for
  /// trees and is drawn from the whole lattice for random DAGs —
  /// material for Principle 6's constraint-lattice resolution.
  bool with_aggregations = false;
  /// Prefix of generated class names ("<prefix><index>").
  std::string class_prefix = "c";
  std::uint64_t seed = 42;
};

/// Builds a deterministic synthetic schema per `options`.
Result<Schema> GenerateSchema(const SchemaGenOptions& options);

/// Builds the isomorphic counterpart of `schema` with classes renamed to
/// `class_prefix` — the §6.3 setting where "each concept from S1 has
/// exactly one equivalent counterpart from S2". Works for any is-a
/// shape, trees and DAGs alike.
Result<Schema> GenerateCounterpartSchema(const Schema& schema,
                                         const std::string& new_name,
                                         const std::string& class_prefix);

/// Mix of assertion kinds generated between a schema and its
/// counterpart. Fractions apply per class, in priority order
/// equivalence > inclusion > disjoint > derivation; the remainder gets
/// no assertion. All fractions must lie in [0, 1] and sum to at most 1;
/// GenerateAssertions returns InvalidArgument otherwise.
struct AssertionGenOptions {
  double equivalence_fraction = 1.0;
  double inclusion_fraction = 0.0;
  double disjoint_fraction = 0.0;
  double derivation_fraction = 0.0;
  /// Whether equivalences also carry attribute correspondences on the
  /// generated key attribute.
  bool attribute_correspondences = true;
  /// Whether equivalences also declare the generated ref_parent
  /// aggregation functions equivalent (requires schemas generated with
  /// with_aggregations).
  bool aggregation_correspondences = false;
  std::uint64_t seed = 7;
};

/// Generates assertions between `s1` class i ("c<i>") and its
/// counterpart in `s2` ("d<i>"), per the mix. Inclusions relate class i
/// of s1 to the counterpart of its parent in s2 (so labelled is-a paths
/// exist); derivations relate (class i, class i's parent) → counterpart.
Result<AssertionSet> GenerateAssertions(const Schema& s1, const Schema& s2,
                                        const std::string& s1_prefix,
                                        const std::string& s2_prefix,
                                        const AssertionGenOptions& options);

/// Mix of assertion kinds for *arbitrary* (non-isomorphic) schema
/// pairs: partners are drawn at random, all five assertion kinds of
/// Table 1 appear (≡, ⊆/⊇, ∩, ∅, →), and `inconsistent_fraction`
/// deliberately plants inclusion pairs that force a cycle in the
/// integrated is-a hierarchy (material for the consistency checker).
/// Fractions must lie in [0, 1] and the five kind fractions must sum to
/// at most 1.
struct RandomAssertionGenOptions {
  double equivalence_fraction = 0.3;
  double inclusion_fraction = 0.2;
  double overlap_fraction = 0.1;
  double disjoint_fraction = 0.1;
  double derivation_fraction = 0.1;
  /// Probability (per class with a parent) of planting a cycle-forcing
  /// inclusion pair. Sets generated with this > 0 are expected to fail
  /// CheckConsistency with kHierarchyCycle sometimes.
  double inconsistent_fraction = 0.0;
  /// Whether assertions carry attribute correspondences on the key
  /// attribute (emitted only when both classes declare "key").
  bool attribute_correspondences = true;
  /// Whether equivalences between classes that both carry the generated
  /// ref_parent aggregation also declare those functions equivalent.
  bool aggregation_correspondences = false;
  /// When true (the default), every s2 class is used by at most one
  /// set-relation assertion, so each class on either side participates
  /// in at most one of ≡/⊆/⊇/∩/∅ — the regime in which the naive and
  /// optimized integrators are comparable (observations 1–2 prune pairs
  /// around an already-matched class; a second assertion on such a pair
  /// would be silently skipped by the optimized traversal only).
  /// Derivations and planted inconsistencies are exempt.
  bool unique_partners = true;
  std::uint64_t seed = 7;
};

/// Generates a random assertion set between two arbitrary finalized
/// schemas (no size or shape relationship required). Every class of
/// `s1` draws at most one set-relation partner in `s2`; derivations are
/// generated in both directions. The result always passes
/// AssertionSet::Validate(s1, s2).
Result<AssertionSet> GenerateRandomAssertions(
    const Schema& s1, const Schema& s2,
    const RandomAssertionGenOptions& options);

}  // namespace ooint

#endif  // OOINT_WORKLOAD_GENERATOR_H_
