#ifndef OOINT_WORKLOAD_GENERATOR_H_
#define OOINT_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>

#include "assertions/assertion_set.h"
#include "common/result.h"
#include "model/schema.h"

namespace ooint {

/// Parameters of the synthetic schema generator (the Section 6.3
/// analysis setting: is-a trees of height h and degree d).
struct SchemaGenOptions {
  std::string name = "S1";
  /// Total class count n; the tree is a complete `degree`-ary tree
  /// truncated at n nodes.
  size_t num_classes = 15;
  /// Fan-out d of the is-a tree.
  size_t degree = 2;
  /// Scalar attributes per class (a key attribute "key" is always
  /// added).
  size_t attrs_per_class = 3;
  /// When set, every non-root class also carries an aggregation
  /// function "ref_parent" to its parent class, with a cardinality that
  /// alternates between [m:1] and [1:1] by index — material for
  /// Principle 6's constraint-lattice resolution.
  bool with_aggregations = false;
  /// Prefix of generated class names ("<prefix><index>").
  std::string class_prefix = "c";
  std::uint64_t seed = 42;
};

/// Builds a deterministic synthetic schema per `options`.
Result<Schema> GenerateSchema(const SchemaGenOptions& options);

/// Builds the isomorphic counterpart of `schema` with classes renamed to
/// `class_prefix` — the §6.3 setting where "each concept from S1 has
/// exactly one equivalent counterpart from S2".
Result<Schema> GenerateCounterpartSchema(const Schema& schema,
                                         const std::string& new_name,
                                         const std::string& class_prefix);

/// Mix of assertion kinds generated between a schema and its
/// counterpart. Fractions apply per class, in priority order
/// equivalence > inclusion > disjoint > derivation; the remainder gets
/// no assertion. All fractions in [0, 1], summing to at most 1.
struct AssertionGenOptions {
  double equivalence_fraction = 1.0;
  double inclusion_fraction = 0.0;
  double disjoint_fraction = 0.0;
  double derivation_fraction = 0.0;
  /// Whether equivalences also carry attribute correspondences on the
  /// generated key attribute.
  bool attribute_correspondences = true;
  /// Whether equivalences also declare the generated ref_parent
  /// aggregation functions equivalent (requires schemas generated with
  /// with_aggregations).
  bool aggregation_correspondences = false;
  std::uint64_t seed = 7;
};

/// Generates assertions between `s1` class i ("c<i>") and its
/// counterpart in `s2` ("d<i>"), per the mix. Inclusions relate class i
/// of s1 to the counterpart of its parent in s2 (so labelled is-a paths
/// exist); derivations relate (class i, class i's parent) → counterpart.
Result<AssertionSet> GenerateAssertions(const Schema& s1, const Schema& s2,
                                        const std::string& s1_prefix,
                                        const std::string& s2_prefix,
                                        const AssertionGenOptions& options);

}  // namespace ooint

#endif  // OOINT_WORKLOAD_GENERATOR_H_
