#ifndef OOINT_WORKLOAD_FIXTURES_H_
#define OOINT_WORKLOAD_FIXTURES_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "model/instance_store.h"
#include "model/schema.h"

namespace ooint {

/// Deterministic reconstructions of every worked example in the paper.
/// Each fixture bundles the two local schemas and the assertion text (in
/// the library's assertion language) describing their correspondences.
struct Fixture {
  Schema s1{"S1"};
  Schema s2{"S2"};
  std::string assertion_text;
};

/// Fig. 18 / Appendix A: the university schemas.
///   S1: person ⊃ {student, lecturer ⊃ teaching_assistant}
///   S2: human ⊃ employee ⊃ faculty ⊃ professor
/// with person ≡ human, lecturer ⊆ employee, lecturer ⊆ faculty and
/// student ∩ faculty.
Result<Fixture> MakeUniversityFixture();

/// Example 3 / 9 / Appendix B: the genealogy schemas.
///   S1: parent(Pssn#, name, children), brother(Bssn#, name, brothers)
///   S2: uncle(Ussn#, name, niece_nephew)
/// with S1(parent, brother) → S2.uncle.
Result<Fixture> MakeGenealogyFixture();

/// Populates the genealogy stores with `num_families` families:
/// family f has one parent P_f, children C_f_0..C_f_1, and the parent
/// has one brother U_f — so U_f is the uncle of C_f_*. The S2 store is
/// left empty (uncles are derivable, the point of Appendix B) unless
/// `materialize_uncles` is set.
Status PopulateGenealogy(InstanceStore* s1_store, InstanceStore* s2_store,
                         size_t num_families, bool materialize_uncles = false);

/// Examples 1 / 4 / 11: the bibliography schemas with nested structured
/// attributes.
///   S1: Book(ISBN, title, author: <name, birthday>)
///   S2: Author(name, birthday, book: <ISBN, title>)
/// with the two derivation assertions of Fig. 6(b)/(c).
Result<Fixture> MakeBibliographyFixture();

/// Populates the bibliography stores with `num_books` books (each with
/// one author); only S1 holds data — S2's authors are derivable.
Status PopulateBibliography(InstanceStore* s1_store, size_t num_books);

/// Examples 5 / 10: the car-price schematic discrepancy.
///   S1: car1(time, car-name, price)
///   S2: car2(time, car-name_1: integer, ..., car-name_<n>: integer)
/// with the decomposed derivation assertions of Fig. 10 (S2 → S1
/// direction, one per car attribute).
Result<Fixture> MakeCarFixture(size_t num_cars = 3);

/// Section 4.1: the stock attribute-inclusion example with `with`
/// qualifiers.
///   S1: stock-in-March-April(stock-name, price-in-March, price-in-April)
///   S2: stock(time, stock-name, price)
Result<Fixture> MakeStockFixture();

/// Section 2: the Empl/Dept schema behind the department-manager rule
/// and the "interesting pair" problem (single schema; s2 is a trivial
/// empty placeholder).
Result<Fixture> MakeEmplDeptFixture();

/// Fig. 4: the person/human, book/publication, faculty/student and
/// man/woman assertion showcase (all four assertion kinds with
/// attribute, composed-into, more-specific and reverse-aggregation
/// correspondences).
Result<Fixture> MakeShowcaseFixture();

}  // namespace ooint

#endif  // OOINT_WORKLOAD_FIXTURES_H_
