#include "workload/generator.h"

#include <set>

#include "common/string_util.h"

namespace ooint {

namespace {

/// SplitMix64: deterministic, platform-independent pseudo-randomness
/// (std::mt19937 distributions vary across standard libraries).
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Rand01(std::uint64_t seed, std::uint64_t index) {
  return static_cast<double>(SplitMix64(seed ^ (index * 0x2545f4914f6cdd1dULL)) >> 11) /
         static_cast<double>(1ULL << 53);
}

size_t RandBelow(std::uint64_t seed, std::uint64_t index, size_t bound) {
  return static_cast<size_t>(Rand01(seed, index) * static_cast<double>(bound));
}

ValueKind KindFor(size_t index) {
  switch (index % 4) {
    case 0:
      return ValueKind::kString;
    case 1:
      return ValueKind::kInteger;
    case 2:
      return ValueKind::kReal;
    default:
      return ValueKind::kBoolean;
  }
}

Status CheckFraction(const char* name, double value) {
  if (value < 0.0 || value > 1.0) {
    return Status::InvalidArgument(
        StrCat(name, " must lie in [0, 1], got ", std::to_string(value)));
  }
  return Status::OK();
}

Status CheckProbability(const char* name, double value) {
  return CheckFraction(name, value);
}

/// Parents of class i under the configured shape, all with index < i.
std::vector<size_t> DrawParents(const SchemaGenOptions& options, size_t i) {
  std::vector<size_t> parents;
  if (i == 0) return parents;
  if (options.shape == IsAShape::kCompleteTree) {
    parents.push_back((i - 1) / options.degree);
    return parents;
  }
  // kRandomDag: maybe an extra root, else 1..max_parents distinct
  // earlier classes. Stream indices are salted per decision so draws
  // stay independent.
  const std::uint64_t base = i * 1000003ULL;
  if (Rand01(options.seed, base) < options.root_probability) return parents;
  std::set<size_t> chosen;
  chosen.insert(RandBelow(options.seed, base + 1, i));
  for (size_t slot = 1; slot < options.max_parents; ++slot) {
    if (Rand01(options.seed, base + 2 * slot) >=
        options.extra_parent_probability) {
      continue;
    }
    chosen.insert(RandBelow(options.seed, base + 2 * slot + 1, i));
  }
  parents.assign(chosen.begin(), chosen.end());
  return parents;
}

Cardinality DrawCardinality(const SchemaGenOptions& options, size_t i) {
  if (options.shape == IsAShape::kCompleteTree) {
    return (i % 2 == 0) ? Cardinality::ManyToOne() : Cardinality::OneToOne();
  }
  switch (SplitMix64(options.seed ^ (i * 0x51afd6edULL)) % 4) {
    case 0:
      return Cardinality::OneToOne();
    case 1:
      return Cardinality::OneToMany();
    case 2:
      return Cardinality::ManyToOne();
    default:
      return Cardinality::ManyToMany();
  }
}

}  // namespace

Result<Schema> GenerateSchema(const SchemaGenOptions& options) {
  if (options.num_classes == 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (options.degree == 0) {
    return Status::InvalidArgument("degree must be positive");
  }
  if (options.shape == IsAShape::kRandomDag && options.max_parents == 0) {
    return Status::InvalidArgument("max_parents must be positive");
  }
  OOINT_RETURN_IF_ERROR(
      CheckProbability("root_probability", options.root_probability));
  OOINT_RETURN_IF_ERROR(CheckProbability("extra_parent_probability",
                                         options.extra_parent_probability));

  // Parent sets first: aggregation generation needs them.
  std::vector<std::vector<size_t>> parents(options.num_classes);
  for (size_t i = 1; i < options.num_classes; ++i) {
    parents[i] = DrawParents(options, i);
  }

  Schema schema(options.name);
  for (size_t i = 0; i < options.num_classes; ++i) {
    ClassDef class_def(StrCat(options.class_prefix, i));
    class_def.AddAttribute("key", ValueKind::kString);
    for (size_t a = 0; a < options.attrs_per_class; ++a) {
      class_def.AddAttribute(StrCat("a", a), KindFor(a + i));
    }
    if (options.with_aggregations && !parents[i].empty()) {
      class_def.AddAggregation(
          "ref_parent", StrCat(options.class_prefix, parents[i].front()),
          DrawCardinality(options, i));
    }
    OOINT_RETURN_IF_ERROR(schema.AddClass(std::move(class_def)).status());
  }
  for (size_t i = 1; i < options.num_classes; ++i) {
    for (size_t parent : parents[i]) {
      OOINT_RETURN_IF_ERROR(schema.AddIsA(StrCat(options.class_prefix, i),
                                          StrCat(options.class_prefix,
                                                 parent)));
    }
  }
  OOINT_RETURN_IF_ERROR(schema.Finalize());
  return schema;
}

Result<Schema> GenerateCounterpartSchema(const Schema& schema,
                                         const std::string& new_name,
                                         const std::string& class_prefix) {
  Schema out(new_name);
  for (size_t i = 0; i < schema.NumClasses(); ++i) {
    const ClassDef& original = schema.class_def(static_cast<ClassId>(i));
    ClassDef copy(StrCat(class_prefix, i));
    for (const Attribute& attr : original.attributes()) {
      copy.AddAttribute(attr);
    }
    for (const AggregationFunction& fn : original.aggregations()) {
      // Ranges rename along with the classes; alternate the cardinality
      // differently from the original so counterpart integration hits
      // constraint conflicts (Principle 6).
      const ClassId range = schema.FindClass(fn.range_class);
      copy.AddAggregation(fn.name, StrCat(class_prefix, range),
                          (i % 3 == 0) ? Cardinality::OneToMany()
                                       : fn.cardinality);
    }
    OOINT_RETURN_IF_ERROR(out.AddClass(std::move(copy)).status());
  }
  for (size_t i = 0; i < schema.NumClasses(); ++i) {
    for (ClassId parent : schema.ParentsOf(static_cast<ClassId>(i))) {
      OOINT_RETURN_IF_ERROR(out.AddIsA(StrCat(class_prefix, i),
                                       StrCat(class_prefix, parent)));
    }
  }
  OOINT_RETURN_IF_ERROR(out.Finalize());
  return out;
}

Result<AssertionSet> GenerateAssertions(const Schema& s1, const Schema& s2,
                                        const std::string& s1_prefix,
                                        const std::string& s2_prefix,
                                        const AssertionGenOptions& options) {
  if (s1.NumClasses() != s2.NumClasses()) {
    return Status::InvalidArgument(
        "assertion generation expects counterpart schemas of equal size");
  }
  OOINT_RETURN_IF_ERROR(
      CheckFraction("equivalence_fraction", options.equivalence_fraction));
  OOINT_RETURN_IF_ERROR(
      CheckFraction("inclusion_fraction", options.inclusion_fraction));
  OOINT_RETURN_IF_ERROR(
      CheckFraction("disjoint_fraction", options.disjoint_fraction));
  OOINT_RETURN_IF_ERROR(
      CheckFraction("derivation_fraction", options.derivation_fraction));
  const double sum = options.equivalence_fraction +
                     options.inclusion_fraction + options.disjoint_fraction +
                     options.derivation_fraction;
  if (sum > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        StrCat("assertion-kind fractions must sum to at most 1, got ",
               std::to_string(sum)));
  }
  AssertionSet set;
  const double eq = options.equivalence_fraction;
  const double inc = eq + options.inclusion_fraction;
  const double dis = inc + options.disjoint_fraction;
  const double der = dis + options.derivation_fraction;

  // The assertion kind drawn for each class index (used to keep the set
  // coherent: per observation 3 of Section 6.1, DBAs "tend not to give
  // an assertion" for descendants of disjoint / derivation-related
  // classes, so such children draw no assertion here).
  auto kind_of = [&](size_t i) -> int {
    const double u = Rand01(options.seed, i);
    if (u < eq || i == 0) return 0;  // equivalence
    if (u < inc) return 1;           // inclusion
    if (u < dis) return 2;           // disjoint
    if (u < der) return 3;           // derivation
    return 4;                        // none
  };
  for (size_t i = 0; i < s1.NumClasses(); ++i) {
    const ClassRef a{s1.name(), StrCat(s1_prefix, i)};
    const ClassRef b{s2.name(), StrCat(s2_prefix, i)};
    const double u = Rand01(options.seed, i);
    Assertion assertion;
    const std::vector<ClassId> parents =
        s1.ParentsOf(static_cast<ClassId>(i));
    if (i != 0 && !parents.empty()) {
      const int parent_kind = kind_of(static_cast<size_t>(parents.front()));
      if (parent_kind == 2 || parent_kind == 3) continue;
    }
    if (u < eq || i == 0) {
      assertion.lhs = {a};
      assertion.rel = SetRel::kEquivalent;
      assertion.rhs = b;
      if (options.attribute_correspondences) {
        assertion.attr_corrs.push_back(
            {Path::Attr(a.schema, a.class_name, "key"), AttrRel::kEquivalent,
             Path::Attr(b.schema, b.class_name, "key"), "", std::nullopt});
      }
      // Extra DAG roots carry no ref_parent; only pair the functions
      // where both counterpart classes actually declare them.
      if (options.aggregation_correspondences && i > 0 &&
          s1.class_def(static_cast<ClassId>(i))
                  .FindAggregation("ref_parent") != nullptr &&
          s2.class_def(static_cast<ClassId>(i))
                  .FindAggregation("ref_parent") != nullptr) {
        assertion.agg_corrs.push_back(
            {Path::Attr(a.schema, a.class_name, "ref_parent"),
             AggRel::kEquivalent,
             Path::Attr(b.schema, b.class_name, "ref_parent")});
      }
    } else if (u < inc) {
      if (parents.empty()) continue;  // extra roots have no parent to chain
      // Include into the counterparts of the parent AND the grandparent
      // (when one exists) — the inclusion chains of Fig. 8, which
      // path_labelling collapses into the single deepest is-a link and
      // whose labels prune later sibling/descendant pairs.
      const size_t parent = static_cast<size_t>(parents.front());
      const std::vector<ClassId> grandparents =
          s1.ParentsOf(static_cast<ClassId>(parent));
      if (!grandparents.empty()) {
        Assertion chain;
        chain.lhs = {a};
        chain.rel = SetRel::kSubset;
        chain.rhs = {s2.name(),
                     StrCat(s2_prefix, static_cast<size_t>(
                                           grandparents.front()))};
        const Status added = set.Add(std::move(chain));
        if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
          return added;
        }
      }
      assertion.lhs = {a};
      assertion.rel = SetRel::kSubset;
      assertion.rhs = {s2.name(), StrCat(s2_prefix, parent)};
    } else if (u < dis) {
      assertion.lhs = {a};
      assertion.rel = SetRel::kDisjoint;
      assertion.rhs = b;
    } else if (u < der) {
      if (parents.empty()) continue;
      const size_t parent = static_cast<size_t>(parents.front());
      assertion.lhs = {a, {s1.name(), StrCat(s1_prefix, parent)}};
      assertion.rel = SetRel::kDerivation;
      assertion.rhs = b;
      assertion.attr_corrs.push_back(
          {Path::Attr(a.schema, a.class_name, "key"), AttrRel::kEquivalent,
           Path::Attr(b.schema, b.class_name, "key"), "", std::nullopt});
    } else {
      continue;  // no assertion for this class
    }
    const Status added = set.Add(std::move(assertion));
    if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
      return added;
    }
  }
  return set;
}

Result<AssertionSet> GenerateRandomAssertions(
    const Schema& s1, const Schema& s2,
    const RandomAssertionGenOptions& options) {
  OOINT_RETURN_IF_ERROR(
      CheckFraction("equivalence_fraction", options.equivalence_fraction));
  OOINT_RETURN_IF_ERROR(
      CheckFraction("inclusion_fraction", options.inclusion_fraction));
  OOINT_RETURN_IF_ERROR(
      CheckFraction("overlap_fraction", options.overlap_fraction));
  OOINT_RETURN_IF_ERROR(
      CheckFraction("disjoint_fraction", options.disjoint_fraction));
  OOINT_RETURN_IF_ERROR(
      CheckFraction("derivation_fraction", options.derivation_fraction));
  OOINT_RETURN_IF_ERROR(
      CheckFraction("inconsistent_fraction", options.inconsistent_fraction));
  const double sum = options.equivalence_fraction +
                     options.inclusion_fraction + options.overlap_fraction +
                     options.disjoint_fraction + options.derivation_fraction;
  if (sum > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        StrCat("assertion-kind fractions must sum to at most 1, got ",
               std::to_string(sum)));
  }
  if (s1.NumClasses() == 0 || s2.NumClasses() == 0) {
    return Status::InvalidArgument("both schemas must have classes");
  }

  const double eq = options.equivalence_fraction;
  const double inc = eq + options.inclusion_fraction;
  const double ovl = inc + options.overlap_fraction;
  const double dis = ovl + options.disjoint_fraction;
  const double der = dis + options.derivation_fraction;

  auto ref_of = [](const Schema& schema, size_t i) {
    return ClassRef{schema.name(),
                    schema.class_def(static_cast<ClassId>(i)).name()};
  };
  auto key_corr = [&](const ClassRef& a, const ClassRef& b)
      -> std::optional<AttributeCorrespondence> {
    if (!options.attribute_correspondences) return std::nullopt;
    const ClassDef& ca = *([&]() {
      const Schema& schema = (a.schema == s1.name()) ? s1 : s2;
      return &schema.class_def(schema.FindClass(a.class_name));
    }());
    const ClassDef& cb = *([&]() {
      const Schema& schema = (b.schema == s1.name()) ? s1 : s2;
      return &schema.class_def(schema.FindClass(b.class_name));
    }());
    if (ca.FindAttribute("key") == nullptr ||
        cb.FindAttribute("key") == nullptr) {
      return std::nullopt;
    }
    return AttributeCorrespondence{
        Path::Attr(a.schema, a.class_name, "key"), AttrRel::kEquivalent,
        Path::Attr(b.schema, b.class_name, "key"), "", std::nullopt};
  };

  AssertionSet set;
  auto add = [&set](Assertion assertion) -> Status {
    const Status added = set.Add(std::move(assertion));
    if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
      return added;
    }
    return Status::OK();
  };

  // s2 classes already claimed by a set-relation assertion
  // (unique_partners mode).
  std::set<size_t> claimed;
  for (size_t i = 0; i < s1.NumClasses(); ++i) {
    const std::uint64_t base = 0x7f4a7c15ULL + i * 7919ULL;
    const double u = Rand01(options.seed, base);
    size_t j = RandBelow(options.seed, base + 1, s2.NumClasses());
    const bool set_relation = u < dis;  // ≡ / ⊆ / ⊇ / ∩ / ∅
    if (options.unique_partners && set_relation) {
      // Linear-probe to the next unclaimed s2 class; give up (no
      // assertion for class i) when every partner is taken.
      size_t probes = 0;
      while (claimed.count(j) > 0 && probes < s2.NumClasses()) {
        j = (j + 1) % s2.NumClasses();
        ++probes;
      }
      if (claimed.count(j) > 0) continue;
      claimed.insert(j);
    }
    const ClassRef a = ref_of(s1, i);
    const ClassRef b = ref_of(s2, j);

    Assertion assertion;
    assertion.lhs = {a};
    assertion.rhs = b;
    bool emit = true;
    if (u < eq) {
      assertion.rel = SetRel::kEquivalent;
      if (auto corr = key_corr(a, b)) assertion.attr_corrs.push_back(*corr);
      if (options.aggregation_correspondences) {
        const ClassDef& ca = s1.class_def(static_cast<ClassId>(i));
        const ClassDef& cb = s2.class_def(static_cast<ClassId>(j));
        if (ca.FindAggregation("ref_parent") != nullptr &&
            cb.FindAggregation("ref_parent") != nullptr) {
          assertion.agg_corrs.push_back(
              {Path::Attr(a.schema, a.class_name, "ref_parent"),
               AggRel::kEquivalent,
               Path::Attr(b.schema, b.class_name, "ref_parent")});
        }
      }
    } else if (u < inc) {
      assertion.rel = (Rand01(options.seed, base + 2) < 0.5)
                          ? SetRel::kSubset
                          : SetRel::kSuperset;
    } else if (u < ovl) {
      assertion.rel = SetRel::kOverlap;
    } else if (u < dis) {
      assertion.rel = SetRel::kDisjoint;
    } else if (u < der) {
      // Derivations run in both directions; about half derive an s1
      // concept from s2, the rest the other way around. A second lhs
      // class (the parent, when one exists) exercises multi-class
      // derivations, optionally tied together by a same-schema value
      // correspondence.
      const bool forward = Rand01(options.seed, base + 3) < 0.5;
      const ClassRef& derived = forward ? b : a;
      const ClassRef& ground = forward ? a : b;
      const Schema& ground_schema = forward ? s1 : s2;
      const size_t ground_index = forward ? i : j;
      assertion.lhs = {ground};
      assertion.rhs = derived;
      assertion.rel = SetRel::kDerivation;
      const std::vector<ClassId> parents =
          ground_schema.ParentsOf(static_cast<ClassId>(ground_index));
      if (!parents.empty() && Rand01(options.seed, base + 4) < 0.5) {
        const ClassRef second =
            ref_of(ground_schema, static_cast<size_t>(parents.front()));
        assertion.lhs.push_back(second);
        if (Rand01(options.seed, base + 5) < 0.5) {
          ValueCorrespondence vc;
          // The correspondence ties the two ground (lhs) classes
          // together, whichever schema they live in — always side 1.
          vc.side = 1;
          vc.lhs = Path::Attr(ground.schema, ground.class_name, "key");
          vc.rel = ValueRel::kEq;
          vc.rhs = Path::Attr(second.schema, second.class_name, "key");
          assertion.value_corrs.push_back(vc);
        }
      }
      if (auto corr = key_corr(ground, derived)) {
        assertion.attr_corrs.push_back(*corr);
      }
    } else {
      emit = false;  // no assertion for this class
    }
    if (emit) OOINT_RETURN_IF_ERROR(add(std::move(assertion)));

    // Deliberate inconsistency: with is_a(c_i, c_p) local to s1, the
    // pair { c_p ⊆ d_j', d_j' ⊆ c_i } forces the cycle
    // c_i → c_p → d_j' → c_i, which CheckConsistency must flag as a
    // hierarchy-cycle error.
    if (options.inconsistent_fraction > 0.0 &&
        Rand01(options.seed, base + 6) < options.inconsistent_fraction) {
      const std::vector<ClassId> parents =
          s1.ParentsOf(static_cast<ClassId>(i));
      if (!parents.empty()) {
        const size_t jj = RandBelow(options.seed, base + 7, s2.NumClasses());
        const ClassRef parent =
            ref_of(s1, static_cast<size_t>(parents.front()));
        const ClassRef target = ref_of(s2, jj);
        Assertion up;
        up.lhs = {parent};
        up.rel = SetRel::kSubset;
        up.rhs = target;
        OOINT_RETURN_IF_ERROR(add(std::move(up)));
        Assertion down;
        down.lhs = {a};
        down.rel = SetRel::kSuperset;
        down.rhs = target;
        OOINT_RETURN_IF_ERROR(add(std::move(down)));
      }
    }
  }
  return set;
}

}  // namespace ooint
