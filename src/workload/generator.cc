#include "workload/generator.h"

#include "common/string_util.h"

namespace ooint {

namespace {

/// SplitMix64: deterministic, platform-independent pseudo-randomness
/// (std::mt19937 distributions vary across standard libraries).
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Rand01(std::uint64_t seed, std::uint64_t index) {
  return static_cast<double>(SplitMix64(seed ^ (index * 0x2545f4914f6cdd1dULL)) >> 11) /
         static_cast<double>(1ULL << 53);
}

ValueKind KindFor(size_t index) {
  switch (index % 4) {
    case 0:
      return ValueKind::kString;
    case 1:
      return ValueKind::kInteger;
    case 2:
      return ValueKind::kReal;
    default:
      return ValueKind::kBoolean;
  }
}

}  // namespace

Result<Schema> GenerateSchema(const SchemaGenOptions& options) {
  if (options.num_classes == 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (options.degree == 0) {
    return Status::InvalidArgument("degree must be positive");
  }
  Schema schema(options.name);
  for (size_t i = 0; i < options.num_classes; ++i) {
    ClassDef class_def(StrCat(options.class_prefix, i));
    class_def.AddAttribute("key", ValueKind::kString);
    for (size_t a = 0; a < options.attrs_per_class; ++a) {
      class_def.AddAttribute(StrCat("a", a), KindFor(a + i));
    }
    if (options.with_aggregations && i > 0) {
      const size_t parent = (i - 1) / options.degree;
      class_def.AddAggregation(
          "ref_parent", StrCat(options.class_prefix, parent),
          (i % 2 == 0) ? Cardinality::ManyToOne() : Cardinality::OneToOne());
    }
    OOINT_RETURN_IF_ERROR(schema.AddClass(std::move(class_def)).status());
  }
  // Complete degree-ary is-a tree: node i's parent is (i-1)/degree.
  for (size_t i = 1; i < options.num_classes; ++i) {
    const size_t parent = (i - 1) / options.degree;
    OOINT_RETURN_IF_ERROR(schema.AddIsA(StrCat(options.class_prefix, i),
                                        StrCat(options.class_prefix,
                                               parent)));
  }
  OOINT_RETURN_IF_ERROR(schema.Finalize());
  return schema;
}

Result<Schema> GenerateCounterpartSchema(const Schema& schema,
                                         const std::string& new_name,
                                         const std::string& class_prefix) {
  Schema out(new_name);
  for (size_t i = 0; i < schema.NumClasses(); ++i) {
    const ClassDef& original = schema.class_def(static_cast<ClassId>(i));
    ClassDef copy(StrCat(class_prefix, i));
    for (const Attribute& attr : original.attributes()) {
      copy.AddAttribute(attr);
    }
    for (const AggregationFunction& fn : original.aggregations()) {
      // Ranges rename along with the classes; alternate the cardinality
      // differently from the original so counterpart integration hits
      // constraint conflicts (Principle 6).
      const ClassId range = schema.FindClass(fn.range_class);
      copy.AddAggregation(fn.name, StrCat(class_prefix, range),
                          (i % 3 == 0) ? Cardinality::OneToMany()
                                       : fn.cardinality);
    }
    OOINT_RETURN_IF_ERROR(out.AddClass(std::move(copy)).status());
  }
  for (size_t i = 0; i < schema.NumClasses(); ++i) {
    for (ClassId parent : schema.ParentsOf(static_cast<ClassId>(i))) {
      OOINT_RETURN_IF_ERROR(out.AddIsA(StrCat(class_prefix, i),
                                       StrCat(class_prefix, parent)));
    }
  }
  OOINT_RETURN_IF_ERROR(out.Finalize());
  return out;
}

Result<AssertionSet> GenerateAssertions(const Schema& s1, const Schema& s2,
                                        const std::string& s1_prefix,
                                        const std::string& s2_prefix,
                                        const AssertionGenOptions& options) {
  if (s1.NumClasses() != s2.NumClasses()) {
    return Status::InvalidArgument(
        "assertion generation expects counterpart schemas of equal size");
  }
  AssertionSet set;
  const double eq = options.equivalence_fraction;
  const double inc = eq + options.inclusion_fraction;
  const double dis = inc + options.disjoint_fraction;
  const double der = dis + options.derivation_fraction;

  // The assertion kind drawn for each class index (used to keep the set
  // coherent: per observation 3 of Section 6.1, DBAs "tend not to give
  // an assertion" for descendants of disjoint / derivation-related
  // classes, so such children draw no assertion here).
  auto kind_of = [&](size_t i) -> int {
    const double u = Rand01(options.seed, i);
    if (u < eq || i == 0) return 0;  // equivalence
    if (u < inc) return 1;           // inclusion
    if (u < dis) return 2;           // disjoint
    if (u < der) return 3;           // derivation
    return 4;                        // none
  };
  for (size_t i = 0; i < s1.NumClasses(); ++i) {
    const ClassRef a{s1.name(), StrCat(s1_prefix, i)};
    const ClassRef b{s2.name(), StrCat(s2_prefix, i)};
    const double u = Rand01(options.seed, i);
    Assertion assertion;
    const std::vector<ClassId> parents =
        s1.ParentsOf(static_cast<ClassId>(i));
    if (i != 0) {
      const int parent_kind = kind_of(static_cast<size_t>(parents.front()));
      if (parent_kind == 2 || parent_kind == 3) continue;
    }
    if (u < eq || i == 0) {
      assertion.lhs = {a};
      assertion.rel = SetRel::kEquivalent;
      assertion.rhs = b;
      if (options.attribute_correspondences) {
        assertion.attr_corrs.push_back(
            {Path::Attr(a.schema, a.class_name, "key"), AttrRel::kEquivalent,
             Path::Attr(b.schema, b.class_name, "key"), "", std::nullopt});
      }
      if (options.aggregation_correspondences && i > 0) {
        assertion.agg_corrs.push_back(
            {Path::Attr(a.schema, a.class_name, "ref_parent"),
             AggRel::kEquivalent,
             Path::Attr(b.schema, b.class_name, "ref_parent")});
      }
    } else if (u < inc) {
      // Include into the counterparts of the parent AND the grandparent
      // (when one exists) — the inclusion chains of Fig. 8, which
      // path_labelling collapses into the single deepest is-a link and
      // whose labels prune later sibling/descendant pairs.
      const size_t parent = static_cast<size_t>(parents.front());
      const std::vector<ClassId> grandparents =
          s1.ParentsOf(static_cast<ClassId>(parent));
      if (!grandparents.empty()) {
        Assertion chain;
        chain.lhs = {a};
        chain.rel = SetRel::kSubset;
        chain.rhs = {s2.name(),
                     StrCat(s2_prefix, static_cast<size_t>(
                                           grandparents.front()))};
        const Status added = set.Add(std::move(chain));
        if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
          return added;
        }
      }
      assertion.lhs = {a};
      assertion.rel = SetRel::kSubset;
      assertion.rhs = {s2.name(), StrCat(s2_prefix, parent)};
    } else if (u < dis) {
      assertion.lhs = {a};
      assertion.rel = SetRel::kDisjoint;
      assertion.rhs = b;
    } else if (u < der) {
      const size_t parent = static_cast<size_t>(parents.front());
      assertion.lhs = {a, {s1.name(), StrCat(s1_prefix, parent)}};
      assertion.rel = SetRel::kDerivation;
      assertion.rhs = b;
      assertion.attr_corrs.push_back(
          {Path::Attr(a.schema, a.class_name, "key"), AttrRel::kEquivalent,
           Path::Attr(b.schema, b.class_name, "key"), "", std::nullopt});
    } else {
      continue;  // no assertion for this class
    }
    const Status added = set.Add(std::move(assertion));
    if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
      return added;
    }
  }
  return set;
}

}  // namespace ooint
