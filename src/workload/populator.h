#ifndef OOINT_WORKLOAD_POPULATOR_H_
#define OOINT_WORKLOAD_POPULATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/instance_store.h"
#include "model/schema.h"
#include "model/value.h"

namespace ooint {

/// One object of a synthetic extension, in a store-independent form:
/// scalar attribute values plus aggregation targets named by *index*
/// into the owning StoreSpec. The indirection is what makes generated
/// populations shrinkable — the conformance shrinker drops ObjectSpecs
/// and remaps indexes without ever touching OIDs.
struct ObjectSpec {
  std::string class_name;
  std::map<std::string, Value> attrs;
  /// Aggregation function name -> indexes of target ObjectSpecs. Targets
  /// must precede the referencing object (index < its own position);
  /// ApplySpec rejects forward references.
  std::map<std::string, std::vector<size_t>> agg_targets;
};

/// A full synthetic extension of one schema.
struct StoreSpec {
  std::vector<ObjectSpec> objects;

  size_t size() const { return objects.size(); }
};

/// Parameters of the random instance generator.
struct PopulateOptions {
  /// Total object count. Every class receives at least one object when
  /// num_objects >= the schema's class count.
  size_t num_objects = 40;
  /// Attribute values are drawn from a pool of this many distinct
  /// values per kind, so keys collide across stores and rule joins have
  /// matches.
  size_t value_pool = 8;
  std::uint64_t seed = 13;
};

/// Generates a deterministic random population of `schema`:
///  - objects are created class-by-class in class-index order (so
///    aggregation targets, which point at lower-indexed classes in
///    generated schemas, always precede their sources);
///  - every scalar attribute gets a value of its declared kind drawn
///    from the pool; multi-valued attributes get 0..2 element sets;
///  - every aggregation function gets targets consistent with its
///    cardinality constraint: range-side `1` means exactly one target
///    per source, range-side `n` means 1..3; domain-side `1` makes the
///    assignment injective (no target shared between sources; sources
///    beyond the range extent get none, unless the constraint is
///    mandatory, in which case generation fails).
Result<StoreSpec> GenerateInstances(const Schema& schema,
                                    const PopulateOptions& options);

/// Materializes `spec` into `store` (whose schema must declare every
/// referenced class, attribute and aggregation). Returns the OIDs
/// assigned, indexed like spec.objects.
Result<std::vector<Oid>> ApplySpec(const StoreSpec& spec,
                                   InstanceStore* store);

/// Renders `spec` in the data-definition language: a sequence of
/// `insert <class> as o<i> { ... }` blocks that InstanceParser::Load
/// accepts, with aggregation targets as ref(o<j>) references.
std::string StoreSpecToText(const StoreSpec& spec);

}  // namespace ooint

#endif  // OOINT_WORKLOAD_POPULATOR_H_
