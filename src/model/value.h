#ifndef OOINT_MODEL_VALUE_H_
#define OOINT_MODEL_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/oid.h"

namespace ooint {

/// The scalar type universe of the object model (Section 2):
///   type_i in {boolean, integer, real, character, string, date}
/// extended with OIDs (aggregation-function results), sets (multi-valued
/// attributes) and Null (absent data, e.g. the "Null otherwise" branch of
/// the paper's concatenation and AIF functions).
enum class ValueKind {
  kNull = 0,
  kBoolean,
  kInteger,
  kReal,
  kCharacter,
  kString,
  kDate,
  kOid,
  kSet,
};

/// Returns the paper's spelling of a value kind, e.g. "integer".
const char* ValueKindName(ValueKind kind);

/// A calendar date (the `date` scalar type).
struct Date {
  int year = 0;
  int month = 1;
  int day = 1;

  /// "YYYY-MM-DD".
  std::string ToString() const;
  /// Parses "YYYY-MM-DD".
  static Result<Date> Parse(const std::string& text);

  friend auto operator<=>(const Date&, const Date&) = default;
};

/// A dynamically typed value: one scalar, one OID, or a set of values.
///
/// Values are ordinary regular types with total ordering (kind-major) so
/// they can key std::map/std::set; this is what the integration principles'
/// value_set computations (union / difference / intersection) operate on.
class Value {
 public:
  /// Constructs the Null value.
  Value() : kind_(ValueKind::kNull) {}

  static Value Null() { return Value(); }
  static Value Boolean(bool b);
  static Value Integer(std::int64_t i);
  static Value Real(double r);
  static Value Character(char c);
  static Value String(std::string s);
  static Value OfDate(Date d);
  static Value OfOid(Oid oid);
  static Value Set(std::vector<Value> elements);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }

  /// Typed accessors; callers must check kind() first (assert otherwise).
  bool AsBoolean() const;
  std::int64_t AsInteger() const;
  double AsReal() const;
  char AsCharacter() const;
  const std::string& AsString() const;
  const Date& AsDate() const;
  const Oid& AsOid() const;
  const std::vector<Value>& AsSet() const;

  /// Numeric view: integer or real as double. TypeError otherwise.
  Result<double> AsNumber() const;

  /// Set membership: true iff this is a set containing `element`.
  bool SetContains(const Value& element) const;

  /// Human-readable rendering; strings are quoted, sets use {a, b}.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

 private:
  ValueKind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double real_ = 0.0;
  char char_ = '\0';
  std::string string_;
  Date date_;
  Oid oid_;
  std::vector<Value> set_;
};

/// Comparison operators usable in `with att τ const` qualifiers and in
/// generated rule predicates: τ ∈ {=, ≠, <, ≤, >, ≥} (Section 4.1).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// The surface syntax of a comparison operator ("==", "!=", "<", ...).
const char* CompareOpName(CompareOp op);

/// Applies `op` to two values using Value's total order; values of
/// different kinds are only Eq/Ne-comparable (inequalities between
/// mismatched kinds yield a TypeError).
Result<bool> Compare(const Value& lhs, CompareOp op, const Value& rhs);

}  // namespace ooint

#endif  // OOINT_MODEL_VALUE_H_
