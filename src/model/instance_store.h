#ifndef OOINT_MODEL_INSTANCE_STORE_H_
#define OOINT_MODEL_INSTANCE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/object.h"
#include "model/schema.h"

namespace ooint {

/// In-memory extension (population) of one local schema.
///
/// This is the reproduction's stand-in for the paper's Ontos platform: a
/// store of objects keyed by OID, with class extents respecting the is-a
/// hierarchy (the instances of C include the instances of its subclasses,
/// per the typing O-term semantics of Section 2). Integration itself never
/// reads the store; the Appendix-B rule evaluator and the data-mapping
/// layer do.
class InstanceStore {
 public:
  /// `schema` must outlive the store and be finalized.
  explicit InstanceStore(const Schema* schema) : schema_(schema) {}

  const Schema& schema() const { return *schema_; }

  /// Creates an object of `class_name` with the next OID in the paper's
  /// federation format and returns a pointer for attribute population.
  /// The pointer is invalidated by the next Insert.
  Result<Object*> NewObject(const std::string& class_name);

  /// Inserts a fully formed object; its OID must be unused and its class
  /// id valid.
  Status Insert(Object object);

  /// Removes the object with `oid`; NotFound when absent. Removal never
  /// reuses OID numbers — NewObject counters only advance — so a store
  /// replaying the same insert sequence assigns the same OIDs whether
  /// or not removals were interleaved (what makes the delta-vs-rebuild
  /// oracle's fresh replay exact).
  Status Remove(const Oid& oid);

  /// Monotonically increasing data version, bumped by every successful
  /// NewObject / Insert / Remove — the live-update layer's freshness
  /// stamp (DESIGN.md §4j).
  std::uint64_t data_epoch() const { return data_epoch_; }

  /// Configures the OID prefix components (Section 3 naming scheme).
  void SetOidContext(std::string agent, std::string dbms,
                     std::string database) {
    agent_ = std::move(agent);
    dbms_ = std::move(dbms);
    database_ = std::move(database);
  }

  /// Object by OID; nullptr when absent.
  const Object* Find(const Oid& oid) const;

  /// OIDs of the *direct* instances of a class (excluding subclasses).
  std::vector<Oid> DirectExtent(ClassId id) const;

  /// OIDs of all instances of a class, including instances of all
  /// transitive subclasses — the paper's {<o : C>} population.
  std::vector<Oid> Extent(ClassId id) const;
  Result<std::vector<Oid>> Extent(const std::string& class_name) const;

  /// value_set(att) of Section 5: the largest non-null subset of the
  /// domain of attribute `attribute` of class `id` w.r.t. the current
  /// database state. Multi-valued attributes contribute their elements.
  std::vector<Value> ValueSet(ClassId id, const std::string& attribute) const;

  /// All objects of class `id` (incl. subclasses) whose attribute
  /// `attribute` equals `value`.
  std::vector<Oid> FindByAttribute(ClassId id, const std::string& attribute,
                                   const Value& value) const;

  size_t size() const { return objects_.size(); }

  /// Iteration support for the evaluator.
  const std::map<Oid, Object>& objects() const { return objects_; }

 private:
  const Schema* schema_;
  std::string agent_ = "agent";
  std::string dbms_ = "ooint";
  std::string database_;
  // Per-class tuple numbering (Section 3 numbers "the tuples of a
  // relation", i.e. per relation/class).
  std::map<ClassId, std::uint64_t> next_number_;
  std::uint64_t data_epoch_ = 0;
  std::map<Oid, Object> objects_;
  // class id -> OIDs of direct instances.
  std::map<ClassId, std::vector<Oid>> direct_extent_;
};

}  // namespace ooint

#endif  // OOINT_MODEL_INSTANCE_STORE_H_
