#include "model/schema_parser.h"

#include "common/lexer.h"
#include "common/string_util.h"

namespace ooint {

namespace {

Result<ValueKind> ScalarKindByName(const std::string& name) {
  if (name == "boolean") return ValueKind::kBoolean;
  if (name == "integer") return ValueKind::kInteger;
  if (name == "real") return ValueKind::kReal;
  if (name == "character") return ValueKind::kCharacter;
  if (name == "string") return ValueKind::kString;
  if (name == "date") return ValueKind::kDate;
  return Status::ParseError(StrCat("unknown scalar type '", name, "'"));
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : cursor_(std::move(tokens)) {}

  Result<Schema> Run() {
    OOINT_RETURN_IF_ERROR(cursor_.ExpectKeyword("schema"));
    OOINT_ASSIGN_OR_RETURN(std::string name, cursor_.ExpectIdent());
    Schema schema(std::move(name));
    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLBrace));

    struct PendingIsA {
      std::string child;
      std::string parent;
    };
    std::vector<PendingIsA> pending;

    while (cursor_.Peek().kind != TokKind::kRBrace) {
      const Token& tok = cursor_.Peek();
      if (tok.kind != TokKind::kIdent) {
        return cursor_.ErrorAt(tok, "expected 'class' or 'is_a'");
      }
      if (tok.text == "class") {
        OOINT_RETURN_IF_ERROR(ParseClass(&schema));
      } else if (tok.text == "is_a") {
        cursor_.Next();
        OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLParen));
        OOINT_ASSIGN_OR_RETURN(std::string child, cursor_.ExpectIdent());
        OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kComma));
        OOINT_ASSIGN_OR_RETURN(std::string parent, cursor_.ExpectIdent());
        OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kRParen));
        OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kSemi));
        pending.push_back({std::move(child), std::move(parent)});
      } else {
        return cursor_.ErrorAt(tok, StrCat("unknown declaration '", tok.text,
                                           "' (expected class/is_a)"));
      }
    }
    cursor_.Next();  // '}'
    if (!cursor_.AtEnd()) {
      return cursor_.ErrorAt(cursor_.Peek(),
                             "trailing input after schema definition");
    }
    for (const PendingIsA& link : pending) {
      OOINT_RETURN_IF_ERROR(schema.AddIsA(link.child, link.parent));
    }
    OOINT_RETURN_IF_ERROR(schema.Finalize());
    return schema;
  }

 private:
  Status ParseClass(Schema* schema) {
    OOINT_RETURN_IF_ERROR(cursor_.ExpectKeyword("class"));
    OOINT_ASSIGN_OR_RETURN(std::string name, cursor_.ExpectIdent());
    ClassDef class_def(std::move(name));
    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLBrace));
    while (cursor_.Peek().kind != TokKind::kRBrace) {
      OOINT_RETURN_IF_ERROR(ParseMember(&class_def));
    }
    cursor_.Next();  // '}'
    return schema->AddClass(std::move(class_def)).status();
  }

  Status ParseMember(ClassDef* class_def) {
    OOINT_ASSIGN_OR_RETURN(std::string name, cursor_.ExpectIdent());
    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kColon));
    const Token& tok = cursor_.Peek();
    if (tok.kind == TokKind::kLBrace) {
      // {scalar}: a multi-valued attribute.
      cursor_.Next();
      OOINT_ASSIGN_OR_RETURN(std::string type_name, cursor_.ExpectIdent());
      OOINT_ASSIGN_OR_RETURN(ValueKind kind, ScalarKindByName(type_name));
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kRBrace));
      class_def->AddSetAttribute(name, kind);
    } else if (tok.kind == TokKind::kIdent && tok.text == "class") {
      cursor_.Next();
      OOINT_ASSIGN_OR_RETURN(std::string target, cursor_.ExpectIdent());
      class_def->AddClassAttribute(name, target);
    } else if (tok.kind == TokKind::kIdent && tok.text == "agg") {
      cursor_.Next();
      OOINT_ASSIGN_OR_RETURN(std::string range, cursor_.ExpectIdent());
      Cardinality cc = Cardinality::ManyToOne();
      if (cursor_.Peek().kind == TokKind::kLBracket) {
        OOINT_ASSIGN_OR_RETURN(cc, ParseCardinality());
      }
      class_def->AddAggregation(name, range, cc);
    } else if (tok.kind == TokKind::kIdent) {
      cursor_.Next();
      OOINT_ASSIGN_OR_RETURN(ValueKind kind, ScalarKindByName(tok.text));
      class_def->AddAttribute(name, kind);
    } else {
      return cursor_.ErrorAt(tok, "expected a type");
    }
    return cursor_.Expect(TokKind::kSemi);
  }

  Result<Cardinality> ParseCardinality() {
    // [m:1], [md_m:1], ... re-assembled from tokens and delegated to
    // Cardinality::Parse.
    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLBracket));
    std::string text = "[";
    while (cursor_.Peek().kind != TokKind::kRBracket) {
      const Token& tok = cursor_.Next();
      if (tok.kind == TokKind::kIdent || tok.kind == TokKind::kNumber) {
        text += tok.text;
      } else if (tok.kind == TokKind::kColon) {
        text += ":";
      } else {
        return cursor_.ErrorAt(tok, "malformed cardinality constraint");
      }
    }
    cursor_.Next();  // ']'
    text += "]";
    return Cardinality::Parse(text);
  }

  TokenCursor cursor_;
};

}  // namespace

Result<Schema> SchemaParser::Parse(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Run();
}

std::string SchemaToText(const Schema& schema) {
  std::string out = StrCat("schema ", schema.name(), " {\n");
  for (const ClassDef& class_def : schema.classes()) {
    out += StrCat("  class ", class_def.name(), " {\n");
    for (const Attribute& attr : class_def.attributes()) {
      if (attr.type.is_class()) {
        out += StrCat("    ", attr.name, ": class ", attr.type.class_name,
                      ";\n");
      } else if (attr.multi_valued) {
        out += StrCat("    ", attr.name, ": {",
                      ValueKindName(attr.type.scalar), "};\n");
      } else {
        out += StrCat("    ", attr.name, ": ",
                      ValueKindName(attr.type.scalar), ";\n");
      }
    }
    for (const AggregationFunction& fn : class_def.aggregations()) {
      out += StrCat("    ", fn.name, ": agg ", fn.range_class, " ",
                    fn.cardinality.ToString(), ";\n");
    }
    out += "  }\n";
  }
  for (size_t i = 0; i < schema.NumClasses(); ++i) {
    for (ClassId parent : schema.ParentsOf(static_cast<ClassId>(i))) {
      out += StrCat("  is_a(",
                    schema.class_def(static_cast<ClassId>(i)).name(), ", ",
                    schema.class_def(parent).name(), ");\n");
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ooint
