#ifndef OOINT_MODEL_INSTANCE_PARSER_H_
#define OOINT_MODEL_INSTANCE_PARSER_H_

#include <string>

#include "common/result.h"
#include "model/instance_store.h"

namespace ooint {

/// Parser for the data-definition language — the textual form component
/// databases' extents can be loaded from:
///
///   insert parent {
///     Pssn#: "ssn-john";
///     name: "John";
///     children: {"ssn-ann", "ssn-bob"};     # multi-valued
///   }
///   insert brother as sam {                  # named for references
///     Bssn#: "ssn-sam";
///     brothers: {"ssn-john"};
///   }
///   insert Dept as rnd { d_name: "R&D"; }
///   insert Empl { e_name: "alice"; work_in: @rnd; }   # aggregation
///
/// Values: quoted strings, integers, reals, true/false, date(Y, M, D),
/// {…} sets, and @name references to previously inserted objects
/// (attribute position: stored as an OID value; aggregation-function
/// position: recorded as an aggregation target).
class InstanceParser {
 public:
  /// Parses `text` and inserts every object into `store` (whose schema
  /// provides the class and member definitions). Returns the number of
  /// objects inserted. On error the store may hold a prefix of the
  /// input.
  static Result<size_t> Load(const std::string& text, InstanceStore* store);
};

}  // namespace ooint

#endif  // OOINT_MODEL_INSTANCE_PARSER_H_
