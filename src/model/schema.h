#ifndef OOINT_MODEL_SCHEMA_H_
#define OOINT_MODEL_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/class_def.h"

namespace ooint {

/// A local object-oriented schema: a set of classes connected by is-a
/// links and aggregation links (Section 6.1: "a local schema can be viewed
/// as a graph consisting of a set of object classes connected by is-a
/// links, aggregation links or semantic constraints").
///
/// Lifecycle: build with AddClass / AddIsA, then Finalize(). Finalize
/// validates the graph (unique names, resolved references, acyclic is-a
/// hierarchy) and freezes the schema; integration never mutates local
/// schemas (component-database autonomy, Sections 1 and 3).
class Schema {
 public:
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a class; fails after Finalize() or on duplicate name.
  Result<ClassId> AddClass(ClassDef class_def);

  /// Declares <child : parent>, i.e. is_a(child, parent). Both classes
  /// must already exist.
  Status AddIsA(const std::string& child, const std::string& parent);

  /// Validates and freezes the schema:
  ///  - class names are unique (checked on insert) and non-empty,
  ///  - class-typed attributes and aggregation ranges resolve,
  ///  - the is-a graph is acyclic,
  ///  - no duplicate is-a edge.
  Status Finalize();
  bool finalized() const { return finalized_; }

  size_t NumClasses() const { return classes_.size(); }
  const std::vector<ClassDef>& classes() const { return classes_; }
  const ClassDef& class_def(ClassId id) const { return classes_[id]; }

  /// Name lookup; kInvalidClassId when absent.
  ClassId FindClass(const std::string& name) const;
  /// Name lookup that reports a NotFound status.
  Result<ClassId> GetClass(const std::string& name) const;

  /// Direct is-a neighbours.
  const std::vector<ClassId>& ParentsOf(ClassId id) const {
    return parents_[id];
  }
  const std::vector<ClassId>& ChildrenOf(ClassId id) const {
    return children_[id];
  }

  /// Classes with no is-a parent — the children of the paper's virtual
  /// start node (Section 6.1, Fig. 14).
  std::vector<ClassId> Roots() const;

  /// True iff `sub` == `super` or `sub` reaches `super` via is-a edges.
  bool IsSubclassOf(ClassId sub, ClassId super) const;

  /// All strict ancestors (resp. descendants) of `id`, de-duplicated, in
  /// BFS order.
  std::vector<ClassId> Ancestors(ClassId id) const;
  std::vector<ClassId> Descendants(ClassId id) const;

  /// Classes in an order where parents precede children. Valid only after
  /// Finalize().
  std::vector<ClassId> TopologicalOrder() const;

  /// Number of is-a edges.
  size_t NumIsAEdges() const;

  /// Multi-line dump of all classes and is-a links.
  std::string ToString() const;

 private:
  std::string name_;
  bool finalized_ = false;
  std::vector<ClassDef> classes_;
  std::map<std::string, ClassId> by_name_;
  std::vector<std::vector<ClassId>> parents_;
  std::vector<std::vector<ClassId>> children_;
};

}  // namespace ooint

#endif  // OOINT_MODEL_SCHEMA_H_
