#include "model/object.h"

#include "common/string_util.h"

namespace ooint {

namespace {
const Value kNullValue;
const std::vector<Oid> kNoTargets;
}  // namespace

const Value& Object::Get(const std::string& name) const {
  auto it = attributes_.find(name);
  return it == attributes_.end() ? kNullValue : it->second;
}

const std::vector<Oid>& Object::AggTargets(const std::string& name) const {
  auto it = aggregations_.find(name);
  return it == aggregations_.end() ? kNoTargets : it->second;
}

std::string Object::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [name, value] : attributes_) {
    parts.push_back(StrCat(name, ": ", value.ToString()));
  }
  for (const auto& [name, targets] : aggregations_) {
    std::vector<std::string> t;
    t.reserve(targets.size());
    for (const Oid& oid : targets) t.push_back(oid.ToString());
    parts.push_back(StrCat(name, " -> {", Join(t, ", "), "}"));
  }
  return StrCat("<", oid_.ToString(), " : class#", class_id_, " | ",
                Join(parts, ", "), ">");
}

}  // namespace ooint
