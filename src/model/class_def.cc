#include "model/class_def.h"

#include "common/string_util.h"

namespace ooint {

std::string AttributeType::ToString() const {
  if (is_class()) return class_name;
  return ValueKindName(scalar);
}

std::string Attribute::ToString() const {
  if (multi_valued) return StrCat(name, ": {", type.ToString(), "}");
  return StrCat(name, ": ", type.ToString());
}

std::string AggregationFunction::ToString() const {
  return StrCat(name, ": ", range_class, " with ", cardinality.ToString());
}

const Attribute* ClassDef::FindAttribute(const std::string& name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const AggregationFunction* ClassDef::FindAggregation(
    const std::string& name) const {
  for (const AggregationFunction& f : aggregations_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string ClassDef::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size() + aggregations_.size());
  for (const Attribute& a : attributes_) parts.push_back(a.ToString());
  for (const AggregationFunction& f : aggregations_) {
    parts.push_back(f.ToString());
  }
  return StrCat("type(", name_, ") = <", Join(parts, ", "), ">");
}

}  // namespace ooint
