#include "model/cardinality.h"

#include "common/string_util.h"

namespace ooint {

namespace {

bool MultImplies(Cardinality::Mult a, Cardinality::Mult b) {
  // One is stricter than Many.
  return a == b || (a == Cardinality::Mult::kOne &&
                    b == Cardinality::Mult::kMany);
}

Cardinality::Mult MultJoin(Cardinality::Mult a, Cardinality::Mult b) {
  return (a == b) ? a : Cardinality::Mult::kMany;
}

}  // namespace

bool Cardinality::Implies(const Cardinality& other) const {
  // A mandatory constraint is stricter than the same non-mandatory one;
  // a non-mandatory constraint never implies a mandatory one.
  if (!mandatory_ && other.mandatory_) return false;
  return MultImplies(domain_, other.domain_) &&
         MultImplies(range_, other.range_);
}

Cardinality Cardinality::LeastCommonSuper(const Cardinality& a,
                                          const Cardinality& b) {
  return Cardinality(MultJoin(a.domain_, b.domain_),
                     MultJoin(a.range_, b.range_),
                     a.mandatory_ && b.mandatory_);
}

std::string Cardinality::ToString() const {
  const char* d = (domain_ == Mult::kOne) ? "1" : "m";
  const char* r = (range_ == Mult::kOne) ? "1" : "n";
  return StrCat("[", mandatory_ ? "md_" : "", d, ":", r, "]");
}

Result<Cardinality> Cardinality::Parse(const std::string& text) {
  std::string_view s = Trim(text);
  if (s.size() < 5 || s.front() != '[' || s.back() != ']') {
    return Status::ParseError(StrCat("bad cardinality '", text, "'"));
  }
  s = s.substr(1, s.size() - 2);
  bool mandatory = false;
  if (StartsWith(s, "md_")) {
    mandatory = true;
    s = s.substr(3);
  }
  const size_t colon = s.find(':');
  if (colon == std::string_view::npos) {
    return Status::ParseError(StrCat("bad cardinality '", text, "'"));
  }
  auto parse_side = [&](std::string_view side) -> Result<Mult> {
    if (side == "1") return Mult::kOne;
    if (side == "n" || side == "m") return Mult::kMany;
    return Status::ParseError(
        StrCat("bad cardinality side '", std::string(side), "' in '", text,
               "'"));
  };
  Result<Mult> d = parse_side(s.substr(0, colon));
  if (!d.ok()) return d.status();
  Result<Mult> r = parse_side(s.substr(colon + 1));
  if (!r.ok()) return r.status();
  return Cardinality(d.value(), r.value(), mandatory);
}

}  // namespace ooint
