#include "model/oid.h"

#include <cstdlib>

#include "common/string_util.h"

namespace ooint {

std::string Oid::ToString() const {
  return StrCat(agent_, ".", dbms_, ".", database_, ".", relation_, ".",
                number_);
}

Result<Oid> Oid::Parse(const std::string& text) {
  std::vector<std::string> parts = Split(text, '.');
  if (parts.size() != 5) {
    return Status::ParseError(
        StrCat("OID must have 5 dot-separated components, got '", text, "'"));
  }
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i].empty()) {
      return Status::ParseError(StrCat("OID has empty component: '", text,
                                       "'"));
    }
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(parts[4].c_str(), &end, 10);
  if (end == parts[4].c_str() || *end != '\0') {
    return Status::ParseError(
        StrCat("OID number component is not an integer: '", parts[4], "'"));
  }
  return Oid(parts[0], parts[1], parts[2], parts[3],
             static_cast<std::uint64_t>(n));
}

std::string Oid::AttributePrefix(const std::string& attribute) const {
  return StrCat(agent_, ".", dbms_, ".", database_, ".", relation_, ".",
                attribute);
}

}  // namespace ooint
