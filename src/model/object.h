#ifndef OOINT_MODEL_OBJECT_H_
#define OOINT_MODEL_OBJECT_H_

#include <map>
#include <string>
#include <vector>

#include "model/class_def.h"
#include "model/oid.h"
#include "model/value.h"

namespace ooint {

/// An object (instance) of a class — the paper's complex O-term
///
///   <o : C | a_1:v_1, ..., a_l:v_l, agg_1, ..., agg_k>
///
/// (Section 2). Attribute values are stored by name; aggregation-function
/// results are stored as OIDs of the target objects (single target for
/// *:1 functions, several for *:n).
class Object {
 public:
  Object() : class_id_(kInvalidClassId) {}
  Object(Oid oid, ClassId class_id)
      : oid_(std::move(oid)), class_id_(class_id) {}

  const Oid& oid() const { return oid_; }
  ClassId class_id() const { return class_id_; }

  /// Sets attribute `name` to `value` (replacing any previous value).
  Object& Set(const std::string& name, Value value) {
    attributes_[name] = std::move(value);
    return *this;
  }

  /// Records `target` as (one of) the result(s) of aggregation function
  /// `name` applied to this object.
  Object& AddAggTarget(const std::string& name, Oid target) {
    aggregations_[name].push_back(std::move(target));
    return *this;
  }

  /// Attribute value by name; Null when unset.
  const Value& Get(const std::string& name) const;
  bool Has(const std::string& name) const {
    return attributes_.count(name) != 0;
  }

  /// Aggregation targets by function name; empty when unset.
  const std::vector<Oid>& AggTargets(const std::string& name) const;

  const std::map<std::string, Value>& attributes() const {
    return attributes_;
  }
  const std::map<std::string, std::vector<Oid>>& aggregations() const {
    return aggregations_;
  }

  /// "<oid : class#id | a: v, ...>".
  std::string ToString() const;

 private:
  Oid oid_;
  ClassId class_id_;
  std::map<std::string, Value> attributes_;
  std::map<std::string, std::vector<Oid>> aggregations_;
};

}  // namespace ooint

#endif  // OOINT_MODEL_OBJECT_H_
