#include "model/instance_parser.h"

#include <map>

#include "common/lexer.h"
#include "common/string_util.h"

namespace ooint {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, InstanceStore* store)
      : cursor_(std::move(tokens)), store_(store) {}

  Result<size_t> Run() {
    size_t inserted = 0;
    while (!cursor_.AtEnd()) {
      OOINT_RETURN_IF_ERROR(ParseInsert());
      ++inserted;
    }
    return inserted;
  }

 private:
  Status ParseInsert() {
    OOINT_RETURN_IF_ERROR(cursor_.ExpectKeyword("insert"));
    OOINT_ASSIGN_OR_RETURN(std::string class_name, cursor_.ExpectIdent());
    std::string binding;
    if (cursor_.ConsumeKeyword("as")) {
      OOINT_ASSIGN_OR_RETURN(binding, cursor_.ExpectIdent());
    }
    Result<Object*> object = store_->NewObject(class_name);
    if (!object.ok()) return object.status();

    const ClassId class_id = store_->schema().FindClass(class_name);
    const ClassDef& class_def = store_->schema().class_def(class_id);

    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLBrace));
    while (cursor_.Peek().kind != TokKind::kRBrace) {
      OOINT_ASSIGN_OR_RETURN(std::string member, cursor_.ExpectIdent());
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kColon));
      const bool is_aggregation =
          class_def.FindAggregation(member) != nullptr;
      if (class_def.FindAttribute(member) == nullptr && !is_aggregation) {
        return cursor_.ErrorAt(
            cursor_.Peek(),
            StrCat("class '", class_name, "' has no member '", member, "'"));
      }
      if (is_aggregation) {
        // One @ref or a set of them.
        if (cursor_.Peek().kind == TokKind::kLBrace) {
          cursor_.Next();
          while (cursor_.Peek().kind != TokKind::kRBrace) {
            OOINT_ASSIGN_OR_RETURN(Oid target, ParseReference());
            object.value()->AddAggTarget(member, std::move(target));
            if (!cursor_.Consume(TokKind::kComma)) break;
          }
          OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kRBrace));
        } else {
          OOINT_ASSIGN_OR_RETURN(Oid target, ParseReference());
          object.value()->AddAggTarget(member, std::move(target));
        }
      } else {
        OOINT_ASSIGN_OR_RETURN(Value value, ParseValue());
        object.value()->Set(member, std::move(value));
      }
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kSemi));
    }
    cursor_.Next();  // '}'
    if (!binding.empty()) {
      bindings_[binding] = object.value()->oid();
    }
    return Status::OK();
  }

  Result<Oid> ParseReference() {
    // '@' is not a lexer symbol; references are written as @name, which
    // the lexer would reject — so the data language spells them
    // ref(name).
    OOINT_RETURN_IF_ERROR(cursor_.ExpectKeyword("ref"));
    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLParen));
    OOINT_ASSIGN_OR_RETURN(std::string name, cursor_.ExpectIdent());
    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kRParen));
    auto it = bindings_.find(name);
    if (it == bindings_.end()) {
      return Status::NotFound(
          StrCat("ref(", name, ") does not name an inserted object"));
    }
    return it->second;
  }

  Result<Value> ParseValue() {
    const Token& tok = cursor_.Peek();
    switch (tok.kind) {
      case TokKind::kString:
        cursor_.Next();
        return Value::String(tok.text);
      case TokKind::kNumber: {
        cursor_.Next();
        if (tok.text.find('.') != std::string::npos) {
          return Value::Real(std::stod(tok.text));
        }
        return Value::Integer(std::stoll(tok.text));
      }
      case TokKind::kLBrace: {
        cursor_.Next();
        std::vector<Value> elements;
        while (cursor_.Peek().kind != TokKind::kRBrace) {
          OOINT_ASSIGN_OR_RETURN(Value element, ParseValue());
          elements.push_back(std::move(element));
          if (!cursor_.Consume(TokKind::kComma)) break;
        }
        OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kRBrace));
        return Value::Set(std::move(elements));
      }
      case TokKind::kIdent:
        if (tok.text == "true") {
          cursor_.Next();
          return Value::Boolean(true);
        }
        if (tok.text == "false") {
          cursor_.Next();
          return Value::Boolean(false);
        }
        if (tok.text == "date") {
          cursor_.Next();
          OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLParen));
          Date date;
          const Token& y = cursor_.Next();
          if (y.kind != TokKind::kNumber) {
            return cursor_.ErrorAt(y, "expected year");
          }
          date.year = std::stoi(y.text);
          OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kComma));
          const Token& m = cursor_.Next();
          if (m.kind != TokKind::kNumber) {
            return cursor_.ErrorAt(m, "expected month");
          }
          date.month = std::stoi(m.text);
          OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kComma));
          const Token& d = cursor_.Next();
          if (d.kind != TokKind::kNumber) {
            return cursor_.ErrorAt(d, "expected day");
          }
          date.day = std::stoi(d.text);
          OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kRParen));
          return Value::OfDate(date);
        }
        if (tok.text == "ref") {
          OOINT_ASSIGN_OR_RETURN(Oid target, ParseReference());
          return Value::OfOid(std::move(target));
        }
        return cursor_.ErrorAt(tok, StrCat("unexpected identifier '",
                                           tok.text, "' in value position"));
      default:
        return cursor_.ErrorAt(tok, "expected a value");
    }
  }

  TokenCursor cursor_;
  InstanceStore* store_;
  std::map<std::string, Oid> bindings_;
};

}  // namespace

Result<size_t> InstanceParser::Load(const std::string& text,
                                    InstanceStore* store) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), store);
  return parser.Run();
}

}  // namespace ooint
