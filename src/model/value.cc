#include "model/value.h"

#include <cassert>
#include <cstdio>
#include <tuple>

#include "common/string_util.h"

namespace ooint {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBoolean:
      return "boolean";
    case ValueKind::kInteger:
      return "integer";
    case ValueKind::kReal:
      return "real";
    case ValueKind::kCharacter:
      return "character";
    case ValueKind::kString:
      return "string";
    case ValueKind::kDate:
      return "date";
    case ValueKind::kOid:
      return "oid";
    case ValueKind::kSet:
      return "set";
  }
  return "unknown";
}

std::string Date::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

Result<Date> Date::Parse(const std::string& text) {
  Date d;
  int consumed = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d%n", &d.year, &d.month, &d.day,
                  &consumed) != 3 ||
      static_cast<size_t>(consumed) != text.size()) {
    return Status::ParseError(StrCat("bad date '", text, "', want YYYY-MM-DD"));
  }
  if (d.month < 1 || d.month > 12 || d.day < 1 || d.day > 31) {
    return Status::ParseError(StrCat("date out of range: '", text, "'"));
  }
  return d;
}

Value Value::Boolean(bool b) {
  Value v;
  v.kind_ = ValueKind::kBoolean;
  v.bool_ = b;
  return v;
}

Value Value::Integer(std::int64_t i) {
  Value v;
  v.kind_ = ValueKind::kInteger;
  v.int_ = i;
  return v;
}

Value Value::Real(double r) {
  Value v;
  v.kind_ = ValueKind::kReal;
  v.real_ = r;
  return v;
}

Value Value::Character(char c) {
  Value v;
  v.kind_ = ValueKind::kCharacter;
  v.char_ = c;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = ValueKind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::OfDate(Date d) {
  Value v;
  v.kind_ = ValueKind::kDate;
  v.date_ = d;
  return v;
}

Value Value::OfOid(Oid oid) {
  Value v;
  v.kind_ = ValueKind::kOid;
  v.oid_ = std::move(oid);
  return v;
}

Value Value::Set(std::vector<Value> elements) {
  Value v;
  v.kind_ = ValueKind::kSet;
  v.set_ = std::move(elements);
  return v;
}

bool Value::AsBoolean() const {
  assert(kind_ == ValueKind::kBoolean);
  return bool_;
}
std::int64_t Value::AsInteger() const {
  assert(kind_ == ValueKind::kInteger);
  return int_;
}
double Value::AsReal() const {
  assert(kind_ == ValueKind::kReal);
  return real_;
}
char Value::AsCharacter() const {
  assert(kind_ == ValueKind::kCharacter);
  return char_;
}
const std::string& Value::AsString() const {
  assert(kind_ == ValueKind::kString);
  return string_;
}
const Date& Value::AsDate() const {
  assert(kind_ == ValueKind::kDate);
  return date_;
}
const Oid& Value::AsOid() const {
  assert(kind_ == ValueKind::kOid);
  return oid_;
}
const std::vector<Value>& Value::AsSet() const {
  assert(kind_ == ValueKind::kSet);
  return set_;
}

Result<double> Value::AsNumber() const {
  if (kind_ == ValueKind::kInteger) return static_cast<double>(int_);
  if (kind_ == ValueKind::kReal) return real_;
  return Status::TypeError(
      StrCat("value of kind ", ValueKindName(kind_), " is not numeric"));
}

bool Value::SetContains(const Value& element) const {
  if (kind_ != ValueKind::kSet) return false;
  for (const Value& v : set_) {
    if (v == element) return true;
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBoolean:
      return bool_ ? "true" : "false";
    case ValueKind::kInteger:
      return StrCat(int_);
    case ValueKind::kReal:
      return StrCat(real_);
    case ValueKind::kCharacter:
      return StrCat("'", char_, "'");
    case ValueKind::kString:
      return StrCat("\"", string_, "\"");
    case ValueKind::kDate:
      return date_.ToString();
    case ValueKind::kOid:
      return oid_.ToString();
    case ValueKind::kSet: {
      std::vector<std::string> parts;
      parts.reserve(set_.size());
      for (const Value& v : set_) parts.push_back(v.ToString());
      return StrCat("{", Join(parts, ", "), "}");
    }
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBoolean:
      return a.bool_ == b.bool_;
    case ValueKind::kInteger:
      return a.int_ == b.int_;
    case ValueKind::kReal:
      return a.real_ == b.real_;
    case ValueKind::kCharacter:
      return a.char_ == b.char_;
    case ValueKind::kString:
      return a.string_ == b.string_;
    case ValueKind::kDate:
      return a.date_ == b.date_;
    case ValueKind::kOid:
      return a.oid_ == b.oid_;
    case ValueKind::kSet:
      return a.set_ == b.set_;
  }
  return false;
}

bool operator<(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
  switch (a.kind_) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kBoolean:
      return a.bool_ < b.bool_;
    case ValueKind::kInteger:
      return a.int_ < b.int_;
    case ValueKind::kReal:
      return a.real_ < b.real_;
    case ValueKind::kCharacter:
      return a.char_ < b.char_;
    case ValueKind::kString:
      return a.string_ < b.string_;
    case ValueKind::kDate:
      return a.date_ < b.date_;
    case ValueKind::kOid:
      return a.oid_ < b.oid_;
    case ValueKind::kSet:
      return a.set_ < b.set_;
  }
  return false;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<bool> Compare(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    default:
      break;
  }
  // Allow integer/real mixing for inequalities.
  if ((lhs.kind() == ValueKind::kInteger || lhs.kind() == ValueKind::kReal) &&
      (rhs.kind() == ValueKind::kInteger || rhs.kind() == ValueKind::kReal)) {
    const double l = lhs.AsNumber().value();
    const double r = rhs.AsNumber().value();
    switch (op) {
      case CompareOp::kLt:
        return l < r;
      case CompareOp::kLe:
        return l <= r;
      case CompareOp::kGt:
        return l > r;
      case CompareOp::kGe:
        return l >= r;
      default:
        break;
    }
  }
  if (lhs.kind() != rhs.kind()) {
    return Status::TypeError(
        StrCat("cannot order values of kinds ", ValueKindName(lhs.kind()),
               " and ", ValueKindName(rhs.kind())));
  }
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    default:
      return Status::Internal("unreachable compare op");
  }
}

}  // namespace ooint
