#ifndef OOINT_MODEL_CARDINALITY_H_
#define OOINT_MODEL_CARDINALITY_H_

#include <string>

#include "common/result.h"

namespace ooint {

/// Cardinality constraint attached to an aggregation function
/// (Section 2): cc ∈ {[1:1], [1:n], [m:1], [m:n]}, optionally with a
/// mandatory (total participation) marker on the domain side — the paper's
/// "[md_n : 1]" notation from Fig. 13(b).
///
/// The partial order (the "constraint lattice" of Fig. 13) is:
///
///   [1:1]  <=  [1:n], [m:1]  <=  [m:n]        (top: [m:n], bottom: [1:1])
///
/// with each mandatory variant [md_x:y] sitting directly below its
/// non-mandatory counterpart [x:y] (mandatory is the stricter constraint;
/// relaxation drops the mandatory marker first, then widens
/// multiplicities). LeastCommonSuper implements the paper's lcs operator
/// used by integration Principle 6 to resolve constraint conflicts by
/// loosening as little as possible.
class Cardinality {
 public:
  /// Multiplicity of one side of the constraint.
  enum class Mult { kOne, kMany };

  /// Defaults to the bottom element [1:1].
  Cardinality() : domain_(Mult::kOne), range_(Mult::kOne), mandatory_(false) {}
  Cardinality(Mult domain, Mult range, bool mandatory = false)
      : domain_(domain), range_(range), mandatory_(mandatory) {}

  static Cardinality OneToOne() { return {Mult::kOne, Mult::kOne}; }
  static Cardinality OneToMany() { return {Mult::kOne, Mult::kMany}; }
  static Cardinality ManyToOne() { return {Mult::kMany, Mult::kOne}; }
  static Cardinality ManyToMany() { return {Mult::kMany, Mult::kMany}; }
  /// The mandatory variant of this constraint (Fig. 13(b)).
  Cardinality Mandatory() const { return {domain_, range_, true}; }

  Mult domain() const { return domain_; }
  Mult range() const { return range_; }
  bool mandatory() const { return mandatory_; }

  /// Partial-order test: true iff this constraint is at least as strict as
  /// (below or equal to) `other` in the lattice.
  bool Implies(const Cardinality& other) const;

  /// The least common super-node lcs(cc1, cc2) of Fig. 13: the least
  /// constraint implied by both, i.e. the least-loosened resolution of a
  /// conflict. A node is its own lcs.
  static Cardinality LeastCommonSuper(const Cardinality& a,
                                      const Cardinality& b);

  /// "[1:1]", "[m:n]", "[md_m:1]", ...
  std::string ToString() const;
  /// Parses the bracketed form accepted by ToString ('n' and 'm' both mean
  /// many on either side).
  static Result<Cardinality> Parse(const std::string& text);

  friend bool operator==(const Cardinality& a, const Cardinality& b) {
    return a.domain_ == b.domain_ && a.range_ == b.range_ &&
           a.mandatory_ == b.mandatory_;
  }
  friend bool operator!=(const Cardinality& a, const Cardinality& b) {
    return !(a == b);
  }

 private:
  Mult domain_;
  Mult range_;
  bool mandatory_;
};

}  // namespace ooint

#endif  // OOINT_MODEL_CARDINALITY_H_
