#ifndef OOINT_MODEL_OID_H_
#define OOINT_MODEL_OID_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace ooint {

/// A federation-wide object identifier, Section 3 of the paper.
///
/// Every datum in a component database is uniquely identified in the
/// federated environment by an OID of the form
///
///   <FSM-agent name>.<database system name>.<database name>
///       .<relation name>.<integer>
///
/// e.g. "FSM-agent1.informix.PatientDB.patient-records.5" for the fifth
/// tuple of relation "patient-records". For native object databases the
/// "relation name" slot carries the class name.
class Oid {
 public:
  Oid() : number_(0) {}
  Oid(std::string agent, std::string dbms, std::string database,
      std::string relation, std::uint64_t number)
      : agent_(std::move(agent)),
        dbms_(std::move(dbms)),
        database_(std::move(database)),
        relation_(std::move(relation)),
        number_(number) {}

  const std::string& agent() const { return agent_; }
  const std::string& dbms() const { return dbms_; }
  const std::string& database() const { return database_; }
  const std::string& relation() const { return relation_; }
  std::uint64_t number() const { return number_; }

  /// True for the default-constructed, not-yet-assigned OID.
  bool empty() const {
    return agent_.empty() && dbms_.empty() && database_.empty() &&
           relation_.empty() && number_ == 0;
  }

  /// The dotted string form described above.
  std::string ToString() const;

  /// Parses the dotted form; all five components must be present and the
  /// last must be a non-negative integer.
  static Result<Oid> Parse(const std::string& text);

  /// The attribute-value prefix of Section 3:
  ///   <agent>.<dbms>.<database>.<relation>.<attribute name>
  std::string AttributePrefix(const std::string& attribute) const;

  friend bool operator==(const Oid& a, const Oid& b) {
    return a.number_ == b.number_ && a.relation_ == b.relation_ &&
           a.database_ == b.database_ && a.dbms_ == b.dbms_ &&
           a.agent_ == b.agent_;
  }
  friend bool operator!=(const Oid& a, const Oid& b) { return !(a == b); }
  friend bool operator<(const Oid& a, const Oid& b) {
    if (a.agent_ != b.agent_) return a.agent_ < b.agent_;
    if (a.dbms_ != b.dbms_) return a.dbms_ < b.dbms_;
    if (a.database_ != b.database_) return a.database_ < b.database_;
    if (a.relation_ != b.relation_) return a.relation_ < b.relation_;
    return a.number_ < b.number_;
  }

 private:
  std::string agent_;
  std::string dbms_;
  std::string database_;
  std::string relation_;
  std::uint64_t number_;
};

}  // namespace ooint

#endif  // OOINT_MODEL_OID_H_
