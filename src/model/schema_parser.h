#ifndef OOINT_MODEL_SCHEMA_PARSER_H_
#define OOINT_MODEL_SCHEMA_PARSER_H_

#include <string>

#include "common/result.h"
#include "model/schema.h"

namespace ooint {

/// Parser and printer for the schema-definition language — the textual
/// form local schemas arrive in at the FSM (exported by component
/// databases after schema transformation):
///
///   schema S1 {
///     class person {
///       ssn#: string;
///       interests: {string};            # multi-valued attribute
///       author: class person_info;      # class-typed attribute
///       spouse: agg person [1:1];       # aggregation function
///     }
///     class student { ssn#: string; }
///     is_a(student, person);
///   }
///
/// Scalar types: boolean, integer, real, character, string, date.
/// Aggregation cardinalities use the paper's bracket form ([1:1], [1:n],
/// [m:1], [m:n], [md_m:1], ...). Line comments start with '#'. The
/// parsed schema is finalized before being returned.
class SchemaParser {
 public:
  static Result<Schema> Parse(const std::string& text);
};

/// Renders `schema` in the schema-definition language;
/// SchemaParser::Parse round-trips the output.
std::string SchemaToText(const Schema& schema);

}  // namespace ooint

#endif  // OOINT_MODEL_SCHEMA_PARSER_H_
