#ifndef OOINT_MODEL_CLASS_DEF_H_
#define OOINT_MODEL_CLASS_DEF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/cardinality.h"
#include "model/value.h"

namespace ooint {

/// Index of a class within its Schema. Stable after Schema::Finalize().
using ClassId = std::int32_t;
inline constexpr ClassId kInvalidClassId = -1;

/// The declared type of an attribute: either a scalar kind or a reference
/// to another class of the same schema ("an attribute itself may have the
/// type of some other class", Section 4.1 — e.g. Book.author whose type is
/// the structured <name, birthday> class).
struct AttributeType {
  /// Scalar kind; kNull means "class-typed" (see class_name).
  ValueKind scalar = ValueKind::kNull;
  /// Non-empty iff the attribute is class-typed.
  std::string class_name;
  /// Resolved by Schema::Finalize() when class-typed.
  ClassId class_id = kInvalidClassId;

  static AttributeType Scalar(ValueKind kind) {
    AttributeType t;
    t.scalar = kind;
    return t;
  }
  static AttributeType OfClass(std::string name) {
    AttributeType t;
    t.class_name = std::move(name);
    return t;
  }

  bool is_class() const { return !class_name.empty(); }
  std::string ToString() const;
};

/// One attribute a_i : type_i of a class type (Section 2). `multi_valued`
/// marks set-typed attributes such as person.interests : {string}.
struct Attribute {
  std::string name;
  AttributeType type;
  bool multi_valued = false;

  std::string ToString() const;
};

/// An aggregation function Agg_j : type(C) -> type(C') with cardinality
/// constraint cc_j (Section 2) — the inter-object relationship mechanism
/// ("Published_in: Proceedings with [m:1]"). Ranges are classes of the
/// same schema, resolved at Finalize().
struct AggregationFunction {
  std::string name;
  std::string range_class;
  ClassId range_class_id = kInvalidClassId;
  Cardinality cardinality;

  std::string ToString() const;
};

/// A class C with type(C) = <a_1:type_1, ..., Agg_1 with cc_1, ...>.
///
/// ClassDefs are built incrementally (AddAttribute / AddAggregation) and
/// become immutable once the owning Schema is finalized.
class ClassDef {
 public:
  explicit ClassDef(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ClassDef& AddAttribute(Attribute attribute) {
    attributes_.push_back(std::move(attribute));
    return *this;
  }
  /// Convenience: scalar single-valued attribute.
  ClassDef& AddAttribute(const std::string& name, ValueKind kind) {
    return AddAttribute({name, AttributeType::Scalar(kind), false});
  }
  /// Convenience: scalar multi-valued ({kind}) attribute.
  ClassDef& AddSetAttribute(const std::string& name, ValueKind kind) {
    return AddAttribute({name, AttributeType::Scalar(kind), true});
  }
  /// Convenience: class-typed attribute.
  ClassDef& AddClassAttribute(const std::string& name,
                              const std::string& class_name) {
    return AddAttribute({name, AttributeType::OfClass(class_name), false});
  }
  ClassDef& AddAggregation(AggregationFunction fn) {
    aggregations_.push_back(std::move(fn));
    return *this;
  }
  ClassDef& AddAggregation(const std::string& name,
                           const std::string& range_class,
                           Cardinality cc = Cardinality::ManyToOne()) {
    return AddAggregation({name, range_class, kInvalidClassId, cc});
  }

  const std::vector<Attribute>& attributes() const { return attributes_; }
  const std::vector<AggregationFunction>& aggregations() const {
    return aggregations_;
  }

  /// Attribute / aggregation lookup by name; nullptr when absent.
  const Attribute* FindAttribute(const std::string& name) const;
  const AggregationFunction* FindAggregation(const std::string& name) const;

  /// Renders "type(C) = <a: string, Agg: D with [m:1]>".
  std::string ToString() const;

 private:
  friend class Schema;

  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<AggregationFunction> aggregations_;
};

}  // namespace ooint

#endif  // OOINT_MODEL_CLASS_DEF_H_
