#include "model/instance_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace ooint {

Result<Object*> InstanceStore::NewObject(const std::string& class_name) {
  Result<ClassId> id = schema_->GetClass(class_name);
  if (!id.ok()) return id.status();
  std::uint64_t& counter = next_number_[id.value()];
  Oid oid(agent_, dbms_, database_.empty() ? schema_->name() : database_,
          class_name, ++counter);
  Object object(oid, id.value());
  auto [it, inserted] = objects_.emplace(oid, std::move(object));
  if (!inserted) {
    return Status::AlreadyExists(StrCat("OID collision: ", oid.ToString()));
  }
  direct_extent_[id.value()].push_back(oid);
  ++data_epoch_;
  return &it->second;
}

Status InstanceStore::Remove(const Oid& oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound(StrCat("no object with OID ", oid.ToString()));
  }
  const ClassId cid = it->second.class_id();
  std::vector<Oid>& extent = direct_extent_[cid];
  extent.erase(std::remove(extent.begin(), extent.end(), oid), extent.end());
  objects_.erase(it);
  ++data_epoch_;
  return Status::OK();
}

Status InstanceStore::Insert(Object object) {
  if (object.class_id() < 0 ||
      static_cast<size_t>(object.class_id()) >= schema_->NumClasses()) {
    return Status::InvalidArgument(
        StrCat("object ", object.oid().ToString(), " has invalid class id ",
               object.class_id()));
  }
  const Oid oid = object.oid();
  const ClassId cid = object.class_id();
  auto [it, inserted] = objects_.emplace(oid, std::move(object));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(
        StrCat("object with OID ", oid.ToString(), " already exists"));
  }
  direct_extent_[cid].push_back(oid);
  ++data_epoch_;
  return Status::OK();
}

const Object* InstanceStore::Find(const Oid& oid) const {
  auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second;
}

std::vector<Oid> InstanceStore::DirectExtent(ClassId id) const {
  auto it = direct_extent_.find(id);
  return it == direct_extent_.end() ? std::vector<Oid>{} : it->second;
}

std::vector<Oid> InstanceStore::Extent(ClassId id) const {
  std::vector<Oid> out = DirectExtent(id);
  for (ClassId sub : schema_->Descendants(id)) {
    auto it = direct_extent_.find(sub);
    if (it != direct_extent_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<Oid>> InstanceStore::Extent(
    const std::string& class_name) const {
  Result<ClassId> id = schema_->GetClass(class_name);
  if (!id.ok()) return id.status();
  return Extent(id.value());
}

std::vector<Value> InstanceStore::ValueSet(
    ClassId id, const std::string& attribute) const {
  std::vector<Value> out;
  for (const Oid& oid : Extent(id)) {
    const Object* object = Find(oid);
    if (object == nullptr) continue;
    const Value& v = object->Get(attribute);
    if (v.is_null()) continue;
    if (v.kind() == ValueKind::kSet) {
      for (const Value& e : v.AsSet()) out.push_back(e);
    } else {
      out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Oid> InstanceStore::FindByAttribute(ClassId id,
                                                const std::string& attribute,
                                                const Value& value) const {
  std::vector<Oid> out;
  for (const Oid& oid : Extent(id)) {
    const Object* object = Find(oid);
    if (object != nullptr && object->Get(attribute) == value) {
      out.push_back(oid);
    }
  }
  return out;
}

}  // namespace ooint
