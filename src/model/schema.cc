#include "model/schema.h"

#include <algorithm>
#include <deque>

#include "common/string_util.h"

namespace ooint {

Result<ClassId> Schema::AddClass(ClassDef class_def) {
  if (finalized_) {
    return Status::FailedPrecondition(
        StrCat("schema '", name_, "' is finalized; cannot add class"));
  }
  if (class_def.name().empty()) {
    return Status::InvalidArgument("class name must be non-empty");
  }
  if (by_name_.count(class_def.name()) != 0) {
    return Status::AlreadyExists(
        StrCat("class '", class_def.name(), "' already in schema '", name_,
               "'"));
  }
  const ClassId id = static_cast<ClassId>(classes_.size());
  by_name_.emplace(class_def.name(), id);
  classes_.push_back(std::move(class_def));
  parents_.emplace_back();
  children_.emplace_back();
  return id;
}

Status Schema::AddIsA(const std::string& child, const std::string& parent) {
  if (finalized_) {
    return Status::FailedPrecondition(
        StrCat("schema '", name_, "' is finalized; cannot add is-a"));
  }
  Result<ClassId> c = GetClass(child);
  if (!c.ok()) return c.status();
  Result<ClassId> p = GetClass(parent);
  if (!p.ok()) return p.status();
  if (c.value() == p.value()) {
    return Status::InvalidArgument(
        StrCat("is-a self loop on class '", child, "'"));
  }
  for (ClassId existing : parents_[c.value()]) {
    if (existing == p.value()) {
      return Status::AlreadyExists(
          StrCat("is_a(", child, ", ", parent, ") already declared"));
    }
  }
  parents_[c.value()].push_back(p.value());
  children_[p.value()].push_back(c.value());
  return Status::OK();
}

Status Schema::Finalize() {
  if (finalized_) return Status::OK();
  // Resolve class-typed attributes and aggregation ranges.
  for (ClassDef& c : classes_) {
    for (Attribute& a : c.attributes_) {
      if (a.type.is_class()) {
        const ClassId target = FindClass(a.type.class_name);
        if (target == kInvalidClassId) {
          return Status::NotFound(
              StrCat("attribute ", c.name(), ".", a.name,
                     " references unknown class '", a.type.class_name, "'"));
        }
        a.type.class_id = target;
      }
    }
    for (AggregationFunction& f : c.aggregations_) {
      const ClassId target = FindClass(f.range_class);
      if (target == kInvalidClassId) {
        return Status::NotFound(
            StrCat("aggregation ", c.name(), ".", f.name,
                   " references unknown range class '", f.range_class, "'"));
      }
      f.range_class_id = target;
    }
  }
  // Check the is-a graph is acyclic (Kahn's algorithm over child->parent
  // edges; classes "above" are parents).
  std::vector<int> out_degree(classes_.size(), 0);
  for (size_t i = 0; i < classes_.size(); ++i) {
    out_degree[i] = static_cast<int>(parents_[i].size());
  }
  std::deque<ClassId> ready;
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (out_degree[i] == 0) ready.push_back(static_cast<ClassId>(i));
  }
  size_t visited = 0;
  while (!ready.empty()) {
    const ClassId top = ready.front();
    ready.pop_front();
    ++visited;
    for (ClassId child : children_[top]) {
      if (--out_degree[child] == 0) ready.push_back(child);
    }
  }
  if (visited != classes_.size()) {
    return Status::InvalidArgument(
        StrCat("is-a hierarchy of schema '", name_, "' contains a cycle"));
  }
  finalized_ = true;
  return Status::OK();
}

ClassId Schema::FindClass(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidClassId : it->second;
}

Result<ClassId> Schema::GetClass(const std::string& name) const {
  const ClassId id = FindClass(name);
  if (id == kInvalidClassId) {
    return Status::NotFound(
        StrCat("class '", name, "' not in schema '", name_, "'"));
  }
  return id;
}

std::vector<ClassId> Schema::Roots() const {
  std::vector<ClassId> roots;
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (parents_[i].empty()) roots.push_back(static_cast<ClassId>(i));
  }
  return roots;
}

bool Schema::IsSubclassOf(ClassId sub, ClassId super) const {
  if (sub == super) return true;
  std::vector<bool> seen(classes_.size(), false);
  std::deque<ClassId> frontier = {sub};
  seen[sub] = true;
  while (!frontier.empty()) {
    const ClassId cur = frontier.front();
    frontier.pop_front();
    for (ClassId parent : parents_[cur]) {
      if (parent == super) return true;
      if (!seen[parent]) {
        seen[parent] = true;
        frontier.push_back(parent);
      }
    }
  }
  return false;
}

namespace {

std::vector<ClassId> BfsClosure(
    ClassId start, const std::vector<std::vector<ClassId>>& edges) {
  std::vector<ClassId> out;
  std::vector<bool> seen(edges.size(), false);
  std::deque<ClassId> frontier = {start};
  seen[start] = true;
  while (!frontier.empty()) {
    const ClassId cur = frontier.front();
    frontier.pop_front();
    for (ClassId next : edges[cur]) {
      if (!seen[next]) {
        seen[next] = true;
        out.push_back(next);
        frontier.push_back(next);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<ClassId> Schema::Ancestors(ClassId id) const {
  return BfsClosure(id, parents_);
}

std::vector<ClassId> Schema::Descendants(ClassId id) const {
  return BfsClosure(id, children_);
}

std::vector<ClassId> Schema::TopologicalOrder() const {
  std::vector<int> pending(classes_.size(), 0);
  for (size_t i = 0; i < classes_.size(); ++i) {
    pending[i] = static_cast<int>(parents_[i].size());
  }
  std::deque<ClassId> ready;
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (pending[i] == 0) ready.push_back(static_cast<ClassId>(i));
  }
  std::vector<ClassId> order;
  order.reserve(classes_.size());
  while (!ready.empty()) {
    const ClassId top = ready.front();
    ready.pop_front();
    order.push_back(top);
    for (ClassId child : children_[top]) {
      if (--pending[child] == 0) ready.push_back(child);
    }
  }
  return order;
}

size_t Schema::NumIsAEdges() const {
  size_t n = 0;
  for (const auto& p : parents_) n += p.size();
  return n;
}

std::string Schema::ToString() const {
  std::string out = StrCat("schema ", name_, " {\n");
  for (const ClassDef& c : classes_) {
    out += StrCat("  ", c.ToString(), "\n");
  }
  for (size_t i = 0; i < classes_.size(); ++i) {
    for (ClassId parent : parents_[i]) {
      out += StrCat("  is_a(", classes_[i].name(), ", ",
                    classes_[parent].name(), ")\n");
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ooint
