#ifndef OOINT_COMMON_ADMISSION_H_
#define OOINT_COMMON_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace ooint {

/// Knobs for the bounded admission queue in front of the serving path.
///
/// Defaults keep admission *disabled* (max_concurrent == 0 means
/// unlimited), so existing callers see byte-for-byte identical behavior
/// until they opt in.
struct AdmissionPolicy {
  /// Queries allowed to run at once; 0 = unlimited (admission off).
  int max_concurrent = 0;
  /// Callers allowed to *wait* for a slot beyond the concurrency limit.
  /// Arrivals past limit + queue depth are shed immediately with
  /// kResourceExhausted. 0 = no queue: reject as soon as saturated
  /// (fully deterministic — the mode the conformance harness uses).
  int max_queue_depth = 0;
  /// Real (wall-clock) milliseconds a queued caller may block before it
  /// is shed with kResourceExhausted. Unlike retry/backoff this is real
  /// time, not the virtual clock: a queued thread is genuinely parked.
  /// 0 = queued callers never time out (only queue-full sheds).
  std::int64_t queue_wait_deadline_ms = 0;
};

/// Counting-semaphore admission controller with a bounded wait queue.
///
/// Sits in front of the PR 5 thread pool: FsmClient acquires a slot per
/// query before any evaluation work starts, and releases it on every
/// exit path via the RAII AdmissionSlot. Over-limit arrivals are shed
/// *fast* (kResourceExhausted) instead of piling onto workers, which
/// bounds queue growth and keeps p99 latency of admitted queries flat
/// under saturation (see bench_overload / EXPERIMENTS E15).
///
/// Thread-safe. Slot accounting is exact: every successful TryAcquire
/// is balanced by exactly one Release (enforced by AdmissionSlot), so
/// rejections can never leak capacity — conformance family 9 checks
/// active == 0 and queued == 0 after every overload storm.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionPolicy policy) : policy_(policy) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  struct Stats {
    std::int64_t admitted = 0;       ///< queries that got a slot
    std::int64_t rejected_full = 0;  ///< shed: queue at max_queue_depth
    std::int64_t rejected_wait = 0;  ///< shed: queue-wait deadline hit
    std::int64_t active = 0;         ///< slots held right now
    std::int64_t queued = 0;         ///< callers parked right now
    std::int64_t max_queued = 0;     ///< high-water mark of `queued`
    std::int64_t total_wait_ms = 0;  ///< real ms spent queued (admitted only)
  };

  /// Blocks until a slot is free (bounded by the policy's queue depth
  /// and wait deadline) and acquires it, or sheds the caller with
  /// kResourceExhausted. OK means the caller MUST balance with exactly
  /// one Release() — use AdmissionSlot.
  Status TryAcquire();

  /// Returns a slot taken by a successful TryAcquire.
  void Release();

  Stats stats() const;

  const AdmissionPolicy& policy() const { return policy_; }

  /// True when the policy actually constrains anything.
  bool enabled() const { return policy_.max_concurrent > 0; }

 private:
  const AdmissionPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  Stats stats_;
};

/// RAII admission slot: releases on destruction iff it holds one.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  /// Acquires from `controller` (may be null = admission off). After
  /// construction, status() says whether the query may proceed.
  explicit AdmissionSlot(AdmissionController* controller) {
    if (controller == nullptr || !controller->enabled()) return;
    status_ = controller->TryAcquire();
    if (status_.ok()) controller_ = controller;
  }
  ~AdmissionSlot() {
    if (controller_) controller_->Release();
  }

  AdmissionSlot(AdmissionSlot&& other) noexcept
      : controller_(other.controller_), status_(std::move(other.status_)) {
    other.controller_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
    if (this != &other) {
      if (controller_) controller_->Release();
      controller_ = other.controller_;
      status_ = std::move(other.status_);
      other.controller_ = nullptr;
    }
    return *this;
  }

  const Status& status() const { return status_; }

 private:
  AdmissionController* controller_ = nullptr;
  Status status_;
};

}  // namespace ooint

#endif  // OOINT_COMMON_ADMISSION_H_
