#include "common/status.h"

namespace ooint {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kStatusCodeSentinel:
      break;
  }
  return "Unknown";
}

bool IsTransientCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ooint
