#include "common/status.h"

#include <cstddef>
#include <iterator>

namespace ooint {
namespace {

// One entry per StatusCode, in declaration order. The static_assert
// below makes "added a code, forgot the name" a compile failure instead
// of a silent "Unknown" fallthrough at runtime.
constexpr const char* kStatusCodeNames[] = {
    "OK",
    "InvalidArgument",
    "NotFound",
    "AlreadyExists",
    "FailedPrecondition",
    "ParseError",
    "TypeError",
    "Unsupported",
    "Internal",
    "Unavailable",
    "DeadlineExceeded",
    "ResourceExhausted",
};

static_assert(std::size(kStatusCodeNames) ==
                  static_cast<std::size_t>(StatusCode::kStatusCodeSentinel),
              "kStatusCodeNames must have exactly one entry per StatusCode "
              "(did you add a code without naming it here?)");

}  // namespace

const char* StatusCodeName(StatusCode code) {
  const auto index = static_cast<std::size_t>(code);
  if (index >= std::size(kStatusCodeNames)) return "Unknown";
  return kStatusCodeNames[index];
}

bool IsTransientCode(StatusCode code) {
  // kResourceExhausted is deliberately absent: a shed query retried
  // immediately would feed the very overload that shed it.
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ooint
