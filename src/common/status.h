#ifndef OOINT_COMMON_STATUS_H_
#define OOINT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ooint {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow convention: library code never throws; every fallible
/// operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kParseError,
  kTypeError,
  kUnsupported,
  kInternal,
  /// A component database (FSM-agent) could not be reached: the agent is
  /// down, its circuit breaker is open, or it keeps returning garbage.
  /// Transient — callers may retry.
  kUnavailable,
  /// A call (or its whole retry budget) ran past its deadline. Transient.
  kDeadlineExceeded,
  /// The serving layer is saturated: the admission queue is full, the
  /// queue-wait deadline expired, or a retry budget is spent. The query
  /// was shed *fast* to protect the queries already running — callers
  /// should back off, not retry immediately (deliberately NOT transient:
  /// an eager retry would re-feed the overload).
  kResourceExhausted,
  /// Not a status: one past the last real code, so tests and switches
  /// can iterate every enumerator. Keep this last.
  kStatusCodeSentinel,
};

/// Returns a stable human-readable name for a status code, e.g.
/// "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// True for codes that mark transient, retry-worthy failures
/// (kUnavailable, kDeadlineExceeded) as opposed to permanent errors.
bool IsTransientCode(StatusCode code);

/// A cheap value type carrying an error code and message.
///
/// The OK status carries no allocation; error statuses carry a message
/// describing what went wrong (and, by convention, which entity was
/// involved). Statuses are ordinary values: copy, move and compare freely.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define OOINT_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::ooint::Status _ooint_status = (expr);          \
    if (!_ooint_status.ok()) return _ooint_status;   \
  } while (false)

}  // namespace ooint

#endif  // OOINT_COMMON_STATUS_H_
