#include "common/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace ooint {

const char* TokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::kEnd:
      return "<end>";
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kString:
      return "string";
    case TokKind::kNumber:
      return "number";
    case TokKind::kEqEq:
      return "'=='";
    case TokKind::kEq:
      return "'='";
    case TokKind::kNe:
      return "'!='";
    case TokKind::kLe:
      return "'<='";
    case TokKind::kGe:
      return "'>='";
    case TokKind::kLt:
      return "'<'";
    case TokKind::kGt:
      return "'>'";
    case TokKind::kTilde:
      return "'~'";
    case TokKind::kBang:
      return "'!'";
    case TokKind::kArrow:
      return "'->'";
    case TokKind::kQuestion:
      return "'?'";
    case TokKind::kLBrace:
      return "'{'";
    case TokKind::kRBrace:
      return "'}'";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kLBracket:
      return "'['";
    case TokKind::kRBracket:
      return "']'";
    case TokKind::kColon:
      return "':'";
    case TokKind::kSemi:
      return "';'";
    case TokKind::kComma:
      return "','";
    case TokKind::kDot:
      return "'.'";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '-';
}

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (pos_ >= text_.size()) {
        tok.kind = TokKind::kEnd;
        out.push_back(tok);
        return out;
      }
      const char c = text_[pos_];
      if (IsIdentStart(c)) {
        tok.kind = TokKind::kIdent;
        tok.text = LexIdent();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        tok.kind = TokKind::kNumber;
        tok.text = LexNumber();
      } else if (c == '"') {
        tok.kind = TokKind::kString;
        Result<std::string> s = LexString();
        if (!s.ok()) return s.status();
        tok.text = std::move(s).value();
      } else {
        Result<TokKind> kind = LexSymbol();
        if (!kind.ok()) return kind.status();
        tok.kind = kind.value();
      }
      out.push_back(std::move(tok));
    }
  }

 private:
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  std::string LexIdent() {
    std::string out;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) {
      // A '-' immediately followed by '>' terminates the identifier so
      // that "a->b" lexes as IDENT ARROW IDENT.
      if (text_[pos_] == '-' && pos_ + 1 < text_.size() &&
          text_[pos_ + 1] == '>') {
        break;
      }
      out.push_back(text_[pos_]);
      Advance();
    }
    return out;
  }

  std::string LexNumber() {
    std::string out;
    if (text_[pos_] == '-') {
      out.push_back('-');
      Advance();
    }
    bool seen_dot = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        out.push_back(c);
        Advance();
      } else if (c == '.' && !seen_dot && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        seen_dot = true;
        out.push_back(c);
        Advance();
      } else {
        break;
      }
    }
    return out;
  }

  Result<std::string> LexString() {
    Advance();  // consume opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') {
        return Status::ParseError(
            StrCat("unterminated string literal at line ", line_));
      }
      out.push_back(text_[pos_]);
      Advance();
    }
    if (pos_ >= text_.size()) {
      return Status::ParseError(
          StrCat("unterminated string literal at line ", line_));
    }
    Advance();  // closing quote
    return out;
  }

  Result<TokKind> LexSymbol() {
    const char c = text_[pos_];
    const char next = (pos_ + 1 < text_.size()) ? text_[pos_ + 1] : '\0';
    auto two = [&](TokKind kind) {
      Advance();
      Advance();
      return kind;
    };
    auto one = [&](TokKind kind) {
      Advance();
      return kind;
    };
    switch (c) {
      case '=':
        return next == '=' ? two(TokKind::kEqEq) : one(TokKind::kEq);
      case '!':
        return next == '=' ? two(TokKind::kNe) : one(TokKind::kBang);
      case '<':
        return next == '=' ? two(TokKind::kLe) : one(TokKind::kLt);
      case '>':
        return next == '=' ? two(TokKind::kGe) : one(TokKind::kGt);
      case '-':
        if (next == '>') return two(TokKind::kArrow);
        break;
      case '~':
        return one(TokKind::kTilde);
      case '?':
        // The query prompt "?-" is one token.
        return next == '-' ? two(TokKind::kQuestion)
                           : one(TokKind::kQuestion);
      case '{':
        return one(TokKind::kLBrace);
      case '}':
        return one(TokKind::kRBrace);
      case '(':
        return one(TokKind::kLParen);
      case ')':
        return one(TokKind::kRParen);
      case '[':
        return one(TokKind::kLBracket);
      case ']':
        return one(TokKind::kRBracket);
      case ':':
        return one(TokKind::kColon);
      case ';':
        return one(TokKind::kSemi);
      case ',':
        return one(TokKind::kComma);
      case '.':
        return one(TokKind::kDot);
      default:
        break;
    }
    return Status::ParseError(StrCat("unexpected character '", c,
                                     "' at line ", line_, ", column ",
                                     column_));
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  LexerImpl lexer(text);
  return lexer.Run();
}

Status TokenCursor::ErrorAt(const Token& token,
                            const std::string& message) const {
  return Status::ParseError(StrCat("line ", token.line, ", column ",
                                   token.column, ": ", message));
}

Status TokenCursor::Expect(TokKind kind) {
  const Token& tok = Peek();
  if (tok.kind != kind) {
    return ErrorAt(tok, StrCat("expected ", TokKindName(kind), ", got ",
                               TokKindName(tok.kind)));
  }
  Next();
  return Status::OK();
}

Result<std::string> TokenCursor::ExpectIdent() {
  const Token& tok = Peek();
  if (tok.kind != TokKind::kIdent) {
    return ErrorAt(tok, StrCat("expected identifier, got ",
                               TokKindName(tok.kind)));
  }
  Next();
  return tok.text;
}

Status TokenCursor::ExpectKeyword(const std::string& keyword) {
  const Token& tok = Peek();
  if (tok.kind != TokKind::kIdent || tok.text != keyword) {
    return ErrorAt(tok, StrCat("expected keyword '", keyword, "'"));
  }
  Next();
  return Status::OK();
}

bool TokenCursor::ConsumeKeyword(const std::string& word) {
  if (Peek().kind == TokKind::kIdent && Peek().text == word) {
    Next();
    return true;
  }
  return false;
}

bool TokenCursor::Consume(TokKind kind) {
  if (Peek().kind == kind) {
    Next();
    return true;
  }
  return false;
}

}  // namespace ooint
