#include "common/thread_pool.h"

namespace ooint {

ThreadPool::ThreadPool(int num_threads) {
  const int count = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Per-batch completion state lives on the caller's stack; the last
  // task notifies while holding the batch mutex, so the state cannot be
  // destroyed between a worker's final decrement and its notify.
  struct Batch {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
  };
  Batch batch;
  batch.remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::function<void()>& task : tasks) {
      queue_.emplace_back([&batch, task = std::move(task)] {
        task();
        std::lock_guard<std::mutex> batch_lock(batch.mu);
        if (--batch.remaining == 0) batch.done.notify_all();
      });
    }
  }
  wake_.notify_all();
  std::unique_lock<std::mutex> lock(batch.mu);
  batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.emplace_back([&fn, i] { fn(i); });
  }
  RunAll(std::move(tasks));
}

}  // namespace ooint
