#include "common/admission.h"

#include <chrono>

namespace ooint {

Status AdmissionController::TryAcquire() {
  using Clock = std::chrono::steady_clock;
  std::unique_lock<std::mutex> lock(mu_);
  if (stats_.active < policy_.max_concurrent) {
    ++stats_.active;
    ++stats_.admitted;
    return Status::OK();
  }
  // Saturated. Either park in the bounded queue or shed immediately.
  if (stats_.queued >= policy_.max_queue_depth) {
    ++stats_.rejected_full;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(policy_.max_queue_depth) +
        " waiting, " + std::to_string(stats_.active) + " running)");
  }
  ++stats_.queued;
  if (stats_.queued > stats_.max_queued) stats_.max_queued = stats_.queued;
  const Clock::time_point enqueued = Clock::now();
  const bool bounded_wait = policy_.queue_wait_deadline_ms > 0;
  const Clock::time_point give_up =
      enqueued + std::chrono::milliseconds(policy_.queue_wait_deadline_ms);
  bool got_slot = false;
  while (true) {
    if (stats_.active < policy_.max_concurrent) {
      got_slot = true;
      break;
    }
    if (bounded_wait) {
      if (slot_free_.wait_until(lock, give_up) == std::cv_status::timeout &&
          stats_.active >= policy_.max_concurrent) {
        break;  // shed: waited the whole deadline without a slot
      }
    } else {
      slot_free_.wait(lock);
    }
  }
  --stats_.queued;
  if (!got_slot) {
    ++stats_.rejected_wait;
    return Status::ResourceExhausted(
        "queue-wait deadline (" +
        std::to_string(policy_.queue_wait_deadline_ms) + " ms) expired");
  }
  ++stats_.active;
  ++stats_.admitted;
  stats_.total_wait_ms += std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - enqueued)
                              .count();
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.active;
  }
  slot_free_.notify_one();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ooint
