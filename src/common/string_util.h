#ifndef OOINT_COMMON_STRING_UTIL_H_
#define OOINT_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ooint {

/// Concatenates the streamable arguments into one std::string.
/// StrCat("class ", name, " has ", n, " attributes")
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on every occurrence of `sep` (single character). Keeps
/// empty fields, so Split("a..b", '.') == {"a", "", "b"}.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` begins with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if every character of `text` satisfies the identifier charset
/// [A-Za-z0-9_#-] and text is non-empty and does not start with a digit.
/// Identifiers name schemas, classes, attributes and aggregation functions
/// (the paper uses names like "ssn#", "car-name" and "niece_nephew", hence
/// '#' and '-' are allowed).
bool IsIdentifier(std::string_view text);

}  // namespace ooint

#endif  // OOINT_COMMON_STRING_UTIL_H_
