#ifndef OOINT_COMMON_RESULT_H_
#define OOINT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ooint {

/// Either a value of type T or an error Status; the library's return type
/// for fallible operations that produce a value.
///
/// Usage:
///   Result<Schema> r = ParseSchema(text);
///   if (!r.ok()) return r.status();
///   const Schema& s = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns the error
/// status from the enclosing function.
#define OOINT_ASSIGN_OR_RETURN(lhs, expr)              \
  auto OOINT_CONCAT_(_ooint_result_, __LINE__) = (expr);  \
  if (!OOINT_CONCAT_(_ooint_result_, __LINE__).ok())      \
    return OOINT_CONCAT_(_ooint_result_, __LINE__).status(); \
  lhs = std::move(OOINT_CONCAT_(_ooint_result_, __LINE__)).value()

#define OOINT_CONCAT_(a, b) OOINT_CONCAT_IMPL_(a, b)
#define OOINT_CONCAT_IMPL_(a, b) a##b

}  // namespace ooint

#endif  // OOINT_COMMON_RESULT_H_
