#ifndef OOINT_COMMON_TOPK_H_
#define OOINT_COMMON_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

namespace ooint {

/// A bounded top-k accumulator: holds at most `bound` items, the best
/// (smallest under Less) of everything offered so far. Backed by a
/// max-heap whose root is the worst held item, so each offer is O(log k)
/// plus — with de-duplication on — an O(k) equality scan.
///
/// `Less` must be a strict weak ordering that is *total* on the offered
/// items: incomparability (neither a<b nor b<a) is treated as equality.
/// The serving pipeline guarantees this by tie-breaking its sort key
/// with the full row ordering.
///
/// With `dedup` enabled, Push rejects items equal to a held one. The
/// in-bound scan is exact for distinct top-k even though evicted items
/// are forgotten: an item can only be evicted when `bound` strictly
/// better items are held, and held items only ever improve — so a
/// duplicate of an evicted item is itself rejected by the bound before
/// the missing equality check could matter.
template <typename T, typename Less>
class BoundedTopK {
 public:
  /// What Push did with the offered item.
  enum class Offer {
    /// Held; nothing was evicted.
    kKept,
    /// Held; the previously-held worst item was evicted to make room
    /// (written to `displaced` when provided).
    kKeptEvicted,
    /// Dropped: an equal item is already held (dedup mode only).
    kDuplicate,
    /// Dropped: the accumulator is full and the item is no better than
    /// the held worst.
    kRejected,
  };

  /// `bound` == 0 means unbounded (a full sort accumulator).
  BoundedTopK(size_t bound, Less less, bool dedup = true)
      : bound_(bound == 0 ? std::numeric_limits<size_t>::max() : bound),
        less_(std::move(less)),
        dedup_(dedup) {}

  Offer Push(T item, T* displaced = nullptr) {
    if (dedup_) {
      for (const T& held : heap_) {
        if (!less_(held, item) && !less_(item, held)) return Offer::kDuplicate;
      }
    }
    if (heap_.size() < bound_) {
      heap_.push_back(std::move(item));
      std::push_heap(heap_.begin(), heap_.end(), less_);
      return Offer::kKept;
    }
    if (!less_(item, heap_.front())) {
      ++evictions_;
      return Offer::kRejected;
    }
    std::pop_heap(heap_.begin(), heap_.end(), less_);
    if (displaced != nullptr) *displaced = std::move(heap_.back());
    heap_.back() = std::move(item);
    std::push_heap(heap_.begin(), heap_.end(), less_);
    ++evictions_;
    return Offer::kKeptEvicted;
  }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Offered items the bound discarded (the offer itself or the held
  /// item it displaced), duplicates not counted.
  size_t evictions() const { return evictions_; }

  /// Destructively extracts the held items, best first (ascending under
  /// Less). The accumulator is empty afterwards.
  std::vector<T> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end(), less_);
    evictions_ = 0;
    return std::move(heap_);
  }

 private:
  size_t bound_;
  Less less_;
  bool dedup_;
  /// Max-heap under less_: front() is the worst held item.
  std::vector<T> heap_;
  size_t evictions_ = 0;
};

}  // namespace ooint

#endif  // OOINT_COMMON_TOPK_H_
