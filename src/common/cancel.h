#ifndef OOINT_COMMON_CANCEL_H_
#define OOINT_COMMON_CANCEL_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

namespace ooint {

/// Cooperative cancellation + end-to-end deadline handle for one query.
///
/// A CancelToken is a cheap copyable handle onto shared per-query state:
/// every copy observes the same budget, the same accumulated spend and
/// the same cancelled flag, so one token can fan out across overlapped
/// extent fetches and demand sub-evaluators and still account a single
/// query-wide deadline.
///
/// Time is *virtual* milliseconds — the same clock AgentConnection's
/// retries and backoffs run on. Connections Charge() every virtual wait
/// they perform on behalf of the query, and the evaluator charges a
/// fixed kRoundChargeMs per fixpoint round (and per top-down goal
/// expansion) so pure derivation work is bounded too, even when no
/// fetch is in flight. Deadline behavior is therefore fully
/// deterministic: the same query over the same fault schedule truncates
/// at exactly the same point on every run.
///
/// Boundary rule (mirrors AgentConnection's documented total-deadline
/// rule): work that lands *exactly on* the deadline completes; the
/// token reads as expired once spent >= budget. Nothing new may start
/// at or past the deadline, but the wait that reached it is not
/// retroactively failed. A budget of 0 is therefore expired before any
/// work begins.
///
/// A default-constructed token is the "no deadline" token: it never
/// expires, cannot be cancelled, and Charge() is a no-op — pass it
/// wherever overload protection is disabled; it costs one null check.
///
/// Internally the spend accumulates in integer microseconds (atomic
/// fetch_add), rounded per charge with llround — portable, lock-free,
/// and still deterministic for the fractional jittered backoffs the
/// connection layer produces.
class CancelToken {
 public:
  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

  /// Virtual ms the evaluator charges per semi-naive round / top-down
  /// goal expansion (see class comment).
  static constexpr double kRoundChargeMs = 1.0;

  /// No-deadline token: never expires, Cancel() is a no-op.
  CancelToken() = default;

  /// Token with `budget_ms` of virtual time. Callers validate and
  /// reject negative deadlines (InvalidArgument) before constructing a
  /// token; a budget of 0 is already expired.
  static CancelToken WithBudget(double budget_ms);

  /// Token with no time budget but a usable Cancel() switch — models a
  /// client going away mid-query (tests, conformance family 9).
  static CancelToken Cancellable();

  /// True if this token carries shared state (a budget or a cancel
  /// switch); false for the default no-deadline token.
  bool active() const { return state_ != nullptr; }

  /// Flips the cancelled flag. No-op on a no-deadline token. Const:
  /// like Charge, it mutates the *shared query state*, not this handle,
  /// so any copy — including one passed by const reference — can
  /// cancel or account for the query.
  void Cancel() const {
    if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// True iff Cancel() was called (deadline expiry does not set this).
  bool cancelled() const {
    return state_ && state_->cancelled.load(std::memory_order_relaxed);
  }

  /// Adds `ms` virtual milliseconds of spend. Negative charges are
  /// ignored; no-op on a no-deadline token.
  void Charge(double ms) const {
    if (state_ && ms > 0) {
      state_->spent_us.fetch_add(std::llround(ms * 1000.0),
                                 std::memory_order_relaxed);
    }
  }

  /// Virtual milliseconds charged so far (0 for a no-deadline token).
  double spent_ms() const {
    return state_ == nullptr
               ? 0
               : static_cast<double>(
                     state_->spent_us.load(std::memory_order_relaxed)) /
                     1000.0;
  }

  /// The budget this token was created with (kNoDeadline if none).
  double budget_ms() const {
    return state_ ? state_->budget_ms : kNoDeadline;
  }

  /// Virtual milliseconds left before expiry; never negative.
  /// kNoDeadline when the token has no time budget.
  double remaining_ms() const {
    if (!state_ || state_->budget_ms == kNoDeadline) return kNoDeadline;
    const double left = state_->budget_ms - spent_ms();
    return left > 0 ? left : 0;
  }

  /// True once the query must stop: explicitly cancelled, or the spend
  /// has reached the budget (spent >= budget; see boundary rule above).
  bool Expired() const {
    if (!state_) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    return state_->budget_ms != kNoDeadline &&
           spent_ms() >= state_->budget_ms;
  }

 private:
  struct State {
    double budget_ms = kNoDeadline;
    std::atomic<std::int64_t> spent_us{0};
    std::atomic<bool> cancelled{false};
  };

  std::shared_ptr<State> state_;
};

}  // namespace ooint

#endif  // OOINT_COMMON_CANCEL_H_
