#include "common/cancel.h"

namespace ooint {

CancelToken CancelToken::WithBudget(double budget_ms) {
  CancelToken token;
  token.state_ = std::make_shared<State>();
  token.state_->budget_ms = budget_ms;
  return token;
}

CancelToken CancelToken::Cancellable() {
  CancelToken token;
  token.state_ = std::make_shared<State>();
  return token;
}

}  // namespace ooint
