#ifndef OOINT_COMMON_LEXER_H_
#define OOINT_COMMON_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace ooint {

/// Token kinds shared by the library's small languages (the assertion
/// language, the schema-definition language and the query language).
enum class TokKind {
  kEnd,
  kIdent,    // person, ssn#, car-name (identifiers may contain # and -)
  kString,   // "March"
  kNumber,   // 42, 3.5, -1
  kEqEq,     // ==
  kEq,       // =
  kNe,       // !=
  kLe,       // <=
  kGe,       // >=
  kLt,       // <
  kGt,       // >
  kTilde,    // ~
  kBang,     // !
  kArrow,    // ->
  kQuestion, // ?
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kColon,
  kSemi,
  kComma,
  kDot,
};

/// A stable display name, e.g. "identifier" or "'=='".
const char* TokKindName(TokKind kind);

struct Token {
  TokKind kind = TokKind::kEnd;
  /// Payload for identifiers, strings and numbers.
  std::string text;
  int line = 1;
  int column = 1;
};

/// Tokenizes `text`. Comments run from '#' to end of line. Identifiers
/// follow the paper's naming ([A-Za-z_][A-Za-z0-9_#-]*, with "->"
/// breaking an identifier so "a->b" lexes as three tokens). The token
/// list always ends with a kEnd token. Errors carry line/column.
Result<std::vector<Token>> Tokenize(const std::string& text);

/// Cursor over a token stream with the helpers the library's
/// recursive-descent parsers share.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  /// A ParseError status pinned to `token`'s position.
  Status ErrorAt(const Token& token, const std::string& message) const;

  /// Consumes a token of `kind` or fails.
  Status Expect(TokKind kind);
  /// Consumes and returns an identifier or fails.
  Result<std::string> ExpectIdent();
  /// Consumes the identifier `keyword` or fails.
  Status ExpectKeyword(const std::string& keyword);
  /// True (and consumes) when the next token is the identifier `word`.
  bool ConsumeKeyword(const std::string& word);
  /// True (and consumes) when the next token has `kind`.
  bool Consume(TokKind kind);

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace ooint

#endif  // OOINT_COMMON_LEXER_H_
