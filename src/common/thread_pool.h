#ifndef OOINT_COMMON_THREAD_POOL_H_
#define OOINT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ooint {

/// A fixed-size worker pool with a single shared FIFO queue — no work
/// stealing, no futures, no task priorities. The parallel federation
/// runtime only ever needs one shape of parallelism: "run this batch of
/// independent tasks, then continue" (overlapped extent fetches, one
/// fixpoint round's rule partitions), and RunAll() is exactly that
/// barrier.
///
/// Concurrency contract:
///  - RunAll() may be called from several threads at once (concurrent
///    FsmClient queries each running a demand sub-evaluation share one
///    pool); each call blocks only on its own batch.
///  - RunAll() must NOT be called from inside a pool task (a worker
///    waiting on a nested batch could deadlock the pool). The evaluator
///    never nests batches by construction.
///  - Tasks must not throw; error propagation happens through whatever
///    state the task closure writes (the evaluator collects per-task
///    Status values and inspects them after the barrier).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs every task to completion and returns. The calling thread only
  /// waits (it does not execute tasks itself), so per-agent blocking
  /// waits inside tasks overlap across the full worker count.
  void RunAll(std::vector<std::function<void()>> tasks);

  /// Convenience fan-out: RunAll over fn(0) .. fn(n-1).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ooint

#endif  // OOINT_COMMON_THREAD_POOL_H_
