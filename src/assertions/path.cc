#include "assertions/path.h"

#include "common/string_util.h"

namespace ooint {

namespace {
const std::string kEmpty;
}  // namespace

const std::string& Path::leaf() const {
  return components_.empty() ? kEmpty : components_.back();
}

std::string Path::ToString() const {
  std::string out = StrCat(schema_, ".", class_name_);
  for (size_t i = 0; i < components_.size(); ++i) {
    const bool quoted = name_ref_ && i + 1 == components_.size();
    out += quoted ? StrCat(".\"", components_[i], "\"")
                  : StrCat(".", components_[i]);
  }
  return out;
}

std::string Path::LocalString() const {
  std::string out = class_name_;
  for (size_t i = 0; i < components_.size(); ++i) {
    const bool quoted = name_ref_ && i + 1 == components_.size();
    out += quoted ? StrCat(".\"", components_[i], "\"")
                  : StrCat(".", components_[i]);
  }
  return out;
}

Result<const ClassDef*> Path::Resolve(const Schema& schema) const {
  Result<ClassId> id = schema.GetClass(class_name_);
  if (!id.ok()) return id.status();
  const ClassDef* current = &schema.class_def(id.value());
  for (size_t i = 0; i < components_.size(); ++i) {
    const std::string& component = components_[i];
    const Attribute* attr = current->FindAttribute(component);
    const AggregationFunction* agg = current->FindAggregation(component);
    if (attr == nullptr && agg == nullptr) {
      return Status::NotFound(
          StrCat("path ", ToString(), ": '", component,
                 "' is not an attribute or aggregation of class '",
                 current->name(), "'"));
    }
    const bool is_last = (i + 1 == components_.size());
    if (is_last) return current;
    // Intermediate component: must be class-typed (structured attribute)
    // or an aggregation function, so the path can descend.
    if (attr != nullptr && attr->type.is_class()) {
      current = &schema.class_def(attr->type.class_id);
    } else if (agg != nullptr) {
      current = &schema.class_def(agg->range_class_id);
    } else {
      return Status::TypeError(
          StrCat("path ", ToString(), ": component '", component,
                 "' is scalar and cannot be descended into"));
    }
  }
  return current;
}

}  // namespace ooint
