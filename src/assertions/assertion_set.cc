#include "assertions/assertion_set.h"

#include <algorithm>

#include "common/string_util.h"

namespace ooint {

std::string AssertionSet::PairKey(const ClassRef& a, const ClassRef& b) {
  const std::string ka = a.ToString();
  const std::string kb = b.ToString();
  return (ka < kb) ? StrCat(ka, "|", kb) : StrCat(kb, "|", ka);
}

Status AssertionSet::Add(Assertion assertion) {
  if (assertion.lhs.empty()) {
    return Status::InvalidArgument("assertion has no lhs class");
  }
  if (assertion.lhs.size() > 1 && assertion.rel != SetRel::kDerivation) {
    return Status::InvalidArgument(
        StrCat("only derivation assertions may have several lhs classes; "
               "got ",
               SetRelName(assertion.rel)));
  }
  const size_t index = assertions_.size();
  for (const ClassRef& c : assertion.lhs) {
    partners_[c.ToString()].push_back(assertion.rhs);
    partners_[assertion.rhs.ToString()].push_back(c);
  }
  if (assertion.rel == SetRel::kDerivation) {
    for (const ClassRef& c : assertion.lhs) {
      derivation_index_[PairKey(c, assertion.rhs)].push_back(index);
      derivation_by_class_[c.ToString()].push_back(index);
    }
    derivation_by_class_[assertion.rhs.ToString()].push_back(index);
  } else {
    const std::string key = PairKey(assertion.lhs.front(), assertion.rhs);
    auto [it, inserted] = set_rel_index_.emplace(key, index);
    if (!inserted) {
      const Assertion& prior = assertions_[it->second];
      return Status::AlreadyExists(
          StrCat("classes ", assertion.lhs.front().ToString(), " and ",
                 assertion.rhs.ToString(),
                 " already related by an assertion (",
                 SetRelName(prior.rel), ")"));
    }
  }
  assertions_.push_back(std::move(assertion));
  return Status::OK();
}

AssertionSet::Lookup AssertionSet::Find(const ClassRef& a,
                                        const ClassRef& b) const {
  Lookup out;
  const std::string key = PairKey(a, b);
  auto it = set_rel_index_.find(key);
  if (it != set_rel_index_.end()) {
    const Assertion& assertion = assertions_[it->second];
    out.assertion = &assertion;
    if (assertion.lhs.front() == a && assertion.rhs == b) {
      out.rel = assertion.rel;
      out.reversed = false;
    } else {
      out.rel = ReverseSetRel(assertion.rel);
      out.reversed = true;
    }
    return out;
  }
  auto dit = derivation_index_.find(key);
  if (dit != derivation_index_.end() && !dit->second.empty()) {
    const Assertion& assertion = assertions_[dit->second.front()];
    out.assertion = &assertion;
    out.rel = SetRel::kDerivation;
    out.reversed = !(assertion.rhs == b);
    return out;
  }
  return out;
}

std::vector<const Assertion*> AssertionSet::FindDerivations(
    const ClassRef& ref) const {
  std::vector<const Assertion*> out;
  auto it = derivation_by_class_.find(ref.ToString());
  if (it == derivation_by_class_.end()) return out;
  for (size_t index : it->second) out.push_back(&assertions_[index]);
  // A class can appear in one assertion both via several indexes; dedup.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<const Assertion*> AssertionSet::AllDerivations() const {
  std::vector<const Assertion*> out;
  for (const Assertion& a : assertions_) {
    if (a.rel == SetRel::kDerivation) out.push_back(&a);
  }
  return out;
}

std::vector<ClassRef> AssertionSet::PartnersOf(const ClassRef& ref) const {
  auto it = partners_.find(ref.ToString());
  if (it == partners_.end()) return {};
  std::vector<ClassRef> out = it->second;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool AssertionSet::Involves(const ClassRef& a, const ClassRef& b) const {
  const std::string key = PairKey(a, b);
  return set_rel_index_.count(key) != 0 || derivation_index_.count(key) != 0;
}

namespace {

Status CheckClassRef(const ClassRef& ref, const Schema& s1, const Schema& s2) {
  const Schema* schema = nullptr;
  if (ref.schema == s1.name()) {
    schema = &s1;
  } else if (ref.schema == s2.name()) {
    schema = &s2;
  } else {
    return Status::NotFound(StrCat("assertion references unknown schema '",
                                   ref.schema, "'"));
  }
  if (schema->FindClass(ref.class_name) == kInvalidClassId) {
    return Status::NotFound(StrCat("assertion references unknown class ",
                                   ref.ToString()));
  }
  return Status::OK();
}

Status CheckPath(const Path& path, const Schema& s1, const Schema& s2) {
  const Schema* schema = nullptr;
  if (path.schema() == s1.name()) {
    schema = &s1;
  } else if (path.schema() == s2.name()) {
    schema = &s2;
  } else {
    return Status::NotFound(
        StrCat("path ", path.ToString(), " references unknown schema"));
  }
  Result<const ClassDef*> resolved = path.Resolve(*schema);
  if (!resolved.ok()) return resolved.status();
  return Status::OK();
}

}  // namespace

Status AssertionSet::Validate(const Schema& s1, const Schema& s2) const {
  for (const Assertion& assertion : assertions_) {
    for (const ClassRef& c : assertion.lhs) {
      OOINT_RETURN_IF_ERROR(CheckClassRef(c, s1, s2));
    }
    OOINT_RETURN_IF_ERROR(CheckClassRef(assertion.rhs, s1, s2));

    // Derivations: all lhs classes in one schema, rhs in the other.
    if (assertion.rel == SetRel::kDerivation) {
      const std::string& lhs_schema = assertion.lhs.front().schema;
      for (const ClassRef& c : assertion.lhs) {
        if (c.schema != lhs_schema) {
          return Status::InvalidArgument(
              StrCat("derivation lhs classes span several schemas: ",
                     assertion.ToString()));
        }
      }
      if (assertion.rhs.schema == lhs_schema) {
        return Status::InvalidArgument(
            StrCat("derivation rhs must come from the other schema: ",
                   assertion.ToString()));
      }
    }

    for (const AttributeCorrespondence& ac : assertion.attr_corrs) {
      OOINT_RETURN_IF_ERROR(CheckPath(ac.lhs, s1, s2));
      OOINT_RETURN_IF_ERROR(CheckPath(ac.rhs, s1, s2));
      if (ac.rel == AttrRel::kComposedInto && ac.composed_name.empty()) {
        return Status::InvalidArgument(
            StrCat("composed-into correspondence lacks the new attribute "
                   "name: ",
                   ac.ToString()));
      }
      if (ac.rel != AttrRel::kComposedInto && !ac.composed_name.empty()) {
        return Status::InvalidArgument(
            StrCat("composed name on a non-alpha correspondence: ",
                   ac.ToString()));
      }
      if (ac.with.has_value()) {
        if (ac.rel != AttrRel::kSubset && ac.rel != AttrRel::kSuperset &&
            ac.rel != AttrRel::kOverlap && ac.rel != AttrRel::kEquivalent) {
          return Status::InvalidArgument(
              StrCat("'with' qualifier on unsupported correspondence kind: ",
                     ac.ToString()));
        }
        OOINT_RETURN_IF_ERROR(CheckPath(ac.with->attribute, s1, s2));
      }
    }
    for (const AggCorrespondence& gc : assertion.agg_corrs) {
      OOINT_RETURN_IF_ERROR(CheckPath(gc.lhs, s1, s2));
      OOINT_RETURN_IF_ERROR(CheckPath(gc.rhs, s1, s2));
    }
    for (const ValueCorrespondence& vc : assertion.value_corrs) {
      const std::string& expected_schema = (vc.side == 1)
                                               ? assertion.lhs.front().schema
                                               : assertion.rhs.schema;
      if (vc.lhs.schema() != expected_schema ||
          vc.rhs.schema() != expected_schema) {
        return Status::InvalidArgument(
            StrCat("value correspondence for side ", vc.side,
                   " must stay inside schema '", expected_schema,
                   "': ", vc.ToString()));
      }
      OOINT_RETURN_IF_ERROR(CheckPath(vc.lhs, s1, s2));
      OOINT_RETURN_IF_ERROR(CheckPath(vc.rhs, s1, s2));
    }
  }
  return Status::OK();
}

std::string AssertionSet::ToString() const {
  std::string out;
  for (const Assertion& a : assertions_) {
    out += a.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace ooint
