#include "assertions/assertion.h"

#include <cassert>

#include "common/string_util.h"

namespace ooint {

std::string WithPredicate::ToString() const {
  return StrCat(attribute.ToString(), " ", CompareOpName(op), " ",
                constant.ToString());
}

std::string AttributeCorrespondence::ToString() const {
  std::string out;
  if (rel == AttrRel::kComposedInto) {
    out = StrCat(lhs.ToString(), " alpha(", composed_name, ") ",
                 rhs.ToString());
  } else {
    out = StrCat(lhs.ToString(), " ", AttrRelName(rel), " ", rhs.ToString());
  }
  if (with.has_value()) {
    out += StrCat(" with ", with->ToString());
  }
  return out;
}

std::string AggCorrespondence::ToString() const {
  return StrCat(lhs.ToString(), " ", AggRelName(rel), " ", rhs.ToString());
}

std::string ValueCorrespondence::ToString() const {
  return StrCat(lhs.ToString(), " ", ValueRelName(rel), " ", rhs.ToString());
}

bool Assertion::MentionsOnLhs(const ClassRef& ref) const {
  for (const ClassRef& c : lhs) {
    if (c == ref) return true;
  }
  return false;
}

Assertion Assertion::Reversed() const {
  assert(rel != SetRel::kDerivation && "derivation assertions are directional");
  Assertion out;
  out.lhs = {rhs};
  out.rel = ReverseSetRel(rel);
  out.rhs = lhs.front();
  out.value_corrs = value_corrs;
  for (ValueCorrespondence& vc : out.value_corrs) {
    vc.side = (vc.side == 1) ? 2 : 1;
  }
  out.attr_corrs = attr_corrs;
  for (AttributeCorrespondence& ac : out.attr_corrs) {
    std::swap(ac.lhs, ac.rhs);
    ac.rel = ReverseAttrRel(ac.rel);
  }
  out.agg_corrs = agg_corrs;
  for (AggCorrespondence& gc : out.agg_corrs) {
    std::swap(gc.lhs, gc.rhs);
    gc.rel = ReverseAggRel(gc.rel);
  }
  return out;
}

std::string Assertion::ToString() const {
  std::string head;
  if (lhs.size() == 1) {
    head = lhs.front().ToString();
  } else {
    std::vector<std::string> names;
    names.reserve(lhs.size());
    for (const ClassRef& c : lhs) names.push_back(c.class_name);
    head = StrCat(lhs.front().schema, "(", Join(names, ", "), ")");
  }
  std::string out =
      StrCat("assert ", head, " ", SetRelName(rel), " ", rhs.ToString());
  if (value_corrs.empty() && attr_corrs.empty() && agg_corrs.empty()) {
    out += ";\n";
    return out;
  }
  out += " {\n";
  for (const ValueCorrespondence& vc : value_corrs) {
    out += StrCat("  value(", vc.side == 1 ? lhs.front().schema : rhs.schema,
                  "): ", vc.ToString(), ";\n");
  }
  for (const AttributeCorrespondence& ac : attr_corrs) {
    out += StrCat("  attr: ", ac.ToString(), ";\n");
  }
  for (const AggCorrespondence& gc : agg_corrs) {
    out += StrCat("  agg: ", gc.ToString(), ";\n");
  }
  out += "}\n";
  return out;
}

}  // namespace ooint
