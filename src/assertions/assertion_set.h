#ifndef OOINT_ASSERTIONS_ASSERTION_SET_H_
#define OOINT_ASSERTIONS_ASSERTION_SET_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "assertions/assertion.h"
#include "model/schema.h"

namespace ooint {

/// The set of correspondence assertions declared (by users or DBAs)
/// between two local schemas — the input of the integration algorithms,
/// with the pair-indexed lookups they perform at every traversal step.
class AssertionSet {
 public:
  /// Result of a class-pair lookup, oriented as (a θ b) regardless of how
  /// the assertion was stored.
  struct Lookup {
    const Assertion* assertion = nullptr;
    SetRel rel = SetRel::kEquivalent;
    /// True when the stored assertion has the queried classes swapped
    /// (its lhs is b). For derivations this means b → ... a: a is the
    /// derived class.
    bool reversed = false;

    bool found() const { return assertion != nullptr; }
  };

  AssertionSet() = default;

  /// Adds an assertion. Multiple derivation assertions may involve the
  /// same class pair (e.g. Book → Author and Author → Book, Example 4);
  /// at most one non-derivation assertion may relate a given pair.
  Status Add(Assertion assertion);

  size_t size() const { return assertions_.size(); }
  const std::vector<Assertion>& assertions() const { return assertions_; }

  /// The class-level relationship between a and b. When both a
  /// set-relation and derivations exist for the pair, the set-relation
  /// wins (the integrator handles derivations via FindDerivations).
  Lookup Find(const ClassRef& a, const ClassRef& b) const;

  /// All derivation assertions in which `ref` participates (on either
  /// side).
  std::vector<const Assertion*> FindDerivations(const ClassRef& ref) const;

  /// All derivation assertions.
  std::vector<const Assertion*> AllDerivations() const;

  /// Every class related to `ref` by any assertion (set relation or
  /// derivation) — the assertion partners the integrator's depth-first
  /// pass steers towards.
  std::vector<ClassRef> PartnersOf(const ClassRef& ref) const;

  /// True iff any assertion (of any kind) involves the pair {a, b}.
  bool Involves(const ClassRef& a, const ClassRef& b) const;

  /// Structural validation against the two participating schemas:
  ///  - every referenced class exists in its schema,
  ///  - every path of every correspondence resolves (Definition 4.1),
  ///  - composed-into correspondences carry the new attribute name,
  ///  - `with` qualifiers only appear on inclusion correspondences,
  ///  - derivation lhs classes all come from one schema and the rhs from
  ///    the other,
  ///  - value correspondences reference the schema of their declared side.
  Status Validate(const Schema& s1, const Schema& s2) const;

  /// Renders all assertions in the parseable assertion language.
  std::string ToString() const;

 private:
  static std::string PairKey(const ClassRef& a, const ClassRef& b);

  std::vector<Assertion> assertions_;
  // Unordered-pair key -> index of the (single) non-derivation assertion.
  std::map<std::string, size_t> set_rel_index_;
  // Unordered-pair key -> indices of derivation assertions touching the
  // pair.
  std::map<std::string, std::vector<size_t>> derivation_index_;
  // Class name (schema-qualified) -> derivation assertion indices.
  std::map<std::string, std::vector<size_t>> derivation_by_class_;
  // Class name (schema-qualified) -> partner classes across all
  // assertions.
  std::map<std::string, std::vector<ClassRef>> partners_;
};

}  // namespace ooint

#endif  // OOINT_ASSERTIONS_ASSERTION_SET_H_
