#include "assertions/parser.h"

#include <vector>

#include "common/lexer.h"
#include "common/string_util.h"

namespace ooint {

namespace {

/// Recursive-descent parser over the shared token stream (see
/// common/lexer.h for the lexical grammar).
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens)
      : cursor_(std::move(tokens)) {}

  Result<AssertionSet> ParseFile() {
    AssertionSet set;
    while (!cursor_.AtEnd()) {
      Result<Assertion> a = ParseAssertion();
      if (!a.ok()) return a.status();
      OOINT_RETURN_IF_ERROR(set.Add(std::move(a).value()));
    }
    return set;
  }

  Result<Assertion> ParseAssertion() {
    OOINT_RETURN_IF_ERROR(cursor_.ExpectKeyword("assert"));
    Assertion assertion;

    // Head: classref, or SCHEMA(c1, c2, ...).
    OOINT_ASSIGN_OR_RETURN(std::string first, cursor_.ExpectIdent());
    if (cursor_.Consume(TokKind::kLParen)) {
      while (true) {
        OOINT_ASSIGN_OR_RETURN(std::string cls, cursor_.ExpectIdent());
        assertion.lhs.push_back({first, std::move(cls)});
        if (cursor_.Consume(TokKind::kComma)) continue;
        break;
      }
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kRParen));
    } else {
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kDot));
      OOINT_ASSIGN_OR_RETURN(std::string cls, cursor_.ExpectIdent());
      assertion.lhs.push_back({std::move(first), std::move(cls)});
    }

    OOINT_ASSIGN_OR_RETURN(assertion.rel, ParseSetRel());

    OOINT_ASSIGN_OR_RETURN(std::string rhs_schema, cursor_.ExpectIdent());
    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kDot));
    OOINT_ASSIGN_OR_RETURN(std::string rhs_class, cursor_.ExpectIdent());
    assertion.rhs = {std::move(rhs_schema), std::move(rhs_class)};

    if (cursor_.Consume(TokKind::kSemi)) return assertion;
    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLBrace));
    while (cursor_.Peek().kind != TokKind::kRBrace) {
      OOINT_RETURN_IF_ERROR(ParseEntry(&assertion));
    }
    cursor_.Next();  // '}'
    return assertion;
  }

 private:
  Result<SetRel> ParseSetRel() {
    const Token& tok = cursor_.Next();
    switch (tok.kind) {
      case TokKind::kEqEq:
        return SetRel::kEquivalent;
      case TokKind::kLe:
        return SetRel::kSubset;
      case TokKind::kGe:
        return SetRel::kSuperset;
      case TokKind::kTilde:
        return SetRel::kOverlap;
      case TokKind::kBang:
        return SetRel::kDisjoint;
      case TokKind::kArrow:
        return SetRel::kDerivation;
      default:
        return cursor_.ErrorAt(
            tok, "expected a class relation (== <= >= ~ ! ->)");
    }
  }

  Result<Path> ParsePath() {
    OOINT_ASSIGN_OR_RETURN(std::string schema, cursor_.ExpectIdent());
    OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kDot));
    OOINT_ASSIGN_OR_RETURN(std::string class_name, cursor_.ExpectIdent());
    std::vector<std::string> components;
    bool name_ref = false;
    while (cursor_.Consume(TokKind::kDot)) {
      const Token& tok = cursor_.Peek();
      if (tok.kind == TokKind::kIdent) {
        components.push_back(tok.text);
        cursor_.Next();
      } else if (tok.kind == TokKind::kString) {
        // A quoted name reference must be the final component
        // (Definition 4.1).
        components.push_back(tok.text);
        name_ref = true;
        cursor_.Next();
        break;
      } else {
        return cursor_.ErrorAt(tok, "expected path component");
      }
    }
    return Path(std::move(schema), std::move(class_name),
                std::move(components), name_ref);
  }

  Result<Value> ParseConstant() {
    const Token& tok = cursor_.Next();
    switch (tok.kind) {
      case TokKind::kString:
        return Value::String(tok.text);
      case TokKind::kNumber:
        if (tok.text.find('.') != std::string::npos) {
          return Value::Real(std::stod(tok.text));
        }
        return Value::Integer(std::stoll(tok.text));
      case TokKind::kIdent:
        if (tok.text == "true") return Value::Boolean(true);
        if (tok.text == "false") return Value::Boolean(false);
        // Bare identifiers denote string constants (the paper writes
        // `with car-name = car-name_1` without quotes).
        return Value::String(tok.text);
      default:
        return cursor_.ErrorAt(tok, "expected a constant");
    }
  }

  Result<CompareOp> ParseCompareOp() {
    const Token& tok = cursor_.Next();
    switch (tok.kind) {
      case TokKind::kEqEq:
      case TokKind::kEq:
        return CompareOp::kEq;
      case TokKind::kNe:
        return CompareOp::kNe;
      case TokKind::kLt:
        return CompareOp::kLt;
      case TokKind::kLe:
        return CompareOp::kLe;
      case TokKind::kGt:
        return CompareOp::kGt;
      case TokKind::kGe:
        return CompareOp::kGe;
      default:
        return cursor_.ErrorAt(tok, "expected a comparison operator");
    }
  }

  Status ParseEntry(Assertion* assertion) {
    const Token& tok = cursor_.Peek();
    if (tok.kind != TokKind::kIdent) {
      return cursor_.ErrorAt(tok, "expected 'value', 'attr' or 'agg'");
    }
    if (tok.text == "value") {
      cursor_.Next();
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLParen));
      OOINT_ASSIGN_OR_RETURN(std::string side_schema, cursor_.ExpectIdent());
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kRParen));
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kColon));
      ValueCorrespondence vc;
      if (side_schema == assertion->lhs.front().schema) {
        vc.side = 1;
      } else if (side_schema == assertion->rhs.schema) {
        vc.side = 2;
      } else {
        return cursor_.ErrorAt(
            tok, StrCat("value correspondence schema '", side_schema,
                        "' is neither side of the assertion"));
      }
      OOINT_ASSIGN_OR_RETURN(vc.lhs, ParsePath());
      OOINT_ASSIGN_OR_RETURN(vc.rel, ParseValueRel());
      OOINT_ASSIGN_OR_RETURN(vc.rhs, ParsePath());
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kSemi));
      assertion->value_corrs.push_back(std::move(vc));
      return Status::OK();
    }
    if (tok.text == "attr") {
      cursor_.Next();
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kColon));
      AttributeCorrespondence ac;
      OOINT_ASSIGN_OR_RETURN(ac.lhs, ParsePath());
      OOINT_RETURN_IF_ERROR(ParseAttrRel(&ac));
      OOINT_ASSIGN_OR_RETURN(ac.rhs, ParsePath());
      if (cursor_.ConsumeKeyword("with")) {
        WithPredicate with;
        OOINT_ASSIGN_OR_RETURN(with.attribute, ParsePath());
        OOINT_ASSIGN_OR_RETURN(with.op, ParseCompareOp());
        OOINT_ASSIGN_OR_RETURN(with.constant, ParseConstant());
        ac.with = std::move(with);
      }
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kSemi));
      assertion->attr_corrs.push_back(std::move(ac));
      return Status::OK();
    }
    if (tok.text == "agg") {
      cursor_.Next();
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kColon));
      AggCorrespondence gc;
      OOINT_ASSIGN_OR_RETURN(gc.lhs, ParsePath());
      OOINT_ASSIGN_OR_RETURN(gc.rel, ParseAggRel());
      OOINT_ASSIGN_OR_RETURN(gc.rhs, ParsePath());
      OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kSemi));
      assertion->agg_corrs.push_back(std::move(gc));
      return Status::OK();
    }
    return cursor_.ErrorAt(tok, StrCat("unknown correspondence kind '",
                                       tok.text,
                                       "' (expected value/attr/agg)"));
  }

  Status ParseAttrRel(AttributeCorrespondence* ac) {
    const Token& tok = cursor_.Next();
    switch (tok.kind) {
      case TokKind::kEqEq:
        ac->rel = AttrRel::kEquivalent;
        return Status::OK();
      case TokKind::kLe:
        ac->rel = AttrRel::kSubset;
        return Status::OK();
      case TokKind::kGe:
        ac->rel = AttrRel::kSuperset;
        return Status::OK();
      case TokKind::kTilde:
        ac->rel = AttrRel::kOverlap;
        return Status::OK();
      case TokKind::kBang:
        ac->rel = AttrRel::kDisjoint;
        return Status::OK();
      case TokKind::kIdent:
        if (tok.text == "alpha") {
          ac->rel = AttrRel::kComposedInto;
          OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kLParen));
          OOINT_ASSIGN_OR_RETURN(ac->composed_name, cursor_.ExpectIdent());
          OOINT_RETURN_IF_ERROR(cursor_.Expect(TokKind::kRParen));
          return Status::OK();
        }
        if (tok.text == "beta") {
          ac->rel = AttrRel::kMoreSpecific;
          return Status::OK();
        }
        break;
      default:
        break;
    }
    return cursor_.ErrorAt(
        tok, "expected an attribute relation (== <= >= ~ ! alpha beta)");
  }

  Result<AggRel> ParseAggRel() {
    const Token& tok = cursor_.Next();
    switch (tok.kind) {
      case TokKind::kEqEq:
        return AggRel::kEquivalent;
      case TokKind::kLe:
        return AggRel::kSubset;
      case TokKind::kGe:
        return AggRel::kSuperset;
      case TokKind::kTilde:
        return AggRel::kOverlap;
      case TokKind::kBang:
        return AggRel::kDisjoint;
      case TokKind::kIdent:
        if (tok.text == "rev") return AggRel::kReverse;
        break;
      default:
        break;
    }
    return cursor_.ErrorAt(
        tok, "expected an aggregation relation (== <= >= ~ ! rev)");
  }

  Result<ValueRel> ParseValueRel() {
    const Token& tok = cursor_.Next();
    switch (tok.kind) {
      case TokKind::kEq:
      case TokKind::kEqEq:
        return ValueRel::kEq;
      case TokKind::kNe:
        return ValueRel::kNe;
      case TokKind::kGe:
        return ValueRel::kSupseteq;
      case TokKind::kTilde:
        return ValueRel::kOverlap;
      case TokKind::kBang:
        return ValueRel::kDisjoint;
      case TokKind::kIdent:
        if (tok.text == "in") return ValueRel::kIn;
        break;
      default:
        break;
    }
    return cursor_.ErrorAt(tok, "expected a value relation (= != in >= ~ !)");
  }

  TokenCursor cursor_;
};

}  // namespace

Result<AssertionSet> AssertionParser::Parse(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseFile();
}

Result<Assertion> AssertionParser::ParseOne(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseAssertion();
}

}  // namespace ooint
