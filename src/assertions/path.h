#ifndef OOINT_ASSERTIONS_PATH_H_
#define OOINT_ASSERTIONS_PATH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/schema.h"

namespace ooint {

/// A path w.r.t. a class (Definition 4.1):
///
///   C • a_i • a_ij • ... • b
///
/// where each intermediate component is an attribute of the (class-typed)
/// previous component and the final component b either denotes attribute
/// *values* (plain) or, when quoted, the attribute *name* itself — e.g.
/// Author.book."title" refers to the string "title" (Example 1).
///
/// A Path additionally records which schema it belongs to, yielding the
/// paper's dotted notation S1.Book.author.birthday.
class Path {
 public:
  Path() = default;
  Path(std::string schema, std::string class_name,
       std::vector<std::string> components, bool name_ref = false)
      : schema_(std::move(schema)),
        class_name_(std::move(class_name)),
        components_(std::move(components)),
        name_ref_(name_ref) {}

  /// Convenience for the common one-component case S.C.a.
  static Path Attr(std::string schema, std::string class_name,
                   std::string attribute) {
    return Path(std::move(schema), std::move(class_name),
                {std::move(attribute)}, false);
  }
  /// A path denoting a class itself (no components), used when a class is
  /// equated with a nested structured attribute, e.g.
  /// S1.Book == S2.Author.book.
  static Path Class(std::string schema, std::string class_name) {
    return Path(std::move(schema), std::move(class_name), {}, false);
  }

  const std::string& schema() const { return schema_; }
  const std::string& class_name() const { return class_name_; }
  const std::vector<std::string>& components() const { return components_; }
  /// True when the final component is quoted (refers to the attribute
  /// name, not its values).
  bool name_ref() const { return name_ref_; }
  bool is_class_path() const { return components_.empty(); }

  /// The final component ("" for class paths).
  const std::string& leaf() const;

  /// "S1.Book.author.birthday", with the leaf quoted for name refs.
  std::string ToString() const;
  /// The path without the schema prefix: "Book.author.birthday".
  std::string LocalString() const;

  /// Validates this path against `schema`: the class exists, every
  /// non-final component is a class-typed attribute, and the final
  /// component is an attribute or aggregation function of the class it is
  /// rooted in. Returns the ClassDef the leaf belongs to.
  Result<const ClassDef*> Resolve(const Schema& schema) const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.schema_ == b.schema_ && a.class_name_ == b.class_name_ &&
           a.components_ == b.components_ && a.name_ref_ == b.name_ref_;
  }
  friend bool operator!=(const Path& a, const Path& b) { return !(a == b); }
  friend bool operator<(const Path& a, const Path& b) {
    if (a.schema_ != b.schema_) return a.schema_ < b.schema_;
    if (a.class_name_ != b.class_name_) return a.class_name_ < b.class_name_;
    if (a.components_ != b.components_) return a.components_ < b.components_;
    return a.name_ref_ < b.name_ref_;
  }

 private:
  std::string schema_;
  std::string class_name_;
  std::vector<std::string> components_;
  bool name_ref_ = false;
};

}  // namespace ooint

#endif  // OOINT_ASSERTIONS_PATH_H_
