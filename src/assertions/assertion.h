#ifndef OOINT_ASSERTIONS_ASSERTION_H_
#define OOINT_ASSERTIONS_ASSERTION_H_

#include <optional>
#include <string>
#include <vector>

#include "assertions/kinds.h"
#include "assertions/path.h"
#include "model/value.h"

namespace ooint {

/// A class named within a specific local schema, e.g. S1.person.
struct ClassRef {
  std::string schema;
  std::string class_name;

  std::string ToString() const { return schema + "." + class_name; }

  friend bool operator==(const ClassRef& a, const ClassRef& b) {
    return a.schema == b.schema && a.class_name == b.class_name;
  }
  friend bool operator!=(const ClassRef& a, const ClassRef& b) {
    return !(a == b);
  }
  friend bool operator<(const ClassRef& a, const ClassRef& b) {
    if (a.schema != b.schema) return a.schema < b.schema;
    return a.class_name < b.class_name;
  }
};

/// A qualifying predicate `att τ Const` attached to an inclusion
/// (Section 4.1, the stock example: price-in-March ⊆ price with
/// time = 'March') or appearing as a hyperedge of an assertion graph
/// (Section 5, Fig. 11(b): S1.car1.car-name = car-name_1).
struct WithPredicate {
  Path attribute;
  CompareOp op = CompareOp::kEq;
  Value constant;

  std::string ToString() const;
};

/// One attribute correspondence between the two schemas of an assertion,
/// e.g. S1.person.full_name ≡ S2.human.name, or
/// S1.person.city α(address) S2.human.street-number.
struct AttributeCorrespondence {
  Path lhs;
  AttrRel rel = AttrRel::kEquivalent;
  Path rhs;
  /// The new attribute name x for rel == kComposedInto.
  std::string composed_name;
  /// Optional qualifying predicate (inclusions only).
  std::optional<WithPredicate> with;

  std::string ToString() const;
};

/// One aggregation-function correspondence, e.g.
/// S1.man.spouse ℵ S2.woman.spouse.
struct AggCorrespondence {
  Path lhs;
  AggRel rel = AggRel::kEquivalent;
  Path rhs;

  std::string ToString() const;
};

/// A value correspondence between two attributes of the *same* schema
/// (Section 4.1/4.2), used to wire up derivation assertions:
/// parent.Pssn# ∈ brother.brothers.
struct ValueCorrespondence {
  /// Which side's schema this constraint lives in: 1 for the assertion's
  /// lhs schema, 2 for its rhs schema.
  int side = 1;
  Path lhs;
  ValueRel rel = ValueRel::kEq;
  Path rhs;

  std::string ToString() const;
};

/// A full correspondence assertion (Fig. 3): a class-level relationship
/// θ ∈ {≡, ⊆, ⊇, ∩, ∅, →} together with its four correspondence blocks —
/// value correspondences within S1 and within S2, attribute
/// correspondences across, and aggregation-function correspondences
/// across.
///
/// For derivation assertions the lhs may name several classes:
/// S1(parent, brother) → S2.uncle. All other relations have exactly one
/// lhs class.
struct Assertion {
  std::vector<ClassRef> lhs;
  SetRel rel = SetRel::kEquivalent;
  ClassRef rhs;

  std::vector<ValueCorrespondence> value_corrs;
  std::vector<AttributeCorrespondence> attr_corrs;
  std::vector<AggCorrespondence> agg_corrs;

  const ClassRef& lhs_class() const { return lhs.front(); }

  /// True when `ref` appears on the lhs (any component for derivations).
  bool MentionsOnLhs(const ClassRef& ref) const;

  /// The mirrored assertion B θ' A for symmetric/inclusion relations.
  /// Must not be called on derivations (which are directional).
  Assertion Reversed() const;

  /// Multi-line rendering in the library's assertion language (parseable
  /// by AssertionParser; see parser.h).
  std::string ToString() const;
};

}  // namespace ooint

#endif  // OOINT_ASSERTIONS_ASSERTION_H_
