#ifndef OOINT_ASSERTIONS_PARSER_H_
#define OOINT_ASSERTIONS_PARSER_H_

#include <string>

#include "assertions/assertion_set.h"
#include "common/result.h"

namespace ooint {

/// Parser for the textual assertion language — the machine-readable form
/// of the paper's Fig. 3 assertion blocks. One declaration per class
/// correspondence:
///
///   # Fig. 4(a)
///   assert S1.person == S2.human {
///     attr: S1.person.ssn# == S2.human.ssn#;
///     attr: S1.person.full_name == S2.human.name;
///     attr: S1.person.city alpha(address) S2.human.street-number;
///     attr: S1.person.interests >= S2.human.hobby;
///   }
///
///   # Example 3 — a derivation assertion with a same-schema value
///   # correspondence
///   assert S1(parent, brother) -> S2.uncle {
///     value(S1): S1.parent.Pssn# in S1.brother.brothers;
///     attr: S1.brother.Bssn# == S2.uncle.Ussn#;
///     attr: S1.parent.children >= S2.uncle.niece_nephew;
///   }
///
/// Class/attribute/aggregation relation operators: == (≡), <= (⊆),
/// >= (⊇), ~ (∩), ! (∅), -> (derivation), alpha(x) (composed-into),
/// beta (more-specific-than), rev (reverse aggregation).
/// Value correspondence operators: = != in >= ~ !.
/// Attribute inclusions accept a qualifying clause
/// `with <path> <cmp> <constant>` (the stock example of Section 4.1).
/// A quoted final path component denotes an attribute *name* reference
/// (Definition 4.1), e.g. S2.Author.book."title".
/// Line comments start with '#'. Assertions without a block end in ';'.
class AssertionParser {
 public:
  /// Parses the whole `text` into an assertion set. Error statuses carry
  /// 1-based line/column positions.
  static Result<AssertionSet> Parse(const std::string& text);

  /// Parses exactly one assertion declaration.
  static Result<Assertion> ParseOne(const std::string& text);
};

}  // namespace ooint

#endif  // OOINT_ASSERTIONS_PARSER_H_
