#ifndef OOINT_ASSERTIONS_KINDS_H_
#define OOINT_ASSERTIONS_KINDS_H_

namespace ooint {

/// Class-level correspondence assertions (Table 1): the four classical
/// set relationships of [35] plus the paper's novel derivation assertion.
/// Relations are oriented left-to-right: kSubset means lhs ⊆ rhs and
/// kDerivation means lhs (a list of classes) → rhs.
enum class SetRel {
  kEquivalent,  // ≡  : RWS(A) = RWS(B) always
  kSubset,      // ⊆  : RWS(A) ⊆ RWS(B) always
  kSuperset,    // ⊇
  kOverlap,     // ∩  : RWS(A) ∩ RWS(B) ≠ ∅ sometimes
  kDisjoint,    // ∅  : RWS(A) ∩ RWS(B) = ∅ always
  kDerivation,  // →  : occurrences of B derivable from A_1, ..., A_n
};

/// Attribute-level correspondence assertions (Table 2).
enum class AttrRel {
  kEquivalent,    // ≡
  kSubset,        // ⊆
  kSuperset,      // ⊇
  kOverlap,       // ∩
  kDisjoint,      // ∅
  kComposedInto,  // α(x): lhs and rhs combine into a new attribute x
  kMoreSpecific,  // β: lhs carries more specific information than rhs
};

/// Aggregation-function correspondence assertions (Table 3).
enum class AggRel {
  kEquivalent,  // ≡ (of the functions' ranges)
  kSubset,      // ⊆
  kSuperset,    // ⊇
  kOverlap,     // ∩
  kDisjoint,    // ∅
  kReverse,     // ℵ: rhs is the reverse function of lhs
};

/// Same-schema value correspondences (Section 4.1): '=' and '≠' for
/// single-valued attributes; '∈', '⊇', '∩', '∅' (and '=') for multi-valued
/// ones. These connect the component classes of a derivation assertion,
/// e.g. parent.Pssn# ∈ brother.brothers.
enum class ValueRel {
  kEq,        // =
  kNe,        // ≠
  kIn,        // ∈  : lhs (single value) is a member of rhs (set)
  kSupseteq,  // ⊇
  kOverlap,   // ∩
  kDisjoint,  // ∅
};

/// Surface-syntax spellings used by the parser and printer.
const char* SetRelName(SetRel rel);
const char* AttrRelName(AttrRel rel);
const char* AggRelName(AggRel rel);
const char* ValueRelName(ValueRel rel);

/// The mirror-image relation (swap of operands): ⊆ ↔ ⊇; ≡, ∩, ∅ are
/// symmetric. Derivation has no mirror and is returned unchanged —
/// callers must track direction separately.
SetRel ReverseSetRel(SetRel rel);
AttrRel ReverseAttrRel(AttrRel rel);
AggRel ReverseAggRel(AggRel rel);

}  // namespace ooint

#endif  // OOINT_ASSERTIONS_KINDS_H_
