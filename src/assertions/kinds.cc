#include "assertions/kinds.h"

namespace ooint {

const char* SetRelName(SetRel rel) {
  switch (rel) {
    case SetRel::kEquivalent:
      return "==";
    case SetRel::kSubset:
      return "<=";
    case SetRel::kSuperset:
      return ">=";
    case SetRel::kOverlap:
      return "~";
    case SetRel::kDisjoint:
      return "!";
    case SetRel::kDerivation:
      return "->";
  }
  return "?";
}

const char* AttrRelName(AttrRel rel) {
  switch (rel) {
    case AttrRel::kEquivalent:
      return "==";
    case AttrRel::kSubset:
      return "<=";
    case AttrRel::kSuperset:
      return ">=";
    case AttrRel::kOverlap:
      return "~";
    case AttrRel::kDisjoint:
      return "!";
    case AttrRel::kComposedInto:
      return "alpha";
    case AttrRel::kMoreSpecific:
      return "beta";
  }
  return "?";
}

const char* AggRelName(AggRel rel) {
  switch (rel) {
    case AggRel::kEquivalent:
      return "==";
    case AggRel::kSubset:
      return "<=";
    case AggRel::kSuperset:
      return ">=";
    case AggRel::kOverlap:
      return "~";
    case AggRel::kDisjoint:
      return "!";
    case AggRel::kReverse:
      return "rev";
  }
  return "?";
}

const char* ValueRelName(ValueRel rel) {
  switch (rel) {
    case ValueRel::kEq:
      return "=";
    case ValueRel::kNe:
      return "!=";
    case ValueRel::kIn:
      return "in";
    case ValueRel::kSupseteq:
      return ">=";
    case ValueRel::kOverlap:
      return "~";
    case ValueRel::kDisjoint:
      return "!";
  }
  return "?";
}

SetRel ReverseSetRel(SetRel rel) {
  switch (rel) {
    case SetRel::kSubset:
      return SetRel::kSuperset;
    case SetRel::kSuperset:
      return SetRel::kSubset;
    default:
      return rel;
  }
}

AttrRel ReverseAttrRel(AttrRel rel) {
  switch (rel) {
    case AttrRel::kSubset:
      return AttrRel::kSuperset;
    case AttrRel::kSuperset:
      return AttrRel::kSubset;
    default:
      return rel;
  }
}

AggRel ReverseAggRel(AggRel rel) {
  switch (rel) {
    case AggRel::kSubset:
      return AggRel::kSuperset;
    case AggRel::kSuperset:
      return AggRel::kSubset;
    default:
      return rel;
  }
}

}  // namespace ooint
