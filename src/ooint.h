#ifndef OOINT_OOINT_H_
#define OOINT_OOINT_H_

/// Umbrella header: the public API of the ooint library (the
/// reproduction of "Integrating Heterogeneous OO Schemas").
///
/// The typical pipeline:
///   1. describe or transform local schemas      (model/, transform/)
///   2. populate component stores                (model/instance_*.h)
///   3. declare correspondence assertions        (assertions/)
///   4. check them                               (integrate/consistency.h)
///   5. integrate                                (integrate/integrator.h)
///   6. federate and query                       (federation/)

#include "assertions/assertion.h"
#include "assertions/assertion_set.h"
#include "assertions/parser.h"
#include "common/result.h"
#include "common/status.h"
#include "datamap/data_mapping.h"
#include "federation/explain.h"
#include "federation/fsm.h"
#include "federation/fsm_agent.h"
#include "federation/fsm_client.h"
#include "federation/identity.h"
#include "federation/materialize.h"
#include "federation/query_parser.h"
#include "integrate/aif.h"
#include "integrate/consistency.h"
#include "integrate/integrated_schema.h"
#include "integrate/integrator.h"
#include "integrate/naive_integrator.h"
#include "integrate/trace.h"
#include "model/cardinality.h"
#include "model/instance_parser.h"
#include "model/instance_store.h"
#include "model/object.h"
#include "model/oid.h"
#include "model/schema.h"
#include "model/schema_parser.h"
#include "model/value.h"
#include "rules/evaluator.h"
#include "rules/rule.h"
#include "rules/rule_generator.h"
#include "rules/topdown.h"
#include "transform/rel_to_oo.h"
#include "transform/relational.h"
#include "workload/fixtures.h"
#include "workload/generator.h"

#endif  // OOINT_OOINT_H_
