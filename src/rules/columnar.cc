#include "rules/columnar.h"

namespace ooint {

namespace {

std::uint64_t FnvView(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint32_t LoadU32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint16_t LoadU16(const std::uint8_t* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof(v));
}

void StoreU16(std::uint8_t* p, std::uint16_t v) {
  std::memcpy(p, &v, sizeof(v));
}

// Block header layout (see PostingsPool class comment).
constexpr std::uint32_t kHeaderBytes = 8;
constexpr std::uint32_t kNextOffset = 0;
constexpr std::uint32_t kCapOffset = 4;
constexpr std::uint32_t kUsedOffset = 6;
constexpr std::uint16_t kFirstCap = 16;
constexpr std::uint16_t kMaxCap = 256;
// A LEB128 u32 needs at most 5 bytes.
constexpr std::uint32_t kMaxVarint = 5;

}  // namespace

std::uint32_t SymbolPool::Intern(std::string_view s) {
  const std::uint64_t hash = FnvView(s) & hash_mask_;
  return table_.FindOrInsert(
      hash, [&](std::uint32_t id) { return strings_[id] == s; },
      [&] {
        strings_.emplace_back(s);
        return static_cast<std::uint32_t>(strings_.size() - 1);
      });
}

std::uint32_t SymbolPool::Find(std::string_view s) const {
  const std::uint64_t hash = FnvView(s) & hash_mask_;
  return table_.Find(hash,
                     [&](std::uint32_t id) { return strings_[id] == s; });
}

size_t SymbolPool::ApproxBytes() const {
  size_t bytes = table_.ApproxBytes();
  for (const std::string& s : strings_) {
    bytes += sizeof(std::string) +
             (s.capacity() > sizeof(std::string) ? s.capacity() : 0);
  }
  return bytes;
}

void SymbolPool::Clear() {
  strings_.clear();
  table_.Clear();
}

std::uint32_t PostingsPool::AllocBlock(std::uint16_t payload_cap) {
  const std::uint32_t need = kHeaderBytes + payload_cap;
  if (chunk_used_ + need > kChunkSize) {
    chunks_.push_back(std::make_unique<std::uint8_t[]>(kChunkSize));
    chunk_used_ = 0;
  }
  const std::uint32_t block =
      (static_cast<std::uint32_t>(chunks_.size() - 1) << 16) | chunk_used_;
  chunk_used_ += need;
  std::uint8_t* p = chunks_.back().get() + (block & 0xffffu);
  StoreU32(p + kNextOffset, kNoBlock);
  StoreU16(p + kCapOffset, payload_cap);
  StoreU16(p + kUsedOffset, 0);
  return block;
}

void PostingsPool::Append(std::uint32_t list_id, std::uint32_t value) {
  List& list = lists_[list_id];
  const std::uint32_t delta = value - list.last;
  std::uint8_t buf[kMaxVarint];
  std::uint32_t len = 0;
  std::uint32_t v = delta;
  do {
    std::uint8_t byte = v & 0x7f;
    v >>= 7;
    if (v != 0) byte |= 0x80;
    buf[len++] = byte;
  } while (v != 0);

  std::uint8_t* tail = nullptr;
  std::uint16_t cap = 0;
  std::uint16_t used = 0;
  if (list.tail != kNoBlock) {
    tail = chunks_[list.tail >> 16].get() + (list.tail & 0xffffu);
    cap = LoadU16(tail + kCapOffset);
    used = LoadU16(tail + kUsedOffset);
  }
  if (tail == nullptr || used + len > cap) {
    const std::uint16_t next_cap =
        tail == nullptr
            ? kFirstCap
            : static_cast<std::uint16_t>(cap * 2 > kMaxCap ? kMaxCap : cap * 2);
    const std::uint32_t block = AllocBlock(next_cap);
    if (tail != nullptr) {
      // Link after the new block is fully initialized, so a cursor
      // walking the chain never sees a half-built block.
      StoreU32(tail + kNextOffset, block);
    } else {
      list.head = block;
    }
    list.tail = block;
    tail = chunks_[block >> 16].get() + (block & 0xffffu);
    used = 0;
  }
  std::memcpy(tail + kHeaderBytes + used, buf, len);
  StoreU16(tail + kUsedOffset, static_cast<std::uint16_t>(used + len));
  list.last = value;
  ++list.count;
}

bool PostingsCursor::Next(std::uint32_t* out) {
  if (remaining_ == 0) return false;
  if (pool_ == nullptr) {  // inlined single posting
    *out = inline_value_;
    --remaining_;
    ++decoded_;
    return true;
  }
  const std::uint8_t* block = pool_->BlockBytes(block_);
  // Move past exhausted blocks (a writer abandons a block's slack when
  // a varint does not fit; `used` of an abandoned block is final).
  while (pos_ >= LoadU16(block + kUsedOffset)) {
    block_ = LoadU32(block + kNextOffset);
    pos_ = 0;
    block = pool_->BlockBytes(block_);
  }
  std::uint32_t delta = 0;
  int shift = 0;
  const std::uint8_t* payload = block + kHeaderBytes;
  std::uint8_t byte;
  do {
    byte = payload[pos_++];
    delta |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
    shift += 7;
  } while (byte & 0x80);
  last_ += delta;
  *out = last_;
  --remaining_;
  ++decoded_;
  return true;
}

std::uint32_t PostingsCursor::NextRun(std::uint32_t* out, std::uint32_t cap) {
  if (remaining_ == 0 || cap == 0) return 0;
  if (pool_ == nullptr) {  // inlined single posting
    out[0] = inline_value_;
    --remaining_;
    ++decoded_;
    return 1;
  }
  const std::uint8_t* block = pool_->BlockBytes(block_);
  while (pos_ >= LoadU16(block + kUsedOffset)) {
    block_ = LoadU32(block + kNextOffset);
    pos_ = 0;
    block = pool_->BlockBytes(block_);
  }
  const std::uint16_t used = LoadU16(block + kUsedOffset);
  const std::uint8_t* payload = block + kHeaderBytes;
  std::uint32_t n = 0;
  // Decode whole varints until the block's used bytes, the caller's
  // capacity or the snapshot's count runs out — whichever is first.
  while (pos_ < used && n < cap && remaining_ != 0) {
    std::uint32_t delta = 0;
    int shift = 0;
    std::uint8_t byte;
    do {
      byte = payload[pos_++];
      delta |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
      shift += 7;
    } while (byte & 0x80);
    last_ += delta;
    out[n++] = last_;
    --remaining_;
    ++decoded_;
  }
  return n;
}

size_t PostingsPool::ApproxBytes() const {
  return lists_.capacity() * sizeof(List) + chunks_.size() * kChunkSize +
         chunks_.capacity() * sizeof(chunks_[0]);
}

void PostingsPool::Clear() {
  lists_.clear();
  chunks_.clear();
  chunk_used_ = kChunkSize;
}

size_t PostingsIndex::SlotOf(std::uint64_t key) const {
  const size_t mask = slots_.size() - 1;
  size_t i = MixHash(key) & mask;
  while (slots_[i].ref != kEmptyRef && slots_[i].key != key) {
    i = (i + 1) & mask;
  }
  return i;
}

void PostingsIndex::Grow() {
  const size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{0, kEmptyRef});
  const size_t mask = cap - 1;
  for (const Slot& slot : old) {
    if (slot.ref == kEmptyRef) continue;
    size_t i = MixHash(slot.key) & mask;
    while (slots_[i].ref != kEmptyRef) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

void PostingsIndex::Add(std::uint64_t key, std::uint32_t value) {
  if (slots_.empty() || (used_ + 1) * 10 >= slots_.size() * 7) Grow();
  const size_t i = SlotOf(key);
  Slot& slot = slots_[i];
  if (slot.ref == kEmptyRef) {
    slot.key = key;
    slot.ref = kInlineBit | value;  // ordinals/fact ids stay below 2^31
    ++used_;
    return;
  }
  if (slot.ref & kInlineBit) {
    const std::uint32_t first = slot.ref & ~kInlineBit;
    const std::uint32_t list = pool_.NewList();
    pool_.Append(list, first);
    slot.ref = list;
  }
  pool_.Append(slot.ref, value);
}

PostingsCursor PostingsIndex::Find(std::uint64_t key) const {
  if (used_ == 0) return PostingsCursor();
  const size_t i = SlotOf(key);
  const Slot& slot = slots_[i];
  if (slot.ref == kEmptyRef) return PostingsCursor();
  if (slot.ref & kInlineBit) return PostingsCursor(slot.ref & ~kInlineBit);
  return pool_.Cursor(slot.ref);
}

size_t PostingsIndex::ApproxBytes() const {
  return slots_.capacity() * sizeof(Slot) + pool_.ApproxBytes();
}

void PostingsIndex::Clear() {
  slots_.clear();
  used_ = 0;
  pool_.Clear();
}

}  // namespace ooint
