#ifndef OOINT_RULES_JOIN_KERNEL_H_
#define OOINT_RULES_JOIN_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rules/columnar.h"

namespace ooint {

/// Counters the batch join kernels tick; merged into Evaluator::Stats
/// (and surfaced through Explain) by the callers.
struct JoinKernelStats {
  /// Linear-merge element comparisons, plus bitmap set/test operations
  /// on the dense fallback path.
  size_t merge_steps = 0;
  /// Galloping-search hops: exponential probes and binary-search
  /// bisections on the skewed-cardinality path.
  size_t gallop_steps = 0;
  /// Postings decoded off PostingsCursors (cursor advance steps) —
  /// distinct from index_probes, which counts index *lookups*.
  size_t cursor_steps = 0;
};

/// Reusable join scratch: one per fixpoint driver (serial evaluator,
/// parallel round task, incremental engine, query). Holds the
/// per-recursion-depth candidate vectors SolveBody materializes into —
/// so a rule with a k-literal body costs k vector allocations per
/// *driver*, not per solution row — plus the run buffers the kernels
/// intersect in. Not thread-safe; each concurrent driver owns its own.
class JoinScratch {
 public:
  /// Pre-sizes the depth pool. Must be called before CandidatesAt so
  /// outer recursion frames' references survive inner frames (the pool
  /// never reallocates mid-solve).
  void EnsureDepths(size_t n) {
    if (depths_.size() < n) depths_.resize(n);
  }

  /// The candidate buffer of recursion depth `depth` (cleared by the
  /// caller). Distinct depths are distinct buffers, so a frame's
  /// candidates survive the deeper frames it recurses into.
  std::vector<std::uint32_t>& CandidatesAt(size_t depth) {
    if (depth >= depths_.size()) depths_.resize(depth + 1);
    return depths_[depth];
  }

  /// Kernel temporaries — valid only within one CollectCandidates call
  /// (never across recursion).
  std::vector<std::uint32_t> run;
  std::vector<std::uint64_t> bitmap;
  std::vector<PostingsCursor> cursors;

 private:
  std::vector<std::vector<std::uint32_t>> depths_;
};

/// First index i in [from, size) with data[i] >= target, located by
/// exponential probing from `from` followed by binary search in the
/// overshot bracket. `steps` (may be null) accumulates the probe +
/// bisection hops — the Stats::gallop_steps currency.
size_t GallopTo(const std::uint32_t* data, size_t size, size_t from,
                std::uint32_t target, size_t* steps);

/// Decodes `cursor`'s postings within the ordinal window [begin, end)
/// and appends them to `out` (ascending), one PostingsPool block per
/// NextRun call. Stops decoding as soon as a posting reaches `end`.
/// Returns the number of postings decoded (cursor_steps to charge).
size_t DecodeWindow(PostingsCursor cursor, std::uint32_t begin,
                    std::uint32_t end, std::vector<std::uint32_t>* out);

/// The batch intersection kernel: filters the sorted run `a` (in
/// place, duplicates preserved) down to the values present in
/// `cursor`'s postings, consuming the cursor block-at-a-time.
///
/// Strategy per decoded block: linear two-pointer merge when the
/// block's size and a's remaining tail are comparable; galloping
/// (GallopTo) into the block when the tail is much smaller than the
/// block (kGallopRatio). When the cursor is dense over [begin, end)
/// and `a` is long, a bitmap of the window is built instead and `a` is
/// filtered by bit tests. Decoding stops early once `a`'s tail is
/// exhausted — the skewed case never pays for the long list's tail.
///
/// Duplicate values in `a` (hash-collision candidates) are all kept
/// when present in the cursor, so filtering never changes the
/// candidate sequence the matcher would have verified — it only drops
/// candidates the matcher would reject.
void FilterByCursor(std::vector<std::uint32_t>* a, PostingsCursor cursor,
                    std::uint32_t begin, std::uint32_t end,
                    JoinScratch* scratch, JoinKernelStats* stats);

/// Cardinality skew ratio beyond which the kernels gallop instead of
/// linear-merging.
inline constexpr size_t kGallopRatio = 8;

/// Density threshold for the bitmap fallback: the cursor must cover at
/// least 1/kBitmapDensity of the window, and `a` must be at least
/// kBitmapMinRun long, before a window bitmap beats the merge.
inline constexpr std::uint32_t kBitmapDensity = 4;
inline constexpr size_t kBitmapMinRun = 64;

/// A cursor more than this many times larger than the current survivor
/// set is skipped by callers: decoding it would cost more than the
/// matcher re-verifications it saves.
inline constexpr size_t kIntersectBudget = 64;

}  // namespace ooint

#endif  // OOINT_RULES_JOIN_KERNEL_H_
