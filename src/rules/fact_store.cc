#include "rules/fact_store.h"

#include <cstring>

namespace ooint {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t FnvBytes(std::uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t RealBits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Strong 64-bit combine for the store's INTERNAL digests and index
/// keys. The legacy HashCombine below is preserved byte-identically for
/// observable-hash parity, but it degenerates on small operands: FNV
/// over an 8-byte little-endian value whose top 7 bytes are zero mixes
/// only `seed ^ low_byte`, so HashCombine(3, 8) == HashCombine(4, 15).
/// That is fatal for keys built from small dense ids (concept ids,
/// attribute symbol ids): cross-key postings lists would merge and
/// Probe would emit ordinals of a *different* concept, past the probed
/// extent. Internal keys are never observable, so they get a full
/// splitmix64 avalanche per combine instead.
std::uint64_t MixCombine(std::uint64_t seed, std::uint64_t v) {
  return MixHash(seed ^ (MixHash(v) + 0x9e3779b97f4a7c15ull + (seed << 6) +
                         (seed >> 2)));
}

// Inline-int range: 60-bit two's complement.
constexpr std::int64_t kIntInlineMin = -(1ll << 59);
constexpr std::int64_t kIntInlineMax = (1ll << 59) - 1;
// Inline-date range: 24-bit biased year, 8-bit month and day.
constexpr int kYearBias = 1 << 23;

bool DateFitsInline(const Date& d) {
  return d.year >= -kYearBias && d.year < kYearBias && d.month >= 0 &&
         d.month <= 255 && d.day >= 0 && d.day <= 255;
}

/// Deep footprint of one materialized Fact (boundary-cache accounting;
/// mirrors ReferenceFactStore's estimate).
size_t MaterializedValueBytes(const Value& value) {
  size_t bytes = sizeof(Value);
  switch (value.kind()) {
    case ValueKind::kString:
      if (value.AsString().capacity() > sizeof(std::string)) {
        bytes += value.AsString().capacity();
      }
      break;
    case ValueKind::kOid: {
      const Oid& oid = value.AsOid();
      for (const std::string* s : {&oid.agent(), &oid.dbms(), &oid.database(),
                                   &oid.relation()}) {
        if (s->capacity() > sizeof(std::string)) bytes += s->capacity();
      }
      break;
    }
    case ValueKind::kSet:
      for (const Value& e : value.AsSet()) bytes += MaterializedValueBytes(e);
      break;
    default:
      break;
  }
  return bytes;
}

constexpr size_t kMapNodeOverhead = 48;

size_t MaterializedFactBytes(const Fact& fact) {
  size_t bytes = sizeof(Fact);
  if (fact.concept_name.capacity() > sizeof(std::string)) {
    bytes += fact.concept_name.capacity();
  }
  for (const std::string* s :
       {&fact.oid.agent(), &fact.oid.dbms(), &fact.oid.database(),
        &fact.oid.relation()}) {
    if (s->capacity() > sizeof(std::string)) bytes += s->capacity();
  }
  for (const auto& [name, value] : fact.attrs) {
    bytes += kMapNodeOverhead + sizeof(std::string);
    if (name.capacity() > sizeof(std::string)) bytes += name.capacity();
    bytes += MaterializedValueBytes(value);
  }
  return bytes;
}

}  // namespace

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v) {
  return FnvBytes(seed ^ kFnvOffset, &v, sizeof(v));
}

std::uint64_t HashString(const std::string& s) {
  return FnvBytes(kFnvOffset, s.data(), s.size());
}

std::uint64_t HashOid(const Oid& oid) {
  std::uint64_t h = HashString(oid.agent());
  h = HashCombine(h, HashString(oid.dbms()));
  h = HashCombine(h, HashString(oid.database()));
  h = HashCombine(h, HashString(oid.relation()));
  return HashCombine(h, oid.number());
}

std::uint64_t HashValue(const Value& value) {
  std::uint64_t h = static_cast<std::uint64_t>(value.kind()) + 1;
  switch (value.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBoolean:
      h = HashCombine(h, value.AsBoolean() ? 1 : 0);
      break;
    case ValueKind::kInteger:
      h = HashCombine(h, static_cast<std::uint64_t>(value.AsInteger()));
      break;
    case ValueKind::kReal: {
      const double d = value.AsReal();
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      h = HashCombine(h, bits);
      break;
    }
    case ValueKind::kCharacter:
      h = HashCombine(h, static_cast<std::uint64_t>(value.AsCharacter()));
      break;
    case ValueKind::kString:
      h = HashCombine(h, HashString(value.AsString()));
      break;
    case ValueKind::kDate: {
      const Date& d = value.AsDate();
      h = HashCombine(h, static_cast<std::uint64_t>(d.year) * 10000 +
                             static_cast<std::uint64_t>(d.month) * 100 +
                             static_cast<std::uint64_t>(d.day));
      break;
    }
    case ValueKind::kOid:
      h = HashCombine(h, HashOid(value.AsOid()));
      break;
    case ValueKind::kSet:
      // Element order is part of set identity (Value::operator==
      // compares the stored vectors), so hashing in order is exact.
      for (const Value& e : value.AsSet()) h = HashCombine(h, HashValue(e));
      break;
  }
  return h;
}

std::uint64_t HashFactAttrs(const Fact& fact) {
  std::uint64_t h = HashString(fact.concept_name);
  for (const auto& [name, value] : fact.attrs) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, HashValue(value));
  }
  return h;
}

std::uint64_t HashFactCanonical(const Fact& fact) {
  return HashCombine(HashFactAttrs(fact), HashOid(fact.oid));
}

// --- ValueHandle -----------------------------------------------------------

namespace {
ValueKind KindOfTag(PackedTag tag) {
  switch (tag) {
    case PackedTag::kNull:
      return ValueKind::kNull;
    case PackedTag::kBool:
      return ValueKind::kBoolean;
    case PackedTag::kChar:
      return ValueKind::kCharacter;
    case PackedTag::kIntInline:
    case PackedTag::kIntBoxed:
      return ValueKind::kInteger;
    case PackedTag::kReal:
      return ValueKind::kReal;
    case PackedTag::kString:
      return ValueKind::kString;
    case PackedTag::kDateInline:
    case PackedTag::kDateBoxed:
      return ValueKind::kDate;
    case PackedTag::kOid:
      return ValueKind::kOid;
    case PackedTag::kSet:
      return ValueKind::kSet;
  }
  return ValueKind::kNull;
}
}  // namespace

ValueKind ValueHandle::kind() const {
  return value_ != nullptr ? value_->kind()
                           : KindOfTag(FactStore::TagOf(packed_));
}

size_t ValueHandle::set_size() const {
  if (value_ != nullptr) return value_->AsSet().size();
  return store_->set_runs_[FactStore::PayloadOf(packed_)].second;
}

ValueHandle ValueHandle::set_element(size_t i) const {
  if (value_ != nullptr) return ValueHandle(&value_->AsSet()[i]);
  const auto& run = store_->set_runs_[FactStore::PayloadOf(packed_)];
  return ValueHandle(store_, store_->set_elements_[run.first + i]);
}

bool ValueHandle::Equals(const Value& other) const {
  if (value_ != nullptr) return *value_ == other;
  return store_->PackedEqualsValue(packed_, other);
}

Value ValueHandle::Materialize() const {
  if (value_ != nullptr) return *value_;
  return store_->DecodeValue(packed_);
}

Oid ValueHandle::MaterializeOid() const {
  if (value_ != nullptr) return value_->AsOid();
  return store_->MaterializeOid(
      static_cast<std::uint32_t>(FactStore::PayloadOf(packed_)));
}

// --- FactView --------------------------------------------------------------

bool FactView::oid_empty() const {
  if (fact_ != nullptr) return fact_->oid.empty();
  return store_->records_[id_].oid_id == kNoId;
}

Oid FactView::oid() const {
  if (fact_ != nullptr) return fact_->oid;
  const std::uint32_t oid_id = store_->records_[id_].oid_id;
  return oid_id == kNoId ? Oid() : store_->MaterializeOid(oid_id);
}

size_t FactView::attr_count() const {
  if (fact_ != nullptr) return fact_->attrs.size();
  return store_->records_[id_].attr_count;
}

std::string_view FactView::attr_name(size_t i) const {
  if (fact_ != nullptr) {
    auto it = fact_->attrs.begin();
    std::advance(it, i);
    return it->first;
  }
  const auto& rec = store_->records_[id_];
  return store_->symbols_.view(store_->attr_names_[rec.attr_begin + i]);
}

ValueHandle FactView::attr_value(size_t i) const {
  if (fact_ != nullptr) {
    auto it = fact_->attrs.begin();
    std::advance(it, i);
    return ValueHandle(&it->second);
  }
  const auto& rec = store_->records_[id_];
  return ValueHandle(store_, store_->attr_values_[rec.attr_begin + i]);
}

ValueHandle FactView::Find(std::string_view name) const {
  if (fact_ != nullptr) {
    auto it = fact_->attrs.find(std::string(name));
    return it == fact_->attrs.end() ? ValueHandle() : ValueHandle(&it->second);
  }
  const std::uint32_t sym = store_->symbols_.Find(name);
  if (sym == kNoId) return ValueHandle();
  const auto& rec = store_->records_[id_];
  for (std::uint32_t i = 0; i < rec.attr_count; ++i) {
    if (store_->attr_names_[rec.attr_begin + i] == sym) {
      return ValueHandle(store_, store_->attr_values_[rec.attr_begin + i]);
    }
  }
  return ValueHandle();
}

// --- FactStore -------------------------------------------------------------

ConceptId FactStore::InternConcept(const std::string& name) {
  return concept_table_.FindOrInsert(
      HashString(name),
      [&](std::uint32_t id) {
        return symbols_.view(concept_symbols_[id]) == name;
      },
      [&] {
        concept_symbols_.push_back(symbols_.Intern(name));
        by_concept_.emplace_back();
        return static_cast<std::uint32_t>(concept_symbols_.size() - 1);
      });
}

ConceptId FactStore::FindConcept(const std::string& name) const {
  return concept_table_.Find(HashString(name), [&](std::uint32_t id) {
    return symbols_.view(concept_symbols_[id]) == name;
  });
}

const std::string& FactStore::ConceptName(ConceptId id) const {
  return symbols_.at(concept_symbols_[id]);
}

std::uint32_t FactStore::InternOid(const Oid& oid) {
  const std::uint32_t agent = symbols_.Intern(oid.agent());
  const std::uint32_t dbms = symbols_.Intern(oid.dbms());
  const std::uint32_t database = symbols_.Intern(oid.database());
  const std::uint32_t relation = symbols_.Intern(oid.relation());
  std::uint64_t h = MixCombine(agent, dbms);
  h = MixCombine(h, database);
  h = MixCombine(h, relation);
  h = MixCombine(h, oid.number()) & digest_mask_;
  return oid_table_.FindOrInsert(
      h,
      [&](std::uint32_t id) {
        const PackedOid& p = oids_[id];
        return p.agent == agent && p.dbms == dbms && p.database == database &&
               p.relation == relation && p.number == oid.number();
      },
      [&] {
        oids_.push_back({agent, dbms, database, relation, oid.number()});
        return static_cast<std::uint32_t>(oids_.size() - 1);
      });
}

std::uint32_t FactStore::FindOid(const Oid& oid) const {
  const std::uint32_t agent = symbols_.Find(oid.agent());
  const std::uint32_t dbms = symbols_.Find(oid.dbms());
  const std::uint32_t database = symbols_.Find(oid.database());
  const std::uint32_t relation = symbols_.Find(oid.relation());
  if (agent == kNoId || dbms == kNoId || database == kNoId ||
      relation == kNoId) {
    return kNoId;
  }
  std::uint64_t h = MixCombine(agent, dbms);
  h = MixCombine(h, database);
  h = MixCombine(h, relation);
  h = MixCombine(h, oid.number()) & digest_mask_;
  return oid_table_.Find(h, [&](std::uint32_t id) {
    const PackedOid& p = oids_[id];
    return p.agent == agent && p.dbms == dbms && p.database == database &&
           p.relation == relation && p.number == oid.number();
  });
}

Oid FactStore::MaterializeOid(std::uint32_t oid_id) const {
  const PackedOid& p = oids_[oid_id];
  return Oid(symbols_.at(p.agent), symbols_.at(p.dbms),
             symbols_.at(p.database), symbols_.at(p.relation), p.number);
}

PackedValue FactStore::EncodeValue(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return Pack(PackedTag::kNull, 0);
    case ValueKind::kBoolean:
      return Pack(PackedTag::kBool, value.AsBoolean() ? 1 : 0);
    case ValueKind::kCharacter:
      return Pack(PackedTag::kChar,
                  static_cast<unsigned char>(value.AsCharacter()));
    case ValueKind::kInteger: {
      const std::int64_t v = value.AsInteger();
      if (v >= kIntInlineMin && v <= kIntInlineMax) {
        return Pack(PackedTag::kIntInline, static_cast<std::uint64_t>(v));
      }
      const std::uint32_t id = int_table_.FindOrInsert(
          static_cast<std::uint64_t>(v),
          [&](std::uint32_t i) { return boxed_ints_[i] == v; },
          [&] {
            boxed_ints_.push_back(v);
            return static_cast<std::uint32_t>(boxed_ints_.size() - 1);
          });
      return Pack(PackedTag::kIntBoxed, id);
    }
    case ValueKind::kReal: {
      // Pooled by BIT PATTERN: -0.0 and 0.0 get distinct ids (their
      // digests must stay distinct — the reference store's behavior),
      // and every NaN payload its own id.
      const std::uint64_t bits = RealBits(value.AsReal());
      const std::uint32_t id = real_table_.FindOrInsert(
          bits, [&](std::uint32_t i) { return RealBits(reals_[i]) == bits; },
          [&] {
            reals_.push_back(value.AsReal());
            return static_cast<std::uint32_t>(reals_.size() - 1);
          });
      return Pack(PackedTag::kReal, id);
    }
    case ValueKind::kString:
      return Pack(PackedTag::kString, symbols_.Intern(value.AsString()));
    case ValueKind::kDate: {
      const Date& d = value.AsDate();
      if (DateFitsInline(d)) {
        const std::uint64_t payload =
            (static_cast<std::uint64_t>(d.year + kYearBias) << 16) |
            (static_cast<std::uint64_t>(d.month) << 8) |
            static_cast<std::uint64_t>(d.day);
        return Pack(PackedTag::kDateInline, payload);
      }
      std::uint64_t h = MixCombine(static_cast<std::uint64_t>(d.year),
                                   static_cast<std::uint64_t>(d.month));
      h = MixCombine(h, static_cast<std::uint64_t>(d.day));
      const std::uint32_t id = date_table_.FindOrInsert(
          h, [&](std::uint32_t i) { return boxed_dates_[i] == d; },
          [&] {
            boxed_dates_.push_back(d);
            return static_cast<std::uint32_t>(boxed_dates_.size() - 1);
          });
      return Pack(PackedTag::kDateBoxed, id);
    }
    case ValueKind::kOid:
      return Pack(PackedTag::kOid, InternOid(value.AsOid()));
    case ValueKind::kSet: {
      // Encode the elements first (recursion may append other runs),
      // then lay this set down as one contiguous run in element order
      // (order is part of set identity).
      std::vector<PackedValue> elements;
      elements.reserve(value.AsSet().size());
      for (const Value& e : value.AsSet()) elements.push_back(EncodeValue(e));
      const auto begin = static_cast<std::uint32_t>(set_elements_.size());
      set_elements_.insert(set_elements_.end(), elements.begin(),
                           elements.end());
      set_runs_.emplace_back(begin,
                             static_cast<std::uint32_t>(elements.size()));
      return Pack(PackedTag::kSet, set_runs_.size() - 1);
    }
  }
  return Pack(PackedTag::kNull, 0);
}

std::int64_t FactStore::DecodeInt(PackedValue v) const {
  if (TagOf(v) == PackedTag::kIntBoxed) return boxed_ints_[PayloadOf(v)];
  std::uint64_t payload = PayloadOf(v);
  if (payload & (1ull << 59)) payload |= ~kPayloadMask;  // sign-extend
  return static_cast<std::int64_t>(payload);
}

Date FactStore::DecodeDate(PackedValue v) const {
  if (TagOf(v) == PackedTag::kDateBoxed) return boxed_dates_[PayloadOf(v)];
  const std::uint64_t payload = PayloadOf(v);
  Date d;
  d.year = static_cast<int>((payload >> 16) & 0xffffff) - kYearBias;
  d.month = static_cast<int>((payload >> 8) & 0xff);
  d.day = static_cast<int>(payload & 0xff);
  return d;
}

Value FactStore::DecodeValue(PackedValue v) const {
  switch (TagOf(v)) {
    case PackedTag::kNull:
      return Value::Null();
    case PackedTag::kBool:
      return Value::Boolean(PayloadOf(v) != 0);
    case PackedTag::kChar:
      return Value::Character(static_cast<char>(
          static_cast<unsigned char>(PayloadOf(v))));
    case PackedTag::kIntInline:
    case PackedTag::kIntBoxed:
      return Value::Integer(DecodeInt(v));
    case PackedTag::kReal:
      return Value::Real(reals_[PayloadOf(v)]);
    case PackedTag::kString:
      return Value::String(symbols_.at(PayloadOf(v)));
    case PackedTag::kDateInline:
    case PackedTag::kDateBoxed:
      return Value::OfDate(DecodeDate(v));
    case PackedTag::kOid:
      return Value::OfOid(
          MaterializeOid(static_cast<std::uint32_t>(PayloadOf(v))));
    case PackedTag::kSet: {
      const auto& run = set_runs_[PayloadOf(v)];
      std::vector<Value> elements;
      elements.reserve(run.second);
      for (std::uint32_t i = 0; i < run.second; ++i) {
        elements.push_back(DecodeValue(set_elements_[run.first + i]));
      }
      return Value::Set(std::move(elements));
    }
  }
  return Value::Null();
}

bool FactStore::PackedEqualsValue(PackedValue a, const Value& b) const {
  if (KindOfTag(TagOf(a)) != b.kind()) return false;
  switch (TagOf(a)) {
    case PackedTag::kNull:
      return true;
    case PackedTag::kBool:
      return (PayloadOf(a) != 0) == b.AsBoolean();
    case PackedTag::kChar:
      return static_cast<char>(static_cast<unsigned char>(PayloadOf(a))) ==
             b.AsCharacter();
    case PackedTag::kIntInline:
    case PackedTag::kIntBoxed:
      return DecodeInt(a) == b.AsInteger();
    case PackedTag::kReal:
      // IEEE semantics (Value::operator== parity): NaN != NaN even
      // against itself; -0.0 == 0.0 across distinct pool ids.
      return reals_[PayloadOf(a)] == b.AsReal();
    case PackedTag::kString:
      return symbols_.view(PayloadOf(a)) == b.AsString();
    case PackedTag::kDateInline:
    case PackedTag::kDateBoxed:
      return DecodeDate(a) == b.AsDate();
    case PackedTag::kOid: {
      const PackedOid& p = oids_[PayloadOf(a)];
      const Oid& o = b.AsOid();
      return p.number == o.number() && symbols_.view(p.agent) == o.agent() &&
             symbols_.view(p.dbms) == o.dbms() &&
             symbols_.view(p.database) == o.database() &&
             symbols_.view(p.relation) == o.relation();
    }
    case PackedTag::kSet: {
      const auto& run = set_runs_[PayloadOf(a)];
      const std::vector<Value>& elements = b.AsSet();
      if (run.second != elements.size()) return false;
      for (std::uint32_t i = 0; i < run.second; ++i) {
        if (!PackedEqualsValue(set_elements_[run.first + i], elements[i])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool FactStore::PackedEqualsPacked(PackedValue a, PackedValue b) const {
  const PackedTag ta = TagOf(a);
  const PackedTag tb = TagOf(b);
  if (KindOfTag(ta) != KindOfTag(tb)) return false;
  switch (ta) {
    case PackedTag::kNull:
      return true;
    case PackedTag::kBool:
    case PackedTag::kChar:
      return PayloadOf(a) == PayloadOf(b);
    case PackedTag::kIntInline:
    case PackedTag::kIntBoxed:
      return DecodeInt(a) == DecodeInt(b);
    case PackedTag::kReal:
      // IEEE ==, not id ==: -0.0 and 0.0 are distinct pool entries but
      // equal values; NaN is never equal (so NaN facts never
      // de-duplicate — the reference store's behavior).
      return reals_[PayloadOf(a)] == reals_[PayloadOf(b)];
    case PackedTag::kString:
    case PackedTag::kOid:
      return PayloadOf(a) == PayloadOf(b);  // dictionary ids are exact
    case PackedTag::kDateInline:
    case PackedTag::kDateBoxed:
      return DecodeDate(a) == DecodeDate(b);
    case PackedTag::kSet: {
      const auto& ra = set_runs_[PayloadOf(a)];
      const auto& rb = set_runs_[PayloadOf(b)];
      if (ra.second != rb.second) return false;
      for (std::uint32_t i = 0; i < ra.second; ++i) {
        if (!PackedEqualsPacked(set_elements_[ra.first + i],
                                set_elements_[rb.first + i])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::uint64_t FactStore::ValueDigest(PackedValue v) const {
  std::uint64_t h = static_cast<std::uint64_t>(KindOfTag(TagOf(v))) + 1;
  switch (TagOf(v)) {
    case PackedTag::kNull:
      break;
    case PackedTag::kBool:
    case PackedTag::kChar:
      h = MixCombine(h, PayloadOf(v));
      break;
    case PackedTag::kIntInline:
    case PackedTag::kIntBoxed:
      h = MixCombine(h, static_cast<std::uint64_t>(DecodeInt(v)));
      break;
    case PackedTag::kReal:
      // Bit pattern, not value: keeps the -0.0 / 0.0 digest split.
      h = MixCombine(h, RealBits(reals_[PayloadOf(v)]));
      break;
    case PackedTag::kString:
    case PackedTag::kOid:
      h = MixCombine(h, PayloadOf(v));
      break;
    case PackedTag::kDateInline:
    case PackedTag::kDateBoxed: {
      const Date d = DecodeDate(v);
      h = MixCombine(h, static_cast<std::uint64_t>(d.year) * 10000 +
                            static_cast<std::uint64_t>(d.month) * 100 +
                            static_cast<std::uint64_t>(d.day));
      break;
    }
    case PackedTag::kSet: {
      const auto& run = set_runs_[PayloadOf(v)];
      for (std::uint32_t i = 0; i < run.second; ++i) {
        h = MixCombine(h, ValueDigest(set_elements_[run.first + i]));
      }
      break;
    }
  }
  return h;
}

bool FactStore::TryLookupDigest(const Value& value, std::uint64_t* out) const {
  std::uint64_t h = static_cast<std::uint64_t>(value.kind()) + 1;
  switch (value.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBoolean:
      h = MixCombine(h, value.AsBoolean() ? 1 : 0);
      break;
    case ValueKind::kCharacter:
      h = MixCombine(h,
                     static_cast<unsigned char>(value.AsCharacter()));
      break;
    case ValueKind::kInteger:
      h = MixCombine(h, static_cast<std::uint64_t>(value.AsInteger()));
      break;
    case ValueKind::kReal:
      h = MixCombine(h, RealBits(value.AsReal()));
      break;
    case ValueKind::kString: {
      const std::uint32_t id = symbols_.Find(value.AsString());
      if (id == kNoId) return false;  // never stored -> empty join
      h = MixCombine(h, id);
      break;
    }
    case ValueKind::kDate: {
      const Date& d = value.AsDate();
      h = MixCombine(h, static_cast<std::uint64_t>(d.year) * 10000 +
                            static_cast<std::uint64_t>(d.month) * 100 +
                            static_cast<std::uint64_t>(d.day));
      break;
    }
    case ValueKind::kOid: {
      const std::uint32_t id = FindOid(value.AsOid());
      if (id == kNoId) return false;
      h = MixCombine(h, id);
      break;
    }
    case ValueKind::kSet:
      for (const Value& e : value.AsSet()) {
        std::uint64_t eh = 0;
        if (!TryLookupDigest(e, &eh)) return false;
        h = MixCombine(h, eh);
      }
      break;
  }
  *out = h;
  return true;
}

std::uint64_t FactStore::AttrIndexKey(ConceptId concept_id,
                                      std::uint32_t attr_id,
                                      std::uint64_t value_digest) const {
  // Only the VALUE digest is masked by the collision-test knob: forced
  // collisions then stay within one (concept, attribute) pair, so a
  // colliding probe still yields valid ordinals of the probed concept
  // (false positives among values, which callers re-verify) and never
  // ordinals of a foreign extent.
  std::uint64_t key = MixCombine(concept_id, attr_id);
  return MixCombine(key, value_digest & digest_mask_);
}

FactId FactStore::Insert(Fact fact) {
  bool was_new = false;
  const FactId id = InsertOrFind(std::move(fact), &was_new);
  return was_new ? id : kNoFact;
}

FactId FactStore::FindExisting(const Fact& fact) const {
  const ConceptId concept_id = FindConcept(fact.concept_name);
  if (concept_id == kNoConcept) return kNoFact;
  const std::uint32_t oid_id = fact.oid.empty() ? kNoId : FindOid(fact.oid);
  if (!fact.oid.empty() && oid_id == kNoId) return kNoFact;

  // The canonical digest Insert computes, via lookup-only access: a
  // miss on any component means the exact fact cannot be stored.
  std::uint64_t digest = MixCombine(0x84222325u, concept_id);
  digest = MixCombine(digest, oid_id == kNoId ? ~0ull : oid_id);
  for (const auto& [name, value] : fact.attrs) {
    const std::uint32_t attr_id = symbols_.Find(name);
    if (attr_id == kNoId) return kNoFact;
    std::uint64_t value_digest = 0;
    if (!TryLookupDigest(value, &value_digest)) return kNoFact;
    digest = MixCombine(digest, attr_id);
    digest = MixCombine(digest, value_digest);
  }
  digest &= digest_mask_;

  PostingsCursor bucket = dedup_.Find(digest);
  std::uint32_t candidate = 0;
  while (bucket.Next(&candidate)) {
    const FactRecord& rec = records_[candidate];
    if (rec.concept_id != concept_id || rec.oid_id != oid_id ||
        rec.attr_count != fact.attrs.size()) {
      continue;
    }
    if (EquivalentAttrs(candidate, fact)) return candidate;
  }
  return kNoFact;
}

void FactStore::FactIdsWithOid(const Oid& oid, std::vector<FactId>* out) const {
  const std::uint32_t oid_id = FindOid(oid);
  if (oid_id == kNoId) return;
  PostingsCursor cursor = by_oid_.Find(oid_id);
  std::uint32_t id = 0;
  while (cursor.Next(&id)) {
    // The by_oid_ key is a dictionary id: exact, but distinct ids may
    // share a postings slot on a 64-bit key collision — re-verify.
    if (records_[id].oid_id == oid_id) out->push_back(id);
  }
}

FactId FactStore::InsertOrFind(Fact fact, bool* was_new) {
  if (was_new != nullptr) *was_new = false;
  const ConceptId concept_id = InternConcept(fact.concept_name);
  const std::uint32_t oid_id = fact.oid.empty() ? kNoId : InternOid(fact.oid);

  scratch_attrs_.clear();
  for (const auto& [name, value] : fact.attrs) {
    // std::map iterates sorted by name, so the run is stored in
    // lexicographic name order — the iteration order FactView exposes.
    scratch_attrs_.emplace_back(symbols_.Intern(name), EncodeValue(value));
  }

  // Canonical digest over interned identities; bit-pattern reals keep
  // every distinction HashFactCanonical makes.
  std::uint64_t digest = MixCombine(0x84222325u, concept_id);
  digest = MixCombine(digest, oid_id == kNoId ? ~0ull : oid_id);
  for (const auto& [attr_id, packed] : scratch_attrs_) {
    digest = MixCombine(digest, attr_id);
    digest = MixCombine(digest, ValueDigest(packed));
  }
  digest &= digest_mask_;

  PostingsCursor bucket = dedup_.Find(digest);
  std::uint32_t candidate = 0;
  while (bucket.Next(&candidate)) {
    const FactRecord& rec = records_[candidate];
    if (rec.concept_id != concept_id || rec.oid_id != oid_id ||
        rec.attr_count != scratch_attrs_.size()) {
      continue;
    }
    bool equal = true;
    for (std::uint32_t i = 0; i < rec.attr_count; ++i) {
      if (attr_names_[rec.attr_begin + i] != scratch_attrs_[i].first ||
          !PackedEqualsPacked(attr_values_[rec.attr_begin + i],
                              scratch_attrs_[i].second)) {
        equal = false;
        break;
      }
    }
    if (equal) return candidate;  // duplicate
  }

  if (was_new != nullptr) *was_new = true;
  const auto id = static_cast<FactId>(records_.size());
  const auto attr_begin = static_cast<std::uint32_t>(attr_names_.size());
  for (const auto& [attr_id, packed] : scratch_attrs_) {
    attr_names_.push_back(attr_id);
    attr_values_.push_back(packed);
  }
  std::vector<FactId>& extent = by_concept_[concept_id];
  const auto ordinal = static_cast<std::uint32_t>(extent.size());
  records_.push_back({concept_id, ordinal, oid_id, attr_begin,
                      static_cast<std::uint32_t>(scratch_attrs_.size())});
  extent.push_back(id);

  dedup_.Add(digest, id);
  if (oid_id != kNoId) by_oid_.Add(oid_id, id);
  for (const auto& [attr_id, packed] : scratch_attrs_) {
    by_attr_.Add(AttrIndexKey(concept_id, attr_id, ValueDigest(packed)),
                 ordinal);
    if (TagOf(packed) == PackedTag::kSet) {
      // Sets are indexed element-wise too (the matcher's set-membership
      // convention).
      const auto& run = set_runs_[PayloadOf(packed)];
      for (std::uint32_t i = 0; i < run.second; ++i) {
        by_attr_.Add(
            AttrIndexKey(concept_id, attr_id,
                         ValueDigest(set_elements_[run.first + i])),
            ordinal);
      }
    }
  }
  return id;
}

size_t FactStore::CountOf(ConceptId id) const {
  return id == kNoConcept || id >= by_concept_.size() ? 0
                                                      : by_concept_[id].size();
}

Fact FactStore::BuildFact(FactId id) const {
  const FactRecord& rec = records_[id];
  Fact fact;
  fact.concept_name = symbols_.at(concept_symbols_[rec.concept_id]);
  if (rec.oid_id != kNoId) fact.oid = MaterializeOid(rec.oid_id);
  for (std::uint32_t i = 0; i < rec.attr_count; ++i) {
    fact.attrs.emplace_hint(fact.attrs.end(),
                            symbols_.at(attr_names_[rec.attr_begin + i]),
                            DecodeValue(attr_values_[rec.attr_begin + i]));
  }
  return fact;
}

const Fact* FactStore::Materialize(FactId id) const {
  std::lock_guard<std::mutex> lock(*cache_mu_);
  if (cache_.size() < records_.size()) cache_.resize(records_.size());
  std::unique_ptr<Fact>& slot = cache_[id];
  if (slot == nullptr) slot = std::make_unique<Fact>(BuildFact(id));
  return slot.get();
}

const Fact* FactStore::FactById(FactId id) const { return Materialize(id); }

const Fact* FactStore::FactAt(ConceptId id, std::uint32_t ordinal) const {
  return Materialize(by_concept_[id][ordinal]);
}

std::vector<const Fact*> FactStore::FactsOf(ConceptId id) const {
  std::vector<const Fact*> facts;
  if (id == kNoConcept || id >= by_concept_.size()) return facts;
  facts.reserve(by_concept_[id].size());
  for (FactId fid : by_concept_[id]) facts.push_back(Materialize(fid));
  return facts;
}

std::vector<const Fact*> FactStore::FactsOf(const std::string& name) const {
  return FactsOf(FindConcept(name));
}

const Fact* FactStore::FindByOid(const Oid& oid) const {
  if (oid.empty()) return nullptr;
  const std::uint32_t oid_id = FindOid(oid);
  if (oid_id == kNoId) return nullptr;
  // Fact ids are appended ascending, so the first posting is the
  // first-inserted fact with this OID (the precedence contract). The
  // index is keyed by dictionary id — exact, no hash re-verification.
  PostingsCursor cursor = by_oid_.Find(oid_id);
  std::uint32_t fid = 0;
  if (cursor.Next(&fid)) return Materialize(fid);
  return nullptr;
}

const Fact* FactStore::FindByOid(const Oid& oid, ConceptId concept_id) const {
  if (oid.empty()) return nullptr;
  const std::uint32_t oid_id = FindOid(oid);
  if (oid_id == kNoId) return nullptr;
  PostingsCursor cursor = by_oid_.Find(oid_id);
  std::uint32_t fid = 0;
  while (cursor.Next(&fid)) {
    if (records_[fid].concept_id == concept_id) return Materialize(fid);
  }
  return nullptr;
}

FactView FactStore::ViewByOid(const Oid& oid) const {
  if (oid.empty()) return FactView();
  const std::uint32_t oid_id = FindOid(oid);
  if (oid_id == kNoId) return FactView();
  PostingsCursor cursor = by_oid_.Find(oid_id);
  std::uint32_t fid = 0;
  if (cursor.Next(&fid)) return FactView(this, fid);
  return FactView();
}

PostingsCursor FactStore::Probe(ConceptId concept_id, const std::string& attr,
                                const Value& value) const {
  const std::uint32_t attr_id = symbols_.Find(attr);
  if (attr_id == kNoId) return PostingsCursor();
  std::uint64_t digest = 0;
  if (!TryLookupDigest(value, &digest)) return PostingsCursor();
  return by_attr_.Find(AttrIndexKey(concept_id, attr_id, digest));
}

void FactStore::ProbeOid(ConceptId concept_id, const Oid& oid,
                         std::vector<std::uint32_t>* out) const {
  if (oid.empty()) return;
  const std::uint32_t oid_id = FindOid(oid);
  if (oid_id == kNoId) return;
  PostingsCursor cursor = by_oid_.Find(oid_id);
  std::uint32_t fid = 0;
  while (cursor.Next(&fid)) {
    const FactRecord& rec = records_[fid];
    if (rec.concept_id == concept_id) out->push_back(rec.ordinal);
  }
}

bool FactStore::EquivalentAttrs(FactId id, const Fact& fact) const {
  const FactRecord& rec = records_[id];
  if (symbols_.view(concept_symbols_[rec.concept_id]) != fact.concept_name) {
    return false;
  }
  if (rec.attr_count != fact.attrs.size()) return false;
  std::uint32_t i = 0;
  for (const auto& [name, value] : fact.attrs) {
    if (symbols_.view(attr_names_[rec.attr_begin + i]) != name) return false;
    if (!PackedEqualsValue(attr_values_[rec.attr_begin + i], value)) {
      return false;
    }
    ++i;
  }
  return true;
}

void FactStore::Clear() {
  symbols_.Clear();
  concept_symbols_.clear();
  concept_table_.Clear();
  oids_.clear();
  oid_table_.Clear();
  reals_.clear();
  real_table_.Clear();
  boxed_ints_.clear();
  int_table_.Clear();
  boxed_dates_.clear();
  date_table_.Clear();
  set_runs_.clear();
  set_elements_.clear();
  records_.clear();
  attr_names_.clear();
  attr_values_.clear();
  by_concept_.clear();
  by_attr_.Clear();
  by_oid_.Clear();
  dedup_.Clear();
  std::lock_guard<std::mutex> lock(*cache_mu_);
  // Release capacity too, so memory().materialized_bytes drops to zero.
  std::vector<std::unique_ptr<Fact>>().swap(cache_);
}

FactStore::MemoryBreakdown FactStore::memory() const {
  MemoryBreakdown m;
  m.record_bytes = records_.capacity() * sizeof(FactRecord) +
                   by_concept_.capacity() * sizeof(std::vector<FactId>);
  for (const std::vector<FactId>& extent : by_concept_) {
    m.record_bytes += extent.capacity() * sizeof(FactId);
  }
  m.attr_bytes = attr_names_.capacity() * sizeof(std::uint32_t) +
                 attr_values_.capacity() * sizeof(PackedValue);
  m.symbol_bytes = symbols_.ApproxBytes() +
                   concept_symbols_.capacity() * sizeof(std::uint32_t) +
                   concept_table_.ApproxBytes();
  m.value_pool_bytes =
      oids_.capacity() * sizeof(PackedOid) + oid_table_.ApproxBytes() +
      reals_.capacity() * sizeof(double) + real_table_.ApproxBytes() +
      boxed_ints_.capacity() * sizeof(std::int64_t) +
      int_table_.ApproxBytes() + boxed_dates_.capacity() * sizeof(Date) +
      date_table_.ApproxBytes() +
      set_runs_.capacity() * sizeof(set_runs_[0]) +
      set_elements_.capacity() * sizeof(PackedValue);
  m.attr_index_bytes = by_attr_.ApproxBytes();
  m.oid_index_bytes = by_oid_.ApproxBytes();
  m.dedup_bytes = dedup_.ApproxBytes();
  {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    m.materialized_bytes = cache_.capacity() * sizeof(cache_[0]);
    for (const std::unique_ptr<Fact>& fact : cache_) {
      if (fact != nullptr) m.materialized_bytes += MaterializedFactBytes(*fact);
    }
  }
  return m;
}

}  // namespace ooint
