#include "rules/fact_store.h"

#include <cstring>

namespace ooint {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t FnvBytes(std::uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v) {
  return FnvBytes(seed ^ kFnvOffset, &v, sizeof(v));
}

std::uint64_t HashString(const std::string& s) {
  return FnvBytes(kFnvOffset, s.data(), s.size());
}

std::uint64_t HashOid(const Oid& oid) {
  std::uint64_t h = HashString(oid.agent());
  h = HashCombine(h, HashString(oid.dbms()));
  h = HashCombine(h, HashString(oid.database()));
  h = HashCombine(h, HashString(oid.relation()));
  return HashCombine(h, oid.number());
}

std::uint64_t HashValue(const Value& value) {
  std::uint64_t h = static_cast<std::uint64_t>(value.kind()) + 1;
  switch (value.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBoolean:
      h = HashCombine(h, value.AsBoolean() ? 1 : 0);
      break;
    case ValueKind::kInteger:
      h = HashCombine(h, static_cast<std::uint64_t>(value.AsInteger()));
      break;
    case ValueKind::kReal: {
      const double d = value.AsReal();
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      h = HashCombine(h, bits);
      break;
    }
    case ValueKind::kCharacter:
      h = HashCombine(h, static_cast<std::uint64_t>(value.AsCharacter()));
      break;
    case ValueKind::kString:
      h = HashCombine(h, HashString(value.AsString()));
      break;
    case ValueKind::kDate: {
      const Date& d = value.AsDate();
      h = HashCombine(h, static_cast<std::uint64_t>(d.year) * 10000 +
                             static_cast<std::uint64_t>(d.month) * 100 +
                             static_cast<std::uint64_t>(d.day));
      break;
    }
    case ValueKind::kOid:
      h = HashCombine(h, HashOid(value.AsOid()));
      break;
    case ValueKind::kSet:
      // Element order is part of set identity (Value::operator==
      // compares the stored vectors), so hashing in order is exact.
      for (const Value& e : value.AsSet()) h = HashCombine(h, HashValue(e));
      break;
  }
  return h;
}

std::uint64_t HashFactAttrs(const Fact& fact) {
  std::uint64_t h = HashString(fact.concept_name);
  for (const auto& [name, value] : fact.attrs) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, HashValue(value));
  }
  return h;
}

std::uint64_t HashFactCanonical(const Fact& fact) {
  return HashCombine(HashFactAttrs(fact), HashOid(fact.oid));
}

ConceptId FactStore::InternConcept(const std::string& name) {
  auto [it, inserted] =
      concept_ids_.emplace(name, static_cast<ConceptId>(concept_names_.size()));
  if (inserted) {
    concept_names_.push_back(name);
    by_concept_.emplace_back();
  }
  return it->second;
}

ConceptId FactStore::FindConcept(const std::string& name) const {
  auto it = concept_ids_.find(name);
  return it == concept_ids_.end() ? kNoConcept : it->second;
}

const std::string& FactStore::ConceptName(ConceptId id) const {
  return concept_names_[id];
}

const std::vector<const Fact*>& FactStore::FactsOf(ConceptId id) const {
  static const std::vector<const Fact*> kEmpty;
  return id == kNoConcept || id >= by_concept_.size() ? kEmpty
                                                      : by_concept_[id];
}

const std::vector<const Fact*>& FactStore::FactsOf(
    const std::string& name) const {
  return FactsOf(FindConcept(name));
}

size_t FactStore::CountOf(ConceptId id) const { return FactsOf(id).size(); }

void FactStore::IndexAttr(ConceptId concept_id, std::uint32_t ordinal,
                          const std::string& attr, const Value& value) {
  std::uint64_t key = HashCombine(concept_id, HashString(attr));
  key = HashCombine(key, HashValue(value));
  by_attr_[key].push_back(ordinal);
}

const std::vector<std::uint32_t>* FactStore::Probe(ConceptId concept_id,
                                                   const std::string& attr,
                                                   const Value& value) const {
  std::uint64_t key = HashCombine(concept_id, HashString(attr));
  key = HashCombine(key, HashValue(value));
  auto it = by_attr_.find(key);
  return it == by_attr_.end() ? nullptr : &it->second;
}

const Fact* FactStore::Insert(Fact fact) {
  const std::uint64_t canonical = HashFactCanonical(fact);
  std::vector<const Fact*>& bucket = dedup_[canonical];
  for (const Fact* existing : bucket) {
    if (existing->oid == fact.oid &&
        existing->concept_name == fact.concept_name &&
        existing->attrs == fact.attrs) {
      return nullptr;
    }
  }
  const ConceptId concept_id = InternConcept(fact.concept_name);
  all_.push_back(std::move(fact));
  const Fact& stored = all_.back();
  std::vector<const Fact*>& extent = by_concept_[concept_id];
  const auto ordinal = static_cast<std::uint32_t>(extent.size());
  extent.push_back(&stored);
  bucket.push_back(&stored);
  if (!stored.oid.empty()) {
    by_oid_[HashOid(stored.oid)].push_back({concept_id, ordinal});
  }
  for (const auto& [name, value] : stored.attrs) {
    IndexAttr(concept_id, ordinal, name, value);
    if (value.kind() == ValueKind::kSet) {
      for (const Value& element : value.AsSet()) {
        IndexAttr(concept_id, ordinal, name, element);
      }
    }
  }
  return &stored;
}

void FactStore::ProbeOid(ConceptId concept_id, const Oid& oid,
                         std::vector<std::uint32_t>* out) const {
  auto it = by_oid_.find(HashOid(oid));
  if (it == by_oid_.end()) return;
  for (const OidEntry& entry : it->second) {
    if (entry.concept_id == concept_id) out->push_back(entry.ordinal);
  }
}

const Fact* FactStore::FindByOid(const Oid& oid) const {
  auto it = by_oid_.find(HashOid(oid));
  if (it == by_oid_.end()) return nullptr;
  // Entries are appended in insertion order; the first exact match is
  // the first-inserted fact with this OID (the precedence contract).
  for (const OidEntry& entry : it->second) {
    const Fact* fact = FactAt(entry.concept_id, entry.ordinal);
    if (fact->oid == oid) return fact;
  }
  return nullptr;
}

const Fact* FactStore::FindByOid(const Oid& oid, ConceptId concept_id) const {
  auto it = by_oid_.find(HashOid(oid));
  if (it == by_oid_.end()) return nullptr;
  for (const OidEntry& entry : it->second) {
    if (entry.concept_id != concept_id) continue;
    const Fact* fact = FactAt(entry.concept_id, entry.ordinal);
    if (fact->oid == oid) return fact;
  }
  return nullptr;
}

void FactStore::Clear() {
  all_.clear();
  concept_names_.clear();
  concept_ids_.clear();
  by_concept_.clear();
  dedup_.clear();
  by_oid_.clear();
  by_attr_.clear();
}

}  // namespace ooint
