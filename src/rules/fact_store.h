#ifndef OOINT_RULES_FACT_STORE_H_
#define OOINT_RULES_FACT_STORE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "rules/fact.h"

namespace ooint {

/// 64-bit content hashes used by the fact store and the evaluators'
/// de-duplication sets (FNV-1a based). Hashes are an accelerator only:
/// every user verifies candidates with exact equality, so a collision
/// can cost time but never correctness.
std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v);
std::uint64_t HashString(const std::string& s);
std::uint64_t HashOid(const Oid& oid);
std::uint64_t HashValue(const Value& value);
/// Hash of (concept_id, attrs) — the Fact::AttrKey() identity.
std::uint64_t HashFactAttrs(const Fact& fact);
/// Hash of (concept_id, oid, attrs) — the Fact::CanonicalKey() identity.
std::uint64_t HashFactCanonical(const Fact& fact);

/// Interned concept_id names: the evaluators address concepts by dense
/// 32-bit ids instead of re-hashing strings on every join step.
using ConceptId = std::uint32_t;
inline constexpr ConceptId kNoConcept = 0xffffffffu;

/// The shared indexed fact universe of both federated evaluators
/// (Appendix B). Replaces the ad-hoc deque + per-concept_id map + key set +
/// OID map quadruple the bottom-up evaluator used to carry.
///
/// Provides:
///  - stable storage (facts never move once inserted);
///  - hashed exact de-duplication on (concept_id, oid, attrs);
///  - per-concept_id extents in insertion order, addressable by ordinal
///    (which is what makes semi-naive delta ranges representable as
///    [begin, end) ordinal windows);
///  - an OID hash index with *defined* collision precedence: when two
///    facts carry the same OID (e.g. two concepts derive the same
///    entity), FindByOid returns the first-inserted fact — base facts
///    load before derived facts, so base data wins — and the
///    concept_id-aware overload disambiguates explicitly;
///  - a (concept_id, attribute, value) hash index used for bound-first
///    join probing; set-valued attributes are indexed element-wise to
///    mirror FactMatcher's element-level matching convention.
class FactStore {
 public:
  FactStore() = default;

  /// Returns the id of `name`, interning it if new.
  ConceptId InternConcept(const std::string& name);
  /// Returns the id of `name`, or kNoConcept if it was never interned.
  ConceptId FindConcept(const std::string& name) const;
  const std::string& ConceptName(ConceptId id) const;
  size_t concept_count() const { return concept_names_.size(); }

  /// Inserts `fact` unless an identical fact (concept_id, oid, attrs) is
  /// already stored. Returns the stored fact, or nullptr on duplicate.
  const Fact* Insert(Fact fact);

  size_t size() const { return all_.size(); }

  /// The extent of a concept_id in insertion order (stable pointers).
  const std::vector<const Fact*>& FactsOf(ConceptId id) const;
  const std::vector<const Fact*>& FactsOf(const std::string& name) const;
  size_t CountOf(ConceptId id) const;

  /// The fact at per-concept_id insertion ordinal `ordinal`.
  const Fact* FactAt(ConceptId id, std::uint32_t ordinal) const {
    return FactsOf(id)[ordinal];
  }

  /// First-inserted fact with `oid` across all concepts (see class
  /// comment for the precedence contract); nullptr if absent.
  const Fact* FindByOid(const Oid& oid) const;
  /// First-inserted fact with `oid` belonging to `concept_id`.
  const Fact* FindByOid(const Oid& oid, ConceptId concept_id) const;

  /// Per-concept_id ordinals of facts whose attribute `attr` equals
  /// `value` (or is a set containing `value`), via the hash index.
  /// Returns nullptr when no fact matches. Candidates may include
  /// hash-collision false positives; callers re-verify via the matcher.
  const std::vector<std::uint32_t>* Probe(ConceptId concept_id,
                                          const std::string& attr,
                                          const Value& value) const;

  /// Appends the per-concept_id ordinals (ascending) of `concept_id` facts
  /// whose OID hashes like `oid`. May include collision false
  /// positives; callers re-verify.
  void ProbeOid(ConceptId concept_id, const Oid& oid,
                std::vector<std::uint32_t>* out) const;

  void Clear();

 private:
  struct OidEntry {
    ConceptId concept_id;
    std::uint32_t ordinal;
  };

  void IndexAttr(ConceptId concept_id, std::uint32_t ordinal,
                 const std::string& attr, const Value& value);

  std::deque<Fact> all_;  // stable storage
  std::vector<std::string> concept_names_;
  std::unordered_map<std::string, ConceptId> concept_ids_;
  std::vector<std::vector<const Fact*>> by_concept_;
  // canonical hash -> facts with that hash (exact-verified on insert)
  std::unordered_map<std::uint64_t, std::vector<const Fact*>> dedup_;
  // oid hash -> entries in insertion order (exact-verified on lookup)
  std::unordered_map<std::uint64_t, std::vector<OidEntry>> by_oid_;
  // hash(concept_id, attr, value) -> per-concept_id ordinals
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_attr_;
};

}  // namespace ooint

#endif  // OOINT_RULES_FACT_STORE_H_
