#ifndef OOINT_RULES_FACT_STORE_H_
#define OOINT_RULES_FACT_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rules/columnar.h"
#include "rules/fact.h"

namespace ooint {

/// 64-bit content hashes used across the evaluators (FNV-1a based).
/// Hashes are an accelerator only: every user verifies candidates with
/// exact equality, so a collision can cost time but never correctness.
/// HashFactAttrs also content-addresses skolem OIDs (the derived-OID
/// numbers both fixpoint strategies assign), so its definition is part
/// of the observable output and must not change.
std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v);
std::uint64_t HashString(const std::string& s);
std::uint64_t HashOid(const Oid& oid);
std::uint64_t HashValue(const Value& value);
/// Hash of (concept, attrs) — the Fact::AttrKey() identity.
std::uint64_t HashFactAttrs(const Fact& fact);
/// Hash of (concept, oid, attrs) — the Fact::CanonicalKey() identity.
std::uint64_t HashFactCanonical(const Fact& fact);

/// Interned concept names: the evaluators address concepts by dense
/// 32-bit ids instead of re-hashing strings on every join step.
using ConceptId = std::uint32_t;
inline constexpr ConceptId kNoConcept = 0xffffffffu;

/// Global insertion index of a stored fact (dense, insertion-ordered).
using FactId = std::uint32_t;
inline constexpr FactId kNoFact = 0xffffffffu;

class FactStore;

/// A dictionary-encoded value: 4-bit tag in the top nibble, 60-bit
/// payload (inline scalar, pool index, or set-run index) below. The
/// encoding is store-relative — two PackedValues compare only within
/// the store that produced them.
using PackedValue = std::uint64_t;

enum class PackedTag : std::uint8_t {
  kNull = 0,
  kBool = 1,
  kChar = 2,
  kIntInline = 3,  // 60-bit two's complement
  kIntBoxed = 4,   // index into the int pool
  kReal = 5,       // index into the real pool (deduped by bit pattern)
  kString = 6,     // symbol id
  kDateInline = 7, // (year+2^23) << 16 | month << 8 | day
  kDateBoxed = 8,  // index into the date pool
  kOid = 9,        // oid-dictionary id
  kSet = 10,       // set-run index (contiguous elements, order kept)
};

/// A value either materialized (a Value somewhere stable) or packed in
/// a FactStore. The matcher compares, inspects and selectively
/// materializes through this handle so packed facts are matched without
/// ever rebuilding their std::map representation.
class ValueHandle {
 public:
  ValueHandle() = default;  // invalid (attribute absent)
  explicit ValueHandle(const Value* value) : value_(value) {}
  ValueHandle(const FactStore* store, PackedValue packed)
      : store_(store), packed_(packed) {}

  bool valid() const { return value_ != nullptr || store_ != nullptr; }
  ValueKind kind() const;

  /// Set access (kind() == kSet): element count and element handles in
  /// stored order.
  size_t set_size() const;
  ValueHandle set_element(size_t i) const;

  /// Exact Value::operator== semantics (IEEE for reals, ordered
  /// element-wise for sets) without materializing.
  bool Equals(const Value& other) const;

  Value Materialize() const;
  /// kind() == kOid only.
  Oid MaterializeOid() const;

 private:
  const Value* value_ = nullptr;
  const FactStore* store_ = nullptr;
  PackedValue packed_ = 0;
};

/// A fact either materialized (a Fact somewhere stable, e.g. the
/// top-down evaluator's memo rows) or packed in a FactStore. This is
/// what the matcher and the evaluator's join paths traverse; attribute
/// iteration order is lexicographic by name in both backings (std::map
/// order / the packed runs are stored sorted by name).
class FactView {
 public:
  FactView() = default;  // invalid
  explicit FactView(const Fact* fact) : fact_(fact) {}
  FactView(const FactStore* store, FactId id) : store_(store), id_(id) {}

  bool valid() const { return fact_ != nullptr || store_ != nullptr; }
  bool oid_empty() const;
  Oid oid() const;

  size_t attr_count() const;
  std::string_view attr_name(size_t i) const;
  ValueHandle attr_value(size_t i) const;
  /// Invalid handle when the fact has no attribute named `name`.
  ValueHandle Find(std::string_view name) const;

 private:
  const Fact* fact_ = nullptr;
  const FactStore* store_ = nullptr;
  FactId id_ = kNoFact;
};

/// The shared indexed fact universe of both federated evaluators
/// (Appendix B), stored columnar (DESIGN.md 4h): concept names,
/// attribute names, string values and OID components are interned into
/// one symbol pool; each fact is a fixed-size record whose attributes
/// are a sorted (AttrId, PackedValue) run in shared arrays; and the
/// de-duplication, OID and (concept, attribute, value) indexes are
/// delta/varint-packed ordinal postings behind open-addressing tables.
///
/// Contract (unchanged from the pre-columnar store, which survives as
/// ReferenceFactStore — a differential oracle enforces bit-identical
/// fact sets):
///  - hashed exact de-duplication on (concept, oid, attrs);
///  - per-concept extents in insertion order, addressable by ordinal
///    (semi-naive delta ranges are [begin, end) ordinal windows);
///  - FindByOid returns the FIRST-inserted fact with the OID (base
///    facts load before derived ones, so base data wins); the
///    concept-aware overload disambiguates;
///  - Probe streams the per-concept ordinals of facts whose attribute
///    equals the value (or is a set containing it; sets are indexed
///    element-wise to mirror the matcher's convention). Candidates may
///    include 64-bit-key collision false positives; callers re-verify
///    via the matcher. A value absent from the dictionaries yields an
///    empty cursor — exactly the old "no hash bucket" empty join.
///
/// Boundary APIs that hand out `const Fact*` (FactsOf, FactAt,
/// FindByOid, FactById) materialize lazily into a mutex-guarded cache;
/// the evaluation hot paths use FactView/PostingsCursor and never
/// materialize. Materialized pointers stay valid for the store's
/// lifetime (until Clear()).
class FactStore {
 public:
  FactStore() = default;

  /// Returns the id of `name`, interning it if new.
  ConceptId InternConcept(const std::string& name);
  /// Returns the id of `name`, or kNoConcept if it was never interned.
  ConceptId FindConcept(const std::string& name) const;
  const std::string& ConceptName(ConceptId id) const;
  size_t concept_count() const { return concept_symbols_.size(); }

  /// Inserts `fact` unless an identical fact (concept, oid, attrs) is
  /// already stored. Returns the new FactId, or kNoFact on duplicate.
  FactId Insert(Fact fact);

  /// Like Insert, but on a duplicate returns the *existing* FactId
  /// instead of kNoFact. `was_new` (optional) reports whether a record
  /// was appended. The incremental evaluator uses this to revive facts
  /// that were logically deleted: the store stays append-only, identity
  /// is stable, and liveness lives in side columns keyed by FactId.
  FactId InsertOrFind(Fact fact, bool* was_new = nullptr);

  /// Lookup-only de-duplication probe: the FactId of the stored fact
  /// identical to `fact` (concept, oid, attrs), or kNoFact. Never
  /// interns — a fact mentioning any never-stored symbol or value
  /// cannot be stored, so the miss is exact.
  FactId FindExisting(const Fact& fact) const;

  /// Appends the FactIds (ascending) of every stored fact carrying
  /// exactly `oid`, across all concepts — the enumeration behind
  /// liveness-aware OID resolution. Exact, like ProbeOid.
  void FactIdsWithOid(const Oid& oid, std::vector<FactId>* out) const;

  size_t size() const { return records_.size(); }

  /// The extent of a concept in insertion order. Materializes every
  /// fact of the concept — a boundary API, not a join path.
  std::vector<const Fact*> FactsOf(ConceptId id) const;
  std::vector<const Fact*> FactsOf(const std::string& name) const;
  size_t CountOf(ConceptId id) const;

  /// The fact at per-concept insertion ordinal `ordinal` (materializing).
  const Fact* FactAt(ConceptId id, std::uint32_t ordinal) const;
  /// The fact with global insertion index `id` (materializing).
  const Fact* FactById(FactId id) const;

  /// Packed access for the join paths (no materialization).
  FactId IdAt(ConceptId id, std::uint32_t ordinal) const {
    return by_concept_[id][ordinal];
  }
  FactView ViewAt(ConceptId id, std::uint32_t ordinal) const {
    return FactView(this, IdAt(id, ordinal));
  }
  FactView ViewById(FactId id) const { return FactView(this, id); }
  ConceptId ConceptOf(FactId id) const { return records_[id].concept_id; }
  std::uint32_t OrdinalOf(FactId id) const { return records_[id].ordinal; }

  /// First-inserted fact with `oid` (see class comment); nullptr if
  /// absent. Materializing.
  const Fact* FindByOid(const Oid& oid) const;
  /// First-inserted fact with `oid` belonging to `concept_id`.
  const Fact* FindByOid(const Oid& oid, ConceptId concept_id) const;
  /// Packed equivalent of FindByOid for the matcher's resolver.
  FactView ViewByOid(const Oid& oid) const;

  /// Streaming per-concept ordinals (non-decreasing) of facts whose
  /// attribute `attr` equals `value` (or is a set containing it). The
  /// cursor is a snapshot — see PostingsCursor for the lifetime
  /// contract (this replaces the old raw `const vector<uint32_t>*`,
  /// which concurrent-round inserts could invalidate).
  PostingsCursor Probe(ConceptId concept_id, const std::string& attr,
                       const Value& value) const;

  /// Appends the per-concept ordinals (ascending) of `concept_id`
  /// facts carrying exactly `oid`. Exact — the OID index is keyed by
  /// dictionary id, so unlike the old hash index it admits no
  /// collision false positives.
  void ProbeOid(ConceptId concept_id, const Oid& oid,
                std::vector<std::uint32_t>* out) const;

  /// True iff the stored fact has `fact`'s concept name and exactly its
  /// attribute map — the skolem-deduplication verification, evaluated
  /// against the packed run without interning or materializing.
  bool EquivalentAttrs(FactId id, const Fact& fact) const;

  void Clear();

  /// Byte accounting of every columnar structure (capacity-based; the
  /// bytes/fact numerator reported by bench_storage and the regression
  /// budget guard).
  struct MemoryBreakdown {
    size_t record_bytes = 0;      // fact records + per-concept extents
    size_t attr_bytes = 0;        // packed attribute runs
    size_t symbol_bytes = 0;      // symbol pool
    size_t value_pool_bytes = 0;  // real/int/date pools, set runs, oids
    size_t attr_index_bytes = 0;  // by_attr postings
    size_t oid_index_bytes = 0;   // by_oid postings
    size_t dedup_bytes = 0;       // dedup postings
    size_t materialized_bytes = 0;  // lazy boundary cache (not packed)

    /// The columnar footprint (what the ≥5x target measures).
    size_t packed_total() const {
      return record_bytes + attr_bytes + symbol_bytes + value_pool_bytes +
             attr_index_bytes + oid_index_bytes + dedup_bytes;
    }
    size_t total() const { return packed_total() + materialized_bytes; }
  };
  MemoryBreakdown memory() const;

  /// Collision-test knob: truncates the de-duplication digests, the
  /// by_attr keys and the OID-dictionary probing hashes to the low
  /// `bits` bits, forcing distinct (concept, attr, value) triples and
  /// distinct OIDs to collide so tests can assert the exact-verification
  /// paths never produce false positives. 64 restores exactness.
  void set_digest_bits_for_testing(int bits) {
    digest_mask_ = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  }

 private:
  friend class ValueHandle;
  friend class FactView;

  struct PackedOid {
    std::uint32_t agent;
    std::uint32_t dbms;
    std::uint32_t database;
    std::uint32_t relation;
    std::uint64_t number;
  };

  struct FactRecord {
    ConceptId concept_id;
    std::uint32_t ordinal;     // within the concept's extent
    std::uint32_t oid_id;      // kNoId when the fact has no OID
    std::uint32_t attr_begin;  // into attr_names_/attr_values_
    std::uint32_t attr_count;
  };

  static constexpr std::uint64_t kPayloadMask = (1ull << 60) - 1;
  static PackedValue Pack(PackedTag tag, std::uint64_t payload) {
    return (static_cast<std::uint64_t>(tag) << 60) | (payload & kPayloadMask);
  }
  static PackedTag TagOf(PackedValue v) {
    return static_cast<PackedTag>(v >> 60);
  }
  static std::uint64_t PayloadOf(PackedValue v) { return v & kPayloadMask; }

  std::uint32_t InternOid(const Oid& oid);
  /// kNoId unless every component of `oid` is already interned.
  std::uint32_t FindOid(const Oid& oid) const;
  Oid MaterializeOid(std::uint32_t oid_id) const;

  PackedValue EncodeValue(const Value& value);
  Value DecodeValue(PackedValue v) const;
  std::int64_t DecodeInt(PackedValue v) const;
  Date DecodeDate(PackedValue v) const;

  bool PackedEqualsValue(PackedValue a, const Value& b) const;
  bool PackedEqualsPacked(PackedValue a, PackedValue b) const;

  /// Identity digest of a packed value: exact on dictionary ids,
  /// bit-pattern on reals (preserving the reference store's property
  /// that -0.0 and 0.0 never share a de-duplication bucket).
  std::uint64_t ValueDigest(PackedValue v) const;
  /// The digest EncodeValue+ValueDigest would produce for `value`, using
  /// lookup-only dictionary access: false when the value (or any
  /// dictionary-encoded part of it) was never stored — the probe-miss
  /// empty join.
  bool TryLookupDigest(const Value& value, std::uint64_t* out) const;
  std::uint64_t AttrIndexKey(ConceptId concept_id, std::uint32_t attr_id,
                             std::uint64_t value_digest) const;

  Fact BuildFact(FactId id) const;
  const Fact* Materialize(FactId id) const;

  // --- dictionaries ---
  SymbolPool symbols_;
  std::vector<std::uint32_t> concept_symbols_;  // ConceptId -> symbol
  IdTable concept_table_;
  std::vector<PackedOid> oids_;
  IdTable oid_table_;
  std::vector<double> reals_;
  IdTable real_table_;
  std::vector<std::int64_t> boxed_ints_;
  IdTable int_table_;
  std::vector<Date> boxed_dates_;
  IdTable date_table_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> set_runs_;
  std::vector<PackedValue> set_elements_;

  // --- facts ---
  std::vector<FactRecord> records_;
  std::vector<std::uint32_t> attr_names_;   // symbol ids, run-sorted by name
  std::vector<PackedValue> attr_values_;    // parallel to attr_names_
  std::vector<std::vector<FactId>> by_concept_;

  // --- indexes ---
  PostingsIndex by_attr_;  // AttrIndexKey -> per-concept ordinals
  PostingsIndex by_oid_;   // oid id -> fact ids (insertion order)
  PostingsIndex dedup_;    // canonical digest -> fact ids

  std::uint64_t digest_mask_ = ~0ull;

  // Scratch for Insert (encode-then-compare); member to avoid per-call
  // allocation.
  std::vector<std::pair<std::uint32_t, PackedValue>> scratch_attrs_;

  // --- lazy boundary materialization ---
  mutable std::vector<std::unique_ptr<Fact>> cache_;
  /// Guards cache_ against concurrent boundary reads (e.g. overlapping
  /// FsmClient::Extent calls). Heap-allocated so the store stays
  /// movable.
  mutable std::unique_ptr<std::mutex> cache_mu_ =
      std::make_unique<std::mutex>();
};

}  // namespace ooint

#endif  // OOINT_RULES_FACT_STORE_H_
