#ifndef OOINT_RULES_MAGIC_H_
#define OOINT_RULES_MAGIC_H_

#include <map>
#include <string>
#include <vector>

#include "model/value.h"
#include "rules/fact.h"
#include "rules/rule.h"
#include "rules/term.h"

namespace ooint {

/// Which argument positions of a demanded concept arrive bound: the
/// object position and/or a set of attribute names (predicate concepts
/// use their positional names "0", "1", ...). Attribute names are kept
/// sorted and deduplicated so an adornment has one canonical spelling.
struct Adornment {
  bool object_bound = false;
  std::vector<std::string> attrs;

  bool empty() const { return !object_bound && attrs.empty(); }
  /// Canonical key, e.g. "o|Ussn#" or "niece_nephew" or "" (unbound).
  std::string ToString() const;
};

/// The goal's concrete bound values, extracted from a query pattern:
/// constants in the pattern become bound positions; variables and
/// nested descriptors do not bind.
struct GoalBinding {
  std::string concept_name;
  bool object_bound = false;
  Value object;
  std::map<std::string, Value> attrs;
  /// True when the pattern carries a nested attribute descriptor —
  /// matching it navigates stored OIDs to other concepts, so the
  /// relevance analysis below would under-approximate.
  bool has_nested = false;

  Adornment ToAdornment() const;
};

GoalBinding ExtractGoalBinding(const OTerm& pattern);

/// Result of the demand transformation for one goal.
///
/// When `applied`, `rules` is the rewritten program: one guarded copy
/// of each defining rule per demanded (concept, adornment), with a
/// magic-predicate literal prepended, plus the magic rules that derive
/// demand sideways left-to-right; `seeds` holds the goal's magic seed
/// fact(s). When the program cannot be adorned soundly, `applied` is
/// false and `fallback_reason` records why — the caller evaluates the
/// original (relevance-restricted) rules instead.
///
/// `reachable_concepts` is always valid: every concept reachable from
/// the goal through rule bodies (negated literals included — a negated
/// concept's full extent is still needed for soundness). It drives
/// relevance-pruned extent fetching unless `relevance_safe` is false
/// (nested descriptors can navigate OIDs into unlisted concepts).
struct MagicProgram {
  bool applied = false;
  std::string fallback_reason;
  std::string goal_adornment;

  std::vector<Rule> rules;
  std::vector<Fact> seeds;

  std::vector<std::string> reachable_concepts;  // sorted, deduplicated
  bool relevance_safe = true;

  size_t magic_rules = 0;
  size_t guarded_rules = 0;
};

/// True for the internal magic-predicate names ("__magic[...]") so the
/// federation layer can filter them from user-facing reports.
bool IsMagicConceptName(const std::string& name);

/// Rewrites `rules` for goal-directed evaluation of `goal` (magic sets
/// with left-to-right sideways information passing). Sound fallbacks —
/// see MagicProgram. Binding positions that some defining rule cannot
/// support (no explicit head descriptor, or a head value the positive
/// body does not bind — the evaluator's attribute-merge path may still
/// attach such attributes) are dropped from the adornment rather than
/// risking lost answers.
MagicProgram MagicRewrite(const std::vector<Rule>& rules,
                          const GoalBinding& goal);

}  // namespace ooint

#endif  // OOINT_RULES_MAGIC_H_
