#include "rules/fact.h"

#include "common/string_util.h"

namespace ooint {

Fact Fact::FromObject(const std::string& concept_name, const Object& object) {
  Fact fact;
  fact.concept_name = concept_name;
  fact.oid = object.oid();
  fact.attrs = object.attributes();
  for (const auto& [name, targets] : object.aggregations()) {
    if (targets.size() == 1) {
      fact.attrs[name] = Value::OfOid(targets.front());
    } else {
      std::vector<Value> elements;
      elements.reserve(targets.size());
      for (const Oid& oid : targets) elements.push_back(Value::OfOid(oid));
      fact.attrs[name] = Value::Set(std::move(elements));
    }
  }
  return fact;
}

std::string Fact::AttrKey() const {
  std::string out = concept_name;
  for (const auto& [name, value] : attrs) {
    out += StrCat("|", name, "=", value.ToString());
  }
  return out;
}

std::string Fact::CanonicalKey() const {
  return StrCat(oid.ToString(), "#", AttrKey());
}

std::string Fact::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [name, value] : attrs) {
    parts.push_back(StrCat(name, ": ", value.ToString()));
  }
  return StrCat("<", oid.empty() ? "-" : oid.ToString(), " : ", concept_name,
                " | ", Join(parts, ", "), ">");
}

}  // namespace ooint
