#ifndef OOINT_RULES_RULE_H_
#define OOINT_RULES_RULE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rules/term.h"

namespace ooint {

/// A derivation rule
///
///   γ_1 & ... & γ_i  ⟸  τ_1 & ... & τ_k
///
/// over O-terms and ordinary predicates (Section 2). Heads are normally a
/// single literal; Principle 4 generates disjunctive heads
/// (<x:B_1> ∨ ... ∨ <x:B_m> ⟸ ...), marked by `disjunctive_head`.
///
/// Appendix B annotations: `head_sources` lists the local schemas that
/// contain the head concept as a base class (the paper's
/// parent^{S2}(x,y) superscripts), enabling the federated evaluator to
/// union local extents with rule-derived tuples.
struct Rule {
  std::vector<Literal> head;
  bool disjunctive_head = false;
  std::vector<Literal> body;

  /// Local schemas holding base extents of the head concept (may be
  /// empty for purely virtual classes).
  std::vector<std::string> head_sources;

  /// Recorded for the integrated schema's semantics but not evaluated —
  /// e.g. the converse completion rule of Principle 4, whose mutual
  /// negation with its twin would make the rule set unstratified.
  bool documentation_only = false;

  /// Free-form provenance, e.g. "principle-3(faculty,student)" or
  /// "derivation(S1(parent,brother) -> S2.uncle)".
  std::string provenance;

  /// "head ⟸ body" rendering (using "<=" as the arrow).
  std::string ToString() const;

  /// The names of all head / body concepts (O-term class names and
  /// predicate names), used for dependency analysis.
  std::vector<std::string> HeadConceptNames() const;
  std::vector<std::string> BodyConceptNames(bool positive_only) const;
};

/// Safety check (Section 5, after Example 11: generated rules "should be
/// checked to see whether they are well-defined, safe, or domain
/// independent and allowed in the presence of negated body predicates"):
///  - every variable in the head occurs in a positive body literal
///    (O-term or predicate; comparison literals do not bind), and
///  - every variable of a negated or comparison literal occurs in a
///    positive body literal.
/// Variables whose names start with '_' are exempt: they are existential
/// (newly derived objects, skolemized by the evaluator).
/// Rules violating either condition are rejected.
Status CheckRuleSafety(const Rule& rule);

}  // namespace ooint

#endif  // OOINT_RULES_RULE_H_
