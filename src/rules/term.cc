#include "rules/term.h"

#include "common/string_util.h"

namespace ooint {

TermArg TermArg::Variable(std::string name) {
  TermArg arg;
  arg.kind = Kind::kVariable;
  arg.var = std::move(name);
  return arg;
}

TermArg TermArg::Constant(Value value) {
  TermArg arg;
  arg.kind = Kind::kConstant;
  arg.constant = std::move(value);
  return arg;
}

TermArg TermArg::Nested(std::vector<AttrDescriptor> descriptors) {
  TermArg arg;
  arg.kind = Kind::kNested;
  arg.nested = std::move(descriptors);
  return arg;
}

std::string TermArg::ToString() const {
  switch (kind) {
    case Kind::kVariable:
      return var;
    case Kind::kConstant:
      return constant.ToString();
    case Kind::kNested: {
      std::vector<std::string> parts;
      parts.reserve(nested.size());
      for (const AttrDescriptor& d : nested) parts.push_back(d.ToString());
      return StrCat("<", Join(parts, ", "), ">");
    }
  }
  return "?";
}

bool operator==(const TermArg& a, const TermArg& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case TermArg::Kind::kVariable:
      return a.var == b.var;
    case TermArg::Kind::kConstant:
      return a.constant == b.constant;
    case TermArg::Kind::kNested:
      return a.nested == b.nested;
  }
  return false;
}

std::string AttrDescriptor::ToString() const {
  return StrCat(attr_is_variable ? StrCat("?", attribute) : attribute, ": ",
                value.ToString());
}

bool operator==(const AttrDescriptor& a, const AttrDescriptor& b) {
  return a.attribute == b.attribute &&
         a.attr_is_variable == b.attr_is_variable && a.value == b.value;
}

std::string OTerm::ToString() const {
  if (attrs.empty()) {
    return StrCat("<", object.ToString(), ": ", class_name, ">");
  }
  std::vector<std::string> parts;
  parts.reserve(attrs.size());
  for (const AttrDescriptor& d : attrs) parts.push_back(d.ToString());
  return StrCat("<", object.ToString(), ": ", class_name, " | ",
                Join(parts, ", "), ">");
}

bool operator==(const OTerm& a, const OTerm& b) {
  return a.object == b.object && a.class_name == b.class_name &&
         a.attrs == b.attrs;
}

Literal Literal::OfOTerm(OTerm term, bool negated) {
  Literal l;
  l.kind = Kind::kOTerm;
  l.negated = negated;
  l.oterm = std::move(term);
  return l;
}

Literal Literal::OfCompare(TermArg lhs, CompareOp op, TermArg rhs) {
  Literal l;
  l.kind = Kind::kCompare;
  l.cmp_lhs = std::move(lhs);
  l.cmp_op = op;
  l.cmp_rhs = std::move(rhs);
  return l;
}

Literal Literal::OfPredicate(std::string name, std::vector<TermArg> args,
                             bool negated) {
  Literal l;
  l.kind = Kind::kPredicate;
  l.negated = negated;
  l.pred_name = std::move(name);
  l.args = std::move(args);
  return l;
}

std::string Literal::ToString() const {
  std::string core;
  switch (kind) {
    case Kind::kOTerm:
      core = oterm.ToString();
      break;
    case Kind::kCompare:
      core = StrCat(cmp_lhs.ToString(), " ", CompareOpName(cmp_op), " ",
                    cmp_rhs.ToString());
      break;
    case Kind::kPredicate: {
      std::vector<std::string> parts;
      parts.reserve(args.size());
      for (const TermArg& a : args) parts.push_back(a.ToString());
      core = StrCat(pred_name, "(", Join(parts, ", "), ")");
      break;
    }
  }
  return negated ? StrCat("not ", core) : core;
}

void CollectVariables(const TermArg& arg, std::vector<std::string>* out) {
  switch (arg.kind) {
    case TermArg::Kind::kVariable:
      out->push_back(arg.var);
      break;
    case TermArg::Kind::kConstant:
      break;
    case TermArg::Kind::kNested:
      for (const AttrDescriptor& d : arg.nested) {
        if (d.attr_is_variable) out->push_back(d.attribute);
        CollectVariables(d.value, out);
      }
      break;
  }
}

void CollectVariables(const OTerm& term, std::vector<std::string>* out) {
  CollectVariables(term.object, out);
  for (const AttrDescriptor& d : term.attrs) {
    if (d.attr_is_variable) out->push_back(d.attribute);
    CollectVariables(d.value, out);
  }
}

void CollectVariables(const Literal& literal, std::vector<std::string>* out) {
  switch (literal.kind) {
    case Literal::Kind::kOTerm:
      CollectVariables(literal.oterm, out);
      break;
    case Literal::Kind::kCompare:
      CollectVariables(literal.cmp_lhs, out);
      CollectVariables(literal.cmp_rhs, out);
      break;
    case Literal::Kind::kPredicate:
      for (const TermArg& a : literal.args) CollectVariables(a, out);
      break;
  }
}

}  // namespace ooint
