#ifndef OOINT_RULES_INCREMENTAL_H_
#define OOINT_RULES_INCREMENTAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/object.h"
#include "rules/evaluator.h"
#include "rules/fact.h"
#include "rules/fact_store.h"
#include "rules/rule.h"

namespace ooint {

/// Accounting of one delta batch (or the running total of all batches):
/// what Explain reports as the live-update story of a federation.
struct DeltaMaintenanceStats {
  /// Batches applied.
  size_t batches = 0;
  /// Base-fact insertions / deletions actually applied (a base fact
  /// contributed by two concept bindings counts twice, mirroring the
  /// from-scratch load).
  size_t base_inserted = 0;
  size_t base_deleted = 0;
  /// Deletions that matched nothing live with base support (deleting a
  /// never-inserted fact is a no-op, not an error).
  size_t noop_deletes = 0;
  /// Facts whose liveness flipped 0 -> 1 (resp. 1 -> 0) net over the
  /// batch, derived and base alike.
  size_t facts_inserted = 0;
  size_t facts_deleted = 0;
  /// DRed bookkeeping: facts of recursive concepts provisionally
  /// deleted on lost support, and how many of those an alternate
  /// derivation revived.
  size_t overdeleted = 0;
  size_t rederived = 0;
  /// Telescoped delete + insert rounds run across all strata.
  size_t rounds = 0;

  void Accumulate(const DeltaMaintenanceStats& o);
  std::string ToString() const;
};

/// One batch of base-fact changes, already translated to global
/// concepts. Inserts apply before deletes, so an insert-then-delete of
/// the same fact inside one batch is a net no-op.
struct BaseDelta {
  std::vector<Fact> inserts;
  std::vector<Fact> deletes;
};

/// Counting / DRed incremental maintenance of an Evaluator's derived
/// fact store (DESIGN.md §4j).
///
/// Adopt() takes over a configured evaluator: it reloads the base
/// extents, runs the initial fixpoint through the counting machinery,
/// and installs the liveness side column (the store stays append-only;
/// logically deleted facts are masked out of FactsOf/Query and OID
/// resolution). Each ApplyBaseDelta / ApplyExtentDelta then maintains
/// the derived store so that, at every batch boundary, the live fact
/// set is identical to a from-scratch fixpoint over the current base
/// state — the contract conformance family 10 (delta-vs-rebuild)
/// checks.
///
/// Algorithm: per-derivation counting with telescoped semi-naive
/// rounds. Every derivation (rule body solution) of a fact is counted
/// exactly once; deletions decrement through delete-rounds whose pivot
/// worlds shrink monotonically, insertions increment symmetrically,
/// and negation flips (a lower-stratum fact appearing/disappearing
/// under a negated literal) pivot on the flipped fact. Facts of
/// concepts on a positive recursive cycle use DRed: any lost support
/// with no base support over-deletes the fact, and a single
/// rederivation pass against the frozen post-delete world revives
/// facts that still have an external derivation (counts recomputed
/// exactly). Facts of non-recursive concepts die exactly when their
/// last count drops.
///
/// The engine drives the evaluator's own join machinery (SolveBody
/// with IncrementalHooks), so match semantics — set-valued elementwise
/// matching, schematic attribute-name variables, nested descriptor
/// navigation, data-mapped OID identity — are inherited, not
/// reimplemented. Single-threaded; callers serialize batches against
/// queries (FsmClient holds its data lock exclusively here).
class IncrementalEvaluator {
 public:
  /// Takes over `ev` (which must be fully configured: sources, concept
  /// bindings, rules). Any previous evaluation state is discarded; the
  /// base extents are re-fetched serially and strictly (a failing
  /// source fails the adoption). `ev` must outlive the engine.
  static Result<std::unique_ptr<IncrementalEvaluator>> Adopt(Evaluator* ev);

  ~IncrementalEvaluator();

  IncrementalEvaluator(const IncrementalEvaluator&) = delete;
  IncrementalEvaluator& operator=(const IncrementalEvaluator&) = delete;

  /// Applies one batch of base-fact changes and propagates through all
  /// strata. Returns the batch's stats.
  Result<DeltaMaintenanceStats> ApplyBaseDelta(const BaseDelta& delta);

  /// Object-level convenience: translates inserted / deleted objects of
  /// source `schema_name` into base facts via the evaluator's concept
  /// bindings (an object contributes one fact per binding whose class
  /// is an ancestor-or-self of the object's class, exactly mirroring
  /// what a from-scratch extent load would produce) and applies them.
  /// Deleted objects must be the pre-removal copies (their attributes
  /// drive fact identity).
  Result<DeltaMaintenanceStats> ApplyExtentDelta(
      const std::string& schema_name, const std::vector<Object>& inserted,
      const std::vector<Object>& deleted);

  /// Running totals since Adopt (initial load not included in batches).
  const DeltaMaintenanceStats& cumulative() const { return cumulative_; }

  /// Liveness of one stored fact (facts the store never saw are dead).
  bool IsLive(FactId id) const {
    return id < live_.size() && live_[id] != 0;
  }
  /// The liveness side column (indexed by FactId).
  const std::vector<std::uint8_t>& liveness() const { return live_; }

  /// Number of currently live facts.
  size_t live_count() const;

  /// Fault injection for the harness's mutation check: when set, the
  /// derivation-count decrement keeps the last derivation alive (the
  /// classic "> 1" vs ">= 1" off-by-one), so deletions under-propagate
  /// and the delta store retains facts a rebuild would not derive —
  /// which conformance family 10 must catch and shrink.
  static void set_decrement_bug_for_testing(bool on) {
    decrement_bug_.store(on, std::memory_order_relaxed);
  }

 private:
  explicit IncrementalEvaluator(Evaluator* ev) : ev_(ev) {}

  /// How unifying a fact against a rule head went.
  enum class HeadUnify { kBindings, kNoMatch, kUnsupported };

  /// Which elementary-change event a pivoted join is processing. The
  /// telescoping is exact because every batch follows ONE total order
  /// of elementary changes: negation flip-downs (a lower-stratum fact
  /// born under a negated literal) first, then the deletion rounds,
  /// then the insertion rounds, then flip-ups (a blocking fact died),
  /// then the cascades flip-ups set off. Each mode's factor worlds show
  /// exactly the changes ordered before its event.
  enum class PivotMode {
    kDeleteRound,    // positive deletion event, round-telescoped
    kFlipDown,       // negation loss: before everything else
    kInsertRound,    // positive insertion event, pre-flip
    kInsertPostFlip, // insertion cascade after the flip-ups
    kFlipUp,         // negation gain: after all insertion rounds
  };

  /// Per-stratum rule plan: body positions of positive / negated fact
  /// literals with their concept names.
  struct Plan {
    const Rule* rule;
    std::vector<std::pair<size_t, std::string>> positive;
    std::vector<std::pair<size_t, std::string>> negated;
  };

  FactStore& store() { return ev_->store_; }
  const FactStore& store() const { return ev_->store_; }

  /// Grows the side columns to cover FactId `id`.
  void Ensure(FactId id);

  /// Liveness transitions, with net-change bookkeeping for the batch.
  void Kill(FactId id);
  void Birth(FactId id);

  /// True when `concept_name` sits on a positive head<-body rule cycle.
  bool IsRecursive(const std::string& concept_name) const {
    return recursive_.count(concept_name) > 0;
  }
  int StratumOf(const std::string& concept_name) const;

  Status Initialize();
  Status LoadBase();
  void ComputeRecursion();
  std::vector<Plan> PlansOf(int stratum) const;

  /// Applies one batch body (shared by Adopt's initial load — where the
  /// whole base state is the insert set — and ApplyBaseDelta). `initial`
  /// additionally fires rules without positive fact literals once
  /// (their derivations never change after adoption except through
  /// negation flips, which the batch path covers).
  Status RunBatch(const BaseDelta& delta, bool initial,
                  DeltaMaintenanceStats* stats);

  Status DeletePhase(int stratum, const std::vector<Plan>& plans,
                     std::map<FactId, std::uint32_t>* death_round,
                     std::vector<FactId>* overdeleted,
                     DeltaMaintenanceStats* stats);
  Status RederivePhase(int stratum, const std::vector<Plan>& plans,
                       const std::vector<FactId>& overdeleted,
                       std::vector<FactId>* revived,
                       DeltaMaintenanceStats* stats);
  Status InsertPhase(int stratum, const std::vector<Plan>& plans,
                     const std::vector<FactId>& revived, bool initial,
                     DeltaMaintenanceStats* stats);

  /// Solves `rule` with body position `pos` pinned to `pivot` under the
  /// worlds `mode` prescribes; `round_of` carries the round structure
  /// (death rounds when deleting, birth rounds when inserting).
  Status SolvePivot(const Rule& rule, size_t pos, FactId pivot,
                    std::uint32_t round, PivotMode mode,
                    const std::map<FactId, std::uint32_t>& round_of,
                    std::vector<Evaluator::Solution>* solutions);

  /// Solves `rule` from pre-seeded `bindings`, each body position
  /// restricted by `admit` (the rederivation pass's frozen worlds).
  Status SolveSeeded(const Rule& rule, const Bindings& seed,
                     const std::function<bool(size_t, FactId)>& admit,
                     std::vector<Evaluator::Solution>* solutions);

  /// The "union" world old ∪ live: what a negated literal sees during
  /// the deletion / pre-flip insertion rounds (its flip-down already
  /// applied — born facts visible — its flip-up not yet — died facts
  /// still visible).
  bool InUnion(FactId id) const {
    return (id < old_live_.size() && old_live_[id] != 0) || IsLive(id);
  }

  /// FactIds of `world`-admitted facts matching the fact literal
  /// `literal` (its pattern, negation flag ignored) under `bindings`.
  void MatchingFacts(const Literal& literal, const Bindings& bindings,
                     const std::vector<std::uint8_t>& world,
                     std::vector<FactId>* out) const;

  /// Unifies stored fact `fact` with `rule`'s head; on kBindings,
  /// `seed` holds the variable bindings the head structure pins.
  HeadUnify UnifyHead(const Rule& rule, const Fact& fact,
                      const FactMatcher& matcher, Bindings* seed) const;

  /// One decremented derivation of `target` during delete round
  /// `round`: updates counts, applies the exact (non-recursive) or
  /// DRed (recursive) death rule, schedules the death for round + 1.
  void DecrementDerivation(FactId target, std::uint32_t round,
                           std::map<FactId, std::uint32_t>* death_round,
                           std::vector<FactId>* next,
                           std::vector<FactId>* overdeleted,
                           DeltaMaintenanceStats* stats);

  /// One new derivation during insert round `round`: interns (or
  /// revives) the head fact, bumps its count, queues its birth for the
  /// round boundary.
  void IncrementDerivation(Fact fact, std::uint32_t round,
                           std::map<FactId, std::uint32_t>* birth_round,
                           std::vector<FactId>* born_queue);

  /// Derivation count of `fact_id` against `world` (exact recompute;
  /// the rederivation pass). `full_solutions` caches the per-rule
  /// unrestricted fallback across facts of one pass.
  Result<std::int64_t> CountDerivations(
      FactId fact_id, const std::vector<Plan>& plans,
      const std::vector<std::uint8_t>& world,
      std::map<const Rule*, std::vector<FactId>>* full_solutions);

  /// Phase-appropriate live resolver for nested-descriptor navigation:
  /// the minimal admitted fact carrying `oid`, base-supported facts
  /// first (mirrors the classic store's first-inserted-wins contract,
  /// where base extents load before derived facts).
  FactView ResolveOid(const Oid& oid) const;

  Evaluator* ev_;

  /// Side columns, indexed by FactId. `live_` is authoritative for
  /// membership; counts justify it (live iff base_count > 0 or
  /// deriv_count > 0, except transiently inside a batch).
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> base_count_;
  std::vector<std::int64_t> deriv_count_;

  /// Static program structure, computed at Adopt.
  std::map<std::string, int> strata_;
  int max_stratum_ = 0;
  std::set<std::string> recursive_;

  /// Per-batch state.
  std::vector<std::uint8_t> old_live_;
  std::set<FactId> net_born_;
  std::set<FactId> net_dead_;
  /// World the OID resolver reads: null = current `live_`; the delete
  /// phase points it at `old_live_`, rederivation at the frozen world.
  const std::vector<std::uint8_t>* resolver_world_ = nullptr;
  /// Over-deleted facts parked for the rederivation pass of their
  /// concept's stratum (phase-0 base deletions of recursive concepts
  /// land here before their stratum runs).
  std::map<int, std::vector<FactId>> parked_overdeleted_;

  DeltaMaintenanceStats cumulative_;
  /// Scratch counter sink for engine-driven joins (keeps the adopted
  /// evaluator's own query counters unpolluted).
  mutable Evaluator::Stats scratch_stats_;
  /// Join-kernel scratch for the engine's serial pivot/seeded joins.
  mutable JoinScratch join_scratch_;
  /// Pivot-join plan cache, keyed by (rule address, pivot position).
  /// Invalidated wholesale on rule deltas (AddRule/RemoveRule change
  /// the program) and on batch boundaries where extents moved enough
  /// to matter — cheap to rebuild, so Apply simply clears it.
  mutable std::map<std::pair<const Rule*, size_t>, BodyPlan> plan_cache_;

  static std::atomic<bool> decrement_bug_;
};

}  // namespace ooint

#endif  // OOINT_RULES_INCREMENTAL_H_
