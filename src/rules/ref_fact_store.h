#ifndef OOINT_RULES_REF_FACT_STORE_H_
#define OOINT_RULES_REF_FACT_STORE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "rules/fact.h"
#include "rules/fact_store.h"

namespace ooint {

/// The pre-columnar FactStore, kept verbatim as a reference
/// implementation: a deque of materialized Facts plus unordered-map
/// hash indexes. It is the differential-testing baseline for the
/// columnar store (the old-vs-columnar conformance oracle and the unit
/// differential test replay identical insert sequences into both and
/// compare every observable), and bench_storage measures its bytes/fact
/// as the denominator of the memory-reduction ratio.
///
/// Contract (identical to the old FactStore, bug-compat quirks
/// included): hashed exact de-duplication on (concept, oid, attrs);
/// per-concept extents in insertion order; first-inserted precedence on
/// OID collisions; the (concept, attribute, value) index keyed on
/// 64-bit content hashes with callers re-verifying candidates.
class ReferenceFactStore {
 public:
  ReferenceFactStore() = default;

  ConceptId InternConcept(const std::string& name);
  ConceptId FindConcept(const std::string& name) const;
  const std::string& ConceptName(ConceptId id) const;
  size_t concept_count() const { return concept_names_.size(); }

  /// Inserts `fact` unless an identical fact (concept, oid, attrs) is
  /// already stored. Returns the stored fact, or nullptr on duplicate.
  const Fact* Insert(Fact fact);

  size_t size() const { return all_.size(); }

  const std::vector<const Fact*>& FactsOf(ConceptId id) const;
  const std::vector<const Fact*>& FactsOf(const std::string& name) const;
  size_t CountOf(ConceptId id) const;

  const Fact* FactAt(ConceptId id, std::uint32_t ordinal) const {
    return FactsOf(id)[ordinal];
  }

  const Fact* FindByOid(const Oid& oid) const;
  const Fact* FindByOid(const Oid& oid, ConceptId concept_id) const;

  /// Hash-bucket probe; may contain collision false positives, callers
  /// re-verify. Returns nullptr when no fact hashes like the value.
  const std::vector<std::uint32_t>* Probe(ConceptId concept_id,
                                          const std::string& attr,
                                          const Value& value) const;

  void ProbeOid(ConceptId concept_id, const Oid& oid,
                std::vector<std::uint32_t>* out) const;

  void Clear();

  /// Estimated heap footprint (container capacities plus per-node
  /// overhead estimates for the node-based containers) — the bytes/fact
  /// denominator reported by bench_storage.
  size_t ApproxBytes() const;

 private:
  struct OidEntry {
    ConceptId concept_id;
    std::uint32_t ordinal;
  };

  void IndexAttr(ConceptId concept_id, std::uint32_t ordinal,
                 const std::string& attr, const Value& value);

  std::deque<Fact> all_;  // stable storage
  std::vector<std::string> concept_names_;
  std::unordered_map<std::string, ConceptId> concept_ids_;
  std::vector<std::vector<const Fact*>> by_concept_;
  std::unordered_map<std::uint64_t, std::vector<const Fact*>> dedup_;
  std::unordered_map<std::uint64_t, std::vector<OidEntry>> by_oid_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_attr_;
};

}  // namespace ooint

#endif  // OOINT_RULES_REF_FACT_STORE_H_
