#ifndef OOINT_RULES_EVALUATOR_H_
#define OOINT_RULES_EVALUATOR_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "datamap/data_mapping.h"
#include "model/instance_store.h"
#include "rules/fact.h"
#include "rules/matcher.h"
#include "rules/rule.h"

namespace ooint {

/// Bottom-up evaluator of the "virtual" rules the integration principles
/// generate (Section 5, Appendix B).
///
/// The evaluator is federated: base facts are never copied out of the
/// component databases ahead of time conceptually — each registered
/// (schema, store) pair is consulted through concept_name bindings, which
/// declare that a global concept_name name (e.g. "IS(S1.person)") is
/// populated by the extent of a local class ("person" in store S1).
/// Rules then derive virtual-class membership and derived objects on
/// top. Evaluation runs stratum by stratum (stratified negation: the
/// ¬IS_AB patterns of Principles 3 and 4) to a fixpoint.
///
/// Equality between two OID values consults the DataMappingRegistry when
/// one is configured — the paper's "oi1 = oi2 (in terms of data
/// mapping)" cross-database identity.
///
/// Disjunctive-head rules (Principle 4's general form) are constraints,
/// not definite clauses; AddRule rejects them with kUnsupported so the
/// caller can keep them documentation-only.
class Evaluator {
 public:
  Evaluator() = default;

  /// Registers a component database. `store` must outlive the evaluator.
  void AddSource(const std::string& schema_name, const InstanceStore* store);

  /// Declares that facts of local class `class_name` in source
  /// `schema_name` populate the global concept_name `concept_name`.
  Status BindConcept(const std::string& concept_name,
                     const std::string& schema_name,
                     const std::string& class_name);

  /// Adds a definite rule (checked for safety).
  Status AddRule(Rule rule);

  /// Optional cross-database OID identity (see class comment).
  void SetDataMappings(const DataMappingRegistry* registry) {
    mappings_ = registry;
  }

  /// Runs stratified fixpoint evaluation. Idempotent until rules or
  /// sources change (call Reset() to re-run).
  Status Evaluate();
  void Reset();

  /// All facts of `concept_name` (base + derived). Evaluate() must have run.
  std::vector<const Fact*> FactsOf(const std::string& concept_name) const;

  /// Matches `pattern` against the evaluated facts and returns all
  /// variable bindings — the query interface ("?-uncle(John, y)" becomes
  /// a pattern <_ : uncle | Ussn#: "John", niece_nephew: y>).
  Result<std::vector<Bindings>> Query(const OTerm& pattern) const;

  struct Stats {
    size_t base_facts = 0;
    size_t derived_facts = 0;
    size_t rule_applications = 0;
    size_t iterations = 0;
    size_t strata = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Source {
    std::string schema_name;
    const InstanceStore* store;
  };
  struct ConceptBinding {
    std::string concept_name;
    size_t source_index;
    std::string class_name;
  };

  /// Loads base facts for every bound concept_name into facts_.
  Status LoadBaseFacts();
  /// Assigns strata to concepts; error on negation cycles.
  Status Stratify(std::map<std::string, int>* strata, int* max_stratum) const;

  /// One body solution: the variable bindings plus the facts matched by
  /// positive O-term literals (used to merge attributes into derived
  /// facts about the same entity).
  struct Solution {
    Bindings bindings;
    std::vector<const Fact*> matched;
  };

  /// The shared unification machinery, wired to this evaluator's fact
  /// universe and data mappings.
  FactMatcher MakeMatcher() const;

  /// All current facts of `concept_name` (stable pointers).
  const std::vector<const Fact*>& CurrentFacts(
      const std::string& concept_name) const;

  /// Records a fact if it is new; returns whether anything was added.
  bool InsertFact(Fact fact);

  /// Evaluates one rule against current facts; appends newly derived
  /// facts (not yet inserted) to `new_facts`.
  Status ApplyRule(const Rule& rule, std::vector<Fact>* new_facts);

  /// Joins the rule body left-to-right.
  Status SolveBody(const FactMatcher& matcher,
                   const std::vector<Literal>& body, size_t index,
                   Solution solution, std::vector<Solution>* solutions) const;

  const Fact* FindByOid(const Oid& oid) const;

  std::vector<Source> sources_;
  std::vector<ConceptBinding> bindings_decl_;
  std::vector<Rule> rules_;
  const DataMappingRegistry* mappings_ = nullptr;

  bool evaluated_ = false;
  std::deque<Fact> all_facts_;  // stable storage
  std::map<std::string, std::vector<const Fact*>> facts_;
  std::set<std::string> fact_keys_;
  std::map<std::string, std::set<std::string>> skolem_attr_keys_;
  std::map<Oid, const Fact*> by_oid_;
  std::uint64_t skolem_counter_ = 0;
  Stats stats_;
};

}  // namespace ooint

#endif  // OOINT_RULES_EVALUATOR_H_
