#ifndef OOINT_RULES_EVALUATOR_H_
#define OOINT_RULES_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "datamap/data_mapping.h"
#include "model/instance_store.h"
#include "rules/fact.h"
#include "rules/fact_store.h"
#include "rules/join_kernel.h"
#include "rules/matcher.h"
#include "rules/planner.h"
#include "rules/result_pipeline.h"
#include "rules/rule.h"

namespace ooint {

/// Fixpoint strategy. kSemiNaive (the default) evaluates each rule only
/// against body instantiations that touch at least one fact derived in
/// the previous round (delta-driven, with bound-first indexed joins);
/// kNaive is the textbook re-evaluate-everything loop kept as the
/// differential-testing oracle — both derive the same fact sets.
enum class EvalStrategy { kSemiNaive, kNaive };

/// A fallible handle to one component database's extension. The direct
/// in-process InstanceStore is one implementation; the federation layer
/// provides another (AgentConnection) that models a remote, failure-prone
/// agent with deadlines, retries and a circuit breaker. Schema metadata
/// is assumed cached at connection time and is therefore infallible;
/// every *extent read* can fail.
class ExtentSource {
 public:
  virtual ~ExtentSource() = default;

  /// The source's (finalized) local schema.
  virtual const Schema& schema() const = 0;

  /// One extent read: every object of `class_name`, including instances
  /// of transitive subclasses. Pointers remain owned by the source and
  /// must stay valid until the next mutation of the underlying store.
  virtual Result<std::vector<const Object*>> FetchExtent(
      const std::string& class_name) = 0;

  /// Token-aware extent read: sources that wait (AgentConnection) charge
  /// every virtual wait to `token` and derive per-attempt deadlines from
  /// its remaining budget, so one query-wide deadline bounds the whole
  /// fetch including retries and backoff. The token is a *per-call*
  /// parameter — connections are shared across concurrent queries, each
  /// carrying its own token — and the default implementation ignores it
  /// (instantaneous sources have nothing to charge).
  virtual Result<std::vector<const Object*>> FetchExtent(
      const std::string& class_name, const CancelToken& token) {
    (void)token;
    return FetchExtent(class_name);
  }
};

/// One extent read of a concurrent batch (see FetchExtentsOverlapped).
struct ExtentRequest {
  ExtentSource* source = nullptr;
  std::string class_name;
};

/// The answer to one ExtentRequest. Not a Result<> so a whole batch can
/// be preallocated; `status` is OK iff `objects` is meaningful.
struct ExtentReply {
  Status status;
  std::vector<const Object*> objects;
  /// Real wall-clock milliseconds the fetch took (retries, backoff and
  /// scaled sleeps included) — the per-agent cost Explain aggregates
  /// into overlap savings.
  double wall_ms = 0;
  /// False when the fetch was never issued because the batch's cancel
  /// token had already expired — the source was not contacted, so the
  /// read does not count toward Stats::extents_fetched.
  bool issued = false;
};

/// Issues the batch concurrently on `pool` (serially when `pool` is
/// null or single-threaded) and returns replies in request order.
/// Requests against the *same* source are grouped into one task and run
/// serially in request order — a source's fault schedule, retry stream
/// and breaker state then evolve exactly as under a serial fetch, which
/// is what keeps parallel federations bit-identical to serial ones;
/// only distinct sources overlap. `token` bounds the whole batch: each
/// fetch checks it immediately before issuing (an expired token yields
/// kDeadlineExceeded without contacting the source) and the token is
/// passed through to the sources so their waits charge against it.
std::vector<ExtentReply> FetchExtentsOverlapped(
    const std::vector<ExtentRequest>& requests, ThreadPool* pool,
    const CancelToken& token = {});

/// What Evaluate() does when an extent read fails.
enum class FailurePolicy {
  /// Fail fast: the first source error aborts evaluation and is
  /// returned to the caller unchanged.
  kStrict,
  /// Keep going: evaluation proceeds over the reachable sources and the
  /// result is a *sound but possibly incomplete* answer, described by
  /// DegradedInfo.
  kPartial,
};

/// The degradation record of a partial-mode evaluation: which agents
/// were skipped (and the status that condemned them) and which global
/// concepts are therefore possibly incomplete — the concepts bound to a
/// skipped agent plus everything derivable from them through rules.
struct DegradedInfo {
  struct SkippedAgent {
    std::string schema_name;
    /// The final status of the failed extent read (after any retries).
    Status status;
  };
  /// One entry per skipped agent (first failing status wins).
  std::vector<SkippedAgent> skipped;
  /// Sorted, deduplicated names of possibly-incomplete global concepts.
  /// Concepts reached through a *negated* body literal are included
  /// too: a missing fact can then make the partial answer unsound, so
  /// such concepts are also listed in `unsound_concepts`.
  std::vector<std::string> incomplete_concepts;
  /// Concepts whose partial extent may contain facts the fault-free
  /// evaluation would not derive (incompleteness crossed a negation).
  std::vector<std::string> unsound_concepts;
  /// Agents a demand-driven query never contacted because no concept of
  /// theirs is reachable from the goal (see Evaluator::EvaluateDemand).
  /// Distinct from `skipped`: pruning costs nothing and loses nothing —
  /// the answer is exactly what a full evaluation would return for the
  /// goal — so pruned agents never appear in incomplete_concepts.
  std::vector<std::string> pruned_agents;
  /// True when the query's deadline (or an explicit cancellation)
  /// stopped evaluation early under FailurePolicy::kPartial: derivation
  /// halted at a round boundary, so the answer is a *sound subset* of
  /// the unbounded answer (stratified negation only ever reads
  /// completed strata — truncation can lose facts, never invent them).
  /// A third category, disjoint from fault-skips (`skipped`: an agent
  /// misbehaved) and relevance-pruning (`pruned_agents`: the query
  /// provably doesn't need the agent): here the *query* ran out of
  /// time, no agent is at fault, and the loss is bounded by where the
  /// clock stopped.
  bool deadline_truncated = false;
  /// Sorted, deduplicated names of concepts whose extents may be
  /// missing facts because of the truncation: the bound concepts whose
  /// fetch never completed plus every concept heading a rule in a
  /// stratum the fixpoint did not finish.
  std::vector<std::string> truncated_concepts;

  bool degraded() const { return !skipped.empty() || deadline_truncated; }
  bool SkippedAgentNamed(const std::string& schema_name) const;
  std::string ToString() const;
};

/// Bottom-up evaluator of the "virtual" rules the integration principles
/// generate (Section 5, Appendix B).
///
/// The evaluator is federated: base facts are never copied out of the
/// component databases ahead of time conceptually — each registered
/// (schema, store) pair is consulted through concept_name bindings, which
/// declare that a global concept_name name (e.g. "IS(S1.person)") is
/// populated by the extent of a local class ("person" in store S1).
/// Rules then derive virtual-class membership and derived objects on
/// top. Evaluation runs stratum by stratum (stratified negation: the
/// ¬IS_AB patterns of Principles 3 and 4) to a fixpoint.
///
/// The fixpoint is semi-naive: per-concept_id delta windows track the facts
/// each round added, and every rule application constrains one positive
/// body literal to the delta while the join order is chosen bound-first
/// against the FactStore's (concept_id, attribute, value) and OID hash
/// indexes (see DESIGN.md "Evaluation strategy").
///
/// Equality between two OID values consults the DataMappingRegistry when
/// one is configured — the paper's "oi1 = oi2 (in terms of data
/// mapping)" cross-database identity.
///
/// Disjunctive-head rules (Principle 4's general form) are constraints,
/// not definite clauses; AddRule rejects them with kUnsupported so the
/// caller can keep them documentation-only.
class Evaluator {
 public:
  Evaluator() = default;

  /// Registers a component database through a direct in-process handle.
  /// `store` must outlive the evaluator.
  void AddSource(const std::string& schema_name, const InstanceStore* store);

  /// Registers a component database through a fallible connection the
  /// evaluator takes ownership of (the federation's AgentConnection).
  void AddSource(const std::string& schema_name,
                 std::unique_ptr<ExtentSource> source);

  /// Registers a component database through a borrowed connection —
  /// `source` must outlive the evaluator. Used by EvaluateDemand() to
  /// share the parent's agent connections (and their breaker state) with
  /// the per-query sub-evaluator.
  void AddBorrowedSource(const std::string& schema_name, ExtentSource* source);

  /// Adds a ground fact loaded alongside the base extents on the next
  /// Evaluate() — the demand path plants magic seed facts this way.
  void AddFact(Fact fact);

  /// Declares that facts of local class `class_name` in source
  /// `schema_name` populate the global concept_name `concept_name`.
  Status BindConcept(const std::string& concept_name,
                     const std::string& schema_name,
                     const std::string& class_name);

  /// Adds a definite rule (checked for safety).
  Status AddRule(Rule rule);

  /// Optional cross-database OID identity (see class comment).
  void SetDataMappings(const DataMappingRegistry* registry) {
    mappings_ = registry;
  }

  void set_strategy(EvalStrategy strategy) { strategy_ = strategy; }
  EvalStrategy strategy() const { return strategy_; }

  /// Shares a worker pool with the evaluator. With a pool of two or
  /// more threads, Evaluate() overlaps extent fetches across distinct
  /// sources and runs each semi-naive round's rule applications in
  /// parallel (solve phases read a frozen store snapshot; all insertion
  /// happens in a serial, deterministically ordered merge — see
  /// DESIGN.md "Parallel execution model"). Derived fact sets are
  /// identical to the serial engine's. A null or single-thread pool is
  /// today's serial behaviour; the kNaive oracle always runs serially.
  /// EvaluateDemand's sub-evaluators inherit the pool.
  void set_thread_pool(std::shared_ptr<ThreadPool> pool) {
    pool_ = std::move(pool);
  }
  const std::shared_ptr<ThreadPool>& thread_pool() const { return pool_; }
  int thread_count() const { return pool_ == nullptr ? 1 : pool_->size(); }

  /// Strict (default) fails fast on the first unreachable source;
  /// partial evaluates what it can and records the rest in degraded().
  void set_failure_policy(FailurePolicy policy) { failure_policy_ = policy; }
  FailurePolicy failure_policy() const { return failure_policy_; }

  /// How rule bodies are ordered (rules/planner.h). kCostBased (the
  /// default) precomputes a per-(rule, stratum) plan from extent
  /// estimates; kFixedSip forces left-to-right with indexes on — the
  /// conformance family-12 foil. Demand sub-evaluators inherit it.
  void set_planner_mode(PlannerMode mode) { planner_mode_ = mode; }
  PlannerMode planner_mode() const { return planner_mode_; }

  /// Toggles the batch join kernels (rules/join_kernel.h). Off, literal
  /// expansion falls back to the historical per-fact probe loop — the
  /// bench_join baseline. Derived fact sets are identical either way.
  void set_join_kernel_enabled(bool enabled) { use_join_kernel_ = enabled; }
  bool join_kernel_enabled() const { return use_join_kernel_; }

  /// End-to-end deadline / cancellation for the next Evaluate(). The
  /// token is checked before every extent fetch and at every fixpoint
  /// round boundary (each round charges CancelToken::kRoundChargeMs;
  /// connections charge their virtual waits), so an expired or
  /// cancelled token unwinds within one bounded step. Under kStrict the
  /// unwind returns kDeadlineExceeded and leaves the store bit-identical
  /// to never-started (Reset() on the way out); under kPartial the
  /// answer so far is returned with degraded().deadline_truncated set.
  /// A token already expired at Evaluate() entry fails with
  /// kDeadlineExceeded before fetching anything, under either policy.
  /// The default token never expires.
  void set_cancel_token(CancelToken token) { token_ = std::move(token); }
  const CancelToken& cancel_token() const { return token_; }

  /// The degradation record of the last Evaluate() (empty when every
  /// source answered, or under FailurePolicy::kStrict).
  const DegradedInfo& degraded() const { return degraded_; }

  /// Runs stratified fixpoint evaluation. Idempotent until rules or
  /// sources change (call Reset() to re-run).
  Status Evaluate();
  void Reset();

  /// All facts of `concept_name` (base + derived). Evaluate() must have run.
  std::vector<const Fact*> FactsOf(const std::string& concept_name) const;

  /// Matches `pattern` against the evaluated facts and returns all
  /// variable bindings — the query interface ("?-uncle(John, y)" becomes
  /// a pattern <_ : uncle | Ussn#: "John", niece_nephew: y>).
  Result<std::vector<Bindings>> Query(const OTerm& pattern) const;

  /// Streaming variant of Query(): a pull source yielding the pattern's
  /// match rows one at a time instead of materializing the full answer
  /// vector. Candidates come from the same probe-or-scan choice as
  /// Query() (a PostingsCursor snapshot of the best value index, or the
  /// concept's ordinal range), and each Next() unifies one candidate
  /// fact zero-copy off the columnar store. Unlike Query() the stream
  /// does NOT de-duplicate — set attributes can match one fact several
  /// ways — so consumers needing Query()'s distinct semantics run the
  /// stream through a ResultPipeline with `distinct` set (the serving
  /// layer always does). The source borrows this evaluator: it must not
  /// outlive it, and the store must not gain facts while the stream is
  /// open (the serving layer pins a snapshot or fails the cursor with
  /// an epoch error — see FsmClient::OpenCursor).
  Result<std::unique_ptr<RowSource>> OpenQueryStream(
      const OTerm& pattern) const;

  struct Stats {
    size_t base_facts = 0;
    size_t derived_facts = 0;
    size_t rule_applications = 0;
    size_t iterations = 0;
    size_t strata = 0;
    /// Index *lookups* (Probe/ProbeOid calls answering a literal
    /// expansion) vs. literal expansions answered by scanning a
    /// concept_id extent (or delta window).
    size_t index_probes = 0;
    size_t index_scans = 0;
    /// Postings decoded off PostingsCursors (cursor advance steps) —
    /// the per-posting cost index_probes used to mislabel.
    size_t cursor_steps = 0;
    /// Join-kernel work: linear-merge/bitmap operations and galloping
    /// hops of the postings intersections (see rules/join_kernel.h).
    size_t merge_steps = 0;
    size_t gallop_steps = 0;
    /// Body plans where cost estimates overrode the connectivity SIP
    /// (see rules/planner.h).
    size_t plan_reorders = 0;
    /// Total delta facts fed into each fixpoint round, in order.
    std::vector<size_t> delta_sizes;
    /// Wall-clock milliseconds spent per stratum.
    std::vector<double> stratum_ms;
    /// Extent reads actually issued against sources (one per bound
    /// concept that was not relevance-pruned).
    size_t extents_fetched = 0;
    /// Overlapped-fetch accounting (zero on the serial path): the sum
    /// of per-request wall times vs. the wall time of the whole batch.
    /// Their difference is the latency the overlap hid.
    double fetch_ms_sum = 0;
    double fetch_wall_ms = 0;

    /// Accumulates another Stats' join counters (task-local and
    /// query-local merges).
    void AddJoinCounters(const Stats& other) {
      index_probes += other.index_probes;
      index_scans += other.index_scans;
      cursor_steps += other.cursor_steps;
      merge_steps += other.merge_steps;
      gallop_steps += other.gallop_steps;
      plan_reorders += other.plan_reorders;
    }
  };
  const Stats& stats() const { return stats_; }

  /// Everything a demand-driven query returns. `sub` owns the fact
  /// universe `goal_facts` point into — keep the outcome alive as long
  /// as the pointers are used.
  struct DemandOutcome {
    std::vector<Bindings> rows;
    std::vector<const Fact*> goal_facts;
    /// Whether the magic-set rewrite ran (vs. relevance-only fallback),
    /// the goal's adornment, and — when not applied — why.
    bool magic_applied = false;
    std::string goal_adornment;
    std::string fallback_reason;
    /// Schemas whose extents the query provably cannot touch; their
    /// sources were never contacted.
    std::vector<std::string> pruned_agents;
    /// Degradation of the sub-evaluation (fault-skipped agents etc.),
    /// with pruned_agents mirrored in and magic predicates filtered out.
    DegradedInfo degraded;
    Stats stats;
    std::shared_ptr<Evaluator> sub;
  };

  /// Goal-directed evaluation of one query pattern: rewrites the rule
  /// program with magic sets (rules/magic.h), binds only the concepts
  /// reachable from the goal — so irrelevant agents are never fetched
  /// from — and runs the fixpoint in a private sub-evaluator that
  /// borrows this evaluator's sources. Falls back to evaluating the
  /// reachable subprogram unrewritten when the rewrite cannot adorn the
  /// program soundly (outcome.fallback_reason records why). Answers are
  /// always exactly Query(pattern) under a full Evaluate().
  ///
  /// Does not touch this evaluator's own fact store or stats; usable
  /// whether or not Evaluate() has run.
  ///
  /// `token` is the query's deadline/cancellation handle (see
  /// set_cancel_token); it is a parameter — not inherited from this
  /// evaluator — because concurrent queries share one parent evaluator
  /// while each carries its own deadline. A token already expired at
  /// entry returns kDeadlineExceeded before contacting any source.
  Result<DemandOutcome> EvaluateDemand(const OTerm& pattern,
                                       const CancelToken& token = {}) const;

  /// The evaluated fact universe (read-only) — the conformance
  /// harness's store-differential oracle replays it into reference and
  /// columnar stores.
  const FactStore& fact_store() const { return store_; }

 private:
  /// The incremental maintenance engine (rules/incremental.h) drives the
  /// evaluator's private join machinery (SolveBody-equivalent candidate
  /// enumeration, head construction, the packed store) and installs the
  /// liveness side column — it is an alternate fixpoint driver, not a
  /// client, hence the friendship.
  friend class IncrementalEvaluator;

  struct Source {
    std::string schema_name;
    /// Borrowed view; points at `owned` when the evaluator owns it.
    ExtentSource* source;
    std::unique_ptr<ExtentSource> owned;
  };
  struct ConceptBinding {
    std::string concept_name;
    size_t source_index;
    std::string class_name;
  };

  /// Loads base facts for every bound concept_name into the store.
  /// Under FailurePolicy::kPartial a failing extent read marks the
  /// agent skipped (degraded_) instead of aborting.
  Status LoadBaseFacts();

  /// Fills degraded_.incomplete_concepts / unsound_concepts: the
  /// closure of `direct` under "appears in the body of a rule" edges,
  /// tracking whether the path crossed a negated literal.
  void PropagateIncompleteness(const std::map<std::string, bool>& direct);
  /// Assigns strata to concepts; error on negation cycles.
  Status Stratify(std::map<std::string, int>* strata, int* max_stratum) const;

  /// One body solution: the variable bindings plus the facts matched by
  /// positive O-term literals, slotted by body position so attribute
  /// merging is independent of the join order chosen at runtime.
  struct Solution {
    Bindings bindings;
    std::vector<FactView> matched;  // body.size() slots, may be invalid
  };

  /// Incremental-maintenance join hooks (rules/incremental.h). The
  /// counting/DRed engine pins one body position to a single pivot fact
  /// and assigns every other fact literal a *world* — which FactIds it
  /// may see (old vs. new liveness, telescoped round membership). Null
  /// in JoinContext preserves the classic fixpoint bit for bit.
  struct IncrementalHooks {
    /// Whether body position `literal_index` may match fact `id`.
    /// Applied to positive candidates and to negation checks alike.
    std::function<bool(size_t, FactId)> admit;
    /// When >= 0, candidates of this body position are exactly
    /// `pivot_fact` (the delta pivot of the telescoped join).
    int pivot_literal = -1;
    FactId pivot_fact = kNoFact;
  };

  /// Per-ApplyRule join context: which body literal (if any) is
  /// restricted to the delta window of its concept_id, and whether the
  /// naive oracle semantics (left-to-right, scan-only) are requested.
  struct JoinContext {
    const Rule* rule = nullptr;
    int delta_literal = -1;
    std::uint32_t delta_begin = 0;
    std::uint32_t delta_end = 0;
    bool reorder = true;
    bool use_index = true;
    /// Where probe/scan counters tick. Null means the evaluator's own
    /// stats_; parallel solve tasks and concurrent queries point this
    /// at a task-local Stats merged after the barrier, so const join
    /// code never writes shared state from worker threads.
    Stats* stats = nullptr;
    /// Incremental world/pivot hooks; null for the classic fixpoint.
    const IncrementalHooks* inc = nullptr;
    /// Precomputed body order (rules/planner.h), replayed instead of
    /// the per-row dynamic pick. Null falls back to the dynamic
    /// heuristic (and `reorder`/`use_index` keep their old meaning).
    /// Plans are computed in serial sections (stratum start) and read
    /// concurrently by solve tasks.
    const BodyPlan* plan = nullptr;
    /// Reusable candidate/run buffers (rules/join_kernel.h); one per
    /// driver, never shared across threads. Null means per-call local
    /// buffers (cold paths).
    JoinScratch* scratch = nullptr;
  };

  /// The shared unification machinery, wired to this evaluator's fact
  /// universe and data mappings.
  FactMatcher MakeMatcher() const;

  /// Records a fact if it is new; returns its FactId or kNoFact.
  FactId InsertFact(Fact fact);

  /// Evaluates one rule under `ctx` and inserts the derived facts;
  /// `inserted` reports how many were new. SolveRule + InsertSolutions.
  Status ApplyRule(const FactMatcher& matcher, const JoinContext& ctx,
                   size_t* inserted);

  /// The read-only half of ApplyRule: solves the body against the
  /// current store without inserting anything. Safe to run from several
  /// threads at once provided the store is not mutated concurrently
  /// (ctx.stats must then point at a task-local Stats).
  Status SolveRule(const FactMatcher& matcher, const JoinContext& ctx,
                   std::vector<Solution>* solutions) const;

  /// One instantiated rule head: the fact, plus whether its entity is a
  /// content-addressed skolem (and under which HashFactAttrs key).
  struct HeadFact {
    Fact fact;
    bool skolem = false;
    std::uint64_t skolem_key = 0;
  };

  /// Instantiates `rule`'s head for one body solution: predicate heads
  /// get positional attributes, O-term heads flatten their descriptors
  /// (nested ones to dotted names), bound-OID heads merge the attributes
  /// of the matched body facts describing the same entity, and
  /// existential heads receive their content-addressed skolem OID. Pure
  /// — the store is untouched; InsertSolutions and the incremental
  /// evaluator share it so derived facts are bit-identical either way.
  static Result<HeadFact> BuildHeadFact(const Rule& rule,
                                        const FactMatcher& matcher,
                                        const Solution& solution);

  /// The write half: instantiates `rule`'s head for every solution and
  /// inserts the new facts (skolem de-duplication included). Serial
  /// only — the parallel fixpoint calls this in the barrier's merge
  /// phase, in deterministic task order.
  Status InsertSolutions(const Rule& rule, const FactMatcher& matcher,
                         const std::vector<Solution>& solutions,
                         size_t* inserted);

  /// Solves the remaining body literals (done[i] marks consumed ones),
  /// choosing the next literal bound-first (see DESIGN.md).
  Status SolveBody(const FactMatcher& matcher, const JoinContext& ctx,
                   std::vector<char>* done, size_t remaining,
                   Solution solution, std::vector<Solution>* solutions) const;

  /// Computes the body plan for one (rule, delta literal, pivot
  /// literal) from the store's current extent counts, with magic-guard
  /// concepts treated as high-selectivity seeds. Ticks
  /// stats_.plan_reorders when estimates overrode the SIP. Called from
  /// serial sections only (stratum starts, the incremental driver);
  /// the returned plan is then read concurrently by solve tasks.
  BodyPlan ComputePlan(const Rule& rule, int delta_literal,
                       int pivot_literal) const;

  /// Candidate facts for a positive or negated fact literal: an index
  /// probe when some argument/descriptor is bound to a hashable value,
  /// otherwise the concept_id extent; restricted to the delta window when
  /// `literal_index` is the context's delta literal. Ordinals refer to
  /// the concept_id's extent.
  void CollectCandidates(const JoinContext& ctx, size_t literal_index,
                         const Literal& literal, const Bindings& bindings,
                         std::vector<std::uint32_t>* candidates,
                         ConceptId* concept_id) const;

  /// The body of Evaluate(): everything after the entry checks. Split
  /// out so Evaluate() can Reset() on a deadline/cancel unwind.
  Status EvaluateImpl();

  /// Records a deadline truncation (kPartial): flags degraded_ and
  /// merges `concepts` into truncated_concepts, sorted + deduplicated.
  void MarkTruncated(std::vector<std::string> concepts);

  std::vector<Source> sources_;
  std::vector<ConceptBinding> bindings_decl_;
  std::vector<Rule> rules_;
  /// Ground facts planted by AddFact(), loaded before the fixpoint.
  std::vector<Fact> seed_facts_;
  const DataMappingRegistry* mappings_ = nullptr;
  EvalStrategy strategy_ = EvalStrategy::kSemiNaive;
  FailurePolicy failure_policy_ = FailurePolicy::kStrict;
  PlannerMode planner_mode_ = PlannerMode::kCostBased;
  bool use_join_kernel_ = true;
  /// Per-query deadline/cancellation (never expires by default).
  CancelToken token_;
  DegradedInfo degraded_;

  bool evaluated_ = false;
  FactStore store_;
  /// Liveness side column, installed (and owned) by the incremental
  /// evaluator once delta maintenance begins: the store stays
  /// append-only, logically deleted facts are masked out of FactsOf()
  /// and Query(), and OID resolution routes through
  /// `resolver_override_` so nested-descriptor navigation never lands
  /// on a dead fact. Null (the default) preserves the classic
  /// everything-stored-is-live behaviour bit for bit.
  const std::vector<std::uint8_t>* live_filter_ = nullptr;
  FactMatcher::OidResolver resolver_override_;
  /// Skolem de-duplication: hash of (concept_id, attrs) -> stored fact
  /// ids, exact-verified against the packed store (derived entities are
  /// identified by their attribute values; see ApplyRule).
  std::unordered_map<std::uint64_t, std::vector<FactId>> skolem_seen_;
  mutable Stats stats_;  // probe/scan counters tick inside const joins
  /// Guards stats_ merges from concurrent const Query() calls. Heap
  /// allocated so the evaluator stays movable (tests and factories
  /// return evaluators by value).
  mutable std::unique_ptr<std::mutex> stats_mu_ =
      std::make_unique<std::mutex>();
  /// Optional worker pool (see set_thread_pool); shared with demand
  /// sub-evaluators.
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace ooint

#endif  // OOINT_RULES_EVALUATOR_H_
