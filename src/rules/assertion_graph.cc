#include "rules/assertion_graph.h"

#include <numeric>

#include "common/string_util.h"

namespace ooint {

namespace {

/// Union-find over node indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

bool ValueRelSharesVariable(ValueRel rel) {
  switch (rel) {
    case ValueRel::kEq:
    case ValueRel::kIn:
    case ValueRel::kSupseteq:
    case ValueRel::kOverlap:
      return true;
    case ValueRel::kNe:
    case ValueRel::kDisjoint:
      return false;
  }
  return false;
}

bool AttrRelSharesVariable(AttrRel rel) {
  switch (rel) {
    case AttrRel::kEquivalent:
    case AttrRel::kSubset:
    case AttrRel::kSuperset:
    case AttrRel::kOverlap:
      return true;
    case AttrRel::kDisjoint:
    case AttrRel::kComposedInto:
    case AttrRel::kMoreSpecific:
      return false;
  }
  return false;
}

}  // namespace

Result<AssertionGraph> AssertionGraph::Build(const Assertion& assertion) {
  if (assertion.rel != SetRel::kDerivation) {
    return Status::InvalidArgument(
        StrCat("assertion graphs are defined for derivation assertions; "
               "got ",
               SetRelName(assertion.rel)));
  }

  AssertionGraph graph;

  // Collect nodes in first-appearance order.
  std::vector<Path> nodes;
  std::map<std::string, size_t> index;
  auto intern = [&](const Path& path) -> size_t {
    const std::string key = path.ToString();
    auto it = index.find(key);
    if (it != index.end()) return it->second;
    const size_t id = nodes.size();
    index.emplace(key, id);
    nodes.push_back(path);
    return id;
  };

  struct Edge {
    size_t a;
    size_t b;
  };
  std::vector<Edge> edges;

  for (const ValueCorrespondence& vc : assertion.value_corrs) {
    const size_t a = intern(vc.lhs);
    const size_t b = intern(vc.rhs);
    if (ValueRelSharesVariable(vc.rel)) edges.push_back({a, b});
  }
  for (const AttributeCorrespondence& ac : assertion.attr_corrs) {
    const size_t a = intern(ac.lhs);
    const size_t b = intern(ac.rhs);
    if (AttrRelSharesVariable(ac.rel)) edges.push_back({a, b});
    if (ac.with.has_value()) {
      const size_t h = intern(ac.with->attribute);
      graph.hyperedges_.push_back({*ac.with, {nodes[h]}});
    }
  }

  graph.num_edges_ = edges.size();

  // Connected components via union-find.
  UnionFind uf(nodes.size());
  for (const Edge& e : edges) uf.Union(e.a, e.b);

  // Components in order of their smallest member index, each marked x_j.
  std::map<size_t, size_t> root_to_component;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const size_t root = uf.Find(i);
    auto it = root_to_component.find(root);
    size_t component;
    if (it == root_to_component.end()) {
      component = graph.components_.size();
      root_to_component.emplace(root, component);
      graph.components_.push_back(
          {{}, StrCat("x", graph.components_.size() + 1)});
    } else {
      component = it->second;
    }
    graph.components_[component].nodes.push_back(nodes[i]);
    graph.node_component_.emplace(nodes[i].ToString(), component);
  }

  return graph;
}

std::string AssertionGraph::VariableOf(const Path& path) const {
  auto it = node_component_.find(path.ToString());
  if (it == node_component_.end()) return "";
  return components_[it->second].variable;
}

std::string AssertionGraph::ToString() const {
  std::string out = "assertion graph {\n";
  for (const Component& c : components_) {
    std::vector<std::string> names;
    names.reserve(c.nodes.size());
    for (const Path& p : c.nodes) names.push_back(p.ToString());
    out += StrCat("  ", c.variable, ": {", Join(names, ", "), "}\n");
  }
  for (const Hyperedge& h : hyperedges_) {
    std::vector<std::string> names;
    names.reserve(h.nodes.size());
    for (const Path& p : h.nodes) names.push_back(p.ToString());
    out += StrCat("  he(", h.predicate.ToString(), "): {", Join(names, ", "),
                  "}\n");
  }
  out += "}\n";
  return out;
}

}  // namespace ooint
