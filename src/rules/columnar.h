#ifndef OOINT_RULES_COLUMNAR_H_
#define OOINT_RULES_COLUMNAR_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ooint {

/// Low-level building blocks of the columnar FactStore (DESIGN.md 4h):
/// open-addressing id tables for interning, a string symbol pool, and
/// delta/varint-packed posting lists in a bump-allocated block arena
/// with a streaming, snapshot-safe cursor.

inline constexpr std::uint32_t kNoId = 0xffffffffu;

/// 64-bit finalizer (splitmix64) used to spread interning hashes and
/// index keys over the open-addressing tables.
inline std::uint64_t MixHash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Open-addressing (linear probing) table mapping 64-bit hashes to
/// dense 32-bit ids whose elements live in an external pool. The table
/// caches the full hash per slot, so growth never re-hashes elements
/// and lookups only call `eq` on full-hash matches — which is also what
/// makes deliberate hash truncation (the collision tests) exercise the
/// exact-verification path instead of corrupting the table.
class IdTable {
 public:
  /// Returns the id whose element matches (`hash` equal and `eq(id)`
  /// true), or kNoId.
  template <typename Eq>
  std::uint32_t Find(std::uint64_t hash, const Eq& eq) const {
    if (used_ == 0) return kNoId;
    const size_t mask = ids_.size() - 1;
    for (size_t i = MixHash(hash) & mask;; i = (i + 1) & mask) {
      if (ids_[i] == kNoId) return kNoId;
      if (hashes_[i] == hash && eq(ids_[i])) return ids_[i];
    }
  }

  /// Returns the matching id, or calls `make()` to append a new element
  /// to the external pool and records its id.
  template <typename Eq, typename Make>
  std::uint32_t FindOrInsert(std::uint64_t hash, const Eq& eq,
                             const Make& make) {
    if (ids_.empty()) Grow();
    size_t mask = ids_.size() - 1;
    size_t i = MixHash(hash) & mask;
    for (; ids_[i] != kNoId; i = (i + 1) & mask) {
      if (hashes_[i] == hash && eq(ids_[i])) return ids_[i];
    }
    if ((used_ + 1) * 10 >= ids_.size() * 7) {
      Grow();
      mask = ids_.size() - 1;
      i = MixHash(hash) & mask;
      while (ids_[i] != kNoId) i = (i + 1) & mask;
    }
    const std::uint32_t id = make();
    ids_[i] = id;
    hashes_[i] = hash;
    ++used_;
    return id;
  }

  size_t size() const { return used_; }
  size_t ApproxBytes() const {
    return ids_.capacity() * sizeof(std::uint32_t) +
           hashes_.capacity() * sizeof(std::uint64_t);
  }
  void Clear() {
    ids_.clear();
    hashes_.clear();
    used_ = 0;
  }

 private:
  void Grow() {
    const size_t cap = ids_.empty() ? 16 : ids_.size() * 2;
    std::vector<std::uint32_t> old_ids = std::move(ids_);
    std::vector<std::uint64_t> old_hashes = std::move(hashes_);
    ids_.assign(cap, kNoId);
    hashes_.assign(cap, 0);
    const size_t mask = cap - 1;
    for (size_t i = 0; i < old_ids.size(); ++i) {
      if (old_ids[i] == kNoId) continue;
      size_t j = MixHash(old_hashes[i]) & mask;
      while (ids_[j] != kNoId) j = (j + 1) & mask;
      ids_[j] = old_ids[i];
      hashes_[j] = old_hashes[i];
    }
  }

  std::vector<std::uint32_t> ids_;
  std::vector<std::uint64_t> hashes_;
  size_t used_ = 0;
};

/// Interned strings with dense 32-bit ids: concept names, attribute
/// names, string values and OID components all share one pool, so a
/// name appearing in a million facts is stored once.
class SymbolPool {
 public:
  std::uint32_t Intern(std::string_view s);
  /// kNoId when `s` was never interned — the probe-miss path: a value
  /// absent from the pool cannot occur in any stored fact.
  std::uint32_t Find(std::string_view s) const;
  const std::string& at(std::uint32_t id) const { return strings_[id]; }
  std::string_view view(std::uint32_t id) const { return strings_[id]; }
  size_t size() const { return strings_.size(); }
  size_t ApproxBytes() const;
  void Clear();

  /// Collision-test knob: masks the table hash so distinct strings
  /// collide and the exact-verification path is forced.
  void set_hash_mask_for_testing(std::uint64_t mask) { hash_mask_ = mask; }

 private:
  std::deque<std::string> strings_;
  IdTable table_;
  std::uint64_t hash_mask_ = ~0ull;
};

inline constexpr std::uint32_t kNoBlock = 0xffffffffu;

class PostingsPool;

/// Streaming decoder over one posting list (or one inlined posting).
///
/// Snapshot contract (the Probe() lifetime fix): the cursor captures
/// the list's element count at creation time. Posting blocks are
/// allocated from stable 64 KiB arena chunks and are append-only, so
/// later inserts never move or rewrite the bytes a cursor reads — the
/// cursor simply stops after the captured count and never observes
/// appends that happened after the probe. A cursor therefore stays
/// valid across inserts for the lifetime of the store (unlike the old
/// `const std::vector<uint32_t>*`, which a rehash or push_back could
/// invalidate). Reads must not race a literally concurrent Append on
/// the same store; the evaluator's phase structure (frozen store during
/// parallel solves, serial merges) already guarantees that.
class PostingsCursor {
 public:
  /// Empty cursor (no hits).
  PostingsCursor() = default;
  /// Single inlined posting.
  explicit PostingsCursor(std::uint32_t value)
      : inline_value_(value), remaining_(1) {}
  PostingsCursor(const PostingsPool* pool, std::uint32_t block,
                 std::uint32_t count)
      : pool_(pool), block_(block), remaining_(count) {}

  /// Total postings in the snapshot (including any not yet decoded).
  std::uint32_t count() const { return count_at(); }
  bool empty() const { return remaining_ == 0 && decoded_ == 0; }

  /// Decodes the next (non-strictly ascending) posting; false at end.
  bool Next(std::uint32_t* out);

  /// Bulk decode: fills `out` with up to `cap` postings, stopping at a
  /// block boundary (or at the single inlined value) — the unit the
  /// join kernels consume. Never decodes across blocks in one call, so
  /// a caller sees the pool's chained 16→256-byte blocks one run at a
  /// time. Returns the number decoded; 0 means the snapshot is drained.
  std::uint32_t NextRun(std::uint32_t* out, std::uint32_t cap);

 private:
  std::uint32_t count_at() const { return remaining_ + decoded_; }

  const PostingsPool* pool_ = nullptr;
  std::uint32_t block_ = kNoBlock;
  std::uint32_t pos_ = 0;       // byte offset into the block payload
  std::uint32_t last_ = 0;      // delta base
  std::uint32_t inline_value_ = 0;
  std::uint32_t remaining_ = 0;
  std::uint32_t decoded_ = 0;
};

/// Bump-allocated posting lists: ascending u32 sequences stored as
/// LEB128 varints of consecutive deltas in chained blocks of doubling
/// payload capacity (16 → 256 bytes), carved out of 64 KiB arena
/// chunks. A block reference packs (chunk index << 16 | byte offset).
///
/// Block layout: [u32 next][u16 cap][u16 used][payload...]; all blocks
/// are 4-byte aligned and block bytes are never rewritten once used.
class PostingsPool {
 public:
  struct List {
    std::uint32_t head = kNoBlock;
    std::uint32_t tail = kNoBlock;
    std::uint32_t count = 0;
    std::uint32_t last = 0;  // last appended value (delta base)
  };

  std::uint32_t NewList() {
    lists_.emplace_back();
    return static_cast<std::uint32_t>(lists_.size() - 1);
  }
  /// Appends `value` to `list_id`. Values must be non-decreasing.
  void Append(std::uint32_t list_id, std::uint32_t value);
  std::uint32_t Count(std::uint32_t list_id) const {
    return lists_[list_id].count;
  }
  PostingsCursor Cursor(std::uint32_t list_id) const {
    const List& list = lists_[list_id];
    return PostingsCursor(this, list.head, list.count);
  }

  const std::uint8_t* BlockBytes(std::uint32_t block) const {
    return chunks_[block >> 16].get() + (block & 0xffffu);
  }

  size_t ApproxBytes() const;
  void Clear();

 private:
  friend class PostingsCursor;
  static constexpr std::uint32_t kChunkSize = 1u << 16;

  std::uint32_t AllocBlock(std::uint16_t payload_cap);

  std::vector<List> lists_;
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::uint32_t chunk_used_ = kChunkSize;  // forces first-chunk alloc
};

/// Hash index from 64-bit keys to posting lists: the representation
/// behind by_attr_, by_oid_ and the de-duplication buckets. Single
/// postings are inlined into the slot (high bit tagged), so the common
/// unique-value case costs 12 bytes of slot and zero arena bytes.
/// Distinct semantic keys that collide on the 64-bit key share one
/// posting list — callers exact-verify candidates, so a collision can
/// cost time but never correctness (same tolerance as the old
/// unordered_map-of-hashes design).
class PostingsIndex {
 public:
  /// Adds `value` under `key`; per-key values must be non-decreasing.
  void Add(std::uint64_t key, std::uint32_t value);
  /// Snapshot cursor over the key's postings; empty if absent.
  PostingsCursor Find(std::uint64_t key) const;

  size_t key_count() const { return used_; }
  size_t ApproxBytes() const;
  void Clear();

 private:
  static constexpr std::uint32_t kEmptyRef = 0xffffffffu;
  static constexpr std::uint32_t kInlineBit = 0x80000000u;

  struct Slot {
    std::uint64_t key;
    std::uint32_t ref;
  };

  size_t SlotOf(std::uint64_t key) const;
  void Grow();

  std::vector<Slot> slots_;
  size_t used_ = 0;
  PostingsPool pool_;
};

}  // namespace ooint

#endif  // OOINT_RULES_COLUMNAR_H_
