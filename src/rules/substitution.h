#ifndef OOINT_RULES_SUBSTITUTION_H_
#define OOINT_RULES_SUBSTITUTION_H_

#include <string>
#include <vector>

#include "rules/term.h"

namespace ooint {

/// A reverse substitution θ = {c_1/x_1, ..., c_n/x_n} (Definition 5.1):
/// a finite set of bindings replacing each constant-or-variable token c_i
/// with the variable x_i. It is the reverse of the classical substitution
/// of logic programming — variables are introduced, not instantiated —
/// and is the device Principle 5 uses to stitch the O-terms of a
/// generated derivation rule together through shared variables.
class ReverseSubstitution {
 public:
  struct Binding {
    /// The token being replaced: a variable name, or the canonical
    /// rendering of a constant (Value::ToString()), or an attribute name
    /// (for hyperedge substitutions, method (ii) of Section 5).
    std::string from;
    /// The replacement variable.
    std::string to;
  };

  ReverseSubstitution() = default;
  explicit ReverseSubstitution(std::vector<Binding> bindings);
  ReverseSubstitution(std::initializer_list<Binding> bindings)
      : bindings_(bindings) {}

  /// Adds c/x; fails (returns false) when a binding for `from` already
  /// exists with a different target (the c_i must be distinct, Def. 5.1).
  bool AddBinding(const std::string& from, const std::string& to);

  const std::vector<Binding>& bindings() const { return bindings_; }
  bool empty() const { return bindings_.empty(); }

  /// The image of token `from`; returns `from` itself when unbound.
  const std::string& Map(const std::string& from) const;

  /// Applies the substitution to a term argument / descriptor list /
  /// O-term / literal (Definition 5.2): every occurrence of c_i — as a
  /// variable, as a constant with matching rendering, or as an attribute
  /// name — is replaced by x_i simultaneously. Replacing an attribute
  /// name turns the descriptor into a variable-named one; replacing a
  /// constant turns the argument into a variable.
  TermArg Apply(const TermArg& arg) const;
  AttrDescriptor Apply(const AttrDescriptor& descriptor) const;
  OTerm Apply(const OTerm& term) const;
  Literal Apply(const Literal& literal) const;

  /// The composition θδ of Definition 5.3: apply δ to the targets of θ,
  /// drop identity bindings c_i = x_iδ, then append the bindings of δ
  /// whose tokens d_j are not among θ's tokens.
  ReverseSubstitution Compose(const ReverseSubstitution& delta) const;

  /// "{c1/x1, c2/x2}".
  std::string ToString() const;

 private:
  std::vector<Binding> bindings_;
};

}  // namespace ooint

#endif  // OOINT_RULES_SUBSTITUTION_H_
