#ifndef OOINT_RULES_RULE_GENERATOR_H_
#define OOINT_RULES_RULE_GENERATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "assertions/assertion.h"
#include "common/result.h"
#include "rules/assertion_graph.h"
#include "rules/rule.h"
#include "rules/substitution.h"

namespace ooint {

/// Maps a local class to the name of its integrated version IS(·) in the
/// global schema. The integrator supplies its merged-class names; the
/// default wraps the reference as "IS(S.C)".
using ClassNaming = std::function<std::string(const ClassRef&)>;

/// The default IS(·) naming.
std::string DefaultClassNaming(const ClassRef& ref);

/// Implements integration Principle 5: turns a derivation assertion
/// S1(A_1, ..., A_n) → S2.B into inference rules of the form
///
///   Bθ_1...θ_j ⟸ {A_1, ..., A_n}θ_1...θ_j, {p_1, ..., p_l}δ_1...δ_i
///
/// by (1) decomposing the assertion so no attribute appears twice in its
/// correspondences (Figs. 9/10), (2) building the assertion graph of each
/// part, (3) marking connected subgraphs with variables and producing the
/// reverse substitutions of methods (i) and (ii), and (4) applying them
/// to O-term templates of the participating classes.
///
/// Head object variables are existential (they name newly derived
/// objects); the generator prefixes them with '_' and CheckRuleSafety
/// exempts such variables.
class RuleGenerator {
 public:
  explicit RuleGenerator(ClassNaming naming = DefaultClassNaming)
      : naming_(std::move(naming)) {}

  /// Decomposes a derivation assertion into parts in which no attribute
  /// path appears more than once (the manual partitioning step of
  /// Principle 5, automated): correspondences mentioning a repeated path
  /// are distributed across the parts; all others are replicated into
  /// every part. Returns {assertion} unchanged when nothing repeats.
  static std::vector<Assertion> Decompose(const Assertion& assertion);

  /// Generates the rule for one decomposed derivation assertion.
  Result<Rule> GenerateOne(const Assertion& decomposed) const;

  /// Decompose + GenerateOne for every part; each rule passes
  /// CheckRuleSafety.
  Result<std::vector<Rule>> Generate(const Assertion& assertion) const;

 private:
  ClassNaming naming_;
};

}  // namespace ooint

#endif  // OOINT_RULES_RULE_GENERATOR_H_
