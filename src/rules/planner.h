#ifndef OOINT_RULES_PLANNER_H_
#define OOINT_RULES_PLANNER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "rules/rule.h"

namespace ooint {

/// How rule bodies are ordered for evaluation.
enum class PlannerMode {
  /// Selectivity-driven: the connectivity SIP (most-bound-first, the
  /// historical dynamic heuristic) is replayed from a precomputed plan,
  /// and overridden when cost estimates prove another literal cheaper
  /// by a clear margin (kCostMargin).
  kCostBased,
  /// Forced left-to-right, indexes still on — the conformance family
  /// 12 foil (planner-vs-fixed-SIP), and a debugging escape hatch.
  /// Sound for every body the naive oracle can evaluate, since the
  /// oracle is itself strictly left-to-right.
  kFixedSip,
};

/// A precomputed body evaluation order: order[d] is the body literal
/// consumed at recursion depth d. Replayed by SolveBody instead of the
/// per-row dynamic pick, which re-collected every remaining literal's
/// variable set (a vector of strings) for every solution row.
struct BodyPlan {
  std::vector<std::uint32_t> order;
  /// True when cost estimates overrode the connectivity SIP for at
  /// least one pick — the Stats::plan_reorders event.
  bool reordered = false;
};

/// Everything the planner consumes. Costs are estimated cardinalities
/// of each body literal's concept extent at plan time (delta windows,
/// magic guards and incremental pivots discounted by the caller or via
/// the dedicated fields below); filters and negations carry no cost.
struct PlannerInput {
  const Rule* rule = nullptr;
  /// Body position restricted to a delta window, or -1. Its estimate is
  /// discounted: the window is typically far smaller than the extent.
  int delta_literal = -1;
  /// Incremental single-fact pivot position, or -1 (estimate 1).
  int pivot_literal = -1;
  /// Per-body-literal extent estimates (size rule->body.size()); values
  /// < 0 mean unknown. Only positive fact literals are read.
  std::vector<double> extent_cost;
  /// Variables bound before the body runs (seeded joins).
  std::set<std::string> initial_bound;
};

/// Cost margin: the cost-based pick must beat the connectivity pick's
/// estimate by this factor before the SIP is overridden ("provably
/// worse", with estimate error headroom).
inline constexpr double kCostMargin = 4.0;

/// Computes the body evaluation order for `in` by symbolically
/// replaying SolveBody's binding propagation: a consumed positive
/// literal binds every variable it mentions (a successful match always
/// does), a one-side-bound equality binds its other side, filters and
/// negations bind nothing. At every step, decidable filters and fully
/// bound negations run first (cheapest: no candidates at all); then,
/// among positive fact literals, the connectivity SIP picks the
/// most-bound one (delta literal breaking ties) and — in kCostBased
/// mode — is overridden when another literal's estimated candidate
/// count is kCostMargin times smaller. The result replays the exact
/// historical dynamic pick whenever estimates never clear the margin.
BodyPlan PlanBody(const PlannerInput& in, PlannerMode mode);

}  // namespace ooint

#endif  // OOINT_RULES_PLANNER_H_
