#ifndef OOINT_RULES_RESULT_PIPELINE_H_
#define OOINT_RULES_RESULT_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/topk.h"
#include "model/value.h"
#include "rules/matcher.h"

namespace ooint {

/// A pull-based row stream (the RediSearch result_processor idiom):
/// each Next() yields one answer row, false at end of stream. Sources
/// are single-consumer and not thread-safe; the serving layer
/// serializes cursor access.
class RowSource {
 public:
  virtual ~RowSource() = default;
  /// Fills *row and returns true, or returns false at end of stream.
  virtual bool Next(Bindings* row) = 0;
};

/// Adapts a borrowed, already-materialized row vector. The vector must
/// outlive the source — the demand serving path hands in rows owned by
/// a cached DemandOutcome the cursor keeps alive.
class VectorRowSource : public RowSource {
 public:
  explicit VectorRowSource(const std::vector<Bindings>* rows) : rows_(rows) {}
  bool Next(Bindings* row) override {
    if (index_ >= rows_->size()) return false;
    *row = (*rows_)[index_++];
    return true;
  }

 private:
  const std::vector<Bindings>* rows_;
  size_t index_ = 0;
};

/// One comparison predicate over a result variable. A row that lacks
/// the variable, or whose value is not comparable to `value` (mixed
/// kinds under an inequality), does not pass.
struct RowFilter {
  std::string var;
  CompareOp op = CompareOp::kEq;
  Value value;
};

/// Declarative pipeline shape: filter → project → dedup → sort/limit →
/// (the caller paginates by pulling).
struct PipelineSpec {
  std::vector<RowFilter> filters;
  /// Variables to keep (empty = identity projection). Variables absent
  /// from a row are simply absent from its projection.
  std::vector<std::string> project;
  /// Exact de-duplication of the (projected) output rows. The serving
  /// layer always enables this so pages reproduce Run()'s distinct
  /// answer semantics; projection can otherwise manufacture duplicates.
  bool distinct = false;
  /// Sort variable (empty = stream order, no sort). Rows missing the
  /// variable sort after all rows that have it, in either direction;
  /// ties break on the full row ordering (ascending), making the sort
  /// a deterministic total order.
  std::string order_by;
  bool descending = false;
  /// Maximum rows the pipeline emits overall (0 = unlimited). With
  /// `order_by` this is the top-k bound — the sort stage holds at most
  /// `limit` rows at any instant.
  size_t limit = 0;
};

/// Pipeline instrumentation, including the measured memory proxy for
/// the bounded-top-k claim (EXPERIMENTS E17): `peak_held_bytes` is the
/// largest approximate row-payload footprint the pipeline retained at
/// any instant (top-k heap + dedup store + in-flight row).
struct PipelineStats {
  size_t rows_in = 0;
  size_t rows_filtered = 0;
  size_t rows_deduped = 0;
  size_t heap_evictions = 0;
  size_t rows_out = 0;
  size_t peak_held_bytes = 0;
};

/// Approximate heap footprint of one row: map nodes, variable names,
/// and value payloads.
size_t ApproxBindingsBytes(const Bindings& row);

/// Orders rows by `order_by` (missing-last, optional descending), tie
/// broken by the full Bindings ordering — the total order BoundedTopK
/// requires (incomparable == identical row). Exposed so oracles can
/// reproduce the serving sort exactly.
struct RowOrder {
  std::string order_by;
  bool descending = false;
  bool operator()(const Bindings& a, const Bindings& b) const;
};

/// The composed pipeline, itself a RowSource. With `order_by` set the
/// first Next() drains the upstream through a bounded top-k heap (at
/// most `limit` rows held; `limit` == 0 degrades to a full sort) and
/// then emits in order; without it rows stream through one at a time
/// and only the dedup store (when `distinct`) accumulates.
class ResultPipeline : public RowSource {
 public:
  ResultPipeline(std::unique_ptr<RowSource> source, PipelineSpec spec);
  bool Next(Bindings* row) override;
  const PipelineStats& stats() const { return stats_; }

 private:
  /// Pulls one upstream row through filter + project. False at EOS.
  bool PullTransformed(Bindings* row);
  bool PassesFilters(const Bindings& row) const;
  /// True when `row` is new; records it in the dedup store otherwise.
  bool DedupAdmit(const Bindings& row);
  void HoldBytes(size_t bytes);
  void ReleaseBytes(size_t bytes);

  std::unique_ptr<RowSource> source_;
  PipelineSpec spec_;
  PipelineStats stats_;

  /// Sorted path: built on first Next(), then drained front to back.
  bool sorted_ready_ = false;
  std::vector<Bindings> sorted_;
  size_t sorted_index_ = 0;

  /// Streaming dedup store (digest + exact verification, the Query()
  /// idiom — no per-row key strings).
  std::unordered_map<std::uint64_t, std::vector<size_t>> seen_;
  std::vector<Bindings> kept_;

  size_t emitted_ = 0;
  size_t held_bytes_ = 0;
  bool exhausted_ = false;
};

}  // namespace ooint

#endif  // OOINT_RULES_RESULT_PIPELINE_H_
