#include "rules/matcher.h"

namespace ooint {

bool ResolveArg(const TermArg& arg, const Bindings& bindings, Value* out) {
  switch (arg.kind) {
    case TermArg::Kind::kConstant:
      *out = arg.constant;
      return true;
    case TermArg::Kind::kVariable: {
      auto it = bindings.find(arg.var);
      if (it == bindings.end()) return false;
      *out = it->second;
      return true;
    }
    case TermArg::Kind::kNested:
      return false;
  }
  return false;
}

bool FactMatcher::ValuesEqual(const Value& a, const Value& b) const {
  if (mappings_ != nullptr && a.kind() == ValueKind::kOid &&
      b.kind() == ValueKind::kOid) {
    return mappings_->SameObject(a.AsOid(), b.AsOid());
  }
  return a == b;
}

bool FactMatcher::ValuesEqual(const Value& a, const ValueHandle& b) const {
  if (mappings_ != nullptr && a.kind() == ValueKind::kOid &&
      b.kind() == ValueKind::kOid) {
    return mappings_->SameObject(a.AsOid(), b.MaterializeOid());
  }
  return b.Equals(a);
}

void FactMatcher::MatchAttr(const std::vector<AttrDescriptor>& descriptors,
                            size_t index, const FactView& fact,
                            std::string_view name, const ValueHandle& stored,
                            const Bindings& bindings,
                            std::vector<Bindings>* out) const {
  const AttrDescriptor& d = descriptors[index];

  Bindings base = bindings;
  if (d.attr_is_variable) {
    Value name_value = Value::String(std::string(name));
    auto [slot, inserted] = base.emplace(d.attribute, name_value);
    if (!inserted && slot->second != name_value) return;
  }

  // A set-valued stored attribute matches element-wise.
  const bool is_set = stored.kind() == ValueKind::kSet;
  const size_t candidate_count = is_set ? stored.set_size() : 1;

  for (size_t c = 0; c < candidate_count; ++c) {
    const ValueHandle candidate = is_set ? stored.set_element(c) : stored;
    Bindings next = base;
    switch (d.value.kind) {
      case TermArg::Kind::kConstant:
        if (!ValuesEqual(d.value.constant, candidate)) continue;
        break;
      case TermArg::Kind::kVariable: {
        auto bound = next.find(d.value.var);
        if (bound != next.end()) {
          if (!ValuesEqual(bound->second, candidate)) continue;
        } else {
          next.emplace(d.value.var, candidate.Materialize());
        }
        break;
      }
      case TermArg::Kind::kNested: {
        if (candidate.kind() != ValueKind::kOid || !resolver_) continue;
        const FactView target = resolver_(candidate.MaterializeOid());
        if (!target.valid()) continue;
        std::vector<Bindings> nested;
        MatchDescriptors(d.value.nested, 0, target, next, &nested);
        for (const Bindings& n : nested) {
          MatchDescriptors(descriptors, index + 1, fact, n, out);
        }
        continue;  // recursion already advanced `index`
      }
    }
    MatchDescriptors(descriptors, index + 1, fact, next, out);
  }
}

void FactMatcher::MatchDescriptors(
    const std::vector<AttrDescriptor>& descriptors, size_t index,
    const FactView& fact, const Bindings& bindings,
    std::vector<Bindings>* out) const {
  if (index == descriptors.size()) {
    out->push_back(bindings);
    return;
  }
  const AttrDescriptor& d = descriptors[index];

  // Candidate attributes: the literal one, or — for variable-named
  // descriptors (schematic discrepancies, Section 2) — every attribute
  // of the fact consistent with the name variable's binding. Attribute
  // iteration is lexicographic by name in both fact backings, matching
  // the historical std::map order.
  if (d.attr_is_variable) {
    auto it = bindings.find(d.attribute);
    if (it != bindings.end()) {
      if (it->second.kind() != ValueKind::kString) return;
      const std::string& name = it->second.AsString();
      const ValueHandle stored = fact.Find(name);
      if (!stored.valid()) return;
      MatchAttr(descriptors, index, fact, name, stored, bindings, out);
      return;
    }
    const size_t count = fact.attr_count();
    for (size_t i = 0; i < count; ++i) {
      MatchAttr(descriptors, index, fact, fact.attr_name(i),
                fact.attr_value(i), bindings, out);
    }
    return;
  }

  const ValueHandle stored = fact.Find(d.attribute);
  if (!stored.valid()) return;
  MatchAttr(descriptors, index, fact, d.attribute, stored, bindings, out);
}

void FactMatcher::MatchOTerm(const OTerm& pattern, const FactView& fact,
                             const Bindings& bindings,
                             std::vector<Bindings>* out) const {
  Bindings base = bindings;
  switch (pattern.object.kind) {
    case TermArg::Kind::kConstant:
      if (pattern.object.constant.kind() != ValueKind::kOid ||
          !ValuesEqual(pattern.object.constant, Value::OfOid(fact.oid()))) {
        return;
      }
      break;
    case TermArg::Kind::kVariable: {
      Value oid_value = Value::OfOid(fact.oid());
      auto [slot, inserted] = base.emplace(pattern.object.var, oid_value);
      if (!inserted && !ValuesEqual(slot->second, oid_value)) {
        return;
      }
      break;
    }
    case TermArg::Kind::kNested:
      return;  // object positions are never nested
  }
  MatchDescriptors(pattern.attrs, 0, fact, base, out);
}

}  // namespace ooint
