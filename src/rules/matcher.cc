#include "rules/matcher.h"

namespace ooint {

bool ResolveArg(const TermArg& arg, const Bindings& bindings, Value* out) {
  switch (arg.kind) {
    case TermArg::Kind::kConstant:
      *out = arg.constant;
      return true;
    case TermArg::Kind::kVariable: {
      auto it = bindings.find(arg.var);
      if (it == bindings.end()) return false;
      *out = it->second;
      return true;
    }
    case TermArg::Kind::kNested:
      return false;
  }
  return false;
}

bool FactMatcher::ValuesEqual(const Value& a, const Value& b) const {
  if (mappings_ != nullptr && a.kind() == ValueKind::kOid &&
      b.kind() == ValueKind::kOid) {
    return mappings_->SameObject(a.AsOid(), b.AsOid());
  }
  return a == b;
}

void FactMatcher::MatchDescriptors(
    const std::vector<AttrDescriptor>& descriptors, size_t index,
    const Fact& fact, const Bindings& bindings,
    std::vector<Bindings>* out) const {
  if (index == descriptors.size()) {
    out->push_back(bindings);
    return;
  }
  const AttrDescriptor& d = descriptors[index];

  // Candidate attribute names: the literal one, or — for variable-named
  // descriptors (schematic discrepancies, Section 2) — every attribute
  // of the fact consistent with the name variable's binding.
  std::vector<std::string> names;
  if (d.attr_is_variable) {
    auto it = bindings.find(d.attribute);
    if (it != bindings.end()) {
      if (it->second.kind() == ValueKind::kString) {
        names.push_back(it->second.AsString());
      }
    } else {
      for (const auto& [name, value] : fact.attrs) {
        (void)value;
        names.push_back(name);
      }
    }
  } else {
    names.push_back(d.attribute);
  }

  for (const std::string& name : names) {
    auto attr_it = fact.attrs.find(name);
    if (attr_it == fact.attrs.end()) continue;
    const Value& stored = attr_it->second;

    Bindings base = bindings;
    if (d.attr_is_variable) {
      auto [slot, inserted] = base.emplace(d.attribute, Value::String(name));
      if (!inserted && slot->second != Value::String(name)) continue;
    }

    // A set-valued stored attribute matches element-wise.
    std::vector<const Value*> candidates;
    if (stored.kind() == ValueKind::kSet) {
      for (const Value& e : stored.AsSet()) candidates.push_back(&e);
    } else {
      candidates.push_back(&stored);
    }

    for (const Value* candidate : candidates) {
      Bindings next = base;
      switch (d.value.kind) {
        case TermArg::Kind::kConstant:
          if (!ValuesEqual(*candidate, d.value.constant)) continue;
          break;
        case TermArg::Kind::kVariable: {
          auto bound = next.find(d.value.var);
          if (bound != next.end()) {
            if (!ValuesEqual(bound->second, *candidate)) continue;
          } else {
            next.emplace(d.value.var, *candidate);
          }
          break;
        }
        case TermArg::Kind::kNested: {
          if (candidate->kind() != ValueKind::kOid || !resolver_) continue;
          const Fact* target = resolver_(candidate->AsOid());
          if (target == nullptr) continue;
          std::vector<Bindings> nested;
          MatchDescriptors(d.value.nested, 0, *target, next, &nested);
          for (const Bindings& n : nested) {
            MatchDescriptors(descriptors, index + 1, fact, n, out);
          }
          continue;  // recursion already advanced `index`
        }
      }
      MatchDescriptors(descriptors, index + 1, fact, next, out);
    }
  }
}

void FactMatcher::MatchOTerm(const OTerm& pattern, const Fact& fact,
                             const Bindings& bindings,
                             std::vector<Bindings>* out) const {
  Bindings base = bindings;
  switch (pattern.object.kind) {
    case TermArg::Kind::kConstant:
      if (pattern.object.constant.kind() != ValueKind::kOid ||
          !ValuesEqual(pattern.object.constant, Value::OfOid(fact.oid))) {
        return;
      }
      break;
    case TermArg::Kind::kVariable: {
      auto [slot, inserted] =
          base.emplace(pattern.object.var, Value::OfOid(fact.oid));
      if (!inserted && !ValuesEqual(slot->second, Value::OfOid(fact.oid))) {
        return;
      }
      break;
    }
    case TermArg::Kind::kNested:
      return;  // object positions are never nested
  }
  MatchDescriptors(pattern.attrs, 0, fact, base, out);
}

}  // namespace ooint
