#ifndef OOINT_RULES_TERM_H_
#define OOINT_RULES_TERM_H_

#include <string>
#include <vector>

#include "model/value.h"

namespace ooint {

struct AttrDescriptor;

/// An argument position inside a term: a variable, a constant value, or a
/// nested attribute-descriptor list (for complex O-terms whose attribute
/// is itself structured, e.g. book: <ISBN: y1, title: y2> in Example 11).
struct TermArg {
  enum class Kind { kVariable, kConstant, kNested };

  Kind kind = Kind::kVariable;
  std::string var;                     // kVariable
  Value constant;                      // kConstant
  std::vector<AttrDescriptor> nested;  // kNested

  static TermArg Variable(std::string name);
  static TermArg Constant(Value value);
  static TermArg Nested(std::vector<AttrDescriptor> descriptors);

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }
  bool is_nested() const { return kind == Kind::kNested; }

  std::string ToString() const;

  friend bool operator==(const TermArg& a, const TermArg& b);
  friend bool operator!=(const TermArg& a, const TermArg& b) {
    return !(a == b);
  }
};

/// One attribute descriptor `a: v` of a complex O-term. The attribute
/// name itself may be a variable (attr_is_variable) — the paper allows
/// "variables for ... attribute names appearing in an O-term" to express
/// schematic discrepancies (Section 2).
struct AttrDescriptor {
  std::string attribute;
  bool attr_is_variable = false;
  TermArg value;

  std::string ToString() const;

  friend bool operator==(const AttrDescriptor& a, const AttrDescriptor& b);
  friend bool operator!=(const AttrDescriptor& a, const AttrDescriptor& b) {
    return !(a == b);
  }
};

/// A complex O-term  <o : C | a_1:v_1, ..., agg_1, ...>  (Section 2).
/// An O-term with an empty descriptor list is the class-membership form
/// <o : C> used by the virtual-class rules of Principles 3 and 4.
struct OTerm {
  TermArg object;          // the object variable / OID constant
  std::string class_name;  // C (a local or an integrated class name)
  std::vector<AttrDescriptor> attrs;

  std::string ToString() const;

  friend bool operator==(const OTerm& a, const OTerm& b);
  friend bool operator!=(const OTerm& a, const OTerm& b) { return !(a == b); }
};

/// One literal of a rule: an (optionally negated) O-term, a comparison
/// predicate `x op y`, or an ordinary named predicate p(t_1, ..., t_k).
struct Literal {
  enum class Kind { kOTerm, kCompare, kPredicate };

  Kind kind = Kind::kOTerm;
  bool negated = false;

  OTerm oterm;  // kOTerm

  TermArg cmp_lhs;  // kCompare
  CompareOp cmp_op = CompareOp::kEq;
  TermArg cmp_rhs;

  std::string pred_name;       // kPredicate
  std::vector<TermArg> args;

  static Literal OfOTerm(OTerm term, bool negated = false);
  static Literal OfCompare(TermArg lhs, CompareOp op, TermArg rhs);
  static Literal OfPredicate(std::string name, std::vector<TermArg> args,
                             bool negated = false);

  std::string ToString() const;
};

/// Appends every variable occurring in the argument to `out` (duplicates
/// included; callers de-duplicate as needed).
void CollectVariables(const TermArg& arg, std::vector<std::string>* out);
void CollectVariables(const OTerm& term, std::vector<std::string>* out);
void CollectVariables(const Literal& literal, std::vector<std::string>* out);

}  // namespace ooint

#endif  // OOINT_RULES_TERM_H_
