#include "rules/magic.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace ooint {
namespace {

constexpr std::string_view kMagicPrefix = "__magic[";

std::string MagicName(const std::string& concept_name, const Adornment& a) {
  return StrCat(kMagicPrefix, concept_name, "|", a.ToString(), "]");
}

/// The concept a fact literal addresses (empty for comparisons).
std::string LiteralConcept(const Literal& literal) {
  switch (literal.kind) {
    case Literal::Kind::kOTerm:
      return literal.oterm.class_name;
    case Literal::Kind::kPredicate:
      return literal.pred_name;
    case Literal::Kind::kCompare:
      return "";
  }
  return "";
}

bool HasNestedArg(const TermArg& arg) { return arg.is_nested(); }

bool HasNestedDescriptor(const std::vector<AttrDescriptor>& attrs) {
  for (const AttrDescriptor& d : attrs) {
    if (HasNestedArg(d.value)) return true;
  }
  return false;
}

bool LiteralHasNested(const Literal& literal) {
  switch (literal.kind) {
    case Literal::Kind::kOTerm:
      return HasNestedArg(literal.oterm.object) ||
             HasNestedDescriptor(literal.oterm.attrs);
    case Literal::Kind::kPredicate:
      for (const TermArg& arg : literal.args) {
        if (HasNestedArg(arg)) return true;
      }
      return false;
    case Literal::Kind::kCompare:
      return HasNestedArg(literal.cmp_lhs) || HasNestedArg(literal.cmp_rhs);
  }
  return false;
}

bool LiteralHasSchematicAttr(const Literal& literal) {
  if (literal.kind != Literal::Kind::kOTerm) return false;
  for (const AttrDescriptor& d : literal.oterm.attrs) {
    if (d.attr_is_variable) return true;
  }
  return false;
}

/// True for a positive literal that binds its variables (O-terms and
/// ordinary predicates; comparisons only test).
bool IsPositiveFactLiteral(const Literal& literal) {
  return !literal.negated && literal.kind != Literal::Kind::kCompare;
}

void InsertVariables(const Literal& literal, std::set<std::string>* out) {
  std::vector<std::string> vars;
  CollectVariables(literal, &vars);
  out->insert(vars.begin(), vars.end());
}

void InsertVariables(const TermArg& arg, std::set<std::string>* out) {
  std::vector<std::string> vars;
  CollectVariables(arg, &vars);
  out->insert(vars.begin(), vars.end());
}

/// Finds the head descriptor for attribute `attr` (nullptr when the rule
/// head carries no explicit, non-schematic descriptor for it).
const AttrDescriptor* FindHeadDescriptor(const OTerm& head,
                                         const std::string& attr) {
  for (const AttrDescriptor& d : head.attrs) {
    if (!d.attr_is_variable && d.attribute == attr) return &d;
  }
  return nullptr;
}

struct Demand {
  std::string concept_name;
  Adornment adornment;
};

}  // namespace

std::string Adornment::ToString() const {
  std::string out;
  if (object_bound) out = "o";
  if (!attrs.empty()) {
    if (object_bound) out += "|";
    out += Join(attrs, ",");
  }
  return out;
}

Adornment GoalBinding::ToAdornment() const {
  Adornment a;
  a.object_bound = object_bound;
  for (const auto& [name, value] : attrs) a.attrs.push_back(name);
  return a;
}

GoalBinding ExtractGoalBinding(const OTerm& pattern) {
  GoalBinding goal;
  goal.concept_name = pattern.class_name;
  if (pattern.object.is_constant()) {
    goal.object_bound = true;
    goal.object = pattern.object.constant;
  } else if (pattern.object.is_nested()) {
    goal.has_nested = true;
  }
  for (const AttrDescriptor& d : pattern.attrs) {
    if (d.value.is_nested()) {
      goal.has_nested = true;
      continue;
    }
    if (d.attr_is_variable) continue;  // schematic: nothing concrete bound
    if (d.value.is_constant()) goal.attrs[d.attribute] = d.value.constant;
  }
  return goal;
}

// Also consulted by the cost planner (Evaluator::ComputePlan): magic
// extents hold only demanded bindings, so their estimates get a 4x
// selectivity discount — a magic guard should open a planned body
// ahead of a similarly-sized base extent.
bool IsMagicConceptName(const std::string& name) {
  return name.rfind(kMagicPrefix, 0) == 0;
}

namespace {

/// Implements the rewrite over a prepared rule index.
class Rewriter {
 public:
  Rewriter(const std::vector<Rule>& rules, const GoalBinding& goal)
      : goal_(goal) {
    for (const Rule& rule : rules) {
      if (rule.documentation_only || rule.disjunctive_head) continue;
      for (const std::string& name : rule.HeadConceptNames()) {
        by_head_[name].push_back(&rule);
      }
    }
  }

  MagicProgram Run() {
    ComputeReachable();
    CheckAdornability();
    if (!out_.fallback_reason.empty()) return std::move(out_);

    Adornment a0 = Supported(goal_.concept_name, goal_.ToAdornment());
    out_.goal_adornment = a0.ToString();
    if (a0.empty()) {
      out_.fallback_reason = goal_.ToAdornment().empty()
                                 ? "goal has no bound positions"
                                 : "no bound goal position survives "
                                   "head-support analysis";
      return std::move(out_);
    }

    DemandConcept(goal_.concept_name, a0);
    while (!work_.empty()) {
      Demand d = work_.front();
      work_.pop_front();
      RewriteConcept(d);
    }
    // An EDB goal has no rules to guard: the rewrite degenerates to pure
    // relevance pruning, which is exactly right.
    if (IsIdb(goal_.concept_name)) SeedGoal(a0);
    out_.applied = true;
    return std::move(out_);
  }

 private:
  bool IsIdb(const std::string& concept_name) const {
    return by_head_.count(concept_name) > 0;
  }

  void ComputeReachable() {
    std::set<std::string> reachable = {goal_.concept_name};
    std::deque<std::string> frontier = {goal_.concept_name};
    while (!frontier.empty()) {
      std::string concept_name = frontier.front();
      frontier.pop_front();
      auto it = by_head_.find(concept_name);
      if (it == by_head_.end()) continue;
      for (const Rule* rule : it->second) {
        // Negated dependencies included: their full extent is required.
        for (const std::string& dep : rule->BodyConceptNames(false)) {
          if (reachable.insert(dep).second) frontier.push_back(dep);
        }
      }
    }
    out_.reachable_concepts.assign(reachable.begin(), reachable.end());
  }

  /// Scans every reachable rule for constructs the rewrite cannot adorn
  /// soundly; records the first blocking reason. Nested descriptors also
  /// defeat the relevance analysis (the matcher navigates stored OIDs
  /// into concepts reachability does not see).
  void CheckAdornability() {
    if (goal_.has_nested) {
      out_.relevance_safe = false;
      out_.fallback_reason = "goal pattern uses nested descriptors";
    }
    std::set<std::string> reachable(out_.reachable_concepts.begin(),
                                    out_.reachable_concepts.end());
    for (const auto& [head, rules] : by_head_) {
      if (!reachable.count(head)) continue;
      for (const Rule* rule : rules) {
        if (rule->head.size() != 1 && out_.fallback_reason.empty()) {
          out_.fallback_reason =
              StrCat("multi-literal head in rule for '", head, "'");
        }
        std::vector<Literal> literals = rule->head;
        literals.insert(literals.end(), rule->body.begin(), rule->body.end());
        for (const Literal& literal : literals) {
          if (LiteralHasNested(literal)) {
            out_.relevance_safe = false;
            if (out_.fallback_reason.empty()) {
              out_.fallback_reason =
                  StrCat("nested descriptors in rule for '", head, "'");
            }
          }
          if (out_.fallback_reason.empty() &&
              LiteralHasSchematicAttr(literal)) {
            out_.fallback_reason = StrCat(
                "schematic attribute variable in rule for '", head, "'");
          }
          if (out_.fallback_reason.empty() && literal.negated &&
              IsIdb(LiteralConcept(literal))) {
            out_.fallback_reason =
                StrCat("negated derived concept '", LiteralConcept(literal),
                       "' in rule for '", head, "'");
          }
        }
      }
    }
  }

  /// Intersects `a` with what every defining rule of `concept_name` can
  /// support: a bound position is kept only when each rule's head has an
  /// explicit argument there whose value is a constant or a variable the
  /// positive body binds (the evaluator's attribute-merge path may attach
  /// further attributes after derivation, and existential head variables
  /// are chosen by the evaluator — binding either through a magic literal
  /// would lose answers).
  Adornment Supported(const std::string& concept_name, Adornment a) const {
    auto it = by_head_.find(concept_name);
    if (it == by_head_.end()) return a;  // EDB: every position is stored
    for (const Rule* rule : it->second) {
      if (a.empty()) break;
      const Literal& head = rule->head.front();
      std::set<std::string> body_vars;
      for (const Literal& literal : rule->body) {
        if (IsPositiveFactLiteral(literal)) InsertVariables(literal, &body_vars);
      }
      auto supported_arg = [&](const TermArg& arg) {
        if (arg.is_constant()) return true;
        if (!arg.is_variable()) return false;
        return !arg.var.empty() && arg.var[0] != '_' &&
               body_vars.count(arg.var) > 0;
      };
      if (a.object_bound) {
        a.object_bound = head.kind == Literal::Kind::kOTerm &&
                         supported_arg(head.oterm.object);
      }
      std::vector<std::string> kept;
      for (const std::string& attr : a.attrs) {
        const TermArg* arg = nullptr;
        if (head.kind == Literal::Kind::kOTerm) {
          const AttrDescriptor* d = FindHeadDescriptor(head.oterm, attr);
          if (d != nullptr) arg = &d->value;
        } else if (head.kind == Literal::Kind::kPredicate) {
          size_t index = 0;
          for (char c : attr) {
            if (c < '0' || c > '9') { index = head.args.size(); break; }
            index = index * 10 + static_cast<size_t>(c - '0');
          }
          if (index < head.args.size()) arg = &head.args[index];
        }
        if (arg != nullptr && supported_arg(*arg)) kept.push_back(attr);
      }
      a.attrs = std::move(kept);
    }
    return a;
  }

  /// Registers demand for an IDB concept under `a`. An *empty* adornment
  /// is a pure reachability demand: the guard predicate is 0-ary and the
  /// concept's rules fire fully once any demand tuple exists — without
  /// it the concept's defining rules would be absent from the rewritten
  /// program and answers feeding the demanding rule would be lost.
  void DemandConcept(const std::string& concept_name, const Adornment& a) {
    if (!IsIdb(concept_name)) return;  // EDB extents are fetched, not derived
    if (demanded_.insert(MagicName(concept_name, a)).second) {
      work_.push_back({concept_name, a});
    }
  }

  /// The magic-literal arguments for a head or body literal under `a`:
  /// object position first (when bound), then the adorned attributes in
  /// sorted order. Every position is guaranteed present — Supported()
  /// only keeps positions with an explicit argument, and body adornments
  /// are built from the literal's own descriptors.
  std::vector<TermArg> MagicArgs(const Literal& literal,
                                 const Adornment& a) const {
    std::vector<TermArg> args;
    if (literal.kind == Literal::Kind::kOTerm) {
      if (a.object_bound) args.push_back(literal.oterm.object);
      for (const std::string& attr : a.attrs) {
        const AttrDescriptor* d = FindHeadDescriptor(literal.oterm, attr);
        args.push_back(d != nullptr ? d->value : TermArg::Variable("_"));
      }
    } else {
      for (const std::string& attr : a.attrs) {
        size_t index = 0;
        for (char c : attr) index = index * 10 + static_cast<size_t>(c - '0');
        args.push_back(index < literal.args.size()
                           ? literal.args[index]
                           : TermArg::Variable("_"));
      }
    }
    return args;
  }

  /// The adornment a body literal receives from the variables bound so
  /// far (constants always count).
  Adornment AdornFromLiteral(const Literal& literal,
                             const std::set<std::string>& bound) const {
    auto arg_bound = [&](const TermArg& arg) {
      if (arg.is_constant()) return true;
      return arg.is_variable() && bound.count(arg.var) > 0;
    };
    Adornment a;
    if (literal.kind == Literal::Kind::kOTerm) {
      a.object_bound = arg_bound(literal.oterm.object);
      for (const AttrDescriptor& d : literal.oterm.attrs) {
        if (d.attr_is_variable || d.value.is_nested()) continue;
        if (arg_bound(d.value)) a.attrs.push_back(d.attribute);
      }
      std::sort(a.attrs.begin(), a.attrs.end());
      a.attrs.erase(std::unique(a.attrs.begin(), a.attrs.end()),
                    a.attrs.end());
    } else {
      for (size_t i = 0; i < literal.args.size(); ++i) {
        if (arg_bound(literal.args[i])) a.attrs.push_back(StrCat(i));
      }
    }
    return a;
  }

  /// Emits the guarded rule copies and magic rules for one demanded
  /// (concept, adornment).
  void RewriteConcept(const Demand& d) {
    const std::string magic_name = MagicName(d.concept_name, d.adornment);
    for (const Rule* rule : by_head_.at(d.concept_name)) {
      // Guarded copy: the magic literal is *prepended* so the join
      // planner's bound-first pick starts from the demand tuple.
      Rule guarded = *rule;
      Literal guard = Literal::OfPredicate(
          magic_name, MagicArgs(rule->head.front(), d.adornment));
      guarded.body.insert(guarded.body.begin(), guard);
      guarded.provenance = StrCat("magic-guarded(", rule->provenance, ")");
      out_.rules.push_back(std::move(guarded));
      ++out_.guarded_rules;

      // Connected sideways information passing, left-to-right over the
      // written body order: the bound set starts from the magic
      // arguments and grows only through positive fact literals that
      // *join* with it (share a bound variable). Unconnected literals
      // are left out of the demand chain — including them would make
      // every magic rule enumerate their full extent (a cross product)
      // for bindings the goal never supplied; leaving them out merely
      // over-approximates demand, which is sound. Comparisons and
      // negations are dropped for the same reason: they only test.
      std::set<std::string> bound;
      for (const TermArg& arg : guard.args) InsertVariables(arg, &bound);
      std::vector<Literal> prefix = {guard};
      for (const Literal& literal : rule->body) {
        if (!IsPositiveFactLiteral(literal)) continue;
        std::set<std::string> literal_vars;
        InsertVariables(literal, &literal_vars);
        bool connected = false;
        for (const std::string& var : literal_vars) {
          if (bound.count(var)) { connected = true; break; }
        }
        const std::string dep = LiteralConcept(literal);
        if (IsIdb(dep)) {
          Adornment a2 = Supported(
              dep, AdornFromLiteral(literal, connected ? bound
                                                       : std::set<std::string>()));
          Rule magic;
          magic.head.push_back(Literal::OfPredicate(
              MagicName(dep, a2), MagicArgs(literal, a2)));
          magic.body = prefix;
          magic.provenance = StrCat("magic(", dep, "|", a2.ToString(), ")");
          out_.rules.push_back(std::move(magic));
          ++out_.magic_rules;
          DemandConcept(dep, a2);
        }
        if (connected) {
          bound.insert(literal_vars.begin(), literal_vars.end());
          prefix.push_back(literal);
        }
      }
    }
  }

  /// The goal's demand tuple: one magic fact carrying the bound values,
  /// positionally matching MagicArgs (object first, then sorted attrs).
  void SeedGoal(const Adornment& a0) {
    Fact seed;
    seed.concept_name = MagicName(goal_.concept_name, a0);
    size_t position = 0;
    if (a0.object_bound) seed.attrs[StrCat(position++)] = goal_.object;
    for (const std::string& attr : a0.attrs) {
      seed.attrs[StrCat(position++)] = goal_.attrs.at(attr);
    }
    out_.seeds.push_back(std::move(seed));
  }

  const GoalBinding& goal_;
  std::map<std::string, std::vector<const Rule*>> by_head_;
  MagicProgram out_;
  std::set<std::string> demanded_;
  std::deque<Demand> work_;
};

}  // namespace

MagicProgram MagicRewrite(const std::vector<Rule>& rules,
                          const GoalBinding& goal) {
  return Rewriter(rules, goal).Run();
}

}  // namespace ooint
