#include "rules/rule.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace ooint {

std::string Rule::ToString() const {
  std::vector<std::string> head_parts;
  head_parts.reserve(head.size());
  for (const Literal& l : head) head_parts.push_back(l.ToString());
  std::vector<std::string> body_parts;
  body_parts.reserve(body.size());
  for (const Literal& l : body) body_parts.push_back(l.ToString());
  return StrCat(Join(head_parts, disjunctive_head ? " | " : " & "), " <= ",
                Join(body_parts, ", "));
}

namespace {

void AppendConceptName(const Literal& literal, std::vector<std::string>* out) {
  if (literal.kind == Literal::Kind::kOTerm) {
    out->push_back(literal.oterm.class_name);
  } else if (literal.kind == Literal::Kind::kPredicate) {
    out->push_back(literal.pred_name);
  }
}

}  // namespace

std::vector<std::string> Rule::HeadConceptNames() const {
  std::vector<std::string> out;
  for (const Literal& l : head) AppendConceptName(l, &out);
  return out;
}

std::vector<std::string> Rule::BodyConceptNames(bool positive_only) const {
  std::vector<std::string> out;
  for (const Literal& l : body) {
    if (positive_only && l.negated) continue;
    AppendConceptName(l, &out);
  }
  return out;
}

Status CheckRuleSafety(const Rule& rule) {
  std::set<std::string> bound;
  for (const Literal& l : rule.body) {
    if (l.negated || l.kind == Literal::Kind::kCompare) continue;
    std::vector<std::string> vars;
    CollectVariables(l, &vars);
    bound.insert(vars.begin(), vars.end());
  }
  // Equality comparisons propagate bindings across; iterate to fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : rule.body) {
      if (l.kind != Literal::Kind::kCompare || l.cmp_op != CompareOp::kEq) {
        continue;
      }
      std::vector<std::string> lhs_vars;
      std::vector<std::string> rhs_vars;
      CollectVariables(l.cmp_lhs, &lhs_vars);
      CollectVariables(l.cmp_rhs, &rhs_vars);
      const bool lhs_bound = std::all_of(
          lhs_vars.begin(), lhs_vars.end(),
          [&](const std::string& v) { return bound.count(v) != 0; });
      const bool rhs_bound = std::all_of(
          rhs_vars.begin(), rhs_vars.end(),
          [&](const std::string& v) { return bound.count(v) != 0; });
      if (lhs_bound || rhs_bound) {
        for (const std::string& v : lhs_vars) {
          changed |= bound.insert(v).second;
        }
        for (const std::string& v : rhs_vars) {
          changed |= bound.insert(v).second;
        }
      }
    }
  }
  auto check = [&](const Literal& l, const char* where) -> Status {
    std::vector<std::string> vars;
    CollectVariables(l, &vars);
    for (const std::string& v : vars) {
      // Variables prefixed with '_' are existential: they name newly
      // derived objects (head object positions of Principle-5 rules) and
      // are skolemized by the evaluator.
      if (!v.empty() && v[0] == '_') continue;
      if (bound.count(v) == 0) {
        return Status::FailedPrecondition(
            StrCat("unsafe rule: variable '", v, "' in ", where,
                   " literal is not bound by a positive body literal: ",
                   rule.ToString()));
      }
    }
    return Status::OK();
  };
  for (const Literal& l : rule.head) {
    OOINT_RETURN_IF_ERROR(check(l, "head"));
  }
  for (const Literal& l : rule.body) {
    if (l.negated) {
      OOINT_RETURN_IF_ERROR(check(l, "negated body"));
    } else if (l.kind == Literal::Kind::kCompare) {
      OOINT_RETURN_IF_ERROR(check(l, "comparison"));
    }
  }
  return Status::OK();
}

}  // namespace ooint
