#include "rules/rule_generator.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace ooint {

std::string DefaultClassNaming(const ClassRef& ref) {
  return StrCat("IS(", ref.schema, ".", ref.class_name, ")");
}

std::vector<Assertion> RuleGenerator::Decompose(const Assertion& assertion) {
  // Count how often each attribute path occurs across the attribute
  // correspondences.
  std::map<std::string, int> occurrences;
  for (const AttributeCorrespondence& ac : assertion.attr_corrs) {
    ++occurrences[ac.lhs.ToString()];
    ++occurrences[ac.rhs.ToString()];
  }
  int max_count = 1;
  for (const auto& [path, count] : occurrences) {
    (void)path;
    max_count = std::max(max_count, count);
  }
  if (max_count == 1) return {assertion};

  // k parts; correspondences touching a repeated path are distributed
  // round-robin per path, all others are replicated to every part.
  std::vector<Assertion> parts(max_count);
  for (Assertion& part : parts) {
    part.lhs = assertion.lhs;
    part.rel = assertion.rel;
    part.rhs = assertion.rhs;
    part.value_corrs = assertion.value_corrs;
  }
  std::map<std::string, int> next_slot;
  for (const AttributeCorrespondence& ac : assertion.attr_corrs) {
    const std::string lhs_key = ac.lhs.ToString();
    const std::string rhs_key = ac.rhs.ToString();
    const bool lhs_repeats = occurrences[lhs_key] > 1;
    const bool rhs_repeats = occurrences[rhs_key] > 1;
    if (!lhs_repeats && !rhs_repeats) {
      for (Assertion& part : parts) part.attr_corrs.push_back(ac);
      continue;
    }
    const std::string& slot_key = lhs_repeats ? lhs_key : rhs_key;
    const int slot = next_slot[slot_key]++ % max_count;
    parts[slot].attr_corrs.push_back(ac);
  }
  return parts;
}

namespace {

/// Mutable template of one class's O-term during generation.
struct ClassTemplate {
  ClassRef ref;
  OTerm term;
};

/// Inserts the tail components[i..] of a node path into a descriptor
/// list, creating nested descriptors as needed; the leaf receives
/// `leaf_value`.
Status InsertPath(std::vector<AttrDescriptor>* attrs,
                  const std::vector<std::string>& components, size_t i,
                  TermArg leaf_value) {
  const std::string& name = components[i];
  AttrDescriptor* slot = nullptr;
  for (AttrDescriptor& d : *attrs) {
    if (d.attribute == name) {
      slot = &d;
      break;
    }
  }
  const bool is_leaf = (i + 1 == components.size());
  if (is_leaf) {
    if (slot != nullptr) {
      return Status::InvalidArgument(
          StrCat("conflicting paths: attribute '", name,
                 "' used both as leaf and as intermediate component"));
    }
    attrs->push_back({name, false, std::move(leaf_value)});
    return Status::OK();
  }
  if (slot == nullptr) {
    attrs->push_back({name, false, TermArg::Nested({})});
    slot = &attrs->back();
  } else if (!slot->value.is_nested()) {
    return Status::InvalidArgument(
        StrCat("conflicting paths: attribute '", name,
               "' used both as leaf and as intermediate component"));
  }
  return InsertPath(&slot->value.nested, components, i + 1,
                    std::move(leaf_value));
}

}  // namespace

Result<Rule> RuleGenerator::GenerateOne(const Assertion& decomposed) const {
  Result<AssertionGraph> graph_result = AssertionGraph::Build(decomposed);
  if (!graph_result.ok()) return graph_result.status();
  const AssertionGraph& graph = graph_result.value();

  // One O-term template per participating class; the rhs (derived) class
  // gets an existential object variable.
  std::vector<ClassTemplate> templates;
  std::map<std::string, size_t> template_index;
  auto template_for = [&](const ClassRef& ref, bool is_head) -> size_t {
    const std::string key = ref.ToString();
    auto it = template_index.find(key);
    if (it != template_index.end()) return it->second;
    ClassTemplate t;
    t.ref = ref;
    t.term.class_name = naming_(ref);
    t.term.object = TermArg::Variable(
        is_head ? "_o" : StrCat("o", template_index.size() + 1));
    const size_t index = templates.size();
    template_index.emplace(key, index);
    templates.push_back(std::move(t));
    return index;
  };
  const size_t head_index = template_for(decomposed.rhs, /*is_head=*/true);
  for (const ClassRef& ref : decomposed.lhs) {
    template_for(ref, /*is_head=*/false);
  }

  // Populate templates from the graph's nodes and build the per-component
  // reverse substitutions (method (i)): each node contributes a binding
  //   <its fresh leaf variable or its attribute-name constant> / x_j.
  // `node_tokens` remembers each node's binding token for method (ii).
  std::map<std::string, std::string> node_tokens;
  int fresh_counter = 0;
  std::vector<ReverseSubstitution> thetas;
  for (const AssertionGraph::Component& component : graph.components()) {
    ReverseSubstitution theta;
    for (const Path& node : component.nodes) {
      auto it = template_index.find(
          StrCat(node.schema(), ".", node.class_name()));
      if (it == template_index.end()) {
        return Status::InvalidArgument(
            StrCat("path ", node.ToString(),
                   " is rooted at a class not named by the assertion"));
      }
      ClassTemplate& tpl = templates[it->second];
      std::string token;
      if (node.is_class_path()) {
        // The node denotes the class itself: bind its object variable.
        token = tpl.term.object.var;
      } else if (node.name_ref()) {
        // The node denotes the attribute *name*: the binding token is
        // the name constant; the descriptor still needs to exist.
        token = node.leaf();
        if (tpl.term.attrs.end() ==
            std::find_if(tpl.term.attrs.begin(), tpl.term.attrs.end(),
                         [&](const AttrDescriptor& d) {
                           return d.attribute == node.leaf();
                         })) {
          OOINT_RETURN_IF_ERROR(
              InsertPath(&tpl.term.attrs, node.components(), 0,
                         TermArg::Variable(StrCat("v", ++fresh_counter))));
        }
      } else {
        token = StrCat("v", ++fresh_counter);
        OOINT_RETURN_IF_ERROR(InsertPath(&tpl.term.attrs, node.components(),
                                         0, TermArg::Variable(token)));
      }
      if (!theta.AddBinding(token, component.variable)) {
        return Status::Internal(
            StrCat("duplicate binding token '", token, "' in component ",
                   component.variable,
                   "; decompose the assertion first (Principle 5)"));
      }
      node_tokens[node.ToString()] = token;
    }
    thetas.push_back(std::move(theta));
  }

  // Compose θ_1 ... θ_j. Binding tokens are disjoint across components,
  // so the composition is their union.
  ReverseSubstitution theta_all;
  for (const ReverseSubstitution& theta : thetas) {
    theta_all = theta_all.Compose(theta);
  }

  // Hyperedges (method (ii)): where a node's binding token is a fresh
  // variable, the hyperedge substitution replaces the attribute *name*
  // with the component variable; predicates are then rewritten by it.
  std::vector<Literal> predicates;
  for (const AssertionGraph::Hyperedge& hyperedge : graph.hyperedges()) {
    ReverseSubstitution delta;
    for (const Path& node : hyperedge.nodes) {
      const std::string& token = node_tokens[node.ToString()];
      const std::string& variable = graph.VariableOf(node);
      if (node.name_ref()) {
        delta.AddBinding(token, variable);
      } else {
        delta.AddBinding(node.leaf(), variable);
      }
    }
    Literal predicate = Literal::OfCompare(
        TermArg::Constant(Value::String(hyperedge.predicate.attribute.leaf())),
        hyperedge.predicate.op,
        TermArg::Constant(hyperedge.predicate.constant));
    predicates.push_back(delta.Apply(predicate));
  }

  Rule rule;
  rule.head.push_back(
      Literal::OfOTerm(theta_all.Apply(templates[head_index].term)));
  for (size_t i = 0; i < templates.size(); ++i) {
    if (i == head_index) continue;
    rule.body.push_back(Literal::OfOTerm(theta_all.Apply(templates[i].term)));
  }
  for (Literal& predicate : predicates) {
    rule.body.push_back(std::move(predicate));
  }
  rule.head_sources = {decomposed.rhs.schema};
  {
    std::vector<std::string> lhs_names;
    lhs_names.reserve(decomposed.lhs.size());
    for (const ClassRef& c : decomposed.lhs) {
      lhs_names.push_back(c.class_name);
    }
    rule.provenance =
        StrCat("derivation(", decomposed.lhs.front().schema, "(",
               Join(lhs_names, ", "), ") -> ", decomposed.rhs.ToString(), ")");
  }
  OOINT_RETURN_IF_ERROR(CheckRuleSafety(rule));
  return rule;
}

Result<std::vector<Rule>> RuleGenerator::Generate(
    const Assertion& assertion) const {
  if (assertion.rel != SetRel::kDerivation) {
    return Status::InvalidArgument(
        StrCat("Generate expects a derivation assertion, got ",
               SetRelName(assertion.rel)));
  }
  std::vector<Rule> rules;
  for (const Assertion& part : Decompose(assertion)) {
    Result<Rule> rule = GenerateOne(part);
    if (!rule.ok()) return rule.status();
    rules.push_back(std::move(rule).value());
  }
  return rules;
}

}  // namespace ooint
