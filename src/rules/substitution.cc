#include "rules/substitution.h"

#include "common/string_util.h"

namespace ooint {

ReverseSubstitution::ReverseSubstitution(std::vector<Binding> bindings)
    : bindings_(std::move(bindings)) {}

bool ReverseSubstitution::AddBinding(const std::string& from,
                                     const std::string& to) {
  for (const Binding& b : bindings_) {
    if (b.from == from) return b.to == to;
  }
  bindings_.push_back({from, to});
  return true;
}

const std::string& ReverseSubstitution::Map(const std::string& from) const {
  for (const Binding& b : bindings_) {
    if (b.from == from) return b.to;
  }
  return from;
}

TermArg ReverseSubstitution::Apply(const TermArg& arg) const {
  switch (arg.kind) {
    case TermArg::Kind::kVariable: {
      const std::string& mapped = Map(arg.var);
      if (mapped != arg.var) return TermArg::Variable(mapped);
      return arg;
    }
    case TermArg::Kind::kConstant: {
      const std::string rendered = arg.constant.ToString();
      const std::string& mapped = Map(rendered);
      if (mapped != rendered) return TermArg::Variable(mapped);
      // Also accept the unquoted rendering of string constants, since
      // assertion predicates write string constants without quotes.
      if (arg.constant.kind() == ValueKind::kString) {
        const std::string& bare = arg.constant.AsString();
        const std::string& bare_mapped = Map(bare);
        if (bare_mapped != bare) return TermArg::Variable(bare_mapped);
      }
      return arg;
    }
    case TermArg::Kind::kNested: {
      std::vector<AttrDescriptor> nested;
      nested.reserve(arg.nested.size());
      for (const AttrDescriptor& d : arg.nested) nested.push_back(Apply(d));
      return TermArg::Nested(std::move(nested));
    }
  }
  return arg;
}

AttrDescriptor ReverseSubstitution::Apply(
    const AttrDescriptor& descriptor) const {
  AttrDescriptor out = descriptor;
  out.value = Apply(descriptor.value);
  const std::string& mapped = Map(descriptor.attribute);
  if (mapped != descriptor.attribute) {
    out.attribute = mapped;
    out.attr_is_variable = true;
  }
  return out;
}

OTerm ReverseSubstitution::Apply(const OTerm& term) const {
  OTerm out;
  out.object = Apply(term.object);
  out.class_name = term.class_name;
  out.attrs.reserve(term.attrs.size());
  for (const AttrDescriptor& d : term.attrs) out.attrs.push_back(Apply(d));
  return out;
}

Literal ReverseSubstitution::Apply(const Literal& literal) const {
  Literal out = literal;
  switch (literal.kind) {
    case Literal::Kind::kOTerm:
      out.oterm = Apply(literal.oterm);
      break;
    case Literal::Kind::kCompare:
      out.cmp_lhs = Apply(literal.cmp_lhs);
      out.cmp_rhs = Apply(literal.cmp_rhs);
      break;
    case Literal::Kind::kPredicate:
      for (TermArg& a : out.args) a = Apply(a);
      break;
  }
  return out;
}

ReverseSubstitution ReverseSubstitution::Compose(
    const ReverseSubstitution& delta) const {
  ReverseSubstitution out;
  // {c_1/x_1 δ, ..., c_n/x_n δ}: apply δ to the targets, dropping
  // identity bindings.
  for (const Binding& b : bindings_) {
    const std::string target = delta.Map(b.to);
    if (b.from == target) continue;  // c_i == x_i δ: drop
    out.bindings_.push_back({b.from, target});
  }
  // Append δ's bindings whose tokens are not among our c_i.
  for (const Binding& d : delta.bindings_) {
    bool shadowed = false;
    for (const Binding& b : bindings_) {
      if (b.from == d.from) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) out.bindings_.push_back(d);
  }
  return out;
}

std::string ReverseSubstitution::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(bindings_.size());
  for (const Binding& b : bindings_) {
    parts.push_back(StrCat(b.from, "/", b.to));
  }
  return StrCat("{", Join(parts, ", "), "}");
}

}  // namespace ooint
