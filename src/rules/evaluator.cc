#include "rules/evaluator.h"

#include <algorithm>

#include "common/string_util.h"

namespace ooint {

void Evaluator::AddSource(const std::string& schema_name,
                          const InstanceStore* store) {
  sources_.push_back({schema_name, store});
}

Status Evaluator::BindConcept(const std::string& concept_name,
                              const std::string& schema_name,
                              const std::string& class_name) {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].schema_name != schema_name) continue;
    if (sources_[i].store->schema().FindClass(class_name) ==
        kInvalidClassId) {
      return Status::NotFound(StrCat("class '", class_name,
                                     "' not in source schema '", schema_name,
                                     "'"));
    }
    bindings_decl_.push_back({concept_name, i, class_name});
    evaluated_ = false;
    return Status::OK();
  }
  return Status::NotFound(StrCat("no source registered for schema '",
                                 schema_name, "'"));
}

Status Evaluator::AddRule(Rule rule) {
  if (rule.documentation_only) {
    return Status::Unsupported(
        StrCat("rule is documentation-only: ", rule.ToString()));
  }
  if (rule.disjunctive_head || rule.head.size() != 1) {
    return Status::Unsupported(
        StrCat("only definite (single-head) rules are evaluable: ",
               rule.ToString()));
  }
  if (rule.head.front().kind == Literal::Kind::kCompare) {
    return Status::Unsupported(
        StrCat("comparison literals cannot head a rule: ", rule.ToString()));
  }
  OOINT_RETURN_IF_ERROR(CheckRuleSafety(rule));
  rules_.push_back(std::move(rule));
  evaluated_ = false;
  return Status::OK();
}

void Evaluator::Reset() {
  evaluated_ = false;
  all_facts_.clear();
  facts_.clear();
  fact_keys_.clear();
  skolem_attr_keys_.clear();
  by_oid_.clear();
  skolem_counter_ = 0;
  stats_ = Stats();
}

FactMatcher Evaluator::MakeMatcher() const {
  return FactMatcher([this](const Oid& oid) { return FindByOid(oid); },
                     mappings_);
}

bool Evaluator::InsertFact(Fact fact) {
  const std::string key = fact.CanonicalKey();
  if (!fact_keys_.insert(key).second) return false;
  all_facts_.push_back(std::move(fact));
  const Fact& stored = all_facts_.back();
  facts_[stored.concept_name].push_back(&stored);
  if (!stored.oid.empty()) {
    by_oid_.emplace(stored.oid, &stored);
  }
  return true;
}

Status Evaluator::LoadBaseFacts() {
  for (const ConceptBinding& binding : bindings_decl_) {
    const Source& source = sources_[binding.source_index];
    Result<std::vector<Oid>> extent =
        source.store->Extent(binding.class_name);
    if (!extent.ok()) return extent.status();
    for (const Oid& oid : extent.value()) {
      const Object* object = source.store->Find(oid);
      if (object == nullptr) continue;
      if (InsertFact(Fact::FromObject(binding.concept_name, *object))) {
        ++stats_.base_facts;
      }
    }
  }
  return Status::OK();
}

Status Evaluator::Stratify(std::map<std::string, int>* strata,
                           int* max_stratum) const {
  std::set<std::string> concepts;
  for (const Rule& rule : rules_) {
    for (const std::string& c : rule.HeadConceptNames()) concepts.insert(c);
    for (const std::string& c : rule.BodyConceptNames(false)) {
      concepts.insert(c);
    }
  }
  for (const std::string& c : concepts) (*strata)[c] = 0;
  const size_t limit = concepts.size() + 1;
  for (size_t round = 0; round <= limit; ++round) {
    bool changed = false;
    for (const Rule& rule : rules_) {
      for (const std::string& head : rule.HeadConceptNames()) {
        int& h = (*strata)[head];
        for (const Literal& literal : rule.body) {
          std::string body_concept;
          if (literal.kind == Literal::Kind::kOTerm) {
            body_concept = literal.oterm.class_name;
          } else if (literal.kind == Literal::Kind::kPredicate) {
            body_concept = literal.pred_name;
          } else {
            continue;
          }
          const int b = (*strata)[body_concept];
          const int need = literal.negated ? b + 1 : b;
          if (h < need) {
            h = need;
            changed = true;
          }
        }
      }
    }
    if (!changed) {
      *max_stratum = 0;
      for (const auto& [concept_name, stratum] : *strata) {
        (void)concept_name;
        *max_stratum = std::max(*max_stratum, stratum);
      }
      return Status::OK();
    }
  }
  return Status::FailedPrecondition(
      "rule set is not stratified (negation through recursion)");
}

Status Evaluator::Evaluate() {
  if (evaluated_) return Status::OK();
  Reset();
  OOINT_RETURN_IF_ERROR(LoadBaseFacts());
  std::map<std::string, int> strata;
  int max_stratum = 0;
  OOINT_RETURN_IF_ERROR(Stratify(&strata, &max_stratum));
  stats_.strata = static_cast<size_t>(max_stratum) + 1;

  for (int stratum = 0; stratum <= max_stratum; ++stratum) {
    std::vector<const Rule*> active;
    for (const Rule& rule : rules_) {
      const std::vector<std::string> heads = rule.HeadConceptNames();
      if (!heads.empty() && strata[heads.front()] == stratum) {
        active.push_back(&rule);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      ++stats_.iterations;
      for (const Rule* rule : active) {
        std::vector<Fact> new_facts;
        OOINT_RETURN_IF_ERROR(ApplyRule(*rule, &new_facts));
        for (Fact& fact : new_facts) {
          if (InsertFact(std::move(fact))) {
            ++stats_.derived_facts;
            changed = true;
          }
        }
      }
    }
  }
  evaluated_ = true;
  return Status::OK();
}

const std::vector<const Fact*>& Evaluator::CurrentFacts(
    const std::string& concept_name) const {
  static const std::vector<const Fact*> kEmpty;
  auto it = facts_.find(concept_name);
  return it == facts_.end() ? kEmpty : it->second;
}

std::vector<const Fact*> Evaluator::FactsOf(const std::string& concept_name) const {
  return CurrentFacts(concept_name);
}

const Fact* Evaluator::FindByOid(const Oid& oid) const {
  auto it = by_oid_.find(oid);
  return it == by_oid_.end() ? nullptr : it->second;
}

Status Evaluator::SolveBody(const FactMatcher& matcher,
                            const std::vector<Literal>& body, size_t index,
                            Solution solution,
                            std::vector<Solution>* solutions) const {
  if (index == body.size()) {
    solutions->push_back(std::move(solution));
    return Status::OK();
  }
  const Literal& literal = body[index];
  switch (literal.kind) {
    case Literal::Kind::kOTerm: {
      const std::vector<const Fact*>& candidates =
          CurrentFacts(literal.oterm.class_name);
      if (!literal.negated) {
        for (const Fact* fact : candidates) {
          std::vector<Bindings> matches;
          matcher.MatchOTerm(literal.oterm, *fact, solution.bindings,
                             &matches);
          for (Bindings& match : matches) {
            Solution next = solution;
            next.bindings = std::move(match);
            next.matched.push_back(fact);
            OOINT_RETURN_IF_ERROR(SolveBody(matcher, body, index + 1,
                                            std::move(next), solutions));
          }
        }
      } else {
        bool found = false;
        for (const Fact* fact : candidates) {
          std::vector<Bindings> matches;
          matcher.MatchOTerm(literal.oterm, *fact, solution.bindings,
                             &matches);
          if (!matches.empty()) {
            found = true;
            break;
          }
        }
        if (!found) {
          OOINT_RETURN_IF_ERROR(SolveBody(matcher, body, index + 1,
                                          std::move(solution), solutions));
        }
      }
      return Status::OK();
    }
    case Literal::Kind::kPredicate: {
      const std::vector<const Fact*>& candidates =
          CurrentFacts(literal.pred_name);
      auto match_args = [&](const Fact& fact, Bindings* b) -> bool {
        for (size_t i = 0; i < literal.args.size(); ++i) {
          auto it = fact.attrs.find(StrCat(i));
          if (it == fact.attrs.end()) return false;
          const TermArg& arg = literal.args[i];
          if (arg.is_constant()) {
            if (!matcher.ValuesEqual(arg.constant, it->second)) return false;
          } else if (arg.is_variable()) {
            auto bound = b->find(arg.var);
            if (bound != b->end()) {
              if (!matcher.ValuesEqual(bound->second, it->second)) {
                return false;
              }
            } else {
              b->emplace(arg.var, it->second);
            }
          } else {
            return false;
          }
        }
        return true;
      };
      if (!literal.negated) {
        for (const Fact* fact : candidates) {
          Bindings next = solution.bindings;
          if (match_args(*fact, &next)) {
            Solution s = solution;
            s.bindings = std::move(next);
            OOINT_RETURN_IF_ERROR(
                SolveBody(matcher, body, index + 1, std::move(s), solutions));
          }
        }
      } else {
        bool found = false;
        for (const Fact* fact : candidates) {
          Bindings next = solution.bindings;
          if (match_args(*fact, &next)) {
            found = true;
            break;
          }
        }
        if (!found) {
          OOINT_RETURN_IF_ERROR(SolveBody(matcher, body, index + 1,
                                          std::move(solution), solutions));
        }
      }
      return Status::OK();
    }
    case Literal::Kind::kCompare: {
      Value lhs;
      Value rhs;
      const bool lhs_ok = ResolveArg(literal.cmp_lhs, solution.bindings, &lhs);
      const bool rhs_ok = ResolveArg(literal.cmp_rhs, solution.bindings, &rhs);
      if (literal.cmp_op == CompareOp::kEq && !literal.negated &&
          lhs_ok != rhs_ok) {
        // Equality with exactly one bound side binds the other.
        const TermArg& unbound = lhs_ok ? literal.cmp_rhs : literal.cmp_lhs;
        const Value& value = lhs_ok ? lhs : rhs;
        if (!unbound.is_variable()) return Status::OK();
        Solution next = solution;
        next.bindings[unbound.var] = value;
        return SolveBody(matcher, body, index + 1, std::move(next),
                         solutions);
      }
      if (!lhs_ok || !rhs_ok) {
        return Status::FailedPrecondition(StrCat(
            "comparison over unbound variables: ", literal.ToString()));
      }
      bool truth = false;
      if (literal.cmp_op == CompareOp::kEq) {
        truth = matcher.ValuesEqual(lhs, rhs);
      } else if (literal.cmp_op == CompareOp::kNe) {
        truth = !matcher.ValuesEqual(lhs, rhs);
      } else {
        Result<bool> cmp = Compare(lhs, literal.cmp_op, rhs);
        if (!cmp.ok()) return cmp.status();
        truth = cmp.value();
      }
      if (truth != literal.negated) {
        return SolveBody(matcher, body, index + 1, std::move(solution),
                         solutions);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable literal kind");
}

Status Evaluator::ApplyRule(const Rule& rule, std::vector<Fact>* new_facts) {
  ++stats_.rule_applications;
  const FactMatcher matcher = MakeMatcher();
  std::vector<Solution> solutions;
  OOINT_RETURN_IF_ERROR(
      SolveBody(matcher, rule.body, 0, Solution(), &solutions));

  const Literal& head = rule.head.front();
  for (const Solution& solution : solutions) {
    Fact fact;
    if (head.kind == Literal::Kind::kPredicate) {
      fact.concept_name = head.pred_name;
      for (size_t i = 0; i < head.args.size(); ++i) {
        Value v;
        if (!ResolveArg(head.args[i], solution.bindings, &v)) {
          return Status::FailedPrecondition(
              StrCat("unbound head argument in rule: ", rule.ToString()));
        }
        fact.attrs[StrCat(i)] = std::move(v);
      }
      new_facts->push_back(std::move(fact));
      continue;
    }

    // O-term head.
    fact.concept_name = head.oterm.class_name;

    // Instantiate descriptors; nested descriptors flatten to dotted
    // attribute names ("book.ISBN").
    Status flatten_status = Status::OK();
    auto flatten = [&](auto&& self, const std::vector<AttrDescriptor>& ds,
                       const std::string& prefix) -> void {
      for (const AttrDescriptor& d : ds) {
        if (!flatten_status.ok()) return;
        std::string name = d.attribute;
        if (d.attr_is_variable) {
          auto it = solution.bindings.find(d.attribute);
          if (it == solution.bindings.end() ||
              it->second.kind() != ValueKind::kString) {
            flatten_status = Status::FailedPrecondition(
                StrCat("unbound attribute-name variable '", d.attribute,
                       "' in rule head"));
            return;
          }
          name = it->second.AsString();
        }
        const std::string full =
            prefix.empty() ? name : StrCat(prefix, ".", name);
        if (d.value.is_nested()) {
          self(self, d.value.nested, full);
          continue;
        }
        Value v;
        if (d.value.is_constant()) {
          v = d.value.constant;
        } else {
          auto it = solution.bindings.find(d.value.var);
          if (it == solution.bindings.end()) {
            if (!d.value.var.empty() && d.value.var[0] == '_') {
              continue;  // existential attribute: leave unset
            }
            flatten_status = Status::FailedPrecondition(
                StrCat("unbound head variable '", d.value.var, "'"));
            return;
          }
          v = it->second;
        }
        fact.attrs[full] = std::move(v);
      }
    };
    flatten(flatten, head.oterm.attrs, "");
    OOINT_RETURN_IF_ERROR(flatten_status);

    // Object position: bound variable / constant OID, or a skolem OID
    // for existential ('_'-prefixed or unbound) object variables.
    bool skolem = true;
    if (head.oterm.object.is_constant()) {
      if (head.oterm.object.constant.kind() == ValueKind::kOid) {
        fact.oid = head.oterm.object.constant.AsOid();
        skolem = false;
      }
    } else if (head.oterm.object.is_variable()) {
      auto it = solution.bindings.find(head.oterm.object.var);
      if (it != solution.bindings.end() &&
          it->second.kind() == ValueKind::kOid) {
        fact.oid = it->second.AsOid();
        skolem = false;
      }
    }
    if (skolem) {
      // De-duplicate derived entities by their attribute values.
      const std::string key = fact.AttrKey();
      auto& seen = skolem_attr_keys_[fact.concept_name];
      if (seen.count(key) != 0) continue;
      seen.insert(key);
      fact.oid = Oid("derived", "ooint", "global", fact.concept_name,
                     ++skolem_counter_);
    } else {
      // Merge the attributes of every matched body fact describing the
      // same entity, so membership rules (<x: IS_AB> <= <x: A>, ...)
      // carry the entity's data into the integrated class.
      for (const Fact* matched : solution.matched) {
        if (matched->oid.empty()) continue;
        if (!matcher.ValuesEqual(Value::OfOid(matched->oid),
                                 Value::OfOid(fact.oid))) {
          continue;
        }
        for (const auto& [name, value] : matched->attrs) {
          fact.attrs.emplace(name, value);
        }
      }
    }
    new_facts->push_back(std::move(fact));
  }
  return Status::OK();
}

Result<std::vector<Bindings>> Evaluator::Query(const OTerm& pattern) const {
  if (!evaluated_) {
    return Status::FailedPrecondition("call Evaluate() before Query()");
  }
  const FactMatcher matcher = MakeMatcher();
  std::vector<Bindings> out;
  for (const Fact* fact : CurrentFacts(pattern.class_name)) {
    matcher.MatchOTerm(pattern, *fact, Bindings(), &out);
  }
  // De-duplicate bindings.
  std::set<std::string> seen;
  std::vector<Bindings> unique;
  for (Bindings& b : out) {
    std::string key;
    for (const auto& [var, value] : b) {
      key += StrCat(var, "=", value.ToString(), ";");
    }
    if (seen.insert(key).second) unique.push_back(std::move(b));
  }
  return unique;
}

}  // namespace ooint
