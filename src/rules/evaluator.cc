#include "rules/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <numeric>
#include <set>

#include "common/string_util.h"
#include "rules/magic.h"

namespace ooint {

namespace {

/// True when every variable occurring in `literal` is bound.
bool AllVarsBound(const Literal& literal, const Bindings& bindings) {
  std::vector<std::string> vars;
  CollectVariables(literal, &vars);
  for (const std::string& v : vars) {
    if (bindings.find(v) == bindings.end()) return false;
  }
  return true;
}

int BoundVarCount(const Literal& literal, const Bindings& bindings) {
  std::vector<std::string> vars;
  CollectVariables(literal, &vars);
  int bound = 0;
  for (const std::string& v : vars) {
    if (bindings.find(v) != bindings.end()) ++bound;
  }
  return bound;
}

/// The always-available, in-process implementation of ExtentSource.
class DirectStoreSource : public ExtentSource {
 public:
  explicit DirectStoreSource(const InstanceStore* store) : store_(store) {}

  const Schema& schema() const override { return store_->schema(); }

  Result<std::vector<const Object*>> FetchExtent(
      const std::string& class_name) override {
    Result<std::vector<Oid>> extent = store_->Extent(class_name);
    if (!extent.ok()) return extent.status();
    std::vector<const Object*> objects;
    objects.reserve(extent.value().size());
    for (const Oid& oid : extent.value()) {
      const Object* object = store_->Find(oid);
      if (object != nullptr) objects.push_back(object);
    }
    return objects;
  }

 private:
  const InstanceStore* store_;
};

/// The kDeadlineExceeded an expired/cancelled token unwinds with.
Status DeadlineStatus(const CancelToken& token, const char* where) {
  if (token.cancelled()) {
    return Status::DeadlineExceeded(StrCat("query cancelled ", where));
  }
  return Status::DeadlineExceeded(
      StrCat("query deadline (", token.budget_ms(), "ms) exceeded ", where,
             " (", token.spent_ms(), "ms spent)"));
}

}  // namespace

std::vector<ExtentReply> FetchExtentsOverlapped(
    const std::vector<ExtentRequest>& requests, ThreadPool* pool,
    const CancelToken& token) {
  std::vector<ExtentReply> replies(requests.size());
  auto fetch_one = [&requests, &replies, &token](size_t i) {
    if (token.Expired()) {
      // Fast unwind: once the query is out of time, remaining fetches
      // are not issued at all — no retries burned, no breaker movement.
      replies[i].status = DeadlineStatus(token, "before extent fetch");
      return;
    }
    replies[i].issued = true;
    const auto start = std::chrono::steady_clock::now();
    Result<std::vector<const Object*>> extent =
        requests[i].source->FetchExtent(requests[i].class_name, token);
    replies[i].wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (extent.ok()) {
      replies[i].objects = std::move(extent).value();
    } else {
      replies[i].status = extent.status();
    }
  };
  if (pool == nullptr || pool->size() < 2 || requests.size() < 2) {
    for (size_t i = 0; i < requests.size(); ++i) fetch_one(i);
    return replies;
  }
  // One task per distinct source, in first-appearance order; requests
  // of one source stay serial and ordered within their task (see the
  // header's determinism contract).
  std::vector<std::vector<size_t>> groups;
  std::map<const ExtentSource*, size_t> group_of;
  for (size_t i = 0; i < requests.size(); ++i) {
    auto [it, inserted] = group_of.emplace(requests[i].source, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(groups.size());
  for (const std::vector<size_t>& group : groups) {
    tasks.emplace_back([&fetch_one, group] {
      for (size_t i : group) fetch_one(i);
    });
  }
  pool->RunAll(std::move(tasks));
  return replies;
}

bool DegradedInfo::SkippedAgentNamed(const std::string& schema_name) const {
  for (const SkippedAgent& agent : skipped) {
    if (agent.schema_name == schema_name) return true;
  }
  return false;
}

std::string DegradedInfo::ToString() const {
  if (!degraded()) {
    if (pruned_agents.empty()) return "complete";
    return StrCat("complete (relevance-pruned agents, not contacted: ",
                  Join(pruned_agents, ", "), ")");
  }
  std::string out = "degraded {\n";
  for (const SkippedAgent& agent : skipped) {
    out += StrCat("  skipped (fault) ", agent.schema_name, ": ",
                  agent.status.ToString(), "\n");
  }
  if (!pruned_agents.empty()) {
    out += StrCat("  relevance-pruned (not contacted, answer unaffected): ",
                  Join(pruned_agents, ", "), "\n");
  }
  if (!incomplete_concepts.empty() || !skipped.empty()) {
    out += StrCat("  incomplete: ", Join(incomplete_concepts, ", "), "\n");
  }
  if (!unsound_concepts.empty()) {
    out += StrCat("  possibly unsound (via negation): ",
                  Join(unsound_concepts, ", "), "\n");
  }
  if (deadline_truncated) {
    out += StrCat("  deadline-truncated (sound subset): ",
                  Join(truncated_concepts, ", "), "\n");
  }
  out += "}";
  return out;
}

void Evaluator::AddSource(const std::string& schema_name,
                          const InstanceStore* store) {
  AddSource(schema_name, std::make_unique<DirectStoreSource>(store));
}

void Evaluator::AddSource(const std::string& schema_name,
                          std::unique_ptr<ExtentSource> source) {
  Source entry;
  entry.schema_name = schema_name;
  entry.source = source.get();
  entry.owned = std::move(source);
  sources_.push_back(std::move(entry));
}

void Evaluator::AddBorrowedSource(const std::string& schema_name,
                                  ExtentSource* source) {
  Source entry;
  entry.schema_name = schema_name;
  entry.source = source;
  sources_.push_back(std::move(entry));
}

void Evaluator::AddFact(Fact fact) {
  seed_facts_.push_back(std::move(fact));
  evaluated_ = false;
}

Status Evaluator::BindConcept(const std::string& concept_name,
                              const std::string& schema_name,
                              const std::string& class_name) {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].schema_name != schema_name) continue;
    if (sources_[i].source->schema().FindClass(class_name) ==
        kInvalidClassId) {
      return Status::NotFound(StrCat("class '", class_name,
                                     "' not in source schema '", schema_name,
                                     "'"));
    }
    bindings_decl_.push_back({concept_name, i, class_name});
    evaluated_ = false;
    return Status::OK();
  }
  return Status::NotFound(StrCat("no source registered for schema '",
                                 schema_name, "'"));
}

Status Evaluator::AddRule(Rule rule) {
  if (rule.documentation_only) {
    return Status::Unsupported(
        StrCat("rule is documentation-only: ", rule.ToString()));
  }
  if (rule.disjunctive_head || rule.head.size() != 1) {
    return Status::Unsupported(
        StrCat("only definite (single-head) rules are evaluable: ",
               rule.ToString()));
  }
  if (rule.head.front().kind == Literal::Kind::kCompare) {
    return Status::Unsupported(
        StrCat("comparison literals cannot head a rule: ", rule.ToString()));
  }
  OOINT_RETURN_IF_ERROR(CheckRuleSafety(rule));
  rules_.push_back(std::move(rule));
  evaluated_ = false;
  return Status::OK();
}

void Evaluator::Reset() {
  evaluated_ = false;
  store_.Clear();
  skolem_seen_.clear();
  stats_ = Stats();
  degraded_ = DegradedInfo();
}

FactMatcher Evaluator::MakeMatcher() const {
  if (resolver_override_) return FactMatcher(resolver_override_, mappings_);
  return FactMatcher(
      [this](const Oid& oid) { return store_.ViewByOid(oid); }, mappings_);
}

FactId Evaluator::InsertFact(Fact fact) {
  return store_.Insert(std::move(fact));
}

Status Evaluator::LoadBaseFacts() {
  // Concept -> false, seeded with every directly incomplete concept;
  // PropagateIncompleteness flips the flag to true past a negation.
  std::map<std::string, bool> direct;
  // Bound concepts whose fetch never completed because the query's
  // deadline fired — a loss charged to the *query*, not to any agent
  // (kPartial taxonomy: truncation, not a fault-skip).
  std::vector<std::string> truncated;
  for (const Fact& seed : seed_facts_) {
    if (InsertFact(seed) != kNoFact) ++stats_.base_facts;
  }
  const bool overlap =
      pool_ != nullptr && pool_->size() > 1 && bindings_decl_.size() > 1;
  if (overlap) {
    // Concurrent fetch: all bindings issued at once, grouped per source
    // (so each source's retry/backoff/fault stream stays serial and
    // ordered), then merged in declaration order — the store receives
    // base facts in exactly the serial order.
    std::vector<ExtentRequest> requests;
    requests.reserve(bindings_decl_.size());
    for (const ConceptBinding& binding : bindings_decl_) {
      requests.push_back(
          {sources_[binding.source_index].source, binding.class_name});
    }
    const auto batch_start = std::chrono::steady_clock::now();
    std::vector<ExtentReply> replies =
        FetchExtentsOverlapped(requests, pool_.get(), token_);
    stats_.fetch_wall_ms += std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - batch_start)
                                .count();
    for (size_t i = 0; i < replies.size(); ++i) {
      const ConceptBinding& binding = bindings_decl_[i];
      const Source& source = sources_[binding.source_index];
      if (replies[i].issued) {
        ++stats_.extents_fetched;
        stats_.fetch_ms_sum += replies[i].wall_ms;
      }
      if (!replies[i].status.ok()) {
        // Attribution rule: a failure processed while the query's token
        // is expired is the *query's* loss (truncation), whatever the
        // proximate status — the clock ran out, retries stopped, and no
        // agent should be condemned for it. Otherwise it is the agent's
        // fault (skip).
        if (!replies[i].issued || token_.Expired()) {
          if (failure_policy_ == FailurePolicy::kStrict) {
            return DeadlineStatus(token_, "during base extent loading");
          }
          truncated.push_back(binding.concept_name);
          continue;
        }
        if (failure_policy_ == FailurePolicy::kStrict) {
          return replies[i].status;
        }
        if (!degraded_.SkippedAgentNamed(source.schema_name)) {
          degraded_.skipped.push_back({source.schema_name, replies[i].status});
        }
        direct.emplace(binding.concept_name, false);
        continue;
      }
      for (const Object* object : replies[i].objects) {
        if (object == nullptr) continue;
        if (InsertFact(Fact::FromObject(binding.concept_name, *object)) !=
            kNoFact) {
          ++stats_.base_facts;
        }
      }
    }
    if (!direct.empty()) PropagateIncompleteness(direct);
    if (!truncated.empty()) MarkTruncated(std::move(truncated));
    return Status::OK();
  }
  for (const ConceptBinding& binding : bindings_decl_) {
    const Source& source = sources_[binding.source_index];
    if (token_.Expired()) {
      // Out of time: the remaining extents are not fetched at all.
      if (failure_policy_ == FailurePolicy::kStrict) {
        return DeadlineStatus(token_, "during base extent loading");
      }
      truncated.push_back(binding.concept_name);
      continue;
    }
    ++stats_.extents_fetched;
    Result<std::vector<const Object*>> extent =
        source.source->FetchExtent(binding.class_name, token_);
    if (!extent.ok()) {
      // Same attribution rule as the overlapped path: expired token =>
      // the query's truncation, not the agent's fault.
      if (token_.Expired()) {
        if (failure_policy_ == FailurePolicy::kStrict) {
          return DeadlineStatus(token_, "during base extent loading");
        }
        truncated.push_back(binding.concept_name);
        continue;
      }
      if (failure_policy_ == FailurePolicy::kStrict) return extent.status();
      if (!degraded_.SkippedAgentNamed(source.schema_name)) {
        degraded_.skipped.push_back({source.schema_name, extent.status()});
      }
      direct.emplace(binding.concept_name, false);
      continue;
    }
    for (const Object* object : extent.value()) {
      if (object == nullptr) continue;
      if (InsertFact(Fact::FromObject(binding.concept_name, *object)) !=
          kNoFact) {
        ++stats_.base_facts;
      }
    }
  }
  if (!direct.empty()) PropagateIncompleteness(direct);
  if (!truncated.empty()) MarkTruncated(std::move(truncated));
  return Status::OK();
}

void Evaluator::MarkTruncated(std::vector<std::string> concepts) {
  degraded_.deadline_truncated = true;
  std::vector<std::string>& out = degraded_.truncated_concepts;
  out.insert(out.end(), std::make_move_iterator(concepts.begin()),
             std::make_move_iterator(concepts.end()));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void Evaluator::PropagateIncompleteness(
    const std::map<std::string, bool>& direct) {
  // Fixpoint over the rule dependency graph: a head concept inherits
  // incompleteness from any body concept, and inherits (or acquires,
  // when the edge itself is negated) the via-negation taint that breaks
  // the sound-subset guarantee.
  std::map<std::string, bool> reached = direct;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules_) {
      for (const Literal& literal : rule.body) {
        std::string body_concept;
        if (literal.kind == Literal::Kind::kOTerm) {
          body_concept = literal.oterm.class_name;
        } else if (literal.kind == Literal::Kind::kPredicate) {
          body_concept = literal.pred_name;
        } else {
          continue;
        }
        auto hit = reached.find(body_concept);
        if (hit == reached.end()) continue;
        const bool tainted = hit->second || literal.negated;
        for (const std::string& head : rule.HeadConceptNames()) {
          auto [it, inserted] = reached.emplace(head, tainted);
          if (inserted || (tainted && !it->second)) {
            it->second = it->second || tainted;
            changed = true;
          }
        }
      }
    }
  }
  for (const auto& [concept_name, tainted] : reached) {
    degraded_.incomplete_concepts.push_back(concept_name);
    if (tainted) degraded_.unsound_concepts.push_back(concept_name);
  }
}

Status Evaluator::Stratify(std::map<std::string, int>* strata,
                           int* max_stratum) const {
  std::set<std::string> concepts;
  for (const Rule& rule : rules_) {
    for (const std::string& c : rule.HeadConceptNames()) concepts.insert(c);
    for (const std::string& c : rule.BodyConceptNames(false)) {
      concepts.insert(c);
    }
  }
  for (const std::string& c : concepts) (*strata)[c] = 0;
  const size_t limit = concepts.size() + 1;
  for (size_t round = 0; round <= limit; ++round) {
    bool changed = false;
    for (const Rule& rule : rules_) {
      for (const std::string& head : rule.HeadConceptNames()) {
        int& h = (*strata)[head];
        for (const Literal& literal : rule.body) {
          std::string body_concept;
          if (literal.kind == Literal::Kind::kOTerm) {
            body_concept = literal.oterm.class_name;
          } else if (literal.kind == Literal::Kind::kPredicate) {
            body_concept = literal.pred_name;
          } else {
            continue;
          }
          const int b = (*strata)[body_concept];
          const int need = literal.negated ? b + 1 : b;
          if (h < need) {
            h = need;
            changed = true;
          }
        }
      }
    }
    if (!changed) {
      *max_stratum = 0;
      for (const auto& [concept_name, stratum] : *strata) {
        (void)concept_name;
        *max_stratum = std::max(*max_stratum, stratum);
      }
      return Status::OK();
    }
  }
  return Status::FailedPrecondition(
      "rule set is not stratified (negation through recursion)");
}

Status Evaluator::Evaluate() {
  if (evaluated_) return Status::OK();
  Reset();
  if (token_.Expired()) {
    // Pre-expired token (zero deadline, or cancelled before start):
    // fail before fetching any extent or mutating anything, under
    // either failure policy — there is no partial answer to salvage.
    return DeadlineStatus(token_, "before evaluation started");
  }
  const Status status = EvaluateImpl();
  if (!status.ok() && token_.active()) {
    // Deadline/cancellation unwind contract: the store, skolem table
    // and stats are left bit-identical to a never-started evaluation
    // (conformance family 9 checks exactly this).
    Reset();
  }
  return status;
}

Status Evaluator::EvaluateImpl() {
  OOINT_RETURN_IF_ERROR(LoadBaseFacts());
  std::map<std::string, int> strata;
  int max_stratum = 0;
  OOINT_RETURN_IF_ERROR(Stratify(&strata, &max_stratum));
  stats_.strata = static_cast<size_t>(max_stratum) + 1;
  const FactMatcher matcher = MakeMatcher();

  // Deadline fired while loading base extents (kPartial; kStrict
  // unwound inside LoadBaseFacts): every derived concept is suspect
  // because no derivation ran at all. The base facts loaded so far are
  // genuine, so returning them is sound.
  if (degraded_.deadline_truncated) {
    std::vector<std::string> heads;
    for (const Rule& rule : rules_) {
      for (const std::string& head : rule.HeadConceptNames()) {
        heads.push_back(head);
      }
    }
    MarkTruncated(std::move(heads));
    evaluated_ = true;
    return Status::OK();
  }

  // Stops derivation at a round boundary once the token expires:
  // kStrict unwinds with kDeadlineExceeded; kPartial marks every
  // concept heading a rule in an unfinished stratum (>= `stratum`)
  // truncated — lower strata completed, so their heads are exact.
  bool deadline_stop = false;
  auto StopAtDeadline = [&](int stratum) -> Status {
    if (failure_policy_ == FailurePolicy::kStrict) {
      return DeadlineStatus(token_, "during fixpoint evaluation");
    }
    std::vector<std::string> heads;
    for (const Rule& rule : rules_) {
      for (const std::string& head : rule.HeadConceptNames()) {
        if (strata[head] >= stratum) heads.push_back(head);
      }
    }
    MarkTruncated(std::move(heads));
    deadline_stop = true;
    return Status::OK();
  };

  // Per-rule join plans: the positions of positive fact literals (the
  // delta-restrictable ones), with their concepts interned up front,
  // plus the cost-based body orders. Plans are cached per (rule,
  // stratum): the stratum boundary is where extent estimates shift
  // most, and recomputing there keeps them fresh without per-round
  // planner work.
  struct RulePlan {
    const Rule* rule;
    std::vector<std::pair<size_t, ConceptId>> positive;
    // Body order for the unrestricted first round (no delta literal).
    BodyPlan first_plan;
    // delta_plans[k] is the order for the round with the delta window
    // at positive[k].
    std::vector<BodyPlan> delta_plans;
  };

  for (int stratum = 0; stratum <= max_stratum; ++stratum) {
    const auto stratum_start = std::chrono::steady_clock::now();
    std::vector<RulePlan> active;
    for (const Rule& rule : rules_) {
      const std::vector<std::string> heads = rule.HeadConceptNames();
      if (heads.empty() || strata[heads.front()] != stratum) continue;
      RulePlan plan{&rule, {}};
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Literal& literal = rule.body[i];
        if (literal.negated) continue;
        if (literal.kind == Literal::Kind::kOTerm) {
          plan.positive.emplace_back(
              i, store_.InternConcept(literal.oterm.class_name));
        } else if (literal.kind == Literal::Kind::kPredicate) {
          plan.positive.emplace_back(
              i, store_.InternConcept(literal.pred_name));
        }
      }
      active.push_back(std::move(plan));
    }

    // Plan rule bodies serially, before any parallel round reads them.
    // The naive oracle and kFixedSip run unplanned; the kernel switch
    // doubles as the "historical engine" baseline toggle for benches.
    const bool plan_bodies = strategy_ != EvalStrategy::kNaive &&
                             use_join_kernel_ &&
                             planner_mode_ == PlannerMode::kCostBased;
    if (plan_bodies) {
      // Only the first (unrestricted) round's plans are computable now;
      // delta plans wait for the seed round to populate extents (a
      // stratum's own facts are invisible at stratum start, so their
      // estimates here would all be zero).
      for (RulePlan& plan : active) {
        plan.first_plan = ComputePlan(*plan.rule, -1, -1);
      }
    }

    if (strategy_ == EvalStrategy::kNaive) {
      // Textbook fixpoint: every rule over the whole universe, strict
      // left-to-right joins, linear scans. Kept as the differential
      // oracle for the semi-naive path.
      bool changed = true;
      while (changed) {
        // Each naive iteration is one bounded unit of derivation work
        // on the query's clock.
        token_.Charge(CancelToken::kRoundChargeMs);
        if (token_.Expired()) {
          OOINT_RETURN_IF_ERROR(StopAtDeadline(stratum));
          break;
        }
        changed = false;
        ++stats_.iterations;
        for (const RulePlan& plan : active) {
          JoinContext ctx;
          ctx.rule = plan.rule;
          ctx.reorder = false;
          ctx.use_index = false;
          size_t inserted = 0;
          OOINT_RETURN_IF_ERROR(ApplyRule(matcher, ctx, &inserted));
          if (inserted > 0) changed = true;
        }
      }
    } else {
      // Semi-naive rounds. The delta window of concept_id c in a round is
      // [prev[c], cur[c]) over c's extent ordinals; the first round of a
      // stratum seeds the delta with every fact visible so far (base
      // facts plus lower strata) and evaluates rules unrestricted.
      //
      // With a multi-thread pool each round splits into a parallel
      // *solve* phase (tasks join against the frozen round-start store,
      // ticking task-local counters) and a serial *merge* phase that
      // inserts every task's solutions in deterministic task order. A
      // fact the serial engine derives mid-round becomes visible one
      // round later here; the fixpoint closes over the same monotone
      // operator either way, so the final fact sets are identical.
      const bool parallel = pool_ != nullptr && pool_->size() > 1;
      // kFixedSip: strict left-to-right with indexes still on — sound
      // for every body the left-to-right naive oracle can evaluate.
      const bool fixed_sip = planner_mode_ == PlannerMode::kFixedSip;
      // Serial drivers share one scratch; parallel tasks each own one.
      JoinScratch scratch;
      std::vector<std::uint32_t> prev;
      bool first = true;
      while (true) {
        // Round boundary: the only place the fixpoint looks at the
        // clock, so truncation is always at a whole-round granularity
        // (every fact derived so far is a genuine derivation). Each
        // round charges one bounded unit of virtual time — pure
        // derivation cannot outrun the deadline even when every fetch
        // was instantaneous.
        token_.Charge(CancelToken::kRoundChargeMs);
        if (token_.Expired()) {
          OOINT_RETURN_IF_ERROR(StopAtDeadline(stratum));
          break;
        }
        std::vector<std::uint32_t> cur(store_.concept_count());
        for (ConceptId c = 0; c < cur.size(); ++c) {
          cur[c] = static_cast<std::uint32_t>(store_.CountOf(c));
        }
        prev.resize(cur.size(), 0);
        size_t delta_total = 0;
        for (size_t c = 0; c < cur.size(); ++c) delta_total += cur[c] - prev[c];
        // The converged (empty) round is recorded too, so the trace
        // reads seed, growth..., 0.
        stats_.delta_sizes.push_back(delta_total);
        if (!first && delta_total == 0) break;
        ++stats_.iterations;

        // Delta plans, computed lazily at the first delta round (serial
        // code between rounds) and cached for the rest of the stratum:
        // by now the seed round has run, so the estimates see the real
        // post-seed cardinalities.
        if (plan_bodies && !first) {
          for (RulePlan& plan : active) {
            if (plan.positive.empty() || !plan.delta_plans.empty()) continue;
            plan.delta_plans.reserve(plan.positive.size());
            for (const auto& [index, concept_id] : plan.positive) {
              plan.delta_plans.push_back(
                  ComputePlan(*plan.rule, static_cast<int>(index), -1));
            }
          }
        }

        if (parallel) {
          // Build the round's task list: one task per delta window
          // chunk. Chunking only depends on the round-start counts and
          // the pool size, so the task list (and the merge order) is
          // deterministic for a given num_threads.
          struct RoundTask {
            const RulePlan* plan = nullptr;
            JoinContext ctx;
            JoinScratch scratch;
            std::vector<Solution> solutions;
            Stats local;
            Status status;
          };
          std::vector<RoundTask> round;
          const std::uint32_t kMinChunk = 16;
          const std::uint32_t target_tasks =
              static_cast<std::uint32_t>(2 * pool_->size());
          auto chunked = [&](const RulePlan& plan, size_t literal,
                             const BodyPlan* body_plan, std::uint32_t begin,
                             std::uint32_t end) {
            const std::uint32_t len = end - begin;
            std::uint32_t chunk = (len + target_tasks - 1) / target_tasks;
            if (chunk < kMinChunk) chunk = kMinChunk;
            for (std::uint32_t at = begin; at < end; at += chunk) {
              RoundTask task;
              task.plan = &plan;
              task.ctx.rule = plan.rule;
              task.ctx.plan = body_plan;
              if (fixed_sip) task.ctx.reorder = false;
              task.ctx.delta_literal = static_cast<int>(literal);
              task.ctx.delta_begin = at;
              task.ctx.delta_end = std::min(end, at + chunk);
              round.push_back(std::move(task));
            }
          };
          for (const RulePlan& plan : active) {
            if (first) {
              if (plan.positive.empty()) {
                RoundTask task;
                task.plan = &plan;
                task.ctx.rule = plan.rule;
                if (plan_bodies) task.ctx.plan = &plan.first_plan;
                if (fixed_sip) task.ctx.reorder = false;
                round.push_back(std::move(task));
                continue;
              }
              // The first round is unrestricted; chunk over the first
              // positive literal's whole extent instead of a delta. An
              // empty extent means the rule cannot fire at all.
              const auto& [index, concept_id] = plan.positive.front();
              chunked(plan, index, plan_bodies ? &plan.first_plan : nullptr,
                      0, cur[concept_id]);
              continue;
            }
            for (size_t k = 0; k < plan.positive.size(); ++k) {
              const auto& [index, concept_id] = plan.positive[k];
              if (prev[concept_id] >= cur[concept_id]) continue;
              chunked(plan, index,
                      plan_bodies ? &plan.delta_plans[k] : nullptr,
                      prev[concept_id], cur[concept_id]);
            }
          }
          std::vector<std::function<void()>> tasks;
          tasks.reserve(round.size());
          // Pointer wiring only after `round` stops growing: stats and
          // scratch live inside the vector's elements.
          for (RoundTask& task : round) {
            task.ctx.stats = &task.local;
            task.ctx.scratch = &task.scratch;
            tasks.emplace_back([this, &matcher, &task] {
              task.status = SolveRule(matcher, task.ctx, &task.solutions);
            });
          }
          pool_->RunAll(std::move(tasks));
          for (RoundTask& task : round) {
            OOINT_RETURN_IF_ERROR(task.status);
            ++stats_.rule_applications;
            stats_.AddJoinCounters(task.local);
            size_t inserted = 0;
            OOINT_RETURN_IF_ERROR(InsertSolutions(*task.plan->rule, matcher,
                                                  task.solutions, &inserted));
          }
          prev = std::move(cur);
          first = false;
          continue;
        }

        for (const RulePlan& plan : active) {
          if (first) {
            JoinContext ctx;
            ctx.rule = plan.rule;
            ctx.scratch = &scratch;
            if (plan_bodies) ctx.plan = &plan.first_plan;
            if (fixed_sip) ctx.reorder = false;
            size_t inserted = 0;
            OOINT_RETURN_IF_ERROR(ApplyRule(matcher, ctx, &inserted));
            continue;
          }
          // A new instantiation must use at least one delta fact in some
          // positive position; run once per position with a non-empty
          // delta (rules without positive literals fired exhaustively in
          // the first round).
          for (size_t k = 0; k < plan.positive.size(); ++k) {
            const auto& [index, concept_id] = plan.positive[k];
            const std::uint32_t begin = prev[concept_id];
            const std::uint32_t end = cur[concept_id];
            if (begin >= end) continue;
            JoinContext ctx;
            ctx.rule = plan.rule;
            ctx.scratch = &scratch;
            if (plan_bodies) ctx.plan = &plan.delta_plans[k];
            if (fixed_sip) ctx.reorder = false;
            ctx.delta_literal = static_cast<int>(index);
            ctx.delta_begin = begin;
            ctx.delta_end = end;
            size_t inserted = 0;
            OOINT_RETURN_IF_ERROR(ApplyRule(matcher, ctx, &inserted));
          }
        }
        prev = std::move(cur);
        first = false;
      }
    }
    stats_.stratum_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - stratum_start)
            .count());
    if (deadline_stop) break;  // kPartial truncation: stop all strata
  }
  evaluated_ = true;
  return Status::OK();
}

std::vector<const Fact*> Evaluator::FactsOf(
    const std::string& concept_name) const {
  if (live_filter_ == nullptr) return store_.FactsOf(concept_name);
  // Incremental mode: the extent minus the logically deleted facts.
  std::vector<const Fact*> out;
  const ConceptId id = store_.FindConcept(concept_name);
  if (id == kNoConcept) return out;
  const size_t count = store_.CountOf(id);
  for (std::uint32_t ordinal = 0; ordinal < count; ++ordinal) {
    const FactId fid = store_.IdAt(id, ordinal);
    if (fid < live_filter_->size() && !(*live_filter_)[fid]) continue;
    out.push_back(store_.FactAt(id, ordinal));
  }
  return out;
}

BodyPlan Evaluator::ComputePlan(const Rule& rule, int delta_literal,
                                int pivot_literal) const {
  PlannerInput in;
  in.rule = &rule;
  in.delta_literal = delta_literal;
  in.pivot_literal = pivot_literal;
  in.extent_cost.assign(rule.body.size(), -1.0);
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& literal = rule.body[i];
    if (literal.kind == Literal::Kind::kCompare || literal.negated) continue;
    const std::string& name = literal.kind == Literal::Kind::kOTerm
                                  ? literal.oterm.class_name
                                  : literal.pred_name;
    const ConceptId id = store_.FindConcept(name);
    double est =
        id == kNoConcept ? 0.0 : static_cast<double>(store_.CountOf(id));
    // Magic guard extents hold only the demanded bindings, and joining
    // through one binds the adorned variables of its rule — better
    // selectivity than the raw count suggests.
    if (IsMagicConceptName(name)) est *= 0.25;
    in.extent_cost[i] = est;
  }
  BodyPlan plan = PlanBody(in, PlannerMode::kCostBased);
  // stats_ is written directly: plans are only computed in serial
  // sections (stratum starts, query/demand setup).
  if (plan.reordered) ++stats_.plan_reorders;
  return plan;
}

void Evaluator::CollectCandidates(const JoinContext& ctx, size_t literal_index,
                                  const Literal& literal,
                                  const Bindings& bindings,
                                  std::vector<std::uint32_t>* candidates,
                                  ConceptId* concept_id) const {
  const std::string& name = literal.kind == Literal::Kind::kOTerm
                                ? literal.oterm.class_name
                                : literal.pred_name;
  // Counter sink: task-local under parallel solve / concurrent Query,
  // the evaluator's own (mutable) stats otherwise.
  Stats& counters = ctx.stats != nullptr ? *ctx.stats : stats_;
  *concept_id = store_.FindConcept(name);
  if (*concept_id == kNoConcept) return;
  if (ctx.inc != nullptr &&
      static_cast<int>(literal_index) == ctx.inc->pivot_literal) {
    // Telescoped incremental join: this position sees exactly the pivot.
    const FactId pivot = ctx.inc->pivot_fact;
    if (pivot != kNoFact && store_.ConceptOf(pivot) == *concept_id) {
      candidates->push_back(store_.OrdinalOf(pivot));
    }
    return;
  }
  std::uint32_t begin = 0;
  std::uint32_t end = static_cast<std::uint32_t>(store_.CountOf(*concept_id));
  if (static_cast<int>(literal_index) == ctx.delta_literal) {
    begin = ctx.delta_begin;
    end = std::min(end, ctx.delta_end);
  }
  if (begin >= end) return;

  // Scratch for the kernel path: the caller's driver-owned buffers, or
  // call-local ones on cold paths that never wired any.
  JoinScratch local_scratch;
  JoinScratch& scratch =
      ctx.scratch != nullptr ? *ctx.scratch : local_scratch;
  std::vector<PostingsCursor>& cursors = scratch.cursors;
  cursors.clear();
  size_t best_index = 0;

  bool have_best = false;
  PostingsCursor best;
  if (ctx.use_index) {
    // OID probes are exact only without a data-mapping registry (mapped
    // OIDs compare equal without being bytewise equal); value probes are
    // likewise skipped for OID-kind values under mappings and for
    // set-kind values (the matcher compares sets element-wise).
    auto probeable = [this](const Value& v) {
      if (v.kind() == ValueKind::kSet) return false;
      if (v.kind() == ValueKind::kOid && mappings_ != nullptr) return false;
      return true;
    };
    auto consider = [&](const std::string& attr, const Value& v) {
      if (!probeable(v)) return;
      // An empty cursor on a bound position is an empty join (the old
      // "no hash bucket" outcome); otherwise the smallest posting list
      // seeds the candidates, first-considered on ties — and with the
      // kernels on, every other probeable cursor is intersected in.
      PostingsCursor hits = store_.Probe(*concept_id, attr, v);
      ++counters.index_probes;
      if (use_join_kernel_) cursors.push_back(hits);
      if (!have_best || hits.count() < best.count()) {
        have_best = true;
        best = hits;
        best_index = cursors.empty() ? 0 : cursors.size() - 1;
      }
    };
    if (literal.kind == Literal::Kind::kOTerm) {
      Value object;
      if (ResolveArg(literal.oterm.object, bindings, &object) &&
          object.kind() == ValueKind::kOid && mappings_ == nullptr) {
        store_.ProbeOid(*concept_id, object.AsOid(), candidates);
        candidates->erase(std::lower_bound(candidates->begin(),
                                           candidates->end(), end),
                          candidates->end());
        candidates->erase(candidates->begin(),
                          std::lower_bound(candidates->begin(),
                                           candidates->end(), begin));
        ++counters.index_probes;
        return;
      }
      for (const AttrDescriptor& d : literal.oterm.attrs) {
        std::string attr = d.attribute;
        if (d.attr_is_variable) {
          auto it = bindings.find(d.attribute);
          if (it == bindings.end() ||
              it->second.kind() != ValueKind::kString) {
            continue;
          }
          attr = it->second.AsString();
        }
        Value v;
        if (!ResolveArg(d.value, bindings, &v)) continue;
        consider(attr, v);
      }
    } else {
      for (size_t i = 0; i < literal.args.size(); ++i) {
        Value v;
        if (!ResolveArg(literal.args[i], bindings, &v)) continue;
        consider(StrCat(i), v);
      }
    }
  }

  if (have_best) {
    if (!use_join_kernel_) {
      // Historical probe loop: decode only the smallest cursor,
      // tuple-at-a-time; the matcher re-checks every other bound pair.
      std::uint32_t ordinal = 0;
      while (best.Next(&ordinal)) {
        ++counters.cursor_steps;
        if (ordinal >= end) break;
        if (ordinal >= begin) candidates->push_back(ordinal);
      }
      return;
    }
    // Kernel path: bulk-decode the smallest cursor's window, then
    // intersect every other probeable cursor in. Each intersection
    // removes only ordinals the matcher would reject anyway (a posting
    // list contains every true match for its (attr, value) key; hash
    // collisions are re-verified downstream), and it preserves order
    // and duplicates, so the surviving candidate sequence — and hence
    // the derived fact stream — is identical to the probe loop's.
    counters.cursor_steps += DecodeWindow(best, begin, end, candidates);
    if (cursors.size() > 1 && !candidates->empty()) {
      JoinKernelStats ks;
      for (size_t i = 0; i < cursors.size(); ++i) {
        if (i == best_index) continue;
        if (candidates->empty()) break;
        // A cursor vastly larger than the survivor set costs more to
        // decode than the matcher calls it could save.
        if (cursors[i].count() > kIntersectBudget * (candidates->size() + 1)) {
          continue;
        }
        FilterByCursor(candidates, cursors[i], begin, end, &scratch, &ks);
      }
      counters.cursor_steps += ks.cursor_steps;
      counters.merge_steps += ks.merge_steps;
      counters.gallop_steps += ks.gallop_steps;
    }
    return;
  }
  ++counters.index_scans;
  candidates->resize(end - begin);
  std::iota(candidates->begin(), candidates->end(), begin);
}

Status Evaluator::SolveBody(const FactMatcher& matcher, const JoinContext& ctx,
                            std::vector<char>* done, size_t remaining,
                            Solution solution,
                            std::vector<Solution>* solutions) const {
  if (remaining == 0) {
    solutions->push_back(std::move(solution));
    return Status::OK();
  }
  const std::vector<Literal>& body = ctx.rule->body;
  const size_t depth = body.size() - remaining;

  // Pick the next literal. A precomputed plan replays the choice with
  // zero per-row work (a successful match binds every variable of its
  // literal, so the bound sets — and thus the dynamic heuristic below —
  // are a static function of the consumed prefix). Otherwise the naive
  // oracle keeps the written order, or the historical dynamic pick
  // runs: (1) an already-decidable filter (a comparison with both
  // sides bound, an equality able to bind its one unbound side, or a
  // fully bound negated literal) runs immediately, (2) among positive
  // fact literals the one with the most bound variables wins (the delta
  // literal breaks ties — its window is the smallest extent), (3) any
  // leftover keeps the old left-to-right semantics.
  size_t pick = body.size();
  if (ctx.plan != nullptr && ctx.plan->order.size() == body.size()) {
    pick = ctx.plan->order[depth];
  } else if (!ctx.reorder) {
    for (size_t i = 0; i < body.size(); ++i) {
      if (!(*done)[i]) {
        pick = i;
        break;
      }
    }
  } else {
    for (size_t i = 0; i < body.size() && pick == body.size(); ++i) {
      if ((*done)[i]) continue;
      const Literal& literal = body[i];
      if (literal.kind == Literal::Kind::kCompare) {
        Value tmp;
        const bool lhs_ok = ResolveArg(literal.cmp_lhs, solution.bindings, &tmp);
        const bool rhs_ok = ResolveArg(literal.cmp_rhs, solution.bindings, &tmp);
        if ((lhs_ok && rhs_ok) ||
            (literal.cmp_op == CompareOp::kEq && !literal.negated &&
             (lhs_ok || rhs_ok))) {
          pick = i;
        }
      } else if (literal.negated) {
        if (AllVarsBound(literal, solution.bindings)) pick = i;
      }
    }
    if (pick == body.size()) {
      int best_score = -1;
      for (size_t i = 0; i < body.size(); ++i) {
        if ((*done)[i]) continue;
        const Literal& literal = body[i];
        if (literal.kind == Literal::Kind::kCompare || literal.negated) {
          continue;
        }
        int score = 2 * BoundVarCount(literal, solution.bindings);
        if (static_cast<int>(i) == ctx.delta_literal) ++score;
        if (score > best_score) {
          best_score = score;
          pick = i;
        }
      }
    }
    if (pick == body.size()) {
      for (size_t i = 0; i < body.size(); ++i) {
        if (!(*done)[i]) {
          pick = i;
          break;
        }
      }
    }
  }

  const Literal& literal = body[pick];
  (*done)[pick] = 1;
  // Candidate buffer: the scratch pool's depth slot when the driver
  // wired one (reused across every solution row at this depth; the pool
  // is pre-sized so the reference survives deeper frames), else a local
  // vector as before.
  std::vector<std::uint32_t> local_candidates;
  auto candidate_buffer = [&]() -> std::vector<std::uint32_t>& {
    if (ctx.scratch != nullptr) {
      std::vector<std::uint32_t>& c = ctx.scratch->CandidatesAt(depth);
      c.clear();
      return c;
    }
    return local_candidates;
  };
  auto recurse = [&](Solution next) {
    return SolveBody(matcher, ctx, done, remaining - 1, std::move(next),
                     solutions);
  };
  // Incremental world filter: whether this position may see the fact.
  auto admitted = [&](ConceptId concept_id, std::uint32_t ordinal) {
    return ctx.inc == nullptr || !ctx.inc->admit ||
           ctx.inc->admit(pick, store_.IdAt(concept_id, ordinal));
  };
  Status status = Status::OK();
  switch (literal.kind) {
    case Literal::Kind::kOTerm: {
      ConceptId concept_id = kNoConcept;
      std::vector<std::uint32_t>& candidates = candidate_buffer();
      CollectCandidates(ctx, pick, literal, solution.bindings, &candidates,
                        &concept_id);
      if (!literal.negated) {
        for (std::uint32_t ordinal : candidates) {
          if (!admitted(concept_id, ordinal)) continue;
          const FactView fact = store_.ViewAt(concept_id, ordinal);
          std::vector<Bindings> matches;
          matcher.MatchOTerm(literal.oterm, fact, solution.bindings,
                             &matches);
          for (Bindings& match : matches) {
            Solution next = solution;
            next.bindings = std::move(match);
            next.matched[pick] = fact;
            status = recurse(std::move(next));
            if (!status.ok()) break;
          }
          if (!status.ok()) break;
        }
      } else {
        bool found = false;
        for (std::uint32_t ordinal : candidates) {
          if (!admitted(concept_id, ordinal)) continue;
          std::vector<Bindings> matches;
          matcher.MatchOTerm(literal.oterm, store_.ViewAt(concept_id, ordinal),
                             solution.bindings, &matches);
          if (!matches.empty()) {
            found = true;
            break;
          }
        }
        if (!found) status = recurse(std::move(solution));
      }
      break;
    }
    case Literal::Kind::kPredicate: {
      ConceptId concept_id = kNoConcept;
      std::vector<std::uint32_t>& candidates = candidate_buffer();
      CollectCandidates(ctx, pick, literal, solution.bindings, &candidates,
                        &concept_id);
      // Positional attribute names ("0", "1", ...) formatted into a
      // stack buffer — no per-candidate allocation on this hot path.
      auto match_args = [&](const FactView& fact, Bindings* b) -> bool {
        for (size_t i = 0; i < literal.args.size(); ++i) {
          char name[16];
          const int len = std::snprintf(name, sizeof(name), "%zu", i);
          const ValueHandle stored = fact.Find(std::string_view(name, len));
          if (!stored.valid()) return false;
          const TermArg& arg = literal.args[i];
          if (arg.is_constant()) {
            if (!matcher.ValuesEqual(arg.constant, stored)) return false;
          } else if (arg.is_variable()) {
            auto bound = b->find(arg.var);
            if (bound != b->end()) {
              if (!matcher.ValuesEqual(bound->second, stored)) {
                return false;
              }
            } else {
              b->emplace(arg.var, stored.Materialize());
            }
          } else {
            return false;
          }
        }
        return true;
      };
      if (!literal.negated) {
        for (std::uint32_t ordinal : candidates) {
          if (!admitted(concept_id, ordinal)) continue;
          const FactView fact = store_.ViewAt(concept_id, ordinal);
          Bindings next = solution.bindings;
          if (match_args(fact, &next)) {
            Solution s = solution;
            s.bindings = std::move(next);
            status = recurse(std::move(s));
            if (!status.ok()) break;
          }
        }
      } else {
        bool found = false;
        for (std::uint32_t ordinal : candidates) {
          if (!admitted(concept_id, ordinal)) continue;
          Bindings next = solution.bindings;
          if (match_args(store_.ViewAt(concept_id, ordinal), &next)) {
            found = true;
            break;
          }
        }
        if (!found) status = recurse(std::move(solution));
      }
      break;
    }
    case Literal::Kind::kCompare: {
      Value lhs;
      Value rhs;
      const bool lhs_ok = ResolveArg(literal.cmp_lhs, solution.bindings, &lhs);
      const bool rhs_ok = ResolveArg(literal.cmp_rhs, solution.bindings, &rhs);
      if (literal.cmp_op == CompareOp::kEq && !literal.negated &&
          lhs_ok != rhs_ok) {
        // Equality with exactly one bound side binds the other.
        const TermArg& unbound = lhs_ok ? literal.cmp_rhs : literal.cmp_lhs;
        const Value& value = lhs_ok ? lhs : rhs;
        if (unbound.is_variable()) {
          Solution next = solution;
          next.bindings[unbound.var] = value;
          status = recurse(std::move(next));
        }
        break;
      }
      if (!lhs_ok || !rhs_ok) {
        status = Status::FailedPrecondition(StrCat(
            "comparison over unbound variables: ", literal.ToString()));
        break;
      }
      bool truth = false;
      if (literal.cmp_op == CompareOp::kEq) {
        truth = matcher.ValuesEqual(lhs, rhs);
      } else if (literal.cmp_op == CompareOp::kNe) {
        truth = !matcher.ValuesEqual(lhs, rhs);
      } else {
        Result<bool> cmp = Compare(lhs, literal.cmp_op, rhs);
        if (!cmp.ok()) {
          status = cmp.status();
          break;
        }
        truth = cmp.value();
      }
      if (truth != literal.negated) status = recurse(std::move(solution));
      break;
    }
  }
  (*done)[pick] = 0;
  return status;
}

Status Evaluator::ApplyRule(const FactMatcher& matcher, const JoinContext& ctx,
                            size_t* inserted) {
  ++stats_.rule_applications;
  std::vector<Solution> solutions;
  OOINT_RETURN_IF_ERROR(SolveRule(matcher, ctx, &solutions));
  return InsertSolutions(*ctx.rule, matcher, solutions, inserted);
}

Status Evaluator::SolveRule(const FactMatcher& matcher, const JoinContext& ctx,
                            std::vector<Solution>* solutions) const {
  const Rule& rule = *ctx.rule;
  // Pre-size the depth pool so CandidatesAt never reallocates while
  // outer recursion frames hold references into it.
  if (ctx.scratch != nullptr) ctx.scratch->EnsureDepths(rule.body.size());
  Solution init;
  init.matched.assign(rule.body.size(), FactView());
  std::vector<char> done(rule.body.size(), 0);
  return SolveBody(matcher, ctx, &done, rule.body.size(), std::move(init),
                   solutions);
}

Result<Evaluator::HeadFact> Evaluator::BuildHeadFact(
    const Rule& rule, const FactMatcher& matcher, const Solution& solution) {
  const Literal& head = rule.head.front();
  HeadFact out;
  Fact& fact = out.fact;
  if (head.kind == Literal::Kind::kPredicate) {
    fact.concept_name = head.pred_name;
    for (size_t i = 0; i < head.args.size(); ++i) {
      Value v;
      if (!ResolveArg(head.args[i], solution.bindings, &v)) {
        return Status::FailedPrecondition(
            StrCat("unbound head argument in rule: ", rule.ToString()));
      }
      fact.attrs[StrCat(i)] = std::move(v);
    }
    return out;
  }

  // O-term head.
  fact.concept_name = head.oterm.class_name;

  // Instantiate descriptors; nested descriptors flatten to dotted
  // attribute names ("book.ISBN").
  Status flatten_status = Status::OK();
  auto flatten = [&](auto&& self, const std::vector<AttrDescriptor>& ds,
                     const std::string& prefix) -> void {
    for (const AttrDescriptor& d : ds) {
      if (!flatten_status.ok()) return;
      std::string name = d.attribute;
      if (d.attr_is_variable) {
        auto it = solution.bindings.find(d.attribute);
        if (it == solution.bindings.end() ||
            it->second.kind() != ValueKind::kString) {
          flatten_status = Status::FailedPrecondition(
              StrCat("unbound attribute-name variable '", d.attribute,
                     "' in rule head"));
          return;
        }
        name = it->second.AsString();
      }
      const std::string full = prefix.empty() ? name : StrCat(prefix, ".", name);
      if (d.value.is_nested()) {
        self(self, d.value.nested, full);
        continue;
      }
      Value v;
      if (d.value.is_constant()) {
        v = d.value.constant;
      } else {
        auto it = solution.bindings.find(d.value.var);
        if (it == solution.bindings.end()) {
          if (!d.value.var.empty() && d.value.var[0] == '_') {
            continue;  // existential attribute: leave unset
          }
          flatten_status = Status::FailedPrecondition(
              StrCat("unbound head variable '", d.value.var, "'"));
          return;
        }
        v = it->second;
      }
      fact.attrs[full] = std::move(v);
    }
  };
  flatten(flatten, head.oterm.attrs, "");
  OOINT_RETURN_IF_ERROR(flatten_status);

  // Object position: bound variable / constant OID, or a skolem OID
  // for existential ('_'-prefixed or unbound) object variables.
  bool skolem = true;
  if (head.oterm.object.is_constant()) {
    if (head.oterm.object.constant.kind() == ValueKind::kOid) {
      fact.oid = head.oterm.object.constant.AsOid();
      skolem = false;
    }
  } else if (head.oterm.object.is_variable()) {
    auto it = solution.bindings.find(head.oterm.object.var);
    if (it != solution.bindings.end() &&
        it->second.kind() == ValueKind::kOid) {
      fact.oid = it->second.AsOid();
      skolem = false;
    }
  }
  if (skolem) {
    // Derived entities are identified by their attribute values; the
    // skolem OID is content-addressed (the hash of those values) so
    // both fixpoint strategies — and the incremental engine — assign
    // identical OIDs regardless of derivation order.
    out.skolem = true;
    out.skolem_key = HashFactAttrs(fact);
    fact.oid =
        Oid("derived", "ooint", "global", fact.concept_name, out.skolem_key);
  } else {
    // Merge the attributes of every matched body fact describing the
    // same entity, so membership rules (<x: IS_AB> <= <x: A>, ...)
    // carry the entity's data into the integrated class. Slots are in
    // body order, keeping the merge independent of the join order.
    for (const FactView& matched : solution.matched) {
      if (!matched.valid() || matched.oid_empty()) continue;
      if (!matcher.ValuesEqual(Value::OfOid(matched.oid()),
                               Value::OfOid(fact.oid))) {
        continue;
      }
      const size_t count = matched.attr_count();
      for (size_t i = 0; i < count; ++i) {
        std::string name(matched.attr_name(i));
        if (fact.attrs.find(name) == fact.attrs.end()) {
          fact.attrs.emplace(std::move(name),
                             matched.attr_value(i).Materialize());
        }
      }
    }
  }
  return out;
}

Status Evaluator::InsertSolutions(const Rule& rule, const FactMatcher& matcher,
                                  const std::vector<Solution>& solutions,
                                  size_t* inserted) {
  for (const Solution& solution : solutions) {
    OOINT_ASSIGN_OR_RETURN(HeadFact head,
                           BuildHeadFact(rule, matcher, solution));
    if (head.skolem) {
      // Skolem de-duplication by attribute values, exact-verified
      // against the packed store — no materialization, no string keys.
      std::vector<FactId>& seen = skolem_seen_[head.skolem_key];
      bool duplicate = false;
      for (FactId f : seen) {
        if (store_.EquivalentAttrs(f, head.fact)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      const FactId stored = InsertFact(std::move(head.fact));
      if (stored != kNoFact) {
        seen.push_back(stored);
        ++stats_.derived_facts;
        ++*inserted;
      }
    } else {
      if (InsertFact(std::move(head.fact)) != kNoFact) {
        ++stats_.derived_facts;
        ++*inserted;
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Bindings>> Evaluator::Query(const OTerm& pattern) const {
  if (!evaluated_) {
    return Status::FailedPrecondition("call Evaluate() before Query()");
  }
  const FactMatcher matcher = MakeMatcher();
  // Constant descriptors in the pattern probe the value index directly.
  // Counters tick into a local Stats merged under a lock, so concurrent
  // queries on one evaluated federation never race on stats_.
  const Literal literal = Literal::OfOTerm(pattern);
  Stats local;
  JoinScratch scratch;
  JoinContext ctx;
  ctx.stats = &local;
  ctx.scratch = &scratch;
  ConceptId concept_id = kNoConcept;
  std::vector<std::uint32_t> candidates;
  CollectCandidates(ctx, 0, literal, Bindings(), &candidates, &concept_id);
  {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    stats_.AddJoinCounters(local);
  }
  std::vector<Bindings> out;
  for (std::uint32_t ordinal : candidates) {
    if (live_filter_ != nullptr) {
      const FactId fid = store_.IdAt(concept_id, ordinal);
      if (fid < live_filter_->size() && !(*live_filter_)[fid]) continue;
    }
    matcher.MatchOTerm(pattern, store_.ViewAt(concept_id, ordinal), Bindings(),
                       &out);
  }
  // De-duplicate bindings on a 64-bit digest with exact verification —
  // no per-row key strings (the old StrCat/ToString concatenation
  // allocated a key per candidate row).
  std::unordered_map<std::uint64_t, std::vector<size_t>> seen;
  std::vector<Bindings> unique;
  for (Bindings& b : out) {
    std::uint64_t key = 0;
    for (const auto& [var, value] : b) {
      key = HashCombine(key, HashString(var));
      key = HashCombine(key, HashValue(value));
    }
    std::vector<size_t>& bucket = seen[key];
    bool duplicate = false;
    for (size_t idx : bucket) {
      if (unique[idx] == b) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    bucket.push_back(unique.size());
    unique.push_back(std::move(b));
  }
  return unique;
}

namespace {

/// The lazily-evaluated half of OpenQueryStream: holds the candidate
/// ordinals chosen by CollectCandidates and unifies one per pull.
/// MatchOTerm can emit several rows per candidate (set attributes match
/// element-wise), so a small per-candidate buffer drains first.
class QueryStream : public RowSource {
 public:
  QueryStream(OTerm pattern, FactMatcher matcher, const FactStore* store,
              const std::vector<std::uint8_t>* live_filter,
              ConceptId concept_id, std::vector<std::uint32_t> candidates)
      : pattern_(std::move(pattern)),
        matcher_(std::move(matcher)),
        store_(store),
        live_filter_(live_filter),
        concept_id_(concept_id),
        candidates_(std::move(candidates)) {}

  bool Next(Bindings* row) override {
    while (true) {
      if (pending_index_ < pending_.size()) {
        *row = std::move(pending_[pending_index_++]);
        return true;
      }
      if (next_candidate_ >= candidates_.size()) return false;
      const std::uint32_t ordinal = candidates_[next_candidate_++];
      if (live_filter_ != nullptr) {
        const FactId fid = store_->IdAt(concept_id_, ordinal);
        if (fid < live_filter_->size() && !(*live_filter_)[fid]) continue;
      }
      pending_.clear();
      pending_index_ = 0;
      matcher_.MatchOTerm(pattern_, store_->ViewAt(concept_id_, ordinal),
                          Bindings(), &pending_);
    }
  }

 private:
  OTerm pattern_;
  FactMatcher matcher_;
  const FactStore* store_;
  const std::vector<std::uint8_t>* live_filter_;
  ConceptId concept_id_;
  std::vector<std::uint32_t> candidates_;
  size_t next_candidate_ = 0;
  std::vector<Bindings> pending_;
  size_t pending_index_ = 0;
};

}  // namespace

Result<std::unique_ptr<RowSource>> Evaluator::OpenQueryStream(
    const OTerm& pattern) const {
  if (!evaluated_) {
    return Status::FailedPrecondition(
        "call Evaluate() before OpenQueryStream()");
  }
  // The candidate choice (value-index probe vs. ordinal scan) is made
  // once, up front, exactly as Query() makes it; only the unification
  // of each candidate is deferred to the pulls.
  const Literal literal = Literal::OfOTerm(pattern);
  Stats local;
  JoinScratch scratch;
  JoinContext ctx;
  ctx.stats = &local;
  ctx.scratch = &scratch;
  ConceptId concept_id = kNoConcept;
  std::vector<std::uint32_t> candidates;
  CollectCandidates(ctx, 0, literal, Bindings(), &candidates, &concept_id);
  {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    stats_.AddJoinCounters(local);
  }
  return std::unique_ptr<RowSource>(
      new QueryStream(pattern, MakeMatcher(), &store_, live_filter_,
                      concept_id, std::move(candidates)));
}

Result<Evaluator::DemandOutcome> Evaluator::EvaluateDemand(
    const OTerm& pattern, const CancelToken& token) const {
  if (token.Expired()) {
    // Pre-expired (zero deadline / already-cancelled) queries fail
    // before the magic rewrite, before any source is contacted and
    // before any cache could be touched.
    return DeadlineStatus(token, "before demand evaluation started");
  }
  DemandOutcome out;
  const GoalBinding goal = ExtractGoalBinding(pattern);
  MagicProgram program = MagicRewrite(rules_, goal);
  out.magic_applied = program.applied;
  out.goal_adornment = program.goal_adornment;
  out.fallback_reason = program.fallback_reason;

  auto sub = std::make_shared<Evaluator>();
  sub->strategy_ = strategy_;
  sub->failure_policy_ = failure_policy_;
  sub->planner_mode_ = planner_mode_;  // demand joins plan like the parent
  sub->use_join_kernel_ = use_join_kernel_;
  sub->mappings_ = mappings_;
  sub->token_ = token;  // the query's deadline bounds the sub-fixpoint
  sub->pool_ = pool_;  // demand fixpoints parallelize like the parent
  for (const Source& source : sources_) {
    sub->AddBorrowedSource(source.schema_name, source.source);
  }

  // Relevance pruning: bind (and later fetch) only the concepts the
  // goal can reach through rule bodies. Nested descriptors navigate
  // stored OIDs to arbitrary concepts, so they force full binding.
  const bool prune = program.relevance_safe;
  const std::set<std::string> reachable(program.reachable_concepts.begin(),
                                        program.reachable_concepts.end());
  std::set<std::string> contacted;
  for (const ConceptBinding& binding : bindings_decl_) {
    if (prune && !reachable.count(binding.concept_name)) continue;
    // Source indices transfer unchanged: sub's sources mirror ours.
    sub->bindings_decl_.push_back(binding);
    contacted.insert(sources_[binding.source_index].schema_name);
  }
  for (const ConceptBinding& binding : bindings_decl_) {
    const std::string& schema_name = sources_[binding.source_index].schema_name;
    if (!contacted.count(schema_name)) {
      if (out.pruned_agents.empty() ||
          out.pruned_agents.back() != schema_name) {
        out.pruned_agents.push_back(schema_name);
      }
    }
  }
  std::sort(out.pruned_agents.begin(), out.pruned_agents.end());
  out.pruned_agents.erase(
      std::unique(out.pruned_agents.begin(), out.pruned_agents.end()),
      out.pruned_agents.end());

  if (program.applied) {
    for (Rule& rule : program.rules) {
      OOINT_RETURN_IF_ERROR(sub->AddRule(std::move(rule)));
    }
    for (Fact& seed : program.seeds) sub->AddFact(std::move(seed));
  } else {
    for (const Rule& rule : rules_) {
      if (prune) {
        const std::vector<std::string> heads = rule.HeadConceptNames();
        bool relevant = false;
        for (const std::string& head : heads) {
          if (reachable.count(head)) { relevant = true; break; }
        }
        if (!relevant) continue;
      }
      OOINT_RETURN_IF_ERROR(sub->AddRule(rule));
    }
  }
  for (const Fact& seed : seed_facts_) sub->AddFact(seed);

  OOINT_RETURN_IF_ERROR(sub->Evaluate());
  OOINT_ASSIGN_OR_RETURN(out.rows, sub->Query(pattern));
  out.goal_facts = sub->FactsOf(pattern.class_name);

  // Outward degradation: drop internal magic predicates, mirror the
  // pruned agents in (distinct from fault-skipped ones).
  out.degraded = sub->degraded();
  auto drop_magic = [](std::vector<std::string>* names) {
    names->erase(std::remove_if(names->begin(), names->end(),
                                [](const std::string& name) {
                                  return IsMagicConceptName(name);
                                }),
                 names->end());
  };
  drop_magic(&out.degraded.incomplete_concepts);
  drop_magic(&out.degraded.unsound_concepts);
  drop_magic(&out.degraded.truncated_concepts);
  out.degraded.pruned_agents = out.pruned_agents;
  out.stats = sub->stats();
  out.sub = std::move(sub);
  return out;
}

}  // namespace ooint
