#include "rules/topdown.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "rules/matcher.h"
#include "rules/planner.h"

namespace ooint {

void TopDownEvaluator::AddSource(const std::string& schema_name,
                                 const InstanceStore* store) {
  sources_.push_back({schema_name, store});
}

Status TopDownEvaluator::BindConcept(const std::string& concept_name,
                                     const std::string& schema_name,
                                     const std::string& class_name) {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].schema_name != schema_name) continue;
    if (sources_[i].store->schema().FindClass(class_name) ==
        kInvalidClassId) {
      return Status::NotFound(StrCat("class '", class_name,
                                     "' not in source schema '", schema_name,
                                     "'"));
    }
    bindings_decl_[concept_name].push_back({i, class_name});
    return Status::OK();
  }
  return Status::NotFound(
      StrCat("no source registered for schema '", schema_name, "'"));
}

Status TopDownEvaluator::AddRule(Rule rule) {
  if (rule.documentation_only) {
    return Status::Unsupported(
        StrCat("rule is documentation-only: ", rule.ToString()));
  }
  if (rule.disjunctive_head || rule.head.size() != 1 ||
      rule.head.front().kind == Literal::Kind::kCompare) {
    return Status::Unsupported(
        StrCat("top-down evaluation handles definite rules only: ",
               rule.ToString()));
  }
  for (const Literal& literal : rule.body) {
    if (literal.negated) {
      return Status::Unsupported(
          StrCat("top-down evaluation (Appendix B) handles positive rules "
                 "only: ",
                 rule.ToString()));
    }
  }
  OOINT_RETURN_IF_ERROR(CheckRuleSafety(rule));
  const std::vector<std::string> heads = rule.HeadConceptNames();
  rules_by_head_[heads.front()].push_back(rules_.size());
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Result<std::vector<Fact>> TopDownEvaluator::BaseFacts(
    const std::string& concept_name) {
  std::vector<Fact> out;
  auto it = bindings_decl_.find(concept_name);
  if (it == bindings_decl_.end()) return out;
  for (const ConceptBinding& binding : it->second) {
    ++stats_.base_lookups;
    const Source& source = sources_[binding.source_index];
    Result<std::vector<Oid>> extent =
        source.store->Extent(binding.class_name);
    if (!extent.ok()) return extent.status();
    for (const Oid& oid : extent.value()) {
      const Object* object = source.store->Find(oid);
      if (object == nullptr) continue;
      Fact fact = Fact::FromObject(concept_name, *object);
      universe_.Insert(fact);
      out.push_back(std::move(fact));
    }
  }
  return out;
}

Result<std::vector<Fact>> TopDownEvaluator::ApplyRule(
    const Rule& rule, const std::map<std::string, Value>& seed) {
  ++stats_.rule_invocations;

  // evaluation(p_i, R_i) for every body O-term; then join left-to-right.
  // The join is performed by accumulating binding sets, which is
  // equivalent to temp_1 ⋈ ... ⋈ temp_n on the shared variables.
  FactMatcher matcher(
      [this](const Oid& oid) { return universe_.ViewByOid(oid); }, nullptr);

  // Pre-evaluate each body concept_name (the recursive calls of Appendix B).
  std::map<std::string, std::vector<Fact>> body_facts;
  for (const Literal& literal : rule.body) {
    if (literal.kind != Literal::Kind::kOTerm) continue;
    const std::string& concept_name = literal.oterm.class_name;
    if (body_facts.count(concept_name) != 0) continue;
    Result<std::vector<Fact>> facts = Evaluate(concept_name);
    if (!facts.ok()) return facts.status();
    body_facts.emplace(concept_name, std::move(facts).value());
  }

  // Cost-based body order: extent estimates are the sizes of the
  // pre-fetched temp relations; the seed's variables are bound up
  // front. Bodies here are negation-free (AddRule enforces it), so
  // reordering O-terms is always safe, and comparisons keep their
  // decidability constraints via the planner's binding replay.
  PlannerInput pin;
  pin.rule = &rule;
  pin.extent_cost.assign(rule.body.size(), -1.0);
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& l = rule.body[i];
    if (l.kind != Literal::Kind::kOTerm) continue;
    pin.extent_cost[i] =
        static_cast<double>(body_facts[l.oterm.class_name].size());
  }
  for (const auto& [var, value] : seed) pin.initial_bound.insert(var);
  const BodyPlan plan = PlanBody(pin, PlannerMode::kCostBased);
  if (plan.reordered) ++stats_.plan_reorders;

  std::vector<Bindings> solutions = {Bindings(seed.begin(), seed.end())};
  for (const std::uint32_t pick : plan.order) {
    const Literal& literal = rule.body[pick];
    std::vector<Bindings> next;
    if (literal.kind == Literal::Kind::kOTerm) {
      ++stats_.joins;
      const std::vector<Fact>& facts = body_facts[literal.oterm.class_name];
      for (const Bindings& bindings : solutions) {
        for (const Fact& fact : facts) {
          matcher.MatchOTerm(literal.oterm, fact, bindings, &next);
        }
      }
    } else if (literal.kind == Literal::Kind::kCompare) {
      for (const Bindings& bindings : solutions) {
        Value lhs;
        Value rhs;
        const bool lhs_ok = ResolveArg(literal.cmp_lhs, bindings, &lhs);
        const bool rhs_ok = ResolveArg(literal.cmp_rhs, bindings, &rhs);
        if (literal.cmp_op == CompareOp::kEq && lhs_ok != rhs_ok) {
          const TermArg& unbound =
              lhs_ok ? literal.cmp_rhs : literal.cmp_lhs;
          if (!unbound.is_variable()) continue;
          Bindings b = bindings;
          b[unbound.var] = lhs_ok ? lhs : rhs;
          next.push_back(std::move(b));
          continue;
        }
        if (!lhs_ok || !rhs_ok) {
          return Status::FailedPrecondition(StrCat(
              "comparison over unbound variables: ", literal.ToString()));
        }
        Result<bool> cmp = Compare(lhs, literal.cmp_op, rhs);
        if (!cmp.ok()) return cmp.status();
        if (cmp.value()) next.push_back(bindings);
      }
    } else {
      return Status::Unsupported(
          "ordinary predicates are not supported top-down");
    }
    solutions = std::move(next);
    if (solutions.empty()) break;
  }

  // Instantiate the head for each solution.
  const OTerm& head = rule.head.front().oterm;
  std::vector<Fact> out;
  // Hashed exact de-duplication on (concept, oid, attrs); skolem OIDs
  // are content-addressed, so pre-skolem duplicates collapse here too.
  std::unordered_map<std::uint64_t, std::vector<size_t>> seen;
  for (const Bindings& bindings : solutions) {
    Fact fact;
    fact.concept_name = head.class_name;
    bool ok = true;
    auto flatten = [&](auto&& self, const std::vector<AttrDescriptor>& ds,
                       const std::string& prefix) -> void {
      for (const AttrDescriptor& d : ds) {
        if (!ok) return;
        const std::string full =
            prefix.empty() ? d.attribute : StrCat(prefix, ".", d.attribute);
        if (d.value.is_nested()) {
          self(self, d.value.nested, full);
          continue;
        }
        if (d.value.is_constant()) {
          fact.attrs[full] = d.value.constant;
          continue;
        }
        auto it = bindings.find(d.value.var);
        if (it == bindings.end()) {
          if (!d.value.var.empty() && d.value.var[0] == '_') continue;
          ok = false;
          return;
        }
        fact.attrs[full] = it->second;
      }
    };
    flatten(flatten, head.attrs, "");
    if (!ok) continue;

    bool skolem = true;
    if (head.object.is_variable()) {
      auto it = bindings.find(head.object.var);
      if (it != bindings.end() && it->second.kind() == ValueKind::kOid) {
        fact.oid = it->second.AsOid();
        skolem = false;
      }
    } else if (head.object.is_constant() &&
               head.object.constant.kind() == ValueKind::kOid) {
      fact.oid = head.object.constant.AsOid();
      skolem = false;
    }
    if (skolem) {
      fact.oid = Oid("derived", "ooint", "global", fact.concept_name,
                     HashFactAttrs(fact));
    }
    std::vector<size_t>& bucket = seen[HashFactCanonical(fact)];
    bool duplicate = false;
    for (size_t index : bucket) {
      const Fact& other = out[index];
      if (other.oid == fact.oid && other.concept_name == fact.concept_name &&
          other.attrs == fact.attrs) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    bucket.push_back(out.size());
    universe_.Insert(fact);
    out.push_back(std::move(fact));
  }
  return out;
}

Result<std::vector<Fact>> TopDownEvaluator::EvaluateFiltered(
    const std::string& concept_name,
    const std::map<std::string, Value>& filter) {
  if (filter.empty()) return Evaluate(concept_name);

  auto matches_filter = [&](const Fact& fact) {
    for (const auto& [attr, value] : filter) {
      auto it = fact.attrs.find(attr);
      if (it == fact.attrs.end()) return false;
      if (it->second.kind() == ValueKind::kSet) {
        if (!it->second.SetContains(value)) return false;
      } else if (it->second != value) {
        return false;
      }
    }
    return true;
  };

  // temp: filtered base extents.
  Result<std::vector<Fact>> base = BaseFacts(concept_name);
  if (!base.ok()) return base.status();
  std::vector<Fact> result;
  for (Fact& fact : base.value()) {
    if (matches_filter(fact)) result.push_back(std::move(fact));
  }

  // temp': rules with the filter's constants propagated into the head's
  // variables before the body join.
  auto rules = rules_by_head_.find(concept_name);
  if (rules != rules_by_head_.end()) {
    for (size_t index : rules->second) {
      const Rule& rule = rules_[index];
      const OTerm& head = rule.head.front().oterm;
      std::map<std::string, Value> seed;
      bool contradiction = false;
      for (const AttrDescriptor& d : head.attrs) {
        if (d.attr_is_variable || d.value.is_nested()) continue;
        auto it = filter.find(d.attribute);
        if (it == filter.end()) continue;
        if (d.value.is_constant()) {
          if (d.value.constant != it->second) contradiction = true;
          continue;
        }
        seed.emplace(d.value.var, it->second);
      }
      if (contradiction) continue;
      Result<std::vector<Fact>> derived = ApplyRule(rule, seed);
      if (!derived.ok()) return derived.status();
      for (Fact& fact : derived.value()) {
        if (matches_filter(fact)) result.push_back(std::move(fact));
      }
    }
  }
  return result;
}

Result<std::vector<Fact>> TopDownEvaluator::Evaluate(
    const std::string& concept_name) {
  auto memo = memo_.find(concept_name);
  if (memo != memo_.end()) {
    ++stats_.memo_hits;
    return memo->second;
  }
  if (in_progress_.count(concept_name) != 0) {
    return Status::Unsupported(
        StrCat("recursive concept_name '", concept_name,
               "' is not supported by the top-down evaluator"));
  }
  // One uncached goal expansion = one round charge; the deadline check
  // sits between expansions, so an expired token unwinds the whole
  // proof here instead of mid-join.
  token_.Charge(CancelToken::kRoundChargeMs);
  if (token_.Expired()) {
    return Status::DeadlineExceeded(
        StrCat("query deadline (", token_.budget_ms(),
               "ms) exceeded during top-down evaluation of '", concept_name,
               "'"));
  }
  in_progress_.insert(concept_name);

  // temp := ∪_{s ∈ S} results of evaluating q against s.
  Result<std::vector<Fact>> base = BaseFacts(concept_name);
  if (!base.ok()) {
    in_progress_.erase(concept_name);
    return base.status();
  }
  std::vector<Fact> result = std::move(base).value();
  // Hashed exact de-duplication on (concept, oid, attrs). Skolem OIDs
  // are content-addressed hashes of (concept, attrs), so derived facts
  // that agree on attributes collapse under canonical identity too.
  std::unordered_map<std::uint64_t, std::vector<size_t>> seen;
  auto is_duplicate = [&](const Fact& fact) {
    std::vector<size_t>& bucket = seen[HashFactCanonical(fact)];
    for (size_t index : bucket) {
      const Fact& other = result[index];
      if (other.oid == fact.oid && other.concept_name == fact.concept_name &&
          other.attrs == fact.attrs) {
        return true;
      }
    }
    return false;
  };
  for (size_t i = 0; i < result.size(); ++i) {
    seen[HashFactCanonical(result[i])].push_back(i);
  }

  // result := temp ∪ temp' for every rule defining q.
  auto rules = rules_by_head_.find(concept_name);
  if (rules != rules_by_head_.end()) {
    for (size_t index : rules->second) {
      Result<std::vector<Fact>> derived = ApplyRule(rules_[index], {});
      if (!derived.ok()) {
        in_progress_.erase(concept_name);
        return derived.status();
      }
      for (Fact& fact : derived.value()) {
        if (is_duplicate(fact)) continue;
        seen[HashFactCanonical(fact)].push_back(result.size());
        result.push_back(std::move(fact));
      }
    }
  }
  in_progress_.erase(concept_name);
  memo_.emplace(concept_name, result);
  return result;
}

}  // namespace ooint
