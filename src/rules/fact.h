#ifndef OOINT_RULES_FACT_H_
#define OOINT_RULES_FACT_H_

#include <map>
#include <string>
#include <vector>

#include "model/object.h"

namespace ooint {

/// A ground fact: an entity's membership in a concept_name (a local class, an
/// integrated class, a virtual class such as the IS_AB of Principle 3, or
/// an ordinary predicate) together with its known attribute values.
///
/// Facts are the currency of rule evaluation (Appendix B): local
/// databases contribute base facts (their class extents, attribute values
/// and aggregation targets), and rules derive new ones. Ordinary
/// predicates use positional attribute names "0", "1", ....
struct Fact {
  std::string concept_name;
  /// The entity's OID. Derived facts receive skolem OIDs (relation
  /// component "derived") assigned by the evaluator; predicate facts
  /// leave it empty.
  Oid oid;
  std::map<std::string, Value> attrs;

  /// Builds the fact for one stored object.
  static Fact FromObject(const std::string& concept_name, const Object& object);

  /// Identity key ignoring the OID — used to de-duplicate derived facts
  /// that agree on all attributes.
  std::string AttrKey() const;
  /// Full identity key (concept_name, OID, attributes).
  std::string CanonicalKey() const;

  std::string ToString() const;
};

}  // namespace ooint

#endif  // OOINT_RULES_FACT_H_
