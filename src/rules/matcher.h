#ifndef OOINT_RULES_MATCHER_H_
#define OOINT_RULES_MATCHER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "datamap/data_mapping.h"
#include "rules/fact.h"
#include "rules/fact_store.h"
#include "rules/term.h"

namespace ooint {

/// A variable assignment produced by matching rule bodies / queries.
using Bindings = std::map<std::string, Value>;

/// Resolves a term argument to a value under `bindings`; returns false
/// when the argument is an unbound variable (or nested).
bool ResolveArg(const TermArg& arg, const Bindings& bindings, Value* out);

/// Shared O-term-against-fact unification used by both evaluators.
///
/// Semantics (Sections 2 and 5):
///  - a variable-named descriptor (schematic discrepancy) matches any
///    attribute of the fact and binds the name;
///  - a set-valued stored attribute matches element-wise (the Principle-5
///    convention: `brothers: x1` means x1 ∈ brothers);
///  - a nested descriptor follows the stored OID to the referenced fact
///    (resolved via the injected OidResolver) and matches recursively;
///  - OID equality consults the data-mapping registry when configured
///    ("oi1 = oi2 in terms of data mapping").
///
/// Facts are matched through FactView, so packed store facts are
/// traversed in place — values materialize only when they bind a
/// variable. The `const Fact&` overloads wrap materialized facts (the
/// top-down evaluator's memo rows) in a view.
class FactMatcher {
 public:
  using OidResolver = std::function<FactView(const Oid&)>;

  FactMatcher(OidResolver resolver, const DataMappingRegistry* mappings)
      : resolver_(std::move(resolver)), mappings_(mappings) {}

  /// Value equality with cross-database OID identity.
  bool ValuesEqual(const Value& a, const Value& b) const;
  /// Same, with the right-hand side still packed (alloc-free unless the
  /// mapping registry is consulted).
  bool ValuesEqual(const Value& a, const ValueHandle& b) const;

  /// Appends to `out` every extension of `bindings` under which
  /// `pattern` matches `fact`.
  void MatchOTerm(const OTerm& pattern, const FactView& fact,
                  const Bindings& bindings, std::vector<Bindings>* out) const;
  void MatchOTerm(const OTerm& pattern, const Fact& fact,
                  const Bindings& bindings, std::vector<Bindings>* out) const {
    MatchOTerm(pattern, FactView(&fact), bindings, out);
  }

  /// Matches the descriptor list starting at `index`.
  void MatchDescriptors(const std::vector<AttrDescriptor>& descriptors,
                        size_t index, const FactView& fact,
                        const Bindings& bindings,
                        std::vector<Bindings>* out) const;
  void MatchDescriptors(const std::vector<AttrDescriptor>& descriptors,
                        size_t index, const Fact& fact,
                        const Bindings& bindings,
                        std::vector<Bindings>* out) const {
    MatchDescriptors(descriptors, index, FactView(&fact), bindings, out);
  }

 private:
  /// Matches descriptor `index` against one (name, stored value) pair of
  /// the fact, then continues down the descriptor list.
  void MatchAttr(const std::vector<AttrDescriptor>& descriptors, size_t index,
                 const FactView& fact, std::string_view name,
                 const ValueHandle& stored, const Bindings& bindings,
                 std::vector<Bindings>* out) const;

  OidResolver resolver_;
  const DataMappingRegistry* mappings_;
};

}  // namespace ooint

#endif  // OOINT_RULES_MATCHER_H_
