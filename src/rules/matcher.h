#ifndef OOINT_RULES_MATCHER_H_
#define OOINT_RULES_MATCHER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "datamap/data_mapping.h"
#include "rules/fact.h"
#include "rules/term.h"

namespace ooint {

/// A variable assignment produced by matching rule bodies / queries.
using Bindings = std::map<std::string, Value>;

/// Resolves a term argument to a value under `bindings`; returns false
/// when the argument is an unbound variable (or nested).
bool ResolveArg(const TermArg& arg, const Bindings& bindings, Value* out);

/// Shared O-term-against-fact unification used by both evaluators.
///
/// Semantics (Sections 2 and 5):
///  - a variable-named descriptor (schematic discrepancy) matches any
///    attribute of the fact and binds the name;
///  - a set-valued stored attribute matches element-wise (the Principle-5
///    convention: `brothers: x1` means x1 ∈ brothers);
///  - a nested descriptor follows the stored OID to the referenced fact
///    (resolved via the injected OidResolver) and matches recursively;
///  - OID equality consults the data-mapping registry when configured
///    ("oi1 = oi2 in terms of data mapping").
class FactMatcher {
 public:
  using OidResolver = std::function<const Fact*(const Oid&)>;

  FactMatcher(OidResolver resolver, const DataMappingRegistry* mappings)
      : resolver_(std::move(resolver)), mappings_(mappings) {}

  /// Value equality with cross-database OID identity.
  bool ValuesEqual(const Value& a, const Value& b) const;

  /// Appends to `out` every extension of `bindings` under which
  /// `pattern` matches `fact`.
  void MatchOTerm(const OTerm& pattern, const Fact& fact,
                  const Bindings& bindings, std::vector<Bindings>* out) const;

  /// Matches the descriptor list starting at `index`.
  void MatchDescriptors(const std::vector<AttrDescriptor>& descriptors,
                        size_t index, const Fact& fact,
                        const Bindings& bindings,
                        std::vector<Bindings>* out) const;

 private:
  OidResolver resolver_;
  const DataMappingRegistry* mappings_;
};

}  // namespace ooint

#endif  // OOINT_RULES_MATCHER_H_
