#include "rules/join_kernel.h"

#include <algorithm>

namespace ooint {

namespace {

/// Largest possible postings-per-block run: a 256-byte payload of
/// 1-byte varints.
constexpr std::uint32_t kMaxRun = 256;

}  // namespace

size_t GallopTo(const std::uint32_t* data, size_t size, size_t from,
                std::uint32_t target, size_t* steps) {
  size_t local = 0;
  size_t lo = from;
  if (lo >= size || data[lo] >= target) {
    if (steps != nullptr) *steps += 1;
    return lo;
  }
  // Exponential probe: bracket the answer in (lo, hi].
  size_t bound = 1;
  size_t hi = lo + bound;
  ++local;
  while (hi < size && data[hi] < target) {
    lo = hi;
    bound <<= 1;
    hi = lo + bound;
    ++local;
  }
  if (hi > size) hi = size;
  // Binary search the bracket.
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ++local;
    if (data[mid] < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (steps != nullptr) *steps += local;
  return hi;
}

size_t DecodeWindow(PostingsCursor cursor, std::uint32_t begin,
                    std::uint32_t end, std::vector<std::uint32_t>* out) {
  std::uint32_t buf[kMaxRun];
  size_t decoded = 0;
  std::uint32_t n;
  while ((n = cursor.NextRun(buf, kMaxRun)) != 0) {
    decoded += n;
    if (buf[n - 1] < begin) continue;  // whole block below the window
    for (std::uint32_t i = 0; i < n; ++i) {
      if (buf[i] >= end) return decoded;  // ascending: nothing more fits
      if (buf[i] >= begin) out->push_back(buf[i]);
    }
    if (buf[n - 1] >= end) return decoded;
  }
  return decoded;
}

void FilterByCursor(std::vector<std::uint32_t>* a, PostingsCursor cursor,
                    std::uint32_t begin, std::uint32_t end,
                    JoinScratch* scratch, JoinKernelStats* stats) {
  if (a->empty()) return;
  const std::uint32_t span = end > begin ? end - begin : 0;

  // Dense fallback: the cursor covers a sizable fraction of the window
  // and `a` is long enough that per-element merging loses to a bitmap
  // of the window tested bit-at-a-time.
  if (span > 0 && a->size() >= kBitmapMinRun &&
      static_cast<std::uint64_t>(cursor.count()) * kBitmapDensity >= span) {
    std::vector<std::uint64_t>& bitmap = scratch->bitmap;
    bitmap.assign((span + 63) / 64, 0);
    std::uint32_t buf[kMaxRun];
    std::uint32_t n;
    while ((n = cursor.NextRun(buf, kMaxRun)) != 0) {
      stats->cursor_steps += n;
      if (buf[n - 1] < begin) continue;
      bool past_end = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (buf[i] >= end) {
          past_end = true;
          break;
        }
        if (buf[i] < begin) continue;
        const std::uint32_t off = buf[i] - begin;
        bitmap[off >> 6] |= 1ull << (off & 63);
        ++stats->merge_steps;
      }
      if (past_end) break;
    }
    size_t kept = 0;
    for (std::uint32_t v : *a) {
      ++stats->merge_steps;
      const std::uint32_t off = v - begin;
      if (v >= begin && v < end && (bitmap[off >> 6] >> (off & 63)) & 1) {
        (*a)[kept++] = v;
      }
    }
    a->resize(kept);
    return;
  }

  // Streaming merge: consume the cursor one block run at a time,
  // filtering `a` in place. `read` walks a, `kept` compacts survivors.
  std::uint32_t buf[kMaxRun];
  size_t read = 0;
  size_t kept = 0;
  const size_t a_size = a->size();
  std::uint32_t* data = a->data();
  std::uint32_t n;
  while (read < a_size && (n = cursor.NextRun(buf, kMaxRun)) != 0) {
    stats->cursor_steps += n;
    ++stats->merge_steps;
    if (buf[n - 1] < data[read]) continue;  // skip the whole block
    std::uint32_t j = 0;
    if (n >= kGallopRatio * (a_size - read)) {
      // Skewed: gallop each remaining candidate into the block.
      while (read < a_size && data[read] <= buf[n - 1]) {
        j = static_cast<std::uint32_t>(
            GallopTo(buf, n, j, data[read], &stats->gallop_steps));
        if (j < n && buf[j] == data[read]) data[kept++] = data[read];
        ++read;
      }
    } else {
      // Comparable: linear two-pointer merge. On equality the
      // candidate survives and only `read` advances, so duplicate
      // candidates (collision repeats) are preserved.
      while (read < a_size && j < n) {
        ++stats->merge_steps;
        if (data[read] < buf[j]) {
          ++read;
        } else if (buf[j] < data[read]) {
          ++j;
        } else {
          data[kept++] = data[read];
          ++read;
        }
      }
    }
  }
  a->resize(kept);
}

}  // namespace ooint
