#include "rules/ref_fact_store.h"

namespace ooint {

namespace {

/// Footprint estimate of one Value, including owned heap blocks.
size_t ValueBytes(const Value& value) {
  size_t bytes = sizeof(Value);
  switch (value.kind()) {
    case ValueKind::kString:
      if (value.AsString().capacity() > sizeof(std::string)) {
        bytes += value.AsString().capacity();
      }
      break;
    case ValueKind::kOid: {
      const Oid& oid = value.AsOid();
      for (const std::string* s : {&oid.agent(), &oid.dbms(), &oid.database(),
                                   &oid.relation()}) {
        if (s->capacity() > sizeof(std::string)) bytes += s->capacity();
      }
      break;
    }
    case ValueKind::kSet:
      for (const Value& e : value.AsSet()) bytes += ValueBytes(e);
      break;
    default:
      break;
  }
  return bytes;
}

/// Rough per-node overhead of libstdc++'s red-black tree / hash nodes.
constexpr size_t kMapNodeOverhead = 48;
constexpr size_t kHashNodeOverhead = 40;

size_t FactBytes(const Fact& fact) {
  size_t bytes = sizeof(Fact);
  if (fact.concept_name.capacity() > sizeof(std::string)) {
    bytes += fact.concept_name.capacity();
  }
  for (const std::string* s :
       {&fact.oid.agent(), &fact.oid.dbms(), &fact.oid.database(),
        &fact.oid.relation()}) {
    if (s->capacity() > sizeof(std::string)) bytes += s->capacity();
  }
  for (const auto& [name, value] : fact.attrs) {
    bytes += kMapNodeOverhead + sizeof(std::string);
    if (name.capacity() > sizeof(std::string)) bytes += name.capacity();
    bytes += ValueBytes(value);
  }
  return bytes;
}

}  // namespace

ConceptId ReferenceFactStore::InternConcept(const std::string& name) {
  auto [it, inserted] =
      concept_ids_.emplace(name, static_cast<ConceptId>(concept_names_.size()));
  if (inserted) {
    concept_names_.push_back(name);
    by_concept_.emplace_back();
  }
  return it->second;
}

ConceptId ReferenceFactStore::FindConcept(const std::string& name) const {
  auto it = concept_ids_.find(name);
  return it == concept_ids_.end() ? kNoConcept : it->second;
}

const std::string& ReferenceFactStore::ConceptName(ConceptId id) const {
  return concept_names_[id];
}

const std::vector<const Fact*>& ReferenceFactStore::FactsOf(
    ConceptId id) const {
  static const std::vector<const Fact*> kEmpty;
  return id == kNoConcept || id >= by_concept_.size() ? kEmpty
                                                      : by_concept_[id];
}

const std::vector<const Fact*>& ReferenceFactStore::FactsOf(
    const std::string& name) const {
  return FactsOf(FindConcept(name));
}

size_t ReferenceFactStore::CountOf(ConceptId id) const {
  return FactsOf(id).size();
}

void ReferenceFactStore::IndexAttr(ConceptId concept_id, std::uint32_t ordinal,
                                   const std::string& attr,
                                   const Value& value) {
  std::uint64_t key = HashCombine(concept_id, HashString(attr));
  key = HashCombine(key, HashValue(value));
  by_attr_[key].push_back(ordinal);
}

const std::vector<std::uint32_t>* ReferenceFactStore::Probe(
    ConceptId concept_id, const std::string& attr, const Value& value) const {
  std::uint64_t key = HashCombine(concept_id, HashString(attr));
  key = HashCombine(key, HashValue(value));
  auto it = by_attr_.find(key);
  return it == by_attr_.end() ? nullptr : &it->second;
}

const Fact* ReferenceFactStore::Insert(Fact fact) {
  const std::uint64_t canonical = HashFactCanonical(fact);
  std::vector<const Fact*>& bucket = dedup_[canonical];
  for (const Fact* existing : bucket) {
    if (existing->oid == fact.oid &&
        existing->concept_name == fact.concept_name &&
        existing->attrs == fact.attrs) {
      return nullptr;
    }
  }
  const ConceptId concept_id = InternConcept(fact.concept_name);
  all_.push_back(std::move(fact));
  const Fact& stored = all_.back();
  std::vector<const Fact*>& extent = by_concept_[concept_id];
  const auto ordinal = static_cast<std::uint32_t>(extent.size());
  extent.push_back(&stored);
  bucket.push_back(&stored);
  if (!stored.oid.empty()) {
    by_oid_[HashOid(stored.oid)].push_back({concept_id, ordinal});
  }
  for (const auto& [name, value] : stored.attrs) {
    IndexAttr(concept_id, ordinal, name, value);
    if (value.kind() == ValueKind::kSet) {
      for (const Value& element : value.AsSet()) {
        IndexAttr(concept_id, ordinal, name, element);
      }
    }
  }
  return &stored;
}

void ReferenceFactStore::ProbeOid(ConceptId concept_id, const Oid& oid,
                                  std::vector<std::uint32_t>* out) const {
  auto it = by_oid_.find(HashOid(oid));
  if (it == by_oid_.end()) return;
  for (const OidEntry& entry : it->second) {
    if (entry.concept_id == concept_id) out->push_back(entry.ordinal);
  }
}

const Fact* ReferenceFactStore::FindByOid(const Oid& oid) const {
  auto it = by_oid_.find(HashOid(oid));
  if (it == by_oid_.end()) return nullptr;
  // Entries are appended in insertion order; the first exact match is
  // the first-inserted fact with this OID (the precedence contract).
  for (const OidEntry& entry : it->second) {
    const Fact* fact = FactAt(entry.concept_id, entry.ordinal);
    if (fact->oid == oid) return fact;
  }
  return nullptr;
}

const Fact* ReferenceFactStore::FindByOid(const Oid& oid,
                                          ConceptId concept_id) const {
  auto it = by_oid_.find(HashOid(oid));
  if (it == by_oid_.end()) return nullptr;
  for (const OidEntry& entry : it->second) {
    if (entry.concept_id != concept_id) continue;
    const Fact* fact = FactAt(entry.concept_id, entry.ordinal);
    if (fact->oid == oid) return fact;
  }
  return nullptr;
}

void ReferenceFactStore::Clear() {
  all_.clear();
  concept_names_.clear();
  concept_ids_.clear();
  by_concept_.clear();
  dedup_.clear();
  by_oid_.clear();
  by_attr_.clear();
}

size_t ReferenceFactStore::ApproxBytes() const {
  size_t bytes = 0;
  for (const Fact& fact : all_) bytes += FactBytes(fact);
  for (const auto& [name, id] : concept_ids_) {
    (void)id;
    bytes += kHashNodeOverhead + sizeof(std::string);
    if (name.capacity() > sizeof(std::string)) bytes += name.capacity();
  }
  for (const std::vector<const Fact*>& extent : by_concept_) {
    bytes += extent.capacity() * sizeof(const Fact*);
  }
  for (const auto& [key, facts] : dedup_) {
    (void)key;
    bytes += kHashNodeOverhead + facts.capacity() * sizeof(const Fact*);
  }
  for (const auto& [key, entries] : by_oid_) {
    (void)key;
    bytes += kHashNodeOverhead + entries.capacity() * sizeof(OidEntry);
  }
  for (const auto& [key, ordinals] : by_attr_) {
    (void)key;
    bytes += kHashNodeOverhead + ordinals.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace ooint
