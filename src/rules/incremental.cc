#include "rules/incremental.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/string_util.h"
#include "rules/matcher.h"
#include "rules/term.h"

namespace ooint {

std::atomic<bool> IncrementalEvaluator::decrement_bug_{false};

namespace {

/// The concept name a fact literal ranges over ("" for comparisons).
const std::string& LiteralConcept(const Literal& literal) {
  static const std::string kEmpty;
  if (literal.kind == Literal::Kind::kOTerm) return literal.oterm.class_name;
  if (literal.kind == Literal::Kind::kPredicate) return literal.pred_name;
  return kEmpty;
}

/// True when variable `var` occurs in some body literal of `rule`.
bool VarInBody(const Rule& rule, const std::string& var) {
  for (const Literal& literal : rule.body) {
    std::vector<std::string> vars;
    CollectVariables(literal, &vars);
    for (const std::string& v : vars) {
      if (v == var) return true;
    }
  }
  return false;
}

}  // namespace

void DeltaMaintenanceStats::Accumulate(const DeltaMaintenanceStats& o) {
  batches += o.batches;
  base_inserted += o.base_inserted;
  base_deleted += o.base_deleted;
  noop_deletes += o.noop_deletes;
  facts_inserted += o.facts_inserted;
  facts_deleted += o.facts_deleted;
  overdeleted += o.overdeleted;
  rederived += o.rederived;
  rounds += o.rounds;
}

std::string DeltaMaintenanceStats::ToString() const {
  return StrCat("batches=", batches, " base+=", base_inserted,
                " base-=", base_deleted, " noop_deletes=", noop_deletes,
                " facts+=", facts_inserted, " facts-=", facts_deleted,
                " overdeleted=", overdeleted, " rederived=", rederived,
                " rounds=", rounds);
}

Result<std::unique_ptr<IncrementalEvaluator>> IncrementalEvaluator::Adopt(
    Evaluator* ev) {
  if (ev == nullptr) {
    return Status::InvalidArgument("cannot adopt a null evaluator");
  }
  std::unique_ptr<IncrementalEvaluator> engine(new IncrementalEvaluator(ev));
  OOINT_RETURN_IF_ERROR(engine->Initialize());
  return engine;
}

IncrementalEvaluator::~IncrementalEvaluator() {
  // Revert the evaluator to classic (everything-stored-is-live) mode;
  // callers that keep using it afterwards must Reset() + Evaluate().
  if (ev_ != nullptr) {
    ev_->live_filter_ = nullptr;
    ev_->resolver_override_ = nullptr;
  }
}

size_t IncrementalEvaluator::live_count() const {
  size_t n = 0;
  for (std::uint8_t b : live_) n += b;
  return n;
}

void IncrementalEvaluator::Ensure(FactId id) {
  if (id < live_.size()) return;
  live_.resize(id + 1, 0);
  base_count_.resize(id + 1, 0);
  deriv_count_.resize(id + 1, 0);
}

void IncrementalEvaluator::Kill(FactId id) {
  live_[id] = 0;
  if (id < old_live_.size() && old_live_[id] != 0) {
    net_dead_.insert(id);
  } else {
    net_born_.erase(id);
  }
}

void IncrementalEvaluator::Birth(FactId id) {
  live_[id] = 1;
  if (id < old_live_.size() && old_live_[id] != 0) {
    net_dead_.erase(id);
  } else {
    net_born_.insert(id);
  }
}

int IncrementalEvaluator::StratumOf(const std::string& concept_name) const {
  auto it = strata_.find(concept_name);
  return it == strata_.end() ? 0 : it->second;
}

Status IncrementalEvaluator::Initialize() {
  ev_->Reset();
  strata_.clear();
  max_stratum_ = 0;
  OOINT_RETURN_IF_ERROR(ev_->Stratify(&strata_, &max_stratum_));
  ComputeRecursion();
  ev_->live_filter_ = &live_;
  ev_->resolver_override_ = [this](const Oid& oid) { return ResolveOid(oid); };
  OOINT_RETURN_IF_ERROR(LoadBase());
  ev_->evaluated_ = true;
  ev_->degraded_ = DegradedInfo();
  return Status::OK();
}

void IncrementalEvaluator::ComputeRecursion() {
  // reach[c] = head concepts transitively derivable from a positive
  // occurrence of c; c is recursive iff c ∈ reach[c]. Stratification
  // already forbids cycles through negation, so positive edges are the
  // only recursion carrier.
  recursive_.clear();
  std::map<std::string, std::set<std::string>> reach;
  bool changed = true;
  for (const Rule& rule : ev_->rules_) {
    const std::vector<std::string> heads = rule.HeadConceptNames();
    for (const std::string& bc : rule.BodyConceptNames(true)) {
      reach[bc].insert(heads.begin(), heads.end());
    }
  }
  while (changed) {
    changed = false;
    for (auto& [c, heads] : reach) {
      const size_t before = heads.size();
      std::vector<std::string> frontier(heads.begin(), heads.end());
      for (const std::string& h : frontier) {
        auto it = reach.find(h);
        if (it != reach.end()) {
          heads.insert(it->second.begin(), it->second.end());
        }
      }
      if (heads.size() != before) changed = true;
    }
  }
  for (const auto& [c, heads] : reach) {
    if (heads.count(c) > 0) recursive_.insert(c);
  }
}

std::vector<IncrementalEvaluator::Plan> IncrementalEvaluator::PlansOf(
    int stratum) const {
  std::vector<Plan> plans;
  for (const Rule& rule : ev_->rules_) {
    const std::vector<std::string> heads = rule.HeadConceptNames();
    if (heads.empty() || StratumOf(heads.front()) != stratum) continue;
    Plan plan{&rule, {}, {}};
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& literal = rule.body[i];
      if (literal.kind == Literal::Kind::kCompare) continue;
      if (literal.negated) {
        plan.negated.emplace_back(i, LiteralConcept(literal));
      } else {
        plan.positive.emplace_back(i, LiteralConcept(literal));
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

Status IncrementalEvaluator::LoadBase() {
  // Mirror of Evaluator::LoadBaseFacts, serial and strict: seeds first,
  // then every concept binding in declaration order — the fact ids (and
  // therefore the OID resolver's first-inserted precedence) come out
  // identical to a from-scratch load.
  BaseDelta initial;
  for (const Fact& seed : ev_->seed_facts_) initial.inserts.push_back(seed);
  for (const Evaluator::ConceptBinding& binding : ev_->bindings_decl_) {
    const Evaluator::Source& source = ev_->sources_[binding.source_index];
    Result<std::vector<const Object*>> extent =
        source.source->FetchExtent(binding.class_name);
    if (!extent.ok()) return extent.status();
    for (const Object* object : extent.value()) {
      if (object == nullptr) continue;
      initial.inserts.push_back(
          Fact::FromObject(binding.concept_name, *object));
    }
  }
  DeltaMaintenanceStats adopt_stats;
  return RunBatch(initial, /*initial=*/true, &adopt_stats);
}

Result<DeltaMaintenanceStats> IncrementalEvaluator::ApplyBaseDelta(
    const BaseDelta& delta) {
  DeltaMaintenanceStats stats;
  stats.batches = 1;
  OOINT_RETURN_IF_ERROR(RunBatch(delta, /*initial=*/false, &stats));
  cumulative_.Accumulate(stats);
  return stats;
}

Result<DeltaMaintenanceStats> IncrementalEvaluator::ApplyExtentDelta(
    const std::string& schema_name, const std::vector<Object>& inserted,
    const std::vector<Object>& deleted) {
  BaseDelta delta;
  for (const Evaluator::ConceptBinding& binding : ev_->bindings_decl_) {
    const Evaluator::Source& source = ev_->sources_[binding.source_index];
    if (source.schema_name != schema_name) continue;
    const Schema& schema = source.source->schema();
    Result<ClassId> bound = schema.GetClass(binding.class_name);
    if (!bound.ok()) return bound.status();
    for (const Object& object : inserted) {
      if (!schema.IsSubclassOf(object.class_id(), bound.value())) continue;
      delta.inserts.push_back(Fact::FromObject(binding.concept_name, object));
    }
    for (const Object& object : deleted) {
      if (!schema.IsSubclassOf(object.class_id(), bound.value())) continue;
      delta.deletes.push_back(Fact::FromObject(binding.concept_name, object));
    }
  }
  return ApplyBaseDelta(delta);
}

Status IncrementalEvaluator::RunBatch(const BaseDelta& delta, bool initial,
                                      DeltaMaintenanceStats* stats) {
  old_live_ = live_;
  net_born_.clear();
  net_dead_.clear();
  parked_overdeleted_.clear();
  // Batch boundary: base deltas (and any program change since the last
  // batch) may have shifted extent cardinalities, so cached pivot-join
  // plans are stale. They are cheap to rebuild — one symbolic replay
  // per (rule, pivot position) on first use.
  plan_cache_.clear();

  // Phase 0: base-fact application. Inserts before deletes, so an
  // insert-then-delete of one fact inside one batch nets out.
  for (const Fact& fact : delta.inserts) {
    bool was_new = false;
    FactId id = store().InsertOrFind(Fact(fact), &was_new);
    Ensure(id);
    ++base_count_[id];
    ++stats->base_inserted;
    if (live_[id] == 0) Birth(id);
  }
  for (const Fact& fact : delta.deletes) {
    const FactId id = store().FindExisting(fact);
    if (id == kNoFact || id >= live_.size() || live_[id] == 0 ||
        base_count_[id] == 0) {
      // Deleting a fact that was never (base-)inserted is a no-op.
      ++stats->noop_deletes;
      continue;
    }
    --base_count_[id];
    ++stats->base_deleted;
    if (base_count_[id] > 0) continue;
    const std::string& cname = store().ConceptName(store().ConceptOf(id));
    if (deriv_count_[id] <= 0) {
      Kill(id);
    } else if (IsRecursive(cname)) {
      // DRed: a recursive fact that lost its base support may only be
      // standing on a derivation cycle through itself — over-delete now,
      // rederive against the post-delete world when its stratum runs.
      Kill(id);
      ++stats->overdeleted;
      parked_overdeleted_[StratumOf(cname)].push_back(id);
    }
    // Non-recursive with derivations left: counts are exact, the fact
    // legitimately survives on derived support alone.
  }

  for (int s = 0; s <= max_stratum_; ++s) {
    const std::vector<Plan> plans = PlansOf(s);
    std::map<FactId, std::uint32_t> death_round;
    std::vector<FactId> overdeleted;
    auto parked = parked_overdeleted_.find(s);
    if (parked != parked_overdeleted_.end()) {
      overdeleted = std::move(parked->second);
    }
    OOINT_RETURN_IF_ERROR(
        DeletePhase(s, plans, &death_round, &overdeleted, stats));
    std::vector<FactId> revived;
    OOINT_RETURN_IF_ERROR(
        RederivePhase(s, plans, overdeleted, &revived, stats));
    OOINT_RETURN_IF_ERROR(InsertPhase(s, plans, revived, initial, stats));
  }

  stats->facts_inserted += net_born_.size();
  stats->facts_deleted += net_dead_.size();
  // Invariant: dead facts carry zero counts (a later revival starts
  // from a clean slate).
  for (FactId id : net_dead_) deriv_count_[id] = 0;

  // Keep the adopted evaluator's headline stats meaningful.
  ev_->stats_.strata = static_cast<size_t>(max_stratum_) + 1;
  size_t base = 0;
  size_t derived = 0;
  for (FactId id = 0; id < live_.size(); ++id) {
    if (live_[id] == 0) continue;
    if (base_count_[id] > 0) {
      ++base;
    } else {
      ++derived;
    }
  }
  ev_->stats_.base_facts = base;
  ev_->stats_.derived_facts = derived;
  return Status::OK();
}

Status IncrementalEvaluator::DeletePhase(
    int stratum, const std::vector<Plan>& plans,
    std::map<FactId, std::uint32_t>* death_round,
    std::vector<FactId>* overdeleted, DeltaMaintenanceStats* stats) {
  (void)stratum;
  if (plans.empty()) return Status::OK();
  // Nested-descriptor OID hops during delete joins resolve in the
  // batch-old world (the derivations being retracted existed there).
  resolver_world_ = &old_live_;

  std::vector<FactId> pivots(net_dead_.begin(), net_dead_.end());
  for (FactId id : pivots) (*death_round)[id] = 1;

  bool have_flips = false;
  for (const Plan& plan : plans) {
    if (!plan.negated.empty()) have_flips = true;
  }
  have_flips = have_flips && !net_born_.empty();

  // Masks for the negation-flip post-checks.
  std::vector<std::uint8_t> born_mask;
  if (have_flips) {
    born_mask.assign(live_.size(), 0);
    for (FactId id : net_born_) born_mask[id] = 1;
  }

  const FactMatcher matcher = ev_->MakeMatcher();
  std::uint32_t r = 1;
  while (!pivots.empty() || (r == 1 && have_flips)) {
    ++stats->rounds;
    std::vector<FactId> next;
    for (FactId pivot : pivots) {
      const std::string& cname =
          store().ConceptName(store().ConceptOf(pivot));
      for (const Plan& plan : plans) {
        for (const auto& [pos, concept_name] : plan.positive) {
          if (concept_name != cname) continue;
          std::vector<Evaluator::Solution> sols;
          OOINT_RETURN_IF_ERROR(SolvePivot(*plan.rule, pos, pivot, r,
                                           PivotMode::kDeleteRound,
                                           *death_round, &sols));
          for (const Evaluator::Solution& sol : sols) {
            OOINT_ASSIGN_OR_RETURN(
                Evaluator::HeadFact head,
                Evaluator::BuildHeadFact(*plan.rule, matcher, sol));
            const FactId target = store().FindExisting(head.fact);
            if (target == kNoFact) continue;
            DecrementDerivation(target, r, death_round, &next, overdeleted,
                                stats);
          }
        }
      }
    }
    if (r == 1 && have_flips) {
      // Negation flips: a net-born lower-stratum fact g newly satisfies
      // a negated literal, retracting every derivation whose negation
      // check was unsatisfied in the old world. Solved by making the
      // literal positive and pinning it to g; position-ordered
      // telescoping within round 1 dedups against the positive pivots.
      for (const Plan& plan : plans) {
        for (const auto& [m, concept_name] : plan.negated) {
          std::vector<FactId> flips;
          for (FactId g : net_born_) {
            if (store().ConceptName(store().ConceptOf(g)) == concept_name) {
              flips.push_back(g);
            }
          }
          if (flips.empty()) continue;
          Rule mod = *plan.rule;
          mod.body[m].negated = false;
          for (FactId g : flips) {
            std::vector<Evaluator::Solution> sols;
            OOINT_RETURN_IF_ERROR(SolvePivot(mod, m, g, 1,
                                             PivotMode::kFlipDown,
                                             *death_round, &sols));
            for (Evaluator::Solution& sol : sols) {
              // The retracted derivation requires the negation to have
              // been unsatisfied in the old world...
              std::vector<FactId> matches;
              MatchingFacts(plan.rule->body[m], sol.bindings, old_live_,
                            &matches);
              if (!matches.empty()) continue;
              // ...and g to be the minimal net-born fact satisfying it
              // now (several may appear at once; count the flip once).
              matches.clear();
              MatchingFacts(plan.rule->body[m], sol.bindings, born_mask,
                            &matches);
              if (matches.empty() || matches.front() != g) continue;
              // The original rule never merges the negated literal's
              // fact into the head.
              sol.matched[m] = FactView();
              OOINT_ASSIGN_OR_RETURN(
                  Evaluator::HeadFact head,
                  Evaluator::BuildHeadFact(*plan.rule, matcher, sol));
              const FactId target = store().FindExisting(head.fact);
              if (target == kNoFact) continue;
              DecrementDerivation(target, 1, death_round, &next, overdeleted,
                                  stats);
            }
          }
        }
      }
    }
    pivots = std::move(next);
    ++r;
  }
  resolver_world_ = nullptr;
  return Status::OK();
}

void IncrementalEvaluator::DecrementDerivation(
    FactId target, std::uint32_t round,
    std::map<FactId, std::uint32_t>* death_round, std::vector<FactId>* next,
    std::vector<FactId>* overdeleted, DeltaMaintenanceStats* stats) {
  Ensure(target);
  std::int64_t& count = deriv_count_[target];
  if (decrement_bug_.load(std::memory_order_relaxed) && count == 1) {
    // Injected off-by-one (harness mutation check): the guard reads
    // "> 1" instead of ">= 1", so the last derivation is never
    // retracted and deletions under-propagate.
  } else if (count > 0) {
    --count;
  }
  if (live_[target] == 0) return;  // already dead / scheduled
  if (base_count_[target] > 0) return;
  const std::string& cname =
      store().ConceptName(store().ConceptOf(target));
  if (IsRecursive(cname)) {
    // DRed over-deletion: any lost support without base support is
    // suspect of standing on a cycle through itself.
    Kill(target);
    (*death_round)[target] = round + 1;
    next->push_back(target);
    overdeleted->push_back(target);
    ++stats->overdeleted;
  } else if (count <= 0) {
    // Exact counting: the last derivation is gone.
    Kill(target);
    (*death_round)[target] = round + 1;
    next->push_back(target);
  }
}

Status IncrementalEvaluator::RederivePhase(
    int stratum, const std::vector<Plan>& plans,
    const std::vector<FactId>& overdeleted, std::vector<FactId>* revived,
    DeltaMaintenanceStats* stats) {
  (void)stratum;
  if (overdeleted.empty()) return Status::OK();
  // One pass against the frozen post-delete world: revivals do NOT
  // enter the frozen world (derivations through a sibling revival are
  // added by the insert phase, where revived facts pivot) — that is
  // what keeps each derivation counted exactly once.
  const std::vector<std::uint8_t> frozen = live_;
  resolver_world_ = &frozen;
  std::vector<FactId> targets = overdeleted;
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  std::map<const Rule*, std::vector<FactId>> full_cache;
  Status status = Status::OK();
  for (FactId h : targets) {
    if (live_[h] != 0) continue;
    Result<std::int64_t> count = CountDerivations(h, plans, frozen,
                                                  &full_cache);
    if (!count.ok()) {
      status = count.status();
      break;
    }
    if (count.value() > 0) {
      deriv_count_[h] = count.value();
      Birth(h);
      revived->push_back(h);
      ++stats->rederived;
    } else {
      deriv_count_[h] = 0;
    }
  }
  resolver_world_ = nullptr;
  return status;
}

Result<std::int64_t> IncrementalEvaluator::CountDerivations(
    FactId fact_id, const std::vector<Plan>& plans,
    const std::vector<std::uint8_t>& world,
    std::map<const Rule*, std::vector<FactId>>* full_solutions) {
  const Fact* fact = store().FactById(fact_id);
  if (fact == nullptr) {
    return Status::Internal("over-deleted fact vanished from the store");
  }
  const FactMatcher matcher = ev_->MakeMatcher();
  std::int64_t total = 0;
  for (const Plan& plan : plans) {
    const Rule& rule = *plan.rule;
    const std::vector<std::string> heads = rule.HeadConceptNames();
    if (heads.empty() || heads.front() != fact->concept_name) continue;
    Bindings seed;
    const HeadUnify unify = UnifyHead(rule, *fact, matcher, &seed);
    if (unify == HeadUnify::kNoMatch) continue;
    // Rederivation sits between the deletion and insertion rounds of
    // the batch order: positive factors show old-and-still-live facts
    // only (derivations through batch-born facts are the insert
    // phase's increments), negated factors the usual union world.
    const auto admit = [this, &rule, &world](size_t i, FactId id) {
      if (rule.body[i].negated) return InUnion(id);
      return id < old_live_.size() && old_live_[id] != 0 &&
             id < world.size() && world[id] != 0;
    };
    if (unify == HeadUnify::kBindings) {
      // Head-restricted: the head's structure pins bindings, the join
      // only explores derivations that can produce this fact. Each
      // solution is still verified — merged attributes may diverge.
      std::vector<Evaluator::Solution> sols;
      OOINT_RETURN_IF_ERROR(SolveSeeded(rule, seed, admit, &sols));
      for (const Evaluator::Solution& sol : sols) {
        OOINT_ASSIGN_OR_RETURN(Evaluator::HeadFact head,
                               Evaluator::BuildHeadFact(rule, matcher, sol));
        if (store().FindExisting(head.fact) == fact_id) ++total;
      }
      continue;
    }
    // Structurally un-unifiable head (attribute-name variables, nested
    // descriptors): full solve, cached across the pass's facts.
    auto it = full_solutions->find(&rule);
    if (it == full_solutions->end()) {
      std::vector<Evaluator::Solution> sols;
      OOINT_RETURN_IF_ERROR(SolveSeeded(rule, Bindings{}, admit, &sols));
      std::vector<FactId> head_ids;
      head_ids.reserve(sols.size());
      for (const Evaluator::Solution& sol : sols) {
        OOINT_ASSIGN_OR_RETURN(Evaluator::HeadFact head,
                               Evaluator::BuildHeadFact(rule, matcher, sol));
        head_ids.push_back(store().FindExisting(head.fact));
      }
      it = full_solutions->emplace(&rule, std::move(head_ids)).first;
    }
    for (FactId id : it->second) {
      if (id == fact_id) ++total;
    }
  }
  return total;
}

Status IncrementalEvaluator::InsertPhase(int stratum,
                                         const std::vector<Plan>& plans,
                                         const std::vector<FactId>& revived,
                                         bool initial,
                                         DeltaMaintenanceStats* stats) {
  (void)stratum;
  if (plans.empty()) return Status::OK();

  std::map<FactId, std::uint32_t> birth_round;
  std::vector<FactId> pivots(net_born_.begin(), net_born_.end());
  // Facts over-deleted in this stratum and revived must re-increment
  // their consumers within the stratum (those decrements happened in
  // the delete phase); they pivot alongside the net-born facts.
  pivots.insert(pivots.end(), revived.begin(), revived.end());
  std::sort(pivots.begin(), pivots.end());
  pivots.erase(std::unique(pivots.begin(), pivots.end()), pivots.end());
  for (FactId id : pivots) birth_round[id] = 1;

  bool have_flips = false;
  for (const Plan& plan : plans) {
    if (!plan.negated.empty()) have_flips = true;
  }
  have_flips = have_flips && !net_dead_.empty();
  std::vector<std::uint8_t> dead_mask;
  std::vector<FactId> dead_snapshot;
  if (have_flips) {
    dead_mask.assign(live_.size(), 0);
    for (FactId id : net_dead_) {
      dead_mask[id] = 1;
      dead_snapshot.push_back(id);
    }
  }

  bool have_const_rules = false;
  if (initial) {
    for (const Plan& plan : plans) {
      if (plan.positive.empty()) have_const_rules = true;
    }
  }

  const FactMatcher matcher = ev_->MakeMatcher();
  std::uint32_t r = 1;
  bool flips_done = !have_flips;
  while (true) {
    const bool do_const = r == 1 && have_const_rules;
    if (pivots.empty() && !do_const) {
      if (flips_done) break;
      // The positive insertion rounds are dry: run the flip-ups (the
      // last events of the batch order — a net-died fact g releases a
      // negated literal, admitting derivations valid only in the new
      // world). What they derive cascades through post-flip rounds.
      flips_done = true;
      ++stats->rounds;
      std::vector<FactId> born_queue;
      for (const Plan& plan : plans) {
        for (const auto& [m, concept_name] : plan.negated) {
          std::vector<FactId> flips;
          for (FactId g : dead_snapshot) {
            if (store().ConceptName(store().ConceptOf(g)) == concept_name) {
              flips.push_back(g);
            }
          }
          if (flips.empty()) continue;
          Rule mod = *plan.rule;
          mod.body[m].negated = false;
          for (FactId g : flips) {
            std::vector<Evaluator::Solution> sols;
            OOINT_RETURN_IF_ERROR(SolvePivot(mod, m, g, r,
                                             PivotMode::kFlipUp, birth_round,
                                             &sols));
            for (Evaluator::Solution& sol : sols) {
              // The gained derivation requires the negation to hold in
              // the new world...
              std::vector<FactId> matches;
              MatchingFacts(plan.rule->body[m], sol.bindings, live_,
                            &matches);
              if (!matches.empty()) continue;
              // ...and g to be the minimal net-died fact that was
              // blocking it (several may leave at once; one event).
              matches.clear();
              MatchingFacts(plan.rule->body[m], sol.bindings, dead_mask,
                            &matches);
              if (matches.empty() || matches.front() != g) continue;
              sol.matched[m] = FactView();
              OOINT_ASSIGN_OR_RETURN(
                  Evaluator::HeadFact head,
                  Evaluator::BuildHeadFact(*plan.rule, matcher, sol));
              IncrementDerivation(std::move(head.fact), r, &birth_round,
                                  &born_queue);
            }
          }
        }
      }
      for (FactId id : born_queue) {
        Birth(id);
        pivots.push_back(id);
      }
      ++r;
      continue;
    }
    ++stats->rounds;
    const PivotMode mode = flips_done && have_flips
                               ? PivotMode::kInsertPostFlip
                               : PivotMode::kInsertRound;
    std::vector<FactId> next;
    std::vector<FactId> born_queue;
    for (FactId pivot : pivots) {
      const std::string& cname =
          store().ConceptName(store().ConceptOf(pivot));
      for (const Plan& plan : plans) {
        for (const auto& [pos, concept_name] : plan.positive) {
          if (concept_name != cname) continue;
          std::vector<Evaluator::Solution> sols;
          OOINT_RETURN_IF_ERROR(SolvePivot(*plan.rule, pos, pivot, r, mode,
                                           birth_round, &sols));
          for (const Evaluator::Solution& sol : sols) {
            OOINT_ASSIGN_OR_RETURN(
                Evaluator::HeadFact head,
                Evaluator::BuildHeadFact(*plan.rule, matcher, sol));
            IncrementDerivation(std::move(head.fact), r, &birth_round,
                                &born_queue);
          }
        }
      }
    }
    if (do_const) {
      // Initial adoption only: rules without positive fact literals
      // fire once, unrestricted (mirrors the classic first round).
      for (const Plan& plan : plans) {
        if (!plan.positive.empty()) continue;
        std::vector<Evaluator::Solution> sols;
        const auto admit = [this, &plan](size_t i, FactId id) {
          return plan.rule->body[i].negated ? InUnion(id) : IsLive(id);
        };
        OOINT_RETURN_IF_ERROR(
            SolveSeeded(*plan.rule, Bindings{}, admit, &sols));
        for (const Evaluator::Solution& sol : sols) {
          OOINT_ASSIGN_OR_RETURN(
              Evaluator::HeadFact head,
              Evaluator::BuildHeadFact(*plan.rule, matcher, sol));
          IncrementDerivation(std::move(head.fact), r, &birth_round,
                              &born_queue);
        }
      }
    }
    // Round boundary: births become visible (worlds inside a round are
    // frozen — a fact derived mid-round joins the next round's pivots).
    for (FactId id : born_queue) {
      Birth(id);
      next.push_back(id);
    }
    pivots = std::move(next);
    ++r;
  }
  return Status::OK();
}

void IncrementalEvaluator::IncrementDerivation(
    Fact fact, std::uint32_t round,
    std::map<FactId, std::uint32_t>* birth_round,
    std::vector<FactId>* born_queue) {
  bool was_new = false;
  const FactId id = store().InsertOrFind(std::move(fact), &was_new);
  Ensure(id);
  ++deriv_count_[id];
  if (live_[id] == 0 && birth_round->count(id) == 0) {
    (*birth_round)[id] = round + 1;
    born_queue->push_back(id);
  }
}

Status IncrementalEvaluator::SolvePivot(
    const Rule& rule, size_t pos, FactId pivot, std::uint32_t round,
    PivotMode mode, const std::map<FactId, std::uint32_t>& round_of,
    std::vector<Evaluator::Solution>* solutions) {
  Evaluator::JoinContext ctx;
  ctx.rule = &rule;
  // The pivot branch in CollectCandidates overrides the delta window;
  // setting delta_literal only steers the join-order heuristic toward
  // the (single-fact) pivot position.
  ctx.delta_literal = static_cast<int>(pos);
  ctx.delta_begin = 0;
  ctx.delta_end = std::numeric_limits<std::uint32_t>::max();
  ctx.stats = &scratch_stats_;
  ctx.scratch = &join_scratch_;
  // Pivot joins replay a cached cost-based plan: the pivot position is
  // a single fact (selectivity 1), so the planner anchors the join
  // there and orders the rest by estimated cost.
  if (ev_->use_join_kernel_ &&
      ev_->planner_mode_ == PlannerMode::kCostBased) {
    const auto key = std::make_pair(&rule, pos);
    auto it = plan_cache_.find(key);
    if (it == plan_cache_.end()) {
      it = plan_cache_
               .emplace(key, ev_->ComputePlan(rule, static_cast<int>(pos),
                                              static_cast<int>(pos)))
               .first;
    }
    ctx.plan = &it->second;
  }
  Evaluator::IncrementalHooks hooks;
  hooks.pivot_literal = static_cast<int>(pos);
  hooks.pivot_fact = pivot;
  const Rule* body_rule = &rule;
  const auto old_world = [this](FactId id) {
    return id < old_live_.size() && old_live_[id] != 0;
  };
  // Telescoped worlds: a factor whose elementary change is ordered
  // before the pivot's event shows its new state, one ordered after
  // shows its old state (ties broken by body position). See PivotMode
  // for the global event order the worlds encode.
  switch (mode) {
    case PivotMode::kDeleteRound:
      hooks.admit = [this, body_rule, pos, round, &round_of, old_world](
                        size_t i, FactId id) {
        if (i == pos) return true;
        // Negated literals: flip-downs applied, flip-ups not — born
        // and died facts are both visible.
        if (body_rule->body[i].negated) return InUnion(id);
        if (!old_world(id)) return false;
        auto it = round_of.find(id);
        if (it == round_of.end()) return true;
        return i < pos ? it->second > round : it->second >= round;
      };
      break;
    case PivotMode::kFlipDown:
      // First events of the batch: nothing else has happened yet, so
      // positive factors read the fully-old world (deaths included).
      // Negated factors: earlier positions' flip-downs applied (union),
      // later ones not (old).
      hooks.admit = [this, body_rule, pos, old_world](size_t i, FactId id) {
        if (i == pos) return true;
        if (body_rule->body[i].negated) {
          return i < pos ? InUnion(id) : old_world(id);
        }
        return old_world(id);
      };
      break;
    case PivotMode::kInsertRound:
      hooks.admit = [this, body_rule, pos, round, &round_of](size_t i,
                                                             FactId id) {
        if (i == pos) return true;
        if (body_rule->body[i].negated) return InUnion(id);
        if (!IsLive(id)) return false;
        if (i < pos) return true;
        auto it = round_of.find(id);
        return it == round_of.end() || it->second < round;
      };
      break;
    case PivotMode::kInsertPostFlip:
      // Cascades after the flip-ups: negation now reads the final
      // world (died facts gone, born facts in).
      hooks.admit = [this, body_rule, pos, round, &round_of](size_t i,
                                                             FactId id) {
        if (i == pos) return true;
        if (body_rule->body[i].negated) return IsLive(id);
        if (!IsLive(id)) return false;
        if (i < pos) return true;
        auto it = round_of.find(id);
        return it == round_of.end() || it->second < round;
      };
      break;
    case PivotMode::kFlipUp:
      // After every deletion and insertion round: positive factors
      // read the new world outright. Negated: earlier positions'
      // flip-ups applied (new), later ones pending (union).
      hooks.admit = [this, body_rule, pos](size_t i, FactId id) {
        if (i == pos) return true;
        if (body_rule->body[i].negated) {
          return i < pos ? IsLive(id) : InUnion(id);
        }
        return IsLive(id);
      };
      break;
  }
  ctx.inc = &hooks;
  const FactMatcher matcher = ev_->MakeMatcher();
  return ev_->SolveRule(matcher, ctx, solutions);
}

Status IncrementalEvaluator::SolveSeeded(
    const Rule& rule, const Bindings& seed,
    const std::function<bool(size_t, FactId)>& admit,
    std::vector<Evaluator::Solution>* solutions) {
  Evaluator::JoinContext ctx;
  ctx.rule = &rule;
  ctx.stats = &scratch_stats_;
  // Kernel scratch only — no plan: the seed binds variables the static
  // planner cannot see, so the dynamic per-row pick (which reads the
  // actual bindings) stays in charge here.
  ctx.scratch = &join_scratch_;
  join_scratch_.EnsureDepths(rule.body.size());
  Evaluator::IncrementalHooks hooks;
  hooks.admit = admit;
  ctx.inc = &hooks;
  const FactMatcher matcher = ev_->MakeMatcher();
  Evaluator::Solution init;
  init.bindings = seed;
  init.matched.assign(rule.body.size(), FactView());
  std::vector<char> done(rule.body.size(), 0);
  return ev_->SolveBody(matcher, ctx, &done, rule.body.size(),
                        std::move(init), solutions);
}

void IncrementalEvaluator::MatchingFacts(
    const Literal& literal, const Bindings& bindings,
    const std::vector<std::uint8_t>& world, std::vector<FactId>* out) const {
  const ConceptId concept_id = store().FindConcept(LiteralConcept(literal));
  if (concept_id == kNoConcept) return;
  const FactMatcher matcher = ev_->MakeMatcher();
  const size_t count = store().CountOf(concept_id);
  for (std::uint32_t ordinal = 0; ordinal < count; ++ordinal) {
    const FactId id = store().IdAt(concept_id, ordinal);
    if (id >= world.size() || world[id] == 0) continue;
    const FactView view = store().ViewAt(concept_id, ordinal);
    if (literal.kind == Literal::Kind::kOTerm) {
      std::vector<Bindings> matches;
      matcher.MatchOTerm(literal.oterm, view, bindings, &matches);
      if (!matches.empty()) out->push_back(id);
      continue;
    }
    // Positional predicate match (mirrors SolveBody's match_args).
    Bindings scratch = bindings;
    bool ok = true;
    for (size_t i = 0; i < literal.args.size() && ok; ++i) {
      const ValueHandle stored = view.Find(StrCat(i));
      if (!stored.valid()) {
        ok = false;
        break;
      }
      const TermArg& arg = literal.args[i];
      if (arg.is_constant()) {
        ok = matcher.ValuesEqual(arg.constant, stored);
      } else if (arg.is_variable()) {
        auto bound = scratch.find(arg.var);
        if (bound != scratch.end()) {
          ok = matcher.ValuesEqual(bound->second, stored);
        } else {
          scratch.emplace(arg.var, stored.Materialize());
        }
      } else {
        ok = false;
      }
    }
    if (ok) out->push_back(id);
  }
}

IncrementalEvaluator::HeadUnify IncrementalEvaluator::UnifyHead(
    const Rule& rule, const Fact& fact, const FactMatcher& matcher,
    Bindings* seed) const {
  const Literal& head = rule.head.front();
  if (head.kind == Literal::Kind::kPredicate) {
    for (size_t i = 0; i < head.args.size(); ++i) {
      auto it = fact.attrs.find(StrCat(i));
      if (it == fact.attrs.end()) return HeadUnify::kNoMatch;
      const TermArg& arg = head.args[i];
      if (arg.is_constant()) {
        if (!matcher.ValuesEqual(arg.constant, it->second)) {
          return HeadUnify::kNoMatch;
        }
      } else if (arg.is_variable()) {
        auto bound = seed->find(arg.var);
        if (bound != seed->end()) {
          if (!matcher.ValuesEqual(bound->second, it->second)) {
            return HeadUnify::kNoMatch;
          }
        } else {
          (*seed)[arg.var] = it->second;
        }
      } else {
        return HeadUnify::kUnsupported;
      }
    }
    return HeadUnify::kBindings;
  }
  if (head.kind != Literal::Kind::kOTerm) return HeadUnify::kUnsupported;
  const OTerm& oterm = head.oterm;
  if (oterm.object.is_constant()) {
    if (oterm.object.constant.kind() != ValueKind::kOid) {
      return HeadUnify::kUnsupported;
    }
    if (!matcher.ValuesEqual(oterm.object.constant, Value::OfOid(fact.oid))) {
      return HeadUnify::kNoMatch;
    }
  } else if (oterm.object.is_variable()) {
    const std::string& var = oterm.object.var;
    // Only seed the object variable when the body binds it — an
    // unbound object variable means a skolem head, and seeding it
    // would make BuildHeadFact construct a different (bound-OID) fact.
    if (!var.empty() && var[0] != '_' && VarInBody(rule, var)) {
      auto bound = seed->find(var);
      if (bound != seed->end()) {
        if (!matcher.ValuesEqual(bound->second, Value::OfOid(fact.oid))) {
          return HeadUnify::kNoMatch;
        }
      } else {
        (*seed)[var] = Value::OfOid(fact.oid);
      }
    }
  } else {
    return HeadUnify::kUnsupported;
  }
  for (const AttrDescriptor& d : oterm.attrs) {
    // Attribute-name variables and nested descriptors flatten in ways
    // head unification cannot invert — fall back to the full solve.
    if (d.attr_is_variable) return HeadUnify::kUnsupported;
    if (d.value.is_nested()) return HeadUnify::kUnsupported;
    auto it = fact.attrs.find(d.attribute);
    if (d.value.is_constant()) {
      if (it == fact.attrs.end() ||
          !matcher.ValuesEqual(d.value.constant, it->second)) {
        return HeadUnify::kNoMatch;
      }
      continue;
    }
    const std::string& var = d.value.var;
    if (!var.empty() && var[0] == '_') continue;  // existential: unset
    if (it == fact.attrs.end()) return HeadUnify::kNoMatch;
    auto bound = seed->find(var);
    if (bound != seed->end()) {
      if (!matcher.ValuesEqual(bound->second, it->second)) {
        return HeadUnify::kNoMatch;
      }
    } else {
      (*seed)[var] = it->second;
    }
  }
  return HeadUnify::kBindings;
}

FactView IncrementalEvaluator::ResolveOid(const Oid& oid) const {
  const std::vector<std::uint8_t>& world =
      resolver_world_ != nullptr ? *resolver_world_ : live_;
  std::vector<FactId> ids;
  store().FactIdsWithOid(oid, &ids);
  // Ids stream ascending (insertion order), so the first admitted
  // base-supported fact mirrors the classic store's first-inserted
  // precedence (base extents load before derived facts); a derived
  // fact only wins when no live base fact carries the OID.
  FactId best = kNoFact;
  for (FactId id : ids) {
    if (id >= world.size() || world[id] == 0) continue;
    if (id < base_count_.size() && base_count_[id] > 0) {
      return store().ViewById(id);
    }
    if (best == kNoFact) best = id;
  }
  if (best == kNoFact) return FactView();
  return store().ViewById(best);
}

}  // namespace ooint
