#ifndef OOINT_RULES_TOPDOWN_H_
#define OOINT_RULES_TOPDOWN_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "model/instance_store.h"
#include "rules/fact.h"
#include "rules/fact_store.h"
#include "rules/rule.h"

namespace ooint {

/// The top-down, labelled rule evaluator of Appendix B.
///
/// Each head predicate q is associated with the set of schemas S that
/// contain q as a base concept_name, and each body predicate with the set of
/// rules R defining it. Algorithm evaluation(q, Q):
///
///   for each rule q^{S} <= p_1^{R_1}, ..., p_n^{R_n} in Q:
///     temp   := ∪_{s ∈ S} results of evaluating q against s
///     temp_i := evaluation(p_i, R_i)          (recursive call)
///     temp'  := temp_1 ⋈ ... ⋈ temp_n         (join on shared variables)
///     result := temp ∪ temp'
///
/// This evaluator mirrors that algorithm literally (with memoization so
/// shared subqueries are evaluated once). It handles the positive,
/// non-recursive programs Appendix B describes; negation and recursion
/// are the bottom-up Evaluator's job. Results are facts of the queried
/// concept_name; the bottom-up and top-down evaluators agree on such programs
/// (a property the test suite checks).
class TopDownEvaluator {
 public:
  TopDownEvaluator() = default;

  /// Registers a component database (schema name + store).
  void AddSource(const std::string& schema_name, const InstanceStore* store);

  /// Declares that local class `class_name` of `schema_name` populates
  /// concept_name `concept_name` — the paper's q^{S} schema labels.
  Status BindConcept(const std::string& concept_name,
                     const std::string& schema_name,
                     const std::string& class_name);

  /// Adds a definite positive rule.
  Status AddRule(Rule rule);

  /// evaluation(q, Q): all facts derivable for `concept_name`.
  Result<std::vector<Fact>> Evaluate(const std::string& concept_name);

  /// Constant propagation (Appendix B: "the constants appearing in the
  /// query ... can be used to optimize the evaluation process"): facts
  /// of `concept_name` whose attributes match every (attribute, value)
  /// pair of `filter`. Base extents are filtered before materializing,
  /// and rule head variables bound by the filter are pre-bound before
  /// the body join. Results are NOT memoized (they are query-specific);
  /// sub-concepts still memoize their unfiltered evaluations.
  Result<std::vector<Fact>> EvaluateFiltered(
      const std::string& concept_name,
      const std::map<std::string, Value>& filter);

  struct Stats {
    size_t base_lookups = 0;
    size_t rule_invocations = 0;
    size_t joins = 0;
    size_t memo_hits = 0;
    /// Rule applications where the cost-based planner overrode the
    /// written body order (temp-relation sizes proved another literal
    /// cheaper by the kCostMargin factor).
    size_t plan_reorders = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Cooperative deadline: every *uncached* goal expansion charges
  /// CancelToken::kRoundChargeMs of virtual time and an expired token
  /// unwinds the proof with kDeadlineExceeded (memo hits stay free).
  /// Completed sub-goals keep their memo entries, so re-running with a
  /// fresh token resumes instead of starting over.
  void set_cancel_token(CancelToken token) { token_ = std::move(token); }
  const CancelToken& cancel_token() const { return token_; }

 private:
  struct Source {
    std::string schema_name;
    const InstanceStore* store;
  };
  struct ConceptBinding {
    size_t source_index;
    std::string class_name;
  };

  /// Base extents: evaluating q directly against every schema s ∈ S.
  Result<std::vector<Fact>> BaseFacts(const std::string& concept_name);

  /// Evaluates one rule body by joining the recursively evaluated body
  /// concepts; returns the instantiated head facts. `seed` pre-binds
  /// variables (constant propagation); empty for plain evaluation.
  Result<std::vector<Fact>> ApplyRule(
      const Rule& rule, const std::map<std::string, Value>& seed);

  std::vector<Source> sources_;
  std::map<std::string, std::vector<ConceptBinding>> bindings_decl_;
  std::vector<Rule> rules_;
  std::map<std::string, std::vector<size_t>> rules_by_head_;

  std::map<std::string, std::vector<Fact>> memo_;
  std::set<std::string> in_progress_;
  /// Every fact seen so far (base and derived), indexed by OID for
  /// nested-descriptor navigation — the same indexed store the
  /// bottom-up evaluator uses.
  FactStore universe_;
  Stats stats_;
  CancelToken token_;
};

}  // namespace ooint

#endif  // OOINT_RULES_TOPDOWN_H_
