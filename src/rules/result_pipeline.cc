#include "rules/result_pipeline.h"

#include <algorithm>
#include <utility>

#include "rules/fact_store.h"

namespace ooint {

namespace {

size_t ApproxValueBytes(const Value& value) {
  size_t bytes = sizeof(Value);
  switch (value.kind()) {
    case ValueKind::kString:
      bytes += value.AsString().size();
      break;
    case ValueKind::kOid:
      bytes += value.AsOid().ToString().size();
      break;
    case ValueKind::kSet:
      for (const Value& element : value.AsSet()) {
        bytes += ApproxValueBytes(element);
      }
      break;
    default:
      break;
  }
  return bytes;
}

std::uint64_t RowDigest(const Bindings& row) {
  std::uint64_t key = 0;
  for (const auto& [var, value] : row) {
    key = HashCombine(key, HashString(var));
    key = HashCombine(key, HashValue(value));
  }
  return key;
}

}  // namespace

size_t ApproxBindingsBytes(const Bindings& row) {
  // Three pointers + color per red-black node, plus the key string.
  constexpr size_t kNodeOverhead = 4 * sizeof(void*);
  size_t bytes = sizeof(Bindings);
  for (const auto& [var, value] : row) {
    bytes += kNodeOverhead + var.size() + ApproxValueBytes(value);
  }
  return bytes;
}

bool RowOrder::operator()(const Bindings& a, const Bindings& b) const {
  const auto ia = a.find(order_by);
  const auto ib = b.find(order_by);
  const bool ha = ia != a.end();
  const bool hb = ib != b.end();
  // Rows missing the sort variable go last in either direction.
  if (ha != hb) return ha;
  if (ha) {
    if (ia->second != ib->second) {
      return descending ? ib->second < ia->second : ia->second < ib->second;
    }
  }
  // Deterministic tie-break on the full row (always ascending), which
  // also makes incomparability coincide with row equality.
  return a < b;
}

ResultPipeline::ResultPipeline(std::unique_ptr<RowSource> source,
                               PipelineSpec spec)
    : source_(std::move(source)), spec_(std::move(spec)) {}

void ResultPipeline::HoldBytes(size_t bytes) {
  held_bytes_ += bytes;
  stats_.peak_held_bytes = std::max(stats_.peak_held_bytes, held_bytes_);
}

void ResultPipeline::ReleaseBytes(size_t bytes) {
  held_bytes_ -= std::min(held_bytes_, bytes);
}

bool ResultPipeline::PassesFilters(const Bindings& row) const {
  for (const RowFilter& filter : spec_.filters) {
    const auto it = row.find(filter.var);
    if (it == row.end()) return false;
    const Result<bool> verdict = Compare(it->second, filter.op, filter.value);
    // Incomparable kinds under an inequality: the predicate is not
    // satisfied, the row is filtered (not an error — heterogeneous
    // concepts legitimately mix value kinds per attribute).
    if (!verdict.ok() || !verdict.value()) return false;
  }
  return true;
}

bool ResultPipeline::PullTransformed(Bindings* row) {
  Bindings raw;
  while (source_->Next(&raw)) {
    ++stats_.rows_in;
    if (!PassesFilters(raw)) {
      ++stats_.rows_filtered;
      continue;
    }
    if (spec_.project.empty()) {
      *row = std::move(raw);
      return true;
    }
    Bindings projected;
    for (const std::string& var : spec_.project) {
      const auto it = raw.find(var);
      if (it != raw.end()) projected.emplace(it->first, it->second);
    }
    *row = std::move(projected);
    return true;
  }
  return false;
}

bool ResultPipeline::DedupAdmit(const Bindings& row) {
  const std::uint64_t digest = RowDigest(row);
  std::vector<size_t>& bucket = seen_[digest];
  for (size_t index : bucket) {
    if (kept_[index] == row) return false;
  }
  bucket.push_back(kept_.size());
  kept_.push_back(row);
  HoldBytes(ApproxBindingsBytes(row));
  return true;
}

bool ResultPipeline::Next(Bindings* row) {
  if (exhausted_) return false;
  if (spec_.limit > 0 && emitted_ >= spec_.limit) {
    exhausted_ = true;
    return false;
  }

  if (!spec_.order_by.empty()) {
    if (!sorted_ready_) {
      // Drain the upstream through the bounded heap: at most `limit`
      // rows (plus the one in flight) are ever held, however large the
      // answer set is. limit == 0 degrades to a full sort.
      const RowOrder order{spec_.order_by, spec_.descending};
      // With an unbounded sort the O(k) in-heap duplicate scan would be
      // quadratic; dedup up front through the digest store instead.
      const bool heap_dedup = spec_.distinct && spec_.limit > 0;
      BoundedTopK<Bindings, RowOrder> topk(spec_.limit, order, heap_dedup);
      Bindings incoming;
      Bindings displaced;
      while (PullTransformed(&incoming)) {
        if (spec_.distinct && !heap_dedup && !DedupAdmit(incoming)) {
          ++stats_.rows_deduped;
          continue;
        }
        const size_t incoming_bytes =
            heap_dedup ? ApproxBindingsBytes(incoming) : 0;
        switch (topk.Push(std::move(incoming), &displaced)) {
          case BoundedTopK<Bindings, RowOrder>::Offer::kKept:
            if (heap_dedup) HoldBytes(incoming_bytes);
            break;
          case BoundedTopK<Bindings, RowOrder>::Offer::kKeptEvicted:
            if (heap_dedup) {
              HoldBytes(incoming_bytes);
              ReleaseBytes(ApproxBindingsBytes(displaced));
            }
            break;
          case BoundedTopK<Bindings, RowOrder>::Offer::kDuplicate:
            ++stats_.rows_deduped;
            break;
          case BoundedTopK<Bindings, RowOrder>::Offer::kRejected:
            break;
        }
      }
      stats_.heap_evictions = topk.evictions();
      sorted_ = topk.TakeSorted();
      if (!heap_dedup) {
        // Account the final sorted buffer (the dedup path counted rows
        // as they were admitted into the store).
        for (const Bindings& held : sorted_) {
          if (!spec_.distinct) HoldBytes(ApproxBindingsBytes(held));
        }
      }
      sorted_ready_ = true;
    }
    if (sorted_index_ >= sorted_.size()) {
      exhausted_ = true;
      return false;
    }
    *row = sorted_[sorted_index_++];
    ++emitted_;
    ++stats_.rows_out;
    return true;
  }

  // Streaming path: one row at a time; only the dedup store (when
  // distinct) accumulates.
  Bindings candidate;
  while (PullTransformed(&candidate)) {
    if (spec_.distinct && !DedupAdmit(candidate)) {
      ++stats_.rows_deduped;
      continue;
    }
    if (!spec_.distinct) {
      HoldBytes(ApproxBindingsBytes(candidate));
      ReleaseBytes(ApproxBindingsBytes(candidate));
    }
    *row = std::move(candidate);
    ++emitted_;
    ++stats_.rows_out;
    return true;
  }
  exhausted_ = true;
  return false;
}

}  // namespace ooint
