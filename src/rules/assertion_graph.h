#ifndef OOINT_RULES_ASSERTION_GRAPH_H_
#define OOINT_RULES_ASSERTION_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "assertions/assertion.h"
#include "common/result.h"

namespace ooint {

/// The assertion graph G of Section 5 for a (decomposed) derivation
/// assertion S1(A_1, ..., A_n) → S2.B:
///
///  - one node per "path" referring to an element of some class
///    (Definition 4.1) mentioned by the assertion's correspondences;
///  - an edge between path_a and path_b iff path_a rel path_b with
///    rel ∈ {=, ∈, ⊆} is specified (we also accept ⊇ and ∩, which
///    likewise identify the attributes' values — cf. Example 9's
///    children ⊇ niece_nephew edge and Example 10's price ∩ car-name_1
///    edge);
///  - a hyperedge he(p) per predicate p appearing in the assertion (the
///    `with att τ const` qualifiers), containing the nodes p mentions.
///
/// Each connected subgraph is marked with a distinct variable x_j
/// (isolated nodes count as connected subgraphs); hyperedges are marked
/// with the predicates they carry. The RuleGenerator turns these marks
/// into reverse substitutions (methods (i) and (ii) of Section 5).
class AssertionGraph {
 public:
  struct Component {
    /// Node paths of this connected subgraph, in first-appearance order.
    std::vector<Path> nodes;
    /// The marking variable x_j.
    std::string variable;
  };

  struct Hyperedge {
    /// The predicate carried by this hyperedge.
    WithPredicate predicate;
    /// The nodes it spans (a single node for `att τ const` predicates).
    std::vector<Path> nodes;
  };

  /// Builds the graph for `assertion` (which must be a derivation).
  static Result<AssertionGraph> Build(const Assertion& assertion);

  const std::vector<Component>& components() const { return components_; }
  const std::vector<Hyperedge>& hyperedges() const { return hyperedges_; }

  /// The marking variable of the component containing `path`; empty when
  /// the path is not a node of the graph.
  std::string VariableOf(const Path& path) const;

  size_t NumNodes() const { return node_component_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// Multi-line dump: components with their variables, then hyperedges.
  std::string ToString() const;

 private:
  std::vector<Component> components_;
  std::vector<Hyperedge> hyperedges_;
  std::map<std::string, size_t> node_component_;  // path string -> component
  size_t num_edges_ = 0;
};

}  // namespace ooint

#endif  // OOINT_RULES_ASSERTION_GRAPH_H_
