#include "rules/planner.h"

#include "rules/term.h"

namespace ooint {

namespace {

/// Mirrors ResolveArg's bound-ness: constants resolve, variables
/// resolve iff bound, nested descriptors never resolve.
bool ArgResolved(const TermArg& arg, const std::set<std::string>& bound) {
  switch (arg.kind) {
    case TermArg::Kind::kConstant:
      return true;
    case TermArg::Kind::kVariable:
      return bound.count(arg.var) > 0;
    case TermArg::Kind::kNested:
      return false;
  }
  return false;
}

bool AllBound(const Literal& literal, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  CollectVariables(literal, &vars);
  for (const std::string& v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

/// Bound variable *occurrences*, duplicates included — exactly what the
/// historical per-row BoundVarCount counted.
int BoundCount(const Literal& literal, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  CollectVariables(literal, &vars);
  int n = 0;
  for (const std::string& v : vars) {
    if (bound.count(v) > 0) ++n;
  }
  return n;
}

}  // namespace

BodyPlan PlanBody(const PlannerInput& in, PlannerMode mode) {
  const std::vector<Literal>& body = in.rule->body;
  const size_t n = body.size();
  BodyPlan plan;
  plan.order.reserve(n);
  if (mode == PlannerMode::kFixedSip) {
    for (size_t i = 0; i < n; ++i) {
      plan.order.push_back(static_cast<std::uint32_t>(i));
    }
    return plan;
  }

  std::set<std::string> bound = in.initial_bound;
  std::vector<char> done(n, 0);
  auto estimate = [&in](size_t i, int bound_occurrences) -> double {
    if (static_cast<int>(i) == in.pivot_literal) return 1.0;
    double est = i < in.extent_cost.size() && in.extent_cost[i] >= 0
                     ? in.extent_cost[i]
                     : 1024.0;
    // Delta windows are typically a small slice of the extent.
    if (static_cast<int>(i) == in.delta_literal) est /= 4.0;
    // Every bound variable is a potential index probe; credit each a
    // fixed selectivity, capped — these are estimates, not counts.
    for (int b = 0; b < bound_occurrences && b < 2; ++b) est /= 8.0;
    return est < 1.0 ? 1.0 : est;
  };

  for (size_t step = 0; step < n; ++step) {
    size_t pick = n;
    // (1) Decidable filters and fully bound negations run first — they
    // enumerate no candidates at all (first match wins, as at runtime).
    for (size_t i = 0; i < n && pick == n; ++i) {
      if (done[i]) continue;
      const Literal& literal = body[i];
      if (literal.kind == Literal::Kind::kCompare) {
        const bool lhs = ArgResolved(literal.cmp_lhs, bound);
        const bool rhs = ArgResolved(literal.cmp_rhs, bound);
        if ((lhs && rhs) || (literal.cmp_op == CompareOp::kEq &&
                             !literal.negated && (lhs || rhs))) {
          pick = i;
        }
      } else if (literal.negated) {
        if (AllBound(literal, bound)) pick = i;
      }
    }
    // (2) Positive fact literals: the connectivity SIP (most bound
    // occurrences, delta literal breaking ties, position order last),
    // overridden when another literal is provably cheaper.
    if (pick == n) {
      int best_score = -1;
      size_t sip = n;
      size_t cheap = n;
      double cheap_est = 0;
      for (size_t i = 0; i < n; ++i) {
        if (done[i]) continue;
        const Literal& literal = body[i];
        if (literal.kind == Literal::Kind::kCompare || literal.negated) {
          continue;
        }
        const int bc = BoundCount(literal, bound);
        int score = 2 * bc;
        if (static_cast<int>(i) == in.delta_literal) ++score;
        if (score > best_score) {
          best_score = score;
          sip = i;
        }
        const double est = estimate(i, bc);
        if (cheap == n || est < cheap_est) {
          cheap = i;
          cheap_est = est;
        }
      }
      if (sip != n) {
        pick = sip;
        if (cheap != n && cheap != sip) {
          const double sip_est = estimate(sip, BoundCount(body[sip], bound));
          if (cheap_est * kCostMargin <= sip_est) {
            pick = cheap;
            plan.reordered = true;
          }
        }
      }
    }
    // (3) Whatever is left keeps the written order (mirrors the runtime
    // fallback; an undecidable comparison will fail there as it always
    // did).
    if (pick == n) {
      for (size_t i = 0; i < n; ++i) {
        if (!done[i]) {
          pick = i;
          break;
        }
      }
    }
    done[pick] = 1;
    plan.order.push_back(static_cast<std::uint32_t>(pick));

    // Binding propagation: a consumed positive literal binds all its
    // variables (a successful match always does); a one-side-bound
    // equality binds its variable side; filters and negations bind
    // nothing.
    const Literal& literal = body[pick];
    if (literal.kind == Literal::Kind::kCompare) {
      if (literal.cmp_op == CompareOp::kEq && !literal.negated) {
        const bool lhs = ArgResolved(literal.cmp_lhs, bound);
        const bool rhs = ArgResolved(literal.cmp_rhs, bound);
        if (lhs != rhs) {
          const TermArg& unbound = lhs ? literal.cmp_rhs : literal.cmp_lhs;
          if (unbound.is_variable()) bound.insert(unbound.var);
        }
      }
    } else if (!literal.negated) {
      std::vector<std::string> vars;
      CollectVariables(literal, &vars);
      bound.insert(vars.begin(), vars.end());
    }
  }
  return plan;
}

}  // namespace ooint
