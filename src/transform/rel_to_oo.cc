#include "transform/rel_to_oo.h"

#include "common/string_util.h"

namespace ooint {

Result<Schema> TransformToOO(const RelationalSchema& relational) {
  OOINT_RETURN_IF_ERROR(relational.Validate());

  // References are resolved by Schema::Finalize(), so a single pass in
  // declaration order suffices.
  Schema schema(relational.name());
  struct PendingIsA {
    std::string child;
    std::string parent;
  };
  std::vector<PendingIsA> pending_isa;

  for (const Relation& relation : relational.relations()) {
    ClassDef class_def(relation.name);
    const std::vector<const RelColumn*> pk = relation.PrimaryKey();
    const bool pk_is_single_fk =
        pk.size() == 1 && pk.front()->is_foreign_key();
    for (const RelColumn& column : relation.columns) {
      if (column.is_foreign_key()) {
        if (pk_is_single_fk && column.primary_key) {
          // R3: subtype table — is-a link; the key column stays as an
          // attribute (R4).
          pending_isa.push_back({relation.name, column.fk_relation});
          class_def.AddAttribute(column.name, column.type);
        } else {
          // R2: aggregation function to the referenced class.
          const Cardinality cc = column.primary_key
                                     ? Cardinality::OneToOne()
                                     : Cardinality::ManyToOne();
          class_def.AddAggregation(column.name, column.fk_relation, cc);
        }
      } else {
        // R1/R4: plain attribute.
        class_def.AddAttribute(column.name, column.type);
      }
    }
    OOINT_RETURN_IF_ERROR(schema.AddClass(std::move(class_def)).status());
  }
  for (const PendingIsA& link : pending_isa) {
    OOINT_RETURN_IF_ERROR(schema.AddIsA(link.child, link.parent));
  }
  OOINT_RETURN_IF_ERROR(schema.Finalize());
  return schema;
}

}  // namespace ooint
