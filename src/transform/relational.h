#ifndef OOINT_TRANSFORM_RELATIONAL_H_
#define OOINT_TRANSFORM_RELATIONAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/value.h"

namespace ooint {

/// A column of a relation, with optional primary-key membership and an
/// optional foreign-key reference to another relation's key.
struct RelColumn {
  std::string name;
  ValueKind type = ValueKind::kString;
  bool primary_key = false;
  /// Non-empty when this column references `fk_relation`.`fk_column`.
  std::string fk_relation;
  std::string fk_column;

  bool is_foreign_key() const { return !fk_relation.empty(); }
};

/// One relation (table) of a relational local schema.
struct Relation {
  std::string name;
  std::vector<RelColumn> columns;

  const RelColumn* FindColumn(const std::string& column_name) const;
  /// The primary-key columns, in declaration order.
  std::vector<const RelColumn*> PrimaryKey() const;
};

/// A relational local schema — the shape in which many component
/// databases arrive at an FSM-agent before the schema-transformation
/// phase turns them into object-oriented schemas (Section 3: "each local
/// schema is first transformed into an object-oriented one to remove
/// model conflicts").
class RelationalSchema {
 public:
  explicit RelationalSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Status AddRelation(Relation relation);
  const std::vector<Relation>& relations() const { return relations_; }
  const Relation* FindRelation(const std::string& relation_name) const;

  /// Structural checks: unique relation names, unique column names,
  /// foreign keys reference existing relation/column pairs.
  Status Validate() const;

 private:
  std::string name_;
  std::vector<Relation> relations_;
};

}  // namespace ooint

#endif  // OOINT_TRANSFORM_RELATIONAL_H_
