#ifndef OOINT_TRANSFORM_REL_TO_OO_H_
#define OOINT_TRANSFORM_REL_TO_OO_H_

#include "common/result.h"
#include "model/schema.h"
#include "transform/relational.h"

namespace ooint {

/// Rule-based transformation of a relational local schema into an
/// object-oriented one (the paper's reference [6], "A rule-based strategy
/// for transforming relational schemas into OO schemas"), as performed by
/// an FSM-agent during the schema-transformation phase:
///
///  R1. every relation becomes a class; non-key, non-FK columns become
///      scalar attributes;
///  R2. a foreign-key column becomes an aggregation function to the
///      referenced relation's class, with cardinality [m:1] ([1:1] when
///      the column is also the whole primary key);
///  R3. a relation whose entire primary key is a single foreign key is a
///      specialization: an is-a link to the referenced class is added
///      instead of an aggregation (the classical "subtype table"
///      pattern);
///  R4. key columns are kept as attributes (they carry the value-level
///      identity the federation's data mappings join on).
///
/// The resulting schema is finalized before being returned.
Result<Schema> TransformToOO(const RelationalSchema& relational);

}  // namespace ooint

#endif  // OOINT_TRANSFORM_REL_TO_OO_H_
