#include "transform/relational.h"

#include <set>

#include "common/string_util.h"

namespace ooint {

const RelColumn* Relation::FindColumn(const std::string& column_name) const {
  for (const RelColumn& c : columns) {
    if (c.name == column_name) return &c;
  }
  return nullptr;
}

std::vector<const RelColumn*> Relation::PrimaryKey() const {
  std::vector<const RelColumn*> out;
  for (const RelColumn& c : columns) {
    if (c.primary_key) out.push_back(&c);
  }
  return out;
}

Status RelationalSchema::AddRelation(Relation relation) {
  if (FindRelation(relation.name) != nullptr) {
    return Status::AlreadyExists(
        StrCat("relation '", relation.name, "' already in schema '", name_,
               "'"));
  }
  relations_.push_back(std::move(relation));
  return Status::OK();
}

const Relation* RelationalSchema::FindRelation(
    const std::string& relation_name) const {
  for (const Relation& r : relations_) {
    if (r.name == relation_name) return &r;
  }
  return nullptr;
}

Status RelationalSchema::Validate() const {
  for (const Relation& r : relations_) {
    std::set<std::string> names;
    for (const RelColumn& c : r.columns) {
      if (!names.insert(c.name).second) {
        return Status::InvalidArgument(
            StrCat("duplicate column '", c.name, "' in relation '", r.name,
                   "'"));
      }
      if (c.is_foreign_key()) {
        const Relation* target = FindRelation(c.fk_relation);
        if (target == nullptr) {
          return Status::NotFound(
              StrCat("column ", r.name, ".", c.name,
                     " references unknown relation '", c.fk_relation, "'"));
        }
        if (target->FindColumn(c.fk_column) == nullptr) {
          return Status::NotFound(
              StrCat("column ", r.name, ".", c.name,
                     " references unknown column '", c.fk_relation, ".",
                     c.fk_column, "'"));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace ooint
