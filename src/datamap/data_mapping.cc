#include "datamap/data_mapping.h"

#include <algorithm>

#include "common/string_util.h"

namespace ooint {

DataMapping DataMapping::FromTriples(std::vector<Triple> triples) {
  DataMapping m;
  m.kind_ = Kind::kTripleSet;
  m.triples_ = std::move(triples);
  return m;
}

DataMapping DataMapping::Linear(double slope, double intercept) {
  DataMapping m;
  m.kind_ = Kind::kLinear;
  m.slope_ = slope;
  m.intercept_ = intercept;
  return m;
}

Result<Value> DataMapping::MapToIntegrated(const Value& local) const {
  switch (kind_) {
    case Kind::kDefault:
      return local;
    case Kind::kTripleSet: {
      const Triple* best = nullptr;
      for (const Triple& t : triples_) {
        if (t.local == local && (best == nullptr || t.degree > best->degree)) {
          best = &t;
        }
      }
      if (best == nullptr) {
        return Status::NotFound(
            StrCat("no triple maps local value ", local.ToString()));
      }
      return best->integrated;
    }
    case Kind::kLinear: {
      Result<double> x = local.AsNumber();
      if (!x.ok()) return x.status();
      return Value::Real(slope_ * x.value() + intercept_);
    }
  }
  return Status::Internal("unreachable mapping kind");
}

Result<Value> DataMapping::MapToLocal(const Value& integrated) const {
  switch (kind_) {
    case Kind::kDefault:
      return integrated;
    case Kind::kTripleSet: {
      const Triple* best = nullptr;
      for (const Triple& t : triples_) {
        if (t.integrated == integrated &&
            (best == nullptr || t.degree > best->degree)) {
          best = &t;
        }
      }
      if (best == nullptr) {
        return Status::NotFound(
            StrCat("no triple maps integrated value ", integrated.ToString()));
      }
      return best->local;
    }
    case Kind::kLinear: {
      if (slope_ == 0.0) {
        return Status::FailedPrecondition(
            "linear mapping with zero slope is not invertible");
      }
      Result<double> y = integrated.AsNumber();
      if (!y.ok()) return y.status();
      return Value::Real((y.value() - intercept_) / slope_);
    }
  }
  return Status::Internal("unreachable mapping kind");
}

double DataMapping::Degree(const Value& integrated, const Value& local) const {
  switch (kind_) {
    case Kind::kDefault:
      return integrated == local ? 1.0 : 0.0;
    case Kind::kTripleSet: {
      double best = 0.0;
      for (const Triple& t : triples_) {
        if (t.integrated == integrated && t.local == local) {
          best = std::max(best, t.degree);
        }
      }
      return best;
    }
    case Kind::kLinear: {
      Result<Value> mapped = MapToIntegrated(local);
      if (!mapped.ok()) return 0.0;
      Result<double> a = mapped.value().AsNumber();
      Result<double> b = integrated.AsNumber();
      if (!a.ok() || !b.ok()) return 0.0;
      return a.value() == b.value() ? 1.0 : 0.0;
    }
  }
  return 0.0;
}

std::string DataMapping::ToString() const {
  switch (kind_) {
    case Kind::kDefault:
      return "default";
    case Kind::kTripleSet: {
      std::vector<std::string> parts;
      parts.reserve(triples_.size());
      for (const Triple& t : triples_) {
        parts.push_back(StrCat("(", t.integrated.ToString(), ", ",
                               t.local.ToString(), "; ", t.degree, ")"));
      }
      return StrCat("{", Join(parts, ", "), "}");
    }
    case Kind::kLinear:
      return StrCat("y = ", slope_, "*x + ", intercept_);
  }
  return "?";
}

void DataMappingRegistry::Register(const std::string& integrated_attr,
                                   const std::string& database,
                                   const std::string& local_attr,
                                   DataMapping mapping) {
  mappings_[StrCat(integrated_attr, "\n", database, "\n", local_attr)] =
      std::move(mapping);
}

const DataMapping* DataMappingRegistry::Find(
    const std::string& integrated_attr, const std::string& database,
    const std::string& local_attr) const {
  auto it =
      mappings_.find(StrCat(integrated_attr, "\n", database, "\n", local_attr));
  return it == mappings_.end() ? nullptr : &it->second;
}

void DataMappingRegistry::DeclareSameObject(const Oid& a, const Oid& b) {
  std::pair<Oid, Oid> key = (a < b) ? std::make_pair(a, b)
                                    : std::make_pair(b, a);
  if (std::find(identities_.begin(), identities_.end(), key) ==
      identities_.end()) {
    identities_.push_back(std::move(key));
  }
}

bool DataMappingRegistry::SameObject(const Oid& a, const Oid& b) const {
  if (a == b) return true;
  const std::pair<Oid, Oid> key =
      (a < b) ? std::make_pair(a, b) : std::make_pair(b, a);
  return std::find(identities_.begin(), identities_.end(), key) !=
         identities_.end();
}

}  // namespace ooint
