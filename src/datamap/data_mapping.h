#ifndef OOINT_DATAMAP_DATA_MAPPING_H_
#define OOINT_DATAMAP_DATA_MAPPING_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/value.h"

namespace ooint {

/// One value correspondence F^A_{DB_i,B} of Section 3, mapping values of a
/// local attribute B (of database DB_i) to values of an integrated
/// attribute A. The paper enumerates three forms:
///
///  1. the string "default": every actual value of B is already a value
///     of A (identity mapping);
///  2. a set of triples (a, b; χ): value b of B corresponds to value a of
///     A with fuzzy degree χ ∈ [0, 1];
///  3. a simple function y = f(x), e.g. y = 2.54·x (unit conversion),
///     restricted here to affine functions y = slope·x + intercept over
///     numeric domains.
///
/// The three "accessing methods" the paper attaches to the pre-defined
/// root class are MapToIntegrated / MapToLocal / Degree below.
class DataMapping {
 public:
  enum class Kind { kDefault, kTripleSet, kLinear };

  /// A fuzzy correspondence triple (a, b; χ).
  struct Triple {
    Value integrated;  // a — value of the integrated attribute A
    Value local;       // b — value of the local attribute B
    double degree;     // χ ∈ [0, 1]
  };

  /// The identity ("default") mapping.
  DataMapping() : kind_(Kind::kDefault) {}

  static DataMapping Default() { return DataMapping(); }
  static DataMapping FromTriples(std::vector<Triple> triples);
  /// y = slope·x + intercept.
  static DataMapping Linear(double slope, double intercept);

  Kind kind() const { return kind_; }

  /// Maps a local value b to the corresponding integrated value a.
  /// Triple-set mappings return the first correspondence with the highest
  /// degree; NotFound when no triple matches. Linear mappings require a
  /// numeric input.
  Result<Value> MapToIntegrated(const Value& local) const;

  /// The reverse direction (a -> b). Linear mappings require a non-zero
  /// slope.
  Result<Value> MapToLocal(const Value& integrated) const;

  /// The fuzzy degree χ of a correspondence; 1.0 for default/linear
  /// mappings, 0.0 when the pair is not related.
  double Degree(const Value& integrated, const Value& local) const;

  std::string ToString() const;

 private:
  Kind kind_;
  std::vector<Triple> triples_;
  double slope_ = 1.0;
  double intercept_ = 0.0;
};

/// Registry of data mappings and OID-level object identity, shared by the
/// integration principles that need cross-database value joins
/// (concatenation(x, y) of Principle 1 and the attribute integration
/// functions AIF of Principle 3 both hinge on "there exist oi1 ∈ A and
/// oi2 ∈ B such that oi1 = oi2 (in terms of data mapping)").
class DataMappingRegistry {
 public:
  /// Registers the mapping for integrated attribute `integrated_attr`
  /// (a dotted path string, e.g. "IS(person,human).ssn#") against local
  /// attribute `local_attr` of database `database`.
  void Register(const std::string& integrated_attr,
                const std::string& database, const std::string& local_attr,
                DataMapping mapping);

  /// Mapping lookup; nullptr when no mapping was registered (callers then
  /// assume "default" per the paper's convention).
  const DataMapping* Find(const std::string& integrated_attr,
                          const std::string& database,
                          const std::string& local_attr) const;

  /// Declares that two local OIDs denote the same real-world entity.
  void DeclareSameObject(const Oid& a, const Oid& b);

  /// True iff the two OIDs were declared to denote the same entity
  /// (symmetric; reflexive for equal OIDs).
  bool SameObject(const Oid& a, const Oid& b) const;

  size_t NumMappings() const { return mappings_.size(); }
  size_t NumIdentities() const { return identities_.size(); }

 private:
  // Key: integrated_attr + '\n' + database + '\n' + local_attr.
  std::map<std::string, DataMapping> mappings_;
  // Canonically ordered OID pairs.
  std::vector<std::pair<Oid, Oid>> identities_;
};

}  // namespace ooint

#endif  // OOINT_DATAMAP_DATA_MAPPING_H_
