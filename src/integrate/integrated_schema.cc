#include "integrate/integrated_schema.h"

#include <algorithm>
#include <deque>

#include "common/string_util.h"

namespace ooint {

const char* ISClassKindName(ISClassKind kind) {
  switch (kind) {
    case ISClassKind::kMerged:
      return "merged";
    case ISClassKind::kCopied:
      return "copied";
    case ISClassKind::kVirtualIntersection:
      return "virtual-intersection";
    case ISClassKind::kVirtualDifference:
      return "virtual-difference";
  }
  return "?";
}

const char* ValueSetOpName(ValueSetOp op) {
  switch (op) {
    case ValueSetOp::kUnion:
      return "union";
    case ValueSetOp::kDifference:
      return "difference";
    case ValueSetOp::kIntersectAif:
      return "intersect-aif";
    case ValueSetOp::kConcatenation:
      return "concatenation";
    case ValueSetOp::kMoreSpecific:
      return "more-specific";
    case ValueSetOp::kCopy:
      return "copy";
  }
  return "?";
}

std::string IntegratedAttribute::ToString() const {
  std::vector<std::string> srcs;
  srcs.reserve(sources.size());
  for (const Path& p : sources) srcs.push_back(p.ToString());
  std::string out = StrCat(name, " [", ValueSetOpName(op), " of ",
                           Join(srcs, ", "));
  if (!aif_name.empty()) out += StrCat(" via ", aif_name);
  out += "]";
  return out;
}

std::string IntegratedAggregation::ToString() const {
  return StrCat(name, ": ",
                integrated_range.empty() ? local_range.ToString()
                                         : integrated_range,
                " with ", cardinality.ToString());
}

const IntegratedAttribute* IntegratedClass::FindAttribute(
    const std::string& attr_name) const {
  for (const IntegratedAttribute& a : attributes) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

std::string IntegratedClass::ToString() const {
  std::vector<std::string> srcs;
  srcs.reserve(sources.size());
  for (const ClassRef& c : sources) srcs.push_back(c.ToString());
  std::string out = StrCat(name, " (", ISClassKindName(kind), " of {",
                           Join(srcs, ", "), "}) {\n");
  for (const IntegratedAttribute& a : attributes) {
    out += StrCat("    ", a.ToString(), "\n");
  }
  for (const IntegratedAggregation& g : aggregations) {
    out += StrCat("    ", g.ToString(), "\n");
  }
  out += "  }";
  return out;
}

Result<size_t> IntegratedSchema::AddClass(IntegratedClass integrated_class) {
  auto [it, inserted] =
      by_name_.emplace(integrated_class.name, classes_.size());
  if (!inserted) {
    return Status::AlreadyExists(StrCat("integrated class '",
                                        integrated_class.name,
                                        "' already exists"));
  }
  classes_.push_back(std::move(integrated_class));
  return it->second;
}

void IntegratedSchema::MapSource(const ClassRef& source,
                                 const std::string& is_name) {
  source_map_[source.ToString()] = is_name;
}

std::string IntegratedSchema::NameOf(const ClassRef& source) const {
  auto it = source_map_.find(source.ToString());
  return it == source_map_.end() ? "" : it->second;
}

Status IntegratedSchema::AddIsA(const std::string& child,
                                const std::string& parent) {
  if (child == parent) {
    return Status::InvalidArgument(StrCat("is-a self loop on '", child, "'"));
  }
  const std::string key = StrCat(child, "->", parent);
  if (!isa_keys_.insert(key).second) return Status::OK();  // idempotent
  isa_links_.emplace_back(child, parent);
  return Status::OK();
}

bool IntegratedSchema::RemoveIsA(const std::string& child,
                                 const std::string& parent) {
  const std::string key = StrCat(child, "->", parent);
  if (isa_keys_.erase(key) == 0) return false;
  isa_links_.erase(
      std::remove(isa_links_.begin(), isa_links_.end(),
                  std::make_pair(child, parent)),
      isa_links_.end());
  return true;
}

bool IntegratedSchema::HasIsA(const std::string& child,
                              const std::string& parent) const {
  return isa_keys_.count(StrCat(child, "->", parent)) != 0;
}

const IntegratedClass* IntegratedSchema::FindClass(
    const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &classes_[it->second];
}

IntegratedClass* IntegratedSchema::MutableClass(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &classes_[it->second];
}

std::vector<std::string> IntegratedSchema::ParentsOf(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [child, parent] : isa_links_) {
    if (child == name) out.push_back(parent);
  }
  return out;
}

std::vector<std::string> IntegratedSchema::ChildrenOf(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [child, parent] : isa_links_) {
    if (parent == name) out.push_back(child);
  }
  return out;
}

std::set<std::pair<std::string, std::string>> IntegratedSchema::IsAClosure()
    const {
  std::set<std::pair<std::string, std::string>> closure;
  for (const IntegratedClass& c : classes_) {
    // BFS upward from c.
    std::deque<std::string> frontier = {c.name};
    std::set<std::string> seen = {c.name};
    while (!frontier.empty()) {
      const std::string current = frontier.front();
      frontier.pop_front();
      for (const std::string& parent : ParentsOf(current)) {
        if (seen.insert(parent).second) {
          closure.emplace(c.name, parent);
          frontier.push_back(parent);
        }
      }
    }
  }
  return closure;
}

size_t IntegratedSchema::TransitiveReduction() {
  size_t removed = 0;
  // An edge (c, p) is redundant iff p is reachable from c via a path of
  // length >= 2 that does not use the edge itself.
  const std::vector<std::pair<std::string, std::string>> edges = isa_links_;
  for (const auto& [child, parent] : edges) {
    // BFS from child's other parents upward.
    std::deque<std::string> frontier;
    std::set<std::string> seen;
    for (const std::string& p : ParentsOf(child)) {
      if (p != parent) {
        frontier.push_back(p);
        seen.insert(p);
      }
    }
    bool reachable = false;
    while (!frontier.empty() && !reachable) {
      const std::string current = frontier.front();
      frontier.pop_front();
      if (current == parent) {
        reachable = true;
        break;
      }
      for (const std::string& p : ParentsOf(current)) {
        if (seen.insert(p).second) frontier.push_back(p);
      }
    }
    if (reachable && RemoveIsA(child, parent)) ++removed;
  }
  return removed;
}

void IntegratedSchema::ResolveAggregationRanges() {
  for (IntegratedClass& c : classes_) {
    for (IntegratedAggregation& g : c.aggregations) {
      if (g.integrated_range.empty()) {
        g.integrated_range = NameOf(g.local_range);
      }
    }
  }
}

Result<Schema> IntegratedSchema::ToSchema() const {
  Schema schema(name_);
  for (const IntegratedClass& c : classes_) {
    ClassDef class_def(c.name);
    for (const IntegratedAttribute& a : c.attributes) {
      class_def.AddAttribute(
          {a.name, AttributeType::Scalar(a.type), a.multi_valued});
    }
    for (const IntegratedAggregation& g : c.aggregations) {
      const std::string range =
          g.integrated_range.empty() ? NameOf(g.local_range)
                                     : g.integrated_range;
      if (range.empty()) continue;  // unresolved range: drop the link
      class_def.AddAggregation(g.name, range, g.cardinality);
    }
    OOINT_RETURN_IF_ERROR(schema.AddClass(std::move(class_def)).status());
  }
  for (const auto& [child, parent] : isa_links_) {
    OOINT_RETURN_IF_ERROR(schema.AddIsA(child, parent));
  }
  OOINT_RETURN_IF_ERROR(schema.Finalize());
  return schema;
}

std::string IntegratedSchema::ToString() const {
  std::string out = StrCat("integrated schema ", name_, " {\n");
  for (const IntegratedClass& c : classes_) {
    out += StrCat("  ", c.ToString(), "\n");
  }
  for (const auto& [child, parent] : isa_links_) {
    out += StrCat("  is_a(", child, ", ", parent, ")\n");
  }
  for (const Rule& r : rules_) {
    out += StrCat("  rule: ", r.ToString(), "\n");
  }
  out += "}\n";
  return out;
}

}  // namespace ooint
