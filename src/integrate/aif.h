#ifndef OOINT_INTEGRATE_AIF_H_
#define OOINT_INTEGRATE_AIF_H_

#include <functional>
#include <map>
#include <string>

#include "model/value.h"

namespace ooint {

/// An attribute integration function AIF_{a_b}(x, y) (Principle 3):
/// resolves the value conflict of two intersecting attributes for objects
/// that denote the same real-world entity. The paper's example averages
/// income and study_support; Null signals "no correspondence".
using Aif = std::function<Value(const Value& x, const Value& y)>;

/// Registry of named attribute integration functions. Users (or DBAs)
/// register AIFs for the intersecting attribute pairs of their assertion
/// sets; the federation layer applies them when materializing integrated
/// attribute values. Unregistered lookups fall back to the
/// first-non-null default.
class AifRegistry {
 public:
  AifRegistry() = default;

  void Register(const std::string& name, Aif fn) {
    fns_[name] = std::move(fn);
  }

  bool Has(const std::string& name) const { return fns_.count(name) != 0; }

  /// Applies the named AIF; unknown names use the default policy
  /// (x when non-null, else y).
  Value Apply(const std::string& name, const Value& x, const Value& y) const;

  /// The paper's canonical numeric example: (x + y) / 2 on numbers.
  static Value Average(const Value& x, const Value& y);

 private:
  std::map<std::string, Aif> fns_;
};

}  // namespace ooint

#endif  // OOINT_INTEGRATE_AIF_H_
