#ifndef OOINT_INTEGRATE_NAIVE_INTEGRATOR_H_
#define OOINT_INTEGRATE_NAIVE_INTEGRATOR_H_

#include "assertions/assertion_set.h"
#include "common/result.h"
#include "integrate/context.h"
#include "integrate/principles.h"
#include "model/schema.h"

namespace ooint {

/// The result of an integration run: the integrated schema and the
/// instrumentation counters.
struct IntegrationOutcome {
  IntegratedSchema schema{"IS"};
  IntegrationStats stats;
};

/// Algorithm naive_schema_integration (Section 6.1): breadth-first
/// traversal over pairs of nodes from the two schema graphs, checking
/// every pair of the form (N_1i, N_2j), (N_1, N_2j), (N_1i, N_2) — the
/// [33]-style baseline whose pair-check count grows as O(n²). It applies
/// the same integration principles as the optimized algorithm, so the
/// two produce semantically equal integrated schemas; only the work done
/// differs (experiment E1).
class NaiveIntegrator {
 public:
  /// Integrates two finalized local schemas under `assertions`
  /// (pre-validated with AssertionSet::Validate).
  static Result<IntegrationOutcome> Integrate(const Schema& s1,
                                              const Schema& s2,
                                              const AssertionSet& assertions,
                                              AifRegistry* aifs = nullptr);
};

}  // namespace ooint

#endif  // OOINT_INTEGRATE_NAIVE_INTEGRATOR_H_
