#include "integrate/integrator.h"

#include <algorithm>

#include "common/string_util.h"

namespace ooint {

namespace {
constexpr ClassId kStartNode = -1;
}  // namespace

Integrator::Integrator(const Schema& s1, const Schema& s2,
                       const AssertionSet& assertions)
    : s1_(s1),
      s2_(s2),
      assertions_(assertions),
      ctx_(&s1, &s2, &assertions),
      labels_s1_(s1.NumClasses()),
      inherited_s1_(s1.NumClasses()),
      labels_s2_(s2.NumClasses()),
      inherited_s2_(s2.NumClasses()) {}

Result<IntegrationOutcome> Integrator::Integrate(
    const Schema& s1, const Schema& s2, const AssertionSet& assertions,
    AifRegistry* aifs, IntegrationTrace* trace) {
  if (!s1.finalized() || !s2.finalized()) {
    return Status::FailedPrecondition(
        "both schemas must be finalized before integration");
  }
  Integrator integrator(s1, s2, assertions);
  integrator.ctx_.aifs = aifs;
  integrator.trace_ = trace;
  OOINT_RETURN_IF_ERROR(integrator.Run());
  OOINT_RETURN_IF_ERROR(Materialize(&integrator.ctx_, integrator.ops_));
  IntegrationOutcome outcome;
  outcome.schema = std::move(integrator.ctx_.result);
  outcome.stats = integrator.ctx_.stats;
  return outcome;
}

std::string Integrator::PairName(ClassId n1, ClassId n2) const {
  auto name = [&](int side, ClassId id) -> std::string {
    if (id == kStartNode) return "<start>";
    return SchemaOf(side).class_def(id).name();
  };
  return StrCat("(", name(1, n1), ", ", name(2, n2), ")");
}

void Integrator::Trace(TraceEvent::Kind kind, std::string subject,
                       std::string detail) const {
  if (trace_ != nullptr) {
    trace_->Add(kind, std::move(subject), std::move(detail));
  }
}

ClassRef Integrator::RefOf(int side, ClassId id) const {
  const Schema& schema = SchemaOf(side);
  return {schema.name(), schema.class_def(id).name()};
}

AssertionSet::Lookup Integrator::Find(int side1, ClassId n1, int side2,
                                      ClassId n2) const {
  return assertions_.Find(RefOf(side1, n1), RefOf(side2, n2));
}

std::vector<ClassId> Integrator::ChildrenOrRoots(int side,
                                                 ClassId node) const {
  if (node == kStartNode) return SchemaOf(side).Roots();
  return SchemaOf(side).ChildrenOf(node);
}

void Integrator::InheritLabel(int side, ClassId node, int label) {
  auto& inherited = (side == 1) ? inherited_s1_ : inherited_s2_;
  inherited[node].insert(label);
  for (ClassId descendant : SchemaOf(side).Descendants(node)) {
    inherited[descendant].insert(label);
  }
}

int Integrator::PathLabelling(int side1, ClassId n1, int side2, ClassId n2) {
  // Algorithm path_labelling: depth-first traversal of the subgraph of
  // SchemaOf(side2) rooted at n2, w.r.t. class n1 of the other schema.
  const int label = ++label_counter_;
  auto& labels = (side2 == 1) ? labels_s1_ : labels_s2_;
  const Schema& target = SchemaOf(side2);

  // Steer the search by the characteristics of the assertion set: only
  // paths leading to a class that actually has an assertion with N1 can
  // satisfy property (ii), so subtrees without any assertion partner of
  // N1 are skipped wholesale (their relationship to N1 is decided by the
  // deepest labelled ancestor, exactly as for explicit end nodes).
  std::vector<bool> relevant(target.NumClasses(), false);
  for (const ClassRef& partner : assertions_.PartnersOf(RefOf(side1, n1))) {
    if (partner.schema != target.name()) continue;
    const ClassId id = target.FindClass(partner.class_name);
    if (id == kInvalidClassId) continue;
    relevant[id] = true;
    for (ClassId ancestor : target.Ancestors(id)) {
      relevant[ancestor] = true;
    }
  }

  struct StackEntry {
    ClassId node;
    ClassId dfs_parent;  // kStartNode for the root n2
  };
  std::vector<StackEntry> stack = {{n2, kStartNode}};
  std::map<ClassId, ClassId> dfs_parent;
  std::set<ClassId> starred;
  dfs_parent[n2] = kStartNode;

  // Backtracks from `from` through starred nodes, undoing their labels,
  // and links IS(n1) below the first non-starred ancestor U_k.
  auto backtrack_and_link = [&](ClassId from, bool from_starred) {
    // The link target is the first non-starred ancestor U_k strictly
    // above `from` (Fig. 8(b)); `from` itself either carries a
    // non-inclusion assertion (lines 13-18) or is a starred end node
    // (lines 19-25) — never the target.
    if (from_starred) labels[from].erase(label);
    ClassId current =
        dfs_parent.count(from) != 0 ? dfs_parent[from] : kStartNode;
    while (current != kStartNode && starred.count(current) != 0) {
      labels[current].erase(label);  // undo the invalid labels
      current = dfs_parent[current];
    }
    if (current != kStartNode) {
      // N1 ⊆ U_k must be specified (or U_k ≡ N1): generate one is-a link
      // (Fig. 8(b)).
      Trace(TraceEvent::Kind::kDfsLink,
            StrCat("is_a(", SchemaOf(side1).class_def(n1).name(), ", ",
                   SchemaOf(side2).class_def(current).name(), ")"),
            "");
      ops_.RecordIsA(RefOf(side1, n1), RefOf(side2, current));
    }
  };

  while (!stack.empty()) {
    const StackEntry entry = stack.back();
    stack.pop_back();
    const ClassId v = entry.node;
    dfs_parent[v] = entry.dfs_parent;
    ++ctx_.stats.dfs_steps;
    ++ctx_.stats.pairs_checked;
    Trace(TraceEvent::Kind::kDfsVisit, target.class_def(v).name(),
          StrCat("w.r.t. ", SchemaOf(side1).class_def(n1).name()));

    const AssertionSet::Lookup lookup = Find(side1, n1, side2, v);
    if (lookup.found() && lookup.rel == SetRel::kSubset) {
      // case N1 ⊆ V: label V and go deeper (into subtrees that can
      // still contain assertion partners of N1).
      labels[v].insert(label);
      Trace(TraceEvent::Kind::kDfsLabel, target.class_def(v).name(),
            StrCat("l", label));
      std::vector<ClassId> children;
      for (ClassId child : target.ChildrenOf(v)) {
        if (relevant[child]) children.push_back(child);
      }
      if (children.empty()) {
        // A labelled chain end: V is the deepest class including N1 on
        // this path.
        Trace(TraceEvent::Kind::kDfsLink,
              StrCat("is_a(", SchemaOf(side1).class_def(n1).name(), ", ",
                     target.class_def(v).name(), ")"),
              "");
        ops_.RecordIsA(RefOf(side1, n1), RefOf(side2, v));
        continue;
      }
      for (ClassId child : children) stack.push_back({child, v});
      continue;
    }
    if (lookup.found() && lookup.rel == SetRel::kEquivalent) {
      // case N1 ≡ V: merge; the remaining part of this path is no
      // longer searched.
      labels[v].insert(label);
      Trace(TraceEvent::Kind::kDfsLabel, target.class_def(v).name(),
            StrCat("l", label, " merge"));
      ops_.Record(assertions_, lookup, RefOf(side1, n1), RefOf(side2, v));
      continue;
    }
    if (lookup.found()) {
      // case θ ∈ {→, ∅, ⊇, ∩}: record the assertion's own integration
      // operation, then backtrack to the first non-starred ancestor and
      // link there.
      ops_.Record(assertions_, lookup, RefOf(side1, n1), RefOf(side2, v));
      backtrack_and_link(v, /*from_starred=*/false);
      continue;
    }
    // default: no assertion between N1 and V.
    starred.insert(v);
    labels[v].insert(label);
    Trace(TraceEvent::Kind::kDfsStar, target.class_def(v).name(), "");
    std::vector<ClassId> children;
    for (ClassId child : target.ChildrenOf(v)) {
      if (relevant[child]) children.push_back(child);
    }
    if (!children.empty()) {
      for (ClassId child : children) stack.push_back({child, v});
    } else {
      backtrack_and_link(v, /*from_starred=*/true);
    }
  }
  return label;
}

Status Integrator::Run() {
  auto push = [&](ClassId a, ClassId b) {
    if (enqueued_.emplace(a, b).second) {
      queue_.emplace_back(a, b);
      ++ctx_.stats.pairs_enqueued;
    }
  };
  push(kStartNode, kStartNode);

  while (!queue_.empty()) {
    const auto [n1, n2] = queue_.front();
    queue_.pop_front();
    if (suppressed_.count({n1, n2}) != 0) continue;
    if (n1 != kStartNode && n2 != kStartNode) {
      Trace(TraceEvent::Kind::kPopPair, PairName(n1, n2));
    }

    const std::vector<ClassId> kids1 = ChildrenOrRoots(1, n1);
    const std::vector<ClassId> kids2 = ChildrenOrRoots(2, n2);
    // Line 6: child-with-child pairs are always scheduled.
    for (ClassId c1 : kids1) {
      for (ClassId c2 : kids2) push(c1, c2);
    }
    if (n1 == kStartNode || n2 == kStartNode) {
      // The virtual start node (Fig. 14) only seeds the root-with-root
      // cross products; mixed pairs involving it are meaningless (cross-
      // level pairs are reached through the default case of real pairs).
      continue;
    }

    // Line 7: the label guard.
    const bool clash_a =
        !inherited_s1_[n1].empty() && !labels_s2_[n2].empty() &&
        std::any_of(inherited_s1_[n1].begin(), inherited_s1_[n1].end(),
                    [&](int l) { return labels_s2_[n2].count(l) != 0; });
    const bool clash_b =
        !labels_s1_[n1].empty() && !inherited_s2_[n2].empty() &&
        std::any_of(labels_s1_[n1].begin(), labels_s1_[n1].end(),
                    [&](int l) { return inherited_s2_[n2].count(l) != 0; });
    if (clash_a || clash_b) {
      // Lines 34-35: the pair itself is skipped; one side's children
      // continue.
      ++ctx_.stats.pairs_skipped_by_labels;
      Trace(TraceEvent::Kind::kSkipByLabels, PairName(n1, n2));
      if (clash_a) {
        for (ClassId c2 : kids2) push(n1, c2);
      } else {
        for (ClassId c1 : kids1) push(c1, n2);
      }
      continue;
    }

    ++ctx_.stats.pairs_checked;
    const ClassRef ref1 = RefOf(1, n1);
    const ClassRef ref2 = RefOf(2, n2);
    const AssertionSet::Lookup lookup = assertions_.Find(ref1, ref2);
    Trace(TraceEvent::Kind::kCase, PairName(n1, n2),
          lookup.found() ? SetRelName(lookup.rel) : "none");
    if (!lookup.found()) {
      // Default: nothing can be inferred; both mixed-pair families are
      // checked (line 33).
      for (ClassId c2 : kids2) push(n1, c2);
      for (ClassId c1 : kids1) push(c1, n2);
      continue;
    }
    switch (lookup.rel) {
      case SetRel::kEquivalent: {
        // Line 9-10: merge and remove sibling pairs — the relationship
        // between N1 (N2) and N2's (N1's) brothers equals the local one.
        ops_.Record(assertions_, lookup, ref1, ref2);
        for (ClassId parent2 : s2_.ParentsOf(n2)) {
          for (ClassId sibling2 : s2_.ChildrenOf(parent2)) {
            if (sibling2 == n2) continue;
            if (enqueued_.count({n1, sibling2}) != 0 &&
                suppressed_.emplace(n1, sibling2).second) {
              ++ctx_.stats.sibling_pairs_removed;
              Trace(TraceEvent::Kind::kSuppressSibling,
                    PairName(n1, sibling2));
            }
          }
        }
        for (ClassId parent1 : s1_.ParentsOf(n1)) {
          for (ClassId sibling1 : s1_.ChildrenOf(parent1)) {
            if (sibling1 == n1) continue;
            if (enqueued_.count({sibling1, n2}) != 0 &&
                suppressed_.emplace(sibling1, n2).second) {
              ++ctx_.stats.sibling_pairs_removed;
              Trace(TraceEvent::Kind::kSuppressSibling,
                    PairName(sibling1, n2));
            }
          }
        }
        break;
      }
      case SetRel::kSubset: {
        // Lines 11-17: depth-first labelling of S2 above N2; N1 and its
        // descendants inherit the label; (N1, N2j) pairs continue.
        const int label = PathLabelling(1, n1, 2, n2);
        Trace(TraceEvent::Kind::kInherit, s1_.class_def(n1).name(),
              StrCat("l", label));
        InheritLabel(1, n1, label);
        for (ClassId c2 : kids2) push(n1, c2);
        break;
      }
      case SetRel::kSuperset: {
        // Lines 18-24: symmetric.
        const int label = PathLabelling(2, n2, 1, n1);
        Trace(TraceEvent::Kind::kInherit, s2_.class_def(n2).name(),
              StrCat("l", label));
        InheritLabel(2, n2, label);
        for (ClassId c1 : kids1) push(c1, n2);
        break;
      }
      case SetRel::kDisjoint:
      case SetRel::kDerivation:
        // Lines 25-28 + observation 3: no descendant pairs need checks.
        ops_.Record(assertions_, lookup, ref1, ref2);
        break;
      case SetRel::kOverlap:
        // Lines 29-31: nothing can be inferred for the parts; both
        // mixed-pair families continue.
        ops_.Record(assertions_, lookup, ref1, ref2);
        for (ClassId c2 : kids2) push(n1, c2);
        for (ClassId c1 : kids1) push(c1, n2);
        break;
    }
  }
  return Status::OK();
}

}  // namespace ooint
