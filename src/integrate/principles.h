#ifndef OOINT_INTEGRATE_PRINCIPLES_H_
#define OOINT_INTEGRATE_PRINCIPLES_H_

#include <set>
#include <string>
#include <vector>

#include "assertions/assertion_set.h"
#include "integrate/context.h"

namespace ooint {

/// The integration operations an integrator's traversal decides on.
///
/// Both integration algorithms (naive_schema_integration and the
/// optimized schema_integration of Section 6) are traversals that decide
/// *which* correspondence assertions fire; the semantic work of the
/// integration principles (Section 5) is identical. Traversals record
/// their decisions here and Materialize() then performs them in a stable
/// order: merges first (so every class's integrated name is known), then
/// default copies, then virtual classes and rules, then links. This also
/// guarantees the two algorithms produce semantically equal integrated
/// schemas, which the test suite verifies.
class PendingOperations {
 public:
  struct PendingIsA {
    ClassRef sub;
    ClassRef super;
  };

  /// Records the operation implied by an assertion-set lookup for the
  /// ordered pair (n1, n2). Duplicate recordings are ignored. For
  /// derivations, every derivation assertion involving the pair is
  /// recorded (a pair may carry several, e.g. the per-column assertions
  /// of Fig. 10).
  void Record(const AssertionSet& set, const AssertionSet::Lookup& lookup,
              const ClassRef& n1, const ClassRef& n2);

  /// Records a pending is-a link IS(sub) -> IS(super) (Principle 2).
  void RecordIsA(const ClassRef& sub, const ClassRef& super);

  const std::vector<const Assertion*>& equivalences() const {
    return equivalences_;
  }
  const std::vector<PendingIsA>& inclusions() const { return inclusions_; }
  const std::vector<const Assertion*>& intersections() const {
    return intersections_;
  }
  const std::vector<const Assertion*>& disjoints() const {
    return disjoints_;
  }
  const std::vector<const Assertion*>& derivations() const {
    return derivations_;
  }

 private:
  bool Seen(const Assertion* assertion);

  std::vector<const Assertion*> equivalences_;
  std::vector<PendingIsA> inclusions_;
  std::vector<const Assertion*> intersections_;
  std::vector<const Assertion*> disjoints_;
  std::vector<const Assertion*> derivations_;
  std::set<const void*> seen_assertions_;
  std::set<std::string> seen_isa_;
};

/// Ensures `ref` has an integrated version (default strategy 1: a copy
/// of the local class); returns its integrated name.
Result<std::string> EnsureCopy(IntegrationContext* ctx, const ClassRef& ref);

/// Performs the recorded operations against ctx->result, implementing
/// Principles 1-6 (see the implementation for the per-principle
/// details). On return the integrated schema is complete: merged and
/// copied classes, virtual classes with their defining rules, derivation
/// rules, carried-over and integrated links with redundant is-a links
/// removed and aggregation ranges resolved.
Status Materialize(IntegrationContext* ctx, const PendingOperations& ops);

}  // namespace ooint

#endif  // OOINT_INTEGRATE_PRINCIPLES_H_
