#ifndef OOINT_INTEGRATE_CONSISTENCY_H_
#define OOINT_INTEGRATE_CONSISTENCY_H_

#include <string>
#include <vector>

#include "assertions/assertion_set.h"
#include "common/result.h"
#include "model/schema.h"

namespace ooint {

/// One consistency finding about an assertion set.
struct ConsistencyFinding {
  enum class Severity { kError, kWarning };
  enum class Kind {
    /// The declared relationships force a cycle in the integrated is-a
    /// hierarchy (e.g. A ⊆ B together with B ≡ A-descendant).
    kHierarchyCycle,
    /// An assertion relates descendants of a pair declared disjoint or
    /// derivation-related — the "something is strange" case of
    /// Section 6.1, observation 3, which the optimized algorithm would
    /// silently skip. The paper proposes asking the user.
    kShadowedByObservation3,
    /// A disjoint assertion whose classes have no equivalent ancestors;
    /// Principle 4 calls such assertions meaningful "only in the case
    /// where there are two object classes A' and B' such that
    /// S1.A' ≡ S2.B'".
    kDisjointWithoutEquivalentParents,
    /// A derivation assertion with no attribute or value
    /// correspondences: no rule variables can be shared, so the
    /// generated rule would be vacuous.
    kBareDerivation,
  };

  Severity severity;
  Kind kind;
  /// The offending assertion, rendered.
  std::string assertion;
  /// Human-readable explanation.
  std::string detail;

  std::string ToString() const;
};

/// Static semantic analysis of an assertion set against its two schemas
/// (beyond AssertionSet::Validate's structural checks). Errors make
/// integration unsound; warnings flag the situations the paper says
/// deserve user attention. The integrators themselves do not run this —
/// callers decide how strict to be.
std::vector<ConsistencyFinding> CheckConsistency(
    const Schema& s1, const Schema& s2, const AssertionSet& assertions);

/// True iff any finding is an error.
bool HasErrors(const std::vector<ConsistencyFinding>& findings);

}  // namespace ooint

#endif  // OOINT_INTEGRATE_CONSISTENCY_H_
