#ifndef OOINT_INTEGRATE_INTEGRATED_SCHEMA_H_
#define OOINT_INTEGRATE_INTEGRATED_SCHEMA_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "assertions/assertion.h"
#include "common/result.h"
#include "model/cardinality.h"
#include "model/schema.h"
#include "rules/rule.h"

namespace ooint {

/// How an integrated class came to be.
enum class ISClassKind {
  /// The merged IS_AB of two equivalent classes (Principle 1).
  kMerged,
  /// A copy of a single local class (default strategy 1).
  kCopied,
  /// The virtual intersection class IS_AB of Principle 3, defined by
  /// rules.
  kVirtualIntersection,
  /// A virtual difference class IS_A− / IS_B− of Principle 3.
  kVirtualDifference,
};

const char* ISClassKindName(ISClassKind kind);

/// How the value set of an integrated attribute is computed from its
/// local sources (Principles 1 and 3).
enum class ValueSetOp {
  kUnion,          // ≡ / ⊆ / ⊇ : value_set(a) ∪ value_set(b)
  kDifference,     // the a_ part: value_set(a) / value_set(b)
  kIntersectAif,   // the a_b part: AIF_{a_b}(x, y) over matching objects
  kConcatenation,  // α(z): cancatenation(A•a, B•b)
  kMoreSpecific,   // β: keep the more specific attribute's values
  kCopy,           // unasserted attribute accumulated from one source
};

const char* ValueSetOpName(ValueSetOp op);

/// One attribute of an integrated class, with provenance.
struct IntegratedAttribute {
  std::string name;
  ValueSetOp op = ValueSetOp::kCopy;
  /// The local attribute paths this attribute integrates (1 or 2).
  std::vector<Path> sources;
  /// Name of the attribute integration function for kIntersectAif
  /// (registered in the AifRegistry), e.g. "AIF_income_study_support".
  std::string aif_name;
  /// Scalar type and multiplicity inherited from the (first) source
  /// attribute — kept so integrated schemas can participate in further
  /// integration rounds (the accumulation strategy of Fig. 2).
  ValueKind type = ValueKind::kString;
  bool multi_valued = false;

  std::string ToString() const;
};

/// One aggregation function of an integrated class. The range is a local
/// class reference during construction and is rewritten to the
/// corresponding integrated class name by the link-integration pass.
struct IntegratedAggregation {
  std::string name;
  ClassRef local_range;
  std::string integrated_range;  // filled by ResolveAggregationRanges
  Cardinality cardinality;
  std::vector<Path> sources;

  std::string ToString() const;
};

/// One class of the integrated schema.
struct IntegratedClass {
  std::string name;
  ISClassKind kind = ISClassKind::kCopied;
  /// The local classes this one integrates (empty only for synthetic
  /// classes).
  std::vector<ClassRef> sources;
  std::vector<IntegratedAttribute> attributes;
  std::vector<IntegratedAggregation> aggregations;

  const IntegratedAttribute* FindAttribute(const std::string& name) const;

  std::string ToString() const;
};

/// The result of integrating two (or more) local schemas: a set of
/// integrated classes connected by is-a links, plus the derivation rules
/// the integration principles generated (the "deduction-like global
/// schema" of the paper's abstract).
class IntegratedSchema {
 public:
  explicit IntegratedSchema(std::string name = "IS") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a class; fails on duplicate name.
  Result<size_t> AddClass(IntegratedClass integrated_class);

  /// Records that local class `source` is represented by integrated
  /// class `is_name` (used by rule generation and link carry-over).
  void MapSource(const ClassRef& source, const std::string& is_name);

  /// The integrated name of a local class; "" when unmapped.
  std::string NameOf(const ClassRef& source) const;

  /// Adds is_a(child, parent) between integrated classes (idempotent).
  Status AddIsA(const std::string& child, const std::string& parent);
  /// Removes an is-a link; true when it existed.
  bool RemoveIsA(const std::string& child, const std::string& parent);
  bool HasIsA(const std::string& child, const std::string& parent) const;

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  const std::vector<IntegratedClass>& classes() const { return classes_; }
  const IntegratedClass* FindClass(const std::string& name) const;
  IntegratedClass* MutableClass(const std::string& name);
  const std::vector<std::pair<std::string, std::string>>& isa_links() const {
    return isa_links_;
  }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Direct is-a parents / children of a class.
  std::vector<std::string> ParentsOf(const std::string& name) const;
  std::vector<std::string> ChildrenOf(const std::string& name) const;

  /// The transitive closure of the is-a relation — the semantic content
  /// of the hierarchy, invariant under redundant-link removal (used to
  /// compare the naive and optimized integrators).
  std::set<std::pair<std::string, std::string>> IsAClosure() const;

  /// Removes every is-a link implied by a longer is-a path (the
  /// redundant links of Fig. 12); returns how many were removed.
  size_t TransitiveReduction();

  /// Rewrites aggregation ranges from local class refs to integrated
  /// class names via the source map.
  void ResolveAggregationRanges();

  /// Lowers the integrated schema to a plain (finalized) Schema so it can
  /// itself participate in a further integration round — the accumulation
  /// strategy of Fig. 2(a) and the balanced strategy of Fig. 2(b).
  /// Virtual classes are carried along as ordinary classes (their
  /// defining rules remain attached to this object).
  Result<Schema> ToSchema() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<IntegratedClass> classes_;
  std::map<std::string, size_t> by_name_;
  std::map<std::string, std::string> source_map_;  // ClassRef str -> IS name
  std::vector<std::pair<std::string, std::string>> isa_links_;
  std::set<std::string> isa_keys_;
  std::vector<Rule> rules_;
};

}  // namespace ooint

#endif  // OOINT_INTEGRATE_INTEGRATED_SCHEMA_H_
