#include "integrate/trace.h"

#include "common/string_util.h"

namespace ooint {

namespace {

const char* KindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kPopPair:
      return "pop";
    case TraceEvent::Kind::kCase:
      return "case";
    case TraceEvent::Kind::kSkipByLabels:
      return "skip-by-labels";
    case TraceEvent::Kind::kSuppressSibling:
      return "suppress-sibling";
    case TraceEvent::Kind::kDfsVisit:
      return "dfs-visit";
    case TraceEvent::Kind::kDfsLabel:
      return "dfs-label";
    case TraceEvent::Kind::kDfsStar:
      return "dfs-star";
    case TraceEvent::Kind::kDfsLink:
      return "dfs-link";
    case TraceEvent::Kind::kInherit:
      return "inherit";
  }
  return "?";
}

}  // namespace

std::string TraceEvent::ToString() const {
  return StrCat(KindName(kind), " ", subject,
                detail.empty() ? "" : StrCat(" [", detail, "]"));
}

std::vector<const TraceEvent*> IntegrationTrace::OfKind(
    TraceEvent::Kind kind) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) out.push_back(&e);
  }
  return out;
}

bool IntegrationTrace::Contains(TraceEvent::Kind kind,
                                const std::string& needle) const {
  return IndexOf(kind, needle) >= 0;
}

int IntegrationTrace::IndexOf(TraceEvent::Kind kind,
                              const std::string& needle) const {
  for (size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].kind == kind &&
        events_[i].subject.find(needle) != std::string::npos) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string IntegrationTrace::ToString() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += e.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace ooint
