#include "integrate/principles.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "rules/rule_generator.h"

namespace ooint {

bool PendingOperations::Seen(const Assertion* assertion) {
  return !seen_assertions_.insert(assertion).second;
}

void PendingOperations::Record(const AssertionSet& set,
                               const AssertionSet::Lookup& lookup,
                               const ClassRef& n1, const ClassRef& n2) {
  if (!lookup.found()) return;
  switch (lookup.rel) {
    case SetRel::kEquivalent:
      if (!Seen(lookup.assertion)) equivalences_.push_back(lookup.assertion);
      break;
    case SetRel::kSubset:
      RecordIsA(n1, n2);
      break;
    case SetRel::kSuperset:
      RecordIsA(n2, n1);
      break;
    case SetRel::kOverlap:
      if (!Seen(lookup.assertion)) intersections_.push_back(lookup.assertion);
      break;
    case SetRel::kDisjoint:
      if (!Seen(lookup.assertion)) disjoints_.push_back(lookup.assertion);
      break;
    case SetRel::kDerivation:
      for (const Assertion* derivation : set.FindDerivations(n1)) {
        const bool involves_n2 = derivation->rhs == n2 ||
                                 derivation->MentionsOnLhs(n2);
        if (involves_n2 && !Seen(derivation)) {
          derivations_.push_back(derivation);
        }
      }
      break;
  }
}

void PendingOperations::RecordIsA(const ClassRef& sub, const ClassRef& super) {
  const std::string key = StrCat(sub.ToString(), "->", super.ToString());
  if (seen_isa_.insert(key).second) inclusions_.push_back({sub, super});
}

namespace {

std::string CopyName(const ClassRef& ref) {
  return StrCat("IS(", ref.ToString(), ")");
}

std::string MergedName(const ClassRef& a, const ClassRef& b) {
  return StrCat("IS(", a.ToString(), ",", b.ToString(), ")");
}

/// Integrated-attribute naming: the shared name when both sides agree,
/// otherwise lhs_rhs (the paper's income_study_support pattern).
std::string JoinAttrName(const std::string& a, const std::string& b) {
  return a == b ? a : StrCat(a, "_", b);
}

/// Adds `attribute` to `out`, qualifying the name with "@<schema>" on
/// collision (unasserted same-named attributes accumulated from both
/// sides).
void AddAttributeUnique(IntegratedClass* out, IntegratedAttribute attribute,
                        const std::string& qualifier) {
  if (out->FindAttribute(attribute.name) != nullptr) {
    attribute.name = StrCat(attribute.name, "@", qualifier);
    if (out->FindAttribute(attribute.name) != nullptr) return;  // duplicate
  }
  out->attributes.push_back(std::move(attribute));
}

/// Fills in the scalar type / multiplicity of every attribute of `out`
/// from its first resolvable source attribute; concatenations are
/// strings by construction.
void FillAttributeTypes(IntegrationContext* ctx, IntegratedClass* out) {
  for (IntegratedAttribute& attr : out->attributes) {
    if (attr.op == ValueSetOp::kConcatenation) {
      attr.type = ValueKind::kString;
      continue;
    }
    for (const Path& path : attr.sources) {
      const ClassDef* class_def =
          ctx->ClassOf({path.schema(), path.class_name()});
      if (class_def == nullptr) continue;
      const Attribute* local = class_def->FindAttribute(path.leaf());
      if (local == nullptr || local->type.is_class()) continue;
      attr.type = local->type.scalar;
      attr.multi_valued = local->multi_valued;
      break;
    }
  }
}

/// True when `path` denotes a direct attribute (or aggregation) of the
/// class `ref` — merging only handles one-component paths; deeper paths
/// are the business of derivation rules.
bool IsDirectPathOf(const Path& path, const ClassRef& ref) {
  return path.schema() == ref.schema && path.class_name() == ref.class_name &&
         path.components().size() == 1 && !path.name_ref();
}

/// Integrates the attribute correspondences of `assertion` into `out`
/// (the switch of Principle 1); records handled local attribute names in
/// `handled_lhs` / `handled_rhs`.
void IntegrateAttrCorrs(IntegrationContext* ctx, const Assertion& assertion,
                        const ClassRef& a, const ClassRef& b,
                        IntegratedClass* out,
                        std::set<std::string>* handled_lhs,
                        std::set<std::string>* handled_rhs) {
  (void)ctx;
  for (const AttributeCorrespondence& ac : assertion.attr_corrs) {
    // Normalize orientation: la rooted at a, rb rooted at b.
    const AttributeCorrespondence* corr = &ac;
    AttributeCorrespondence flipped;
    bool flipped_orientation = false;
    if (IsDirectPathOf(ac.lhs, b) && IsDirectPathOf(ac.rhs, a)) {
      flipped = ac;
      std::swap(flipped.lhs, flipped.rhs);
      flipped.rel = ReverseAttrRel(ac.rel);
      corr = &flipped;
      flipped_orientation = true;
    } else if (!(IsDirectPathOf(ac.lhs, a) && IsDirectPathOf(ac.rhs, b))) {
      continue;  // nested path correspondence: handled by rules
    }
    const std::string& la = corr->lhs.leaf();
    const std::string& rb = corr->rhs.leaf();
    handled_lhs->insert(la);
    handled_rhs->insert(rb);
    switch (corr->rel) {
      case AttrRel::kEquivalent:
      case AttrRel::kSubset:
      case AttrRel::kSuperset:
        out->attributes.push_back(
            {JoinAttrName(la, rb), ValueSetOp::kUnion,
             {corr->lhs, corr->rhs}, ""});
        break;
      case AttrRel::kOverlap:
        // Three new attributes a_, b_ and a_b (Principle 1, case a∩b).
        out->attributes.push_back({StrCat(la, "_"), ValueSetOp::kDifference,
                                   {corr->lhs, corr->rhs}, ""});
        out->attributes.push_back({StrCat(rb, "_"), ValueSetOp::kDifference,
                                   {corr->rhs, corr->lhs}, ""});
        out->attributes.push_back({StrCat(la, "_", rb),
                                   ValueSetOp::kIntersectAif,
                                   {corr->lhs, corr->rhs},
                                   StrCat("AIF_", la, "_", rb)});
        break;
      case AttrRel::kDisjoint:
        out->attributes.push_back(
            {la, ValueSetOp::kCopy, {corr->lhs}, ""});
        AddAttributeUnique(out, {rb, ValueSetOp::kCopy, {corr->rhs}, ""},
                           corr->rhs.schema());
        break;
      case AttrRel::kComposedInto:
        out->attributes.push_back({corr->composed_name,
                                   ValueSetOp::kConcatenation,
                                   {corr->lhs, corr->rhs}, ""});
        break;
      case AttrRel::kMoreSpecific: {
        // β is directional: keep the more specific attribute — the lhs
        // of the correspondence as *declared* (swapping operands does
        // not mirror β the way it mirrors ⊆/⊇).
        const Path& specific = flipped_orientation ? corr->rhs : corr->lhs;
        const Path& general = flipped_orientation ? corr->lhs : corr->rhs;
        out->attributes.push_back({specific.leaf(),
                                   ValueSetOp::kMoreSpecific,
                                   {specific, general},
                                   ""});
        break;
      }
    }
  }
}

/// Integrates the aggregation-function correspondences (Principle 1's
/// second switch, deferring cardinality resolution to the lattice of
/// Principle 6).
void IntegrateAggCorrs(IntegrationContext* ctx, const Assertion& assertion,
                       const ClassRef& a, const ClassRef& b,
                       IntegratedClass* out,
                       std::set<std::string>* handled_lhs,
                       std::set<std::string>* handled_rhs) {
  const ClassDef* class_a = ctx->ClassOf(a);
  const ClassDef* class_b = ctx->ClassOf(b);
  for (const AggCorrespondence& gc : assertion.agg_corrs) {
    const AggCorrespondence* corr = &gc;
    AggCorrespondence flipped;
    if (IsDirectPathOf(gc.lhs, b) && IsDirectPathOf(gc.rhs, a)) {
      flipped = gc;
      std::swap(flipped.lhs, flipped.rhs);
      flipped.rel = ReverseAggRel(gc.rel);
      corr = &flipped;
    } else if (!(IsDirectPathOf(gc.lhs, a) && IsDirectPathOf(gc.rhs, b))) {
      continue;
    }
    const AggregationFunction* fa =
        class_a == nullptr ? nullptr : class_a->FindAggregation(
                                           corr->lhs.leaf());
    const AggregationFunction* fb =
        class_b == nullptr ? nullptr : class_b->FindAggregation(
                                           corr->rhs.leaf());
    if (fa == nullptr || fb == nullptr) continue;
    handled_lhs->insert(fa->name);
    handled_rhs->insert(fb->name);
    switch (corr->rel) {
      case AggRel::kReverse:
      case AggRel::kDisjoint:
        // Both functions kept with their local cardinality constraints.
        out->aggregations.push_back({fa->name,
                                     {a.schema, fa->range_class},
                                     "",
                                     fa->cardinality,
                                     {corr->lhs}});
        out->aggregations.push_back({fb->name == fa->name
                                         ? StrCat(fb->name, "@", b.schema)
                                         : fb->name,
                                     {b.schema, fb->range_class},
                                     "",
                                     fb->cardinality,
                                     {corr->rhs}});
        break;
      case AggRel::kEquivalent:
      case AggRel::kSubset:
      case AggRel::kSuperset:
      case AggRel::kOverlap: {
        // Merge into IS_fg with lcs(cc1, cc2) (Principle 6).
        if (fa->cardinality != fb->cardinality) {
          ++ctx->stats.cardinality_conflicts_resolved;
        }
        out->aggregations.push_back(
            {JoinAttrName(fa->name, fb->name),
             {a.schema, fa->range_class},
             "",
             Cardinality::LeastCommonSuper(fa->cardinality, fb->cardinality),
             {corr->lhs, corr->rhs}});
        break;
      }
    }
  }
}

/// Accumulates the attributes and aggregations of `ref` not mentioned in
/// any correspondence (default strategy 2: unasserted attributes are
/// semantically disjoint and simply accumulated).
void AccumulateRemaining(IntegrationContext* ctx, const ClassRef& ref,
                         const std::set<std::string>& handled,
                         IntegratedClass* out) {
  const ClassDef* class_def = ctx->ClassOf(ref);
  if (class_def == nullptr) return;
  for (const Attribute& attr : class_def->attributes()) {
    if (handled.count(attr.name) != 0) continue;
    AddAttributeUnique(out,
                       {attr.name,
                        ValueSetOp::kCopy,
                        {Path::Attr(ref.schema, ref.class_name, attr.name)},
                        ""},
                       ref.schema);
  }
  for (const AggregationFunction& fn : class_def->aggregations()) {
    if (handled.count(fn.name) != 0) continue;
    out->aggregations.push_back({fn.name,
                                 {ref.schema, fn.range_class},
                                 "",
                                 fn.cardinality,
                                 {Path::Attr(ref.schema, ref.class_name,
                                             fn.name)}});
  }
}

/// Principle 1: merges two equivalent classes into one integrated class.
Status ApplyEquivalence(IntegrationContext* ctx, const Assertion& assertion) {
  const ClassRef& a = assertion.lhs.front();
  const ClassRef& b = assertion.rhs;
  const std::string existing_a = ctx->result.NameOf(a);
  const std::string existing_b = ctx->result.NameOf(b);
  if (!existing_a.empty() && existing_a == existing_b) return Status::OK();

  if (!existing_a.empty() || !existing_b.empty()) {
    // A second equivalence touching an already-merged class: extend the
    // existing merged class with the new counterpart's material.
    const std::string name = existing_a.empty() ? existing_b : existing_a;
    const ClassRef& incoming = existing_a.empty() ? a : b;
    IntegratedClass* merged = ctx->result.MutableClass(name);
    if (merged == nullptr) {
      return Status::Internal(StrCat("mapped class '", name, "' missing"));
    }
    merged->sources.push_back(incoming);
    std::set<std::string> handled_lhs;
    std::set<std::string> handled_rhs;
    IntegrateAttrCorrs(ctx, assertion, a, b, merged, &handled_lhs,
                       &handled_rhs);
    IntegrateAggCorrs(ctx, assertion, a, b, merged, &handled_lhs,
                      &handled_rhs);
    AccumulateRemaining(ctx, incoming,
                        existing_a.empty() ? handled_lhs : handled_rhs,
                        merged);
    FillAttributeTypes(ctx, merged);
    ctx->result.MapSource(incoming, name);
    ++ctx->stats.classes_merged;
    return Status::OK();
  }

  IntegratedClass merged;
  merged.name = MergedName(a, b);
  merged.kind = ISClassKind::kMerged;
  merged.sources = {a, b};
  std::set<std::string> handled_lhs;
  std::set<std::string> handled_rhs;
  IntegrateAttrCorrs(ctx, assertion, a, b, &merged, &handled_lhs,
                     &handled_rhs);
  IntegrateAggCorrs(ctx, assertion, a, b, &merged, &handled_lhs,
                    &handled_rhs);
  AccumulateRemaining(ctx, a, handled_lhs, &merged);
  AccumulateRemaining(ctx, b, handled_rhs, &merged);
  FillAttributeTypes(ctx, &merged);
  const std::string name = merged.name;
  Result<size_t> added = ctx->result.AddClass(std::move(merged));
  if (!added.ok()) return added.status();
  ctx->result.MapSource(a, name);
  ctx->result.MapSource(b, name);
  ++ctx->stats.classes_merged;
  return Status::OK();
}

/// Principle 3: virtual intersection and difference classes plus their
/// defining rules.
Status ApplyIntersection(IntegrationContext* ctx, const Assertion& assertion) {
  const ClassRef& a = assertion.lhs.front();
  const ClassRef& b = assertion.rhs;
  Result<std::string> is_a_name = EnsureCopy(ctx, a);
  if (!is_a_name.ok()) return is_a_name.status();
  Result<std::string> is_b_name = EnsureCopy(ctx, b);
  if (!is_b_name.ok()) return is_b_name.status();

  IntegratedClass both;
  both.name = StrCat("IS(", a.ToString(), "&", b.ToString(), ")");
  both.kind = ISClassKind::kVirtualIntersection;
  both.sources = {a, b};
  {
    std::set<std::string> handled_lhs;
    std::set<std::string> handled_rhs;
    IntegrateAttrCorrs(ctx, assertion, a, b, &both, &handled_lhs,
                       &handled_rhs);
    IntegrateAggCorrs(ctx, assertion, a, b, &both, &handled_lhs,
                      &handled_rhs);
    FillAttributeTypes(ctx, &both);
    // Note: no rules (or attributes) are created for the attributes
    // outside the correspondences — "we do not establish rules for
    // attributes appearing in IS_faculty and IS_student since, for them,
    // no integration happens at all" (Example 8).
  }
  IntegratedClass only_a;
  only_a.name = StrCat("IS(", a.ToString(), "-", b.ToString(), ")");
  only_a.kind = ISClassKind::kVirtualDifference;
  only_a.sources = {a};
  IntegratedClass only_b;
  only_b.name = StrCat("IS(", b.ToString(), "-", a.ToString(), ")");
  only_b.kind = ISClassKind::kVirtualDifference;
  only_b.sources = {b};

  const std::string both_name = both.name;
  const std::string only_a_name = only_a.name;
  const std::string only_b_name = only_b.name;
  OOINT_RETURN_IF_ERROR(ctx->result.AddClass(std::move(both)).status());
  OOINT_RETURN_IF_ERROR(ctx->result.AddClass(std::move(only_a)).status());
  OOINT_RETURN_IF_ERROR(ctx->result.AddClass(std::move(only_b)).status());

  auto membership = [](const std::string& class_name,
                       const std::string& var) {
    OTerm term;
    term.object = TermArg::Variable(var);
    term.class_name = class_name;
    return term;
  };

  // <x: IS_AB> <= <x: IS(A)>, <y: IS(B)>, y = x.
  Rule both_rule;
  both_rule.head.push_back(Literal::OfOTerm(membership(both_name, "x")));
  both_rule.body.push_back(
      Literal::OfOTerm(membership(is_a_name.value(), "x")));
  both_rule.body.push_back(
      Literal::OfOTerm(membership(is_b_name.value(), "y")));
  both_rule.body.push_back(Literal::OfCompare(
      TermArg::Variable("y"), CompareOp::kEq, TermArg::Variable("x")));
  both_rule.provenance = StrCat("principle-3(", a.ToString(), " ~ ",
                                b.ToString(), ")");

  // <x: IS_A-> <= <x: IS(A)>, not <x: IS_AB>.
  Rule a_rule;
  a_rule.head.push_back(Literal::OfOTerm(membership(only_a_name, "x")));
  a_rule.body.push_back(Literal::OfOTerm(membership(is_a_name.value(), "x")));
  a_rule.body.push_back(
      Literal::OfOTerm(membership(both_name, "x"), /*negated=*/true));
  a_rule.provenance = both_rule.provenance;

  Rule b_rule;
  b_rule.head.push_back(Literal::OfOTerm(membership(only_b_name, "x")));
  b_rule.body.push_back(Literal::OfOTerm(membership(is_b_name.value(), "x")));
  b_rule.body.push_back(
      Literal::OfOTerm(membership(both_name, "x"), /*negated=*/true));
  b_rule.provenance = both_rule.provenance;

  ctx->result.AddRule(std::move(both_rule));
  ctx->result.AddRule(std::move(a_rule));
  ctx->result.AddRule(std::move(b_rule));
  ctx->stats.rules_generated += 3;

  // The virtual classes sit below their constituents in the hierarchy.
  OOINT_RETURN_IF_ERROR(ctx->result.AddIsA(both_name, is_a_name.value()));
  OOINT_RETURN_IF_ERROR(ctx->result.AddIsA(both_name, is_b_name.value()));
  OOINT_RETURN_IF_ERROR(ctx->result.AddIsA(only_a_name, is_a_name.value()));
  OOINT_RETURN_IF_ERROR(ctx->result.AddIsA(only_b_name, is_b_name.value()));
  ctx->stats.isa_links_inserted += 4;
  return Status::OK();
}

/// Principle 4: completion rules for disjoint subclasses of equivalent
/// parents, plus the reverse-aggregation variant.
Status ApplyDisjoint(IntegrationContext* ctx, const Assertion& assertion) {
  const ClassRef& a = assertion.lhs.front();
  const ClassRef& b = assertion.rhs;
  Result<std::string> is_a_name = EnsureCopy(ctx, a);
  if (!is_a_name.ok()) return is_a_name.status();
  Result<std::string> is_b_name = EnsureCopy(ctx, b);
  if (!is_b_name.ok()) return is_b_name.status();

  auto membership = [](const std::string& class_name,
                       const std::string& var) {
    OTerm term;
    term.object = TermArg::Variable(var);
    term.class_name = class_name;
    return term;
  };

  // Find equivalent ancestors A' ⊇ A (in S1) and B' ⊇ B (in S2): the
  // assertion is meaningful only then (Principle 4's precondition).
  const Schema* schema_a = ctx->SchemaOf(a);
  const Schema* schema_b = ctx->SchemaOf(b);
  if (schema_a == nullptr || schema_b == nullptr) {
    return Status::NotFound("disjoint assertion references unknown schema");
  }
  const ClassId id_a = schema_a->FindClass(a.class_name);
  const ClassId id_b = schema_b->FindClass(b.class_name);
  std::string merged_parent;
  for (ClassId ancestor_a : schema_a->Ancestors(id_a)) {
    for (ClassId ancestor_b : schema_b->Ancestors(id_b)) {
      const ClassRef ra{schema_a->name(),
                        schema_a->class_def(ancestor_a).name()};
      const ClassRef rb{schema_b->name(),
                        schema_b->class_def(ancestor_b).name()};
      const AssertionSet::Lookup lookup = ctx->assertions->Find(ra, rb);
      if (lookup.found() && lookup.rel == SetRel::kEquivalent) {
        const std::string name_a = ctx->result.NameOf(ra);
        if (!name_a.empty()) {
          merged_parent = name_a;
          break;
        }
      }
    }
    if (!merged_parent.empty()) break;
  }

  if (!merged_parent.empty()) {
    // <x: IS(B)> <= <x: merged(A',B')>, not <x: IS(A)>   (and converse).
    Rule to_b;
    to_b.head.push_back(Literal::OfOTerm(membership(is_b_name.value(), "x")));
    to_b.body.push_back(Literal::OfOTerm(membership(merged_parent, "x")));
    to_b.body.push_back(
        Literal::OfOTerm(membership(is_a_name.value(), "x"),
                         /*negated=*/true));
    to_b.provenance = StrCat("principle-4(", a.ToString(), " ! ",
                             b.ToString(), ")");
    Rule to_a;
    to_a.head.push_back(Literal::OfOTerm(membership(is_a_name.value(), "x")));
    to_a.body.push_back(Literal::OfOTerm(membership(merged_parent, "x")));
    to_a.body.push_back(
        Literal::OfOTerm(membership(is_b_name.value(), "x"),
                         /*negated=*/true));
    to_a.provenance = to_b.provenance;
    // Evaluating both directions would negate each other recursively
    // (unstratified); the converse stays recorded but unevaluated.
    to_a.documentation_only = true;
    ctx->result.AddRule(std::move(to_b));
    ctx->result.AddRule(std::move(to_a));
    ctx->stats.rules_generated += 2;
  }

  // Reverse-aggregation variant: agg_A ℵ agg_B yields the two rules
  // navigating IS_{agg_A,agg_B} in both directions.
  for (const AggCorrespondence& gc : assertion.agg_corrs) {
    if (gc.rel != AggRel::kReverse) continue;
    const std::string merged_agg =
        JoinAttrName(gc.lhs.leaf(), gc.rhs.leaf());
    auto nav = [&](const std::string& head_class,
                   const std::string& body_class) {
      Rule rule;
      OTerm head = membership(head_class, "x");
      head.attrs.push_back({merged_agg, false, TermArg::Variable("y")});
      OTerm body = membership(body_class, "y");
      body.attrs.push_back({merged_agg, false, TermArg::Variable("x")});
      rule.head.push_back(Literal::OfOTerm(std::move(head)));
      rule.body.push_back(Literal::OfOTerm(std::move(body)));
      rule.provenance = StrCat("principle-4-reverse-agg(", gc.ToString(),
                               ")");
      return rule;
    };
    ctx->result.AddRule(nav(is_b_name.value(), is_a_name.value()));
    ctx->result.AddRule(nav(is_a_name.value(), is_b_name.value()));
    ctx->stats.rules_generated += 2;
  }
  return Status::OK();
}

/// Principle 5: derivation assertions become inference rules.
Status ApplyDerivation(IntegrationContext* ctx, const Assertion& assertion) {
  for (const ClassRef& c : assertion.lhs) {
    OOINT_RETURN_IF_ERROR(EnsureCopy(ctx, c).status());
  }
  OOINT_RETURN_IF_ERROR(EnsureCopy(ctx, assertion.rhs).status());
  RuleGenerator generator([ctx](const ClassRef& ref) {
    const std::string name = ctx->result.NameOf(ref);
    return name.empty() ? DefaultClassNaming(ref) : name;
  });
  Result<std::vector<Rule>> rules = generator.Generate(assertion);
  if (!rules.ok()) return rules.status();
  for (Rule& rule : rules.value()) {
    ctx->result.AddRule(std::move(rule));
    ++ctx->stats.rules_generated;
  }
  return Status::OK();
}

}  // namespace

Result<std::string> EnsureCopy(IntegrationContext* ctx, const ClassRef& ref) {
  const std::string existing = ctx->result.NameOf(ref);
  if (!existing.empty()) return existing;
  const ClassDef* class_def = ctx->ClassOf(ref);
  if (class_def == nullptr) {
    return Status::NotFound(
        StrCat("class ", ref.ToString(), " not found in either schema"));
  }
  IntegratedClass copy;
  copy.name = CopyName(ref);
  copy.kind = ISClassKind::kCopied;
  copy.sources = {ref};
  AccumulateRemaining(ctx, ref, {}, &copy);
  FillAttributeTypes(ctx, &copy);
  const std::string name = copy.name;
  OOINT_RETURN_IF_ERROR(ctx->result.AddClass(std::move(copy)).status());
  ctx->result.MapSource(ref, name);
  return name;
}

Status Materialize(IntegrationContext* ctx, const PendingOperations& ops) {
  // 1. Principle 1: merges first, so every later step sees final names.
  for (const Assertion* assertion : ops.equivalences()) {
    OOINT_RETURN_IF_ERROR(ApplyEquivalence(ctx, *assertion));
  }
  // 2. Default strategy 1: copy every class without an equivalence.
  for (const Schema* schema : {ctx->s1, ctx->s2}) {
    for (const ClassDef& class_def : schema->classes()) {
      OOINT_RETURN_IF_ERROR(
          EnsureCopy(ctx, {schema->name(), class_def.name()}).status());
    }
  }
  // 3. Principle 3: virtual intersection classes and their rules.
  for (const Assertion* assertion : ops.intersections()) {
    OOINT_RETURN_IF_ERROR(ApplyIntersection(ctx, *assertion));
  }
  // 4. Principle 4: disjoint completion rules.
  for (const Assertion* assertion : ops.disjoints()) {
    OOINT_RETURN_IF_ERROR(ApplyDisjoint(ctx, *assertion));
  }
  // 5. Principle 5: derivation rules.
  for (const Assertion* assertion : ops.derivations()) {
    OOINT_RETURN_IF_ERROR(ApplyDerivation(ctx, *assertion));
  }
  // 6. Links: carry over local is-a links, add the cross-schema links
  //    Principle 2 decided on, then remove redundancy (Fig. 12, §6.2).
  for (const Schema* schema : {ctx->s1, ctx->s2}) {
    for (const ClassDef& class_def : schema->classes()) {
      const ClassId id = schema->FindClass(class_def.name());
      const std::string child =
          ctx->result.NameOf({schema->name(), class_def.name()});
      for (ClassId parent_id : schema->ParentsOf(id)) {
        const std::string parent = ctx->result.NameOf(
            {schema->name(), schema->class_def(parent_id).name()});
        if (child.empty() || parent.empty() || child == parent) continue;
        if (!ctx->result.HasIsA(child, parent)) {
          OOINT_RETURN_IF_ERROR(ctx->result.AddIsA(child, parent));
          ++ctx->stats.isa_links_inserted;
        }
      }
    }
  }
  for (const PendingOperations::PendingIsA& link : ops.inclusions()) {
    const std::string sub = ctx->result.NameOf(link.sub);
    const std::string super = ctx->result.NameOf(link.super);
    if (sub.empty() || super.empty() || sub == super) continue;
    if (!ctx->result.HasIsA(sub, super)) {
      OOINT_RETURN_IF_ERROR(ctx->result.AddIsA(sub, super));
      ++ctx->stats.isa_links_inserted;
    }
  }
  ctx->stats.isa_links_suppressed += ctx->result.TransitiveReduction();
  ctx->result.ResolveAggregationRanges();
  return Status::OK();
}

}  // namespace ooint
