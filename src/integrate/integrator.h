#ifndef OOINT_INTEGRATE_INTEGRATOR_H_
#define OOINT_INTEGRATE_INTEGRATOR_H_

#include <deque>
#include <set>
#include <vector>

#include "assertions/assertion_set.h"
#include "common/result.h"
#include "integrate/naive_integrator.h"
#include "integrate/principles.h"
#include "integrate/trace.h"

namespace ooint {

/// Algorithm schema_integration + path_labelling (Section 6.1): the
/// paper's optimized integration algorithm.
///
/// It combines a breadth-first traversal over node pairs with:
///  - observation-based pruning — after N1 ≡ N2, sibling pairs
///    (N1, M_2j) and (M_1i, N2) are removed; after N1 ⊆ N2 only
///    (N1, N_2j) pairs continue; disjoint/derivation pairs spawn no extra
///    pairs;
///  - a depth-first path_labelling pass on every inclusion, which labels
///    the is-a paths above whose nodes need no further checking against
///    N1's subtree, performs merges found en route, and generates only
///    the deepest is-a link of each inclusion chain (the generalized
///    Principle 2, Fig. 8);
///  - label inheritance — a node's inherited labels flow to its
///    descendants so whole subtree-vs-path products are skipped (the
///    ⟨labels, inherited-labels⟩ pairs of Section 6.1).
///
/// The integration principles themselves are shared with
/// NaiveIntegrator, so both algorithms produce semantically equal
/// integrated schemas while this one checks O(n) pairs on the paper's
/// Section 6.3 workload instead of O(n²).
class Integrator {
 public:
  /// `trace`, when non-null, records every algorithm step (Appendix A's
  /// computation-step listing) — see integrate/trace.h.
  static Result<IntegrationOutcome> Integrate(const Schema& s1,
                                              const Schema& s2,
                                              const AssertionSet& assertions,
                                              AifRegistry* aifs = nullptr,
                                              IntegrationTrace* trace = nullptr);

 private:
  Integrator(const Schema& s1, const Schema& s2,
             const AssertionSet& assertions);

  Status Run();

  /// The depth-first pass: labels the subgraph of `target_schema` rooted
  /// at `n2` w.r.t. class `n1` of the other schema, records merges /
  /// pending links, and returns the fresh label.
  int PathLabelling(int side1, ClassId n1, int side2, ClassId n2);

  /// Assertion lookup oriented (side1.n1 θ side2.n2).
  AssertionSet::Lookup Find(int side1, ClassId n1, int side2,
                            ClassId n2) const;

  const Schema& SchemaOf(int side) const { return side == 1 ? s1_ : s2_; }
  ClassRef RefOf(int side, ClassId id) const;

  std::vector<ClassId> ChildrenOrRoots(int side, ClassId node) const;

  /// Adds `label` to inherited-labels of `node` and all its descendants.
  void InheritLabel(int side, ClassId node, int label);

  const Schema& s1_;
  const Schema& s2_;
  const AssertionSet& assertions_;
  IntegrationContext ctx_;
  PendingOperations ops_;

  // Per-node label state: labels obtained during depth-first search and
  // labels obtained through inheritance (the pair ⟨l₁···l_n, l₁'···l_m'⟩).
  std::vector<std::set<int>> labels_s1_;
  std::vector<std::set<int>> inherited_s1_;
  std::vector<std::set<int>> labels_s2_;
  std::vector<std::set<int>> inherited_s2_;
  int label_counter_ = 0;

  std::deque<std::pair<ClassId, ClassId>> queue_;
  std::set<std::pair<ClassId, ClassId>> enqueued_;
  std::set<std::pair<ClassId, ClassId>> suppressed_;
  IntegrationTrace* trace_ = nullptr;

  /// Renders "(lhs, rhs)" with class names for trace subjects.
  std::string PairName(ClassId n1, ClassId n2) const;
  void Trace(TraceEvent::Kind kind, std::string subject,
             std::string detail = "") const;
};

}  // namespace ooint

#endif  // OOINT_INTEGRATE_INTEGRATOR_H_
