#include "integrate/aif.h"

namespace ooint {

Value AifRegistry::Apply(const std::string& name, const Value& x,
                         const Value& y) const {
  auto it = fns_.find(name);
  if (it != fns_.end()) return it->second(x, y);
  return x.is_null() ? y : x;
}

Value AifRegistry::Average(const Value& x, const Value& y) {
  Result<double> a = x.AsNumber();
  Result<double> b = y.AsNumber();
  if (!a.ok() || !b.ok()) return Value::Null();
  return Value::Real((a.value() + b.value()) / 2.0);
}

}  // namespace ooint
