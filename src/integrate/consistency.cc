#include "integrate/consistency.h"

#include <algorithm>
#include <deque>
#include <map>

#include "common/string_util.h"

namespace ooint {

std::string ConsistencyFinding::ToString() const {
  const char* severity_name =
      severity == Severity::kError ? "error" : "warning";
  const char* kind_name = "";
  switch (kind) {
    case Kind::kHierarchyCycle:
      kind_name = "hierarchy-cycle";
      break;
    case Kind::kShadowedByObservation3:
      kind_name = "shadowed-by-observation-3";
      break;
    case Kind::kDisjointWithoutEquivalentParents:
      kind_name = "disjoint-without-equivalent-parents";
      break;
    case Kind::kBareDerivation:
      kind_name = "bare-derivation";
      break;
  }
  return StrCat(severity_name, " [", kind_name, "] ", detail, " — ",
                assertion);
}

namespace {

/// Node numbering across the two schemas: S1 classes first.
size_t NodeOf(const Schema& s1, const ClassRef& ref, const Schema& s2) {
  if (ref.schema == s1.name()) {
    return static_cast<size_t>(s1.FindClass(ref.class_name));
  }
  return s1.NumClasses() + static_cast<size_t>(s2.FindClass(ref.class_name));
}

/// Tarjan-free SCC computation (Kosaraju) over a small adjacency list.
std::vector<int> StronglyConnectedComponents(
    size_t n, const std::vector<std::vector<size_t>>& adjacency) {
  std::vector<std::vector<size_t>> reverse(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v : adjacency[u]) reverse[v].push_back(u);
  }
  std::vector<bool> seen(n, false);
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    // Iterative post-order DFS.
    std::vector<std::pair<size_t, size_t>> stack = {{start, 0}};
    seen[start] = true;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < adjacency[node].size()) {
        const size_t child = adjacency[node][next++];
        if (!seen[child]) {
          seen[child] = true;
          stack.push_back({child, 0});
        }
      } else {
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  std::vector<int> component(n, -1);
  int count = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (component[*it] != -1) continue;
    std::deque<size_t> frontier = {*it};
    component[*it] = count;
    while (!frontier.empty()) {
      const size_t node = frontier.front();
      frontier.pop_front();
      for (size_t next : reverse[node]) {
        if (component[next] == -1) {
          component[next] = count;
          frontier.push_back(next);
        }
      }
    }
    ++count;
  }
  return component;
}

/// True when `ancestor` is `ref` or a (transitive) superclass of it.
bool IsAncestorOrSelf(const Schema& schema, const std::string& ancestor,
                      const std::string& descendant) {
  const ClassId a = schema.FindClass(ancestor);
  const ClassId d = schema.FindClass(descendant);
  if (a == kInvalidClassId || d == kInvalidClassId) return false;
  return schema.IsSubclassOf(d, a);
}

}  // namespace

std::vector<ConsistencyFinding> CheckConsistency(
    const Schema& s1, const Schema& s2, const AssertionSet& assertions) {
  std::vector<ConsistencyFinding> findings;

  // --- Hierarchy-cycle detection -------------------------------------
  // Build the "below-or-equal" graph: local is-a edges and cross-schema
  // ⊆ edges are strict (upward); ≡ edges go both ways. A strongly
  // connected component joined by a strict edge is a forced cycle.
  const size_t n = s1.NumClasses() + s2.NumClasses();
  std::vector<std::vector<size_t>> adjacency(n);
  struct StrictEdge {
    size_t from;
    size_t to;
    std::string description;
  };
  std::vector<StrictEdge> strict_edges;

  auto add_local = [&](const Schema& schema, size_t offset) {
    for (size_t i = 0; i < schema.NumClasses(); ++i) {
      for (ClassId parent : schema.ParentsOf(static_cast<ClassId>(i))) {
        adjacency[offset + i].push_back(offset +
                                        static_cast<size_t>(parent));
        strict_edges.push_back(
            {offset + i, offset + static_cast<size_t>(parent),
             StrCat("is_a(", schema.class_def(static_cast<ClassId>(i)).name(),
                    ", ", schema.class_def(parent).name(), ") in ",
                    schema.name())});
      }
    }
  };
  add_local(s1, 0);
  add_local(s2, s1.NumClasses());

  for (const Assertion& assertion : assertions.assertions()) {
    if (assertion.rel == SetRel::kDerivation) continue;
    const size_t a = NodeOf(s1, assertion.lhs.front(), s2);
    const size_t b = NodeOf(s1, assertion.rhs, s2);
    switch (assertion.rel) {
      case SetRel::kEquivalent:
        adjacency[a].push_back(b);
        adjacency[b].push_back(a);
        break;
      case SetRel::kSubset:
        adjacency[a].push_back(b);
        strict_edges.push_back(
            {a, b,
             StrCat(assertion.lhs.front().ToString(), " <= ",
                    assertion.rhs.ToString())});
        break;
      case SetRel::kSuperset:
        adjacency[b].push_back(a);
        strict_edges.push_back(
            {b, a,
             StrCat(assertion.rhs.ToString(), " <= ",
                    assertion.lhs.front().ToString())});
        break;
      default:
        break;
    }
  }
  const std::vector<int> component =
      StronglyConnectedComponents(n, adjacency);
  for (const StrictEdge& edge : strict_edges) {
    if (component[edge.from] == component[edge.to]) {
      findings.push_back(
          {ConsistencyFinding::Severity::kError,
           ConsistencyFinding::Kind::kHierarchyCycle, edge.description,
           "strict subclass edge inside an equivalence cycle: the "
           "integrated is-a hierarchy cannot be acyclic"});
    }
  }

  // --- Per-assertion checks ------------------------------------------
  for (const Assertion& assertion : assertions.assertions()) {
    const ClassRef& lhs = assertion.lhs.front();
    const ClassRef& rhs = assertion.rhs;

    // Observation 3: an assertion whose endpoints both lie below a
    // disjoint / derivation pair is silently ignored by the optimized
    // traversal; surface it for the user.
    for (const Assertion& blocker : assertions.assertions()) {
      if (&blocker == &assertion) continue;
      if (blocker.rel != SetRel::kDisjoint &&
          blocker.rel != SetRel::kDerivation) {
        continue;
      }
      // Orient the blocker's classes onto lhs/rhs sides. The optimized
      // traversal skips every pair at or below the blocker pair (one
      // endpoint may coincide with a blocker class — e.g. c ⊇ d under
      // c' ∅ d with c below c' is pruned as soon as the disjoint pair
      // is processed), so "covered" means below-or-equal; requiring at
      // least one strict descent keeps the blocker pair itself exempt.
      auto covers = [&](const ClassRef& above, const ClassRef& below,
                        bool allow_equal) {
        if (above.schema != below.schema) return false;
        const Schema& schema = (above.schema == s1.name()) ? s1 : s2;
        if (!allow_equal && above.class_name == below.class_name) {
          return false;
        }
        return IsAncestorOrSelf(schema, above.class_name, below.class_name);
      };
      bool lhs_covered = false;
      bool lhs_strict = false;
      for (const ClassRef& c : blocker.lhs) {
        if (covers(c, lhs, true) || covers(c, rhs, true)) lhs_covered = true;
        if (covers(c, lhs, false) || covers(c, rhs, false)) lhs_strict = true;
      }
      const bool rhs_covered = covers(blocker.rhs, rhs, true) ||
                               covers(blocker.rhs, lhs, true);
      const bool rhs_strict = covers(blocker.rhs, rhs, false) ||
                              covers(blocker.rhs, lhs, false);
      if (lhs_covered && rhs_covered && (lhs_strict || rhs_strict)) {
        findings.push_back(
            {ConsistencyFinding::Severity::kWarning,
             ConsistencyFinding::Kind::kShadowedByObservation3,
             StrCat(lhs.ToString(), " ", SetRelName(assertion.rel), " ",
                    rhs.ToString()),
             StrCat("its classes lie below the ", SetRelName(blocker.rel),
                    " pair ", blocker.lhs.front().ToString(), " / ",
                    blocker.rhs.ToString(),
                    "; the optimized traversal skips such pairs "
                    "(observation 3) — confirm the assertion is intended")});
        break;
      }
    }

    if (assertion.rel == SetRel::kDisjoint) {
      // Principle 4 precondition: equivalent ancestors must exist.
      bool has_equivalent_parents = false;
      const Schema& lhs_schema = (lhs.schema == s1.name()) ? s1 : s2;
      const Schema& rhs_schema = (rhs.schema == s1.name()) ? s1 : s2;
      const ClassId lhs_id = lhs_schema.FindClass(lhs.class_name);
      const ClassId rhs_id = rhs_schema.FindClass(rhs.class_name);
      for (ClassId pa : lhs_schema.Ancestors(lhs_id)) {
        for (ClassId pb : rhs_schema.Ancestors(rhs_id)) {
          const AssertionSet::Lookup lookup = assertions.Find(
              {lhs_schema.name(), lhs_schema.class_def(pa).name()},
              {rhs_schema.name(), rhs_schema.class_def(pb).name()});
          if (lookup.found() && lookup.rel == SetRel::kEquivalent) {
            has_equivalent_parents = true;
          }
        }
      }
      if (!has_equivalent_parents) {
        findings.push_back(
            {ConsistencyFinding::Severity::kWarning,
             ConsistencyFinding::Kind::kDisjointWithoutEquivalentParents,
             StrCat(lhs.ToString(), " ! ", rhs.ToString()),
             "no equivalent ancestor classes: Principle 4 generates no "
             "completion rules for this assertion"});
      }
    }

    if (assertion.rel == SetRel::kDerivation &&
        assertion.attr_corrs.empty() && assertion.value_corrs.empty()) {
      findings.push_back(
          {ConsistencyFinding::Severity::kWarning,
           ConsistencyFinding::Kind::kBareDerivation,
           StrCat(lhs.ToString(), " -> ", rhs.ToString()),
           "no attribute or value correspondences: the generated rule "
           "shares no variables and derives attribute-less objects"});
    }
  }
  return findings;
}

bool HasErrors(const std::vector<ConsistencyFinding>& findings) {
  return std::any_of(findings.begin(), findings.end(),
                     [](const ConsistencyFinding& f) {
                       return f.severity ==
                              ConsistencyFinding::Severity::kError;
                     });
}

}  // namespace ooint
