#ifndef OOINT_INTEGRATE_CONTEXT_H_
#define OOINT_INTEGRATE_CONTEXT_H_

#include <set>
#include <string>

#include "assertions/assertion_set.h"
#include "integrate/aif.h"
#include "integrate/integrated_schema.h"
#include "model/schema.h"

namespace ooint {

/// Counters instrumenting an integration run — the measurable quantities
/// behind the paper's Section 6 efficiency claims.
struct IntegrationStats {
  /// Class pairs actually checked against the assertion set.
  size_t pairs_checked = 0;
  /// Pairs pushed to the control queue.
  size_t pairs_enqueued = 0;
  /// Pairs skipped because of the label mechanism (line 7 of
  /// schema_integration).
  size_t pairs_skipped_by_labels = 0;
  /// Sibling pairs removed after an equivalence match (line 10).
  size_t sibling_pairs_removed = 0;
  /// Steps taken by depth-first path_labelling traversals.
  size_t dfs_steps = 0;
  /// Classes merged by equivalence assertions.
  size_t classes_merged = 0;
  /// is-a links inserted into the integrated schema.
  size_t isa_links_inserted = 0;
  /// Redundant is-a links suppressed / removed (Principle 2 + §6.2).
  size_t isa_links_suppressed = 0;
  /// Rules generated (Principles 3, 4 and 5).
  size_t rules_generated = 0;
  /// Cardinality-constraint conflicts resolved via the lattice
  /// (Principle 6).
  size_t cardinality_conflicts_resolved = 0;

  std::string ToString() const;
};

/// Shared state of one two-schema integration run: the (finalized) local
/// schemas, the declared assertion set, the integrated schema under
/// construction, the AIF registry, and the stats counters. The principle
/// implementations (principles.h) all operate on a context.
struct IntegrationContext {
  const Schema* s1 = nullptr;
  const Schema* s2 = nullptr;
  const AssertionSet* assertions = nullptr;
  IntegratedSchema result;
  AifRegistry* aifs = nullptr;  // optional
  IntegrationStats stats;

  /// Derivation assertions already expanded into rules (dedup across
  /// traversal orders).
  std::set<const void*> derivations_done;
  /// Disjoint pairs already handled.
  std::set<std::string> disjoints_done;

  IntegrationContext(const Schema* schema1, const Schema* schema2,
                     const AssertionSet* assertion_set)
      : s1(schema1), s2(schema2), assertions(assertion_set),
        result("IS(" + schema1->name() + "," + schema2->name() + ")") {}

  /// The schema a ClassRef lives in (s1 or s2); nullptr when unknown.
  const Schema* SchemaOf(const ClassRef& ref) const;
  /// The ClassDef behind a ClassRef; nullptr when unknown.
  const ClassDef* ClassOf(const ClassRef& ref) const;
};

}  // namespace ooint

#endif  // OOINT_INTEGRATE_CONTEXT_H_
