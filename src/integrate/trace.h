#ifndef OOINT_INTEGRATE_TRACE_H_
#define OOINT_INTEGRATE_TRACE_H_

#include <string>
#include <vector>

#include "assertions/assertion.h"

namespace ooint {

/// One step of an integration run — the machine-readable counterpart of
/// the paper's Appendix A computation-step listing ("pop and check of
/// the pair on the top of S_b", "call of path_labelling(...)", ...).
struct TraceEvent {
  enum class Kind {
    kPopPair,          // a pair taken from the breadth-first queue S_b
    kCase,             // the assertion case taken for the pair
    kSkipByLabels,     // line 7/34-35: pair skipped via label clash
    kSuppressSibling,  // line 10: sibling pair removed after ≡
    kDfsVisit,         // path_labelling pops a node from S_d
    kDfsLabel,         // a node receives the current label
    kDfsStar,          // a node is marked '*' (no assertion)
    kDfsLink,          // an is-a link is recorded at backtracking
    kInherit,          // label inheritance to a subtree
  };

  Kind kind;
  /// The concepts involved (pair members, DFS node, link endpoints).
  std::string subject;
  /// Case names ("equivalent", "subset", "none", ...) or the label id.
  std::string detail;

  std::string ToString() const;
};

/// An append-only trace recorded by the optimized integrator when
/// requested. Intended for debugging integration runs and for verifying
/// algorithm behaviour step by step (the Appendix A test does exactly
/// that).
class IntegrationTrace {
 public:
  void Add(TraceEvent::Kind kind, std::string subject, std::string detail) {
    events_.push_back({kind, std::move(subject), std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Events of one kind, in order.
  std::vector<const TraceEvent*> OfKind(TraceEvent::Kind kind) const;

  /// True iff an event of `kind` whose subject contains `needle` exists.
  bool Contains(TraceEvent::Kind kind, const std::string& needle) const;

  /// The position of the first event matching (kind, subject-substring),
  /// or -1. Useful for asserting ordering.
  int IndexOf(TraceEvent::Kind kind, const std::string& needle) const;

  /// The whole trace, one line per event.
  std::string ToString() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace ooint

#endif  // OOINT_INTEGRATE_TRACE_H_
