#include "integrate/naive_integrator.h"

#include <deque>
#include <set>
#include <utility>

namespace ooint {

namespace {

/// Virtual start node marker (Fig. 14): the paper adds a start node above
/// the roots of each input graph so both graphs are traversed from a
/// single source.
constexpr ClassId kStartNode = -1;

std::vector<ClassId> ChildrenOrRoots(const Schema& schema, ClassId node) {
  if (node == kStartNode) return schema.Roots();
  return schema.ChildrenOf(node);
}

}  // namespace

Result<IntegrationOutcome> NaiveIntegrator::Integrate(
    const Schema& s1, const Schema& s2, const AssertionSet& assertions,
    AifRegistry* aifs) {
  if (!s1.finalized() || !s2.finalized()) {
    return Status::FailedPrecondition(
        "both schemas must be finalized before integration");
  }
  IntegrationContext ctx(&s1, &s2, &assertions);
  ctx.aifs = aifs;
  PendingOperations ops;

  std::deque<std::pair<ClassId, ClassId>> queue;
  std::set<std::pair<ClassId, ClassId>> enqueued;
  auto push = [&](ClassId a, ClassId b) {
    if (enqueued.emplace(a, b).second) {
      queue.emplace_back(a, b);
      ++ctx.stats.pairs_enqueued;
    }
  };
  push(kStartNode, kStartNode);

  while (!queue.empty()) {
    const auto [n1, n2] = queue.front();
    queue.pop_front();
    const std::vector<ClassId> kids1 = ChildrenOrRoots(s1, n1);
    const std::vector<ClassId> kids2 = ChildrenOrRoots(s2, n2);
    // Line 6: all pairs (N1i, N2j), (N1, N2j), (N1i, N2).
    for (ClassId c1 : kids1) {
      for (ClassId c2 : kids2) push(c1, c2);
    }
    for (ClassId c2 : kids2) push(n1, c2);
    for (ClassId c1 : kids1) push(c1, n2);
    // Line 7: integration according to the assertion between N1 and N2.
    if (n1 == kStartNode || n2 == kStartNode) continue;
    ++ctx.stats.pairs_checked;
    const ClassRef ref1{s1.name(), s1.class_def(n1).name()};
    const ClassRef ref2{s2.name(), s2.class_def(n2).name()};
    ops.Record(assertions, assertions.Find(ref1, ref2), ref1, ref2);
  }

  OOINT_RETURN_IF_ERROR(Materialize(&ctx, ops));
  IntegrationOutcome outcome;
  outcome.schema = std::move(ctx.result);
  outcome.stats = ctx.stats;
  return outcome;
}

}  // namespace ooint
