#include "integrate/context.h"

#include "common/string_util.h"

namespace ooint {

std::string IntegrationStats::ToString() const {
  return StrCat("pairs_checked=", pairs_checked,
                " pairs_enqueued=", pairs_enqueued,
                " pairs_skipped_by_labels=", pairs_skipped_by_labels,
                " sibling_pairs_removed=", sibling_pairs_removed,
                " dfs_steps=", dfs_steps, " classes_merged=", classes_merged,
                " isa_links_inserted=", isa_links_inserted,
                " isa_links_suppressed=", isa_links_suppressed,
                " rules_generated=", rules_generated,
                " cardinality_conflicts_resolved=",
                cardinality_conflicts_resolved);
}

const Schema* IntegrationContext::SchemaOf(const ClassRef& ref) const {
  if (s1 != nullptr && ref.schema == s1->name()) return s1;
  if (s2 != nullptr && ref.schema == s2->name()) return s2;
  return nullptr;
}

const ClassDef* IntegrationContext::ClassOf(const ClassRef& ref) const {
  const Schema* schema = SchemaOf(ref);
  if (schema == nullptr) return nullptr;
  const ClassId id = schema->FindClass(ref.class_name);
  if (id == kInvalidClassId) return nullptr;
  return &schema->class_def(id);
}

}  // namespace ooint
