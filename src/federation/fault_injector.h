#ifndef OOINT_FEDERATION_FAULT_INJECTOR_H_
#define OOINT_FEDERATION_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ooint {

/// What a fault-injection schedule does to one connection attempt.
enum class FaultKind {
  /// The attempt succeeds normally.
  kNone,
  /// The agent is unreachable: the attempt fails with kUnavailable.
  kUnavailable,
  /// The agent answers with a hard deadline error (kDeadlineExceeded).
  kDeadlineExceeded,
  /// The agent answers, but only after `latency_ms` of (virtual) time —
  /// the connection's per-call deadline decides whether that is a
  /// success or a timeout.
  kSlowResponse,
  /// The agent answers in time but the payload is cut off after `keep`
  /// objects. Connections treat a truncated response as a transient
  /// failure (like a short read) and retry it.
  kTruncatedExtent,
};

const char* FaultKindName(FaultKind kind);

/// One scheduled fault.
struct Fault {
  FaultKind kind = FaultKind::kNone;
  /// Virtual time the attempt takes. Defaults per kind (see MakeFault).
  double latency_ms = 0;
  /// kTruncatedExtent: number of leading objects that survive.
  std::size_t keep = 0;
};

/// Seeded per-attempt latency distribution for otherwise-successful
/// attempts — the overload model: agents are *up* but *slow*. Each
/// successful (kNone) draw samples
///   latency = base_ms + U[0,1) * jitter_ms,
/// and with probability `slow_fraction` is replaced by `slow_ms`
/// (a heavy tail: the stragglers that blow per-call deadlines).
/// Latencies interact with deadlines in AgentConnection, so a slow
/// reply may still turn into a timeout there.
struct LatencyProfile {
  double base_ms = 1;
  double jitter_ms = 0;
  /// Probability an attempt is a straggler answering in slow_ms.
  double slow_fraction = 0;
  double slow_ms = 0;
};

/// Deterministic per-agent fault schedules for the connection layer.
///
/// Two modes compose:
///  - *Scripted*: Push/PushN/AlwaysFail enqueue faults an agent's next
///    attempts will see, in FIFO order.
///  - *Seeded*: with a seed and fault rate configured, attempts with an
///    empty script draw from a splitmix64 stream derived from
///    (seed, agent name) — the same seed always yields the same
///    schedule, independent of wall clock or evaluation order across
///    agents.
///
/// The injector never touches real time; latencies are virtual
/// milliseconds interpreted by AgentConnection's virtual clock, which
/// keeps every test and every seeded scenario exactly reproducible.
class FaultInjector {
 public:
  /// Script-only injector: agents behave until faults are pushed.
  FaultInjector() = default;

  /// Seeded injector: every attempt faults with probability
  /// `fault_rate`, with the kind drawn uniformly from the four fault
  /// kinds.
  explicit FaultInjector(std::uint64_t seed, double fault_rate = 0.3)
      : seed_(seed), fault_rate_(fault_rate), seeded_(true) {}

  /// Enqueues `fault` for `agent`'s next unscripted attempt.
  void Push(const std::string& agent, Fault fault);

  /// Enqueues `count` faults of `kind` (default latency/keep).
  void PushN(const std::string& agent, FaultKind kind, int count);

  /// Makes every future attempt against `agent` fail with `kind`
  /// (after any already-scripted faults are consumed).
  void AlwaysFail(const std::string& agent, FaultKind kind);

  /// Opt-in seeded latency shaping for successful attempts (the
  /// overload model; see LatencyProfile). Draws come from a *separate*
  /// per-agent splitmix64 stream salted differently from the fault
  /// stream, so enabling a profile never perturbs an existing seeded
  /// fault schedule — and leaving it off keeps every historical seeded
  /// scenario byte-identical. Scripted faults and non-kNone seeded
  /// draws keep their own latencies.
  void set_latency_profile(const LatencyProfile& profile);

  /// The fault the next attempt against `agent` sees; consumes one
  /// scripted entry (or one seeded draw). Called by AgentConnection
  /// once per attempt, never for breaker fast-failures.
  Fault Next(const std::string& agent);

  /// Attempts scheduled against `agent` so far.
  std::size_t calls(const std::string& agent) const;

  /// A fault of `kind` with the default latency/keep for that kind.
  static Fault MakeFault(FaultKind kind);

 private:
  struct AgentSchedule {
    std::deque<Fault> scripted;
    FaultKind always = FaultKind::kNone;
    bool always_set = false;
    std::uint64_t stream = 0;
    bool stream_seeded = false;
    /// Separate stream for LatencyProfile draws (salted; see .cc), so
    /// latency shaping and fault scheduling never share random state.
    std::uint64_t latency_stream = 0;
    bool latency_seeded = false;
    std::size_t calls = 0;
  };

  AgentSchedule& ScheduleFor(const std::string& agent);

  /// One injector is shared by every connection of a federation; with
  /// overlapped fetching those connections draw from distinct threads,
  /// so the schedule map is locked. Per-agent draw order is still
  /// serial (the connection lock covers each agent's whole call). Heap
  /// allocated so the injector stays movable (tests re-seed by
  /// move-assigning a fresh injector).
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::map<std::string, AgentSchedule> schedules_;
  std::uint64_t seed_ = 0;
  double fault_rate_ = 0;
  bool seeded_ = false;
  LatencyProfile latency_;
  bool latency_enabled_ = false;
};

}  // namespace ooint

#endif  // OOINT_FEDERATION_FAULT_INJECTOR_H_
