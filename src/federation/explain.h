#ifndef OOINT_FEDERATION_EXPLAIN_H_
#define OOINT_FEDERATION_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/fsm.h"

namespace ooint {

/// A federated query plan: which component databases a query against a
/// global concept touches, and through which rules — the "automatic
/// decomposition and translation of queries submitted to an integrated
/// schema" the paper's conclusion points at.
struct QueryPlan {
  /// The queried global concept.
  std::string concept_name;
  /// Every concept reachable from it through rule bodies (including
  /// itself), in dependency order.
  std::vector<std::string> concepts;
  /// The ground (agent schema, class) extents that will be scanned.
  std::vector<ClassRef> ground_scans;
  /// Indexes into GlobalSchema::rules of the rules involved.
  std::vector<size_t> rules;
  /// Agents contacted (schema names, deduplicated).
  std::vector<std::string> agents;
  /// When a DegradedInfo was supplied: the plan's agents that are
  /// currently skipped, and the plan's concepts whose extents are
  /// therefore incomplete. Empty for a healthy federation.
  std::vector<std::string> skipped_agents;
  std::vector<std::string> incomplete_concepts;
  /// Agents registered with ground sources that the plan does *not*
  /// touch: a demand-driven query never contacts them (relevance
  /// pruning). Unlike skipped_agents this loses nothing — the answer is
  /// identical to a full evaluation's.
  std::vector<std::string> pruned_agents;

  /// Demand-mode annotations, filled by FsmClient::Explain when the
  /// client was connected with QueryMode::kDemandDriven.
  bool demand_mode = false;
  bool magic_applied = false;
  std::string goal_adornment;
  std::string fallback_reason;
  /// Measured evaluation counters of the client's cached outcome for
  /// this exact query, when one exists (present == true).
  struct Counters {
    bool present = false;
    bool from_cache = false;
    size_t facts_derived = 0;
    size_t extents_fetched = 0;
    size_t join_probes = 0;
    size_t cache_hits = 0;
    /// Join-kernel counters (DESIGN.md §4l): postings decoded off
    /// cursors, merge/bitmap element steps, galloping-search hops, and
    /// how often the cost-based planner overrode the connectivity SIP.
    size_t cursor_steps = 0;
    size_t merge_steps = 0;
    size_t gallop_steps = 0;
    size_t plan_reorders = 0;
  };
  Counters counters;

  /// Runtime parallelism annotations (FsmClient::Explain). The overlap
  /// saving is the summed per-agent fetch time minus the measured batch
  /// wall time — how much latency concurrent fetching hid; 0 when the
  /// client runs single-threaded or nothing was fetched overlapped.
  int num_threads = 1;
  double fetch_overlap_saved_ms = 0;

  /// Overload-control annotations (FsmClient::Explain): the query
  /// deadline every query runs under and a snapshot of the admission
  /// controller (queue depth, wait time, shed counts). `admission` is
  /// meaningful only when admission_enabled.
  double query_deadline_ms = CancelToken::kNoDeadline;
  bool admission_enabled = false;
  int admission_max_concurrent = 0;
  int admission_max_queue_depth = 0;
  AdmissionController::Stats admission;

  /// Live-update annotations (FsmClient::Explain on a connection that
  /// has seen ApplyDelta): the cumulative counting/DRed maintenance
  /// story, and how the (agent, epoch)-scoped demand cache fared —
  /// entries retained (their relevant agents untouched, still warm)
  /// vs. evicted across all deltas so far.
  bool live_updates = false;
  size_t delta_batches = 0;
  size_t delta_facts_inserted = 0;
  size_t delta_facts_deleted = 0;
  size_t delta_overdeleted = 0;
  size_t delta_rederived = 0;
  size_t delta_rounds = 0;
  size_t cache_entries_retained = 0;
  size_t cache_entries_evicted = 0;

  /// Serving-pipeline annotations (FsmClient::Explain): the connection's
  /// cumulative cursor / streaming / coalescing counters (DESIGN.md
  /// §4k). `coalesce_demand` mirrors the connection option.
  bool coalesce_demand = false;
  size_t cursors_opened = 0;
  size_t cursors_expired = 0;
  size_t pages_served = 0;
  size_t rows_streamed = 0;
  size_t serving_heap_evictions = 0;
  size_t coalesce_hits = 0;
  size_t coalesce_leaders = 0;

  /// Concepts of this plan whose extents were cut short by the query
  /// deadline (a sound subset — see DegradedInfo::deadline_truncated).
  /// Disjoint from incomplete_concepts, which records fault-skips.
  bool deadline_truncated = false;
  std::vector<std::string> truncated_concepts;

  /// True when the plan touches a skipped agent or was cut short by the
  /// deadline — the answer this plan produces is sound but possibly
  /// incomplete.
  bool degraded() const {
    return !skipped_agents.empty() || deadline_truncated;
  }

  std::string ToString() const;
};

/// Computes the plan for querying `concept_name` against `global`:
/// transitively collects the rules defining the concept, the concepts
/// their bodies reference, and the ground sources feeding them. A
/// concept with no rules and no ground sources yields a valid plan with
/// empty scans (the query returns nothing). Passing the federation's
/// current DegradedInfo (FsmClient::degraded()) annotates the plan with
/// the skipped agents and incomplete concepts it actually touches.
Result<QueryPlan> ExplainQuery(const GlobalSchema& global,
                               const std::string& concept_name,
                               const DegradedInfo* degraded = nullptr);

}  // namespace ooint

#endif  // OOINT_FEDERATION_EXPLAIN_H_
