#include "federation/fsm_client.h"

#include "common/string_util.h"

namespace ooint {

Status FsmClient::Connect(Fsm::Strategy strategy) {
  Result<GlobalSchema> global = fsm_->IntegrateAll(strategy);
  if (!global.ok()) return global.status();
  global_ = std::move(global).value();
  Result<std::unique_ptr<Evaluator>> evaluator =
      fsm_->MakeEvaluator(global_);
  if (!evaluator.ok()) return evaluator.status();
  evaluator_ = std::move(evaluator).value();
  return Status::OK();
}

Result<std::string> FsmClient::GlobalNameOf(
    const std::string& schema_name, const std::string& class_name) const {
  for (const auto& [global_name, sources] : global_.ground_sources) {
    for (const ClassRef& source : sources) {
      if (source.schema == schema_name && source.class_name == class_name) {
        return global_name;
      }
    }
  }
  return Status::NotFound(StrCat("no global class integrates ", schema_name,
                                 ".", class_name));
}

Result<std::vector<Bindings>> FsmClient::Run(const Query& query) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Connect() before Run()");
  }
  return evaluator_->Query(query.pattern());
}

Result<std::vector<const Fact*>> FsmClient::Extent(
    const std::string& concept_name) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Connect() before Extent()");
  }
  return evaluator_->FactsOf(concept_name);
}

}  // namespace ooint
