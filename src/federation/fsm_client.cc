#include "federation/fsm_client.h"

#include "common/string_util.h"

namespace ooint {

Status FsmClient::Connect(Fsm::Strategy strategy,
                          const FederationOptions& options) {
  // A failed (re)connect must leave the client safely disconnected, not
  // holding a stale or half-built evaluator.
  evaluator_.reset();
  connections_.clear();
  Result<GlobalSchema> global = fsm_->IntegrateAll(strategy);
  if (!global.ok()) return global.status();
  global_ = std::move(global).value();
  Result<FederatedEvaluator> fed =
      fsm_->MakeFederatedEvaluator(global_, options);
  if (!fed.ok()) return fed.status();
  evaluator_ = std::move(fed.value().evaluator);
  connections_ = std::move(fed.value().connections);
  return Status::OK();
}

const DegradedInfo& FsmClient::degraded() const {
  static const DegradedInfo kComplete;
  return evaluator_ == nullptr ? kComplete : evaluator_->degraded();
}

std::vector<AgentHealth> FsmClient::ConnectionHealth() const {
  std::vector<AgentHealth> health;
  health.reserve(connections_.size());
  for (const AgentConnection* connection : connections_) {
    health.push_back({connection->agent_name(), connection->breaker_state(),
                      connection->stats()});
  }
  return health;
}

Result<std::string> FsmClient::GlobalNameOf(
    const std::string& schema_name, const std::string& class_name) const {
  for (const auto& [global_name, sources] : global_.ground_sources) {
    for (const ClassRef& source : sources) {
      if (source.schema == schema_name && source.class_name == class_name) {
        return global_name;
      }
    }
  }
  return Status::NotFound(StrCat("no global class integrates ", schema_name,
                                 ".", class_name));
}

Result<std::vector<Bindings>> FsmClient::Run(const Query& query) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Connect() before Run()");
  }
  return evaluator_->Query(query.pattern());
}

Result<std::vector<const Fact*>> FsmClient::Extent(
    const std::string& concept_name) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Connect() before Extent()");
  }
  return evaluator_->FactsOf(concept_name);
}

}  // namespace ooint
