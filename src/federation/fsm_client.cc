#include "federation/fsm_client.h"

#include <algorithm>
#include <mutex>

#include "common/string_util.h"

namespace ooint {

Status FsmClient::Connect(Fsm::Strategy strategy,
                          const FederationOptions& options) {
  // Serving drains before the world is swapped out under it.
  std::unique_lock<std::shared_mutex> data_lock(data_mu_);
  last_strategy_ = strategy;
  last_options_ = options;
  connected_once_ = true;
  // A failed (re)connect must leave the client safely disconnected, not
  // holding a stale or half-built evaluator. The engine detaches its
  // liveness filter on destruction, so it goes before the evaluator.
  engine_.reset();
  evaluator_.reset();
  connections_.clear();
  admission_.reset();
  query_deadline_ms_ = CancelToken::kNoDeadline;
  delta_batches_.store(0, std::memory_order_relaxed);
  cache_delta_retained_.store(0, std::memory_order_relaxed);
  cache_delta_evicted_.store(0, std::memory_order_relaxed);
  // Serving state restarts with the connection. No in-flight leaders
  // can exist here (they hold data_mu_ shared), so the window is empty.
  coalesce_demand_ = false;
  {
    std::lock_guard<std::mutex> flight_lock(flight_mu_);
    inflight_.clear();
  }
  cursors_opened_.store(0, std::memory_order_relaxed);
  cursors_closed_.store(0, std::memory_order_relaxed);
  cursors_expired_.store(0, std::memory_order_relaxed);
  pages_served_.store(0, std::memory_order_relaxed);
  rows_streamed_.store(0, std::memory_order_relaxed);
  heap_evictions_.store(0, std::memory_order_relaxed);
  coalesce_hits_.store(0, std::memory_order_relaxed);
  coalesce_leaders_.store(0, std::memory_order_relaxed);
  // Cached outcomes hold pointers into the old evaluator's sources and
  // predate whatever made the caller reconnect: always a new epoch.
  InvalidateQueryCache();
  fault_epoch_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::unique_lock<std::shared_mutex> lock(cache_mu_);
    demand_degraded_ = DegradedInfo();
  }
  query_mode_ = options.query_mode;
  Result<GlobalSchema> global = fsm_->IntegrateAll(strategy);
  if (!global.ok()) return global.status();
  global_ = std::move(global).value();
  Result<FederatedEvaluator> fed =
      fsm_->MakeFederatedEvaluator(global_, options);
  if (!fed.ok()) return fed.status();
  evaluator_ = std::move(fed.value().evaluator);
  connections_ = std::move(fed.value().connections);
  query_deadline_ms_ = options.query_deadline_ms;
  coalesce_demand_ = options.coalesce_demand &&
                     query_mode_ == QueryMode::kDemandDriven;
  if (options.admission.max_concurrent > 0) {
    admission_ = std::make_unique<AdmissionController>(options.admission);
  }
  if (options.live_updates && query_mode_ == QueryMode::kMaterialized) {
    // The eager fixpoint was skipped above; the engine does the counted
    // initial load instead (strictly — see FederationOptions).
    Result<std::unique_ptr<IncrementalEvaluator>> engine =
        IncrementalEvaluator::Adopt(evaluator_.get());
    if (!engine.ok()) {
      evaluator_.reset();
      connections_.clear();
      admission_.reset();
      return engine.status();
    }
    engine_ = std::move(engine).value();
  }
  return Status::OK();
}

DegradedInfo FsmClient::degraded() const {
  if (evaluator_ == nullptr) return DegradedInfo();
  if (query_mode_ == QueryMode::kDemandDriven) {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    return demand_degraded_;
  }
  return evaluator_->degraded();
}

std::vector<AgentHealth> FsmClient::ConnectionHealth() const {
  std::vector<AgentHealth> health;
  health.reserve(connections_.size());
  for (const AgentConnection* connection : connections_) {
    health.push_back({connection->agent_name(), connection->breaker_state(),
                      connection->stats()});
  }
  return health;
}

Result<std::string> FsmClient::GlobalNameOf(
    const std::string& schema_name, const std::string& class_name) const {
  for (const auto& [global_name, sources] : global_.ground_sources) {
    for (const ClassRef& source : sources) {
      if (source.schema == schema_name && source.class_name == class_name) {
        return global_name;
      }
    }
  }
  return Status::NotFound(StrCat("no global class integrates ", schema_name,
                                 ".", class_name));
}

std::string FsmClient::HealthSignature() const {
  std::string signature;
  for (const AgentConnection* connection : connections_) {
    signature += StrCat(connection->agent_name(), "=",
                        BreakerStateName(connection->breaker_state()), ";");
  }
  return signature;
}

void FsmClient::InvalidateQueryCache() const {
  {
    std::unique_lock<std::shared_mutex> lock(cache_mu_);
    cache_.clear();
  }
  cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void FsmClient::BumpFaultEpoch() {
  fault_epoch_.fetch_add(1, std::memory_order_acq_rel);
  cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
}

AgentConnection* FsmClient::FindConnection(
    const std::string& agent_name) const {
  for (AgentConnection* connection : connections_) {
    if (connection->agent_name() == agent_name) return connection;
  }
  return nullptr;
}

bool FsmClient::EpochsCurrent(const CacheEntry& entry) const {
  for (const auto& [agent, epoch] : entry.agent_epochs) {
    const AgentConnection* connection = FindConnection(agent);
    if (connection == nullptr || connection->delta_epoch() != epoch) {
      return false;
    }
  }
  return true;
}

Status FsmClient::ApplyDelta(const ExtentDelta& delta) {
  std::unique_lock<std::shared_mutex> data_lock(data_mu_);
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Connect() before ApplyDelta()");
  }
  AgentConnection* connection = FindConnection(delta.agent_name);
  if (connection == nullptr) {
    return Status::NotFound(
        StrCat("no agent connection named '", delta.agent_name, "'"));
  }
  if (query_mode_ == QueryMode::kMaterialized && engine_ == nullptr) {
    return Status::FailedPrecondition(
        "materialized connection cannot maintain its derived store; "
        "Connect() with FederationOptions::live_updates to accept deltas");
  }
  // Epoch validation happens before any state changes: a stale feed is
  // rejected with the connection (and the derived store) untouched.
  Status accepted = connection->AcceptDelta(delta);
  if (!accepted.ok()) return accepted;
  if (engine_ != nullptr) {
    Result<DeltaMaintenanceStats> batch = engine_->ApplyExtentDelta(
        delta.agent_name, delta.inserted, delta.deleted);
    if (!batch.ok()) return batch.status();
  }
  delta_batches_.fetch_add(1, std::memory_order_relaxed);
  // Sweep the demand cache by (agent, epoch): only entries whose
  // relevant agents include this delta's go cold; everything else stays
  // warm (lookups still re-validate epochs via EpochsCurrent).
  std::unique_lock<std::shared_mutex> cache_lock(cache_mu_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.agent_epochs.count(delta.agent_name) > 0) {
      it = cache_.erase(it);
      cache_delta_evicted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
      cache_delta_retained_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status FsmClient::Refresh() {
  if (!connected_once_) {
    return Status::FailedPrecondition("call Connect() before Refresh()");
  }
  return Connect(last_strategy_, last_options_);
}

Result<std::shared_ptr<const Evaluator::DemandOutcome>> FsmClient::Demand(
    const OTerm& pattern) const {
  const std::string key = pattern.ToString();
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.epoch == fault_epoch() &&
        it->second.health_signature == HealthSignature() &&
        EpochsCurrent(it->second)) {
      std::shared_ptr<const Evaluator::DemandOutcome> outcome =
          it->second.outcome;
      lock.unlock();
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::shared_mutex> write(cache_mu_);
      demand_degraded_ = outcome->degraded;
      return outcome;
    }
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  if (!coalesce_demand_) return EvaluateAndCache(pattern, key);

  // Single-flight window (DESIGN.md §4k): the first miss on a key
  // leads; concurrent misses on the same key join and adopt the
  // leader's outcome instead of re-running the magic-set pass over the
  // same seeds. Everyone here already holds data_mu_ shared, so a
  // joiner waiting on the leader cannot deadlock against a delta
  // writer: the leader needs no further lock to finish.
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted) it->second = std::make_shared<InFlight>();
    flight = it->second;
    leader = inserted;
  }
  if (!leader) {
    coalesce_hits_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> wait_lock(flight->mu);
    flight->cv.wait(wait_lock, [&flight] { return flight->done; });
    const Status status = flight->status;
    const std::shared_ptr<const Evaluator::DemandOutcome> adopted =
        flight->outcome;
    wait_lock.unlock();
    // Adopt healthy outcomes only. A deadline-truncated answer is
    // served once, to the leader, and never replayed (the PR 7 rule);
    // a failed leader tells us nothing about our own fault draw.
    // Either way this joiner evaluates for itself.
    if (status.ok() && adopted != nullptr &&
        !adopted->degraded.deadline_truncated) {
      std::unique_lock<std::shared_mutex> write(cache_mu_);
      demand_degraded_ = adopted->degraded;
      return adopted;
    }
    return EvaluateAndCache(pattern, key);
  }
  coalesce_leaders_.fetch_add(1, std::memory_order_relaxed);
  Result<std::shared_ptr<const Evaluator::DemandOutcome>> result =
      EvaluateAndCache(pattern, key);
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->status = result.ok() ? Status::OK() : result.status();
    flight->outcome = result.ok() ? result.value() : nullptr;
  }
  flight->cv.notify_all();
  {
    // Close the window: later misses start a fresh flight (the cache
    // answers them unless something invalidated this outcome already).
    std::lock_guard<std::mutex> lock(flight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second == flight) inflight_.erase(it);
  }
  return result;
}

Result<std::shared_ptr<const Evaluator::DemandOutcome>>
FsmClient::EvaluateAndCache(const OTerm& pattern,
                            const std::string& key) const {
  // Evaluate outside the lock so concurrent queries for different keys
  // (and even racing misses on the same key) overlap; the later store
  // simply wins. Each miss runs under its own fresh deadline token (a
  // cache hit costs no budget; only real evaluation does).
  const CancelToken token =
      query_deadline_ms_ == CancelToken::kNoDeadline
          ? CancelToken()
          : CancelToken::WithBudget(query_deadline_ms_);
  Result<Evaluator::DemandOutcome> outcome =
      evaluator_->EvaluateDemand(pattern, token);
  if (!outcome.ok()) return outcome.status();
  auto shared = std::make_shared<const Evaluator::DemandOutcome>(
      std::move(outcome).value());
  // The signature is taken *after* evaluation: if this very run tripped
  // a breaker, entries stored under the old signature (including this
  // one's contemporaries) will miss and recompute.
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  demand_degraded_ = shared->degraded;
  if (!shared->degraded.deadline_truncated) {
    // A deadline-truncated answer is sound for *this* query's budget
    // but must never be replayed to a later query as the full answer —
    // truncated outcomes are served once and recomputed.
    CacheEntry entry{shared, fault_epoch(), HealthSignature(), {}};
    // Snapshot the delta epochs of the outcome's *relevant* agents —
    // everything the relevance pruning did not exclude. A later delta
    // to a pruned agent cannot change this answer, so the entry
    // survives it warm; a delta to any recorded agent evicts it.
    for (const AgentConnection* connection : connections_) {
      const std::string& name = connection->agent_name();
      if (std::find(shared->pruned_agents.begin(), shared->pruned_agents.end(),
                    name) == shared->pruned_agents.end()) {
        entry.agent_epochs[name] = connection->delta_epoch();
      }
    }
    cache_[key] = std::move(entry);
  }
  return shared;
}

Result<std::vector<Bindings>> FsmClient::Run(const Query& query) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Connect() before Run()");
  }
  // Admission first: a shed query does no evaluation work at all, and a
  // queued one must not block delta application while it waits.
  const AdmissionSlot slot(admission_.get());
  if (!slot.status().ok()) return slot.status();
  std::shared_lock<std::shared_mutex> data_lock(data_mu_);
  if (query_mode_ == QueryMode::kDemandDriven) {
    OOINT_ASSIGN_OR_RETURN(auto outcome, Demand(query.pattern()));
    return outcome->rows;
  }
  return evaluator_->Query(query.pattern());
}

Result<std::vector<const Fact*>> FsmClient::Extent(
    const std::string& concept_name) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Connect() before Extent()");
  }
  const AdmissionSlot slot(admission_.get());
  if (!slot.status().ok()) return slot.status();
  std::shared_lock<std::shared_mutex> data_lock(data_mu_);
  if (query_mode_ == QueryMode::kDemandDriven) {
    // The unbound pattern: demand degenerates to the full (but still
    // relevance-restricted) closure of the concept, which is exactly
    // its materialized extent.
    OTerm pattern;
    pattern.object = TermArg::Variable("_self");
    pattern.class_name = concept_name;
    OOINT_ASSIGN_OR_RETURN(auto outcome, Demand(pattern));
    return outcome->goal_facts;
  }
  return evaluator_->FactsOf(concept_name);
}

Result<QueryPlan> FsmClient::Explain(const Query& query) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Connect() before Explain()");
  }
  // Deliberately no admission slot (overload must stay observable
  // during overload), but the data lock keeps the plan's maintenance
  // stats consistent with a concurrent delta batch.
  std::shared_lock<std::shared_mutex> data_lock(data_mu_);
  const DegradedInfo info = degraded();
  OOINT_ASSIGN_OR_RETURN(
      QueryPlan plan,
      ExplainQuery(global_, query.pattern().class_name, &info));
  plan.demand_mode = query_mode_ == QueryMode::kDemandDriven;
  plan.num_threads = num_threads();
  plan.query_deadline_ms = query_deadline_ms_;
  if (admission_ != nullptr) {
    plan.admission_enabled = true;
    plan.admission_max_concurrent = admission_->policy().max_concurrent;
    plan.admission_max_queue_depth = admission_->policy().max_queue_depth;
    plan.admission = admission_->stats();
  }
  plan.coalesce_demand = coalesce_demand_;
  plan.cursors_opened = cursors_opened_.load(std::memory_order_relaxed);
  plan.cursors_expired = cursors_expired_.load(std::memory_order_relaxed);
  plan.pages_served = pages_served_.load(std::memory_order_relaxed);
  plan.rows_streamed = rows_streamed_.load(std::memory_order_relaxed);
  plan.serving_heap_evictions =
      heap_evictions_.load(std::memory_order_relaxed);
  plan.coalesce_hits = coalesce_hits_.load(std::memory_order_relaxed);
  plan.coalesce_leaders = coalesce_leaders_.load(std::memory_order_relaxed);
  plan.live_updates = engine_ != nullptr;
  plan.delta_batches = delta_batches_.load(std::memory_order_relaxed);
  plan.cache_entries_retained =
      cache_delta_retained_.load(std::memory_order_relaxed);
  plan.cache_entries_evicted =
      cache_delta_evicted_.load(std::memory_order_relaxed);
  if (engine_ != nullptr) {
    const DeltaMaintenanceStats& maintenance = engine_->cumulative();
    plan.delta_facts_inserted = maintenance.facts_inserted;
    plan.delta_facts_deleted = maintenance.facts_deleted;
    plan.delta_overdeleted = maintenance.overdeleted;
    plan.delta_rederived = maintenance.rederived;
    plan.delta_rounds = maintenance.rounds;
  }
  if (!plan.demand_mode) {
    // Materialized connections fetched at Connect(); the evaluator's
    // counters say how much latency the overlapped batch hid.
    const Evaluator::Stats& stats = evaluator_->stats();
    plan.fetch_overlap_saved_ms =
        std::max(0.0, stats.fetch_ms_sum - stats.fetch_wall_ms);
    return plan;
  }

  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  auto it = cache_.find(query.pattern().ToString());
  if (it != cache_.end()) {
    const Evaluator::DemandOutcome& outcome = *it->second.outcome;
    plan.magic_applied = outcome.magic_applied;
    plan.goal_adornment = outcome.goal_adornment;
    plan.fallback_reason = outcome.fallback_reason;
    // The measured pruning beats the static estimate (nested
    // descriptors can force a fallback to fetching everything).
    plan.pruned_agents = outcome.pruned_agents;
    plan.counters.present = true;
    plan.counters.from_cache = it->second.epoch == fault_epoch() &&
                               it->second.health_signature == HealthSignature();
    plan.counters.facts_derived = outcome.stats.derived_facts;
    plan.counters.extents_fetched = outcome.stats.extents_fetched;
    plan.counters.join_probes = outcome.stats.index_probes;
    plan.counters.cursor_steps = outcome.stats.cursor_steps;
    plan.counters.merge_steps = outcome.stats.merge_steps;
    plan.counters.gallop_steps = outcome.stats.gallop_steps;
    plan.counters.plan_reorders = outcome.stats.plan_reorders;
    plan.counters.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    plan.fetch_overlap_saved_ms = std::max(
        0.0, outcome.stats.fetch_ms_sum - outcome.stats.fetch_wall_ms);
  }
  return plan;
}

Result<std::unique_ptr<ServingCursor>> FsmClient::OpenCursor(
    const Query& query, const ServingOptions& options) const {
  if (evaluator_ == nullptr) {
    return Status::FailedPrecondition("call Connect() before OpenCursor()");
  }
  if (options.page_size == 0) {
    return Status::InvalidArgument("ServingOptions::page_size must be > 0");
  }
  if (options.idle_expiry_ms < 0) {
    return Status::InvalidArgument(
        "ServingOptions::idle_expiry_ms must be >= 0");
  }
  // The evaluation happens at open (or is coalesced / cache-served), so
  // the admission slot guards this call, like Run(). NextPage() only
  // drains the pipeline and is deliberately exempt.
  const AdmissionSlot slot(admission_.get());
  if (!slot.status().ok()) return slot.status();
  std::shared_lock<std::shared_mutex> data_lock(data_mu_);

  PipelineSpec spec;
  spec.filters = options.filters;
  spec.project = options.project;
  // Pages always carry distinct rows — Run()'s answer semantics; the
  // raw query stream is duplicate-inclusive (see OpenQueryStream).
  spec.distinct = true;
  spec.order_by = options.order_by;
  spec.descending = options.descending;
  spec.limit = options.limit;

  std::unique_ptr<RowSource> source;
  std::shared_ptr<const Evaluator::DemandOutcome> outcome;
  DegradedInfo degraded;
  bool pin_delta_epoch = false;
  if (query_mode_ == QueryMode::kDemandDriven) {
    OOINT_ASSIGN_OR_RETURN(outcome, Demand(query.pattern()));
    degraded = outcome->degraded;
    // Stream off the outcome's private sub-evaluator: candidates come
    // from a PostingsCursor snapshot of its columnar store, and the
    // shared outcome keeps that store alive — snapshot semantics across
    // later deltas. The materialized rows are the (rare) fallback.
    Result<std::unique_ptr<RowSource>> stream =
        outcome->sub->OpenQueryStream(query.pattern());
    if (stream.ok()) {
      source = std::move(stream).value();
    } else {
      source = std::make_unique<VectorRowSource>(&outcome->rows);
    }
  } else {
    // Materialized cursors read the live derived store; they pin the
    // delta epoch and fail with the documented epoch error once
    // ApplyDelta moves the store under them.
    degraded = evaluator_->degraded();
    OOINT_ASSIGN_OR_RETURN(source,
                           evaluator_->OpenQueryStream(query.pattern()));
    pin_delta_epoch = true;
  }
  auto pipeline =
      std::make_unique<ResultPipeline>(std::move(source), std::move(spec));
  cursors_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<ServingCursor>(new ServingCursor(
      this, options, std::move(outcome), std::move(pipeline),
      std::move(degraded), fault_epoch(),
      delta_batches_.load(std::memory_order_relaxed), pin_delta_epoch));
}

ServingStats FsmClient::serving_stats() const {
  ServingStats stats;
  stats.cursors_opened = cursors_opened_.load(std::memory_order_relaxed);
  stats.cursors_closed = cursors_closed_.load(std::memory_order_relaxed);
  stats.cursors_expired = cursors_expired_.load(std::memory_order_relaxed);
  stats.pages_served = pages_served_.load(std::memory_order_relaxed);
  stats.rows_streamed = rows_streamed_.load(std::memory_order_relaxed);
  stats.heap_evictions = heap_evictions_.load(std::memory_order_relaxed);
  stats.coalesce_hits = coalesce_hits_.load(std::memory_order_relaxed);
  stats.coalesce_leaders = coalesce_leaders_.load(std::memory_order_relaxed);
  return stats;
}

void FsmClient::AdvanceServingClock(double ms) {
  if (ms <= 0) return;
  double now = serving_now_ms_.load(std::memory_order_relaxed);
  while (!serving_now_ms_.compare_exchange_weak(now, now + ms,
                                                std::memory_order_acq_rel)) {
  }
}

}  // namespace ooint
