#include "federation/fault_injector.h"

namespace ooint {

namespace {

/// splitmix64: tiny, high-quality, and fully deterministic — the same
/// generator the FactStore hashes build on.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

double UnitInterval(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "None";
    case FaultKind::kUnavailable:
      return "Unavailable";
    case FaultKind::kDeadlineExceeded:
      return "DeadlineExceeded";
    case FaultKind::kSlowResponse:
      return "SlowResponse";
    case FaultKind::kTruncatedExtent:
      return "TruncatedExtent";
  }
  return "Unknown";
}

Fault FaultInjector::MakeFault(FaultKind kind) {
  Fault fault;
  fault.kind = kind;
  switch (kind) {
    case FaultKind::kNone:
      fault.latency_ms = 1;
      break;
    case FaultKind::kUnavailable:
      fault.latency_ms = 1;  // fast rejection
      break;
    case FaultKind::kDeadlineExceeded:
      fault.latency_ms = 0;  // connection charges its own deadline
      break;
    case FaultKind::kSlowResponse:
      fault.latency_ms = 250;  // well past any sane per-call deadline
      break;
    case FaultKind::kTruncatedExtent:
      fault.latency_ms = 1;
      fault.keep = 1;
      break;
  }
  return fault;
}

FaultInjector::AgentSchedule& FaultInjector::ScheduleFor(
    const std::string& agent) {
  AgentSchedule& schedule = schedules_[agent];
  if (seeded_ && !schedule.stream_seeded) {
    schedule.stream = seed_ ^ HashName(agent);
    schedule.stream_seeded = true;
  }
  if (latency_enabled_ && !schedule.latency_seeded) {
    // Salted so the latency stream is independent of the fault stream
    // even for the same (seed, agent) pair.
    schedule.latency_stream =
        seed_ ^ HashName(agent) ^ 0xa5a5a5a5deadbeefULL;
    schedule.latency_seeded = true;
  }
  return schedule;
}

void FaultInjector::set_latency_profile(const LatencyProfile& profile) {
  std::lock_guard<std::mutex> lock(*mu_);
  latency_ = profile;
  latency_enabled_ = true;
}

void FaultInjector::Push(const std::string& agent, Fault fault) {
  std::lock_guard<std::mutex> lock(*mu_);
  ScheduleFor(agent).scripted.push_back(fault);
}

void FaultInjector::PushN(const std::string& agent, FaultKind kind,
                          int count) {
  std::lock_guard<std::mutex> lock(*mu_);
  AgentSchedule& schedule = ScheduleFor(agent);
  for (int i = 0; i < count; ++i) schedule.scripted.push_back(MakeFault(kind));
}

void FaultInjector::AlwaysFail(const std::string& agent, FaultKind kind) {
  std::lock_guard<std::mutex> lock(*mu_);
  AgentSchedule& schedule = ScheduleFor(agent);
  schedule.always = kind;
  schedule.always_set = true;
}

Fault FaultInjector::Next(const std::string& agent) {
  std::lock_guard<std::mutex> lock(*mu_);
  AgentSchedule& schedule = ScheduleFor(agent);
  ++schedule.calls;
  if (!schedule.scripted.empty()) {
    const Fault fault = schedule.scripted.front();
    schedule.scripted.pop_front();
    return fault;
  }
  if (schedule.always_set) return MakeFault(schedule.always);
  if (seeded_ && fault_rate_ > 0) {
    if (UnitInterval(SplitMix64(&schedule.stream)) < fault_rate_) {
      static const FaultKind kKinds[] = {
          FaultKind::kUnavailable, FaultKind::kDeadlineExceeded,
          FaultKind::kSlowResponse, FaultKind::kTruncatedExtent};
      const std::uint64_t pick = SplitMix64(&schedule.stream) % 4;
      return MakeFault(kKinds[pick]);
    }
  }
  Fault ok = MakeFault(FaultKind::kNone);
  if (latency_enabled_) {
    // Successful attempt under a latency profile: shape its latency
    // from the dedicated per-agent stream.
    const double roll = UnitInterval(SplitMix64(&schedule.latency_stream));
    const double jitter = UnitInterval(SplitMix64(&schedule.latency_stream));
    ok.latency_ms = roll < latency_.slow_fraction
                        ? latency_.slow_ms
                        : latency_.base_ms + jitter * latency_.jitter_ms;
  }
  return ok;
}

std::size_t FaultInjector::calls(const std::string& agent) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = schedules_.find(agent);
  return it == schedules_.end() ? 0 : it->second.calls;
}

}  // namespace ooint
