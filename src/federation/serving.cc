#include "federation/serving.h"

#include <shared_mutex>
#include <utility>

#include "common/string_util.h"
#include "federation/fsm_client.h"

namespace ooint {

ServingCursor::ServingCursor(
    const FsmClient* client, ServingOptions options,
    std::shared_ptr<const Evaluator::DemandOutcome> outcome,
    std::unique_ptr<ResultPipeline> pipeline, DegradedInfo degraded,
    std::uint64_t fault_epoch, size_t delta_batches, bool pin_delta_epoch)
    : client_(client),
      options_(std::move(options)),
      outcome_(std::move(outcome)),
      pipeline_(std::move(pipeline)),
      degraded_(std::move(degraded)),
      fault_epoch_(fault_epoch),
      delta_batches_(delta_batches),
      pin_delta_epoch_(pin_delta_epoch),
      last_use_ms_(client->serving_now_ms()) {}

ServingCursor::~ServingCursor() { Close(); }

void ServingCursor::Close() {
  if (closed_) return;
  closed_ = true;
  if (pipeline_ != nullptr) {
    final_stats_ = pipeline_->stats();
    // Fold the not-yet-reported evictions into the connection counter.
    client_->heap_evictions_.fetch_add(
        final_stats_.heap_evictions - reported_evictions_,
        std::memory_order_relaxed);
    reported_evictions_ = final_stats_.heap_evictions;
  }
  pipeline_.reset();
  outcome_.reset();
  client_->cursors_closed_.fetch_add(1, std::memory_order_relaxed);
}

const PipelineStats& ServingCursor::pipeline_stats() const {
  return pipeline_ != nullptr ? pipeline_->stats() : final_stats_;
}

Result<Page> ServingCursor::NextPage() {
  if (closed_) {
    return Status::FailedPrecondition("cursor is closed");
  }
  // Idle expiry on the serving clock: strictly exceeding the allowance
  // expires; landing exactly on it survives (the CancelToken pinned
  // boundary rule).
  const double now = client_->serving_now_ms();
  if (options_.idle_expiry_ms > 0 &&
      now - last_use_ms_ > options_.idle_expiry_ms) {
    client_->cursors_expired_.fetch_add(1, std::memory_order_relaxed);
    Close();
    return Status::DeadlineExceeded(
        StrCat("cursor idle for ", now - last_use_ms_,
               "ms (allowance ", options_.idle_expiry_ms, "ms)"));
  }
  last_use_ms_ = now;

  // Shared against ApplyDelta / Connect (writers): a page is drained
  // from a quiescent world, never mid-delta.
  std::shared_lock<std::shared_mutex> data_lock(client_->data_mu_);
  if (client_->fault_epoch() != fault_epoch_) {
    return Status::FailedPrecondition(
        "cursor epoch expired: the connection was re-established after "
        "this cursor was opened");
  }
  if (pin_delta_epoch_ &&
      client_->delta_batches_.load(std::memory_order_relaxed) !=
          delta_batches_) {
    // The documented epoch error of materialized cursors: the derived
    // store moved under the stream. Demand cursors never take this
    // branch — their pinned DemandOutcome is a snapshot.
    return Status::FailedPrecondition(
        "cursor epoch expired: a live update was applied after this "
        "cursor was opened; re-open to read the new state");
  }

  Page page;
  page.page_index = page_index_++;
  page.degraded = degraded_;
  if (!exhausted_) {
    page.rows.reserve(options_.page_size);
    if (lookahead_valid_) {
      page.rows.push_back(std::move(lookahead_));
      lookahead_valid_ = false;
    }
    Bindings row;
    while (page.rows.size() < options_.page_size && pipeline_->Next(&row)) {
      page.rows.push_back(std::move(row));
    }
    // One-row lookahead makes has_more exact: the last page reports
    // false even when it is exactly full.
    if (page.rows.size() == options_.page_size && pipeline_->Next(&row)) {
      lookahead_ = std::move(row);
      lookahead_valid_ = true;
      page.has_more = true;
    } else if (page.rows.size() == options_.page_size) {
      exhausted_ = true;
    } else {
      exhausted_ = true;
    }
  }
  data_lock.unlock();

  client_->pages_served_.fetch_add(1, std::memory_order_relaxed);
  client_->rows_streamed_.fetch_add(page.rows.size(),
                                    std::memory_order_relaxed);
  const size_t evictions = pipeline_->stats().heap_evictions;
  client_->heap_evictions_.fetch_add(evictions - reported_evictions_,
                                     std::memory_order_relaxed);
  reported_evictions_ = evictions;
  return page;
}

}  // namespace ooint
