#ifndef OOINT_FEDERATION_FSM_CLIENT_H_
#define OOINT_FEDERATION_FSM_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "federation/fsm.h"

namespace ooint {

/// A conjunctive query against the global schema, e.g. the paper's
/// ?-uncle(John, y): pattern class "IS(...uncle...)" with Ussn# bound to
/// "John" and niece_nephew projected into variable y.
class Query {
 public:
  explicit Query(std::string class_name) {
    pattern_.object = TermArg::Variable("_self");
    pattern_.class_name = std::move(class_name);
  }

  /// Constrains attribute `name` to equal `value`.
  Query& Where(const std::string& name, Value value) {
    pattern_.attrs.push_back({name, false, TermArg::Constant(std::move(value))});
    return *this;
  }

  /// Projects attribute `name` into variable `var`.
  Query& Select(const std::string& name, const std::string& var) {
    pattern_.attrs.push_back({name, false, TermArg::Variable(var)});
    return *this;
  }

  /// Binds the object position to `var` (to retrieve OIDs).
  Query& SelectObject(const std::string& var) {
    pattern_.object = TermArg::Variable(var);
    return *this;
  }

  const OTerm& pattern() const { return pattern_; }

 private:
  OTerm pattern_;
};

/// The FSM-client layer (Fig. 1, top): the application-facing facade.
/// Connects to an Fsm, triggers global-schema construction, and runs
/// queries against the federated evaluator, transparently combining
/// local extents and derived (virtual) objects.
///
/// Every agent is reached through a fault-tolerant AgentConnection; a
/// client connected with FailurePolicy::kPartial keeps answering when
/// agents are down, and degraded() says exactly what the answers are
/// missing. Run/Extent before a successful Connect() (or after a failed
/// one) return kFailedPrecondition instead of touching a null evaluator.
class FsmClient {
 public:
  explicit FsmClient(Fsm* fsm) : fsm_(fsm) {}

  /// Builds (or rebuilds) the global schema and its evaluator. On
  /// failure the client reverts to the disconnected state. Under
  /// options.failure_policy == kPartial, Connect succeeds even when
  /// agents are unreachable (check degraded()); under kStrict the first
  /// agent error — e.g. kUnavailable, kDeadlineExceeded — is returned.
  Status Connect(Fsm::Strategy strategy = Fsm::Strategy::kAccumulation,
                 const FederationOptions& options = {});

  bool connected() const { return evaluator_ != nullptr; }

  /// The degradation record of the last successful Connect(): which
  /// agents were skipped and which global concepts are incomplete.
  /// Empty when fully connected (or not connected at all).
  const DegradedInfo& degraded() const;

  /// Per-agent connection health (retry/trip/failure counters and
  /// breaker states), in agent registration order.
  std::vector<AgentHealth> ConnectionHealth() const;

  const GlobalSchema& global() const { return global_; }

  /// The integrated class name a local class is represented by.
  Result<std::string> GlobalNameOf(const std::string& schema_name,
                                   const std::string& class_name) const;

  /// Runs a query; each result row maps the query's variables to values.
  Result<std::vector<Bindings>> Run(const Query& query) const;

  /// All facts (local + derived) of a global concept.
  Result<std::vector<const Fact*>> Extent(const std::string& concept_name) const;

 private:
  Fsm* fsm_;
  GlobalSchema global_;
  std::unique_ptr<Evaluator> evaluator_;
  /// Owned by evaluator_; kept for health reporting.
  std::vector<AgentConnection*> connections_;
};

}  // namespace ooint

#endif  // OOINT_FEDERATION_FSM_CLIENT_H_
