#ifndef OOINT_FEDERATION_FSM_CLIENT_H_
#define OOINT_FEDERATION_FSM_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "federation/explain.h"
#include "federation/fsm.h"
#include "federation/serving.h"
#include "rules/incremental.h"

namespace ooint {

/// A conjunctive query against the global schema, e.g. the paper's
/// ?-uncle(John, y): pattern class "IS(...uncle...)" with Ussn# bound to
/// "John" and niece_nephew projected into variable y.
class Query {
 public:
  explicit Query(std::string class_name) {
    pattern_.object = TermArg::Variable("_self");
    pattern_.class_name = std::move(class_name);
  }

  /// Constrains attribute `name` to equal `value`.
  Query& Where(const std::string& name, Value value) {
    pattern_.attrs.push_back({name, false, TermArg::Constant(std::move(value))});
    return *this;
  }

  /// Projects attribute `name` into variable `var`.
  Query& Select(const std::string& name, const std::string& var) {
    pattern_.attrs.push_back({name, false, TermArg::Variable(var)});
    return *this;
  }

  /// Binds the object position to `var` (to retrieve OIDs).
  Query& SelectObject(const std::string& var) {
    pattern_.object = TermArg::Variable(var);
    return *this;
  }

  const OTerm& pattern() const { return pattern_; }

 private:
  OTerm pattern_;
};

/// The FSM-client layer (Fig. 1, top): the application-facing facade.
/// Connects to an Fsm, triggers global-schema construction, and runs
/// queries against the federated evaluator, transparently combining
/// local extents and derived (virtual) objects.
///
/// Every agent is reached through a fault-tolerant AgentConnection; a
/// client connected with FailurePolicy::kPartial keeps answering when
/// agents are down, and degraded() says exactly what the answers are
/// missing. Run/Extent before a successful Connect() (or after a failed
/// one) return kFailedPrecondition instead of touching a null evaluator.
///
/// With FederationOptions::query_mode == QueryMode::kDemandDriven,
/// Connect() skips the eager fixpoint: each Run()/Extent() evaluates
/// goal-directed (magic-set rewritten, relevance-pruned — see
/// Evaluator::EvaluateDemand) and memoizes the outcome in a query cache
/// keyed on the pattern's text. A cached answer is served only while
/// its *fault epoch* and the breaker-state signature it was computed
/// under still hold: Connect() bumps the epoch, BumpFaultEpoch() lets
/// callers invalidate on external fault-schedule changes, and any
/// breaker transition (trip, recovery) changes the signature — so a
/// degraded answer is never replayed as healthy or vice versa. Note
/// that in demand mode agent faults surface per query, not at
/// Connect(); degraded() reports the last served query's record.
class FsmClient {
 public:
  explicit FsmClient(Fsm* fsm) : fsm_(fsm) {}

  /// Builds (or rebuilds) the global schema and its evaluator. On
  /// failure the client reverts to the disconnected state. Under
  /// options.failure_policy == kPartial, Connect succeeds even when
  /// agents are unreachable (check degraded()); under kStrict the first
  /// agent error — e.g. kUnavailable, kDeadlineExceeded — is returned.
  Status Connect(Fsm::Strategy strategy = Fsm::Strategy::kAccumulation,
                 const FederationOptions& options = {});

  bool connected() const { return evaluator_ != nullptr; }

  /// The degradation record of the last successful Connect(): which
  /// agents were skipped and which global concepts are incomplete.
  /// Empty when fully connected (or not connected at all). Returned by
  /// value: in demand mode the record tracks the last served query and
  /// may be rewritten by concurrent queries.
  DegradedInfo degraded() const;

  /// Per-agent connection health (retry/trip/failure counters and
  /// breaker states), in agent registration order.
  std::vector<AgentHealth> ConnectionHealth() const;

  const GlobalSchema& global() const { return global_; }

  /// The integrated class name a local class is represented by.
  Result<std::string> GlobalNameOf(const std::string& schema_name,
                                   const std::string& class_name) const;

  /// Runs a query; each result row maps the query's variables to values.
  Result<std::vector<Bindings>> Run(const Query& query) const;

  /// All facts (local + derived) of a global concept. In demand mode
  /// the returned pointers stay valid until the cache entry that owns
  /// them is invalidated (reconnect, epoch bump, breaker change,
  /// InvalidateQueryCache) or evicted.
  Result<std::vector<const Fact*>> Extent(const std::string& concept_name) const;

  /// The plan for `query`, annotated with the connection's mode, the
  /// relevance-pruned agents, and — when this exact query has a cached
  /// demand outcome — its measured evaluation counters.
  Result<QueryPlan> Explain(const Query& query) const;

  /// Opens a resumable answer cursor over `query` (DESIGN.md §4k): the
  /// evaluation runs (or is served from the demand cache / coalesced
  /// into a concurrent leader's pass) now, and rows stream out page by
  /// page through a filter → project → top-k pipeline instead of being
  /// copied into one answer vector. See ServingCursor for the snapshot
  /// vs. epoch-error pinning rules. Takes an admission slot like Run().
  Result<std::unique_ptr<ServingCursor>> OpenCursor(
      const Query& query, const ServingOptions& options = {}) const;

  /// Cumulative serving counters (cursors, pages, rows, heap evictions,
  /// coalescing) since Connect().
  ServingStats serving_stats() const;

  /// Advances the serving clock cursors age against (virtual ms, the
  /// AgentConnection idiom). Idle expiry is opt-in per cursor via
  /// ServingOptions::idle_expiry_ms.
  void AdvanceServingClock(double ms);
  double serving_now_ms() const {
    return serving_now_ms_.load(std::memory_order_acquire);
  }

  /// Applies one live extent delta (DESIGN.md §4j). The feed's epoch
  /// must strictly advance the agent's last accepted one (stale feeds
  /// are rejected with kInvalidArgument before any state changes). On a
  /// kMaterialized connection made with FederationOptions::live_updates
  /// the counting/DRed engine maintains the derived store so queries
  /// answer exactly as a from-scratch fixpoint over the new base state
  /// would; a demand-driven connection needs no maintenance (queries
  /// re-fetch) and only takes the cache invalidation. Either way the
  /// demand cache is swept by (agent, epoch): entries whose relevant
  /// agents — all agents minus the outcome's relevance-pruned ones —
  /// include the delta's agent are evicted, every other entry stays
  /// warm. Delta application serializes against concurrent Run /
  /// Extent / Explain calls (writer vs. shared readers), so serving
  /// threads see each batch atomically.
  Status ApplyDelta(const ExtentDelta& delta);

  /// Full rebuild: re-runs Connect() with the last Connect's strategy
  /// and options (re-integrates, re-fetches every extent, re-runs the
  /// fixpoint, drops every cached outcome). The periodic-rebuild
  /// baseline the incremental path is benchmarked against, and the
  /// recovery lever when a maintenance step failed mid-batch.
  Status Refresh();

  /// Whether this connection maintains its derived store incrementally
  /// (connected kMaterialized with FederationOptions::live_updates).
  bool live_updates() const { return engine_ != nullptr; }

  /// Cumulative counting/DRed maintenance stats since Connect (empty
  /// on demand-driven or non-live connections).
  DeltaMaintenanceStats maintenance_stats() const {
    std::shared_lock<std::shared_mutex> lock(data_mu_);
    return engine_ == nullptr ? DeltaMaintenanceStats() : engine_->cumulative();
  }

  /// Hit/miss/invalidation counters of the demand-mode query cache.
  struct QueryCacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t invalidations = 0;
  };
  /// Snapshot of the cache counters (atomics internally, so concurrent
  /// queries tick them without the cache lock).
  QueryCacheStats query_cache_stats() const {
    QueryCacheStats stats;
    stats.hits = cache_hits_.load(std::memory_order_relaxed);
    stats.misses = cache_misses_.load(std::memory_order_relaxed);
    stats.invalidations = cache_invalidations_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Admission-control snapshot of the serving path (all zeros when the
  /// connection has admission disabled).
  AdmissionController::Stats admission_stats() const {
    return admission_ == nullptr ? AdmissionController::Stats{}
                                 : admission_->stats();
  }

  /// The per-query deadline of the active connection (virtual ms;
  /// CancelToken::kNoDeadline when unbounded).
  double query_deadline_ms() const { return query_deadline_ms_; }

  /// Drops every cached query outcome (counts one invalidation).
  void InvalidateQueryCache() const;

  /// Declares that the fault environment changed mid-session (e.g. a
  /// new fault schedule was scripted into the injector): every cached
  /// outcome predates the change and will be recomputed.
  void BumpFaultEpoch();
  std::uint64_t fault_epoch() const {
    return fault_epoch_.load(std::memory_order_acquire);
  }

  /// Worker threads of the connection's federation runtime (1 when the
  /// client was connected without a pool).
  int num_threads() const {
    return evaluator_ == nullptr ? 1 : evaluator_->thread_count();
  }

 private:
  friend class ServingCursor;

  /// One memoized demand evaluation. The outcome is shared so Extent()
  /// pointers survive until the last user lets go.
  struct CacheEntry {
    std::shared_ptr<const Evaluator::DemandOutcome> outcome;
    std::uint64_t epoch = 0;
    /// Breaker states of every connection when the outcome was stored;
    /// a mismatch at lookup time means the fault environment moved.
    std::string health_signature;
    /// Delta epochs of the outcome's *relevant* agents (every agent
    /// except the relevance-pruned ones) when it was stored. ApplyDelta
    /// evicts by key membership; lookups additionally re-validate the
    /// epochs, so an entry that somehow outlived a delta to a relevant
    /// agent is never served stale.
    std::map<std::string, std::uint64_t> agent_epochs;
  };

  /// One in-flight demand evaluation of the coalescing window: the
  /// leader publishes its outcome here and wakes the joiners.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const Evaluator::DemandOutcome> outcome;
  };

  /// Evaluates `pattern` demand-driven through the cache (and, with
  /// FederationOptions::coalesce_demand, through the single-flight
  /// window). Caller must hold data_mu_ (shared).
  Result<std::shared_ptr<const Evaluator::DemandOutcome>> Demand(
      const OTerm& pattern) const;
  /// The uncoalesced miss path: evaluate, record degradation, store in
  /// the cache unless truncated. Caller must hold data_mu_ (shared).
  Result<std::shared_ptr<const Evaluator::DemandOutcome>> EvaluateAndCache(
      const OTerm& pattern, const std::string& key) const;
  std::string HealthSignature() const;
  AgentConnection* FindConnection(const std::string& agent_name) const;
  /// True when every relevant agent's delta epoch still matches the
  /// entry's snapshot.
  bool EpochsCurrent(const CacheEntry& entry) const;

  Fsm* fsm_;
  GlobalSchema global_;
  std::unique_ptr<Evaluator> evaluator_;
  /// The counting/DRed maintenance engine of a live-updates connection
  /// (null otherwise). Declared after evaluator_ so it is destroyed
  /// first — its destructor detaches the liveness filter it installed.
  std::unique_ptr<IncrementalEvaluator> engine_;
  /// Owned by evaluator_; kept for health reporting.
  std::vector<AgentConnection*> connections_;
  QueryMode query_mode_ = QueryMode::kMaterialized;
  /// Arguments of the last Connect(), replayed by Refresh().
  Fsm::Strategy last_strategy_ = Fsm::Strategy::kAccumulation;
  FederationOptions last_options_;
  bool connected_once_ = false;
  /// Per-query deadline of the active connection (virtual ms;
  /// kNoDeadline = unbounded). Demand queries mint a CancelToken with
  /// this budget; materialized connections spend it at Connect().
  double query_deadline_ms_ = CancelToken::kNoDeadline;
  /// Admission controller of the serving path (null when the connection
  /// was made without admission control). Run/Extent acquire a slot
  /// before doing any work and shed with kResourceExhausted; Explain is
  /// deliberately exempt so overload can be observed *during* overload.
  std::unique_ptr<AdmissionController> admission_;
  std::atomic<std::uint64_t> fault_epoch_{0};
  /// Reader/writer lock over cache_ and demand_degraded_: concurrent
  /// queries share the lock for lookups and take it exclusively only to
  /// store a freshly computed outcome. Demand evaluation itself runs
  /// outside the lock (two racing misses on one key both evaluate; the
  /// later store wins — identical outcomes in a fault-free federation).
  /// Connect/BumpFaultEpoch/InvalidateQueryCache are writer operations.
  mutable std::shared_mutex cache_mu_;
  mutable std::map<std::string, CacheEntry> cache_;
  mutable std::atomic<size_t> cache_hits_{0};
  mutable std::atomic<size_t> cache_misses_{0};
  mutable std::atomic<size_t> cache_invalidations_{0};
  /// Reader/writer lock between delta application (writer) and the
  /// serving path (shared readers: Run / Extent / Explain / demand
  /// evaluation). Always acquired before cache_mu_ when both are
  /// needed. Connect / Refresh are writer operations too.
  mutable std::shared_mutex data_mu_;
  /// Live-update counters: batches applied, and the per-delta cache
  /// sweep outcomes (entries found warm and kept vs. evicted because a
  /// relevant agent changed), cumulative since Connect.
  std::atomic<size_t> delta_batches_{0};
  mutable std::atomic<size_t> cache_delta_retained_{0};
  mutable std::atomic<size_t> cache_delta_evicted_{0};
  /// Degradation of the most recently served demand query.
  mutable DegradedInfo demand_degraded_;
  /// Whether this connection coalesces concurrent demand misses
  /// (FederationOptions::coalesce_demand on a demand-driven Connect).
  bool coalesce_demand_ = false;
  /// The single-flight window: pattern key -> the in-flight evaluation
  /// later arrivals join. Guarded by flight_mu_ (leaf lock: never held
  /// while taking data_mu_ or cache_mu_).
  mutable std::mutex flight_mu_;
  mutable std::map<std::string, std::shared_ptr<InFlight>> inflight_;
  /// Serving counters (see ServingStats). Atomics so cursors and
  /// concurrent queries tick them without a lock.
  mutable std::atomic<size_t> cursors_opened_{0};
  mutable std::atomic<size_t> cursors_closed_{0};
  mutable std::atomic<size_t> cursors_expired_{0};
  mutable std::atomic<size_t> pages_served_{0};
  mutable std::atomic<size_t> rows_streamed_{0};
  mutable std::atomic<size_t> heap_evictions_{0};
  mutable std::atomic<size_t> coalesce_hits_{0};
  mutable std::atomic<size_t> coalesce_leaders_{0};
  /// The virtual serving clock cursors age against (idle expiry).
  std::atomic<double> serving_now_ms_{0};
};

}  // namespace ooint

#endif  // OOINT_FEDERATION_FSM_CLIENT_H_
