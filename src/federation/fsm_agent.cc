#include "federation/fsm_agent.h"

namespace ooint {

Result<std::unique_ptr<FsmAgent>> FsmAgent::Create(std::string agent_name,
                                                   std::string dbms,
                                                   std::string database,
                                                   Schema schema) {
  if (!schema.finalized()) {
    OOINT_RETURN_IF_ERROR(schema.Finalize());
  }
  std::unique_ptr<FsmAgent> agent(
      new FsmAgent(std::move(agent_name), std::move(dbms),
                   std::move(database)));
  agent->schema_ = std::make_unique<Schema>(std::move(schema));
  agent->store_ = std::make_unique<InstanceStore>(agent->schema_.get());
  agent->store_->SetOidContext(agent->name_, agent->dbms_, agent->database_);
  return agent;
}

Result<std::unique_ptr<FsmAgent>> FsmAgent::FromRelational(
    std::string agent_name, std::string dbms,
    const RelationalSchema& relational) {
  Result<Schema> schema = TransformToOO(relational);
  if (!schema.ok()) return schema.status();
  return Create(std::move(agent_name), std::move(dbms), relational.name(),
                std::move(schema).value());
}

}  // namespace ooint
