#include "federation/materialize.h"

#include <algorithm>

#include "common/string_util.h"

namespace ooint {

Result<const IntegratedAttribute*> Materializer::FindAttribute(
    const std::string& class_name, const std::string& attribute) const {
  const IntegratedClass* integrated =
      global_->last_round.FindClass(class_name);
  if (integrated == nullptr) {
    return Status::NotFound(
        StrCat("no integrated class '", class_name,
               "' in the final integration round"));
  }
  const IntegratedAttribute* attr = integrated->FindAttribute(attribute);
  if (attr == nullptr) {
    return Status::NotFound(StrCat("integrated class '", class_name,
                                   "' has no attribute '", attribute, "'"));
  }
  return attr;
}

Result<std::vector<Value>> Materializer::SourceValues(
    const std::string& integrated_attr, const Path& source) const {
  const FsmAgent* agent = fsm_->FindAgent(source.schema());
  if (agent == nullptr) {
    return Status::NotFound(
        StrCat("source path ", source.ToString(),
               " does not reference a registered agent schema (nested "
               "integration rounds are not materializable)"));
  }
  Result<ClassId> id = agent->schema().GetClass(source.class_name());
  if (!id.ok()) return id.status();
  std::vector<Value> values =
      agent->store().ValueSet(id.value(), source.leaf());
  // Translate through the registered data mapping, if any (Section 3's
  // F^A_{DB,B}; absence means "default" identity).
  const DataMapping* mapping = fsm_->mappings().Find(
      integrated_attr, source.schema(), source.leaf());
  if (mapping != nullptr) {
    std::vector<Value> mapped;
    mapped.reserve(values.size());
    for (const Value& v : values) {
      Result<Value> m = mapping->MapToIntegrated(v);
      if (m.ok()) mapped.push_back(std::move(m).value());
    }
    values = std::move(mapped);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

Result<std::vector<Materializer::ValuePair>> Materializer::MatchedPairs(
    const std::string& class_name, const std::string& attribute) const {
  Result<const IntegratedAttribute*> attr =
      FindAttribute(class_name, attribute);
  if (!attr.ok()) return attr.status();
  if (attr.value()->sources.size() < 2) {
    return Status::FailedPrecondition(
        StrCat("attribute '", attribute, "' has a single source"));
  }
  const Path& lhs = attr.value()->sources[0];
  const Path& rhs = attr.value()->sources[1];
  const FsmAgent* lhs_agent = fsm_->FindAgent(lhs.schema());
  const FsmAgent* rhs_agent = fsm_->FindAgent(rhs.schema());
  if (lhs_agent == nullptr || rhs_agent == nullptr) {
    return Status::NotFound("source schema is not a registered agent");
  }
  Result<std::vector<Oid>> lhs_extent =
      lhs_agent->store().Extent(lhs.class_name());
  if (!lhs_extent.ok()) return lhs_extent.status();
  Result<std::vector<Oid>> rhs_extent =
      rhs_agent->store().Extent(rhs.class_name());
  if (!rhs_extent.ok()) return rhs_extent.status();

  std::vector<ValuePair> pairs;
  for (const Oid& lhs_oid : lhs_extent.value()) {
    for (const Oid& rhs_oid : rhs_extent.value()) {
      if (!fsm_->mappings().SameObject(lhs_oid, rhs_oid)) continue;
      const Object* a = lhs_agent->store().Find(lhs_oid);
      const Object* b = rhs_agent->store().Find(rhs_oid);
      if (a == nullptr || b == nullptr) continue;
      pairs.push_back(
          {lhs_oid, rhs_oid, a->Get(lhs.leaf()), b->Get(rhs.leaf())});
    }
  }
  return pairs;
}

Result<std::vector<Value>> Materializer::ValueSet(
    const std::string& class_name, const std::string& attribute) const {
  Result<const IntegratedAttribute*> found =
      FindAttribute(class_name, attribute);
  if (!found.ok()) return found.status();
  const IntegratedAttribute& attr = *found.value();
  const std::string qualified = StrCat(class_name, ".", attribute);

  std::vector<Value> out;
  switch (attr.op) {
    case ValueSetOp::kCopy:
    case ValueSetOp::kMoreSpecific: {
      // β keeps the more specific side's values; copies have a single
      // source anyway.
      OOINT_ASSIGN_OR_RETURN(out,
                             SourceValues(qualified, attr.sources.front()));
      break;
    }
    case ValueSetOp::kUnion: {
      for (const Path& source : attr.sources) {
        OOINT_ASSIGN_OR_RETURN(std::vector<Value> values,
                               SourceValues(qualified, source));
        out.insert(out.end(), values.begin(), values.end());
      }
      break;
    }
    case ValueSetOp::kDifference: {
      if (attr.sources.size() < 2) {
        return Status::FailedPrecondition(
            "difference attribute needs two sources");
      }
      OOINT_ASSIGN_OR_RETURN(std::vector<Value> keep,
                             SourceValues(qualified, attr.sources[0]));
      OOINT_ASSIGN_OR_RETURN(std::vector<Value> drop,
                             SourceValues(qualified, attr.sources[1]));
      for (const Value& v : keep) {
        if (std::find(drop.begin(), drop.end(), v) == drop.end()) {
          out.push_back(v);
        }
      }
      break;
    }
    case ValueSetOp::kIntersectAif: {
      OOINT_ASSIGN_OR_RETURN(std::vector<ValuePair> pairs,
                             MatchedPairs(class_name, attribute));
      for (const ValuePair& pair : pairs) {
        const Value v =
            fsm_->aifs().Apply(attr.aif_name, pair.lhs, pair.rhs);
        if (!v.is_null()) out.push_back(v);
      }
      break;
    }
    case ValueSetOp::kConcatenation: {
      // cancatenation(x, y) of Principle 1: x·y when the two objects
      // denote the same entity, Null otherwise.
      OOINT_ASSIGN_OR_RETURN(std::vector<ValuePair> pairs,
                             MatchedPairs(class_name, attribute));
      for (const ValuePair& pair : pairs) {
        if (pair.lhs.is_null() && pair.rhs.is_null()) continue;
        auto render = [](const Value& v) {
          return v.kind() == ValueKind::kString ? v.AsString()
                                                : v.ToString();
        };
        out.push_back(
            Value::String(StrCat(render(pair.lhs), " ", render(pair.rhs))));
      }
      break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ooint
