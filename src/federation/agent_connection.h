#ifndef OOINT_FEDERATION_AGENT_CONNECTION_H_
#define OOINT_FEDERATION_AGENT_CONNECTION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "federation/fault_injector.h"
#include "model/instance_store.h"
#include "rules/evaluator.h"

namespace ooint {

/// Retry/backoff/deadline parameters of one agent connection. All times
/// are *virtual* milliseconds on the connection's deterministic clock —
/// nothing here ever sleeps a real thread (the in-process stores answer
/// instantly); the clock exists so deadlines, backoff schedules and
/// breaker cooldowns compose reproducibly under fault injection.
///
/// Deadline boundary rule (pinned; regression-tested): virtual time
/// that lands *exactly on* a deadline still succeeds — only strictly
/// exceeding it fails. Concretely: an attempt whose latency equals
/// `per_call_deadline_ms` succeeds (latency > deadline times out), and
/// a backoff sleep that would bring the call exactly to
/// `total_deadline_ms` is taken (only a sleep that would strictly
/// exceed it fails the call). CancelToken mirrors the same rule for
/// query-wide deadlines: the wait that reaches the budget completes,
/// nothing new starts at or past it.
struct RetryPolicy {
  /// Total tries per call, the first attempt included.
  int max_attempts = 4;
  /// Backoff before the second attempt; doubles (×`backoff_multiplier`)
  /// per retry, capped by `max_backoff_ms`, scaled by a deterministic
  /// jitter factor in [0.5, 1).
  double initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 200;
  /// One attempt may take this long before it counts as timed out.
  /// When the call carries a CancelToken with a smaller remaining query
  /// budget, the *effective* per-attempt deadline is that remainder —
  /// derived per attempt, so a query never waits on an agent longer
  /// than the query itself has left to live.
  double per_call_deadline_ms = 50;
  /// The whole call — attempts plus backoff sleeps — must fit in this
  /// budget; exceeding it fails the call with kDeadlineExceeded even if
  /// retries remain.
  double total_deadline_ms = 500;
  /// Token-bucket retry budget shared by every call (and every
  /// concurrent caller) of one connection: each retry past the first
  /// attempt consumes one token, and an empty bucket makes the call
  /// fail fast with its last error instead of retrying — the per-agent
  /// brake that stops retry storms when many queries hammer one
  /// flapping agent at once. 0 (the default) disables budgeting
  /// entirely. The bucket starts full and refills at
  /// `retry_budget_refill_per_sec` tokens per *virtual* second, capped
  /// at `retry_budget_max`.
  double retry_budget_max = 0;
  double retry_budget_refill_per_sec = 1;
  /// Seed of the jitter stream (deterministic per connection).
  std::uint64_t jitter_seed = 0x5deece66dULL;
  /// Real seconds slept per virtual millisecond waited (latency and
  /// backoff alike). 0 — the default — keeps every wait instantaneous,
  /// preserving the deterministic instant-answer behaviour; benchmarks
  /// set a small scale so overlapped fetching shows real wall-clock
  /// savings without inflating run times.
  double real_time_scale = 0;
};

/// Circuit-breaker thresholds (closed → open → half-open → closed).
struct BreakerPolicy {
  /// Consecutive failed attempts that trip the breaker.
  int failure_threshold = 3;
  /// Virtual ms an open breaker rejects calls before allowing a
  /// half-open probe.
  double open_cooldown_ms = 1000;
  /// Successful half-open probes required to close again.
  int half_open_successes = 1;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

/// One live update to a single agent's extents (DESIGN.md §4j): the
/// objects inserted into and removed from the agent's InstanceStore
/// since the previous delta, stamped with a per-agent epoch that must
/// increase strictly — a replayed or reordered feed is rejected, never
/// double-applied. Deleted objects are the *pre-removal* copies (their
/// attribute values drive fact identity downstream); an insert and a
/// delete of the same object in one delta is a net no-op.
struct ExtentDelta {
  /// The agent's schema name (AgentConnection::agent_name()).
  std::string agent_name;
  /// Strictly increasing per agent; a natural stamp is the store's
  /// InstanceStore::data_epoch() after the mutations.
  std::uint64_t epoch = 0;
  std::vector<Object> inserted;
  std::vector<Object> deleted;
};

/// The fault-tolerant channel between the evaluator/FSM and one
/// FSM-agent's InstanceStore (Fig. 1's middle layer made failure-aware).
///
/// Every extent read goes through Call semantics:
///   1. An open breaker rejects the call immediately (kUnavailable)
///      until its cooldown elapses, then admits one half-open probe.
///   2. Each attempt consults the FaultInjector (when configured); slow
///      responses past the per-call deadline become kDeadlineExceeded,
///      truncated payloads are treated as transient failures.
///   3. Transient failures (kUnavailable / kDeadlineExceeded) retry
///      under exponential backoff with deterministic jitter, while the
///      total virtual time stays inside `retry.total_deadline_ms`.
///   4. Consecutive attempt failures trip the breaker; a failed
///      half-open probe re-opens it, `half_open_successes` successful
///      probes close it.
///
/// The connection implements the evaluator's ExtentSource, so a
/// federated Evaluator can treat remote-ish agents and local stores
/// uniformly; per-connection counters expose the health the FSM client
/// reports.
class AgentConnection : public ExtentSource {
 public:
  AgentConnection(std::string agent_name, const InstanceStore* store,
                  RetryPolicy retry = {}, BreakerPolicy breaker = {},
                  FaultInjector* injector = nullptr);

  const std::string& agent_name() const { return agent_name_; }

  // ExtentSource:
  const Schema& schema() const override { return store_->schema(); }
  Result<std::vector<const Object*>> FetchExtent(
      const std::string& class_name) override;
  /// Token-aware fetch: every virtual wait (latency, backoff) is
  /// charged to `token`, the per-attempt deadline is capped by the
  /// token's remaining budget, an expired token is rejected up front
  /// with kDeadlineExceeded (no attempt, no breaker movement), and
  /// expiry between retries stops the retry loop. The plain overload is
  /// this one with a never-expiring token.
  Result<std::vector<const Object*>> FetchExtent(
      const std::string& class_name, const CancelToken& token) override;

  BreakerState breaker_state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// Validates and records one delta feed stamp: `delta.epoch` must
  /// strictly exceed the last accepted epoch (gaps are fine — feeds may
  /// batch several store mutations), else kInvalidArgument and no state
  /// change. The connection only bookkeeps the stamp; applying the
  /// delta to derived state is the client's job (FsmClient::ApplyDelta
  /// calls this first, so a stale feed is rejected before any
  /// maintenance work).
  Status AcceptDelta(const ExtentDelta& delta);

  /// The last accepted delta epoch (0 before any delta).
  std::uint64_t delta_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return delta_epoch_;
  }

  /// Observability counters (monotonic over the connection's life).
  struct Stats {
    /// Logical calls (FetchExtent invocations).
    std::size_t calls = 0;
    /// Physical attempts (a call may retry several times).
    std::size_t attempts = 0;
    std::size_t successes = 0;
    /// Calls that ultimately failed (after retries or fast-failed).
    std::size_t failures = 0;
    /// Attempts beyond the first, across all calls.
    std::size_t retries = 0;
    /// Calls rejected immediately by an open breaker.
    std::size_t breaker_rejections = 0;
    /// closed→open (or half-open→open) transitions.
    std::size_t trips = 0;
    /// Retries not taken because the shared retry budget was empty
    /// (the call failed fast with its last error instead).
    std::size_t retries_denied_budget = 0;
    /// Delta feeds accepted (AcceptDelta with a fresh epoch) and the
    /// object-level changes they carried.
    std::size_t deltas_accepted = 0;
    std::size_t delta_objects_inserted = 0;
    std::size_t delta_objects_deleted = 0;
  };
  /// Snapshot of the counters; taken under the connection lock so it is
  /// internally consistent even while other threads call FetchExtent.
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// The connection's virtual clock (ms since construction).
  double now_ms() const {
    std::lock_guard<std::mutex> lock(mu_);
    return now_ms_;
  }

  /// Advances the virtual clock — lets tests (and callers modeling idle
  /// time) let an open breaker's cooldown elapse.
  void AdvanceClock(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ms_ += ms;
  }

 private:
  /// One attempt against the underlying store, fault schedule applied.
  /// Advances the clock by the attempt's latency, clamped to
  /// `deadline_ms` (the static per-call deadline, possibly tightened by
  /// the query token's remaining budget).
  Status Attempt(const std::string& class_name, double deadline_ms,
                 const CancelToken& token, std::vector<const Object*>* out);

  /// Advances the virtual clock by `ms`, charges the wait to `token`,
  /// and, when `real_time_scale` is set, sleeps the calling thread for
  /// ms × scale real milliseconds. Called with mu_ held: calls to one
  /// agent are serial by contract, so sleeping under the connection's
  /// own lock blocks nobody who could otherwise make progress against
  /// this agent.
  void Wait(double ms, const CancelToken& token);

  /// Refills the shared retry token bucket from the virtual clock.
  /// Called with mu_ held; no-op when budgeting is disabled.
  void RefillRetryBudget();

  void RecordSuccess();
  /// Returns true when the failure tripped (or re-opened) the breaker.
  bool RecordFailure();

  /// Deterministic jitter factor in [0.5, 1).
  double NextJitter();

  std::string agent_name_;
  const InstanceStore* store_;
  RetryPolicy retry_;
  BreakerPolicy breaker_;
  FaultInjector* injector_;

  /// Guards all mutable state below. FetchExtent holds it end to end, so
  /// concurrent callers of one connection serialize (the overlapped
  /// fetcher only parallelizes across *distinct* connections, keeping
  /// each agent's fault/jitter/breaker evolution identical to serial).
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  double opened_at_ms_ = 0;
  double now_ms_ = 0;
  std::uint64_t jitter_state_;
  /// Retry-budget token bucket (shared across calls and callers; only
  /// meaningful when retry_.retry_budget_max > 0). Starts full.
  double retry_tokens_ = 0;
  double budget_refilled_at_ms_ = 0;
  /// Last accepted live-update epoch (strictly increasing).
  std::uint64_t delta_epoch_ = 0;
  Stats stats_;
};

/// Per-agent health snapshot the FSM client exposes.
struct AgentHealth {
  std::string agent_name;
  BreakerState breaker_state = BreakerState::kClosed;
  AgentConnection::Stats stats;

  std::string ToString() const;
};

}  // namespace ooint

#endif  // OOINT_FEDERATION_AGENT_CONNECTION_H_
