#ifndef OOINT_FEDERATION_FSM_AGENT_H_
#define OOINT_FEDERATION_FSM_AGENT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "model/instance_store.h"
#include "model/schema.h"
#include "transform/rel_to_oo.h"

namespace ooint {

/// An FSM-agent (Section 3, Fig. 1): the local-system-management layer
/// wrapping one component database. It owns the component's
/// object-oriented schema (transforming a relational one on arrival) and
/// its instance store, and assigns federation-wide OIDs in the paper's
/// <agent>.<dbms>.<database>.<relation>.<n> format. Integration never
/// mutates an agent's schema or data (autonomy).
class FsmAgent {
 public:
  /// Wraps a ready object-oriented local schema. The schema is finalized
  /// here if it was not already.
  static Result<std::unique_ptr<FsmAgent>> Create(std::string agent_name,
                                                  std::string dbms,
                                                  std::string database,
                                                  Schema schema);

  /// Transforms a relational local schema (the schema-transformation
  /// phase, ref [6]) and wraps the result.
  static Result<std::unique_ptr<FsmAgent>> FromRelational(
      std::string agent_name, std::string dbms,
      const RelationalSchema& relational);

  const std::string& name() const { return name_; }
  const std::string& dbms() const { return dbms_; }
  const std::string& database() const { return database_; }

  const Schema& schema() const { return *schema_; }
  InstanceStore& store() { return *store_; }
  const InstanceStore& store() const { return *store_; }

 private:
  FsmAgent(std::string name, std::string dbms, std::string database)
      : name_(std::move(name)),
        dbms_(std::move(dbms)),
        database_(std::move(database)) {}

  std::string name_;
  std::string dbms_;
  std::string database_;
  std::unique_ptr<Schema> schema_;
  std::unique_ptr<InstanceStore> store_;
};

}  // namespace ooint

#endif  // OOINT_FEDERATION_FSM_AGENT_H_
