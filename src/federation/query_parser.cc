#include "federation/query_parser.h"

#include "common/lexer.h"
#include "common/string_util.h"

namespace ooint {

Result<ParsedQuery> ParseQuery(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TokenCursor cursor(std::move(tokens).value());

  // The Prolog-style prompt: the lexer folds "?-" (or a bare "?") into
  // one kQuestion token.
  OOINT_RETURN_IF_ERROR(cursor.Expect(TokKind::kQuestion));

  OOINT_ASSIGN_OR_RETURN(std::string schema, cursor.ExpectIdent());
  OOINT_RETURN_IF_ERROR(cursor.Expect(TokKind::kDot));
  OOINT_ASSIGN_OR_RETURN(std::string class_name, cursor.ExpectIdent());

  ParsedQuery parsed;
  parsed.schema = std::move(schema);
  parsed.class_name = std::move(class_name);
  parsed.query = Query(parsed.class_name);

  OOINT_RETURN_IF_ERROR(cursor.Expect(TokKind::kLParen));
  if (cursor.Peek().kind != TokKind::kRParen) {
    while (true) {
      // Attribute name, possibly dotted (flattened nested attributes).
      OOINT_ASSIGN_OR_RETURN(std::string attr, cursor.ExpectIdent());
      while (cursor.Peek().kind == TokKind::kDot) {
        cursor.Next();
        OOINT_ASSIGN_OR_RETURN(std::string part, cursor.ExpectIdent());
        attr += "." + part;
      }
      OOINT_RETURN_IF_ERROR(cursor.Expect(TokKind::kColon));
      const Token& tok = cursor.Next();
      switch (tok.kind) {
        case TokKind::kString:
          parsed.query.Where(attr, Value::String(tok.text));
          break;
        case TokKind::kNumber:
          if (tok.text.find('.') != std::string::npos) {
            parsed.query.Where(attr, Value::Real(std::stod(tok.text)));
          } else {
            parsed.query.Where(attr, Value::Integer(std::stoll(tok.text)));
          }
          break;
        case TokKind::kIdent:
          if (tok.text == "true") {
            parsed.query.Where(attr, Value::Boolean(true));
          } else if (tok.text == "false") {
            parsed.query.Where(attr, Value::Boolean(false));
          } else {
            // A bare identifier is a projection variable.
            parsed.query.Select(attr, tok.text);
          }
          break;
        default:
          return cursor.ErrorAt(
              tok, "expected a constant or a projection variable");
      }
      if (cursor.Consume(TokKind::kComma)) continue;
      break;
    }
  }
  OOINT_RETURN_IF_ERROR(cursor.Expect(TokKind::kRParen));
  if (!cursor.AtEnd()) {
    return cursor.ErrorAt(cursor.Peek(), "trailing input after query");
  }
  return parsed;
}

Result<std::vector<Bindings>> RunTextQuery(const FsmClient& client,
                                           const std::string& text) {
  Result<ParsedQuery> parsed = ParseQuery(text);
  if (!parsed.ok()) return parsed.status();
  Result<std::string> global_name =
      client.GlobalNameOf(parsed.value().schema, parsed.value().class_name);
  if (!global_name.ok()) return global_name.status();
  // Rebuild the query against the resolved global concept.
  Query query(global_name.value());
  for (const AttrDescriptor& d : parsed.value().query.pattern().attrs) {
    if (d.value.is_constant()) {
      query.Where(d.attribute, d.value.constant);
    } else if (d.value.is_variable()) {
      query.Select(d.attribute, d.value.var);
    }
  }
  return client.Run(query);
}

}  // namespace ooint
