#include "federation/agent_connection.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/string_util.h"

namespace ooint {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "Closed";
    case BreakerState::kOpen:
      return "Open";
    case BreakerState::kHalfOpen:
      return "HalfOpen";
  }
  return "Unknown";
}

AgentConnection::AgentConnection(std::string agent_name,
                                 const InstanceStore* store,
                                 RetryPolicy retry, BreakerPolicy breaker,
                                 FaultInjector* injector)
    : agent_name_(std::move(agent_name)),
      store_(store),
      retry_(retry),
      breaker_(breaker),
      injector_(injector),
      jitter_state_(retry.jitter_seed ^ HashName(agent_name_)),
      retry_tokens_(retry.retry_budget_max) {}

void AgentConnection::Wait(double ms, const CancelToken& token) {
  now_ms_ += ms;
  token.Charge(ms);
  if (retry_.real_time_scale > 0 && ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms * retry_.real_time_scale));
  }
}

void AgentConnection::RefillRetryBudget() {
  if (retry_.retry_budget_max <= 0) return;
  const double elapsed_ms = now_ms_ - budget_refilled_at_ms_;
  if (elapsed_ms <= 0) return;
  retry_tokens_ =
      std::min(retry_.retry_budget_max,
               retry_tokens_ +
                   elapsed_ms * retry_.retry_budget_refill_per_sec / 1000.0);
  budget_refilled_at_ms_ = now_ms_;
}

double AgentConnection::NextJitter() {
  const double unit =
      static_cast<double>(SplitMix64(&jitter_state_) >> 11) * 0x1.0p-53;
  return 0.5 + 0.5 * unit;
}

Status AgentConnection::Attempt(const std::string& class_name,
                                double deadline_ms, const CancelToken& token,
                                std::vector<const Object*>* out) {
  Fault fault = injector_ != nullptr
                    ? injector_->Next(agent_name_)
                    : Fault{FaultKind::kNone, 0, 0};
  // Boundary rule (see RetryPolicy): latency strictly greater than the
  // effective deadline times out; latency exactly on it succeeds.
  if (fault.kind == FaultKind::kDeadlineExceeded ||
      fault.latency_ms > deadline_ms) {
    // The caller waits out the whole per-attempt deadline before giving
    // up.
    Wait(deadline_ms, token);
    return Status::DeadlineExceeded(
        StrCat("agent '", agent_name_, "' exceeded the ", deadline_ms,
               "ms per-call deadline"));
  }
  Wait(fault.latency_ms, token);
  if (fault.kind == FaultKind::kUnavailable) {
    return Status::Unavailable(
        StrCat("agent '", agent_name_, "' is unavailable"));
  }

  Result<std::vector<Oid>> extent = store_->Extent(class_name);
  if (!extent.ok()) return extent.status();  // permanent; never retried
  out->clear();
  out->reserve(extent.value().size());
  for (const Oid& oid : extent.value()) {
    const Object* object = store_->Find(oid);
    if (object != nullptr) out->push_back(object);
  }
  if (fault.kind == FaultKind::kTruncatedExtent && out->size() > fault.keep) {
    // A short read: we got a prefix but know the payload was cut off.
    // Surfacing the partial payload would silently drop facts, so the
    // attempt counts as a transient failure and is retried.
    out->resize(fault.keep);
    return Status::Unavailable(
        StrCat("truncated extent of '", class_name, "' from agent '",
               agent_name_, "'"));
  }
  return Status::OK();
}

void AgentConnection::RecordSuccess() {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen &&
      ++half_open_successes_ >= breaker_.half_open_successes) {
    state_ = BreakerState::kClosed;
  }
}

bool AgentConnection::RecordFailure() {
  ++consecutive_failures_;
  const bool trip =
      state_ == BreakerState::kHalfOpen ||
      (state_ == BreakerState::kClosed &&
       consecutive_failures_ >= breaker_.failure_threshold);
  if (trip) {
    state_ = BreakerState::kOpen;
    opened_at_ms_ = now_ms_;
    consecutive_failures_ = 0;
    ++stats_.trips;
  }
  return trip;
}

Result<std::vector<const Object*>> AgentConnection::FetchExtent(
    const std::string& class_name) {
  return FetchExtent(class_name, CancelToken());
}

Result<std::vector<const Object*>> AgentConnection::FetchExtent(
    const std::string& class_name, const CancelToken& token) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.calls;

  if (token.Expired()) {
    // The query is already out of time: reject without an attempt, a
    // fault draw, or any breaker movement.
    ++stats_.failures;
    return Status::DeadlineExceeded(
        StrCat("query deadline expired before calling agent '", agent_name_,
               "'"));
  }

  if (state_ == BreakerState::kOpen) {
    if (now_ms_ - opened_at_ms_ < breaker_.open_cooldown_ms) {
      ++stats_.breaker_rejections;
      ++stats_.failures;
      return Status::Unavailable(
          StrCat("circuit open for agent '", agent_name_, "' (cooling down)"));
    }
    state_ = BreakerState::kHalfOpen;
    half_open_successes_ = 0;
  }

  const double call_start_ms = now_ms_;
  double backoff = retry_.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    ++stats_.attempts;
    if (attempt > 1) ++stats_.retries;
    // The effective per-attempt deadline: the static cap, tightened by
    // whatever the query has left. An attempt never waits past the
    // point the whole query would be declared dead anyway.
    double deadline_ms = retry_.per_call_deadline_ms;
    const double remaining_ms = token.remaining_ms();
    if (remaining_ms != CancelToken::kNoDeadline &&
        remaining_ms < deadline_ms) {
      deadline_ms = remaining_ms;
    }
    std::vector<const Object*> objects;
    const Status status = Attempt(class_name, deadline_ms, token, &objects);
    if (status.ok()) {
      RecordSuccess();
      ++stats_.successes;
      return objects;
    }
    const bool tripped = RecordFailure();
    if (tripped || !IsTransientCode(status.code())) {
      ++stats_.failures;
      return status;
    }
    if (attempt >= retry_.max_attempts) {
      ++stats_.failures;
      return Status(status.code(),
                    StrCat(status.message(), " (after ", attempt,
                           " attempts)"));
    }
    if (token.Expired()) {
      // The failed attempt consumed the query's remaining budget;
      // retrying would wait on the agent past the query's own death.
      ++stats_.failures;
      return Status::DeadlineExceeded(
          StrCat("query deadline exhausted during retries against agent '",
                 agent_name_, "'; last error: ", status.ToString()));
    }
    if (retry_.retry_budget_max > 0) {
      // The per-agent retry-storm brake: one token per retry, shared by
      // every concurrent caller of this connection.
      RefillRetryBudget();
      if (retry_tokens_ < 1.0) {
        ++stats_.retries_denied_budget;
        ++stats_.failures;
        return Status(status.code(),
                      StrCat(status.message(),
                             " (retry denied: agent retry budget empty)"));
      }
      retry_tokens_ -= 1.0;
    }
    const double sleep =
        std::min(backoff, retry_.max_backoff_ms) * NextJitter();
    // Boundary rule (see RetryPolicy): a sleep landing exactly on the
    // total deadline is taken; only strictly exceeding it fails.
    if (now_ms_ - call_start_ms + sleep > retry_.total_deadline_ms) {
      ++stats_.failures;
      return Status::DeadlineExceeded(
          StrCat("retry budget (", retry_.total_deadline_ms,
                 "ms) exhausted for agent '", agent_name_,
                 "'; last error: ", status.ToString()));
    }
    Wait(sleep, token);
    backoff *= retry_.backoff_multiplier;
  }
}

Status AgentConnection::AcceptDelta(const ExtentDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (delta.epoch <= delta_epoch_) {
    return Status::InvalidArgument(
        StrCat("stale delta for agent '", agent_name_, "': epoch ",
               delta.epoch, " does not advance past ", delta_epoch_));
  }
  delta_epoch_ = delta.epoch;
  ++stats_.deltas_accepted;
  stats_.delta_objects_inserted += delta.inserted.size();
  stats_.delta_objects_deleted += delta.deleted.size();
  return Status::OK();
}

std::string AgentHealth::ToString() const {
  std::string out =
      StrCat(agent_name, ": state=", BreakerStateName(breaker_state),
             " calls=", stats.calls, " attempts=", stats.attempts,
             " retries=", stats.retries, " failures=", stats.failures,
             " rejections=", stats.breaker_rejections,
             " trips=", stats.trips);
  if (stats.deltas_accepted > 0) {
    out += StrCat(" deltas=", stats.deltas_accepted, " (+",
                  stats.delta_objects_inserted, "/-",
                  stats.delta_objects_deleted, " objects)");
  }
  return out;
}

}  // namespace ooint
