#include "federation/fsm.h"

#include <algorithm>

#include "assertions/parser.h"
#include "common/string_util.h"

namespace ooint {

namespace {

void AccumulateStats(IntegrationStats* total, const IntegrationStats& step) {
  total->pairs_checked += step.pairs_checked;
  total->pairs_enqueued += step.pairs_enqueued;
  total->pairs_skipped_by_labels += step.pairs_skipped_by_labels;
  total->sibling_pairs_removed += step.sibling_pairs_removed;
  total->dfs_steps += step.dfs_steps;
  total->classes_merged += step.classes_merged;
  total->isa_links_inserted += step.isa_links_inserted;
  total->isa_links_suppressed += step.isa_links_suppressed;
  total->rules_generated += step.rules_generated;
  total->cardinality_conflicts_resolved +=
      step.cardinality_conflicts_resolved;
}

/// Rewrites every O-term class name of `rule` through `rename`.
Rule RewriteRuleClasses(
    Rule rule, const std::function<std::string(const std::string&)>& rename) {
  for (Literal& literal : rule.head) {
    if (literal.kind == Literal::Kind::kOTerm) {
      literal.oterm.class_name = rename(literal.oterm.class_name);
    }
  }
  for (Literal& literal : rule.body) {
    if (literal.kind == Literal::Kind::kOTerm) {
      literal.oterm.class_name = rename(literal.oterm.class_name);
    }
  }
  return rule;
}

}  // namespace

Status Fsm::RegisterAgent(std::unique_ptr<FsmAgent> agent) {
  if (FindAgent(agent->schema().name()) != nullptr) {
    return Status::AlreadyExists(
        StrCat("an agent already exports schema '", agent->schema().name(),
               "'"));
  }
  agents_.push_back(std::move(agent));
  return Status::OK();
}

FsmAgent* Fsm::FindAgent(const std::string& schema_name) const {
  for (const std::unique_ptr<FsmAgent>& agent : agents_) {
    if (agent->schema().name() == schema_name) return agent.get();
  }
  return nullptr;
}

Status Fsm::DeclareAssertions(const std::string& text) {
  Result<AssertionSet> parsed = AssertionParser::Parse(text);
  if (!parsed.ok()) return parsed.status();
  for (const Assertion& assertion : parsed.value().assertions()) {
    assertions_.push_back(assertion);
  }
  return Status::OK();
}

Status Fsm::AddAssertion(Assertion assertion) {
  assertions_.push_back(std::move(assertion));
  return Status::OK();
}

Result<std::vector<ConsistencyFinding>> Fsm::CheckAllConsistency() const {
  std::vector<ConsistencyFinding> findings;
  for (size_t i = 0; i < agents_.size(); ++i) {
    for (size_t j = i + 1; j < agents_.size(); ++j) {
      const Schema& s1 = agents_[i]->schema();
      const Schema& s2 = agents_[j]->schema();
      AssertionSet pair_set;
      for (const Assertion& assertion : assertions_) {
        const std::string& lhs = assertion.lhs.front().schema;
        const std::string& rhs = assertion.rhs.schema;
        const bool spans = (lhs == s1.name() && rhs == s2.name()) ||
                           (lhs == s2.name() && rhs == s1.name());
        if (!spans) continue;
        const Status added = pair_set.Add(assertion);
        if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
          return added;
        }
      }
      if (pair_set.size() == 0) continue;
      const std::vector<ConsistencyFinding> pair_findings =
          CheckConsistency(s1, s2, pair_set);
      findings.insert(findings.end(), pair_findings.begin(),
                      pair_findings.end());
    }
  }
  return findings;
}

Fsm::View Fsm::MakeLeafView(const FsmAgent& agent) {
  View view;
  view.schema = std::make_unique<Schema>(agent.schema());
  const std::string& schema_name = agent.schema().name();
  for (const ClassDef& class_def : agent.schema().classes()) {
    const std::string key = StrCat(schema_name, ".", class_def.name());
    view.class_map[key] = class_def.name();
    view.ground_sources[class_def.name()] = {
        {schema_name, class_def.name()}};
    for (const Attribute& attr : class_def.attributes()) {
      view.attr_map[StrCat(key, ".", attr.name)] = attr.name;
    }
    for (const AggregationFunction& fn : class_def.aggregations()) {
      view.attr_map[StrCat(key, ".", fn.name)] = fn.name;
    }
  }
  return view;
}

bool Fsm::RewriteAssertion(const View& v1, const View& v2,
                           const Assertion& original,
                           Assertion* rewritten) const {
  // Which view does a ground class live in? 0 = neither.
  auto view_of = [&](const ClassRef& ref) -> int {
    const std::string key = ref.ToString();
    if (v1.class_map.count(key) != 0) return 1;
    if (v2.class_map.count(key) != 0) return 2;
    return 0;
  };
  auto map_ref = [&](const ClassRef& ref) -> ClassRef {
    const std::string key = ref.ToString();
    auto it1 = v1.class_map.find(key);
    if (it1 != v1.class_map.end()) {
      return {v1.schema->name(), it1->second};
    }
    return {v2.schema->name(), v2.class_map.at(key)};
  };
  auto map_path = [&](const Path& path) -> Path {
    const ClassRef ref{path.schema(), path.class_name()};
    if (view_of(ref) == 0) return path;
    const View& view = (view_of(ref) == 1) ? v1 : v2;
    const ClassRef mapped = map_ref(ref);
    std::vector<std::string> components = path.components();
    if (!components.empty()) {
      auto it = view.attr_map.find(
          StrCat(ref.ToString(), ".", components.front()));
      if (it != view.attr_map.end()) components.front() = it->second;
    }
    return Path(mapped.schema, mapped.class_name, std::move(components),
                path.name_ref());
  };

  int lhs_view = 0;
  for (const ClassRef& c : original.lhs) {
    const int v = view_of(c);
    if (v == 0) return false;  // references a schema outside these views
    if (lhs_view == 0) lhs_view = v;
    if (v != lhs_view) return false;  // derivation lhs split across views
  }
  const int rhs_view = view_of(original.rhs);
  if (rhs_view == 0 || rhs_view == lhs_view) {
    // Not applicable here, or already applied in an earlier round.
    return false;
  }

  rewritten->lhs.clear();
  for (const ClassRef& c : original.lhs) {
    rewritten->lhs.push_back(map_ref(c));
  }
  rewritten->rel = original.rel;
  rewritten->rhs = map_ref(original.rhs);
  rewritten->attr_corrs = original.attr_corrs;
  for (AttributeCorrespondence& ac : rewritten->attr_corrs) {
    ac.lhs = map_path(ac.lhs);
    ac.rhs = map_path(ac.rhs);
    if (ac.with.has_value()) ac.with->attribute = map_path(ac.with->attribute);
  }
  rewritten->agg_corrs = original.agg_corrs;
  for (AggCorrespondence& gc : rewritten->agg_corrs) {
    gc.lhs = map_path(gc.lhs);
    gc.rhs = map_path(gc.rhs);
  }
  rewritten->value_corrs = original.value_corrs;
  for (ValueCorrespondence& vc : rewritten->value_corrs) {
    vc.lhs = map_path(vc.lhs);
    vc.rhs = map_path(vc.rhs);
    vc.side = (vc.lhs.schema() == rewritten->lhs.front().schema) ? 1 : 2;
  }
  return true;
}

Result<Fsm::View> Fsm::IntegrateViews(View v1, View v2,
                                      IntegrationStats* stats,
                                      IntegratedSchema* last_round) {
  AssertionSet set;
  for (const Assertion& original : assertions_) {
    Assertion rewritten;
    if (!RewriteAssertion(v1, v2, original, &rewritten)) continue;
    const Status added = set.Add(std::move(rewritten));
    if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
      return added;
    }
  }
  OOINT_RETURN_IF_ERROR(set.Validate(*v1.schema, *v2.schema));

  Result<IntegrationOutcome> outcome =
      Integrator::Integrate(*v1.schema, *v2.schema, set, &aifs_);
  if (!outcome.ok()) return outcome.status();
  AccumulateStats(stats, outcome.value().stats);
  const IntegratedSchema& integrated = outcome.value().schema;

  View merged;
  Result<Schema> lowered = integrated.ToSchema();
  if (!lowered.ok()) return lowered.status();
  merged.schema = std::make_unique<Schema>(std::move(lowered).value());

  // Compose the class maps.
  for (const View* view : {&v1, &v2}) {
    for (const auto& [ground, view_class] : view->class_map) {
      const std::string name =
          integrated.NameOf({view->schema->name(), view_class});
      if (!name.empty()) merged.class_map[ground] = name;
    }
  }
  // Compose the attribute maps via the integrated attributes' sources.
  std::map<std::string, std::string> intermediate_attr;  // "S.C.a" -> name
  for (const IntegratedClass& c : integrated.classes()) {
    for (const IntegratedAttribute& a : c.attributes) {
      for (const Path& source : a.sources) {
        intermediate_attr[StrCat(source.schema(), ".", source.class_name(),
                                 ".", source.leaf())] = a.name;
      }
    }
    for (const IntegratedAggregation& g : c.aggregations) {
      for (const Path& source : g.sources) {
        intermediate_attr[StrCat(source.schema(), ".", source.class_name(),
                                 ".", source.leaf())] = g.name;
      }
    }
  }
  for (const View* view : {&v1, &v2}) {
    for (const auto& [ground_attr, view_attr] : view->attr_map) {
      // ground_attr = "S.C.a"; find the view class to build the
      // intermediate key.
      const size_t last_dot = ground_attr.rfind('.');
      const std::string ground_class = ground_attr.substr(0, last_dot);
      auto cls = view->class_map.find(ground_class);
      if (cls == view->class_map.end()) continue;
      auto it = intermediate_attr.find(StrCat(view->schema->name(), ".",
                                              cls->second, ".", view_attr));
      if (it != intermediate_attr.end()) {
        merged.attr_map[ground_attr] = it->second;
      }
    }
  }
  // Expand ground sources.
  for (const IntegratedClass& c : integrated.classes()) {
    std::vector<ClassRef>& ground = merged.ground_sources[c.name];
    for (const ClassRef& source : c.sources) {
      const View* view =
          (source.schema == v1.schema->name()) ? &v1 : &v2;
      auto it = view->ground_sources.find(source.class_name);
      if (it == view->ground_sources.end()) continue;
      ground.insert(ground.end(), it->second.begin(), it->second.end());
    }
  }
  // Carry and extend the rules.
  for (const View* view : {&v1, &v2}) {
    const std::string view_name = view->schema->name();
    for (const Rule& rule : view->rules) {
      merged.rules.push_back(RewriteRuleClasses(
          rule, [&](const std::string& class_name) {
            const std::string mapped =
                integrated.NameOf({view_name, class_name});
            return mapped.empty() ? class_name : mapped;
          }));
    }
  }
  for (const Rule& rule : integrated.rules()) {
    merged.rules.push_back(rule);
  }
  *last_round = integrated;
  return merged;
}

Result<GlobalSchema> Fsm::IntegrateAll(Strategy strategy) {
  if (agents_.empty()) {
    return Status::FailedPrecondition("no agents registered");
  }
  std::vector<View> views;
  views.reserve(agents_.size());
  for (const std::unique_ptr<FsmAgent>& agent : agents_) {
    views.push_back(MakeLeafView(*agent));
  }

  GlobalSchema global;
  if (views.size() == 1) {
    global.schema = *views.front().schema;
    global.ground_sources = views.front().ground_sources;
    return global;
  }

  switch (strategy) {
    case Strategy::kAccumulation: {
      // Fig. 2(a): fold one schema at a time into the running result.
      View acc = std::move(views.front());
      for (size_t i = 1; i < views.size(); ++i) {
        Result<View> next =
            IntegrateViews(std::move(acc), std::move(views[i]),
                           &global.total_stats, &global.last_round);
        if (!next.ok()) return next.status();
        acc = std::move(next).value();
        ++global.rounds;
      }
      views.clear();
      views.push_back(std::move(acc));
      break;
    }
    case Strategy::kBalanced: {
      // Fig. 2(b): integrate pairs level by level.
      while (views.size() > 1) {
        std::vector<View> next_level;
        for (size_t i = 0; i + 1 < views.size(); i += 2) {
          Result<View> merged =
              IntegrateViews(std::move(views[i]), std::move(views[i + 1]),
                             &global.total_stats, &global.last_round);
          if (!merged.ok()) return merged.status();
          next_level.push_back(std::move(merged).value());
          ++global.rounds;
        }
        if (views.size() % 2 == 1) {
          next_level.push_back(std::move(views.back()));
        }
        views = std::move(next_level);
      }
      break;
    }
  }

  View& final_view = views.front();
  global.schema = *final_view.schema;
  global.ground_sources = final_view.ground_sources;
  global.rules = std::move(final_view.rules);
  return global;
}

Status Fsm::ConfigureEvaluator(Evaluator* evaluator,
                               const GlobalSchema& global,
                               bool evaluate) const {
  for (const auto& [concept_name, sources] : global.ground_sources) {
    for (const ClassRef& source : sources) {
      OOINT_RETURN_IF_ERROR(evaluator->BindConcept(
          concept_name, source.schema, source.class_name));
    }
  }
  for (const Rule& rule : global.rules) {
    const Status added = evaluator->AddRule(rule);
    if (!added.ok() && added.code() != StatusCode::kUnsupported) {
      return added;
    }
    // Unsupported rules (disjunctive heads) stay documentation-only.
  }
  evaluator->SetDataMappings(&mappings_);
  if (!evaluate) return Status::OK();
  return evaluator->Evaluate();
}

Result<std::unique_ptr<Evaluator>> Fsm::MakeEvaluator(
    const GlobalSchema& global) const {
  auto evaluator = std::make_unique<Evaluator>();
  for (const std::unique_ptr<FsmAgent>& agent : agents_) {
    evaluator->AddSource(agent->schema().name(), &agent->store());
  }
  OOINT_RETURN_IF_ERROR(ConfigureEvaluator(evaluator.get(), global));
  return evaluator;
}

Result<FederatedEvaluator> Fsm::MakeFederatedEvaluator(
    const GlobalSchema& global, const FederationOptions& options) const {
  if (options.query_deadline_ms < 0) {
    return Status::InvalidArgument(
        StrCat("query_deadline_ms must be >= 0 (or kNoDeadline), got ",
               options.query_deadline_ms));
  }
  if (options.admission.max_concurrent < 0 ||
      options.admission.max_queue_depth < 0 ||
      options.admission.queue_wait_deadline_ms < 0) {
    return Status::InvalidArgument(
        "admission policy values must be non-negative");
  }
  FederatedEvaluator fed;
  fed.evaluator = std::make_unique<Evaluator>();
  fed.evaluator->set_failure_policy(options.failure_policy);
  // Before ConfigureEvaluator: the build-time fixpoint below must
  // already run under the requested join-ordering mode.
  fed.evaluator->set_planner_mode(options.planner);
  if (options.query_deadline_ms != CancelToken::kNoDeadline &&
      options.query_mode != QueryMode::kDemandDriven) {
    // Materialized mode runs its one big fixpoint here, at build time;
    // the deadline bounds that run. Demand-driven clients instead mint
    // a fresh token per query (FsmClient::Demand).
    fed.evaluator->set_cancel_token(
        CancelToken::WithBudget(options.query_deadline_ms));
  }
  if (options.num_threads > 1) {
    fed.evaluator->set_thread_pool(
        std::make_shared<ThreadPool>(options.num_threads));
  }
  for (const std::unique_ptr<FsmAgent>& agent : agents_) {
    auto connection = std::make_unique<AgentConnection>(
        agent->schema().name(), &agent->store(), options.retry,
        options.breaker, options.injector);
    fed.connections.push_back(connection.get());
    fed.evaluator->AddSource(agent->schema().name(), std::move(connection));
  }
  // Demand-driven clients run per-query fixpoints; live-update clients
  // let the incremental engine's adoption do the (counted) initial load
  // — either way the eager fixpoint here would be wasted work and a
  // second pass over every agent's fault schedule.
  OOINT_RETURN_IF_ERROR(ConfigureEvaluator(
      fed.evaluator.get(), global,
      /*evaluate=*/options.query_mode != QueryMode::kDemandDriven &&
          !options.live_updates));
  return fed;
}

std::vector<Fsm::AgentExtentResult> Fsm::FetchExtentsAsync(
    const std::vector<AgentExtentRequest>& requests, ThreadPool* pool) {
  std::vector<ExtentRequest> lowered;
  lowered.reserve(requests.size());
  for (const AgentExtentRequest& request : requests) {
    lowered.push_back({request.connection, request.class_name});
  }
  const std::vector<ExtentReply> replies =
      FetchExtentsOverlapped(lowered, pool);
  std::vector<AgentExtentResult> results(replies.size());
  for (size_t i = 0; i < replies.size(); ++i) {
    results[i].status = replies[i].status;
    results[i].objects = replies[i].objects;
    results[i].wall_ms = replies[i].wall_ms;
  }
  return results;
}

}  // namespace ooint
