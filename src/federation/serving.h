#ifndef OOINT_FEDERATION_SERVING_H_
#define OOINT_FEDERATION_SERVING_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rules/evaluator.h"
#include "rules/result_pipeline.h"

namespace ooint {

class FsmClient;

/// Shape of one cursor-served query (FsmClient::OpenCursor): pagination,
/// an optional result pipeline (filter → project → top-k sort/limit),
/// and the cursor's idle lifetime.
struct ServingOptions {
  /// Rows per NextPage() call. Must be positive.
  size_t page_size = 100;
  /// Total rows the cursor serves across all pages (0 = unlimited).
  /// With `order_by` this is the top-k bound: the pipeline holds at
  /// most `limit` rows however large the answer set is.
  size_t limit = 0;
  /// Comparison filters applied to each row before projection.
  std::vector<RowFilter> filters;
  /// Variables to keep (empty = all). Pages always contain *distinct*
  /// rows of the projected shape, matching Run()'s answer semantics.
  std::vector<std::string> project;
  /// Sort variable (empty = stream order). Missing-last, ties broken on
  /// the full row ordering — see RowOrder.
  std::string order_by;
  bool descending = false;
  /// Virtual milliseconds (FsmClient::AdvanceServingClock) the cursor
  /// may sit idle between NextPage() calls before it expires; landing
  /// exactly on the bound survives, strictly exceeding it expires
  /// (the CancelToken boundary rule). 0 = never expires.
  double idle_expiry_ms = 0;
};

/// One page of answers. `degraded` is the degradation record of the
/// evaluation the cursor streams from and is carried on *every* page —
/// a deadline-truncated answer must flag page 7 as loudly as page 0.
struct Page {
  std::vector<Bindings> rows;
  size_t page_index = 0;
  /// More rows remain; NextPage() again to fetch them. A cursor whose
  /// rows are exhausted keeps answering empty pages with has_more ==
  /// false (pagination is idempotent at the end, not an error).
  bool has_more = false;
  DegradedInfo degraded;
};

/// Cumulative serving counters of one FsmClient connection, surfaced
/// through Explain() and FsmClient::serving_stats().
struct ServingStats {
  size_t cursors_opened = 0;
  size_t cursors_closed = 0;
  size_t cursors_expired = 0;
  size_t pages_served = 0;
  size_t rows_streamed = 0;
  /// Rows the bounded top-k heap discarded across all cursors.
  size_t heap_evictions = 0;
  /// Demand evaluations coalesced into a concurrent leader's pass vs.
  /// passes led (FederationOptions::coalesce_demand).
  size_t coalesce_hits = 0;
  size_t coalesce_leaders = 0;
};

/// A resumable, explicitly-closed answer cursor over one query.
///
/// Lifetime and pinning rules (tested in tests/federation/serving_test):
///  - A demand-mode cursor streams from the query's private
///    DemandOutcome and therefore has *snapshot semantics*: ApplyDelta
///    after open does not change (or invalidate) its pages. The shared
///    outcome keeps the snapshot's fact universe alive even after the
///    client's cache evicts it.
///  - A materialized cursor streams from the live derived store; any
///    ApplyDelta after open fails subsequent NextPage() calls with
///    kFailedPrecondition ("cursor epoch expired") — the documented
///    epoch error. Reconnect (Connect/Refresh) expires cursors of
///    either mode the same way.
///  - NextPage() is deadline-aware: the degradation record of the
///    underlying evaluation (including deadline_truncated) rides on
///    every page, and truncated outcomes are never cached (so the next
///    OpenCursor/Run recomputes — the PR 7 rule).
///
/// A cursor is single-consumer (serialize NextPage externally) and must
/// not outlive its FsmClient. Close() is idempotent; the destructor
/// closes implicitly.
class ServingCursor {
 public:
  ~ServingCursor();
  ServingCursor(const ServingCursor&) = delete;
  ServingCursor& operator=(const ServingCursor&) = delete;

  /// Serves the next page. Errors: kFailedPrecondition after Close()
  /// or an epoch expiry, kDeadlineExceeded after idle expiry.
  Result<Page> NextPage();

  /// Releases the pipeline and the pinned snapshot. Idempotent.
  void Close();
  bool closed() const { return closed_; }

  /// Instrumentation of this cursor's pipeline (peak held bytes, heap
  /// evictions, rows in/out).
  const PipelineStats& pipeline_stats() const;

 private:
  friend class FsmClient;
  ServingCursor(const FsmClient* client, ServingOptions options,
                std::shared_ptr<const Evaluator::DemandOutcome> outcome,
                std::unique_ptr<ResultPipeline> pipeline,
                DegradedInfo degraded, std::uint64_t fault_epoch,
                size_t delta_batches, bool pin_delta_epoch);

  const FsmClient* client_;
  ServingOptions options_;
  /// Demand mode: the pinned snapshot (null on materialized cursors).
  std::shared_ptr<const Evaluator::DemandOutcome> outcome_;
  std::unique_ptr<ResultPipeline> pipeline_;
  /// Kept so pipeline_stats() stays readable after Close().
  PipelineStats final_stats_;
  DegradedInfo degraded_;
  std::uint64_t fault_epoch_;
  size_t delta_batches_;
  bool pin_delta_epoch_;
  size_t page_index_ = 0;
  /// One-row lookahead so has_more is exact without overserving.
  bool lookahead_valid_ = false;
  Bindings lookahead_;
  bool exhausted_ = false;
  bool closed_ = false;
  /// Serving-clock bookkeeping for idle expiry.
  double last_use_ms_ = 0;
  /// Heap evictions already folded into the client's counters.
  size_t reported_evictions_ = 0;
};

}  // namespace ooint

#endif  // OOINT_FEDERATION_SERVING_H_
