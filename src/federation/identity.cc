#include "federation/identity.h"

#include <map>

#include "common/string_util.h"

namespace ooint {

namespace {

/// The comparable key values of one object attribute (elements for
/// multi-valued attributes; empty for null).
std::vector<Value> KeyValues(const Object& object, const std::string& attr) {
  const Value& value = object.Get(attr);
  if (value.is_null()) return {};
  if (value.kind() == ValueKind::kSet) return value.AsSet();
  return {value};
}

}  // namespace

Result<size_t> LinkSameObjectsByKey(Fsm* fsm, const std::string& a_schema,
                                    const std::string& a_class,
                                    const std::string& a_attr,
                                    const std::string& b_schema,
                                    const std::string& b_class,
                                    const std::string& b_attr,
                                    const std::string& mapping_attr) {
  FsmAgent* a_agent = fsm->FindAgent(a_schema);
  FsmAgent* b_agent = fsm->FindAgent(b_schema);
  if (a_agent == nullptr || b_agent == nullptr) {
    return Status::NotFound(
        StrCat("no agent exports schema '",
               a_agent == nullptr ? a_schema : b_schema, "'"));
  }
  Result<std::vector<Oid>> a_extent = a_agent->store().Extent(a_class);
  if (!a_extent.ok()) return a_extent.status();
  Result<std::vector<Oid>> b_extent = b_agent->store().Extent(b_class);
  if (!b_extent.ok()) return b_extent.status();

  const DataMapping* mapping =
      mapping_attr.empty()
          ? nullptr
          : fsm->mappings().Find(mapping_attr, b_schema, b_attr);

  // Index the A side by key value.
  std::multimap<Value, Oid> a_index;
  for (const Oid& oid : a_extent.value()) {
    const Object* object = a_agent->store().Find(oid);
    if (object == nullptr) continue;
    for (const Value& key : KeyValues(*object, a_attr)) {
      a_index.emplace(key, oid);
    }
  }

  size_t linked = 0;
  for (const Oid& b_oid : b_extent.value()) {
    const Object* object = b_agent->store().Find(b_oid);
    if (object == nullptr) continue;
    for (const Value& raw : KeyValues(*object, b_attr)) {
      Value key = raw;
      if (mapping != nullptr) {
        Result<Value> mapped = mapping->MapToIntegrated(raw);
        if (!mapped.ok()) continue;  // unmapped values simply don't join
        key = std::move(mapped).value();
      }
      auto [begin, end] = a_index.equal_range(key);
      for (auto it = begin; it != end; ++it) {
        fsm->mappings().DeclareSameObject(it->second, b_oid);
        ++linked;
      }
    }
  }
  return linked;
}

}  // namespace ooint
