#ifndef OOINT_FEDERATION_FSM_H_
#define OOINT_FEDERATION_FSM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "assertions/assertion_set.h"
#include "common/admission.h"
#include "common/cancel.h"
#include "common/result.h"
#include "datamap/data_mapping.h"
#include "federation/agent_connection.h"
#include "federation/fsm_agent.h"
#include "integrate/consistency.h"
#include "integrate/integrator.h"
#include "rules/evaluator.h"

namespace ooint {

/// The result of integrating all registered component databases: the
/// lowered global schema, the rules accumulated across rounds, and the
/// provenance linking every global class back to the agent-level classes
/// that populate it.
struct GlobalSchema {
  /// The global schema in plain form.
  Schema schema{"IS"};
  /// Global class name -> ground (agent schema, class) sources.
  std::map<std::string, std::vector<ClassRef>> ground_sources;
  /// All rules generated across integration rounds, rewritten to the
  /// final class names.
  std::vector<Rule> rules;
  /// Aggregated instrumentation over every pairwise round.
  IntegrationStats total_stats;
  /// The last round's full integrated schema (provenance, kinds, value
  /// set operations).
  IntegratedSchema last_round{"IS"};
  /// Number of pairwise integration rounds performed.
  size_t rounds = 0;
};

/// How FsmClient answers queries (see DESIGN.md "Demand-driven
/// evaluation").
enum class QueryMode {
  /// Connect() materializes the full global closure once; queries are
  /// pattern matches against it. Best for extent-heavy traffic.
  kMaterialized,
  /// Connect() only integrates schemas; each query runs a goal-directed
  /// (magic-set rewritten, relevance-pruned) fixpoint, memoized in a
  /// per-connection cache. Best for selective interactive traffic.
  /// Agent faults surface per query rather than at Connect() time.
  kDemandDriven,
};

/// How the federation behaves when component databases fail (see
/// DESIGN.md "Degraded federation semantics").
struct FederationOptions {
  /// Strict fails the whole evaluation on the first unreachable agent;
  /// partial answers from the reachable ones and reports the rest.
  FailurePolicy failure_policy = FailurePolicy::kStrict;
  /// How FsmClient::Run answers (materialize-at-connect vs. per-query
  /// demand-driven evaluation).
  QueryMode query_mode = QueryMode::kMaterialized;
  /// Per-connection retry/backoff/deadline parameters.
  RetryPolicy retry;
  /// Per-connection circuit-breaker thresholds.
  BreakerPolicy breaker;
  /// Optional deterministic fault schedule (testing/chaos drills).
  /// Borrowed; must outlive the evaluator built from these options.
  FaultInjector* injector = nullptr;
  /// Worker threads of the federation runtime. 1 (the default) keeps
  /// every code path exactly as the serial runtime: no pool is created,
  /// fetches run in binding order, fixpoint rounds run single-threaded.
  /// More than 1 overlaps extent fetches across agents and parallelizes
  /// each semi-naive round; derived fact sets are identical either way
  /// (see DESIGN.md "Parallel execution model").
  int num_threads = 1;
  /// End-to-end deadline, in *virtual* milliseconds, each query gets
  /// (see DESIGN.md "Overload-robust serving"). kNoDeadline — the
  /// default — disables deadlines entirely. A query that runs out of
  /// budget unwinds with kDeadlineExceeded under kStrict, or returns a
  /// sound subset of the full answer under kPartial, with the missing
  /// concepts accounted in DegradedInfo as `deadline_truncated` —
  /// disjoint from fault-skips. 0 is a valid (already-expired) deadline:
  /// such queries fail fast before fetching anything; negative values
  /// are rejected with kInvalidArgument when the evaluator is built.
  double query_deadline_ms = CancelToken::kNoDeadline;
  /// Admission control in front of the serving path (FsmClient::Run /
  /// Extent / demand queries). Disabled by default; with
  /// `admission.max_concurrent > 0`, over-limit queries queue up to
  /// `max_queue_depth` deep (waiting at most `queue_wait_deadline_ms`
  /// real ms) and are otherwise shed fast with kResourceExhausted.
  AdmissionPolicy admission;
  /// Live updates (DESIGN.md §4j): a kMaterialized client connected
  /// with this flag runs its initial fixpoint through the counting /
  /// DRed incremental engine and then accepts FsmClient::ApplyDelta
  /// feeds, maintaining the derived store batch by batch instead of
  /// rebuilding. The initial load is strict (a failing agent fails
  /// Connect) regardless of failure_policy — incremental maintenance
  /// over a partially loaded base would drift from every rebuild.
  /// Demand-driven clients ignore the flag: they re-fetch per query and
  /// only need the (agent, epoch) cache invalidation ApplyDelta always
  /// performs.
  bool live_updates = false;
  /// Single-flight coalescing of demand evaluations on the serving path
  /// (DESIGN.md §4k): concurrent cache-missing queries whose goal
  /// pattern is identical — hence identical magic-set adornment and
  /// seeds — share one evaluator pass. The first miss leads, later
  /// arrivals wait and adopt the leader's outcome, so N concurrent
  /// requests for a zipfian-popular goal cost ~1 evaluation. A
  /// deadline-truncated leader outcome is never adopted (truncated
  /// answers are served once, not replayed — the PR 7 rule); joiners
  /// then evaluate for themselves. Only meaningful with
  /// QueryMode::kDemandDriven; off by default so single-client serial
  /// workloads keep today's counters bit for bit.
  bool coalesce_demand = false;
  /// Rule-body join ordering (see DESIGN.md §4l). kCostBased — the
  /// default — precomputes per-(rule, stratum) plans replaying the
  /// historical most-bound-first heuristic, overriding it only when
  /// postings cardinalities prove another order cheaper. kFixedSip
  /// forces strict left-to-right evaluation (indexes still on): the
  /// conformance family 12 foil and a debugging escape hatch. Derived
  /// fact sets are identical in both modes.
  PlannerMode planner = PlannerMode::kCostBased;
};

/// A federated evaluator plus views of the per-agent connections it
/// owns (for health reporting). Connections are keyed by agent schema
/// name, in agents() order.
struct FederatedEvaluator {
  std::unique_ptr<Evaluator> evaluator;
  std::vector<AgentConnection*> connections;
};

/// The Federated System Manager (Fig. 1, middle layer): registers the
/// FSM-agents (component databases), holds the correspondence assertions
/// and data mappings declared by DBAs, merges the local schemas into a
/// global one, and builds the federated evaluator queries run against.
class Fsm {
 public:
  /// How more than two schemas are combined (Fig. 2):
  enum class Strategy {
    /// (a) accumulate one schema at a time into the running result.
    kAccumulation,
    /// (b) integrate pairs, then pairs of results, until one remains.
    kBalanced,
  };

  Fsm() = default;

  /// Registers a component database; its schema name must be unique.
  Status RegisterAgent(std::unique_ptr<FsmAgent> agent);
  FsmAgent* FindAgent(const std::string& schema_name) const;
  const std::vector<std::unique_ptr<FsmAgent>>& agents() const {
    return agents_;
  }

  /// Declares correspondence assertions, in the textual assertion
  /// language or pre-built. Assertions reference agent schema names.
  Status DeclareAssertions(const std::string& text);
  Status AddAssertion(Assertion assertion);
  const std::vector<Assertion>& assertions() const { return assertions_; }

  /// The value-level data mappings and OID identities (Section 3).
  DataMappingRegistry& mappings() { return mappings_; }
  const DataMappingRegistry& mappings() const { return mappings_; }

  /// The attribute integration functions (Principle 3).
  AifRegistry& aifs() { return aifs_; }
  const AifRegistry& aifs() const { return aifs_; }

  /// Runs the static consistency analysis (integrate/consistency.h)
  /// over every registered schema pair, against the assertions that
  /// relate that pair. Aggregates all findings.
  Result<std::vector<ConsistencyFinding>> CheckAllConsistency() const;

  /// Integrates every registered schema into a global one.
  Result<GlobalSchema> IntegrateAll(Strategy strategy = Strategy::kAccumulation);

  /// Builds a federated evaluator over `global`: agent stores as
  /// sources (direct, infallible pointers), ground-source concept
  /// bindings, and every definite rule. Evaluate() has already been run
  /// on the returned evaluator.
  Result<std::unique_ptr<Evaluator>> MakeEvaluator(
      const GlobalSchema& global) const;

  /// Like MakeEvaluator, but every agent is reached through a
  /// fault-tolerant AgentConnection configured by `options` (retries,
  /// deadlines, circuit breaking, optional fault injection). Under
  /// FailurePolicy::kPartial a degraded federation still evaluates; the
  /// evaluator's degraded() record says what was skipped.
  Result<FederatedEvaluator> MakeFederatedEvaluator(
      const GlobalSchema& global, const FederationOptions& options = {}) const;

  /// One extent fetch against one agent connection.
  struct AgentExtentRequest {
    AgentConnection* connection = nullptr;
    std::string class_name;
  };
  /// Outcome of one request; `wall_ms` is the real time that fetch took.
  struct AgentExtentResult {
    Status status;
    std::vector<const Object*> objects;
    double wall_ms = 0;
  };

  /// Issues every request's FetchExtent concurrently on `pool`,
  /// overlapping the retry/backoff waits of distinct agents. Requests
  /// against the same connection stay serial and in request order, so
  /// each agent's fault schedule, jitter stream and breaker evolution
  /// are exactly what a serial loop would produce. Results come back in
  /// request order regardless of completion order. A null (or
  /// single-thread) pool degrades to the serial loop.
  static std::vector<AgentExtentResult> FetchExtentsAsync(
      const std::vector<AgentExtentRequest>& requests, ThreadPool* pool);

 private:
  /// Shared tail of the evaluator builders: concept bindings, rules,
  /// data mappings, then — unless `evaluate` is false (demand-driven
  /// clients run per-query fixpoints instead) — the fixpoint run.
  Status ConfigureEvaluator(Evaluator* evaluator, const GlobalSchema& global,
                            bool evaluate = true) const;

  /// One working operand of the pairwise integration process: a schema
  /// (local or intermediate) plus the provenance maps needed to rewrite
  /// assertions and rules into its namespace.
  struct View {
    std::unique_ptr<Schema> schema;
    /// "agentSchema.class" -> class name in this view.
    std::map<std::string, std::string> class_map;
    /// "agentSchema.class.attr" -> attribute name in this view.
    std::map<std::string, std::string> attr_map;
    std::map<std::string, std::vector<ClassRef>> ground_sources;
    std::vector<Rule> rules;
  };

  /// The identity view of one agent's schema.
  static View MakeLeafView(const FsmAgent& agent);

  /// Rewrites `assertion` into the namespaces of v1/v2; returns false
  /// (without error) when the assertion does not span the two views.
  bool RewriteAssertion(const View& v1, const View& v2,
                        const Assertion& original, Assertion* rewritten) const;

  /// Integrates two views into one (one round of Fig. 2).
  Result<View> IntegrateViews(View v1, View v2, IntegrationStats* stats,
                              IntegratedSchema* last_round);

  std::vector<std::unique_ptr<FsmAgent>> agents_;
  std::vector<Assertion> assertions_;
  DataMappingRegistry mappings_;
  AifRegistry aifs_;
};

}  // namespace ooint

#endif  // OOINT_FEDERATION_FSM_H_
