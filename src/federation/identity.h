#ifndef OOINT_FEDERATION_IDENTITY_H_
#define OOINT_FEDERATION_IDENTITY_H_

#include <string>

#include "common/result.h"
#include "federation/fsm.h"

namespace ooint {

/// Populates the data-mapping registry's cross-database object identity
/// ("oi1 = oi2 in terms of data mapping", Sections 3/5) by joining two
/// classes on key attributes: every object of `a_class` (in the agent
/// exporting `a_schema`) whose `a_attr` value equals some object of
/// `b_class`'s `b_attr` value is declared the same real-world entity.
///
/// An optional data mapping registered in the registry under
/// (`mapping_attr`, b-schema, b_attr) translates the B-side values
/// before comparison (unit conversions etc.); pass "" to compare raw
/// values.
///
/// Returns the number of identities declared. Extents include
/// subclasses; multi-valued keys match element-wise.
Result<size_t> LinkSameObjectsByKey(Fsm* fsm, const std::string& a_schema,
                                    const std::string& a_class,
                                    const std::string& a_attr,
                                    const std::string& b_schema,
                                    const std::string& b_class,
                                    const std::string& b_attr,
                                    const std::string& mapping_attr = "");

}  // namespace ooint

#endif  // OOINT_FEDERATION_IDENTITY_H_
