#ifndef OOINT_FEDERATION_MATERIALIZE_H_
#define OOINT_FEDERATION_MATERIALIZE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "datamap/data_mapping.h"
#include "federation/fsm.h"
#include "integrate/aif.h"

namespace ooint {

/// Materializes the value sets of integrated attributes (the value_set
/// computations of Principles 1 and 3) against the live component
/// databases.
///
/// For an integrated attribute IS_ab with sources a (from DB₁) and b
/// (from DB₂):
///
///   union:          value_set(a) ∪ value_set(b)
///   difference:     value_set(a) / value_set(b)
///   intersect-aif:  { AIF_ab(x, y) | x = oi₁.a, y = oi₂.b,
///                     oi₁ = oi₂ in terms of data mapping }
///   concatenation:  { x·y | same object-pair condition } (α(z))
///   more-specific:  value_set(a)  (the β case keeps the specific side)
///   copy:           value_set(a)
///
/// Values of the second source are first translated through the
/// registered data mapping F^A_{DB₂,b} when one exists (Section 3);
/// otherwise the paper's "default" identity mapping applies.
class Materializer {
 public:
  /// `fsm` supplies the agents, data mappings and AIFs; `global` the
  /// integrated schema. Both must outlive the materializer.
  Materializer(const Fsm* fsm, const GlobalSchema* global)
      : fsm_(fsm), global_(global) {}

  /// The materialized value set of attribute `attribute` of integrated
  /// class `class_name`, sorted and de-duplicated.
  Result<std::vector<Value>> ValueSet(const std::string& class_name,
                                      const std::string& attribute) const;

  /// The pairs (x, y) of same-entity values feeding an AIF or
  /// concatenation attribute (exposed for inspection / testing).
  struct ValuePair {
    Oid lhs_oid;
    Oid rhs_oid;
    Value lhs;
    Value rhs;
  };
  Result<std::vector<ValuePair>> MatchedPairs(
      const std::string& class_name, const std::string& attribute) const;

 private:
  /// Raw value set of one source path against its agent store, mapped
  /// through the data-mapping registry into the integrated domain.
  Result<std::vector<Value>> SourceValues(const std::string& integrated_attr,
                                          const Path& source) const;

  /// Looks up the integrated attribute metadata.
  Result<const IntegratedAttribute*> FindAttribute(
      const std::string& class_name, const std::string& attribute) const;

  const Fsm* fsm_;
  const GlobalSchema* global_;
};

}  // namespace ooint

#endif  // OOINT_FEDERATION_MATERIALIZE_H_
