#ifndef OOINT_FEDERATION_QUERY_PARSER_H_
#define OOINT_FEDERATION_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "federation/fsm_client.h"

namespace ooint {

/// A parsed federated query, e.g. the paper's ?-uncle(John, y) written
/// attribute-wise:
///
///   ?- S2.uncle(niece_nephew: "ssn-ann", Ussn#: who, name: who_name)
///
/// The class is referenced by *local* schema and name; the FSM-client
/// resolves it to its integrated concept. Bindings with quoted strings,
/// numbers, dates ("YYYY-MM-DD" strings stay strings; use typed values
/// programmatically) or true/false constrain the attribute; bare
/// identifiers are variables projected into the result. Dotted
/// attribute names address flattened nested attributes ("book.ISBN").
struct ParsedQuery {
  std::string schema;
  std::string class_name;
  Query query{""};
};

/// Parses the textual query form.
Result<ParsedQuery> ParseQuery(const std::string& text);

/// Parses `text`, resolves the class against `client`'s global schema
/// and runs it. `client` must be connected.
Result<std::vector<Bindings>> RunTextQuery(const FsmClient& client,
                                           const std::string& text);

}  // namespace ooint

#endif  // OOINT_FEDERATION_QUERY_PARSER_H_
