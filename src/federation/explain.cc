#include "federation/explain.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/string_util.h"

namespace ooint {

std::string QueryPlan::ToString() const {
  std::string out = StrCat("plan for ", concept_name, " {\n");
  for (const std::string& concept_ref : concepts) {
    out += StrCat("  concept ", concept_ref, "\n");
  }
  for (const ClassRef& scan : ground_scans) {
    out += StrCat("  scan ", scan.ToString(), "\n");
  }
  for (size_t rule : rules) {
    out += StrCat("  rule #", rule, "\n");
  }
  out += StrCat("  agents: ", Join(agents, ", "), "\n");
  if (!pruned_agents.empty()) {
    out += StrCat("  relevance-pruned agents (never contacted): ",
                  Join(pruned_agents, ", "), "\n");
  }
  if (demand_mode) {
    out += magic_applied
               ? StrCat("  demand-driven: magic rewrite, adornment [",
                        goal_adornment, "]\n")
               : StrCat("  demand-driven: full evaluation fallback (",
                        fallback_reason, ")\n");
  }
  if (num_threads > 1) {
    out += StrCat("  parallel: threads=", num_threads,
                  " fetch_overlap_saved_ms=", fetch_overlap_saved_ms, "\n");
  }
  if (query_deadline_ms != CancelToken::kNoDeadline) {
    out += StrCat("  deadline: ", query_deadline_ms, "ms per query\n");
  }
  if (admission_enabled) {
    out += StrCat("  admission: limit=", admission_max_concurrent,
                  " queue_depth=", admission_max_queue_depth,
                  " admitted=", admission.admitted,
                  " shed_full=", admission.rejected_full,
                  " shed_wait=", admission.rejected_wait,
                  " queued_now=", admission.queued,
                  " max_queued=", admission.max_queued,
                  " wait_ms=", admission.total_wait_ms, "\n");
  }
  if (live_updates || delta_batches > 0) {
    out += StrCat("  live-updates: batches=", delta_batches,
                  " facts+=", delta_facts_inserted,
                  " facts-=", delta_facts_deleted,
                  " overdeleted=", delta_overdeleted,
                  " rederived=", delta_rederived,
                  " rounds=", delta_rounds,
                  " cache_retained=", cache_entries_retained,
                  " cache_evicted=", cache_entries_evicted, "\n");
  }
  if (coalesce_demand || cursors_opened > 0) {
    out += StrCat("  serving: coalesce=", coalesce_demand ? "on" : "off",
                  " cursors=", cursors_opened,
                  " expired=", cursors_expired,
                  " pages=", pages_served,
                  " rows=", rows_streamed,
                  " heap_evictions=", serving_heap_evictions,
                  " coalesce_hits=", coalesce_hits,
                  " coalesce_leaders=", coalesce_leaders, "\n");
  }
  if (counters.present) {
    out += StrCat("  counters: derived=", counters.facts_derived,
                  " extents_fetched=", counters.extents_fetched,
                  " join_probes=", counters.join_probes,
                  " cache_hits=", counters.cache_hits,
                  counters.from_cache ? " (answered from cache)" : "", "\n");
    out += StrCat("  join kernels: cursor_steps=", counters.cursor_steps,
                  " merge_steps=", counters.merge_steps,
                  " gallop_steps=", counters.gallop_steps,
                  " plan_reorders=", counters.plan_reorders, "\n");
  }
  if (!skipped_agents.empty()) {
    out += StrCat("  DEGRADED: skipped ", Join(skipped_agents, ", "),
                  "; incomplete ", Join(incomplete_concepts, ", "), "\n");
  }
  if (deadline_truncated) {
    out += StrCat("  DEADLINE-TRUNCATED (sound subset): ",
                  Join(truncated_concepts, ", "), "\n");
  }
  out += "}";
  return out;
}

Result<QueryPlan> ExplainQuery(const GlobalSchema& global,
                               const std::string& concept_name,
                               const DegradedInfo* degraded) {
  QueryPlan plan;
  plan.concept_name = concept_name;

  // BFS through rule dependencies.
  std::set<std::string> seen = {concept_name};
  std::deque<std::string> frontier = {concept_name};
  std::set<size_t> rule_set;
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    plan.concepts.push_back(current);
    for (size_t i = 0; i < global.rules.size(); ++i) {
      const Rule& rule = global.rules[i];
      const std::vector<std::string> heads = rule.HeadConceptNames();
      if (std::find(heads.begin(), heads.end(), current) == heads.end()) {
        continue;
      }
      rule_set.insert(i);
      for (const std::string& body : rule.BodyConceptNames(false)) {
        if (seen.insert(body).second) frontier.push_back(body);
      }
    }
  }

  std::set<std::string> agent_set;
  for (const std::string& concept_ref : plan.concepts) {
    auto it = global.ground_sources.find(concept_ref);
    if (it == global.ground_sources.end()) continue;
    for (const ClassRef& source : it->second) {
      plan.ground_scans.push_back(source);
      agent_set.insert(source.schema);
    }
  }
  plan.rules.assign(rule_set.begin(), rule_set.end());
  plan.agents.assign(agent_set.begin(), agent_set.end());

  // Agents with ground sources entirely outside the plan: relevance
  // pruning guarantees a demand-driven run of this query never contacts
  // them.
  std::set<std::string> all_agents;
  for (const auto& [name, sources] : global.ground_sources) {
    (void)name;
    for (const ClassRef& source : sources) all_agents.insert(source.schema);
  }
  for (const std::string& agent : all_agents) {
    if (!agent_set.count(agent)) plan.pruned_agents.push_back(agent);
  }

  if (degraded != nullptr && degraded->degraded()) {
    for (const std::string& agent : plan.agents) {
      if (degraded->SkippedAgentNamed(agent)) {
        plan.skipped_agents.push_back(agent);
      }
    }
    for (const std::string& concept_ref : plan.concepts) {
      if (std::find(degraded->incomplete_concepts.begin(),
                    degraded->incomplete_concepts.end(),
                    concept_ref) != degraded->incomplete_concepts.end()) {
        plan.incomplete_concepts.push_back(concept_ref);
      }
      if (std::find(degraded->truncated_concepts.begin(),
                    degraded->truncated_concepts.end(),
                    concept_ref) != degraded->truncated_concepts.end()) {
        plan.truncated_concepts.push_back(concept_ref);
      }
    }
    plan.deadline_truncated = !plan.truncated_concepts.empty();
  }
  return plan;
}

}  // namespace ooint
