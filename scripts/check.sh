#!/usr/bin/env bash
# Full verification loop: configure, build, test, run every benchmark.
#
# Usage: scripts/check.sh [--asan|--all|--soak [N]]
#   --asan      build into build-asan/ with OOINT_SANITIZE=address,undefined
#               and run the tests under the sanitizers (benchmarks skipped:
#               sanitized timings are meaningless).
#   --all       the plain pass followed by the --asan pass — the CI matrix
#               in one command.
#   --soak [N]  build, then run the randomized conformance harness over N
#               seeds (default 5000) starting from a fresh offset; failing
#               seeds are shrunk to minimal repros and printed.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--all" ]]; then
  "$0"
  exec "$0" --asan
fi

if [[ "${1:-}" == "--soak" ]]; then
  COUNT="${2:-5000}"
  # A date-derived start offset explores fresh seed ranges on each day
  # while staying reproducible within one (override with SOAK_START).
  START="${SOAK_START:-$(( $(date +%Y%m%d) * 1000 ))}"
  CONFIG_ARGS=()
  # Only pick a generator on a fresh configure; an existing cache pins it.
  if command -v ninja >/dev/null 2>&1 && [[ ! -f build/CMakeCache.txt ]]; then
    CONFIG_ARGS+=(-G Ninja)
  fi
  cmake -B build -S . "${CONFIG_ARGS[@]}"
  cmake --build build -j --target conformance_soak
  echo "== conformance soak: $COUNT seeds from $START =="
  exec ./build/tests/harness/conformance_soak "$COUNT" "$START"
fi

BUILD_DIR=build
CONFIG_ARGS=()
RUN_BENCH=1
if [[ "${1:-}" == "--asan" ]]; then
  BUILD_DIR=build-asan
  CONFIG_ARGS+=(-DOOINT_SANITIZE=address,undefined)
  RUN_BENCH=0
fi

# Prefer Ninja when available; fall back to the default generator. An
# existing cache pins whatever generator configured it first.
if command -v ninja >/dev/null 2>&1 && [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  CONFIG_ARGS+=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . "${CONFIG_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure
if [[ "$RUN_BENCH" == 1 ]]; then
  # Smoke mode: one short iteration per benchmark proves they still run
  # (including bench_query's demand-driven suite) without turning the
  # verification loop into a measurement session — scripts/bench.sh is
  # the tool for real (Release) numbers.
  for b in "$BUILD_DIR"/bench/bench_*; do "$b" --benchmark_min_time=0.01; done
fi
