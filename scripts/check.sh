#!/usr/bin/env bash
# Full verification loop: configure, build, test, run every benchmark.
#
# Usage: scripts/check.sh [--asan|--tsan|--all|--soak [N]]
#   --asan      build into build-asan/ with OOINT_SANITIZE=address,undefined
#               and run the tests under the sanitizers (benchmarks skipped:
#               sanitized timings are meaningless).
#   --tsan      build into build-tsan/ with OOINT_SANITIZE=thread and run
#               the concurrency-relevant suites (thread pool, parallel
#               evaluation, federation, fault injection, conformance) with
#               the parallel runtime forced to 4 workers, then smoke-run
#               bench_parallel so the overlapped-fetch path executes under
#               the race detector.
#   --all       the plain pass, the --asan pass, then the --tsan pass —
#               the CI matrix in one command.
#   --soak [N]  build, then run the randomized conformance harness over N
#               seeds (default 5000) starting from a fresh offset; failing
#               seeds are shrunk to minimal repros and printed. Honors
#               OOINT_SOAK_THREADS: when set (>1), the parallel-vs-serial
#               oracle pins its worker-pool size to it instead of drawing
#               from {2, 4, 8} per seed.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--all" ]]; then
  "$0"
  "$0" --asan
  exec "$0" --tsan
fi

if [[ "${1:-}" == "--soak" ]]; then
  COUNT="${2:-5000}"
  # A date-derived start offset explores fresh seed ranges on each day
  # while staying reproducible within one (override with SOAK_START).
  START="${SOAK_START:-$(( $(date +%Y%m%d) * 1000 ))}"
  CONFIG_ARGS=()
  # Only pick a generator on a fresh configure; an existing cache pins it.
  if command -v ninja >/dev/null 2>&1 && [[ ! -f build/CMakeCache.txt ]]; then
    CONFIG_ARGS+=(-G Ninja)
  fi
  cmake -B build -S . "${CONFIG_ARGS[@]}"
  cmake --build build -j --target conformance_soak
  if [[ -n "${OOINT_SOAK_THREADS:-}" ]]; then
    echo "== conformance soak: $COUNT seeds from $START (parallel oracle pinned to ${OOINT_SOAK_THREADS} threads) =="
  else
    echo "== conformance soak: $COUNT seeds from $START =="
  fi
  # conformance_soak reads OOINT_SOAK_THREADS itself; exec inherits it.
  exec ./build/tests/harness/conformance_soak "$COUNT" "$START"
fi

BUILD_DIR=build
CONFIG_ARGS=()
RUN_BENCH=1
TEST_FILTER=""
if [[ "${1:-}" == "--asan" ]]; then
  BUILD_DIR=build-asan
  CONFIG_ARGS+=(-DOOINT_SANITIZE=address,undefined)
  RUN_BENCH=0
fi
if [[ "${1:-}" == "--tsan" ]]; then
  BUILD_DIR=build-tsan
  CONFIG_ARGS+=(-DOOINT_SANITIZE=thread)
  RUN_BENCH=0
  # The suites that exercise shared state across threads; the rest of
  # the tree is single-threaded and only slows the (expensive) TSan run.
  TEST_FILTER="ThreadPool|Parallel|Connection|Breaker|Fault|QueryCache|Demand|Federat|Conformance|Evaluat|Admission|Cancel|Overload|LiveUpdate|Incremental|Delta|Serving|Cursor|Pipeline|JoinKernel|Planner"
  # Force the conformance sweep's parallel-vs-serial oracle onto a
  # fixed 4-worker pool so every seed runs the parallel runtime.
  export OOINT_SOAK_THREADS=4
fi

# Prefer Ninja when available; fall back to the default generator. An
# existing cache pins whatever generator configured it first.
if command -v ninja >/dev/null 2>&1 && [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  CONFIG_ARGS+=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . "${CONFIG_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
if [[ -n "$TEST_FILTER" ]]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$TEST_FILTER"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure
fi
if [[ "${1:-}" == "--tsan" ]]; then
  # One short pass over the thread sweeps: the overlapped fetches, the
  # parallel rounds and the concurrent serving path all run under the
  # race detector (timings are meaningless and discarded).
  "$BUILD_DIR"/bench/bench_parallel --benchmark_min_time=0.01
fi
if [[ "$RUN_BENCH" == 1 ]]; then
  # Smoke mode: one short iteration per benchmark proves they still run
  # (including bench_query's demand-driven suite) without turning the
  # verification loop into a measurement session — scripts/bench.sh is
  # the tool for real (Release) numbers.
  for b in "$BUILD_DIR"/bench/bench_*; do "$b" --benchmark_min_time=0.01; done
  # Columnar-store memory regression guard: fails when bytes/fact
  # exceeds the checked-in budget by >15% (bench/bench_storage.cc).
  "$BUILD_DIR"/bench/bench_storage --budget_check
  # Serving-path regression guard: fails when the mixed-workload p99
  # exceeds its budget or bounded top-k stops beating whole-answer
  # materialization on held bytes (bench/bench_serving.cc).
  "$BUILD_DIR"/bench/bench_serving --p99_check
  # Join-kernel regression guard: fails when the vectorized kernels'
  # speedup over the retired probe loop drops below the checked-in
  # floor on the derive-bound reach closure (bench/bench_join.cc).
  "$BUILD_DIR"/bench/bench_join --regression_check
fi
