#!/usr/bin/env bash
# Full verification loop: configure, build, test, run every benchmark.
#
# Usage: scripts/check.sh [--asan|--all]
#   --asan  build into build-asan/ with OOINT_SANITIZE=address,undefined
#           and run the tests under the sanitizers (benchmarks skipped:
#           sanitized timings are meaningless).
#   --all   the plain pass followed by the --asan pass — the CI matrix
#           in one command.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--all" ]]; then
  "$0"
  exec "$0" --asan
fi

BUILD_DIR=build
CONFIG_ARGS=()
RUN_BENCH=1
if [[ "${1:-}" == "--asan" ]]; then
  BUILD_DIR=build-asan
  CONFIG_ARGS+=(-DOOINT_SANITIZE=address,undefined)
  RUN_BENCH=0
fi

# Prefer Ninja when available; fall back to the default generator.
if command -v ninja >/dev/null 2>&1; then
  CONFIG_ARGS+=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . "${CONFIG_ARGS[@]}"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure
if [[ "$RUN_BENCH" == 1 ]]; then
  for b in "$BUILD_DIR"/bench/bench_*; do "$b"; done
fi
