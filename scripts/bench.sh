#!/usr/bin/env bash
# Runs a benchmark suite in a Release build and writes the JSON
# snapshot the docs reference (BENCH_<suite>.json at the repo root),
# stamped with the git SHA and build type it was measured at.
#
# Usage: scripts/bench.sh [target] [benchmark_filter]
#   scripts/bench.sh                             # bench_eval, full suite
#   scripts/bench.sh bench_query                 # the demand-query suite
#   scripts/bench.sh bench_eval 'BM_BottomUp.*'  # subset
#
# The Release build lives in build-bench/ (override with BUILD_DIR) so
# benchmark numbers never come from the default debug tree.
set -euo pipefail
cd "$(dirname "$0")/.."

TARGET="${1:-bench_eval}"
FILTER="${2:-.}"
BUILD_DIR="${BUILD_DIR:-build-bench}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
OUT="BENCH_${TARGET#bench_}.json"
GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD -- 2>/dev/null; then
  GIT_SHA="${GIT_SHA}-dirty"
fi

CONFIG_ARGS=(-DCMAKE_BUILD_TYPE="$BUILD_TYPE")
if command -v ninja >/dev/null 2>&1 && [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  CONFIG_ARGS+=(-G Ninja)
fi
cmake -B "$BUILD_DIR" -S . "${CONFIG_ARGS[@]}"

# A snapshot is only trustworthy from an optimized library. A reused
# BUILD_DIR configured with a different build type would silently taint
# every number (CMake ignores a changed -DCMAKE_BUILD_TYPE on an
# existing cache), so a mismatched cache fails fast.
CACHED_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
if [[ -n "$CACHED_TYPE" && "$CACHED_TYPE" != "$BUILD_TYPE" ]]; then
  echo "error: $BUILD_DIR is configured as $CACHED_TYPE, not $BUILD_TYPE." >&2
  echo "       Delete $BUILD_DIR or point BUILD_DIR at a $BUILD_TYPE tree." >&2
  exit 1
fi
EXTRA_CONTEXT=()
if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "=======================================================================" >&2
  echo "WARNING: benchmarking a $BUILD_TYPE library." >&2
  echo "         These numbers are NOT comparable to the committed Release" >&2
  echo "         snapshots; $OUT will be stamped library_build_type=debug." >&2
  echo "=======================================================================" >&2
  EXTRA_CONTEXT+=(--benchmark_context=library_build_type="$(echo "$BUILD_TYPE" | tr '[:upper:]' '[:lower:]')")
fi

cmake --build "$BUILD_DIR" -j --target "$TARGET"

"$BUILD_DIR/bench/$TARGET" \
  --benchmark_filter="$FILTER" \
  --benchmark_context=git_sha="$GIT_SHA" \
  --benchmark_context=build_type="$BUILD_TYPE" \
  ${EXTRA_CONTEXT[@]+"${EXTRA_CONTEXT[@]}"} \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json
echo "Wrote $(pwd)/$OUT (git_sha=$GIT_SHA, build_type=$BUILD_TYPE)"
