#!/usr/bin/env bash
# Runs a benchmark suite in a Release build and writes the JSON
# snapshot the docs reference (BENCH_<suite>.json at the repo root),
# stamped with the git SHA and build type it was measured at.
#
# Usage: scripts/bench.sh [target] [benchmark_filter]
#   scripts/bench.sh                             # bench_eval, full suite
#   scripts/bench.sh bench_query                 # the demand-query suite
#   scripts/bench.sh bench_eval 'BM_BottomUp.*'  # subset
#
# The Release build lives in build-bench/ (override with BUILD_DIR) so
# benchmark numbers never come from the default debug tree.
set -euo pipefail
cd "$(dirname "$0")/.."

TARGET="${1:-bench_eval}"
FILTER="${2:-.}"
BUILD_DIR="${BUILD_DIR:-build-bench}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
OUT="BENCH_${TARGET#bench_}.json"
GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD -- 2>/dev/null; then
  GIT_SHA="${GIT_SHA}-dirty"
fi

CONFIG_ARGS=(-DCMAKE_BUILD_TYPE="$BUILD_TYPE")
if command -v ninja >/dev/null 2>&1 && [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  CONFIG_ARGS+=(-G Ninja)
fi
cmake -B "$BUILD_DIR" -S . "${CONFIG_ARGS[@]}"
cmake --build "$BUILD_DIR" -j --target "$TARGET"

"$BUILD_DIR/bench/$TARGET" \
  --benchmark_filter="$FILTER" \
  --benchmark_context=git_sha="$GIT_SHA" \
  --benchmark_context=build_type="$BUILD_TYPE" \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json
echo "Wrote $(pwd)/$OUT (git_sha=$GIT_SHA, build_type=$BUILD_TYPE)"
