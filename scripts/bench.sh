#!/usr/bin/env bash
# Runs the evaluator benchmarks and writes the JSON snapshot the docs
# reference (BENCH_eval.json at the repo root).
#
# Usage: scripts/bench.sh [benchmark_filter]
#   scripts/bench.sh                      # full bench_eval suite
#   scripts/bench.sh 'BM_BottomUp.*'      # subset
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-.}"
BUILD_DIR="${BUILD_DIR:-build}"

if [[ ! -x "$BUILD_DIR/bench/bench_eval" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j --target bench_eval
fi

"$BUILD_DIR/bench/bench_eval" \
  --benchmark_filter="$FILTER" \
  --benchmark_format=json \
  --benchmark_out=BENCH_eval.json \
  --benchmark_out_format=json
echo "Wrote $(pwd)/BENCH_eval.json"
