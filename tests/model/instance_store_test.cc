#include "model/instance_store.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

class InstanceStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = std::make_unique<Schema>("S1");
    ClassDef person("person");
    person.AddAttribute("name", ValueKind::kString)
        .AddSetAttribute("interests", ValueKind::kString);
    ASSERT_OK(schema_->AddClass(std::move(person)).status());
    ClassDef student("student");
    student.AddAttribute("name", ValueKind::kString);
    ASSERT_OK(schema_->AddClass(std::move(student)).status());
    ASSERT_OK(schema_->AddIsA("student", "person"));
    ASSERT_OK(schema_->Finalize());
    store_ = std::make_unique<InstanceStore>(schema_.get());
    store_->SetOidContext("agent1", "ooint", "testdb");
  }

  std::unique_ptr<Schema> schema_;
  std::unique_ptr<InstanceStore> store_;
};

TEST_F(InstanceStoreTest, NewObjectAssignsFederationOids) {
  Object* p = ValueOrDie(store_->NewObject("person"));
  EXPECT_EQ(p->oid().ToString(), "agent1.ooint.testdb.person.1");
  Object* q = ValueOrDie(store_->NewObject("person"));
  EXPECT_EQ(q->oid().ToString(), "agent1.ooint.testdb.person.2");
  EXPECT_EQ(store_->size(), 2u);
}

TEST_F(InstanceStoreTest, NewObjectRejectsUnknownClass) {
  EXPECT_FALSE(store_->NewObject("ghost").ok());
}

TEST_F(InstanceStoreTest, FindByOid) {
  Object* p = ValueOrDie(store_->NewObject("person"));
  p->Set("name", Value::String("ann"));
  const Oid oid = p->oid();
  const Object* found = store_->Find(oid);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->Get("name"), Value::String("ann"));
  EXPECT_EQ(store_->Find(Oid("x", "y", "z", "r", 9)), nullptr);
}

TEST_F(InstanceStoreTest, ExtentIncludesSubclasses) {
  ValueOrDie(store_->NewObject("person"));
  ValueOrDie(store_->NewObject("student"));
  const ClassId person = schema_->FindClass("person");
  const ClassId student = schema_->FindClass("student");
  EXPECT_EQ(store_->DirectExtent(person).size(), 1u);
  // {<o : person>} includes the students (typing O-term semantics).
  EXPECT_EQ(store_->Extent(person).size(), 2u);
  EXPECT_EQ(store_->Extent(student).size(), 1u);
  EXPECT_EQ(ValueOrDie(store_->Extent("person")).size(), 2u);
  EXPECT_FALSE(store_->Extent("ghost").ok());
}

TEST_F(InstanceStoreTest, ValueSetIsLargestNonNullSubset) {
  Object* a = ValueOrDie(store_->NewObject("person"));
  a->Set("name", Value::String("ann"));
  Object* b = ValueOrDie(store_->NewObject("person"));
  b->Set("name", Value::String("bob"));
  Object* c = ValueOrDie(store_->NewObject("person"));
  (void)c;  // name unset: contributes nothing
  Object* d = ValueOrDie(store_->NewObject("student"));
  d->Set("name", Value::String("ann"));  // duplicate collapses
  const std::vector<Value> values =
      store_->ValueSet(schema_->FindClass("person"), "name");
  EXPECT_EQ(values.size(), 2u);
}

TEST_F(InstanceStoreTest, ValueSetFlattensMultiValuedAttributes) {
  Object* a = ValueOrDie(store_->NewObject("person"));
  a->Set("interests",
         Value::Set({Value::String("go"), Value::String("chess")}));
  const std::vector<Value> values =
      store_->ValueSet(schema_->FindClass("person"), "interests");
  EXPECT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], Value::String("chess"));
}

TEST_F(InstanceStoreTest, FindByAttribute) {
  Object* a = ValueOrDie(store_->NewObject("person"));
  a->Set("name", Value::String("ann"));
  Object* b = ValueOrDie(store_->NewObject("student"));
  b->Set("name", Value::String("ann"));
  const std::vector<Oid> hits = store_->FindByAttribute(
      schema_->FindClass("person"), "name", Value::String("ann"));
  EXPECT_EQ(hits.size(), 2u);  // subclass instances included
}

TEST_F(InstanceStoreTest, InsertRejectsDuplicateOid) {
  Object* a = ValueOrDie(store_->NewObject("person"));
  Object copy(a->oid(), a->class_id());
  EXPECT_EQ(store_->Insert(std::move(copy)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(InstanceStoreTest, InsertRejectsInvalidClassId) {
  Object bogus(Oid("a", "b", "c", "d", 1), 99);
  EXPECT_EQ(store_->Insert(std::move(bogus)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ObjectTest, AttributeAndAggAccess) {
  Object o(Oid("a", "b", "c", "person", 1), 0);
  o.Set("name", Value::String("ann"));
  o.AddAggTarget("works_in", Oid("a", "b", "c", "dept", 1));
  o.AddAggTarget("works_in", Oid("a", "b", "c", "dept", 2));
  EXPECT_TRUE(o.Has("name"));
  EXPECT_FALSE(o.Has("ghost"));
  EXPECT_TRUE(o.Get("ghost").is_null());
  EXPECT_EQ(o.AggTargets("works_in").size(), 2u);
  EXPECT_TRUE(o.AggTargets("ghost").empty());
  EXPECT_NE(o.ToString().find("name"), std::string::npos);
}

}  // namespace
}  // namespace ooint
