#include "model/oid.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

TEST(OidTest, PaperFormatRoundTrip) {
  // The example OID from Section 3 of the paper.
  const std::string text = "FSM-agent1.informix.PatientDB.patient-records.5";
  const Oid oid = ValueOrDie(Oid::Parse(text));
  EXPECT_EQ(oid.agent(), "FSM-agent1");
  EXPECT_EQ(oid.dbms(), "informix");
  EXPECT_EQ(oid.database(), "PatientDB");
  EXPECT_EQ(oid.relation(), "patient-records");
  EXPECT_EQ(oid.number(), 5u);
  EXPECT_EQ(oid.ToString(), text);
}

TEST(OidTest, AttributePrefix) {
  Oid oid("agent1", "informix", "PatientDB", "patient-records", 5);
  EXPECT_EQ(oid.AttributePrefix("name"),
            "agent1.informix.PatientDB.patient-records.name");
}

TEST(OidTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Oid::Parse("only.three.parts").ok());
  EXPECT_FALSE(Oid::Parse("a.b.c.d.notanumber").ok());
  EXPECT_FALSE(Oid::Parse("a.b.c.d.5x").ok());
  EXPECT_FALSE(Oid::Parse(".b.c.d.5").ok());
}

TEST(OidTest, EmptyAndEquality) {
  Oid empty;
  EXPECT_TRUE(empty.empty());
  Oid a("x", "y", "z", "r", 1);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, Oid("x", "y", "z", "r", 1));
  EXPECT_NE(a, Oid("x", "y", "z", "r", 2));
}

TEST(OidTest, TotalOrderForMapKeys) {
  Oid a("a", "d", "db", "r", 1);
  Oid b("a", "d", "db", "r", 2);
  Oid c("b", "d", "db", "r", 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // agent-major ordering
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace ooint
