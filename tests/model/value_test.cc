#include "model/value.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), ValueKind::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, ScalarConstructorsAndAccessors) {
  EXPECT_EQ(Value::Boolean(true).AsBoolean(), true);
  EXPECT_EQ(Value::Integer(-7).AsInteger(), -7);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Character('q').AsCharacter(), 'q');
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  const Date d{1999, 12, 31};
  EXPECT_EQ(Value::OfDate(d).AsDate(), d);
}

TEST(ValueTest, OidValue) {
  Oid oid("a", "d", "db", "rel", 3);
  EXPECT_EQ(Value::OfOid(oid).AsOid(), oid);
}

TEST(ValueTest, SetValueAndMembership) {
  Value set = Value::Set({Value::Integer(1), Value::Integer(2)});
  EXPECT_EQ(set.kind(), ValueKind::kSet);
  EXPECT_EQ(set.AsSet().size(), 2u);
  EXPECT_TRUE(set.SetContains(Value::Integer(2)));
  EXPECT_FALSE(set.SetContains(Value::Integer(3)));
  EXPECT_FALSE(Value::Integer(1).SetContains(Value::Integer(1)));
}

TEST(ValueTest, EqualityIsKindAndPayload) {
  EXPECT_EQ(Value::Integer(1), Value::Integer(1));
  EXPECT_NE(Value::Integer(1), Value::Integer(2));
  EXPECT_NE(Value::Integer(1), Value::Real(1.0));  // kinds differ
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Set({Value::Integer(1)}), Value::Set({Value::Integer(1)}));
}

TEST(ValueTest, TotalOrderIsKindMajor) {
  EXPECT_LT(Value::Null(), Value::Boolean(false));
  EXPECT_LT(Value::Integer(5), Value::String("a"));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_LT(Value::Integer(1), Value::Integer(2));
}

TEST(ValueTest, AsNumberCoercesIntegerAndReal) {
  EXPECT_DOUBLE_EQ(ValueOrDie(Value::Integer(4).AsNumber()), 4.0);
  EXPECT_DOUBLE_EQ(ValueOrDie(Value::Real(4.5).AsNumber()), 4.5);
  EXPECT_FALSE(Value::String("4").AsNumber().ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Integer(3).ToString(), "3");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Boolean(false).ToString(), "false");
  EXPECT_EQ(Value::Set({Value::Integer(1), Value::Integer(2)}).ToString(),
            "{1, 2}");
  EXPECT_EQ(Value::OfDate({2000, 1, 5}).ToString(), "2000-01-05");
}

TEST(DateTest, ParseRoundTrip) {
  const Date d = ValueOrDie(Date::Parse("1999-04-01"));
  EXPECT_EQ(d.year, 1999);
  EXPECT_EQ(d.month, 4);
  EXPECT_EQ(d.day, 1);
  EXPECT_EQ(d.ToString(), "1999-04-01");
  EXPECT_FALSE(Date::Parse("1999-13-01").ok());
  EXPECT_FALSE(Date::Parse("1999-04").ok());
  EXPECT_FALSE(Date::Parse("garbage").ok());
}

TEST(CompareTest, EqualityAcrossOps) {
  EXPECT_TRUE(ValueOrDie(Compare(Value::Integer(1), CompareOp::kEq,
                                 Value::Integer(1))));
  EXPECT_TRUE(ValueOrDie(Compare(Value::Integer(1), CompareOp::kNe,
                                 Value::Integer(2))));
  // Eq across kinds is false, not an error.
  EXPECT_FALSE(ValueOrDie(Compare(Value::Integer(1), CompareOp::kEq,
                                  Value::String("1"))));
}

TEST(CompareTest, NumericMixingForInequalities) {
  EXPECT_TRUE(ValueOrDie(Compare(Value::Integer(1), CompareOp::kLt,
                                 Value::Real(1.5))));
  EXPECT_TRUE(ValueOrDie(Compare(Value::Real(2.0), CompareOp::kGe,
                                 Value::Integer(2))));
}

TEST(CompareTest, OrderingMismatchedKindsIsError) {
  EXPECT_FALSE(Compare(Value::Integer(1), CompareOp::kLt,
                       Value::String("2")).ok());
}

TEST(CompareTest, StringAndDateOrdering) {
  EXPECT_TRUE(ValueOrDie(Compare(Value::String("a"), CompareOp::kLt,
                                 Value::String("b"))));
  EXPECT_TRUE(ValueOrDie(Compare(Value::OfDate({1999, 1, 1}), CompareOp::kLe,
                                 Value::OfDate({1999, 1, 2}))));
}

TEST(CompareTest, OpNames) {
  EXPECT_STREQ(CompareOpName(CompareOp::kEq), "==");
  EXPECT_STREQ(CompareOpName(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpName(CompareOp::kNe), "!=");
}

}  // namespace
}  // namespace ooint
