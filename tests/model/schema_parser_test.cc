#include "model/schema_parser.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/fixtures.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

constexpr const char* kUniversityText = R"(
# the paper's S1 (Fig. 18), in the schema-definition language
schema S1 {
  class person {
    ssn#: string;
    full_name: string;
    interests: {string};      # multi-valued
    city: string;
  }
  class student {
    ssn#: string;
  }
  class lecturer {
    ssn#: string;
    course: string;
  }
  is_a(student, person);
  is_a(lecturer, person);
}
)";

TEST(SchemaParserTest, ParsesClassesAttributesAndLinks) {
  const Schema schema = ValueOrDie(SchemaParser::Parse(kUniversityText));
  EXPECT_EQ(schema.name(), "S1");
  EXPECT_TRUE(schema.finalized());
  EXPECT_EQ(schema.NumClasses(), 3u);
  const ClassDef& person = schema.class_def(schema.FindClass("person"));
  const Attribute* interests = person.FindAttribute("interests");
  ASSERT_NE(interests, nullptr);
  EXPECT_TRUE(interests->multi_valued);
  EXPECT_EQ(interests->type.scalar, ValueKind::kString);
  EXPECT_TRUE(schema.IsSubclassOf(schema.FindClass("lecturer"),
                                  schema.FindClass("person")));
}

TEST(SchemaParserTest, ParsesClassTypedAndAggregationMembers) {
  const Schema schema = ValueOrDie(SchemaParser::Parse(R"(
schema S1 {
  class person_info { name: string; birthday: date; }
  class publisher { pname: string; }
  class Book {
    ISBN: string;
    author: class person_info;
    published_by: agg publisher [m:1];
    reviewed_by: agg person_info;
  }
}
)"));
  const ClassDef& book = schema.class_def(schema.FindClass("Book"));
  const Attribute* author = book.FindAttribute("author");
  ASSERT_NE(author, nullptr);
  EXPECT_TRUE(author->type.is_class());
  EXPECT_EQ(author->type.class_id, schema.FindClass("person_info"));
  const AggregationFunction* published = book.FindAggregation("published_by");
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->cardinality, Cardinality::ManyToOne());
  // Aggregations default to [m:1] when no constraint is given.
  EXPECT_EQ(book.FindAggregation("reviewed_by")->cardinality,
            Cardinality::ManyToOne());
}

TEST(SchemaParserTest, ParsesMandatoryCardinality) {
  const Schema schema = ValueOrDie(SchemaParser::Parse(R"(
schema S1 {
  class a {}
  class b { f: agg a [md_m:1]; }
}
)"));
  EXPECT_EQ(schema.class_def(schema.FindClass("b"))
                .FindAggregation("f")
                ->cardinality,
            Cardinality::ManyToOne().Mandatory());
}

TEST(SchemaParserTest, AllScalarTypes) {
  const Schema schema = ValueOrDie(SchemaParser::Parse(R"(
schema S1 {
  class x {
    a: boolean; b: integer; c: real; d: character; e: string; f: date;
  }
}
)"));
  const ClassDef& x = schema.class_def(0);
  EXPECT_EQ(x.FindAttribute("a")->type.scalar, ValueKind::kBoolean);
  EXPECT_EQ(x.FindAttribute("f")->type.scalar, ValueKind::kDate);
}

TEST(SchemaParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(SchemaParser::Parse("class x {}").ok());  // no schema header
  EXPECT_FALSE(SchemaParser::Parse("schema S {").ok());
  EXPECT_FALSE(
      SchemaParser::Parse("schema S { class x { a: bogus_type; } }").ok());
  EXPECT_FALSE(
      SchemaParser::Parse("schema S { class x {} } trailing").ok());
  EXPECT_FALSE(SchemaParser::Parse(
                   "schema S { class x {} is_a(x, ghost); }").ok());
  EXPECT_FALSE(SchemaParser::Parse(
                   "schema S { class b { f: agg ghost; } }").ok());
}

TEST(SchemaParserTest, RoundTripsThroughPrinter) {
  const Schema original = ValueOrDie(SchemaParser::Parse(kUniversityText));
  const std::string text = SchemaToText(original);
  const Schema reparsed = ValueOrDie(SchemaParser::Parse(text));
  EXPECT_EQ(SchemaToText(reparsed), text);
  EXPECT_EQ(reparsed.NumClasses(), original.NumClasses());
  EXPECT_EQ(reparsed.NumIsAEdges(), original.NumIsAEdges());
}

TEST(SchemaParserTest, RoundTripsTheFixtures) {
  for (auto maker : {&MakeUniversityFixture, &MakeGenealogyFixture,
                     &MakeBibliographyFixture, &MakeShowcaseFixture}) {
    const Fixture fixture = ValueOrDie(maker());
    for (const Schema* schema : {&fixture.s1, &fixture.s2}) {
      const std::string text = SchemaToText(*schema);
      const Schema reparsed = ValueOrDie(SchemaParser::Parse(text));
      EXPECT_EQ(SchemaToText(reparsed), text);
    }
  }
}

}  // namespace
}  // namespace ooint
