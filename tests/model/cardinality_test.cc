#include "model/cardinality.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

TEST(CardinalityTest, ToStringForms) {
  EXPECT_EQ(Cardinality::OneToOne().ToString(), "[1:1]");
  EXPECT_EQ(Cardinality::OneToMany().ToString(), "[1:n]");
  EXPECT_EQ(Cardinality::ManyToOne().ToString(), "[m:1]");
  EXPECT_EQ(Cardinality::ManyToMany().ToString(), "[m:n]");
  EXPECT_EQ(Cardinality::ManyToOne().Mandatory().ToString(), "[md_m:1]");
}

TEST(CardinalityTest, ParseAcceptsBothManySpellings) {
  EXPECT_EQ(ValueOrDie(Cardinality::Parse("[m:1]")),
            Cardinality::ManyToOne());
  EXPECT_EQ(ValueOrDie(Cardinality::Parse("[n:1]")),
            Cardinality::ManyToOne());
  EXPECT_EQ(ValueOrDie(Cardinality::Parse("[1:n]")),
            Cardinality::OneToMany());
  EXPECT_EQ(ValueOrDie(Cardinality::Parse("[md_n:1]")),
            Cardinality::ManyToOne().Mandatory());
  EXPECT_FALSE(Cardinality::Parse("m:1").ok());
  EXPECT_FALSE(Cardinality::Parse("[x:1]").ok());
  EXPECT_FALSE(Cardinality::Parse("[1-1]").ok());
}

TEST(CardinalityTest, PaperLcsExamples) {
  // "[n:m] is lcs([1:m],[n:1]) while [n:1] is lcs([1:1],[n:1])" (Fig. 13).
  EXPECT_EQ(Cardinality::LeastCommonSuper(Cardinality::OneToMany(),
                                          Cardinality::ManyToOne()),
            Cardinality::ManyToMany());
  EXPECT_EQ(Cardinality::LeastCommonSuper(Cardinality::OneToOne(),
                                          Cardinality::ManyToOne()),
            Cardinality::ManyToOne());
}

TEST(CardinalityTest, LcsIsIdempotentCommutativeAssociative) {
  const Cardinality all[] = {
      Cardinality::OneToOne(),  Cardinality::OneToMany(),
      Cardinality::ManyToOne(), Cardinality::ManyToMany(),
      Cardinality::OneToOne().Mandatory(),
      Cardinality::ManyToOne().Mandatory()};
  for (const Cardinality& a : all) {
    EXPECT_EQ(Cardinality::LeastCommonSuper(a, a), a)
        << a.ToString();  // a node is its own lcs
    for (const Cardinality& b : all) {
      EXPECT_EQ(Cardinality::LeastCommonSuper(a, b),
                Cardinality::LeastCommonSuper(b, a));
      for (const Cardinality& c : all) {
        EXPECT_EQ(Cardinality::LeastCommonSuper(
                      Cardinality::LeastCommonSuper(a, b), c),
                  Cardinality::LeastCommonSuper(
                      a, Cardinality::LeastCommonSuper(b, c)));
      }
    }
  }
}

TEST(CardinalityTest, LcsIsLeastUpperBound) {
  const Cardinality all[] = {
      Cardinality::OneToOne(),  Cardinality::OneToMany(),
      Cardinality::ManyToOne(), Cardinality::ManyToMany(),
      Cardinality::OneToOne().Mandatory(),
      Cardinality::OneToMany().Mandatory(),
      Cardinality::ManyToOne().Mandatory(),
      Cardinality::ManyToMany().Mandatory()};
  for (const Cardinality& a : all) {
    for (const Cardinality& b : all) {
      const Cardinality lcs = Cardinality::LeastCommonSuper(a, b);
      // Upper bound.
      EXPECT_TRUE(a.Implies(lcs)) << a.ToString() << " vs " << lcs.ToString();
      EXPECT_TRUE(b.Implies(lcs));
      // Least: every other common upper bound is above the lcs.
      for (const Cardinality& u : all) {
        if (a.Implies(u) && b.Implies(u)) {
          EXPECT_TRUE(lcs.Implies(u))
              << "lcs(" << a.ToString() << "," << b.ToString() << ")="
              << lcs.ToString() << " not below " << u.ToString();
        }
      }
    }
  }
}

TEST(CardinalityTest, ImpliesIsPartialOrder) {
  // [1:1] is the bottom; [m:n] the top (Fig. 13(a)).
  EXPECT_TRUE(Cardinality::OneToOne().Implies(Cardinality::ManyToMany()));
  EXPECT_TRUE(Cardinality::OneToOne().Implies(Cardinality::OneToMany()));
  EXPECT_TRUE(Cardinality::OneToOne().Implies(Cardinality::ManyToOne()));
  EXPECT_FALSE(Cardinality::ManyToMany().Implies(Cardinality::OneToOne()));
  // [1:n] and [m:1] are incomparable.
  EXPECT_FALSE(Cardinality::OneToMany().Implies(Cardinality::ManyToOne()));
  EXPECT_FALSE(Cardinality::ManyToOne().Implies(Cardinality::OneToMany()));
  // Mandatory variants sit below their base nodes (Fig. 13(b)).
  EXPECT_TRUE(Cardinality::ManyToOne().Mandatory().Implies(
      Cardinality::ManyToOne()));
  EXPECT_FALSE(
      Cardinality::ManyToOne().Implies(Cardinality::ManyToOne().Mandatory()));
}

TEST(CardinalityTest, RelaxingMandatoryConflict) {
  // Integrating a mandatory with a non-mandatory constraint relaxes the
  // mandatory marker first (least loosening).
  EXPECT_EQ(Cardinality::LeastCommonSuper(
                Cardinality::ManyToOne().Mandatory(),
                Cardinality::ManyToOne()),
            Cardinality::ManyToOne());
  EXPECT_EQ(Cardinality::LeastCommonSuper(
                Cardinality::OneToOne().Mandatory(),
                Cardinality::ManyToOne().Mandatory()),
            Cardinality::ManyToOne().Mandatory());
}

}  // namespace
}  // namespace ooint
