#include "model/schema.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

Schema MakeUniversityS2() {
  // Fig. 18(b): human ⊃ employee ⊃ faculty ⊃ professor.
  Schema s("S2");
  EXPECT_OK(s.AddClass(ClassDef("human")).status());
  EXPECT_OK(s.AddClass(ClassDef("employee")).status());
  EXPECT_OK(s.AddClass(ClassDef("faculty")).status());
  EXPECT_OK(s.AddClass(ClassDef("professor")).status());
  EXPECT_OK(s.AddIsA("employee", "human"));
  EXPECT_OK(s.AddIsA("faculty", "employee"));
  EXPECT_OK(s.AddIsA("professor", "faculty"));
  EXPECT_OK(s.Finalize());
  return s;
}

TEST(SchemaTest, AddAndFindClasses) {
  Schema s("S1");
  const ClassId a = ValueOrDie(s.AddClass(ClassDef("person")));
  const ClassId b = ValueOrDie(s.AddClass(ClassDef("student")));
  EXPECT_EQ(s.NumClasses(), 2u);
  EXPECT_EQ(s.FindClass("person"), a);
  EXPECT_EQ(s.FindClass("student"), b);
  EXPECT_EQ(s.FindClass("ghost"), kInvalidClassId);
  EXPECT_FALSE(s.GetClass("ghost").ok());
}

TEST(SchemaTest, RejectsDuplicateAndEmptyNames) {
  Schema s("S1");
  ASSERT_OK(s.AddClass(ClassDef("person")).status());
  EXPECT_EQ(s.AddClass(ClassDef("person")).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(s.AddClass(ClassDef("")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, IsARejectsSelfLoopAndDuplicates) {
  Schema s("S1");
  ASSERT_OK(s.AddClass(ClassDef("a")).status());
  ASSERT_OK(s.AddClass(ClassDef("b")).status());
  EXPECT_FALSE(s.AddIsA("a", "a").ok());
  ASSERT_OK(s.AddIsA("a", "b"));
  EXPECT_EQ(s.AddIsA("a", "b").code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(s.AddIsA("a", "ghost").ok());
}

TEST(SchemaTest, FinalizeDetectsIsACycle) {
  Schema s("S1");
  ASSERT_OK(s.AddClass(ClassDef("a")).status());
  ASSERT_OK(s.AddClass(ClassDef("b")).status());
  ASSERT_OK(s.AddClass(ClassDef("c")).status());
  ASSERT_OK(s.AddIsA("a", "b"));
  ASSERT_OK(s.AddIsA("b", "c"));
  ASSERT_OK(s.AddIsA("c", "a"));
  EXPECT_FALSE(s.Finalize().ok());
}

TEST(SchemaTest, FinalizeResolvesAggregationRanges) {
  Schema s("S1");
  ClassDef article("Article");
  article.AddAttribute("title", ValueKind::kString)
      .AddAggregation("Published_in", "Proceedings",
                      Cardinality::ManyToOne());
  ASSERT_OK(s.AddClass(std::move(article)).status());
  ASSERT_OK(s.AddClass(ClassDef("Proceedings")).status());
  ASSERT_OK(s.Finalize());
  const ClassDef& resolved = s.class_def(s.FindClass("Article"));
  const AggregationFunction* fn = resolved.FindAggregation("Published_in");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->range_class_id, s.FindClass("Proceedings"));
}

TEST(SchemaTest, FinalizeFailsOnUnknownAggregationRange) {
  Schema s("S1");
  ClassDef c("a");
  c.AddAggregation("f", "ghost", Cardinality::ManyToOne());
  ASSERT_OK(s.AddClass(std::move(c)).status());
  EXPECT_EQ(s.Finalize().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, FinalizeResolvesClassTypedAttributes) {
  Schema s("S1");
  ClassDef book("Book");
  book.AddClassAttribute("author", "person_info");
  ASSERT_OK(s.AddClass(std::move(book)).status());
  ASSERT_OK(s.AddClass(ClassDef("person_info")).status());
  ASSERT_OK(s.Finalize());
  const Attribute* attr =
      s.class_def(s.FindClass("Book")).FindAttribute("author");
  ASSERT_NE(attr, nullptr);
  EXPECT_TRUE(attr->type.is_class());
  EXPECT_EQ(attr->type.class_id, s.FindClass("person_info"));
}

TEST(SchemaTest, MutationAfterFinalizeFails) {
  Schema s = MakeUniversityS2();
  EXPECT_EQ(s.AddClass(ClassDef("new")).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(s.AddIsA("faculty", "human").code(),
            StatusCode::kFailedPrecondition);
}

TEST(SchemaTest, ParentsChildrenRoots) {
  Schema s = MakeUniversityS2();
  const ClassId human = s.FindClass("human");
  const ClassId employee = s.FindClass("employee");
  const ClassId faculty = s.FindClass("faculty");
  EXPECT_EQ(s.ParentsOf(employee), std::vector<ClassId>{human});
  EXPECT_EQ(s.ChildrenOf(employee), std::vector<ClassId>{faculty});
  EXPECT_EQ(s.Roots(), std::vector<ClassId>{human});
  EXPECT_TRUE(s.ParentsOf(human).empty());
}

TEST(SchemaTest, SubclassClosure) {
  Schema s = MakeUniversityS2();
  const ClassId human = s.FindClass("human");
  const ClassId professor = s.FindClass("professor");
  EXPECT_TRUE(s.IsSubclassOf(professor, human));
  EXPECT_TRUE(s.IsSubclassOf(human, human));
  EXPECT_FALSE(s.IsSubclassOf(human, professor));
  EXPECT_EQ(s.Ancestors(professor).size(), 3u);
  EXPECT_EQ(s.Descendants(human).size(), 3u);
}

TEST(SchemaTest, TopologicalOrderParentsFirst) {
  Schema s = MakeUniversityS2();
  const std::vector<ClassId> order = s.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  auto position = [&](const char* name) {
    return std::find(order.begin(), order.end(), s.FindClass(name)) -
           order.begin();
  };
  EXPECT_LT(position("human"), position("employee"));
  EXPECT_LT(position("employee"), position("faculty"));
  EXPECT_LT(position("faculty"), position("professor"));
}

TEST(SchemaTest, MultipleInheritanceSupported) {
  Schema s("S1");
  ASSERT_OK(s.AddClass(ClassDef("person")).status());
  ASSERT_OK(s.AddClass(ClassDef("employee")).status());
  ASSERT_OK(s.AddClass(ClassDef("working_student")).status());
  ASSERT_OK(s.AddIsA("working_student", "person"));
  ASSERT_OK(s.AddIsA("working_student", "employee"));
  ASSERT_OK(s.Finalize());
  EXPECT_EQ(s.ParentsOf(s.FindClass("working_student")).size(), 2u);
  EXPECT_EQ(s.NumIsAEdges(), 2u);
  EXPECT_EQ(s.Roots().size(), 2u);
}

TEST(ClassDefTest, TypeRendering) {
  ClassDef article("Article");
  article.AddAttribute("title", ValueKind::kString)
      .AddSetAttribute("keywords", ValueKind::kString)
      .AddAggregation("Published_in", "Proceedings",
                      Cardinality::ManyToOne());
  EXPECT_EQ(article.ToString(),
            "type(Article) = <title: string, keywords: {string}, "
            "Published_in: Proceedings with [m:1]>");
}

TEST(ClassDefTest, Lookups) {
  ClassDef c("x");
  c.AddAttribute("a", ValueKind::kInteger);
  c.AddAggregation("f", "y", Cardinality::OneToOne());
  EXPECT_NE(c.FindAttribute("a"), nullptr);
  EXPECT_EQ(c.FindAttribute("f"), nullptr);
  EXPECT_NE(c.FindAggregation("f"), nullptr);
  EXPECT_EQ(c.FindAggregation("a"), nullptr);
}

}  // namespace
}  // namespace ooint
