#include "model/instance_parser.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/fixtures.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

TEST(InstanceParserTest, LoadsScalarsSetsAndDates) {
  Fixture fixture = ValueOrDie(MakeGenealogyFixture());
  InstanceStore store(&fixture.s1);
  const size_t n = ValueOrDie(InstanceParser::Load(R"(
# the running genealogy example as data
insert parent {
  Pssn#: "ssn-john";
  name: "John";
  children: {"ssn-ann", "ssn-bob"};
}
insert brother {
  Bssn#: "ssn-sam";
  name: "Sam";
  brothers: {"ssn-john"};
}
)", &store));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(store.size(), 2u);
  const std::vector<Oid> parents = ValueOrDie(store.Extent("parent"));
  ASSERT_EQ(parents.size(), 1u);
  const Object* john = store.Find(parents.front());
  EXPECT_EQ(john->Get("name"), Value::String("John"));
  EXPECT_TRUE(john->Get("children").SetContains(Value::String("ssn-ann")));
}

TEST(InstanceParserTest, LoadsReferencesAndAggregations) {
  Fixture fixture = ValueOrDie(MakeEmplDeptFixture());
  InstanceStore store(&fixture.s1);
  ASSERT_OK(InstanceParser::Load(R"(
insert Dept as rnd { d_name: "R&D"; }
insert Empl as alice { e_name: "alice"; work_in: ref(rnd); }
insert Dept { d_name: "Sales"; manager: ref(alice); }
)", &store).status());
  const std::vector<Oid> employees = ValueOrDie(store.Extent("Empl"));
  ASSERT_EQ(employees.size(), 1u);
  const Object* alice = store.Find(employees.front());
  ASSERT_EQ(alice->AggTargets("work_in").size(), 1u);
  // The aggregation points at the R&D department object.
  const Object* rnd = store.Find(alice->AggTargets("work_in").front());
  ASSERT_NE(rnd, nullptr);
  EXPECT_EQ(rnd->Get("d_name"), Value::String("R&D"));
}

TEST(InstanceParserTest, LoadsTypedScalars) {
  Schema schema("S1");
  ClassDef c("x");
  c.AddAttribute("b", ValueKind::kBoolean)
      .AddAttribute("i", ValueKind::kInteger)
      .AddAttribute("r", ValueKind::kReal)
      .AddAttribute("d", ValueKind::kDate);
  ASSERT_OK(schema.AddClass(std::move(c)).status());
  ASSERT_OK(schema.Finalize());
  InstanceStore store(&schema);
  ASSERT_OK(InstanceParser::Load(R"(
insert x { b: true; i: -7; r: 2.5; d: date(1999, 4, 1); }
)", &store).status());
  const Object* object = store.Find(ValueOrDie(store.Extent("x")).front());
  EXPECT_EQ(object->Get("b"), Value::Boolean(true));
  EXPECT_EQ(object->Get("i"), Value::Integer(-7));
  EXPECT_EQ(object->Get("r"), Value::Real(2.5));
  EXPECT_EQ(object->Get("d"), Value::OfDate({1999, 4, 1}));
}

TEST(InstanceParserTest, RejectsUnknownClassesAndMembers) {
  Fixture fixture = ValueOrDie(MakeGenealogyFixture());
  InstanceStore store(&fixture.s1);
  EXPECT_FALSE(InstanceParser::Load("insert ghost {}", &store).ok());
  EXPECT_FALSE(InstanceParser::Load(
                   "insert parent { ghost: 1; }", &store).ok());
  EXPECT_FALSE(InstanceParser::Load(
                   "insert parent { name: ref(nobody); }", &store).ok());
  EXPECT_FALSE(InstanceParser::Load(
                   "insert parent { name: ; }", &store).ok());
}

}  // namespace
}  // namespace ooint
