// The umbrella header is self-contained and exposes the whole pipeline.

#include "ooint.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

TEST(UmbrellaTest, WholePipelineThroughOneInclude) {
  const Schema s1 = ValueOrDie(SchemaParser::Parse(
      "schema S1 { class a { k: string; } }"));
  const Schema s2 = ValueOrDie(SchemaParser::Parse(
      "schema S2 { class b { k: string; } }"));
  const AssertionSet assertions = ValueOrDie(AssertionParser::Parse(
      "assert S1.a == S2.b { attr: S1.a.k == S2.b.k; }"));
  ASSERT_OK(assertions.Validate(s1, s2));
  EXPECT_FALSE(HasErrors(CheckConsistency(s1, s2, assertions)));
  const IntegrationOutcome outcome =
      ValueOrDie(Integrator::Integrate(s1, s2, assertions));
  EXPECT_EQ(outcome.schema.classes().size(), 1u);
}

}  // namespace
}  // namespace ooint
