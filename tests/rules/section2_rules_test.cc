// Tests reproducing the Section 2 object-model rules: the
// department-manager rule and the "interesting pair" problem of [23]/[16].

#include <gtest/gtest.h>

#include "rules/evaluator.h"
#include "test_util.h"
#include "workload/fixtures.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

OTerm Membership(const std::string& class_name, const std::string& var) {
  OTerm t;
  t.object = TermArg::Variable(var);
  t.class_name = class_name;
  return t;
}

class Section2RulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = ValueOrDie(MakeEmplDeptFixture());
    store_ = std::make_unique<InstanceStore>(&fixture_.s1);
    store_->SetOidContext("agent1", "ontos", "companyDB");

    // Departments and employees; "alice" manages dept R&D and works in
    // it; "mallory" is the manager of Sales but works in R&D; and the
    // interesting pair: employee "dave" works in a department whose
    // manager is also named "dave".
    Object* rnd = ValueOrDie(store_->NewObject("Dept"));
    rnd->Set("d_name", Value::String("R&D"));
    Object* sales = ValueOrDie(store_->NewObject("Dept"));
    sales->Set("d_name", Value::String("Sales"));

    Object* alice = ValueOrDie(store_->NewObject("Empl"));
    alice->Set("e_name", Value::String("alice"));
    alice->AddAggTarget("work_in", rnd->oid());
    Object* mallory = ValueOrDie(store_->NewObject("Empl"));
    mallory->Set("e_name", Value::String("mallory"));
    mallory->AddAggTarget("work_in", rnd->oid());
    Object* dave_manager = ValueOrDie(store_->NewObject("Empl"));
    dave_manager->Set("e_name", Value::String("dave"));
    dave_manager->AddAggTarget("work_in", sales->oid());
    Object* dave_worker = ValueOrDie(store_->NewObject("Empl"));
    dave_worker->Set("e_name", Value::String("dave"));
    dave_worker->AddAggTarget("work_in", sales->oid());

    rnd->AddAggTarget("manager", alice->oid());
    sales->AddAggTarget("manager", dave_manager->oid());

    evaluator_.AddSource("S1", store_.get());
    ASSERT_OK(evaluator_.BindConcept("Empl", "S1", "Empl"));
    ASSERT_OK(evaluator_.BindConcept("Dept", "S1", "Dept"));
  }

  Fixture fixture_;
  std::unique_ptr<InstanceStore> store_;
  Evaluator evaluator_;
};

TEST_F(Section2RulesTest, DepartmentManagerRule) {
  // <o1: Empl | e_name: x, work_in: o2> <= <o2: Dept | d_name: y,
  // manager: o1> — "department managers work in the department they
  // manage". Derive works_in_managed(x, y) pairs instead of mutating
  // employees (autonomy): manager alice yields ("alice", "R&D").
  Rule rule;
  rule.head.push_back(Literal::OfPredicate(
      "works_in_managed", {TermArg::Variable("x"), TermArg::Variable("y")}));
  OTerm dept = Membership("Dept", "o2");
  dept.attrs.push_back({"d_name", false, TermArg::Variable("y")});
  dept.attrs.push_back({"manager", false, TermArg::Variable("o1")});
  OTerm empl = Membership("Empl", "o1");
  empl.attrs.push_back({"e_name", false, TermArg::Variable("x")});
  rule.body.push_back(Literal::OfOTerm(dept));
  rule.body.push_back(Literal::OfOTerm(empl));
  ASSERT_OK(evaluator_.AddRule(std::move(rule)));
  ASSERT_OK(evaluator_.Evaluate());

  const std::vector<const Fact*> facts =
      evaluator_.FactsOf("works_in_managed");
  ASSERT_EQ(facts.size(), 2u);  // alice/R&D and dave/Sales
}

TEST_F(Section2RulesTest, InterestingPairProblem) {
  // pair(o1, manager(o2)) <= <o1: Empl | e_name: x, work_in: o2>,
  // manager(o2).e_name = x — employees whose department's manager's
  // name coincides with their own.
  Rule rule;
  rule.head.push_back(Literal::OfPredicate(
      "pair", {TermArg::Variable("o1"), TermArg::Variable("m")}));
  OTerm empl = Membership("Empl", "o1");
  empl.attrs.push_back({"e_name", false, TermArg::Variable("x")});
  empl.attrs.push_back({"work_in", false, TermArg::Variable("d")});
  OTerm dept = Membership("Dept", "d");
  dept.attrs.push_back({"manager", false, TermArg::Variable("m")});
  OTerm manager = Membership("Empl", "m");
  manager.attrs.push_back({"e_name", false, TermArg::Variable("x")});
  rule.body.push_back(Literal::OfOTerm(empl));
  rule.body.push_back(Literal::OfOTerm(dept));
  rule.body.push_back(Literal::OfOTerm(manager));
  ASSERT_OK(evaluator_.AddRule(std::move(rule)));
  ASSERT_OK(evaluator_.Evaluate());

  // The two "dave"s match (manager-of-own-dept included: dave_manager
  // works in Sales, whose manager is dave_manager — and dave_worker in
  // Sales managed by dave_manager). alice also manages her own dept.
  const std::vector<const Fact*> pairs = evaluator_.FactsOf("pair");
  ASSERT_EQ(pairs.size(), 3u);
  // Every pair's two members carry the same name.
  for (const Fact* fact : pairs) {
    const Oid employee = fact->attrs.at("0").AsOid();
    const Oid manager_oid = fact->attrs.at("1").AsOid();
    EXPECT_EQ(store_->Find(employee)->Get("e_name"),
              store_->Find(manager_oid)->Get("e_name"));
  }
}

TEST_F(Section2RulesTest, NestedNavigationThroughAggregations) {
  // Querying through the aggregation: employees and their department
  // names, via the nested-descriptor form <o1: Empl | work_in:
  // <d_name: y>>.
  Rule rule;
  rule.head.push_back(Literal::OfPredicate(
      "emp_dept", {TermArg::Variable("x"), TermArg::Variable("y")}));
  OTerm empl = Membership("Empl", "o1");
  empl.attrs.push_back({"e_name", false, TermArg::Variable("x")});
  empl.attrs.push_back(
      {"work_in", false,
       TermArg::Nested({{"d_name", false, TermArg::Variable("y")}})});
  rule.body.push_back(Literal::OfOTerm(empl));
  ASSERT_OK(evaluator_.AddRule(std::move(rule)));
  ASSERT_OK(evaluator_.Evaluate());
  // Predicate facts are set-semantics tuples: the two employees named
  // "dave" in Sales collapse into one ("dave", "Sales") pair.
  EXPECT_EQ(evaluator_.FactsOf("emp_dept").size(), 3u);
}

}  // namespace
}  // namespace ooint
