#include "rules/substitution.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ooint {
namespace {

TEST(SubstitutionTest, MapAndEmpty) {
  ReverseSubstitution theta;
  EXPECT_TRUE(theta.empty());
  EXPECT_EQ(theta.Map("x"), "x");
  ASSERT_TRUE(theta.AddBinding("x", "x1"));
  EXPECT_EQ(theta.Map("x"), "x1");
  EXPECT_EQ(theta.Map("y"), "y");
}

TEST(SubstitutionTest, BindingTokensMustBeDistinct) {
  ReverseSubstitution theta;
  ASSERT_TRUE(theta.AddBinding("x", "x1"));
  EXPECT_TRUE(theta.AddBinding("x", "x1"));   // same binding: fine
  EXPECT_FALSE(theta.AddBinding("x", "x2"));  // Def. 5.1: c_i distinct
}

TEST(SubstitutionTest, AppliesToVariables) {
  // Definition 5.2's example: B = <o1: IS(S2.uncle) | Ussn#: x,
  // niece_nephew: y>, θ = {x/x2, y/x3}.
  OTerm b;
  b.object = TermArg::Variable("o1");
  b.class_name = "IS(S2.uncle)";
  b.attrs.push_back({"Ussn#", false, TermArg::Variable("x")});
  b.attrs.push_back({"niece_nephew", false, TermArg::Variable("y")});
  ReverseSubstitution theta({{"x", "x2"}, {"y", "x3"}});
  const OTerm result = theta.Apply(b);
  EXPECT_EQ(result.ToString(),
            "<o1: IS(S2.uncle) | Ussn#: x2, niece_nephew: x3>");
}

TEST(SubstitutionTest, AppliesToConstants) {
  // A reverse substitution replaces constants with variables.
  ReverseSubstitution theta({{"\"March\"", "t"}});
  const TermArg arg = theta.Apply(TermArg::Constant(Value::String("March")));
  EXPECT_TRUE(arg.is_variable());
  EXPECT_EQ(arg.var, "t");
}

TEST(SubstitutionTest, AppliesToBareStringConstants) {
  // Assertion predicates write string constants without quotes
  // (with car-name = car-name_1).
  ReverseSubstitution delta({{"car-name", "y3"}});
  const TermArg arg =
      delta.Apply(TermArg::Constant(Value::String("car-name")));
  EXPECT_TRUE(arg.is_variable());
  EXPECT_EQ(arg.var, "y3");
}

TEST(SubstitutionTest, AppliesToAttributeNames) {
  // Method (ii): an attribute *name* becomes a variable (Example 10's
  // δ = {car-name/y3}).
  AttrDescriptor d{"car-name", false, TermArg::Variable("v")};
  ReverseSubstitution delta({{"car-name", "y3"}});
  const AttrDescriptor out = delta.Apply(d);
  EXPECT_TRUE(out.attr_is_variable);
  EXPECT_EQ(out.attribute, "y3");
}

TEST(SubstitutionTest, AppliesInsideNestedDescriptors) {
  OTerm author;
  author.object = TermArg::Variable("y");
  author.class_name = "IS(S2.Author)";
  author.attrs.push_back(
      {"book", false,
       TermArg::Nested({{"ISBN", false, TermArg::Variable("a")},
                        {"title", false, TermArg::Variable("b")}})});
  ReverseSubstitution theta({{"a", "y1"}, {"b", "y2"}});
  const OTerm out = theta.Apply(author);
  EXPECT_EQ(out.ToString(),
            "<y: IS(S2.Author) | book: <ISBN: y1, title: y2>>");
}

TEST(SubstitutionTest, AppliesToCompareAndPredicateLiterals) {
  ReverseSubstitution theta({{"x", "x1"}});
  Literal cmp = Literal::OfCompare(TermArg::Variable("x"), CompareOp::kEq,
                                   TermArg::Constant(Value::Integer(1)));
  EXPECT_EQ(theta.Apply(cmp).ToString(), "x1 == 1");
  Literal pred = Literal::OfPredicate(
      "p", {TermArg::Variable("x"), TermArg::Variable("y")});
  EXPECT_EQ(theta.Apply(pred).ToString(), "p(x1, y)");
}

TEST(SubstitutionTest, CompositionPerDefinition53) {
  // θ = {a/x, b/y}, δ = {x/z}: θδ = {a/z, b/y, x/z}.
  ReverseSubstitution theta({{"a", "x"}, {"b", "y"}});
  ReverseSubstitution delta({{"x", "z"}});
  const ReverseSubstitution composed = theta.Compose(delta);
  EXPECT_EQ(composed.Map("a"), "z");
  EXPECT_EQ(composed.Map("b"), "y");
  EXPECT_EQ(composed.Map("x"), "z");
}

TEST(SubstitutionTest, CompositionDropsIdentityBindings) {
  // θ = {a/x}, δ = {x/a}: a/xδ = a/a is dropped; x/a is appended.
  ReverseSubstitution theta({{"a", "x"}});
  ReverseSubstitution delta({{"x", "a"}});
  const ReverseSubstitution composed = theta.Compose(delta);
  EXPECT_EQ(composed.bindings().size(), 1u);
  EXPECT_EQ(composed.Map("x"), "a");
  EXPECT_EQ(composed.Map("a"), "a");
}

TEST(SubstitutionTest, CompositionDropsShadowedDeltaBindings) {
  // δ's binding d_j/y_j is dropped when d_j ∈ {c_1, ..., c_n}.
  ReverseSubstitution theta({{"a", "x"}});
  ReverseSubstitution delta({{"a", "z"}});
  const ReverseSubstitution composed = theta.Compose(delta);
  EXPECT_EQ(composed.Map("a"), "x");
}

TEST(SubstitutionTest, CompositionWithEmptyIsIdentity) {
  ReverseSubstitution theta({{"a", "x"}});
  EXPECT_EQ(theta.Compose(ReverseSubstitution()).ToString(),
            theta.ToString());
  EXPECT_EQ(ReverseSubstitution().Compose(theta).ToString(),
            theta.ToString());
}

TEST(SubstitutionTest, ToStringFormat) {
  ReverseSubstitution theta({{"z", "x1"}, {"w", "x1"}});
  EXPECT_EQ(theta.ToString(), "{z/x1, w/x1}");
}

}  // namespace
}  // namespace ooint
