// Unit coverage for the columnar FactStore: interning, exact
// de-duplication, extent ordinals, the packed (concept, attribute,
// value) postings index, and the *defined* OID collision precedence
// (first-inserted fact wins; the concept-aware overload disambiguates).
// The materializing boundary (FactAt / FactById) must return stable
// pointers, and FactView must expose attributes in the same
// lexicographic order a materialized Fact's std::map iterates in.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "rules/fact_store.h"

namespace ooint {
namespace {

Oid MakeOid(const std::string& relation, std::uint32_t number) {
  return Oid("S1", "ontos", "db", relation, number);
}

Fact MakeFact(const std::string& concept_name, const Oid& oid,
              std::map<std::string, Value> attrs) {
  Fact fact;
  fact.concept_name = concept_name;
  fact.oid = oid;
  fact.attrs = std::move(attrs);
  return fact;
}

std::vector<std::uint32_t> Drain(PostingsCursor cursor) {
  std::vector<std::uint32_t> out;
  std::uint32_t ordinal = 0;
  while (cursor.Next(&ordinal)) out.push_back(ordinal);
  return out;
}

TEST(FactStoreTest, InsertDeduplicatesExactly) {
  FactStore store;
  Fact fact = MakeFact("person", MakeOid("person", 1),
                       {{"name", Value::String("Ann")}});
  ASSERT_NE(store.Insert(fact), kNoFact);
  EXPECT_EQ(store.Insert(fact), kNoFact);  // identical -> duplicate
  EXPECT_EQ(store.size(), 1u);
  // Any differing component is a distinct fact.
  Fact other_attr = fact;
  other_attr.attrs["name"] = Value::String("Bob");
  EXPECT_NE(store.Insert(other_attr), kNoFact);
  Fact other_oid = fact;
  other_oid.oid = MakeOid("person", 2);
  EXPECT_NE(store.Insert(other_oid), kNoFact);
  EXPECT_EQ(store.size(), 3u);
}

TEST(FactStoreTest, ExtentsKeepInsertionOrderWithStablePointers) {
  FactStore store;
  const FactId a = store.Insert(
      MakeFact("p", MakeOid("p", 1), {{"n", Value::Integer(1)}}));
  const FactId b = store.Insert(
      MakeFact("q", MakeOid("q", 1), {{"n", Value::Integer(2)}}));
  const FactId c = store.Insert(
      MakeFact("p", MakeOid("p", 2), {{"n", Value::Integer(3)}}));
  const ConceptId p = store.FindConcept("p");
  ASSERT_NE(p, kNoConcept);
  ASSERT_EQ(store.CountOf(p), 2u);
  EXPECT_EQ(store.IdAt(p, 0), a);
  EXPECT_EQ(store.IdAt(p, 1), c);
  EXPECT_EQ(store.FactsOf("q").front(), store.FactById(b));
  EXPECT_EQ(store.ConceptName(p), "p");
  EXPECT_EQ(store.FindConcept("absent"), kNoConcept);

  // Materialized pointers are stable across later inserts and repeated
  // materialization.
  const Fact* pa = store.FactAt(p, 0);
  ASSERT_NE(pa, nullptr);
  for (int i = 0; i < 64; ++i) {
    store.Insert(MakeFact("p", MakeOid("p", 100 + i),
                          {{"n", Value::Integer(100 + i)}}));
  }
  EXPECT_EQ(store.FactAt(p, 0), pa);
  EXPECT_EQ(pa->attrs.at("n"), Value::Integer(1));
}

TEST(FactStoreTest, MaterializationRoundTripsEveryValueKind) {
  FactStore store;
  Fact fact = MakeFact(
      "kinds", MakeOid("kinds", 1),
      {{"null", Value::Null()},
       {"bool", Value::Boolean(true)},
       {"char", Value::Character('x')},
       {"int_small", Value::Integer(-42)},
       {"int_huge", Value::Integer((std::int64_t{1} << 61) + 7)},
       {"int_neg_huge", Value::Integer(-((std::int64_t{1} << 61) + 7))},
       {"real", Value::Real(3.5)},
       {"string", Value::String("a string value")},
       {"date", Value::OfDate(Date{1999, 12, 31})},
       {"oid", Value::OfOid(MakeOid("other", 9))},
       {"set", Value::Set({Value::Integer(1), Value::String("two"),
                           Value::Set({Value::Boolean(false)})})}});
  const FactId id = store.Insert(fact);
  ASSERT_NE(id, kNoFact);

  // Boundary materialization reproduces the fact bit-identically.
  const Fact* stored = store.FactById(id);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->concept_name, fact.concept_name);
  EXPECT_EQ(stored->oid, fact.oid);
  EXPECT_EQ(stored->attrs, fact.attrs);
  EXPECT_EQ(stored->CanonicalKey(), fact.CanonicalKey());

  // FactView walks the packed runs in the map's lexicographic order.
  const FactView view = store.ViewById(id);
  ASSERT_TRUE(view.valid());
  ASSERT_EQ(view.attr_count(), fact.attrs.size());
  size_t i = 0;
  for (const auto& [name, value] : fact.attrs) {
    EXPECT_EQ(view.attr_name(i), name);
    EXPECT_EQ(view.attr_value(i).Materialize(), value);
    ++i;
  }
  // And the exact-equivalence check used by skolem dedup agrees.
  EXPECT_TRUE(store.EquivalentAttrs(id, fact));
  Fact tweaked = fact;
  tweaked.attrs["bool"] = Value::Boolean(false);
  EXPECT_FALSE(store.EquivalentAttrs(id, tweaked));
}

TEST(FactStoreTest, OidCollisionPrecedenceIsFirstInserted) {
  // Two concepts deriving the same entity used to hit an unordered-map
  // emplace race; the contract is explicit: FindByOid(oid) returns the
  // FIRST-inserted fact (base facts load before derived ones, so base
  // data wins), and the concept-aware overload picks per concept.
  FactStore store;
  const Oid shared = MakeOid("person", 7);
  const FactId base = store.Insert(
      MakeFact("IS(S1.person)", shared, {{"name", Value::String("Ann")}}));
  const FactId derived = store.Insert(
      MakeFact("IS_AB(person)", shared, {{"vip", Value::Boolean(true)}}));
  ASSERT_NE(base, kNoFact);
  ASSERT_NE(derived, kNoFact);
  EXPECT_EQ(store.FindByOid(shared), store.FactById(base));
  EXPECT_EQ(store.FindByOid(shared, store.FindConcept("IS(S1.person)")),
            store.FactById(base));
  EXPECT_EQ(store.FindByOid(shared, store.FindConcept("IS_AB(person)")),
            store.FactById(derived));
  EXPECT_EQ(store.FindByOid(MakeOid("person", 8)), nullptr);

  std::vector<std::uint32_t> ordinals;
  store.ProbeOid(store.FindConcept("IS_AB(person)"), shared, &ordinals);
  ASSERT_EQ(ordinals.size(), 1u);
  EXPECT_EQ(store.FactAt(store.FindConcept("IS_AB(person)"), ordinals[0]),
            store.FactById(derived));
}

TEST(FactStoreTest, ProbeFindsAttrValuesAndSetElements) {
  FactStore store;
  store.Insert(MakeFact("doc", MakeOid("doc", 1),
                        {{"title", Value::String("A")},
                         {"tags", Value::Set({Value::String("db"),
                                              Value::String("oo")})}}));
  store.Insert(MakeFact("doc", MakeOid("doc", 2),
                        {{"title", Value::String("B")}}));
  const ConceptId doc = store.FindConcept("doc");
  const std::vector<std::uint32_t> by_title =
      Drain(store.Probe(doc, "title", Value::String("B")));
  ASSERT_EQ(by_title.size(), 1u);
  EXPECT_EQ(store.FactAt(doc, by_title[0])->oid, MakeOid("doc", 2));
  // Set-valued attributes are indexed element-wise (mirrors the
  // matcher's element-level convention).
  const std::vector<std::uint32_t> by_tag =
      Drain(store.Probe(doc, "tags", Value::String("oo")));
  ASSERT_EQ(by_tag.size(), 1u);
  EXPECT_EQ(store.FactAt(doc, by_tag[0])->oid, MakeOid("doc", 1));
  // A value never interned anywhere yields an empty cursor.
  PostingsCursor miss = store.Probe(doc, "title", Value::String("Z"));
  EXPECT_TRUE(miss.empty());
  EXPECT_EQ(miss.count(), 0u);
}

TEST(FactStoreTest, ProbeCursorIsSnapshotSafeAcrossInserts) {
  // The documented cursor contract: a cursor captures the posting count
  // at creation and stays valid (and bounded to that snapshot) while
  // later inserts append to the same list.
  FactStore store;
  for (int i = 0; i < 10; ++i) {
    store.Insert(MakeFact("p", MakeOid("p", static_cast<std::uint32_t>(i)),
                          {{"k", Value::Integer(1)},
                           {"i", Value::Integer(i)}}));
  }
  const ConceptId p = store.FindConcept("p");
  PostingsCursor cursor = store.Probe(p, "k", Value::Integer(1));
  EXPECT_EQ(cursor.count(), 10u);
  std::vector<std::uint32_t> seen;
  std::uint32_t ordinal = 0;
  // Interleave draining with inserts that extend the same posting list.
  for (int i = 10; i < 200; ++i) {
    if (cursor.Next(&ordinal)) seen.push_back(ordinal);
    store.Insert(MakeFact("p", MakeOid("p", static_cast<std::uint32_t>(i)),
                          {{"k", Value::Integer(1)},
                           {"i", Value::Integer(i)}}));
  }
  while (cursor.Next(&ordinal)) seen.push_back(ordinal);
  ASSERT_EQ(seen.size(), 10u);  // snapshot: only the facts present at Probe()
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
  // A fresh probe sees everything.
  EXPECT_EQ(store.Probe(p, "k", Value::Integer(1)).count(), 200u);
}

TEST(FactStoreTest, NegativeZeroAndNaNKeepLegacyHashSemantics) {
  // Bug-compat parity with the old store: reals are digested by bit
  // pattern, so -0.0 and 0.0 never share a dedup bucket (two distinct
  // facts), and NaN != NaN means a NaN fact never deduplicates.
  FactStore store;
  EXPECT_NE(store.Insert(MakeFact("r", MakeOid("r", 1),
                                  {{"x", Value::Real(0.0)}})),
            kNoFact);
  EXPECT_NE(store.Insert(MakeFact("r", MakeOid("r", 1),
                                  {{"x", Value::Real(-0.0)}})),
            kNoFact);
  EXPECT_EQ(store.size(), 2u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(store.Insert(MakeFact("r", MakeOid("r", 2),
                                  {{"x", Value::Real(nan)}})),
            kNoFact);
  EXPECT_NE(store.Insert(MakeFact("r", MakeOid("r", 2),
                                  {{"x", Value::Real(nan)}})),
            kNoFact);
  EXPECT_EQ(store.size(), 4u);
}

TEST(FactStoreTest, MemoryBreakdownIsPopulatedAndPackedStaysLean) {
  FactStore store;
  for (int i = 0; i < 1000; ++i) {
    store.Insert(MakeFact(
        "m", MakeOid("m", static_cast<std::uint32_t>(i)),
        {{"name", Value::String(i % 10 == 0 ? "anchor" : "filler")},
         {"rank", Value::Integer(i)}}));
  }
  const FactStore::MemoryBreakdown memory = store.memory();
  EXPECT_GT(memory.record_bytes, 0u);
  EXPECT_GT(memory.attr_bytes, 0u);
  EXPECT_GT(memory.symbol_bytes, 0u);
  EXPECT_GT(memory.attr_index_bytes, 0u);
  EXPECT_GT(memory.oid_index_bytes, 0u);
  EXPECT_EQ(memory.materialized_bytes, 0u);  // nothing materialized yet
  // Packed storage should stay under ~300 bytes/fact on this shape
  // (fixed costs — symbol pool, index slack — amortize further at
  // larger n; bench_storage tracks the real budget at 10^6).
  EXPECT_LT(memory.packed_total() / store.size(), 300u);
  store.FactById(0);
  EXPECT_GT(store.memory().materialized_bytes, 0u);
}

TEST(FactStoreTest, ClearResetsEverything) {
  FactStore store;
  store.Insert(MakeFact("p", MakeOid("p", 1), {{"n", Value::Integer(1)}}));
  store.FactAt(store.FindConcept("p"), 0);  // populate the cache too
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.concept_count(), 0u);
  EXPECT_EQ(store.FindConcept("p"), kNoConcept);
  EXPECT_EQ(store.FindByOid(MakeOid("p", 1)), nullptr);
  EXPECT_EQ(store.memory().materialized_bytes, 0u);
  // The store is reusable after Clear.
  EXPECT_NE(store.Insert(MakeFact("p", MakeOid("p", 1),
                                  {{"n", Value::Integer(1)}})),
            kNoFact);
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace ooint
