// Unit coverage for the indexed FactStore: interning, de-duplication,
// extent ordinals, the (concept, attribute, value) probe index, and —
// most importantly — the *defined* OID collision precedence that
// replaced the old map-emplace accident (first-inserted fact wins; the
// concept-aware overload disambiguates).

#include <gtest/gtest.h>

#include "rules/fact_store.h"

namespace ooint {
namespace {

Oid MakeOid(const std::string& relation, std::uint32_t number) {
  return Oid("S1", "ontos", "db", relation, number);
}

Fact MakeFact(const std::string& concept_name, const Oid& oid,
              std::map<std::string, Value> attrs) {
  Fact fact;
  fact.concept_name = concept_name;
  fact.oid = oid;
  fact.attrs = std::move(attrs);
  return fact;
}

TEST(FactStoreTest, InsertDeduplicatesExactly) {
  FactStore store;
  Fact fact = MakeFact("person", MakeOid("person", 1),
                       {{"name", Value::String("Ann")}});
  ASSERT_NE(store.Insert(fact), nullptr);
  EXPECT_EQ(store.Insert(fact), nullptr);  // identical -> duplicate
  EXPECT_EQ(store.size(), 1u);
  // Any differing component is a distinct fact.
  Fact other_attr = fact;
  other_attr.attrs["name"] = Value::String("Bob");
  EXPECT_NE(store.Insert(other_attr), nullptr);
  Fact other_oid = fact;
  other_oid.oid = MakeOid("person", 2);
  EXPECT_NE(store.Insert(other_oid), nullptr);
  EXPECT_EQ(store.size(), 3u);
}

TEST(FactStoreTest, ExtentsKeepInsertionOrderWithStablePointers) {
  FactStore store;
  const Fact* a = store.Insert(
      MakeFact("p", MakeOid("p", 1), {{"n", Value::Integer(1)}}));
  const Fact* b = store.Insert(
      MakeFact("q", MakeOid("q", 1), {{"n", Value::Integer(2)}}));
  const Fact* c = store.Insert(
      MakeFact("p", MakeOid("p", 2), {{"n", Value::Integer(3)}}));
  const ConceptId p = store.FindConcept("p");
  ASSERT_NE(p, kNoConcept);
  ASSERT_EQ(store.CountOf(p), 2u);
  EXPECT_EQ(store.FactAt(p, 0), a);
  EXPECT_EQ(store.FactAt(p, 1), c);
  EXPECT_EQ(store.FactsOf("q").front(), b);
  EXPECT_EQ(store.ConceptName(p), "p");
  EXPECT_EQ(store.FindConcept("absent"), kNoConcept);
}

TEST(FactStoreTest, OidCollisionPrecedenceIsFirstInserted) {
  // Two concepts deriving the same entity used to hit an unordered-map
  // emplace race; the contract is now explicit: FindByOid(oid) returns
  // the FIRST-inserted fact (base facts load before derived ones, so
  // base data wins), and the concept-aware overload picks per concept.
  FactStore store;
  const Oid shared = MakeOid("person", 7);
  const Fact* base = store.Insert(
      MakeFact("IS(S1.person)", shared, {{"name", Value::String("Ann")}}));
  const Fact* derived = store.Insert(
      MakeFact("IS_AB(person)", shared, {{"vip", Value::Boolean(true)}}));
  ASSERT_NE(base, nullptr);
  ASSERT_NE(derived, nullptr);
  EXPECT_EQ(store.FindByOid(shared), base);
  EXPECT_EQ(store.FindByOid(shared, store.FindConcept("IS(S1.person)")), base);
  EXPECT_EQ(store.FindByOid(shared, store.FindConcept("IS_AB(person)")),
            derived);
  EXPECT_EQ(store.FindByOid(MakeOid("person", 8)), nullptr);

  std::vector<std::uint32_t> ordinals;
  store.ProbeOid(store.FindConcept("IS_AB(person)"), shared, &ordinals);
  ASSERT_EQ(ordinals.size(), 1u);
  EXPECT_EQ(store.FactAt(store.FindConcept("IS_AB(person)"), ordinals[0]),
            derived);
}

TEST(FactStoreTest, ProbeFindsAttrValuesAndSetElements) {
  FactStore store;
  store.Insert(MakeFact("doc", MakeOid("doc", 1),
                        {{"title", Value::String("A")},
                         {"tags", Value::Set({Value::String("db"),
                                              Value::String("oo")})}}));
  store.Insert(MakeFact("doc", MakeOid("doc", 2),
                        {{"title", Value::String("B")}}));
  const ConceptId doc = store.FindConcept("doc");
  const auto* by_title = store.Probe(doc, "title", Value::String("B"));
  ASSERT_NE(by_title, nullptr);
  ASSERT_EQ(by_title->size(), 1u);
  EXPECT_EQ(store.FactAt(doc, (*by_title)[0])->oid, MakeOid("doc", 2));
  // Set-valued attributes are indexed element-wise (mirrors the
  // matcher's element-level convention).
  const auto* by_tag = store.Probe(doc, "tags", Value::String("oo"));
  ASSERT_NE(by_tag, nullptr);
  ASSERT_EQ(by_tag->size(), 1u);
  EXPECT_EQ(store.FactAt(doc, (*by_tag)[0])->oid, MakeOid("doc", 1));
  EXPECT_EQ(store.Probe(doc, "title", Value::String("Z")), nullptr);
}

TEST(FactStoreTest, ClearResetsEverything) {
  FactStore store;
  store.Insert(MakeFact("p", MakeOid("p", 1), {{"n", Value::Integer(1)}}));
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.concept_count(), 0u);
  EXPECT_EQ(store.FindConcept("p"), kNoConcept);
  EXPECT_EQ(store.FindByOid(MakeOid("p", 1)), nullptr);
}

}  // namespace
}  // namespace ooint
