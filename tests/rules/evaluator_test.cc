#include "rules/evaluator.h"

#include <gtest/gtest.h>

#include "assertions/parser.h"
#include "rules/rule_generator.h"
#include "test_util.h"
#include "workload/fixtures.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

OTerm Membership(const std::string& class_name, const std::string& var) {
  OTerm t;
  t.object = TermArg::Variable(var);
  t.class_name = class_name;
  return t;
}

class GenealogyEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = ValueOrDie(MakeGenealogyFixture());
    s1_store_ = std::make_unique<InstanceStore>(&fixture_.s1);
    s1_store_->SetOidContext("agent1", "ooint", "S1db");
    s2_store_ = std::make_unique<InstanceStore>(&fixture_.s2);
    s2_store_->SetOidContext("agent2", "ooint", "S2db");
    ASSERT_OK(PopulateGenealogy(s1_store_.get(), s2_store_.get(),
                                /*num_families=*/3));

    evaluator_.AddSource("S1", s1_store_.get());
    evaluator_.AddSource("S2", s2_store_.get());
    ASSERT_OK(evaluator_.BindConcept("IS(S1.parent)", "S1", "parent"));
    ASSERT_OK(evaluator_.BindConcept("IS(S1.brother)", "S1", "brother"));
    ASSERT_OK(evaluator_.BindConcept("IS(S2.uncle)", "S2", "uncle"));

    const Assertion assertion = ValueOrDie(AssertionParser::ParseOne(
        ValueOrDie(MakeGenealogyFixture()).assertion_text));
    RuleGenerator generator;
    for (Rule& rule : ValueOrDie(generator.Generate(assertion))) {
      ASSERT_OK(evaluator_.AddRule(std::move(rule)));
    }
  }

  Fixture fixture_;
  std::unique_ptr<InstanceStore> s1_store_;
  std::unique_ptr<InstanceStore> s2_store_;
  Evaluator evaluator_;
};

TEST_F(GenealogyEvaluatorTest, DerivesUnclesFromParentsAndBrothers) {
  ASSERT_OK(evaluator_.Evaluate());
  // 3 families, one uncle each, two nieces/nephews per family. Derived
  // facts are element-level (one fact per set element, the flattening
  // convention of the matcher), so 3 x 2 facts appear.
  const std::vector<const Fact*> uncles =
      evaluator_.FactsOf("IS(S2.uncle)");
  ASSERT_EQ(uncles.size(), 6u);
  for (const Fact* uncle : uncles) {
    EXPECT_EQ(uncle->oid.agent(), "derived");
  }
  EXPECT_EQ(evaluator_.stats().base_facts, 6u);
  EXPECT_GE(evaluator_.stats().derived_facts, 3u);
}

TEST_F(GenealogyEvaluatorTest, QueryAnswersTheUncleQuestion) {
  // ?-uncle(child "C1a", who?): Appendix B's motivating query shape.
  ASSERT_OK(evaluator_.Evaluate());
  OTerm query = Membership("IS(S2.uncle)", "u");
  query.attrs.push_back(
      {"niece_nephew", false, TermArg::Constant(Value::String("C1a"))});
  query.attrs.push_back({"Ussn#", false, TermArg::Variable("who")});
  const std::vector<Bindings> answers =
      ValueOrDie(evaluator_.Query(query));
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers.front().at("who"), Value::String("U1"));
}

TEST_F(GenealogyEvaluatorTest, QueryBindsAllNiecesOfAnUncle) {
  ASSERT_OK(evaluator_.Evaluate());
  OTerm query = Membership("IS(S2.uncle)", "u");
  query.attrs.push_back(
      {"Ussn#", false, TermArg::Constant(Value::String("U0"))});
  query.attrs.push_back({"niece_nephew", false, TermArg::Variable("kid")});
  const std::vector<Bindings> answers =
      ValueOrDie(evaluator_.Query(query));
  // Set-valued head attribute: one row per element.
  ASSERT_EQ(answers.size(), 2u);
}

TEST_F(GenealogyEvaluatorTest, DerivedFactsAreDeduplicated) {
  ASSERT_OK(evaluator_.Evaluate());
  const size_t first = evaluator_.FactsOf("IS(S2.uncle)").size();
  evaluator_.Reset();
  ASSERT_OK(evaluator_.Evaluate());
  EXPECT_EQ(evaluator_.FactsOf("IS(S2.uncle)").size(), first);
}

TEST(EvaluatorTest, MembershipRuleCopiesEntityAttributes) {
  // <x: IS_AB> <= <x: A>, <y: B>, y = x with a data-mapping identity:
  // the derived IS_AB fact carries the attributes of both constituents.
  Schema s1("S1");
  ClassDef faculty("faculty");
  faculty.AddAttribute("fssn#", ValueKind::kString)
      .AddAttribute("income", ValueKind::kInteger);
  ASSERT_OK(s1.AddClass(std::move(faculty)).status());
  ASSERT_OK(s1.Finalize());
  Schema s2("S2");
  ClassDef student("student");
  student.AddAttribute("ssn#", ValueKind::kString)
      .AddAttribute("study_support", ValueKind::kInteger);
  ASSERT_OK(s2.AddClass(std::move(student)).status());
  ASSERT_OK(s2.Finalize());

  InstanceStore store1(&s1);
  store1.SetOidContext("a1", "ooint", "db1");
  InstanceStore store2(&s2);
  store2.SetOidContext("a2", "ooint", "db2");
  Object* f = ValueOrDie(store1.NewObject("faculty"));
  f->Set("fssn#", Value::String("123")).Set("income", Value::Integer(5000));
  Object* st = ValueOrDie(store2.NewObject("student"));
  st->Set("ssn#", Value::String("123"))
      .Set("study_support", Value::Integer(400));
  Object* other = ValueOrDie(store2.NewObject("student"));
  other->Set("ssn#", Value::String("999"));

  DataMappingRegistry mappings;
  mappings.DeclareSameObject(f->oid(), st->oid());

  Evaluator evaluator;
  evaluator.AddSource("S1", &store1);
  evaluator.AddSource("S2", &store2);
  evaluator.SetDataMappings(&mappings);
  ASSERT_OK(evaluator.BindConcept("ISF", "S1", "faculty"));
  ASSERT_OK(evaluator.BindConcept("ISS", "S2", "student"));

  Rule rule;
  rule.head.push_back(Literal::OfOTerm(Membership("IS_both", "x")));
  rule.body.push_back(Literal::OfOTerm(Membership("ISF", "x")));
  rule.body.push_back(Literal::OfOTerm(Membership("ISS", "y")));
  rule.body.push_back(Literal::OfCompare(
      TermArg::Variable("y"), CompareOp::kEq, TermArg::Variable("x")));
  ASSERT_OK(evaluator.AddRule(std::move(rule)));
  ASSERT_OK(evaluator.Evaluate());

  const std::vector<const Fact*> both = evaluator.FactsOf("IS_both");
  ASSERT_EQ(both.size(), 1u);
  // Attributes of both constituents are merged into the entity.
  EXPECT_EQ(both.front()->attrs.at("income"), Value::Integer(5000));
  EXPECT_EQ(both.front()->attrs.at("study_support"), Value::Integer(400));
}

TEST(EvaluatorTest, StratifiedNegationComputesDifferences) {
  // The IS_A− pattern of Principle 3.
  Schema s1("S1");
  ClassDef a("a");
  a.AddAttribute("k", ValueKind::kInteger);
  ASSERT_OK(s1.AddClass(std::move(a)).status());
  ClassDef b("b");
  b.AddAttribute("k", ValueKind::kInteger);
  ASSERT_OK(s1.AddClass(std::move(b)).status());
  ASSERT_OK(s1.Finalize());
  InstanceStore store(&s1);
  for (int i = 0; i < 4; ++i) {
    ValueOrDie(store.NewObject("a"))->Set("k", Value::Integer(i));
  }

  Evaluator evaluator;
  evaluator.AddSource("S1", &store);
  ASSERT_OK(evaluator.BindConcept("A", "S1", "a"));

  // small(x) <= <x: A | k < 2>; rest <= A and not small.
  Rule small;
  OTerm small_head = Membership("small", "x");
  small.head.push_back(Literal::OfOTerm(small_head));
  OTerm small_body = Membership("A", "x");
  small_body.attrs.push_back({"k", false, TermArg::Variable("k")});
  small.body.push_back(Literal::OfOTerm(small_body));
  small.body.push_back(Literal::OfCompare(
      TermArg::Variable("k"), CompareOp::kLt,
      TermArg::Constant(Value::Integer(2))));
  ASSERT_OK(evaluator.AddRule(std::move(small)));

  Rule rest;
  rest.head.push_back(Literal::OfOTerm(Membership("rest", "x")));
  rest.body.push_back(Literal::OfOTerm(Membership("A", "x")));
  rest.body.push_back(
      Literal::OfOTerm(Membership("small", "x"), /*negated=*/true));
  ASSERT_OK(evaluator.AddRule(std::move(rest)));

  ASSERT_OK(evaluator.Evaluate());
  EXPECT_EQ(evaluator.FactsOf("small").size(), 2u);
  EXPECT_EQ(evaluator.FactsOf("rest").size(), 2u);
  EXPECT_EQ(evaluator.stats().strata, 2u);
}

TEST(EvaluatorTest, RejectsNegationThroughRecursion) {
  Evaluator evaluator;
  Rule r1;
  r1.head.push_back(Literal::OfOTerm(Membership("p", "x")));
  r1.body.push_back(Literal::OfOTerm(Membership("q", "x")));
  r1.body.push_back(Literal::OfOTerm(Membership("p", "x"), true));
  // Safety: x is bound by q.
  ASSERT_OK(evaluator.AddRule(std::move(r1)));
  EXPECT_EQ(evaluator.Evaluate().code(), StatusCode::kFailedPrecondition);
}

TEST(EvaluatorTest, RejectsDisjunctiveHeads) {
  Evaluator evaluator;
  Rule rule;
  rule.head.push_back(Literal::OfOTerm(Membership("a", "x")));
  rule.head.push_back(Literal::OfOTerm(Membership("b", "x")));
  rule.disjunctive_head = true;
  rule.body.push_back(Literal::OfOTerm(Membership("c", "x")));
  EXPECT_EQ(evaluator.AddRule(std::move(rule)).code(),
            StatusCode::kUnsupported);
}

TEST(EvaluatorTest, OrdinaryPredicatesJoin) {
  // The §2 department-manager rule flavor, with plain predicates.
  Evaluator evaluator;
  // edge(1,2), edge(2,3) as rules with constant heads over no body.
  auto edge_fact = [](int from, int to) {
    Rule r;
    r.head.push_back(Literal::OfPredicate(
        "edge", {TermArg::Constant(Value::Integer(from)),
                 TermArg::Constant(Value::Integer(to))}));
    return r;
  };
  ASSERT_OK(evaluator.AddRule(edge_fact(1, 2)));
  ASSERT_OK(evaluator.AddRule(edge_fact(2, 3)));
  Rule hop;
  hop.head.push_back(Literal::OfPredicate(
      "hop", {TermArg::Variable("a"), TermArg::Variable("c")}));
  hop.body.push_back(Literal::OfPredicate(
      "edge", {TermArg::Variable("a"), TermArg::Variable("b")}));
  hop.body.push_back(Literal::OfPredicate(
      "edge", {TermArg::Variable("b"), TermArg::Variable("c")}));
  ASSERT_OK(evaluator.AddRule(std::move(hop)));
  ASSERT_OK(evaluator.Evaluate());
  ASSERT_EQ(evaluator.FactsOf("hop").size(), 1u);
  EXPECT_EQ(evaluator.FactsOf("hop").front()->attrs.at("0"),
            Value::Integer(1));
  EXPECT_EQ(evaluator.FactsOf("hop").front()->attrs.at("1"),
            Value::Integer(3));
}

TEST(EvaluatorTest, RecursivePositiveRulesReachFixpoint) {
  Evaluator evaluator;
  auto edge_fact = [](int from, int to) {
    Rule r;
    r.head.push_back(Literal::OfPredicate(
        "edge", {TermArg::Constant(Value::Integer(from)),
                 TermArg::Constant(Value::Integer(to))}));
    return r;
  };
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(evaluator.AddRule(edge_fact(i, i + 1)));
  }
  Rule base;
  base.head.push_back(Literal::OfPredicate(
      "path", {TermArg::Variable("a"), TermArg::Variable("b")}));
  base.body.push_back(Literal::OfPredicate(
      "edge", {TermArg::Variable("a"), TermArg::Variable("b")}));
  ASSERT_OK(evaluator.AddRule(std::move(base)));
  Rule step;
  step.head.push_back(Literal::OfPredicate(
      "path", {TermArg::Variable("a"), TermArg::Variable("c")}));
  step.body.push_back(Literal::OfPredicate(
      "path", {TermArg::Variable("a"), TermArg::Variable("b")}));
  step.body.push_back(Literal::OfPredicate(
      "edge", {TermArg::Variable("b"), TermArg::Variable("c")}));
  ASSERT_OK(evaluator.AddRule(std::move(step)));
  ASSERT_OK(evaluator.Evaluate());
  // Transitive closure of a 6-node chain: 5+4+3+2+1 = 15 pairs.
  EXPECT_EQ(evaluator.FactsOf("path").size(), 15u);
  EXPECT_GT(evaluator.stats().iterations, 2u);
}

TEST(EvaluatorTest, SchematicAttributeNameVariables) {
  // A rule with a variable attribute name (Section 2's schematic
  // discrepancy support): derive name(attr, value) pairs from any
  // attribute of class A.
  Schema s1("S1");
  ClassDef a("a");
  a.AddAttribute("p", ValueKind::kInteger);
  a.AddAttribute("q", ValueKind::kInteger);
  ASSERT_OK(s1.AddClass(std::move(a)).status());
  ASSERT_OK(s1.Finalize());
  InstanceStore store(&s1);
  Object* obj = ValueOrDie(store.NewObject("a"));
  obj->Set("p", Value::Integer(1)).Set("q", Value::Integer(2));

  Evaluator evaluator;
  evaluator.AddSource("S1", &store);
  ASSERT_OK(evaluator.BindConcept("A", "S1", "a"));
  Rule rule;
  rule.head.push_back(Literal::OfPredicate(
      "cell", {TermArg::Variable("n"), TermArg::Variable("v")}));
  OTerm body = Membership("A", "x");
  body.attrs.push_back({"n", true, TermArg::Variable("v")});
  rule.body.push_back(Literal::OfOTerm(body));
  ASSERT_OK(evaluator.AddRule(std::move(rule)));
  ASSERT_OK(evaluator.Evaluate());
  EXPECT_EQ(evaluator.FactsOf("cell").size(), 2u);
}

TEST(EvaluatorTest, QueryBeforeEvaluateFails) {
  Evaluator evaluator;
  EXPECT_EQ(evaluator.Query(Membership("x", "v")).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ooint
