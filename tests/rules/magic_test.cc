#include "rules/magic.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "assertions/parser.h"
#include "common/string_util.h"
#include "model/instance_parser.h"
#include "model/schema_parser.h"
#include "rules/evaluator.h"
#include "rules/rule_generator.h"
#include "test_util.h"
#include "workload/fixtures.h"

namespace ooint {
namespace {

using ::ooint::testing::ValueOrDie;

/// Serializes answer rows for order-insensitive comparison.
std::multiset<std::string> RowKeys(const std::vector<Bindings>& rows) {
  std::multiset<std::string> keys;
  for (const Bindings& row : rows) {
    std::string key;
    for (const auto& [var, value] : row) {
      key += StrCat(var, "=", value.ToString(), ";");
    }
    keys.insert(key);
  }
  return keys;
}

OTerm Pattern(const std::string& concept_name) {
  OTerm t;
  t.object = TermArg::Variable("_self");
  t.class_name = concept_name;
  return t;
}

void Where(OTerm* pattern, const std::string& attr, Value value) {
  pattern->attrs.push_back({attr, false, TermArg::Constant(std::move(value))});
}

void Select(OTerm* pattern, const std::string& attr, const std::string& var) {
  pattern->attrs.push_back({attr, false, TermArg::Variable(var)});
}

Literal EdgeLiteral(const std::string& src_var, const std::string& dst_var) {
  OTerm t;
  t.object = TermArg::Variable("e");
  t.class_name = "edge";
  t.attrs.push_back({"src", false, TermArg::Variable(src_var)});
  t.attrs.push_back({"dst", false, TermArg::Variable(dst_var)});
  return Literal::OfOTerm(std::move(t));
}

Rule PathBaseRule() {
  Rule rule;
  rule.head.push_back(Literal::OfPredicate(
      "path", {TermArg::Variable("x"), TermArg::Variable("y")}));
  rule.body.push_back(EdgeLiteral("x", "y"));
  rule.provenance = "test(path-base)";
  return rule;
}

Rule PathStepRule() {
  Rule rule;
  rule.head.push_back(Literal::OfPredicate(
      "path", {TermArg::Variable("x"), TermArg::Variable("z")}));
  rule.body.push_back(EdgeLiteral("x", "y"));
  rule.body.push_back(Literal::OfPredicate(
      "path", {TermArg::Variable("y"), TermArg::Variable("z")}));
  rule.provenance = "test(path-step)";
  return rule;
}

/// Two sources: S1 holds two *disjoint* chain graphs n0->..->n(k-1) and
/// m0->..->m(k-1) (plus an unrelated class) so a selective path query
/// provably cannot touch half the graph; S2 is entirely irrelevant.
class ChainFixture {
 public:
  explicit ChainFixture(int nodes)
      : s1_schema_(ValueOrDie(SchemaParser::Parse(R"(
schema S1 {
  class edge { src: string; dst: string; }
  class noise { n: string; }
}
)"))),
        s2_schema_(ValueOrDie(SchemaParser::Parse(R"(
schema S2 {
  class island { m: string; }
}
)"))) {
    s1_store_ = std::make_unique<InstanceStore>(&s1_schema_);
    s1_store_->SetOidContext("agent1", "ooint", "S1db");
    s2_store_ = std::make_unique<InstanceStore>(&s2_schema_);
    s2_store_->SetOidContext("agent2", "ooint", "S2db");
    std::string text;
    for (int i = 0; i + 1 < nodes; ++i) {
      text += StrCat("insert edge { src: \"n", i, "\"; dst: \"n", i + 1,
                     "\"; }\n");
      text += StrCat("insert edge { src: \"m", i, "\"; dst: \"m", i + 1,
                     "\"; }\n");
    }
    text += "insert noise { n: \"x\"; }\n";
    EXPECT_OK(InstanceParser::Load(text, s1_store_.get()).status());
    EXPECT_OK(
        InstanceParser::Load("insert island { m: \"i\"; }\n", s2_store_.get())
            .status());
  }

  /// A fresh evaluator over both sources with the path program.
  std::unique_ptr<Evaluator> MakeEvaluator() {
    auto evaluator = std::make_unique<Evaluator>();
    evaluator->AddSource("S1", s1_store_.get());
    evaluator->AddSource("S2", s2_store_.get());
    EXPECT_OK(evaluator->BindConcept("edge", "S1", "edge"));
    EXPECT_OK(evaluator->BindConcept("noise", "S1", "noise"));
    EXPECT_OK(evaluator->BindConcept("island", "S2", "island"));
    EXPECT_OK(evaluator->AddRule(PathBaseRule()));
    EXPECT_OK(evaluator->AddRule(PathStepRule()));
    return evaluator;
  }

 private:
  Schema s1_schema_;
  Schema s2_schema_;
  std::unique_ptr<InstanceStore> s1_store_;
  std::unique_ptr<InstanceStore> s2_store_;
};

TEST(MagicRewriteTest, ExtractsGoalBindingFromPattern) {
  OTerm pattern = Pattern("path");
  Where(&pattern, "0", Value::String("n0"));
  Select(&pattern, "1", "y");
  const GoalBinding goal = ExtractGoalBinding(pattern);
  EXPECT_EQ(goal.concept_name, "path");
  EXPECT_FALSE(goal.object_bound);
  ASSERT_EQ(goal.attrs.size(), 1u);
  EXPECT_EQ(goal.attrs.at("0"), Value::String("n0"));
  EXPECT_EQ(goal.ToAdornment().ToString(), "0");
}

TEST(MagicRewriteTest, ProducesGuardedAndMagicRulesWithSeed) {
  std::vector<Rule> rules = {PathBaseRule(), PathStepRule()};
  GoalBinding goal;
  goal.concept_name = "path";
  goal.attrs["0"] = Value::String("n0");
  const MagicProgram program = MagicRewrite(rules, goal);
  ASSERT_TRUE(program.applied) << program.fallback_reason;
  EXPECT_EQ(program.goal_adornment, "0");
  // Both defining rules get a guarded copy; the recursive body literal
  // yields one magic rule re-demanding path with its first arg bound.
  EXPECT_EQ(program.guarded_rules, 2u);
  EXPECT_EQ(program.magic_rules, 1u);
  ASSERT_EQ(program.seeds.size(), 1u);
  EXPECT_TRUE(IsMagicConceptName(program.seeds.front().concept_name));
  EXPECT_EQ(program.seeds.front().attrs.at("0"), Value::String("n0"));
  // Reachability covers the goal and its rule bodies, not the noise.
  const std::set<std::string> reachable(program.reachable_concepts.begin(),
                                        program.reachable_concepts.end());
  EXPECT_TRUE(reachable.count("path"));
  EXPECT_TRUE(reachable.count("edge"));
  EXPECT_FALSE(reachable.count("noise"));
  EXPECT_TRUE(program.relevance_safe);
  // Guards are prepended: every rewritten rule starts with a magic
  // literal or heads a magic predicate.
  for (const Rule& rule : program.rules) {
    const bool magic_head =
        IsMagicConceptName(rule.head.front().kind == Literal::Kind::kPredicate
                               ? rule.head.front().pred_name
                               : rule.head.front().oterm.class_name);
    const Literal& first = rule.body.front();
    const bool magic_guard = first.kind == Literal::Kind::kPredicate &&
                             IsMagicConceptName(first.pred_name);
    EXPECT_TRUE(magic_head || magic_guard) << rule.ToString();
  }
}

TEST(MagicRewriteTest, DemandMatchesFullEvaluationOnChain) {
  ChainFixture fixture(/*nodes=*/12);
  std::unique_ptr<Evaluator> full = fixture.MakeEvaluator();
  ASSERT_OK(full->Evaluate());

  OTerm pattern = Pattern("path");
  Where(&pattern, "0", Value::String("n0"));
  Select(&pattern, "1", "y");
  const std::vector<Bindings> expected = ValueOrDie(full->Query(pattern));
  ASSERT_EQ(expected.size(), 11u);  // n0 reaches every later node

  std::unique_ptr<Evaluator> demand_eval = fixture.MakeEvaluator();
  const Evaluator::DemandOutcome outcome =
      ValueOrDie(demand_eval->EvaluateDemand(pattern));
  EXPECT_TRUE(outcome.magic_applied) << outcome.fallback_reason;
  EXPECT_EQ(RowKeys(outcome.rows), RowKeys(expected));
  // Full evaluation derives every path pair; the demanded fixpoint only
  // derives paths starting at n0 (plus magic facts).
  EXPECT_LT(outcome.stats.derived_facts, full->stats().derived_facts);
}

TEST(MagicRewriteTest, SelectiveDemandDerivesFarFewerFacts) {
  ChainFixture fixture(/*nodes=*/40);
  std::unique_ptr<Evaluator> full = fixture.MakeEvaluator();
  ASSERT_OK(full->Evaluate());

  // Paths *into* n39: binds position 1, the recursive call stays bound.
  OTerm pattern = Pattern("path");
  Select(&pattern, "0", "x");
  Where(&pattern, "1", Value::String("n1"));
  const std::vector<Bindings> expected = ValueOrDie(full->Query(pattern));
  ASSERT_EQ(expected.size(), 1u);

  std::unique_ptr<Evaluator> demand_eval = fixture.MakeEvaluator();
  const Evaluator::DemandOutcome outcome =
      ValueOrDie(demand_eval->EvaluateDemand(pattern));
  EXPECT_TRUE(outcome.magic_applied) << outcome.fallback_reason;
  EXPECT_EQ(RowKeys(outcome.rows), RowKeys(expected));
  // 39*40/2 = 780 full path facts vs. a handful of demanded ones.
  EXPECT_GT(full->stats().derived_facts, 700u);
  EXPECT_LT(outcome.stats.derived_facts, 20u);
}

TEST(MagicRewriteTest, RelevancePrunesUnreachableSources) {
  ChainFixture fixture(/*nodes=*/6);
  std::unique_ptr<Evaluator> evaluator = fixture.MakeEvaluator();

  OTerm pattern = Pattern("path");
  Where(&pattern, "0", Value::String("n0"));
  Select(&pattern, "1", "y");
  const Evaluator::DemandOutcome outcome =
      ValueOrDie(evaluator->EvaluateDemand(pattern));
  // Only the edge extent is fetched: noise (same agent) is skipped and
  // S2 — no reachable concept at all — is never contacted.
  EXPECT_EQ(outcome.stats.extents_fetched, 1u);
  EXPECT_EQ(outcome.pruned_agents, std::vector<std::string>{"S2"});
  EXPECT_EQ(outcome.degraded.pruned_agents,
            std::vector<std::string>{"S2"});
  EXPECT_FALSE(outcome.degraded.degraded());  // pruning is not degradation

  std::unique_ptr<Evaluator> full = fixture.MakeEvaluator();
  ASSERT_OK(full->Evaluate());
  EXPECT_EQ(full->stats().extents_fetched, 3u);
}

TEST(MagicRewriteTest, UnboundGoalFallsBackToRelevanceOnly) {
  ChainFixture fixture(/*nodes=*/6);
  std::unique_ptr<Evaluator> full = fixture.MakeEvaluator();
  ASSERT_OK(full->Evaluate());

  OTerm pattern = Pattern("path");
  Select(&pattern, "0", "x");
  Select(&pattern, "1", "y");
  const std::vector<Bindings> expected = ValueOrDie(full->Query(pattern));

  std::unique_ptr<Evaluator> demand_eval = fixture.MakeEvaluator();
  const Evaluator::DemandOutcome outcome =
      ValueOrDie(demand_eval->EvaluateDemand(pattern));
  EXPECT_FALSE(outcome.magic_applied);
  EXPECT_EQ(outcome.fallback_reason, "goal has no bound positions");
  EXPECT_EQ(RowKeys(outcome.rows), RowKeys(expected));
  // Relevance pruning still applies on the fallback path.
  EXPECT_EQ(outcome.stats.extents_fetched, 1u);
  EXPECT_EQ(outcome.pruned_agents, std::vector<std::string>{"S2"});
}

TEST(MagicRewriteTest, NegatedDerivedConceptFallsBack) {
  ChainFixture fixture(/*nodes=*/5);
  std::unique_ptr<Evaluator> full = fixture.MakeEvaluator();
  // dead_end(y) <= edge(x, y), not path(y, _z) — needs *all* of path,
  // so restricting path's derivation to demand would be unsound.
  Rule dead_end;
  dead_end.head.push_back(
      Literal::OfPredicate("dead_end", {TermArg::Variable("y")}));
  dead_end.body.push_back(EdgeLiteral("x", "y"));
  dead_end.body.push_back(Literal::OfPredicate(
      "path", {TermArg::Variable("y"), TermArg::Variable("y")},
      /*negated=*/true));
  dead_end.provenance = "test(dead-end)";
  ASSERT_OK(full->AddRule(dead_end));
  ASSERT_OK(full->Evaluate());

  OTerm pattern = Pattern("dead_end");
  Where(&pattern, "0", Value::String("n4"));
  const std::vector<Bindings> expected = ValueOrDie(full->Query(pattern));
  ASSERT_EQ(expected.size(), 1u);  // the chain's last node has no exit

  std::unique_ptr<Evaluator> demand_eval = fixture.MakeEvaluator();
  ASSERT_OK(demand_eval->AddRule(dead_end));
  const Evaluator::DemandOutcome outcome =
      ValueOrDie(demand_eval->EvaluateDemand(pattern));
  EXPECT_FALSE(outcome.magic_applied);
  EXPECT_NE(outcome.fallback_reason.find("negated derived concept"),
            std::string::npos)
      << outcome.fallback_reason;
  EXPECT_EQ(RowKeys(outcome.rows), RowKeys(expected));
}

TEST(MagicRewriteTest, MergedAttributeBindingsAreDroppedFromAdornment) {
  ChainFixture fixture(/*nodes=*/4);
  std::unique_ptr<Evaluator> full = fixture.MakeEvaluator();
  // <x : loud> <= <x : noise>: the head has no explicit descriptor for
  // "n" — the evaluator's attribute-merge path attaches it after
  // derivation, so binding it through a magic literal would lose the
  // answer. The rewriter must refuse to adorn.
  Rule membership;
  OTerm head = Pattern("loud");
  head.object = TermArg::Variable("x");
  membership.head.push_back(Literal::OfOTerm(head));
  OTerm body = Pattern("noise");
  body.object = TermArg::Variable("x");
  membership.body.push_back(Literal::OfOTerm(body));
  membership.provenance = "test(loud)";
  ASSERT_OK(full->AddRule(membership));
  ASSERT_OK(full->Evaluate());

  OTerm pattern = Pattern("loud");
  Where(&pattern, "n", Value::String("x"));
  const std::vector<Bindings> expected = ValueOrDie(full->Query(pattern));
  ASSERT_EQ(expected.size(), 1u);  // the merged attribute is queryable

  std::unique_ptr<Evaluator> demand_eval = fixture.MakeEvaluator();
  ASSERT_OK(demand_eval->AddRule(membership));
  const Evaluator::DemandOutcome outcome =
      ValueOrDie(demand_eval->EvaluateDemand(pattern));
  EXPECT_FALSE(outcome.magic_applied);
  EXPECT_EQ(outcome.fallback_reason,
            "no bound goal position survives head-support analysis");
  EXPECT_EQ(RowKeys(outcome.rows), RowKeys(expected));
}

TEST(MagicRewriteTest, DemandDoesNotDisturbTheParentEvaluator) {
  ChainFixture fixture(/*nodes=*/5);
  std::unique_ptr<Evaluator> evaluator = fixture.MakeEvaluator();
  OTerm pattern = Pattern("path");
  Where(&pattern, "0", Value::String("n0"));
  Select(&pattern, "1", "y");
  ASSERT_OK(evaluator->EvaluateDemand(pattern).status());
  // The parent has not evaluated anything yet...
  EXPECT_FALSE(evaluator->Query(pattern).ok());
  // ...and a subsequent full evaluation works normally.
  ASSERT_OK(evaluator->Evaluate());
  EXPECT_EQ(ValueOrDie(evaluator->Query(pattern)).size(), 4u);
}

TEST(MagicDemandGenealogyTest, AnswersTheUncleQueryLikeFullEvaluation) {
  Fixture fixture = ValueOrDie(MakeGenealogyFixture());
  auto s1_store = std::make_unique<InstanceStore>(&fixture.s1);
  s1_store->SetOidContext("agent1", "ooint", "S1db");
  auto s2_store = std::make_unique<InstanceStore>(&fixture.s2);
  s2_store->SetOidContext("agent2", "ooint", "S2db");
  ASSERT_OK(PopulateGenealogy(s1_store.get(), s2_store.get(),
                              /*num_families=*/8));

  auto make = [&]() {
    auto evaluator = std::make_unique<Evaluator>();
    evaluator->AddSource("S1", s1_store.get());
    evaluator->AddSource("S2", s2_store.get());
    EXPECT_OK(evaluator->BindConcept("IS(S1.parent)", "S1", "parent"));
    EXPECT_OK(evaluator->BindConcept("IS(S1.brother)", "S1", "brother"));
    EXPECT_OK(evaluator->BindConcept("IS(S2.uncle)", "S2", "uncle"));
    const Assertion assertion = ValueOrDie(
        AssertionParser::ParseOne(fixture.assertion_text));
    RuleGenerator generator;
    for (Rule& rule : ValueOrDie(generator.Generate(assertion))) {
      EXPECT_OK(evaluator->AddRule(std::move(rule)));
    }
    return evaluator;
  };

  std::unique_ptr<Evaluator> full = make();
  ASSERT_OK(full->Evaluate());
  OTerm pattern = Pattern("IS(S2.uncle)");
  Where(&pattern, "niece_nephew", Value::String("C3a"));
  Select(&pattern, "Ussn#", "who");
  const std::vector<Bindings> expected = ValueOrDie(full->Query(pattern));

  std::unique_ptr<Evaluator> demand_eval = make();
  const Evaluator::DemandOutcome outcome =
      ValueOrDie(demand_eval->EvaluateDemand(pattern));
  EXPECT_EQ(RowKeys(outcome.rows), RowKeys(expected));
  ASSERT_FALSE(outcome.rows.empty());
  // The selective query derives only the demanded family's uncles.
  if (outcome.magic_applied) {
    EXPECT_LT(outcome.stats.derived_facts, full->stats().derived_facts);
  }
}

}  // namespace
}  // namespace ooint
